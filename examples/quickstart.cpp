// Quickstart: two workstations, one ATM link, one message.
//
// Builds the smallest possible scenario — alice sends bob a 9,180-byte
// SDU (the classical IP-over-ATM MTU) over AAL5 at STS-3c — and prints
// what happened at each layer: cells on the wire, engine work, bus
// traffic, the interrupt, and the end-to-end latency.

#include <cstdio>

#include "core/testbed.hpp"

using namespace hni;

int main() {
  core::Testbed bed;
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  auto [ab, ba] = bed.connect(alice, bob);

  const atm::VcId vc{0, 100};
  alice.nic().open_vc(vc, aal::AalType::kAal5);
  bob.nic().open_vc(vc, aal::AalType::kAal5);

  bool got = false;
  bob.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo& info) {
    got = true;
    std::printf("bob received %zu bytes on VC %s\n", sdu.size(),
                info.vc.to_string().c_str());
    std::printf("  pattern intact:        %s\n",
                aal::verify_pattern(sdu) ? "yes" : "NO");
    std::printf("  first cell emitted at: %s\n",
                sim::format_time(info.first_cell_time).c_str());
    std::printf("  landed in host memory: %s\n",
                sim::format_time(info.delivered_time).c_str());
    std::printf("  handed to application: %s\n",
                sim::format_time(info.handed_up_time).c_str());
    std::printf("  end-to-end latency:    %s\n",
                sim::format_time(info.handed_up_time - info.first_cell_time)
                    .c_str());
  });

  const std::size_t kSduBytes = 9180;
  aal::Bytes payload = aal::make_pattern(kSduBytes, 7);
  std::printf("alice sends %zu bytes over AAL5 (%zu cells)...\n", kSduBytes,
              aal::aal5_cell_count(kSduBytes));
  alice.host().send(vc, aal::AalType::kAal5, std::move(payload));

  bed.run_for(sim::milliseconds(10));

  std::printf("\n-- per-layer accounting --\n");
  std::printf("alice TX engine:  %llu cells built, %llu instructions\n",
              static_cast<unsigned long long>(alice.nic().tx().cells_built()),
              static_cast<unsigned long long>(
                  alice.nic().tx().engine().instructions_retired()));
  std::printf("link a->b:        %llu cells carried\n",
              static_cast<unsigned long long>(ab->cells_in()));
  std::printf("bob RX engine:    %llu cells received, %llu instructions\n",
              static_cast<unsigned long long>(bob.nic().rx().cells_received()),
              static_cast<unsigned long long>(
                  bob.nic().rx().engine().instructions_retired()));
  std::printf("bob bus:          %llu bytes DMA'd in %llu transfers\n",
              static_cast<unsigned long long>(bob.bus().bytes_moved()),
              static_cast<unsigned long long>(bob.bus().transfers()));
  std::printf("bob interrupts:   %llu (for %llu PDUs)\n",
              static_cast<unsigned long long>(
                  bob.nic().rx().interrupts().interrupts()),
              static_cast<unsigned long long>(bob.host().sdus_received()));

  if (!got) {
    std::printf("ERROR: no delivery\n");
    return 1;
  }
  return 0;
}
