// A server fan-in: eight clients send to one server through an ATM
// switch, each on its own VC (with VCI translation at the switch).
//
// Demonstrates: per-VC reassembly state under heavy interleaving at the
// server's single receive path, VC translation, fairness of delivery,
// and the reassembly engine's view (instructions, FIFO occupancy, board
// buffer high-water mark) with many simultaneous open PDUs.

#include <cstdio>
#include <map>
#include <memory>

#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"

using namespace hni;

int main() {
  constexpr std::size_t kClients = 8;
  std::printf("multi_vc_mux: %zu clients -> 1 server through a switch, "
              "one VC each\n", kClients);

  core::Testbed bed;
  auto& sw = bed.add_switch({.ports = kClients + 1,
                             .queue_cells = 1024,
                             .clp_threshold = 1024});
  auto& server = bed.add_station({.name = "server"});
  bed.connect_from_switch(sw, kClients, server);

  struct Client {
    core::Station* station;
    std::unique_ptr<net::SduSource> source;
    atm::VcId server_vc;
  };
  std::vector<Client> clients(kClients);
  std::map<std::uint16_t, std::size_t> received;
  std::map<std::uint16_t, std::size_t> bytes;
  std::size_t damaged = 0;

  server.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo& info) {
        if (!aal::verify_pattern(sdu)) ++damaged;
        ++received[info.vc.vci];
        bytes[info.vc.vci] += sdu.size();
      });

  for (std::size_t i = 0; i < kClients; ++i) {
    Client& c = clients[i];
    c.station = &bed.add_station({.name = "client" + std::to_string(i)});
    bed.connect_to_switch(*c.station, sw, i);
    const atm::VcId local{0, 10};  // every client uses VCI 10 locally
    c.server_vc = {0, static_cast<std::uint16_t>(100 + i)};
    sw.add_route(i, local, kClients, c.server_vc);
    c.station->nic().open_vc(local, aal::AalType::kAal5);
    server.nic().open_vc(c.server_vc, aal::AalType::kAal5);

    // Each client offers ~12 Mb/s of 4 kB PDUs (Poisson): ~96 Mb/s
    // aggregate into one STS-3c port — busy but uncongested.
    c.source = std::make_unique<net::SduSource>(
        bed.sim(),
        net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                               .sdu_bytes = 4096,
                               .count = 0,
                               .interval = sim::microseconds(2700),
                               .seed = 1000 + i},
        [st = c.station, local](aal::Bytes sdu) {
          return st->host().send(local, aal::AalType::kAal5,
                                 std::move(sdu));
        });
    c.source->start();
  }

  bed.run_for(sim::milliseconds(500));

  core::Table t({"client", "VC at server", "PDUs delivered", "MB",
                 "share"});
  std::size_t total = 0;
  for (const auto& [vci, n] : received) total += n;
  for (std::size_t i = 0; i < kClients; ++i) {
    const std::uint16_t vci = clients[i].server_vc.vci;
    t.add_row({"client" + std::to_string(i), "0/" + std::to_string(vci),
               core::Table::integer(received[vci]),
               core::Table::num(static_cast<double>(bytes[vci]) / 1e6, 2),
               core::Table::percent(
                   total ? static_cast<double>(received[vci]) /
                               static_cast<double>(total)
                         : 0.0)});
  }
  t.print("per-client delivery at the server");

  const auto& rx = server.nic().rx();
  std::printf("\nserver receive path:\n");
  std::printf("  cells received:        %llu (%llu dropped at FIFO)\n",
              static_cast<unsigned long long>(rx.cells_received()),
              static_cast<unsigned long long>(rx.cells_fifo_dropped()));
  std::printf("  PDUs delivered/errored: %llu / %llu, damaged payloads: %zu\n",
              static_cast<unsigned long long>(rx.pdus_delivered()),
              static_cast<unsigned long long>(rx.pdus_errored()), damaged);
  std::printf("  rx engine utilization:  %.1f%%\n",
              rx.engine().utilization(bed.now()) * 100.0);
  std::printf("  rx FIFO mean/max depth: %.1f / %.0f cells\n",
              rx.fifo().mean_depth(), rx.fifo().max_depth());
  std::printf("  board containers peak:  %.0f of %zu\n",
              rx.board().peak_in_use(), rx.board().config().containers);
  std::printf("  interrupts per PDU:     %.2f\n",
              rx.interrupts().events()
                  ? static_cast<double>(rx.interrupts().interrupts()) /
                        static_cast<double>(rx.interrupts().events())
                  : 0.0);
  return damaged == 0 ? 0 : 1;
}
