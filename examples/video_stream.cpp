// Video over ATM: a CBR camera feed shares a switch output port with a
// bursty data VC.
//
// A 25 fps stream (one 36 kB frame every 40 ms, carried as AAL5 PDUs)
// crosses an ATM switch whose output port also carries on/off bulk
// data. The example reports per-frame delivery latency and jitter with
// and without the competing traffic — the multiplexing-delay story that
// motivated small fixed-size cells in the first place.

#include <cstdio>

#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"

using namespace hni;

struct StreamStats {
  sim::RunningStat latency_ms;
  sim::RunningStat jitter_ms;  // |latency_i - latency_{i-1}|
  std::size_t frames = 0;
  std::size_t damaged = 0;
};

StreamStats run(bool with_cross_traffic) {
  core::Testbed bed;
  auto& camera = bed.add_station({.name = "camera"});
  auto& bulk = bed.add_station({.name = "bulk"});
  auto& viewer = bed.add_station({.name = "viewer"});
  auto& sw = bed.add_switch(
      {.ports = 3, .queue_cells = 512, .clp_threshold = 512});
  bed.connect_to_switch(camera, sw, 0);
  bed.connect_to_switch(bulk, sw, 1);
  bed.connect_from_switch(sw, 2, viewer);

  const atm::VcId video{0, 10};
  const atm::VcId data{0, 20};
  sw.add_route(0, video, 2, video);
  sw.add_route(1, data, 2, data);
  camera.nic().open_vc(video, aal::AalType::kAal5);
  bulk.nic().open_vc(data, aal::AalType::kAal5);
  viewer.nic().open_vc(video, aal::AalType::kAal5);
  viewer.nic().open_vc(data, aal::AalType::kAal5);

  StreamStats stats;
  double last_latency = -1.0;
  viewer.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo& info) {
        if (info.vc != video) return;
        ++stats.frames;
        if (!aal::verify_pattern(sdu)) ++stats.damaged;
        const double lat_ms =
            sim::to_seconds(info.handed_up_time - info.first_cell_time) *
            1e3;
        stats.latency_ms.add(lat_ms);
        if (last_latency >= 0) {
          stats.jitter_ms.add(std::abs(lat_ms - last_latency));
        }
        last_latency = lat_ms;
      });

  // 25 fps, ~7.2 Mb/s video: one 36 kB frame every 40 ms.
  net::SduSource camera_src(
      bed.sim(),
      {.mode = net::SduSource::Mode::kCbr,
       .sdu_bytes = 36000,
       .count = 100,
       .interval = sim::milliseconds(40),
       .seed = 11},
      [&](aal::Bytes sdu) {
        return camera.host().send(video, aal::AalType::kAal5,
                                  std::move(sdu));
      });
  camera_src.start();

  std::optional<net::SduSource> bulk_src;
  if (with_cross_traffic) {
    bulk_src.emplace(
        bed.sim(),
        net::SduSource::Config{.mode = net::SduSource::Mode::kOnOff,
                               .sdu_bytes = 9180,
                               .count = 0,
                               .interval = sim::microseconds(600),
                               .mean_on = sim::milliseconds(15),
                               .mean_off = sim::milliseconds(10),
                               .seed = 22},
        [&](aal::Bytes sdu) {
          return bulk.host().send(data, aal::AalType::kAal5,
                                  std::move(sdu));
        });
    bulk_src->start();
  }

  bed.run_for(sim::seconds(5));
  return stats;
}

int main() {
  std::printf("video_stream: 25 fps / 7.2 Mb/s CBR video through a "
              "switch, with and without bursty\ncross-traffic on the "
              "same output port (STS-3c everywhere)\n");

  core::Table t({"cross-traffic", "frames", "damaged", "latency ms (mean)",
                 "latency ms (max)", "jitter ms (mean)",
                 "jitter ms (max)"});
  for (bool cross : {false, true}) {
    const StreamStats s = run(cross);
    t.add_row({cross ? "on/off bulk data" : "none",
               core::Table::integer(s.frames),
               core::Table::integer(s.damaged),
               core::Table::num(s.latency_ms.mean(), 2),
               core::Table::num(s.latency_ms.max(), 2),
               core::Table::num(s.jitter_ms.mean(), 3),
               core::Table::num(s.jitter_ms.max(), 3)});
  }
  t.print("per-frame delivery latency and jitter");
  std::printf("\nThe video VC keeps its frames intact either way (the "
              "switch queue is provisioned), but\ncross-traffic queueing "
              "shows up directly as added latency and jitter.\n");
  return 0;
}
