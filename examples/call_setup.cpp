// Switched virtual circuits: signalled call setup, data, and teardown.
//
// Three workstations share an ATM switch with a call agent. Alice calls
// Bob with a traffic contract, ships a file's worth of PDUs over the
// network-assigned VC (shaped by her NIC, policed by the switch), then
// releases. Carol's number is busy, and a wrong number is refused by
// the network — each failure reports its Q.850-style cause. The
// timeline prints everything with simulated timestamps.

#include <cstdio>

#include "sig/network.hpp"

using namespace hni;

int main() {
  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 4, .queue_cells = 512, .clp_threshold = 512});
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  auto& carol = bed.add_station({.name = "carol"});
  sig::SignalingNetwork net(bed, sw, /*agent_port=*/3);
  auto& cc_alice = net.attach(alice, 0, /*party=*/1);
  auto& cc_bob = net.attach(bob, 1, /*party=*/2);
  auto& cc_carol = net.attach(carol, 2, /*party=*/3);

  auto stamp = [&] { return sim::format_time(bed.now()); };

  cc_bob.set_incoming([&](const sig::CallControl::CallInfo& i) {
    std::printf("[%8s] bob: incoming call from party %u on VC %s — "
                "accepting\n", stamp().c_str(), i.peer,
                i.vc.to_string().c_str());
    return true;
  });
  cc_carol.set_incoming([&](const sig::CallControl::CallInfo&) {
    std::printf("[%8s] carol: busy, rejecting\n", stamp().c_str());
    return false;
  });

  std::size_t received = 0;
  bob.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo& info) {
    ++received;
    if (received == 1 || received == 20) {
      std::printf("[%8s] bob: PDU %zu (%zu bytes, intact=%s) on VC %s\n",
                  stamp().c_str(), received, sdu.size(),
                  aal::verify_pattern(sdu) ? "yes" : "NO",
                  info.vc.to_string().c_str());
    }
  });

  // Call 1: Alice -> Bob with a 1/4-STS-3c contract; send 20 PDUs then
  // hang up.
  const double pcr = atm::sts3c().cells_per_second() / 4.0;
  std::printf("[%8s] alice: dialing party 2 (PCR contract %.0f cells/s)\n",
              stamp().c_str(), pcr);
  cc_alice.set_released([&](const sig::CallControl::CallInfo& i,
                            sig::Cause cause) {
    std::printf("[%8s] alice: call on VC %s released (%s)\n",
                stamp().c_str(), i.vc.to_string().c_str(),
                std::string(to_string(cause)).c_str());
  });
  cc_alice.place_call(
      2, aal::AalType::kAal5, pcr,
      [&](const sig::CallControl::CallInfo& i) {
        std::printf("[%8s] alice: connected on VC %s — sending 20 PDUs\n",
                    stamp().c_str(), i.vc.to_string().c_str());
        for (int k = 0; k < 20; ++k) {
          alice.host().send(i.vc, i.aal, aal::make_pattern(9180, k));
        }
        bed.sim().after(sim::milliseconds(70), [&, i] {
          std::printf("[%8s] alice: hanging up\n", stamp().c_str());
          cc_alice.release(i.call_id);
        });
      });

  // Call 2: Alice -> Carol (busy).
  bed.sim().after(sim::milliseconds(5), [&] {
    std::printf("[%8s] alice: dialing party 3\n", stamp().c_str());
    cc_alice.place_call(
        3, aal::AalType::kAal5, 0.0,
        [](const sig::CallControl::CallInfo&) {},
        [&](std::uint32_t, sig::Cause cause) {
          std::printf("[%8s] alice: call failed — %s\n", stamp().c_str(),
                      std::string(to_string(cause)).c_str());
        });
  });

  // Call 3: wrong number.
  bed.sim().after(sim::milliseconds(10), [&] {
    std::printf("[%8s] alice: dialing party 99\n", stamp().c_str());
    cc_alice.place_call(
        99, aal::AalType::kAal5, 0.0,
        [](const sig::CallControl::CallInfo&) {},
        [&](std::uint32_t, sig::Cause cause) {
          std::printf("[%8s] alice: call failed — %s\n", stamp().c_str(),
                      std::string(to_string(cause)).c_str());
        });
  });

  bed.run_for(sim::milliseconds(120));

  std::printf("\n-- epilogue --\n");
  std::printf("bob received %zu PDUs; switch policed-dropped %llu cells "
              "(contract honoured by shaping)\n", received,
              static_cast<unsigned long long>(sw.cells_policed_dropped()));
  std::printf("network: %llu calls routed, %llu refused, %zu still "
              "active\n",
              static_cast<unsigned long long>(net.calls_routed()),
              static_cast<unsigned long long>(net.calls_refused()),
              net.active_calls());
  return received == 20 && net.active_calls() == 0 ? 0 : 1;
}
