// Bulk file transfer: move a 10 MB "file" across the interface and
// report goodput at several chunk (PDU) sizes — the experiment a user
// actually cares about when deciding how to carve writes into SDUs.
//
// Demonstrates: greedy windowed sending against the driver's send
// window, receive-side verification, per-size goodput and host CPU
// load.

#include <cstdio>
#include <functional>

#include "core/report.hpp"
#include "core/testbed.hpp"

using namespace hni;

struct TransferResult {
  double seconds;
  double goodput_mbps;
  double tx_cpu;
  double rx_cpu;
  std::uint64_t interrupts;
};

TransferResult transfer(std::size_t file_bytes, std::size_t chunk_bytes) {
  core::Testbed bed;
  auto& src = bed.add_station({.name = "fileserver"});
  auto& dst = bed.add_station({.name = "client"});
  bed.connect(src, dst);
  const atm::VcId vc{0, 42};
  src.nic().open_vc(vc, aal::AalType::kAal5);
  dst.nic().open_vc(vc, aal::AalType::kAal5);

  const std::size_t chunks =
      (file_bytes + chunk_bytes - 1) / chunk_bytes;
  std::size_t received = 0;
  std::size_t bad = 0;
  sim::Time done_at = 0;
  dst.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    if (!aal::verify_pattern(sdu)) ++bad;
    if (++received == chunks) done_at = bed.now();
  });

  std::size_t sent = 0;
  std::function<void()> pump = [&] {
    while (sent < chunks) {
      const std::size_t len =
          std::min(chunk_bytes, file_bytes - sent * chunk_bytes);
      if (!src.host().send(vc, aal::AalType::kAal5,
                           aal::make_pattern(len, sent))) {
        return;  // window full; resumes on tx-ready
      }
      ++sent;
    }
  };
  src.host().set_tx_ready(pump);
  pump();

  bed.run_for(sim::seconds(5));
  TransferResult r{};
  if (received != chunks || bad != 0) {
    std::fprintf(stderr, "transfer failed: %zu/%zu chunks, %zu bad\n",
                 received, chunks, bad);
    return r;
  }
  r.seconds = sim::to_seconds(done_at);
  r.goodput_mbps =
      static_cast<double>(file_bytes) * 8.0 / r.seconds / 1e6;
  r.tx_cpu = src.host().cpu_utilization();
  r.rx_cpu = dst.host().cpu_utilization();
  r.interrupts = dst.host().interrupts_taken();
  return r;
}

int main() {
  const std::size_t kFile = 10u << 20;  // 10 MiB
  std::printf("file_transfer: moving a 10 MiB file over AAL5 at STS-3c\n");

  core::Table t({"chunk bytes", "chunks", "time ms", "goodput Mb/s",
                 "tx host CPU", "rx host CPU", "rx interrupts"});
  for (std::size_t chunk : {1500u, 4096u, 9180u, 32768u, 65535u}) {
    const TransferResult r = transfer(kFile, chunk);
    t.add_row({core::Table::integer(chunk),
               core::Table::integer((kFile + chunk - 1) / chunk),
               core::Table::num(r.seconds * 1e3, 1),
               core::Table::num(r.goodput_mbps, 1),
               core::Table::percent(r.tx_cpu),
               core::Table::percent(r.rx_cpu),
               core::Table::integer(r.interrupts)});
  }
  t.print("10 MiB transfer vs chunk size");
  std::printf(
      "\nLarger chunks amortize the per-PDU syscall/descriptor/interrupt "
      "costs up to the knee\n(~9 kB), where the wire becomes the limit. "
      "Past ~32 kB goodput dips again: the transmit\nengine stages each "
      "whole PDU over the bus before cutting cells, and once that staging "
      "time\nexceeds what the 64-cell TX FIFO can cover, the wire idles "
      "between PDUs — the pipelining\nlimit of whole-PDU staging "
      "(per-cell cut-through DMA trades this against per-burst bus\n"
      "overhead; see bench F2).\n");
  return 0;
}
