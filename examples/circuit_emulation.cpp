// Circuit emulation over AAL1: a 1.544 Mb/s (T1-class) constant bit
// stream carried in AAL1 cells across a lossy link.
//
// AAL1 is the stream adaptation layer: no frames, a 3-bit sequence
// count per cell, and loss *concealment* rather than retransmission.
// This example drives the AAL1 segmenter/reassembler over the raw
// framer+link substrate (AAL1 terminates in the PHY-adjacent datapath,
// not in the frame-oriented NIC engines) and reports how many octets
// arrived, how many were lost, and how precisely the gap detector
// accounted for them.

#include <cstdio>
#include <deque>

#include "aal/aal1.hpp"
#include "atm/phy.hpp"
#include "core/report.hpp"
#include "net/link.hpp"

using namespace hni;

int main() {
  std::printf("circuit_emulation: T1-rate (1.544 Mb/s) stream over AAL1 "
              "on a lossy STS-3c link\n");

  sim::Simulator sim;
  const atm::VcId vc{0, 77};

  net::LossModel loss;
  loss.cell_loss_rate = 0.002;  // a poor path: 2e-3 cell loss
  loss.mean_burst_cells = 3.0;
  net::Link link(sim, sim::microseconds(50), loss, 123);

  aal::Aal1Segmenter segmenter(vc);
  aal::Aal1Reassembler reassembler;
  std::deque<atm::Cell> ready;

  // Source: 1.544 Mb/s = 193 octets per 1 ms tick.
  std::uint64_t produced_octets = 0;
  std::uint64_t tick = 0;
  std::function<void()> produce = [&] {
    aal::Bytes chunk = aal::make_pattern(193, tick++);
    produced_octets += chunk.size();
    for (auto& cell : segmenter.push(chunk)) {
      ready.push_back(std::move(cell));
    }
    if (tick < 2000) sim.after(sim::milliseconds(1), produce);
  };
  sim.after(0, produce);

  // PHY: the framer sends a ready AAL1 cell per slot when one exists.
  atm::TxFramer framer(sim, atm::sts3c());
  framer.set_supplier([&]() -> std::optional<atm::Cell> {
    if (ready.empty()) return std::nullopt;
    atm::Cell c = std::move(ready.front());
    ready.pop_front();
    c.meta.created = sim.now();
    return c;
  });
  framer.set_sink([&](const atm::Cell& c) { link.send(c); });
  framer.start();

  // Receiver: reassemble the octet stream, concealing losses with
  // silence (zero) fill as a real CBR endpoint would.
  std::uint64_t received_octets = 0;
  std::uint64_t concealed_octets = 0;
  link.set_sink([&](const net::WireCell& w) {
    const atm::Cell cell = atm::Cell::deserialize(
        std::span<const std::uint8_t, atm::kCellSize>(w.bytes.data(),
                                                      atm::kCellSize),
        atm::HeaderFormat::kUni);
    if (auto chunk = reassembler.push(cell)) {
      concealed_octets += chunk->lost_before * aal::kAal1PayloadPerCell;
      received_octets += chunk->payload.size();
    }
  });

  sim.run_until(sim::seconds(3));

  core::Table t({"quantity", "value"});
  t.add_row({"stream octets produced", core::Table::integer(produced_octets)});
  t.add_row({"octets delivered", core::Table::integer(received_octets)});
  t.add_row({"cells sent", core::Table::integer(link.cells_in())});
  t.add_row({"cells lost on link", core::Table::integer(link.cells_lost())});
  t.add_row({"losses detected by SC gaps",
             core::Table::integer(reassembler.cells_lost())});
  t.add_row({"octets concealed (zero-fill)",
             core::Table::integer(concealed_octets)});
  t.add_row({"header (SNP) rejects",
             core::Table::integer(reassembler.header_errors())});
  t.print("AAL1 circuit emulation accounting");

  // The SC gap detector sees every loss whose run length mod 8 != 0.
  const double detected =
      link.cells_lost() == 0
          ? 1.0
          : static_cast<double>(reassembler.cells_lost()) /
                static_cast<double>(link.cells_lost());
  std::printf("\nloss detection coverage: %.1f%% (gaps of exactly 8 cells "
              "are invisible to a 3-bit\nsequence count — the standard "
              "AAL1 limitation)\n", detected * 100.0);
  return 0;
}
