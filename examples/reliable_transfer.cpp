// Reliable transfer over a lossy ATM WAN: a small go-back-N ARQ built
// entirely on the public host API.
//
// ATM gives frames, not reliability: under cell loss, whole AAL5 PDUs
// vanish (the CRC rejects damaged reassemblies). This example layers a
// classic sliding-window protocol on top — sequence-numbered DATA PDUs
// one way, cumulative ACKs the other, retransmission on timeout — and
// measures how goodput degrades with the cell-loss rate. It is the
// "protocol flexibility" demonstration: nothing in the interface had to
// change to host a new protocol.

#include <cstdio>
#include <functional>

#include "core/report.hpp"
#include "core/testbed.hpp"

using namespace hni;

namespace {

constexpr atm::VcId kData{0, 80};
constexpr atm::VcId kAck{0, 81};
constexpr std::size_t kChunk = 4096;

// Tiny framing: [seq(4) | payload...] for DATA, [cum_ack(4)] for ACK.
aal::Bytes frame_data(std::uint32_t seq, const aal::Bytes& payload) {
  aal::Bytes out;
  out.reserve(4 + payload.size());
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(seq >> (8 * i)));
  }
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::uint32_t read_u32(const aal::Bytes& b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

struct Result {
  double goodput_mbps = 0;
  std::size_t retransmissions = 0;
  double time_ms = 0;
};

Result run(double cell_loss_rate, std::size_t total_chunks) {
  core::Testbed bed;
  auto& tx = bed.add_station({.name = "sender"});
  auto& rx = bed.add_station({.name = "receiver"});
  net::LossModel loss;
  loss.cell_loss_rate = cell_loss_rate;
  loss.mean_burst_cells = cell_loss_rate > 0 ? 4.0 : 0.0;
  bed.connect(tx, rx, loss, sim::microseconds(500));  // ~100 km
  for (auto* s : {&tx, &rx}) {
    s->nic().open_vc(kData, aal::AalType::kAal5);
    s->nic().open_vc(kAck, aal::AalType::kAal5);
  }

  // --- sender: go-back-N, window 16, 10 ms retransmission timer -------
  const std::uint32_t kWindow = 16;
  const sim::Time kRto = sim::milliseconds(10);
  std::uint32_t base = 0;      // oldest unacked
  std::uint32_t next_seq = 0;  // next never-sent
  std::size_t retransmissions = 0;
  sim::Time done_at = 0;
  sim::EventHandle timer;

  std::function<void()> pump;
  std::function<void()> arm_timer;
  std::function<void()> on_timeout = [&] {
    if (base >= total_chunks) return;
    // Go back: resend everything outstanding.
    retransmissions += next_seq - base;
    next_seq = base;
    pump();
  };
  arm_timer = [&] {
    bed.sim().cancel(timer);
    timer = bed.sim().after(kRto, [&] { on_timeout(); });
  };
  pump = [&] {
    while (next_seq < base + kWindow && next_seq < total_chunks) {
      const aal::Bytes payload = aal::make_pattern(kChunk, next_seq);
      if (!tx.host().send(kData, aal::AalType::kAal5,
                          frame_data(next_seq, payload))) {
        break;  // driver window full; tx-ready resumes us
      }
      ++next_seq;
    }
    if (base < total_chunks) arm_timer();
  };
  tx.host().set_tx_ready(pump);
  tx.host().set_vc_handler(kAck, [&](aal::Bytes ack, const host::RxInfo&) {
    if (ack.size() != 4) return;
    const std::uint32_t cum = read_u32(ack);
    if (cum > base) {
      base = cum;
      if (base >= total_chunks) {
        done_at = bed.now();
        bed.sim().cancel(timer);
        return;
      }
      arm_timer();
      pump();
    }
  });

  // --- receiver: in-order delivery, cumulative ACK per DATA PDU -------
  std::uint32_t expected = 0;
  std::size_t delivered_bytes = 0;
  rx.host().set_vc_handler(kData, [&](aal::Bytes sdu,
                                      const host::RxInfo&) {
    if (sdu.size() < 4) return;
    const std::uint32_t seq = read_u32(sdu);
    if (seq == expected) {
      aal::Bytes payload(sdu.begin() + 4, sdu.end());
      if (!aal::verify_pattern(payload)) {
        std::fprintf(stderr, "corrupted delivery!\n");
      }
      delivered_bytes += payload.size();
      ++expected;
    }
    aal::Bytes ack(4);
    for (int i = 0; i < 4; ++i) {
      ack[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(expected >> (8 * i));
    }
    rx.host().send(kAck, aal::AalType::kAal5, ack);
  });

  pump();
  bed.run_for(sim::seconds(10));

  Result r;
  if (done_at == 0) done_at = bed.now();
  r.time_ms = sim::to_seconds(done_at) * 1e3;
  r.goodput_mbps =
      static_cast<double>(delivered_bytes) * 8.0 / (r.time_ms / 1e3) / 1e6;
  r.retransmissions = retransmissions;
  return r;
}

}  // namespace

int main() {
  std::printf("reliable_transfer: 2 MB over go-back-N ARQ (window 16, "
              "4 kB chunks, 10 ms RTO)\non a 100 km STS-3c path with "
              "bursty cell loss\n");
  const std::size_t chunks = (2u << 20) / kChunk;
  core::Table t({"cell loss rate", "time ms", "goodput Mb/s",
                 "retransmitted PDUs"});
  for (double p : {0.0, 1e-5, 1e-4, 1e-3, 1e-2}) {
    const Result r = run(p, chunks);
    char label[32];
    std::snprintf(label, sizeof label, "%.0e", p);
    t.add_row({p == 0.0 ? "0" : label, core::Table::num(r.time_ms, 1),
               core::Table::num(r.goodput_mbps, 1),
               core::Table::integer(r.retransmissions)});
  }
  t.print("ARQ goodput vs cell loss");
  std::printf(
      "\nEvery lost cell costs a whole PDU (AAL5 CRC) and go-back-N "
      "resends the window tail,\nso goodput falls steeply once the "
      "per-PDU loss probability (~86 cells x rate) is\nnon-negligible — "
      "the classic argument for selective repeat or FEC at higher "
      "rates.\n");
  return 0;
}
