// F5 — Receive-side cost vs number of concurrent VCs.
//
// The reassembly engine must find per-VC state for every cell. With a
// CAM the lookup is constant; in software it is a hash probe charged
// per displacement. The VC table is now a growing open-addressing
// (robin-hood) hash — cfg.vc_buckets merely pre-sizes it — so the
// software column measures the true residual probe cost at each
// population rather than a configured chain length. This bench drives
// the RX path directly with line-rate interleaved traffic across N VCs
// and reports measured instructions per cell and loss onset, CAM vs
// hash. (Bench P2 sweeps the table itself to millions of entries.)

#include <cstdio>
#include <vector>

#include "aal/aal5.hpp"
#include "atm/phy.hpp"
#include "bench_util.hpp"
#include "core/report.hpp"
#include "nic/rx_path.hpp"

using namespace hni;

struct Result {
  double instr_per_cell;
  std::uint64_t fifo_drops;
  std::uint64_t pdus_ok;
};

Result run(std::size_t n_vcs, bool cam) {
  sim::Simulator sim;
  bus::Bus bus(sim, bus::BusConfig{});
  bus::HostMemory mem(8u << 20, 4096);
  proc::FirmwareProfile fw;
  fw.assists.cam_lookup = cam;
  nic::RxPathConfig cfg;
  cfg.engine.clock_hz = 33e6;
  cfg.vc_buckets = 64;
  cfg.fifo_cells = 128;
  nic::RxPath rx(sim, bus, mem, fw, cfg);

  // Pre-segment one small PDU per VC and interleave them round-robin at
  // the STS-3c slot rate.
  std::vector<std::vector<atm::Cell>> pdus(n_vcs);
  for (std::size_t v = 0; v < n_vcs; ++v) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(v + 1)};
    rx.open_vc(vc, aal::AalType::kAal5);
    pdus[v] = aal::aal5_segment(aal::make_pattern(400, v + 1), vc);
  }

  const sim::Time slot = atm::sts3c().cell_slot();
  sim::Time t = 0;
  const int rounds = 40;
  for (int round = 0; round < rounds; ++round) {
    for (std::size_t i = 0; i < pdus[0].size(); ++i) {
      for (std::size_t v = 0; v < n_vcs; ++v) {
        atm::Cell cell = pdus[v][i];
        cell.meta.created = t;
        sim.at(t, [&rx, cell] {
          net::WireCell w;
          w.bytes = cell.serialize(atm::HeaderFormat::kUni);
          w.meta = cell.meta;
          rx.receive_wire(w);
        });
        t += slot;
      }
    }
  }
  sim.run_until(t + sim::milliseconds(5));

  Result r;
  const auto cells = rx.cells_received() - rx.cells_fifo_dropped();
  r.instr_per_cell =
      cells == 0 ? 0.0
                 : static_cast<double>(rx.engine().instructions_retired()) /
                       static_cast<double>(cells);
  r.fifo_drops = rx.cells_fifo_dropped();
  r.pdus_ok = rx.pdus_delivered();
  return r;
}

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  // Smoke keeps the flat region, the load-factor-1 knee and the tail.
  const std::vector<std::size_t> counts =
      cli.smoke ? std::vector<std::size_t>{1, 64, 1024}
                : std::vector<std::size_t>{1, 4, 16, 64, 128, 256,
                                           512, 1024, 2048};
  double cam_1024 = 0.0, hash_1024 = 0.0;
  std::printf("F5: RX lookup cost vs concurrent VCs (64-bucket hash, "
              "33 MHz engine, STS-3c arrivals)\n");

  core::Table t({"active VCs", "CAM instr/cell", "hash instr/cell",
                 "hash/CAM", "CAM drops", "hash drops"});
  for (std::size_t n : counts) {
    const Result cam = run(n, true);
    const Result hash = run(n, false);
    if (n == 1024) {
      cam_1024 = cam.instr_per_cell;
      hash_1024 = hash.instr_per_cell;
    }
    t.add_row({core::Table::integer(n),
               core::Table::num(cam.instr_per_cell, 1),
               core::Table::num(hash.instr_per_cell, 1),
               core::Table::num(hash.instr_per_cell / cam.instr_per_cell, 2),
               core::Table::integer(cam.fifo_drops),
               core::Table::integer(hash.fifo_drops)});
  }
  t.print("F5: per-cell engine cost vs VC count");

  std::printf("\nReading: CAM-assisted lookup is flat in the VC count; "
              "software hashing grows linearly\nonce chains exceed one "
              "entry (load factor > 1), eating the engine's slack and "
              "eventually\ncausing FIFO loss — the scaling argument for "
              "the CAM in the receive datapath.\n");

  hni::bench::JsonEmitter json("bench_f5_vc_scaling");
  json.cost("f5_vc_scaling/cam_instr_per_cell_1024vc", cam_1024);
  json.cost("f5_vc_scaling/hash_instr_per_cell_1024vc", hash_1024);
  json.write_or_die(cli.json);
  return 0;
}
