// R5 — Robustness: automatic protection switching under trunk failure.
//
// The fabric-resilience plane assembled in this series — OAM F5
// continuity checking at the endpoints, hop-by-hop AIS insertion at the
// switch downstream of a failed trunk, RDI echo, and the signalling
// agent's holdoff/reroute/wait-to-restore machinery — exists so a trunk
// cut costs the fabric a restoration interval, not the outage.
//
// Scenario: a triangle fabric. Three CBR calls run sw0 -> sw1 over the
// primary trunk t0; a standby path rides through sw2 (t1 + t2). The
// primary trunk flaps on a fixed cycle (13 ms down in every 20 ms).
// With protection ON the agent reroutes each call onto the standby path
// one holdoff after the cut and reverts one wait-to-restore after the
// repair; with protection OFF (the pre-series fabric) every outage is
// eaten in full. Goodput over the flapping window is compared against a
// failure-free run of the same length, and each outage's
// time-to-restore — cut to first post-cut delivery at the sink — is
// recorded.
//
// The exit code enforces the acceptance criteria:
//   * protection ON:  goodput >= 80% of the failure-free run, and the
//     worst time-to-restore stays under 5 ms (holdoff 50 us + reroute
//     signalling + the CBR probe quantum);
//   * protection OFF: goodput < 40% of the failure-free run (the
//     ablation eats the 65% outage duty cycle);
//   * nothing stranded afterwards: calls release cleanly and the full
//     conservation audit (stations, hops, switches, agent books)
//     balances.
//
//   bench_r5_protection                  full run (20 failure cycles)
//   bench_r5_protection --smoke          4 cycles (CI-sized)
//   bench_r5_protection [--smoke] --json OUT.json
//                                        google-benchmark-style JSON
//                                        for scripts/bench_compare.py

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"

using namespace hni;

namespace {

constexpr std::size_t kCalls = 3;
constexpr std::size_t kPduBytes = 1500;
constexpr double kRateBps = 20e6;  // per call; 60 Mb/s aggregate
constexpr sim::Time kCyclePeriod = sim::milliseconds(20);
constexpr sim::Time kDownTime = sim::milliseconds(13);
constexpr sim::Time kWarmup = sim::milliseconds(10);
// Cells already past the cut drain to the sink within this bound; a
// delivery inside it is leftover flight, not restoration.
constexpr sim::Time kInFlightGuard = sim::microseconds(100);
constexpr double kRetainOn = 0.80;
constexpr double kCollapseOff = 0.40;
constexpr double kTtrBoundUs = 5000.0;

struct Outcome {
  bool protection = false;
  double goodput_mbps = 0;
  std::size_t delivered = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t reverts = 0;
  std::uint64_t defect_reports = 0;
  std::uint64_t ais_inserted = 0;
  double ttr_mean_us = 0;
  double ttr_max_us = 0;
  std::size_t outages = 0;
  std::size_t stranded = 0;
  bool books_ok = false;
};

Outcome run(bool protection, std::size_t cycles, bool flap) {
  core::Testbed bed;
  net::SwitchConfig swc{.ports = 8, .queue_cells = 512,
                       .clp_threshold = 512};
  auto& sw0 = bed.add_switch(swc);
  auto& sw1 = bed.add_switch(swc);
  auto& sw2 = bed.add_switch(swc);

  sig::SignalingConfig cfg;
  cfg.protection.enabled = protection;
  // No status audits during the run: a 13 ms signalling outage must not
  // let the reclaim sweep tear the calls down mid-measurement.
  cfg.audit_period = 0;
  sig::SignalingNetwork net(bed, {&sw0, &sw1, &sw2},
                            /*agent_switch=*/0, /*agent_port=*/3, cfg);
  const std::size_t t0 = net.add_trunk(0, 1, 1, 1);  // primary
  net.add_trunk(0, 2, 2, 0);                         // sw0 <-> sw2
  net.add_trunk(2, 1, 1, 2);                         // sw2 <-> sw1

  core::StationConfig stc;
  stc.nic.cc.enabled = true;
  std::vector<core::Station*> srcs, sinks;
  std::vector<sig::CallControl*> cc_src, cc_sink;
  const std::size_t ep_ports[kCalls] = {0, 4, 5};
  for (std::size_t i = 0; i < kCalls; ++i) {
    stc.name = "src" + std::to_string(i);
    srcs.push_back(&bed.add_station(stc));
    cc_src.push_back(&net.attach(*srcs[i], /*sw=*/0, ep_ports[i],
                                 static_cast<std::uint16_t>(1 + i)));
    stc.name = "sink" + std::to_string(i);
    sinks.push_back(&bed.add_station(stc));
    cc_sink.push_back(&net.attach(*sinks[i], /*sw=*/1, ep_ports[i],
                                  static_cast<std::uint16_t>(101 + i)));
    cc_sink[i]->set_incoming(
        [](const sig::CallControl::CallInfo&) { return true; });
  }

  std::vector<std::optional<atm::VcId>> src_vc(kCalls);
  std::vector<std::uint32_t> call_ids(kCalls, 0);
  for (std::size_t i = 0; i < kCalls; ++i) {
    call_ids[i] = cc_src[i]->place_call(
        static_cast<std::uint16_t>(101 + i), aal::AalType::kAal5, 0.0,
        [&src_vc, i](const sig::CallControl::CallInfo& info) {
          src_vc[i] = info.vc;
        });
  }
  bed.run_for(kWarmup);
  for (std::size_t i = 0; i < kCalls; ++i) {
    if (!src_vc[i]) {
      std::fprintf(stderr, "R5: call %zu failed to connect\n", i);
      std::exit(2);
    }
  }

  // Per-outage restoration clock, fed by the sink deliveries.
  std::uint64_t bytes = 0;
  std::size_t delivered = 0;
  bool awaiting_restore = false;
  sim::Time outage_start = 0;
  std::vector<double> ttr_us;
  for (std::size_t i = 0; i < kCalls; ++i) {
    sinks[i]->host().set_rx_handler(
        [&](aal::Bytes sdu, const host::RxInfo&) {
          ++delivered;
          bytes += sdu.size();
          if (awaiting_restore &&
              bed.now() > outage_start + kInFlightGuard) {
            ttr_us.push_back(sim::to_seconds(bed.now() - outage_start) *
                             1e6);
            awaiting_restore = false;
          }
        });
  }

  std::vector<std::shared_ptr<net::SduSource>> gens;
  for (std::size_t i = 0; i < kCalls; ++i) {
    net::SduSource::Config scfg;
    scfg.mode = net::SduSource::Mode::kCbr;
    scfg.sdu_bytes = kPduBytes;
    scfg.interval = static_cast<sim::Time>(
        kPduBytes * 8.0 / kRateBps * static_cast<double>(sim::kSecond));
    scfg.seed = 0xC0 + i;
    core::Station* st = srcs[i];
    const atm::VcId vc = *src_vc[i];
    gens.push_back(std::make_shared<net::SduSource>(
        bed.sim(), scfg, [st, vc](aal::Bytes sdu) {
          return st->host().send(vc, aal::AalType::kAal5, std::move(sdu));
        }));
    gens.back()->start();
  }

  // The flap schedule: a hard down/up square wave on the primary trunk.
  const auto [ab, ba] = net.trunk_links(t0);
  if (flap) {
    for (std::size_t k = 0; k < cycles; ++k) {
      const sim::Time cut = static_cast<sim::Time>(k) * kCyclePeriod;
      bed.sim().after(cut, [&, ab = ab, ba = ba] {
        ab->set_down(true);
        ba->set_down(true);
        outage_start = bed.now();
        awaiting_restore = true;
      });
      bed.sim().after(cut + kDownTime, [ab = ab, ba = ba] {
        ab->set_down(false);
        ba->set_down(false);
      });
    }
  }
  const sim::Time window = static_cast<sim::Time>(cycles) * kCyclePeriod;
  bed.run_for(window);
  for (auto& g : gens) g->stop();

  Outcome o;
  o.protection = protection;
  o.goodput_mbps =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(window) / 1e6;
  o.delivered = delivered;
  o.reroutes = net.reroutes();
  o.reverts = net.reverts();
  o.ais_inserted = sw0.cells_ais_inserted() + sw1.cells_ais_inserted() +
                   sw2.cells_ais_inserted();
  for (std::size_t i = 0; i < kCalls; ++i) {
    o.defect_reports += cc_src[i]->defect_reports();
    o.defect_reports += cc_sink[i]->defect_reports();
  }
  o.outages = ttr_us.size();
  for (const double t : ttr_us) {
    o.ttr_mean_us += t;
    o.ttr_max_us = std::max(o.ttr_max_us, t);
  }
  if (!ttr_us.empty()) o.ttr_mean_us /= static_cast<double>(ttr_us.size());

  // Epilogue: let the last cycle's repair settle, release every call,
  // and demand a spotless audit — wire hops included, since the CC
  // heartbeats stop with the data VCs.
  bed.run_for(sim::milliseconds(10));
  for (std::size_t i = 0; i < kCalls; ++i) {
    cc_src[i]->release(call_ids[i]);
  }
  bed.run_for(sim::milliseconds(20));
  o.stranded = net.stranded_vcis() + net.stranded_routes();
  auto auditor = bed.audit(/*include_hops=*/true);
  net.audit_invariants(auditor);
  o.books_ok = auditor.ok() && net.active_calls() == 0;
  if (!auditor.ok()) std::fputs(auditor.report().c_str(), stderr);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;
  const std::size_t cycles = smoke ? 4 : 20;

  std::printf("R5: protection switching — 3 CBR calls over a triangle "
              "fabric, primary trunk\ncut 13 ms in every 20 ms cycle "
              "(%zu cycles), protection ON vs OFF vs failure-free\n",
              cycles);

  const Outcome base = run(/*protection=*/true, cycles, /*flap=*/false);
  const Outcome on = run(/*protection=*/true, cycles, /*flap=*/true);
  const Outcome off = run(/*protection=*/false, cycles, /*flap=*/true);

  core::Table t({"run", "goodput Mb/s", "retention", "PDUs", "reroutes",
                 "reverts", "defect rpts", "AIS cells", "ttr mean us",
                 "ttr max us", "stranded", "books"});
  const auto row = [&](const char* name, const Outcome& o) {
    t.add_row({name, core::Table::num(o.goodput_mbps, 1),
               core::Table::num(o.goodput_mbps / base.goodput_mbps, 3),
               core::Table::integer(o.delivered),
               core::Table::integer(o.reroutes),
               core::Table::integer(o.reverts),
               core::Table::integer(o.defect_reports),
               core::Table::integer(o.ais_inserted),
               core::Table::num(o.ttr_mean_us, 0),
               core::Table::num(o.ttr_max_us, 0),
               core::Table::integer(o.stranded),
               o.books_ok ? "ok" : "FAIL"});
  };
  row("no-fail", base);
  row("prot on", on);
  row("prot off", off);
  t.print("R5: goodput retained across trunk-failure cycles");

  hni::bench::JsonEmitter json("bench_r5_protection");
  json.rate("r5_protection/goodput_on", on.goodput_mbps);
  json.score("r5_protection/retention_on",
             on.goodput_mbps / base.goodput_mbps);
  json.cost("r5_protection/time_to_restore_us", on.ttr_max_us);
  json.write_or_die(cli.json);

  bool ok = true;
  if (on.goodput_mbps < kRetainOn * base.goodput_mbps) {
    std::fprintf(stderr,
                 "R5: FAIL protection on: goodput %.1f below %.0f%% of "
                 "failure-free %.1f\n",
                 on.goodput_mbps, kRetainOn * 100, base.goodput_mbps);
    ok = false;
  }
  if (on.outages == 0 || on.ttr_max_us > kTtrBoundUs) {
    std::fprintf(stderr,
                 "R5: FAIL protection on: time-to-restore unbounded "
                 "(outages=%zu max=%.0f us, bound %.0f us)\n",
                 on.outages, on.ttr_max_us, kTtrBoundUs);
    ok = false;
  }
  if (off.goodput_mbps >= kCollapseOff * base.goodput_mbps) {
    std::fprintf(stderr,
                 "R5: FAIL protection off: goodput %.1f did not collapse "
                 "below %.0f%% of failure-free %.1f\n",
                 off.goodput_mbps, kCollapseOff * 100, base.goodput_mbps);
    ok = false;
  }
  if (on.reroutes == 0 || on.reverts == 0) {
    std::fprintf(stderr, "R5: FAIL protection on: no reroute/revert "
                 "activity (reroutes=%llu reverts=%llu)\n",
                 static_cast<unsigned long long>(on.reroutes),
                 static_cast<unsigned long long>(on.reverts));
    ok = false;
  }
  for (const Outcome* o : {&base, &on, &off}) {
    if (o->stranded != 0 || !o->books_ok) {
      std::fprintf(stderr, "R5: FAIL stranded resources or bad books "
                   "(stranded=%zu books=%d)\n",
                   o->stranded, o->books_ok ? 1 : 0);
      ok = false;
    }
  }

  std::printf(
      "\nReading: with protection on, each cut costs one holdoff plus a "
      "reroute handshake —\nthe agent moves the calls (contracted "
      "first) onto the sw2 standby path with their\nendpoint VCIs "
      "intact, then reverts one wait-to-restore after the repair. "
      "Goodput\nholds near the failure-free line and restoration stays "
      "bounded. With protection\noff the same fault chain still raises "
      "AIS/RDI and the endpoints still report the\ndefect, but nobody "
      "acts: every 13 ms outage is eaten in full and goodput tracks\n"
      "the 35%% duty cycle of the surviving trunk.\n");
  return ok ? 0 : 1;
}
