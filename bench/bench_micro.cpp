// Microbenchmarks (google-benchmark): hot paths of the library itself.
//
// These measure the *simulator's* implementation speed — the cost of
// running experiments — not the modeled hardware. Useful for keeping
// the event kernel and the codec paths fast enough that the full-system
// benches above stay cheap.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "aal/aal34.hpp"
#include "aal/aal5.hpp"
#include "atm/crc.hpp"
#include "atm/hec.hpp"
#include "sim/simulator.hpp"

using namespace hni;

static void BM_Crc32_9180(benchmark::State& state) {
  const aal::Bytes data = aal::make_pattern(9180, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          9180);
}
BENCHMARK(BM_Crc32_9180);

static void BM_Crc10_Cell(benchmark::State& state) {
  const aal::Bytes data = aal::make_pattern(48, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::crc10(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          48);
}
BENCHMARK(BM_Crc10_Cell);

static void BM_HecCompute(benchmark::State& state) {
  std::array<std::uint8_t, 4> header{0x12, 0x34, 0x56, 0x78};
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::hec_compute(
        std::span<const std::uint8_t, 4>(header.data(), 4)));
  }
}
BENCHMARK(BM_HecCompute);

static void BM_Aal5SegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const aal::Bytes sdu = aal::make_pattern(n, 3);
  const atm::VcId vc{0, 1};
  for (auto _ : state) {
    auto cells = aal::aal5_segment(sdu, vc);
    aal::Aal5Reassembler rx;
    for (const auto& c : cells) {
      auto d = rx.push(c);
      benchmark::DoNotOptimize(d);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Aal5SegmentReassemble)->Arg(512)->Arg(9180)->Arg(65535);

static void BM_Aal34SegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const aal::Bytes sdu = aal::make_pattern(n, 4);
  for (auto _ : state) {
    aal::Aal34Segmenter seg({0, 1});
    auto cells = seg.segment(sdu);
    aal::Aal34Reassembler rx;
    for (const auto& c : cells) {
      auto d = rx.push(c);
      benchmark::DoNotOptimize(d);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Aal34SegmentReassemble)->Arg(512)->Arg(9180);

namespace {

// The kernel's idiomatic client: a small trivially copyable functor,
// the shape every hot-path call site produces ([this, cell] captures).
// This is the perf-gate metric — scripts/check.sh --bench-compare
// reads its items_per_second out of BENCH_kernel.json.
struct ChainEvent {
  sim::Simulator* sim;
  std::uint64_t* count;
  std::uint64_t limit;
  void operator()() {
    if (++*count < limit) sim->after(1, ChainEvent{sim, count, limit});
  }
};

// A self-rescheduling timer that stops once the shared budget runs out
// — used to exercise the kernel with a deep, populated heap.
struct TimerEvent {
  sim::Simulator* sim;
  std::uint64_t* budget;
  void operator()() {
    if (*budget > 0) {
      --*budget;
      sim->after(100, TimerEvent{sim, budget});
    }
  }
};

}  // namespace

static void BM_SimulatorEventThroughput(benchmark::State& state) {
  constexpr std::uint64_t kEvents = 10000;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t count = 0;
    sim.after(1, ChainEvent{&sim, &count, kEvents});
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_SimulatorEventThroughput);

// The pre-overhaul shape: closures wrapped in std::function (copied,
// heap-allocated). Kept as a reference point for what call sites that
// can't use a plain functor pay.
static void BM_SimulatorEventThroughputStdFunction(
    benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10000) sim.after(1, chain);
    };
    sim.after(1, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventThroughputStdFunction);

// Event throughput with `depth` concurrent self-rescheduling timers —
// the heap shape of the scale scenarios (one timer per VC / link /
// engine) rather than a single chain.
static void BM_SimulatorPopulatedHeap(benchmark::State& state) {
  const auto depth = static_cast<std::uint64_t>(state.range(0));
  constexpr std::uint64_t kBudget = 100000;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t budget = kBudget;
    for (std::uint64_t i = 0; i < depth; ++i) {
      sim.at(static_cast<sim::Time>(i + 1), TimerEvent{&sim, &budget});
    }
    sim.run();
    fired += sim.events_fired();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_SimulatorPopulatedHeap)->Arg(256)->Arg(4096);

// Schedule-then-cancel churn: every fired event schedules a decoy and
// a successor, then cancels the decoy — the shaper-wakeup / signaling-
// timer pattern. Measures O(1) cancel plus lazy stale-node skimming.
static void BM_SimulatorCancelChurn(benchmark::State& state) {
  struct ChurnEvent {
    sim::Simulator* sim;
    std::uint64_t* count;
    std::uint64_t limit;
    void operator()() {
      if (++*count >= limit) return;
      const sim::EventHandle decoy =
          sim->after(2, ChurnEvent{sim, count, limit});
      sim->after(1, ChurnEvent{sim, count, limit});
      sim->cancel(decoy);
    }
  };
  constexpr std::uint64_t kEvents = 10000;
  for (auto _ : state) {
    sim::Simulator sim;
    std::uint64_t count = 0;
    sim.after(1, ChurnEvent{&sim, &count, kEvents});
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEvents));
}
BENCHMARK(BM_SimulatorCancelChurn);

static void BM_CellSerializeRoundtrip(benchmark::State& state) {
  atm::Cell cell;
  cell.header.vc = {3, 1234};
  cell.header.pti = atm::Pti::kUserData1;
  for (auto _ : state) {
    const auto wire = cell.serialize(atm::HeaderFormat::kUni);
    benchmark::DoNotOptimize(
        atm::Cell::deserialize(wire, atm::HeaderFormat::kUni));
  }
}
BENCHMARK(BM_CellSerializeRoundtrip);

// A main that speaks the fleet's flag dialect on top of
// google-benchmark's own. --smoke maps to the kernel-row subset at one
// repetition; --json PATH maps to --benchmark_out in JSON format. Any
// native --benchmark_* flag passes straight through (fleet.py relies on
// this for the --bench-compare 3-repetition run).
int main(int argc, char** argv) {
  std::vector<std::string> mapped;
  mapped.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      mapped.emplace_back("--benchmark_filter=BM_Simulator");
      mapped.emplace_back("--benchmark_repetitions=1");
      mapped.emplace_back("--benchmark_min_time=0.05");
    } else if (arg == "--json" && i + 1 < argc) {
      mapped.emplace_back(std::string("--benchmark_out=") + argv[++i]);
      mapped.emplace_back("--benchmark_out_format=json");
    } else {
      mapped.emplace_back(arg);
    }
  }
  std::vector<char*> args;
  args.reserve(mapped.size());
  for (std::string& s : mapped) args.push_back(s.data());
  int mapped_argc = static_cast<int>(args.size());
  benchmark::Initialize(&mapped_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(mapped_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
