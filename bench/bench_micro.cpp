// Microbenchmarks (google-benchmark): hot paths of the library itself.
//
// These measure the *simulator's* implementation speed — the cost of
// running experiments — not the modeled hardware. Useful for keeping
// the event kernel and the codec paths fast enough that the full-system
// benches above stay cheap.

#include <benchmark/benchmark.h>

#include "aal/aal34.hpp"
#include "aal/aal5.hpp"
#include "atm/crc.hpp"
#include "atm/hec.hpp"
#include "sim/simulator.hpp"

using namespace hni;

static void BM_Crc32_9180(benchmark::State& state) {
  const aal::Bytes data = aal::make_pattern(9180, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::crc32(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          9180);
}
BENCHMARK(BM_Crc32_9180);

static void BM_Crc10_Cell(benchmark::State& state) {
  const aal::Bytes data = aal::make_pattern(48, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::crc10(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          48);
}
BENCHMARK(BM_Crc10_Cell);

static void BM_HecCompute(benchmark::State& state) {
  std::array<std::uint8_t, 4> header{0x12, 0x34, 0x56, 0x78};
  for (auto _ : state) {
    benchmark::DoNotOptimize(atm::hec_compute(
        std::span<const std::uint8_t, 4>(header.data(), 4)));
  }
}
BENCHMARK(BM_HecCompute);

static void BM_Aal5SegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const aal::Bytes sdu = aal::make_pattern(n, 3);
  const atm::VcId vc{0, 1};
  for (auto _ : state) {
    auto cells = aal::aal5_segment(sdu, vc);
    aal::Aal5Reassembler rx;
    for (const auto& c : cells) {
      auto d = rx.push(c);
      benchmark::DoNotOptimize(d);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Aal5SegmentReassemble)->Arg(512)->Arg(9180)->Arg(65535);

static void BM_Aal34SegmentReassemble(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const aal::Bytes sdu = aal::make_pattern(n, 4);
  for (auto _ : state) {
    aal::Aal34Segmenter seg({0, 1});
    auto cells = seg.segment(sdu);
    aal::Aal34Reassembler rx;
    for (const auto& c : cells) {
      auto d = rx.push(c);
      benchmark::DoNotOptimize(d);
    }
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Aal34SegmentReassemble)->Arg(512)->Arg(9180);

static void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int count = 0;
    std::function<void()> chain = [&] {
      if (++count < 10000) sim.after(1, chain);
    };
    sim.after(1, chain);
    sim.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SimulatorEventThroughput);

static void BM_CellSerializeRoundtrip(benchmark::State& state) {
  atm::Cell cell;
  cell.header.vc = {3, 1234};
  cell.header.pti = atm::Pti::kUserData1;
  for (auto _ : state) {
    const auto wire = cell.serialize(atm::HeaderFormat::kUni);
    benchmark::DoNotOptimize(
        atm::Cell::deserialize(wire, atm::HeaderFormat::kUni));
  }
}
BENCHMARK(BM_CellSerializeRoundtrip);

BENCHMARK_MAIN();
