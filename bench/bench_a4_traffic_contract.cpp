// A4 — Ablation: traffic contracts (shaping vs policing) and cell-level
// VC interleaving.
//
// Two experiments on the QoS machinery:
//
//  (a) A VC crossing a switch that polices it to a quarter of STS-3c
//      (GCRA drop action): unshaped greedy sending loses most cells to
//      UPC and delivers almost nothing (every PDU takes a hit); shaping
//      the VC at the source to the same contract makes the identical
//      transfer lossless at the contracted rate.
//
//  (b) Head-of-line blocking: a small request PDU posted behind a 64 kB
//      bulk transfer. On one shared VC ATM forbids interleaving and the
//      request waits for the whole transfer; on its own VC the transmit
//      scheduler interleaves cell-by-cell and the request leaves almost
//      immediately.

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"

using namespace hni;

// Returns the shaped sender's delivered goodput (bytes/s).
double contract_experiment() {
  core::Table t({"sender", "policer drops", "PDUs delivered", "PDUs sent",
                 "goodput Mb/s"});
  double shaped_bytes_per_s = 0.0;
  for (bool shaped : {false, true}) {
    core::Testbed bed;
    auto& a = bed.add_station({});
    auto& b = bed.add_station({});
    auto& sw = bed.add_switch(
        {.ports = 2, .queue_cells = 256, .clp_threshold = 256});
    bed.connect_to_switch(a, sw, 0);
    bed.connect_from_switch(sw, 1, b);
    const atm::VcId vc{0, 9};
    sw.add_route(0, vc, 1, vc);
    const double pcr = atm::sts3c().cells_per_second() / 4.0;
    sw.add_policer(0, vc, pcr, sim::microseconds(1),
                   net::Switch::PoliceAction::kDrop);
    a.nic().open_vc(vc, aal::AalType::kAal5);
    b.nic().open_vc(vc, aal::AalType::kAal5);
    if (shaped) a.nic().tx().set_shaper(vc, pcr);

    std::uint64_t got_bytes = 0;
    std::size_t got = 0;
    b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
      ++got;
      got_bytes += s.size();
    });
    std::size_t sent = 0;
    std::function<void()> pump = [&] {
      while (sent < 64 && a.host().send(vc, aal::AalType::kAal5,
                                        aal::make_pattern(9180, sent))) {
        ++sent;
      }
    };
    a.host().set_tx_ready(pump);
    pump();
    const sim::Time window = sim::milliseconds(200);
    bed.run_for(window);
    if (shaped) {
      shaped_bytes_per_s =
          static_cast<double>(got_bytes) / sim::to_seconds(window);
    }

    t.add_row({shaped ? "shaped to contract (GCRA at TX)" : "unshaped greedy",
               core::Table::integer(sw.cells_policed_dropped()),
               core::Table::integer(got), core::Table::integer(sent),
               core::Table::num(static_cast<double>(got_bytes) * 8.0 /
                                    sim::to_seconds(window) / 1e6,
                                1)});
  }
  t.print("A4a: a VC policed to 1/4 STS-3c (~33.8 Mb/s contract)");
  return shaped_bytes_per_s;
}

// Returns the interleaved (own-VC) request latency in microseconds.
double hol_experiment() {
  core::Table t({"layout", "request latency", "bulk completion"});
  double interleaved_req_us = 0.0;
  for (bool own_vc : {false, true}) {
    core::Testbed bed;
    auto& a = bed.add_station({});
    auto& b = bed.add_station({});
    bed.connect(a, b);
    const atm::VcId bulk{0, 1};
    const atm::VcId req = own_vc ? atm::VcId{0, 2} : bulk;
    a.nic().open_vc(bulk, aal::AalType::kAal5);
    b.nic().open_vc(bulk, aal::AalType::kAal5);
    a.nic().open_vc(req, aal::AalType::kAal5);
    b.nic().open_vc(req, aal::AalType::kAal5);

    sim::Time req_done = 0, bulk_done = 0;
    b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
      (s.size() == 100 ? req_done : bulk_done) = bed.now();
    });
    a.host().send(bulk, aal::AalType::kAal5, aal::make_pattern(65535, 1));
    a.host().send(req, aal::AalType::kAal5, aal::make_pattern(100, 2));
    bed.run_for(sim::milliseconds(50));
    if (own_vc) interleaved_req_us = sim::to_microseconds(req_done);

    t.add_row({own_vc ? "request on its own VC (interleaved)"
                      : "request behind bulk on one VC (FIFO)",
               sim::format_time(req_done), sim::format_time(bulk_done)});
  }
  t.print("A4b: head-of-line blocking — 100-byte request behind a 64 kB "
          "transfer (STS-3c)");
  return interleaved_req_us;
}

int main(int argc, char** argv) {
  // Two fixed experiments at 200/50 ms windows; --smoke is a no-op.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  std::printf("A4: traffic contracts and per-VC scheduling\n");
  const double shaped_bytes_per_s = contract_experiment();
  const double interleaved_req_us = hol_experiment();
  std::printf(
      "\nReading: (a) UPC makes unshaped greedy traffic useless — nearly "
      "every PDU is damaged by\npoliced drops — while GCRA shaping at the "
      "interface turns the same contract into lossless\nthroughput at the "
      "contracted rate. (b) Cell-level interleaving across VCs removes "
      "head-of-line\nblocking entirely; within one VC ATM requires FIFO "
      "order and the request pays the full bulk\nserialization delay.\n");

  hni::bench::JsonEmitter json("bench_a4_traffic_contract");
  json.rate("a4_contract/shaped_goodput_bytes_per_s", shaped_bytes_per_s);
  json.cost("a4_contract/interleaved_request_us", interleaved_req_us);
  json.write_or_die(cli.json);
  return 0;
}
