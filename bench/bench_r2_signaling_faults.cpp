// R2 — Control-plane robustness: call success and stranded state vs
// signalling loss, recovery on vs off.
//
// Call churn through the switch-resident agent while every signalling
// sender (three endpoints + the agent) drops messages at a configured
// Bernoulli rate. Recovery = the Q.2931-style machinery: T303 SETUP
// retransmission, the T310 await-CONNECT deadline, T308 RELEASE
// retransmission with force-clear, and the agent's periodic status
// audit that reclaims half-open calls, stranded VCIs and stale routes.
// "Off" disables the endpoint timers and the audit while keeping the
// handshake and its accounting identical.
//
// Acceptance (enforced by exit status): at every loss rate >= 1% the
// recovery column must connect >= 99% of calls and end the run with
// zero stranded VCIs and zero stranded routes; the ablation must
// visibly strand state under the same loss — otherwise the storm was
// too gentle for the comparison to mean anything.

#include <cstdio>
#include "bench_util.hpp"

#include <cstring>
#include <functional>
#include <string>
#include <unordered_map>

#include "core/audit.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "sig/network.hpp"
#include "sim/random.hpp"

using namespace hni;

namespace {

struct Run {
  std::uint64_t placed = 0;
  std::uint64_t connected = 0;
  double success = 0.0;
  double mean_setup_us = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t reclaimed = 0;
  std::size_t stranded_vcis = 0;
  std::size_t stranded_routes = 0;
  std::size_t agent_leftover = 0;    // half-open calls still at the agent
  std::size_t endpoint_leftover = 0; // calls still live at some endpoint
  bool audit_ok = false;
  std::string audit_report;
};

Run run_once(double loss, int calls, std::uint64_t seed, bool recovery) {
  sig::SignalingConfig cfg;
  cfg.fault_seed = seed;
  // Six SETUP attempts ride out deep loss (10% per message) while the
  // last retry still lands well inside the T310 deadline.
  cfg.endpoint.t303_retries = 6;
  if (!recovery) {
    cfg.endpoint.retransmit = false;  // no T303/T310/T308
    cfg.audit_period = 0;             // no status audit, no reclamation
  }

  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 4, .queue_cells = 512, .clp_threshold = 512});
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  auto& carol = bed.add_station({.name = "carol"});
  sig::SignalingNetwork net(bed, sw, /*agent_port=*/3, cfg);
  auto& cc_alice = net.attach(alice, 0, 1);
  auto& cc_bob = net.attach(bob, 1, 2);
  auto& cc_carol = net.attach(carol, 2, 3);
  auto accept_all = [](const sig::CallControl::CallInfo&) { return true; };
  cc_bob.set_incoming(accept_all);
  cc_carol.set_incoming(accept_all);

  cc_alice.tap().set_drop_rate(loss);
  cc_bob.tap().set_drop_rate(loss);
  cc_carol.tap().set_drop_rate(loss);
  net.agent_tap().set_drop_rate(loss);

  // Churn: a call every 200 us alternating callees, held ~1 ms then
  // released, so several handshakes and teardowns are always in flight.
  sim::Time setup_total = 0;
  std::uint64_t setup_samples = 0;
  int to_place = calls;
  std::function<void()> place = [&] {
    if (to_place-- <= 0) return;
    const std::uint16_t callee = (to_place % 2 == 0) ? 2 : 3;
    const sim::Time t0 = bed.now();
    cc_alice.place_call(
        callee, aal::AalType::kAal5, 0.0,
        [&, t0](const sig::CallControl::CallInfo& info) {
          setup_total += bed.now() - t0;
          ++setup_samples;
          const std::uint32_t id = info.call_id;
          bed.sim().after(sim::milliseconds(1),
                          [&, id] { cc_alice.release(id); });
        });
    bed.sim().after(sim::microseconds(200), place);
  };
  place();

  // Run the churn, then drain long enough for bounded retransmissions
  // to settle and the audit to reclaim whatever the losses half-opened.
  bed.run_for(sim::microseconds(200) * calls + sim::milliseconds(10));
  bed.run_for(sim::milliseconds(60));

  Run out;
  out.placed = cc_alice.calls_placed();
  out.connected = cc_alice.calls_connected();
  out.success = out.placed > 0
                    ? static_cast<double>(out.connected) / out.placed
                    : 0.0;
  out.mean_setup_us = setup_samples > 0
                          ? sim::to_seconds(setup_total) * 1e6 / setup_samples
                          : 0.0;
  out.retransmits = cc_alice.retransmits() + cc_bob.retransmits() +
                    cc_carol.retransmits();
  out.reclaimed = net.calls_reclaimed();
  out.stranded_vcis = net.stranded_vcis();
  out.stranded_routes = net.stranded_routes();
  out.agent_leftover = net.active_calls();
  out.endpoint_leftover = cc_alice.active_calls() + cc_bob.active_calls() +
                          cc_carol.active_calls();
  auto audit = bed.audit(/*include_hops=*/true);
  net.audit_invariants(audit);
  out.audit_ok = audit.ok();
  out.audit_report = audit.report();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;
  const int calls = smoke ? 40 : 200;
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.02}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10};
  double worst_success = 1.0;
  double max_setup_us = 0.0;

  std::printf(
      "R2: call success and stranded control-plane state vs signalling "
      "loss, recovery on\nvs off. %d calls churned through the agent "
      "(hold ~1 ms); every signalling sender\ndrops at the given rate. "
      "Recovery = T303/T310/T308 timers + the agent's status\naudit. "
      "stranded = VCIs/routes owned by no call after the drain; "
      "leftover = half-open\ncalls still in a call table (agent + "
      "endpoints).\n",
      calls);

  core::Table t({"loss", "success on", "success off", "setup on",
                 "retx", "reclaimed", "stranded on", "stranded off",
                 "leftover on/off", "audit on/off"});
  bool acceptance_ok = true;
  bool ablation_stranded = false;
  for (const double loss : losses) {
    const std::uint64_t seed =
        9000 + static_cast<std::uint64_t>(loss * 1000.0);
    const Run on = run_once(loss, calls, seed, /*recovery=*/true);
    const Run off = run_once(loss, calls, seed, /*recovery=*/false);
    if (loss >= 0.01 && on.success < worst_success) {
      worst_success = on.success;
    }
    if (on.mean_setup_us > max_setup_us) max_setup_us = on.mean_setup_us;

    t.add_row({core::Table::percent(loss, 0),
               core::Table::percent(on.success, 1),
               core::Table::percent(off.success, 1),
               core::Table::num(on.mean_setup_us, 0) + " us",
               core::Table::integer(on.retransmits),
               core::Table::integer(on.reclaimed),
               core::Table::integer(on.stranded_vcis + on.stranded_routes),
               core::Table::integer(off.stranded_vcis + off.stranded_routes),
               core::Table::integer(on.agent_leftover +
                                    on.endpoint_leftover) + "/" +
                   core::Table::integer(off.agent_leftover +
                                        off.endpoint_leftover),
               std::string(on.audit_ok ? "ok" : "FAIL") + "/" +
                   (off.audit_ok ? "ok" : "FAIL")});

    if (!on.audit_ok) {
      std::printf("!! recovery-on audit failed at loss %.0f%%:\n%s",
                  loss * 100.0, on.audit_report.c_str());
      acceptance_ok = false;
    }
    if (!off.audit_ok) {
      std::printf("note: recovery-off audit at loss %.0f%%:\n%s",
                  loss * 100.0, off.audit_report.c_str());
    }
    if (loss >= 0.01) {
      if (on.success < 0.99 || on.stranded_vcis != 0 ||
          on.stranded_routes != 0 || on.agent_leftover != 0) {
        std::printf(
            "!! acceptance failed at loss %.0f%%: success %.3f, "
            "stranded vcis %zu routes %zu, leftover %zu\n",
            loss * 100.0, on.success, on.stranded_vcis,
            on.stranded_routes, on.agent_leftover);
        acceptance_ok = false;
      }
      if (off.agent_leftover + off.endpoint_leftover +
              off.stranded_vcis + off.stranded_routes > 0) {
        ablation_stranded = true;
      }
    }
  }
  t.print("R2: signalling loss vs call success and stranded state");

  if (!ablation_stranded) {
    std::printf(
        "!! ablation stranded nothing at any loss >= 1%% — the storm "
        "is too gentle to\n   demonstrate the recovery machinery.\n");
    acceptance_ok = false;
  }
  std::printf(
      "\nReading: bounded retransmission rides out lost SETUP/CONNECT/"
      "RELEASE messages, the\nT310 deadline converts unrecoverable "
      "setups into clean failures, and the status\naudit reclaims "
      "every half-open call the losses leave at the agent — the "
      "recovery\ncolumn ends every run with zero stranded VCIs and "
      "routes. The ablation leaks\nhalf-open state it can never clean "
      "up.\n%s\n",
      acceptance_ok ? "ACCEPTANCE: ok" : "ACCEPTANCE: FAILED");

  hni::bench::JsonEmitter json("bench_r2_signaling_faults");
  json.score("r2_signaling/worst_success_with_recovery", worst_success);
  json.cost("r2_signaling/max_mean_setup_us", max_setup_us);
  json.score("r2_signaling/acceptance", acceptance_ok ? 1.0 : 0.0);
  json.write_or_die(cli.json);
  return acceptance_ok ? 0 : 1;
}
