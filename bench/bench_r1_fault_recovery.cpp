// R1 — Robustness: goodput vs fault intensity, with and without
// recovery.
//
// One seeded chaos schedule per intensity level (so "with" and
// "without" see the identical storm), real AAL5 traffic with payload
// verification at the receiver, and the invariant auditor run over the
// quiesced testbed at the end of every cell. Recovery = DMA retry with
// backoff, TX/RX progress watchdogs, reassembly-timeout sweep and the
// AIS/RDI alarm reaction; "off" disables all of them while keeping the
// datapath and its accounting identical.

#include <cstdio>
#include <vector>
#include "bench_util.hpp"

#include <string>

#include "core/audit.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sim/fault.hpp"

using namespace hni;

namespace {

constexpr atm::VcId kVc{0, 42};

struct Run {
  double goodput_mbps = 0.0;
  std::uint64_t received = 0;
  std::uint64_t bad = 0;
  std::uint64_t retries = 0;
  std::uint64_t gave_up = 0;
  std::uint64_t watchdog_resets = 0;
  std::uint64_t aborted = 0;
  std::uint64_t rdi = 0;
  bool audit_ok = false;
};

Run run_once(std::size_t faults, std::uint64_t seed, bool recovery) {
  core::StationConfig sc;
  sc.host.max_inflight_tx = 64;
  // Tight watchdog sampling: a wedge costs at most ~2 intervals, so the
  // recovery column reflects the watchdog, not the sampling period.
  sc.nic.tx.watchdog_interval = sim::milliseconds(2);
  sc.nic.rx.watchdog_interval = sim::milliseconds(2);
  if (!recovery) {
    sc.nic.tx.watchdog_interval = 0;
    sc.nic.rx.watchdog_interval = 0;
    sc.nic.ais_period = 0;
    sc.nic.tx.dma.max_retries = 0;
    sc.nic.rx.dma.max_retries = 0;
  }

  core::Testbed bed;
  auto& a = bed.add_station(sc);
  auto& b = bed.add_station(sc);
  auto links = bed.connect(a, b);
  net::Link* ab = links.first;
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  Run out;
  std::uint64_t bytes = 0;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    ++out.received;
    bytes += sdu.size();
    if (!aal::verify_pattern(sdu)) ++out.bad;
  });

  net::SduSource::Config tc;
  tc.mode = net::SduSource::Mode::kGreedy;
  tc.sdu_bytes = 4000;
  tc.count = 0;  // as much as the window allows
  net::SduSource source(bed.sim(), tc, [&](aal::Bytes sdu) {
    return a.host().send(kVc, aal::AalType::kAal5, std::move(sdu));
  });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();

  sim::FaultInjector inj(bed.sim(), seed);
  inj.register_point("tx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      a.nic().tx().dma().fail_next(static_cast<std::uint64_t>(e.magnitude));
    }
  }, 2.0);
  inj.register_point("rx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().fail_next(static_cast<std::uint64_t>(e.magnitude));
    }
  }, 2.0);
  inj.register_point("tx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.nic().tx().wedge_engine();
  });
  inj.register_point("rx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) b.nic().rx().wedge_engine();
  });
  inj.register_point("link.flap", [&](const sim::FaultEvent& e) {
    ab->set_down(e.phase == sim::FaultPhase::kBegin);
  });
  inj.register_point("board.squeeze", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().board_memory().set_capacity_limit(4);
    } else {
      b.nic().rx().board_memory().clear_capacity_limit();
    }
  });
  inj.register_point("bus.holdoff", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.bus().hold_off(e.duration);
  });
  inj.register_point("rx.dma.stall", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().stall(e.duration);
    }
  });

  const sim::Time window = sim::milliseconds(60);
  if (faults > 0) {
    inj.chaos(sim::milliseconds(1), window, faults,
              sim::microseconds(500));
  }
  // Measure over the fault window, then stop the offered load and let
  // everything quiesce (the hop audits need a drained wire).
  bed.run_for(window);
  const std::uint64_t window_bytes = bytes;
  source.stop();
  bed.run_for(sim::milliseconds(80));

  out.goodput_mbps = static_cast<double>(window_bytes) * 8.0 /
                     sim::to_seconds(window) / 1e6;
  out.retries =
      a.nic().tx().dma().retries() + b.nic().rx().dma().retries();
  out.gave_up =
      a.nic().tx().dma().gave_up() + b.nic().rx().dma().gave_up();
  out.watchdog_resets =
      a.nic().tx().watchdog_resets() + b.nic().rx().watchdog_resets();
  out.aborted = a.nic().tx().pdus_aborted() + b.nic().rx().pdus_aborted();
  out.rdi = b.nic().rdi_sent();
  out.audit_ok = bed.audit(/*include_hops=*/true).ok();

  if (faults == 0 && recovery) {
    // Print the standard per-station fault/recovery accounting once,
    // for the healthy baseline (all zeros is the point).
    core::fault_recovery_table(a).print("R1: tx-station fault/recovery");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  // Smoke keeps the clean baseline, one mid storm and the worst storm.
  const std::vector<std::size_t> intensities =
      cli.smoke ? std::vector<std::size_t>{0, 16, 64}
                : std::vector<std::size_t>{0, 8, 16, 32, 64};
  double goodput_on_64 = 0.0;
  bool audits_ok = true;
  std::printf(
      "R1: goodput vs fault intensity, recovery on vs off. One seeded "
      "chaos schedule per\nintensity (identical storm for both "
      "columns); greedy 4000-byte AAL5 traffic over a 60 ms\nwindow. "
      "Faults: DMA failures/stalls, engine wedges, link flaps, board "
      "squeezes, bus\nhold-offs. audit = invariant auditor verdict "
      "after quiescence (buffer/container/cell\nconservation at both "
      "stations plus wire-hop accounting).\n");

  core::Table t({"faults", "goodput on", "goodput off", "degraded",
                 "retries", "gave up", "wd resets", "aborted", "rdi",
                 "audit on/off"});
  for (std::size_t faults : intensities) {
    const Run on = run_once(faults, 5000 + faults, true);
    const Run off = run_once(faults, 5000 + faults, false);
    if (faults == 64) goodput_on_64 = on.goodput_mbps;
    audits_ok = audits_ok && on.audit_ok && off.audit_ok;
    const double degraded =
        on.goodput_mbps > 0.0
            ? 1.0 - off.goodput_mbps / on.goodput_mbps
            : 0.0;
    t.add_row({core::Table::integer(faults),
               core::Table::num(on.goodput_mbps, 1) + " Mb/s",
               core::Table::num(off.goodput_mbps, 1) + " Mb/s",
               core::Table::percent(degraded, 1),
               core::Table::integer(on.retries),
               core::Table::integer(on.gave_up),
               core::Table::integer(on.watchdog_resets),
               core::Table::integer(on.aborted),
               core::Table::integer(on.rdi),
               std::string(on.audit_ok ? "ok" : "FAIL") + "/" +
                   (off.audit_ok ? "ok" : "FAIL")});
    if (on.bad + off.bad > 0) {
      std::printf("!! payload verification failures: on=%llu off=%llu\n",
                  static_cast<unsigned long long>(on.bad),
                  static_cast<unsigned long long>(off.bad));
    }
  }
  t.print("R1: goodput vs fault intensity");
  std::printf(
      "\nReading: retries absorb transient DMA faults at zero goodput "
      "cost; watchdog resets\nbound the damage of a wedged engine to "
      "one sampling interval; without them a single\nwedge is "
      "permanent and goodput collapses with intensity. The auditor "
      "passes in every\ncell: recovery changes how much arrives, "
      "never where the books stand.\n");

  hni::bench::JsonEmitter json("bench_r1_fault_recovery");
  json.rate("r1_fault_recovery/goodput_on_bytes_per_s_f64",
            goodput_on_64 * 1e6 / 8.0);
  json.score("r1_fault_recovery/audits_clean", audits_ok ? 1.0 : 0.0);
  json.write_or_die(cli.json);
  return audits_ok ? 0 : 1;
}
