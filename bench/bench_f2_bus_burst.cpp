// F2 — TURBOchannel effective bandwidth vs DMA burst length.
//
// Every transaction pays arbitration/address overhead; only long bursts
// amortize it. The figure reports effective bandwidth per burst size
// and derives the minimum burst needed to sustain each SONET rate in
// each direction — the arithmetic that justifies descriptor-based DMA
// over per-cell programmed I/O.

#include <cstdio>

#include "bench_util.hpp"
#include "aal/aal5.hpp"
#include "atm/phy.hpp"
#include "bus/turbochannel.hpp"
#include "core/report.hpp"

using namespace hni;

int main(int argc, char** argv) {
  // Pure arithmetic over the bus model; --smoke is a documented no-op.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double wr64 = 0.0;  // effective write bandwidth at the 64-word burst
  sim::Simulator sim;
  std::printf("F2: TURBOchannel (32-bit, 25 MHz, 100 MB/s peak) effective "
              "bandwidth vs burst length\n");

  core::Table t({"burst words", "write MB/s", "read MB/s",
                 "write efficiency", "sustains STS-3c", "sustains STS-12c"});
  const double sts3_bytes = atm::sts3c().payload_bps / 8.0;
  const double sts12_bytes = atm::sts12c().payload_bps / 8.0;

  for (std::size_t burst : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    bus::BusConfig cfg;
    cfg.max_burst_words = burst;
    bus::Bus bus(sim, cfg);
    const std::size_t bytes = 1 << 20;
    const double wr =
        bytes / sim::to_seconds(bus.transfer_time(bytes,
                                                  bus::Direction::kWrite));
    const double rd =
        bytes / sim::to_seconds(bus.transfer_time(bytes,
                                                  bus::Direction::kRead));
    if (burst == 64) wr64 = wr;
    t.add_row({core::Table::integer(burst), core::Table::num(wr / 1e6, 1),
               core::Table::num(rd / 1e6, 1),
               core::Table::percent(wr / cfg.peak_bytes_per_second()),
               std::min(wr, rd) >= sts3_bytes ? "yes" : "NO",
               std::min(wr, rd) >= sts12_bytes ? "yes" : "NO"});
  }
  t.print("F2a: effective bandwidth vs burst length");

  // The PIO comparison: what the host pays if it moves cells itself.
  bus::Bus bus(sim, bus::BusConfig{});
  core::Table p({"method", "time per 53-octet cell", "cells/s",
                 "max line rate"});
  const sim::Time pio =
      bus.pio_time(atm::kCellSize, bus::Direction::kWrite);
  const sim::Time burst =
      bus.transfer_time(atm::kCellSize, bus::Direction::kWrite);
  auto add = [&](const char* name, sim::Time per_cell) {
    const double cps = 1.0 / sim::to_seconds(per_cell);
    p.add_row({name, sim::format_time(per_cell),
               core::Table::num(cps, 0),
               core::Table::num(cps * 424.0 / 1e6, 1) + " Mb/s"});
  };
  add("programmed I/O (word at a time)", pio);
  add("single-cell DMA burst", burst);
  add("whole-PDU DMA (9180 B, amortized)",
      bus.transfer_time(9180, bus::Direction::kWrite) /
          static_cast<sim::Time>(aal::aal5_cell_count(9180)));
  p.print("F2b: per-cell bus cost by transfer discipline");

  hni::bench::JsonEmitter json("bench_f2_bus_burst");
  json.rate("f2_bus/write_bytes_per_s_burst64", wr64);
  json.cost("f2_bus/pio_cell_us", sim::to_microseconds(pio));
  json.write_or_die(cli.json);
  return 0;
}
