// R4 — Fairness: who gets the port when everybody wants it.
//
// The traffic-management plane finished in this series — DWRR service
// weights at the output queues, trTCM two-rate metering at UPC, and an
// ERICA-style explicit-rate loop stamping backward RM cells — exists
// so that *shares* under overload are a configured policy, not an
// accident of arrival timing. This benchmark measures the shares.
//
// Scenarios (all into one STS-3c output port):
//
//   abr-equal   four ABR sources, each offering 0.5x the port's AAL5
//               ceiling (2x overload total), equal DWRR weights, the
//               ERICA loop closed end to end (EFCI -> RM at the sink,
//               ER stamped at the switch, shaper convergence at the
//               sources). Acceptance: Jain's fairness index across the
//               four delivered rates >= 0.95.
//
//   dwrr-w124   three backlogged flows with DWRR weights {1, 2, 4} and
//               *equal* offered loads (2x total), per-VC buffer
//               accounting on (vc_epd_cells / vc_queue_cells) so each
//               queue stays backlogged without crowding the shared
//               pool. Acceptance: every delivered share within 10% of
//               its weight fraction — the shares come from the grants,
//               not from the offered mix.
//
//   rr-ablation the same offers under plain round-robin. The weight-4
//               flow collapses toward an equal split — evidence that
//               the DWRR grants, not the offered-load mix, set the
//               shares. Acceptance: its goodput <= 85% of what DWRR
//               delivers it.
//
//   mix-2x      the full service-class mix at 2x: a shaped CBR
//               contract (weight 2), an on/off VBR flow metered by
//               trTCM (green passes, yellow tags CLP, red dies at
//               UPC), two ABR and two UBR elastic flows. Acceptance:
//               the CBR contract keeps >= 85% of its share, all three
//               meter colors are exercised, books balance.
//
//   bench_r4_fairness                  full run (250 ms windows)
//   bench_r4_fairness --smoke          100 ms windows (CI-sized)
//   bench_r4_fairness [--smoke] --json OUT.json
//                                      google-benchmark-style JSON for
//                                      scripts/bench_compare.py (the
//                                      Jain rows carry higher_is_better
//                                      values)

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/switch.hpp"
#include "net/traffic.hpp"

using namespace hni;

namespace {

constexpr std::size_t kPduBytes = 9180;
constexpr double kPduBits = kPduBytes * 8.0;
// AAL5 goodput ceiling of an STS-3c port at 9180-byte PDUs.
constexpr double kCeilingBps = 135.1e6;

constexpr double kJainFloor = 0.95;     // abr-equal acceptance
constexpr double kShareTolerance = 0.10; // dwrr-w124 acceptance
constexpr double kAblationCap = 0.85;   // rr w4 vs dwrr w4
constexpr double kCbrProtection = 0.85; // mix: CBR keeps its contract

enum class Class {
  kCbrContract,  // shaped at the source to its contract; weight > 1
  kVbrMetered,   // on/off, trTCM meter at UPC (CIR = contract)
  kAbr,          // Poisson elastic, ERICA explicit-rate participant
  kUbr,          // Poisson elastic, CI-feedback only
  kBacklog,      // CBR-spaced open loop, no shaper: keeps its per-VC
                 //   queue backlogged so DWRR grants set its share
};

struct FlowSpec {
  Class cls;
  double offered;        // fraction of the ceiling offered
  double contract = 0;   // CBR shaper rate / VBR CIR, as a fraction
  std::uint32_t weight = 1;
};

struct Scenario {
  const char* name;
  std::vector<FlowSpec> flows;
  net::SwitchScheduler scheduler = net::SwitchScheduler::kDwrr;
  bool abr_loop = false;  // ERICA at the switch + explicit-rate at NICs
  /// Per-VC buffer accounting instead of the shared-pool plane: the
  /// shared EPD/WRED thresholds are off, each VC gated and capped on
  /// its own queue, so scheduler grants alone decide delivered shares.
  bool per_vc_books = false;
};

struct Outcome {
  std::vector<double> goodput_bps;  // per flow
  double total_mbps = 0;
  double jain = 0;           // over raw per-flow rates
  double jain_weighted = 0;  // over weight-normalised rates
  double max_share_err = 0;  // vs weight fractions, relative
  std::uint64_t er_stamped = 0;
  std::uint64_t meter_green = 0;
  std::uint64_t meter_yellow = 0;
  std::uint64_t meter_red = 0;
  std::uint64_t epd_pdus = 0;
  std::uint64_t overflow = 0;
  std::uint64_t throttles = 0;
  bool books_ok = false;
};

double jain_index(const std::vector<double>& xs) {
  double sum = 0, sq = 0;
  for (double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

Outcome run(const Scenario& sc, sim::Time window) {
  const std::size_t n = sc.flows.size();
  const std::size_t sink_port = n;

  core::Testbed bed;
  net::SwitchConfig swc;
  swc.ports = n + 1;
  swc.queue_cells = 1024;
  swc.clp_threshold = 896;
  swc.scheduler = sc.scheduler;
  if (sc.per_vc_books) {
    // Per-VC accounting: EPD-gate each fresh frame on the VC's own
    // queue once it holds a full 192-cell PDU plus slack (so a slow
    // flow keeps a standing backlog between service turns instead of
    // starving), hard-cap residency one PDU past the gate (admitted
    // frames never overrun mid-PDU), and size the pool above the sum
    // of the caps so only the per-VC books ever bind.
    swc.vc_epd_cells = 256;
    swc.vc_queue_cells = 512;
    swc.queue_cells = 2048;
    swc.clp_threshold = 2048;
  } else {
    swc.epd_threshold = 512;
    swc.wred.enabled = true;
    swc.wred.min_cells = 600;
    swc.wred.max_cells = 1024;
    swc.wred.max_p = 0.05;
    swc.wred.clp1_min_cells = 256;  // tagged band: trTCM yellow dies first
    swc.wred.clp1_max_cells = 512;
    swc.wred.clp1_max_p = 1.0;
  }
  if (sc.abr_loop) {
    swc.efci_threshold = 192;
    swc.abr.enabled = true;
  }
  auto& sw = bed.add_switch(swc);

  core::StationConfig stc;
  stc.nic.congestion.enabled = sc.abr_loop;
  stc.nic.congestion.explicit_rate = sc.abr_loop;
  std::vector<core::Station*> sources;
  for (std::size_t i = 0; i < n; ++i) {
    stc.name = "src" + std::to_string(i);
    sources.push_back(&bed.add_station(stc));
  }
  stc.name = "sink";
  auto& sink = bed.add_station(stc);

  net::LossModel jitter;
  jitter.cdv_jitter = sim::microseconds(6);
  const double port_cells = swc.port_rate.cells_per_second();
  for (std::size_t i = 0; i < n; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(10 + i)};
    const FlowSpec& f = sc.flows[i];
    bed.connect_to_switch(*sources[i], sw, i, jitter);
    bed.connect_from_switch(sw, i, *sources[i]);
    sw.add_route(i, vc, sink_port, vc, f.weight, f.cls == Class::kAbr);
    sw.add_route(sink_port, vc, i, vc);  // backward RM path
    sources[i]->nic().open_vc(vc, aal::AalType::kAal5);
    sink.nic().open_vc(vc, aal::AalType::kAal5);
    if (f.cls == Class::kCbrContract) {
      sources[i]->nic().tx().set_shaper(vc, 1.05 * f.contract * port_cells,
                                        sim::microseconds(3));
    } else if (f.cls == Class::kVbrMetered) {
      atm::TrTcmConfig m;
      m.cir_cells_per_second = f.contract * port_cells;
      m.pir_cells_per_second = 1.3 * f.offered * port_cells;
      m.cbs_cells = 50;
      m.pbs_cells = 200;
      sw.add_meter(i, vc, m);
    }
  }
  bed.connect_to_switch(sink, sw, sink_port);
  bed.connect_from_switch(sw, sink_port, sink);

  std::vector<std::uint64_t> bytes(n, 0);
  sink.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo& info) {
    const std::size_t i = static_cast<std::size_t>(info.vc.vci) - 10;
    if (i < n) bytes[i] += s.size();
  });

  std::vector<std::shared_ptr<net::SduSource>> gens;
  for (std::size_t i = 0; i < n; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(10 + i)};
    const FlowSpec& f = sc.flows[i];
    const double rate_bps = f.offered * kCeilingBps;
    const sim::Time mean_gap = static_cast<sim::Time>(
        kPduBits / rate_bps * static_cast<double>(sim::kSecond));
    net::SduSource::Config cfg;
    cfg.sdu_bytes = kPduBytes;
    cfg.count = 0;
    cfg.seed = 0xF4 + i;
    switch (f.cls) {
      case Class::kCbrContract:
        cfg.mode = net::SduSource::Mode::kCbr;
        cfg.interval = mean_gap;
        break;
      case Class::kVbrMetered:
        cfg.mode = net::SduSource::Mode::kOnOff;  // 50% duty
        cfg.interval = mean_gap / 2;
        cfg.mean_on = sim::milliseconds(2);
        cfg.mean_off = sim::milliseconds(2);
        break;
      case Class::kAbr:
      case Class::kUbr:
        cfg.mode = net::SduSource::Mode::kPoisson;
        cfg.interval = mean_gap;
        break;
      case Class::kBacklog:
        // Deterministic spacing keeps the per-VC queue backlogged
        // without Poisson counting noise; a small per-flow detune
        // breaks the rational phase locking that synchronised CBR
        // periods would otherwise develop against the EPD gate.
        cfg.mode = net::SduSource::Mode::kCbr;
        cfg.interval =
            static_cast<sim::Time>(static_cast<double>(mean_gap) *
                                   (1.0 + 0.0137 * static_cast<double>(i)));
        break;
    }
    core::Station* st = sources[i];
    gens.push_back(std::make_shared<net::SduSource>(
        bed.sim(), cfg, [st, vc](aal::Bytes sdu) {
          return st->host().send(vc, aal::AalType::kAal5, std::move(sdu));
        }));
    gens.back()->start();
  }

  bed.run_for(window);
  // Snapshot at the window edge: deliveries during the drain below
  // (source NIC/host backlogs emptying at an uncontended port) are not
  // "goodput under overload" and would inflate every rate.
  const std::vector<std::uint64_t> window_bytes = bytes;
  for (auto& g : gens) g->stop();
  // Let the queues drain, then audit the books.
  bed.run_for(sim::milliseconds(200));

  Outcome o;
  const double secs = sim::to_seconds(window);
  double weight_sum = 0;
  for (const FlowSpec& f : sc.flows) weight_sum += f.weight;
  std::vector<double> normalised;
  for (std::size_t i = 0; i < n; ++i) {
    const double bps = static_cast<double>(window_bytes[i]) * 8.0 / secs;
    o.goodput_bps.push_back(bps);
    o.total_mbps += bps / 1e6;
    normalised.push_back(bps / sc.flows[i].weight);
  }
  o.jain = jain_index(o.goodput_bps);
  o.jain_weighted = jain_index(normalised);
  const double total =
      o.total_mbps > 0 ? o.total_mbps * 1e6 : 1.0;  // avoid 0/0
  for (std::size_t i = 0; i < n; ++i) {
    const double target = sc.flows[i].weight / weight_sum;
    const double got = o.goodput_bps[i] / total;
    const double err = target > 0 ? std::abs(got - target) / target : 0;
    o.max_share_err = std::max(o.max_share_err, err);
  }
  o.er_stamped = sw.rm_cells_er_stamped();
  o.meter_green = sw.cells_meter_green();
  o.meter_yellow = sw.cells_meter_yellow();
  o.meter_red = sw.cells_meter_red();
  o.epd_pdus = sw.pdus_epd_discarded();
  o.overflow = sw.cells_dropped_overflow();
  for (core::Station* s : sources) {
    o.throttles += s->nic().congestion_throttle_events();
  }
  auto auditor = bed.audit(/*include_hops=*/true);
  o.books_ok = auditor.ok();
  if (!o.books_ok) std::fputs(auditor.report().c_str(), stderr);
  return o;
}

std::string per_flow(const Outcome& o) {
  std::string s;
  for (std::size_t i = 0; i < o.goodput_bps.size(); ++i) {
    if (i != 0) s += "/";
    s += core::Table::num(o.goodput_bps[i] / 1e6, 1);
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;

  std::printf("R4: fairness — DWRR weights, trTCM metering and the ERICA "
              "explicit-rate loop\nsharing one STS-3c port under "
              "overload (ceiling ~135.1 Mb/s)\n");

  // The weighted shares are measured in whole 9180-byte PDUs; the
  // window must hold enough of the weight-1 flow's frames that the
  // in-flight backlog at the window edge is measurement noise, not a
  // share shift.
  const sim::Time window =
      smoke ? sim::milliseconds(200) : sim::milliseconds(500);

  // Four equal ABR sources at 2x overload: the ERICA loop must walk
  // each down to the same fair share.
  Scenario abr_equal{"abr-equal",
                     {{Class::kAbr, 0.5},
                      {Class::kAbr, 0.5},
                      {Class::kAbr, 0.5},
                      {Class::kAbr, 0.5}},
                     net::SwitchScheduler::kDwrr,
                     /*abr_loop=*/true};

  // Weighted backlogged flows at *equal* offered loads (2x total):
  // with per-VC buffer accounting every queue stays backlogged, so the
  // delivered shares can only come from the DWRR grants. Each offer
  // (0.667x) exceeds the largest weighted share (4/7 = 0.571x).
  Scenario dwrr_w124{"dwrr-w124",
                     {{Class::kBacklog, 2.0 / 3, 0, 1},
                      {Class::kBacklog, 2.0 / 3, 0, 2},
                      {Class::kBacklog, 2.0 / 3, 0, 4}},
                     net::SwitchScheduler::kDwrr,
                     /*abr_loop=*/false,
                     /*per_vc_books=*/true};
  Scenario rr_ablation = dwrr_w124;
  rr_ablation.name = "rr-ablation";
  rr_ablation.scheduler = net::SwitchScheduler::kRoundRobin;

  // The full service-class mix at 2x offered load.
  Scenario mix{"mix-2x",
               {{Class::kCbrContract, 0.30, 0.15, 2},
                {Class::kVbrMetered, 0.40, 0.20, 1},
                {Class::kAbr, 0.35},
                {Class::kAbr, 0.35},
                {Class::kUbr, 0.30},
                {Class::kUbr, 0.30}},
               net::SwitchScheduler::kDwrr,
               /*abr_loop=*/true};

  core::Table t({"scenario", "sched", "goodput Mb/s (per flow)", "total",
                 "Jain", "Jain/w", "share err", "ER stamps",
                 "meter g/y/r", "EPD", "throttles", "books"});
  std::vector<std::pair<const Scenario*, Outcome>> rows;
  for (const Scenario* sc :
       {&abr_equal, &dwrr_w124, &rr_ablation, &mix}) {
    Outcome o = run(*sc, window);
    t.add_row({sc->name,
               sc->scheduler == net::SwitchScheduler::kDwrr ? "dwrr" : "rr",
               per_flow(o), core::Table::num(o.total_mbps, 1),
               core::Table::num(o.jain, 3),
               core::Table::num(o.jain_weighted, 3),
               core::Table::num(o.max_share_err * 100, 1) + "%",
               core::Table::integer(o.er_stamped),
               core::Table::integer(o.meter_green) + "/" +
                   core::Table::integer(o.meter_yellow) + "/" +
                   core::Table::integer(o.meter_red),
               core::Table::integer(o.epd_pdus),
               core::Table::integer(o.throttles),
               o.books_ok ? "ok" : "FAIL"});
    rows.emplace_back(sc, std::move(o));
  }
  t.print("R4: delivered shares under overload");

  const Outcome& abr = rows[0].second;
  const Outcome& dwrr = rows[1].second;
  const Outcome& rr = rows[2].second;
  const Outcome& mixed = rows[3].second;

  const double dwrr_w4 = dwrr.goodput_bps[2];
  const double rr_w4 = rr.goodput_bps[2];
  const double cbr_contract_bps = 0.15 * kCeilingBps;
  std::printf("\nweighted detail: w4 flow gets %.1f Mb/s under DWRR vs "
              "%.1f Mb/s under RR (%.0f%%);\nCBR contract in the mix "
              "delivered %.1f of %.1f Mb/s (%.0f%%)\n",
              dwrr_w4 / 1e6, rr_w4 / 1e6,
              dwrr_w4 > 0 ? 100 * rr_w4 / dwrr_w4 : 0,
              mixed.goodput_bps[0] / 1e6, cbr_contract_bps / 1e6,
              100 * mixed.goodput_bps[0] / cbr_contract_bps);

  hni::bench::JsonEmitter json("bench_r4_fairness");
  json.score("r4_fairness/jain_abr_2x", abr.jain);
  json.score("r4_fairness/jain_weighted_dwrr", dwrr.jain_weighted);
  json.rate("r4_fairness/goodput_mix_2x", mixed.total_mbps);
  json.write_or_die(cli.json);

  // Acceptance, enforced by exit code.
  bool ok = true;
  if (abr.jain < kJainFloor) {
    std::fprintf(stderr,
                 "R4: FAIL abr-equal: Jain %.3f below %.2f at 2x overload\n",
                 abr.jain, kJainFloor);
    ok = false;
  }
  if (abr.er_stamped == 0 || abr.throttles == 0) {
    std::fprintf(stderr, "R4: FAIL abr-equal: explicit-rate loop never "
                 "engaged (stamps=%llu throttles=%llu)\n",
                 static_cast<unsigned long long>(abr.er_stamped),
                 static_cast<unsigned long long>(abr.throttles));
    ok = false;
  }
  if (dwrr.max_share_err > kShareTolerance) {
    std::fprintf(stderr,
                 "R4: FAIL dwrr-w124: share error %.1f%% exceeds %.0f%%\n",
                 dwrr.max_share_err * 100, kShareTolerance * 100);
    ok = false;
  }
  if (rr_w4 > kAblationCap * dwrr_w4) {
    std::fprintf(stderr,
                 "R4: FAIL rr-ablation: w4 kept %.1f Mb/s under RR vs "
                 "%.1f under DWRR — weights had no effect to ablate\n",
                 rr_w4 / 1e6, dwrr_w4 / 1e6);
    ok = false;
  }
  if (mixed.goodput_bps[0] < kCbrProtection * cbr_contract_bps) {
    std::fprintf(stderr,
                 "R4: FAIL mix-2x: CBR contract kept %.1f Mb/s, below "
                 "%.0f%% of %.1f\n",
                 mixed.goodput_bps[0] / 1e6, kCbrProtection * 100,
                 cbr_contract_bps / 1e6);
    ok = false;
  }
  if (mixed.meter_yellow == 0 || mixed.meter_red == 0 ||
      mixed.meter_green == 0) {
    std::fprintf(stderr, "R4: FAIL mix-2x: trTCM colors not all "
                 "exercised (g=%llu y=%llu r=%llu)\n",
                 static_cast<unsigned long long>(mixed.meter_green),
                 static_cast<unsigned long long>(mixed.meter_yellow),
                 static_cast<unsigned long long>(mixed.meter_red));
    ok = false;
  }
  for (const auto& [sc, o] : rows) {
    if (!o.books_ok) {
      std::fprintf(stderr, "R4: FAIL %s: conservation identities "
                   "violated\n", sc->name);
      ok = false;
    }
  }

  std::printf(
      "\nReading: the ERICA loop converges four greedy ABR sources to "
      "equal shares of the\nport (Jain %.3f); DWRR turns configured "
      "weights into delivered shares (max error\n%.1f%%) where plain "
      "round-robin flattens them; and in the full mix the shaped CBR\n"
      "contract rides through 2x overload while trTCM spends the VBR "
      "flow's excess as\ntagged-then-shed yellow and discards its red "
      "outright.\n",
      abr.jain, dwrr.max_share_err * 100);
  return ok ? 0 : 1;
}
