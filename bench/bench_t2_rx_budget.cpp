// T2 — Receive (reassembly) engine cycle budget.
//
// The receive side is the architecture's hard side: VC lookup, buffer
// chaining, and trailer validation put the per-cell budget well above
// the transmit side's, and the first/last cells of a PDU carry
// surcharges. This table shows where the time goes, per cell position
// and AAL, with and without the board's hardware assists.

#include <cstdio>

#include "bench_util.hpp"
#include "atm/phy.hpp"
#include "core/report.hpp"
#include "proc/engine.hpp"
#include "proc/firmware.hpp"

using namespace hni;

int main(int argc, char** argv) {
  // --smoke accepted for fleet uniformity; pure arithmetic tables.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  sim::Simulator sim;
  proc::Engine engine(sim, {"rx-80960", 25e6, 1.0});
  const sim::Time slot3 = atm::sts3c().cell_slot();
  const sim::Time slot12 = atm::sts12c().cell_slot();

  std::printf("T2: RX reassembly engine budget (25 MIPS engine)\n");
  std::printf("    cell slot: %s @ STS-3c, %s @ STS-12c\n",
              sim::format_time(slot3).c_str(),
              sim::format_time(slot12).c_str());

  struct Variant {
    const char* name;
    proc::FirmwareProfile fw;
  };
  proc::FirmwareProfile full{};  // CAM + CRC offload (the design point)
  proc::FirmwareProfile no_cam = full;
  no_cam.assists.cam_lookup = false;
  proc::FirmwareProfile no_assist = no_cam;
  no_assist.assists.crc_offload = false;

  const Variant variants[] = {
      {"CAM + hw CRC (design point)", full},
      {"hash lookup + hw CRC", no_cam},
      {"hash lookup + fw CRC", no_assist},
  };

  for (const auto& v : variants) {
    core::Table t({"cell position", "AAL", "instr", "time",
                   "fits STS-3c", "fits STS-12c"});
    struct Pos {
      const char* name;
      proc::CellPosition pos;
    };
    const Pos positions[] = {{"first of PDU", {true, false}},
                             {"middle", {false, false}},
                             {"last of PDU", {false, true}},
                             {"single-cell PDU", {true, true}}};
    for (const auto& p : positions) {
      for (auto aal : {aal::AalType::kAal5, aal::AalType::kAal34}) {
        const auto instr = proc::rx_cell_instructions(v.fw, aal, p.pos, 0);
        const sim::Time tm = engine.cost(instr);
        t.add_row({p.name, std::string(aal::to_string(aal)),
                   core::Table::integer(instr), sim::format_time(tm),
                   tm <= slot3 ? "yes" : "NO",
                   tm <= slot12 ? "yes" : "NO"});
      }
    }
    t.print(std::string("T2: RX per-cell budget — ") + v.name);
  }

  // The comparison the paper's split rests on.
  core::Table sum({"direction", "middle-cell instr (AAL5)", "time",
                   "share of STS-12c slot"});
  const auto rx = proc::rx_cell_instructions(full, aal::AalType::kAal5,
                                             {false, false});
  const auto tx = proc::tx_cell_instructions(full, aal::AalType::kAal5,
                                             {false, false});
  sum.add_row({"receive", core::Table::integer(rx),
               sim::format_time(engine.cost(rx)),
               core::Table::percent(
                   static_cast<double>(engine.cost(rx)) /
                   static_cast<double>(slot12))});
  sum.add_row({"transmit", core::Table::integer(tx),
               sim::format_time(engine.cost(tx)),
               core::Table::percent(
                   static_cast<double>(engine.cost(tx)) /
                   static_cast<double>(slot12))});
  sum.print("T2b: the RX/TX asymmetry");

  hni::bench::JsonEmitter json("bench_t2_rx_budget");
  json.cost("t2_rx_budget/aal5_mid_cell_instr_rx", static_cast<double>(rx));
  json.cost("t2_rx_budget/aal5_mid_cell_instr_tx", static_cast<double>(tx));
  json.write_or_die(cli.json);
  return 0;
}
