// R3 — Robustness: graceful degradation under sustained overload.
//
// The overload-control plane assembled in this series — per-VC output
// queues with round-robin service, color-aware WRED over UPC's kTag
// verdict, EPD/PPD frame shedding, EFCI marking closed into a backward
// RM throttle loop at the endpoints, and CAC at the signalling agent —
// exists so the fabric degrades *gracefully*: offered load far past
// capacity should cost the excess, not the carried traffic.
//
// Scenario: six sources (2 CBR contracted+shaped, 2 VBR on/off policed
// kTag, 2 UBR Poisson elastic) share one STS-3c output port; shares at
// 1x sum to the port's AAL5 goodput ceiling (~135.1 Mb/s at 9180-byte
// PDUs). The offered-load multiplier sweeps 0.5x -> 4x with the plane
// ON and OFF (shared-FIFO tail drop, no WRED/EFCI/EPD, loop disabled —
// the pre-series switch). A separate mini-scenario exercises CAC:
// committed-capacity refusal and endpoint retry-with-backoff.
//
// The exit code enforces the acceptance criteria:
//   * plane ON:  goodput at 4x >= 85% of goodput at 1x (no collapse);
//   * plane OFF: goodput at 4x <  50% of goodput at 1x (the ablation
//     reproduces congestion collapse);
//   * every run's conservation identities balance (stations, hops,
//     switch queue stage) and the CAC scenario strands nothing.
//
//   bench_r3_overload                  full sweep (0.5x -> 4x)
//   bench_r3_overload --smoke          1x + 4x rows (CI-sized)
//   bench_r3_overload [--smoke] --json OUT.json
//                                      google-benchmark-style JSON for
//                                      scripts/bench_compare.py

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"

using namespace hni;

namespace {

constexpr std::size_t kSources = 6;
constexpr std::size_t kSinkPort = kSources;  // output port under stress
constexpr std::size_t kPduBytes = 9180;
constexpr double kPduBits = kPduBytes * 8.0;
// AAL5 goodput ceiling of an STS-3c port at 9180-byte PDUs (192 cells
// carry 9216 payload bytes of which 9180 are SDU).
constexpr double kCeilingBps = 135.1e6;
constexpr double kRetainOn = 0.85;   // 4x goodput vs 1x, plane on
constexpr double kCollapseOff = 0.5; // 4x goodput vs 1x, plane off

enum class Class { kCbr, kVbr, kUbr };

struct SourceSpec {
  Class cls;
  double share;  // of the port ceiling, at 1x
};

constexpr SourceSpec kMix[kSources] = {
    {Class::kCbr, 0.15}, {Class::kCbr, 0.15}, {Class::kVbr, 0.20},
    {Class::kVbr, 0.10}, {Class::kUbr, 0.20}, {Class::kUbr, 0.20},
};

struct Outcome {
  double load = 0;
  bool plane_on = false;
  double goodput_mbps = 0;
  std::size_t delivered = 0;
  std::size_t errored = 0;
  std::uint64_t epd_pdus = 0;
  std::uint64_t wred_drops = 0;
  std::uint64_t wred_clp = 0;
  std::uint64_t efci_marks = 0;
  std::uint64_t rm_sent = 0;
  std::uint64_t throttles = 0;
  std::uint64_t overflow = 0;
  bool books_ok = false;
};

Outcome run(double load, bool plane_on, sim::Time window) {
  core::Testbed bed;
  net::SwitchConfig sc;
  sc.ports = kSources + 1;
  sc.queue_cells = 1024;
  sc.clp_threshold = 896;
  if (plane_on) {
    sc.epd_threshold = 512;
    sc.efci_threshold = 192;
    sc.scheduler = net::SwitchScheduler::kRoundRobin;
    sc.wred.enabled = true;
    sc.wred.min_cells = 600;  // untagged band above EPD: frames shed first
    sc.wred.max_cells = 1024;
    sc.wred.max_p = 0.05;
    sc.wred.clp1_min_cells = 256;  // tagged band: UPC's kTag bites here
    sc.wred.clp1_max_cells = 512;
    sc.wred.clp1_max_p = 1.0;
  }
  auto& sw = bed.add_switch(sc);

  core::StationConfig stc;
  stc.nic.congestion.enabled = plane_on;
  std::vector<core::Station*> sources;
  for (std::size_t i = 0; i < kSources; ++i) {
    stc.name = "src" + std::to_string(i);
    sources.push_back(&bed.add_station(stc));
  }
  stc.name = "sink";
  auto& sink = bed.add_station(stc);

  // Duplex wiring: forward data to the sink, reverse path for the
  // sink's backward RM cells. Upstream CDV jitter as in bench A5.
  net::LossModel jitter;
  jitter.cdv_jitter = sim::microseconds(6);
  const double port_cells = sc.port_rate.cells_per_second();
  for (std::size_t i = 0; i < kSources; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(10 + i)};
    bed.connect_to_switch(*sources[i], sw, i, jitter);
    bed.connect_from_switch(sw, i, *sources[i]);
    sw.add_route(i, vc, kSinkPort, vc);
    sw.add_route(kSinkPort, vc, i, vc);
    sources[i]->nic().open_vc(vc, aal::AalType::kAal5);
    sink.nic().open_vc(vc, aal::AalType::kAal5);
    const SourceSpec& spec = kMix[i];
    if (spec.cls == Class::kCbr) {
      // Contracted: shaped at the source (5% scheduling headroom); the
      // closed loop leaves contracted VCs alone by design.
      sources[i]->nic().tx().set_shaper(vc, 1.05 * spec.share * port_cells,
                                        sim::microseconds(3));
    } else if (spec.cls == Class::kVbr) {
      // Policed kTag at 1.3x the mean rate: bursts beyond the envelope
      // ride on as discard-eligible and die first under pressure.
      sw.add_policer(i, vc, 1.3 * spec.share * port_cells,
                     10 * sc.port_rate.cell_slot(),
                     net::Switch::PoliceAction::kTag);
    }
  }
  bed.connect_to_switch(sink, sw, kSinkPort);
  bed.connect_from_switch(sw, kSinkPort, sink);

  std::uint64_t bytes = 0;
  std::size_t delivered = 0;
  sink.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
    ++delivered;
    bytes += s.size();
  });

  std::vector<std::shared_ptr<net::SduSource>> gens;
  for (std::size_t i = 0; i < kSources; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(10 + i)};
    const SourceSpec& spec = kMix[i];
    // Mean interarrival for this source's scaled share of the ceiling.
    const double rate_bps = spec.share * kCeilingBps * load;
    const sim::Time mean_gap = static_cast<sim::Time>(
        kPduBits / rate_bps * static_cast<double>(sim::kSecond));
    net::SduSource::Config cfg;
    cfg.sdu_bytes = kPduBytes;
    cfg.count = 0;
    cfg.seed = 0xB0 + i;
    switch (spec.cls) {
      case Class::kCbr:
        cfg.mode = net::SduSource::Mode::kCbr;
        cfg.interval = mean_gap;
        break;
      case Class::kVbr:
        // 50% duty on/off: on-phase spacing at half the mean gap.
        cfg.mode = net::SduSource::Mode::kOnOff;
        cfg.interval = mean_gap / 2;
        cfg.mean_on = sim::milliseconds(2);
        cfg.mean_off = sim::milliseconds(2);
        break;
      case Class::kUbr:
        cfg.mode = net::SduSource::Mode::kPoisson;
        cfg.interval = mean_gap;
        break;
    }
    core::Station* st = sources[i];
    gens.push_back(std::make_shared<net::SduSource>(
        bed.sim(), cfg, [st, vc](aal::Bytes sdu) {
          return st->host().send(vc, aal::AalType::kAal5, std::move(sdu));
        }));
    gens.back()->start();
  }

  bed.run_for(window);
  for (auto& g : gens) g->stop();

  Outcome o;
  o.load = load;
  o.plane_on = plane_on;
  o.goodput_mbps =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(window) / 1e6;
  o.delivered = delivered;
  o.errored = sink.nic().rx().pdus_errored();
  o.epd_pdus = sw.pdus_epd_discarded();
  o.wred_drops = sw.cells_wred_dropped();
  o.wred_clp = sw.cells_wred_dropped_clp();
  o.efci_marks = sw.cells_efci_marked();
  o.rm_sent = sink.nic().rm_cells_sent();
  o.overflow = sw.cells_dropped_overflow();
  for (core::Station* s : sources) {
    o.throttles += s->nic().congestion_throttle_events();
  }
  // Drain, then the full conservation audit — stations, wire hops and
  // the switch queue-stage identity all balance or the row fails.
  bed.run_for(sim::milliseconds(200));
  auto auditor = bed.audit(/*include_hops=*/true);
  o.books_ok = auditor.ok();
  if (!o.books_ok) std::fputs(auditor.report().c_str(), stderr);
  return o;
}

// --- CAC mini-scenario ------------------------------------------------

struct CacOutcome {
  std::uint64_t refusals = 0;
  std::uint64_t backoff_retries = 0;
  bool retried_call_connected = false;
  std::size_t stranded = 0;
  bool books_ok = false;
};

CacOutcome run_cac() {
  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 4, .queue_cells = 512, .clp_threshold = 512});
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  auto& carol = bed.add_station({.name = "carol"});
  sig::SignalingConfig cfg;
  cfg.cac_utilization = 0.5;
  cfg.endpoint.setup_retry_limit = 4;
  cfg.endpoint.setup_retry_backoff = sim::milliseconds(2);
  sig::SignalingNetwork net(bed, sw, /*agent_port=*/3, cfg);
  auto& cc_alice = net.attach(alice, 0, 1);
  auto& cc_bob = net.attach(bob, 1, 2);
  auto& cc_carol = net.attach(carol, 2, 3);
  cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });

  // Alice's contract saturates bob's committed budget; carol is
  // refused, backs off, and succeeds once alice releases.
  const double pcr = 100000.0;
  std::uint32_t first = 0;
  cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                      [&](const sig::CallControl::CallInfo& i) {
                        first = i.call_id;
                      });
  bed.run_for(sim::milliseconds(5));
  CacOutcome o;
  cc_carol.place_call(2, aal::AalType::kAal5, pcr,
                      [&](const sig::CallControl::CallInfo&) {
                        o.retried_call_connected = true;
                      });
  bed.sim().after(sim::milliseconds(3),
                  [&] { cc_alice.release(first); });
  bed.run_for(sim::milliseconds(40));

  o.refusals = net.calls_refused_cac();
  o.backoff_retries = cc_carol.setup_backoff_retries();
  o.stranded = net.stranded_vcis() + net.stranded_routes();
  auto auditor = bed.audit(/*include_hops=*/false);
  net.audit_invariants(auditor);
  o.books_ok = auditor.ok();
  if (!o.books_ok) std::fputs(auditor.report().c_str(), stderr);
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;

  std::printf("R3: graceful degradation — 6 sources (CBR/VBR/UBR mix) "
              "into one STS-3c port,\noffered load sweep with the "
              "overload-control plane ON vs OFF (tail-drop FIFO "
              "ablation)\n");

  const sim::Time window =
      smoke ? sim::milliseconds(100) : sim::milliseconds(200);
  const std::vector<double> loads =
      smoke ? std::vector<double>{1.0, 4.0}
            : std::vector<double>{0.5, 1.0, 2.0, 4.0};

  core::Table t({"plane", "load", "goodput Mb/s", "PDUs intact",
                 "PDUs damaged", "EPD PDUs", "WRED cells (tagged)",
                 "EFCI marks", "RM cells", "throttles", "overflow",
                 "books"});
  double g_on[2] = {0, 0};   // goodput at 1x / 4x, plane on
  double g_off[2] = {0, 0};  // same, plane off
  bool books_ok = true;
  for (const bool plane_on : {true, false}) {
    for (const double load : loads) {
      const Outcome o = run(load, plane_on, window);
      books_ok = books_ok && o.books_ok;
      if (load == 1.0) (plane_on ? g_on : g_off)[0] = o.goodput_mbps;
      if (load == 4.0) (plane_on ? g_on : g_off)[1] = o.goodput_mbps;
      t.add_row({plane_on ? "on" : "off", core::Table::num(load, 1),
                 core::Table::num(o.goodput_mbps, 1),
                 core::Table::integer(o.delivered),
                 core::Table::integer(o.errored),
                 core::Table::integer(o.epd_pdus),
                 core::Table::integer(o.wred_drops) + " (" +
                     core::Table::integer(o.wred_clp) + ")",
                 core::Table::integer(o.efci_marks),
                 core::Table::integer(o.rm_sent),
                 core::Table::integer(o.throttles),
                 core::Table::integer(o.overflow),
                 o.books_ok ? "ok" : "FAIL"});
    }
  }
  t.print("R3: goodput vs offered load (ceiling ~135.1 Mb/s)");

  const CacOutcome cac = run_cac();
  std::printf("\nCAC: %llu refusals, %llu backoff retries, retried call "
              "%s, %zu stranded resources, books %s\n",
              static_cast<unsigned long long>(cac.refusals),
              static_cast<unsigned long long>(cac.backoff_retries),
              cac.retried_call_connected ? "connected" : "STRANDED",
              cac.stranded, cac.books_ok ? "ok" : "FAIL");

  hni::bench::JsonEmitter json("bench_r3_overload");
  json.rate("r3_overload/goodput_1x", g_on[0]);
  json.rate("r3_overload/goodput_4x", g_on[1]);
  json.rate("r3_overload/retention_4x", g_on[1] / g_on[0]);
  json.write_or_die(cli.json);

  // Acceptance, enforced by exit code.
  bool ok = true;
  if (g_on[1] < kRetainOn * g_on[0]) {
    std::fprintf(stderr,
                 "R3: FAIL plane on: goodput at 4x (%.1f) below %.0f%% of "
                 "1x (%.1f)\n",
                 g_on[1], kRetainOn * 100, g_on[0]);
    ok = false;
  }
  if (g_off[1] >= kCollapseOff * g_off[0]) {
    std::fprintf(stderr,
                 "R3: FAIL plane off: goodput at 4x (%.1f) did not "
                 "collapse below %.0f%% of 1x (%.1f)\n",
                 g_off[1], kCollapseOff * 100, g_off[0]);
    ok = false;
  }
  if (!books_ok) {
    std::fprintf(stderr, "R3: FAIL conservation identities violated\n");
    ok = false;
  }
  if (cac.refusals == 0 || !cac.retried_call_connected ||
      cac.stranded != 0 || !cac.books_ok) {
    std::fprintf(stderr, "R3: FAIL CAC scenario (refusals=%llu "
                 "connected=%d stranded=%zu books=%d)\n",
                 static_cast<unsigned long long>(cac.refusals),
                 cac.retried_call_connected ? 1 : 0, cac.stranded,
                 cac.books_ok ? 1 : 0);
    ok = false;
  }

  std::printf(
      "\nReading: with the plane on, overload costs only the excess — "
      "EPD sheds whole frames,\nWRED spends the UPC-tagged VBR bursts "
      "first, round-robin service isolates the CBR\ncontracts, and the "
      "EFCI->RM loop walks the elastic sources down to the fair "
      "share.\nWith it off, interleaved tail-drop losses damage nearly "
      "every admitted PDU and\ngoodput collapses while the port stays "
      "'busy'. CAC closes the control side:\noversubscription is "
      "refused at SETUP with cause 47 and retry-with-backoff finds\n"
      "freed capacity without stranding anything.\n");
  return ok ? 0 : 1;
}
