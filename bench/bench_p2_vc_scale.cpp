// P2 — VC-state scalability: the data plane from 2k to 1M connections.
//
// The paper's interface assumes a CAM assist for per-VC lookup; the
// software path must hold its own as the connection table grows. This
// bench populates a 4-port switch with N routed+policed VCs (VPI
// extends the space past the 16-bit VCI), then drives a paced cell
// stream across a bounded hot set of flows strided through the full
// population (so probes walk the real index at every N) and reports:
//
//   * events/s — wall-clock kernel throughput while forwarding. With
//     the open-addressing table this should be flat in N; the old
//     node-based maps bent it downward by 2k VCs.
//   * bytes/VC — steady-state footprint of the per-VC state (index +
//     pooled records), from Switch::vc_state_bytes().
//
// The exit code enforces the acceptance criteria, so CI can run the
// smoke rows as a regression gate:
//   * the largest row's events/s must stay within 20% of the smallest's
//     (lookup cost flat in N), and
//   * every row must stay under 128 bytes/VC.
//
//   bench_p2_vc_scale                 full sweep (2k -> 1M VCs)
//   bench_p2_vc_scale --smoke         2k + 16k rows (CI-sized)
//   bench_p2_vc_scale [--smoke] --json OUT.json
//                                     also write google-benchmark-style
//                                     JSON for scripts/bench_compare.py

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "net/switch.hpp"
#include "sim/simulator.hpp"

using namespace hni;

namespace {

constexpr std::size_t kPorts = 4;
// Active flows per row. Bounded (and small enough to stay cache-warm
// in steady state) so the sweep isolates what the table controls —
// probe displacement and index behaviour as N grows — from DRAM
// capacity misses, which hit any structure once the *hot* set itself
// outgrows the cache. The sampled flows stride the full population, so
// at 1M VCs the probes walk the real 2^21-slot index, not a dense
// corner of it.
constexpr std::size_t kSampleCap = 256;
constexpr double kMinRatio = 0.8;          // largest vs smallest events/s
constexpr double kMaxBytesPerVc = 128.0;

// VC i of N: spread across ports, then across VPIs (the 16-bit VCI
// alone cannot address 1M connections).
atm::VcId vc_of(std::size_t i) {
  const std::size_t rest = i / kPorts;
  return atm::VcId{static_cast<std::uint16_t>(rest >> 16),
                   static_cast<std::uint16_t>(rest & 0xFFFF)};
}
std::size_t port_of(std::size_t i) { return i % kPorts; }

struct Result {
  std::size_t vcs = 0;
  double setup_s = 0;       // route+policer installation wall time
  double wall_s = 0;        // drive-phase wall time
  std::uint64_t events = 0;
  std::uint64_t cells = 0;
  double events_per_s = 0;
  double bytes_per_vc = 0;
  bool conserved = false;   // switch books balance after the run
};

Result run(std::size_t vcs, std::size_t cells_per_port) {
  sim::Simulator sim;
  net::SwitchConfig cfg;
  cfg.ports = kPorts;
  cfg.port_rate = atm::sts3c();
  net::Switch sw(sim, cfg);

  const auto setup_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < vcs; ++i) {
    const atm::VcId vc = vc_of(i);
    sw.add_route(port_of(i), vc, port_of(i), vc);
    // A non-binding policer (PCR far above the line) keeps the UPC
    // branch on the measured path without perturbing the stream.
    sw.add_policer(port_of(i), vc, 1e12, 0, net::Switch::PoliceAction::kDrop);
  }
  const auto setup_end = std::chrono::steady_clock::now();

  // Pre-serialize one wire cell per sampled VC: the drive loop measures
  // the switch (lookup, police, queue, serve), not cell encoding.
  const std::size_t sample = std::min(vcs, kSampleCap);
  const std::size_t stride = vcs / sample;
  std::vector<net::WireCell> cells(sample);
  std::vector<std::size_t> in_port(sample);
  for (std::size_t s = 0; s < sample; ++s) {
    // Snap the strided index to port s % kPorts so every input port
    // carries exactly a quarter of the sample, whatever the stride
    // (vcs is a multiple of kPorts in every row, so i stays in range).
    const std::size_t base = s * stride;
    const std::size_t i = (base - base % kPorts + s % kPorts) % vcs;
    atm::Cell cell;
    cell.header.vc = vc_of(i);
    cells[s].bytes = cell.serialize(atm::HeaderFormat::kUni);
    in_port[s] = port_of(i);
  }

  // One injector per port, paced at the port's service rate: queues
  // stay shallow and every injected cell is forwarded by run's end.
  const sim::Time slot = cfg.port_rate.cell_slot();
  std::uint64_t injected = 0;
  for (std::size_t p = 0; p < kPorts; ++p) {
    // Port p owns the sample entries with in_port == p (round-robin by
    // construction: s % kPorts == p when stride keeps port alignment —
    // filter explicitly to stay correct for any stride).
    auto lane = std::make_shared<std::vector<std::size_t>>();
    for (std::size_t s = 0; s < sample; ++s) {
      if (in_port[s] == p) lane->push_back(s);
    }
    if (lane->empty()) continue;
    auto tick = std::make_shared<std::function<void(std::size_t)>>();
    *tick = [&, lane, tick, p](std::size_t n) {
      if (n >= cells_per_port) return;
      const std::size_t s = (*lane)[n % lane->size()];
      sw.receive(p, cells[s]);
      ++injected;
      sim.after(slot, [tick, n] { (*tick)(n + 1); });
    };
    sim.after(slot * static_cast<sim::Time>(p + 1) / kPorts,
              [tick] { (*tick)(0); });
  }

  const auto wall_start = std::chrono::steady_clock::now();
  sim.run();
  const auto wall_end = std::chrono::steady_clock::now();

  Result r;
  r.vcs = vcs;
  r.setup_s = std::chrono::duration<double>(setup_end - setup_start).count();
  r.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  r.events = sim.events_fired();
  r.cells = injected;
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  r.bytes_per_vc =
      static_cast<double>(sw.vc_state_bytes()) / static_cast<double>(vcs);
  // Paced injection below the overflow point: every cell must have been
  // forwarded — anything dropped, unroutable or policed means the table
  // lost a connection's state.
  r.conserved = sw.cells_forwarded() == injected &&
                sw.cells_unroutable() == 0 && sw.cells_policed_dropped() == 0;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;

  std::printf("P2: VC-state scale — 4-port switch, routed+policed VCs, "
              "paced cells across a bounded %zu-flow hot set\n",
              kSampleCap);

  // Enough cells per row that wall time is measurement, not noise: a
  // row runs a few hundred ms even at full kernel speed.
  std::vector<std::size_t> rows;
  std::size_t cells_per_port;
  if (smoke) {
    rows = {2048, 16384};
    cells_per_port = 500000;
  } else {
    rows = {2048, 16384, 131072, 1048576};
    cells_per_port = 1000000;
  }

  // Best of several repetitions per row: on a shared machine noise only
  // ever subtracts from throughput, so max is the honest estimator —
  // and the first round doubles as cache/branch warmup. Rounds are
  // interleaved across rows (2k, 16k, ... then again) so a noisy
  // stretch of wall time degrades one rep of each row instead of every
  // rep of one row.
  constexpr int kReps = 4;
  std::vector<Result> results(rows.size());
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Result r = run(rows[i], cells_per_port);
      if (rep == 0 ||
          (r.conserved && r.events_per_s > results[i].events_per_s)) {
        results[i] = r;
      }
    }
  }

  core::Table t({"VCs", "setup s", "wall s", "events", "events/s (M)",
                 "cells", "bytes/VC", "books"});
  for (const Result& r : results) {
    t.add_row({core::Table::integer(r.vcs), core::Table::num(r.setup_s, 2),
               core::Table::num(r.wall_s, 2), core::Table::integer(r.events),
               core::Table::num(r.events_per_s / 1e6, 2),
               core::Table::integer(r.cells),
               core::Table::num(r.bytes_per_vc, 1),
               r.conserved ? "ok" : "FAIL"});
  }
  t.print("P2: data-plane cost vs connection count (events/s is "
          "wall-clock)");

  hni::bench::JsonEmitter json("bench_p2_vc_scale");
  for (const Result& r : results) {
    json.rate("p2_vc_scale/" + std::to_string(r.vcs), r.events_per_s);
    json.cost("p2_vc_scale/" + std::to_string(r.vcs) + "/bytes_per_vc",
              r.bytes_per_vc);
  }
  json.write_or_die(cli.json);

  // Acceptance: flat lookup cost and bounded footprint, enforced so a
  // regression fails the build rather than restyling a table.
  bool ok = true;
  for (const Result& r : results) {
    if (!r.conserved) {
      std::fprintf(stderr, "P2: FAIL %zu VCs: switch books unbalanced\n",
                   r.vcs);
      ok = false;
    }
    if (r.bytes_per_vc >= kMaxBytesPerVc) {
      std::fprintf(stderr, "P2: FAIL %zu VCs: %.1f bytes/VC (cap %.0f)\n",
                   r.vcs, r.bytes_per_vc, kMaxBytesPerVc);
      ok = false;
    }
  }
  const double small = results.front().events_per_s;
  const double large = results.back().events_per_s;
  if (large < kMinRatio * small) {
    std::fprintf(stderr,
                 "P2: FAIL %zu VCs runs at %.2fM events/s vs %.2fM at %zu "
                 "VCs (floor %.0f%%)\n",
                 results.back().vcs, large / 1e6, small / 1e6,
                 results.front().vcs, kMinRatio * 100);
    ok = false;
  }
  std::printf("\nReading: events/s flat in N means per-cell VC lookup is "
              "O(1) at scale\n(robin-hood probes stay near home); bytes/VC "
              "is the whole table's footprint —\nindex slots plus "
              "arena-pooled route+policer+frame records.\n");
  return ok ? 0 : 1;
}
