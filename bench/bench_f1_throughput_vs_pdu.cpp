// F1 — Goodput vs CS-PDU size.
//
// The classic host-interface figure: per-PDU overheads (syscall,
// descriptor, DMA programming, trailer build, per-PDU engine work)
// dominate small PDUs; as the PDU grows they amortize and goodput
// climbs to the AAL's share of the line rate. The knee's location is
// the quantity of interest.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  std::printf("F1: goodput vs CS-PDU size (greedy source, AAL5)\n");

  // Smoke keeps the knee's endpoints and the headline 9180 point.
  const std::vector<std::size_t> sdus =
      cli.smoke ? std::vector<std::size_t>{40, 512, 9180, 65535}
                : std::vector<std::size_t>{40,   128,  256,   512,  1024,
                                           2048, 4096, 9180,  16384,
                                           32768, 65535};
  double headline_bps = 0.0;  // 9180 B @ STS-12c (the second line pass)

  for (const auto& [line_name, line] :
       {std::pair{"STS-3c", atm::sts3c()},
        std::pair{"STS-12c", atm::sts12c()}}) {
    core::Table t({"SDU bytes", "cells", "goodput Mb/s", "ceiling Mb/s",
                   "efficiency", "latency us (mean)"});
    for (std::size_t sdu : sdus) {
      core::P2pConfig cfg;
      cfg.traffic.mode = net::SduSource::Mode::kGreedy;
      cfg.traffic.sdu_bytes = sdu;
      cfg.station.nic.line = line;
      // Amortization, not overload, is under study: engines above line rate.
      cfg.station.nic.with_clock(50e6);
      cfg.station.host.cpu.clock_hz = 400e6;
      cfg.station.host.cpu.cpi = 1.0;
      cfg.station.host.max_inflight_tx = 64;
      cfg.warmup = sim::milliseconds(2);
      // Long window: at 65535-byte PDUs a 10 ms window holds only ~2-3
      // deliveries and quantization dominates.
      cfg.measure = sim::milliseconds(cli.smoke ? 20 : 60);
      const auto r = core::run_p2p(cfg);
      if (sdu == 9180) headline_bps = r.goodput_bps;

      const double cells = static_cast<double>(aal::aal5_cell_count(sdu));
      const double ceiling =
          line.payload_bps * (static_cast<double>(sdu) * 8.0) /
          (cells * 424.0);
      t.add_row({core::Table::integer(sdu),
                 core::Table::integer(static_cast<std::uint64_t>(cells)),
                 core::Table::num(r.goodput_bps / 1e6, 1),
                 core::Table::num(ceiling / 1e6, 1),
                 core::Table::percent(r.goodput_bps / ceiling),
                 core::Table::num(r.latency_mean_us, 1)});
    }
    t.print(std::string("F1 @ ") + line_name);
  }

  hni::bench::JsonEmitter json("bench_f1_throughput_vs_pdu");
  json.rate("f1_goodput/sts12c_9180_bytes_per_s", headline_bps / 8.0);
  json.write_or_die(cli.json);
  return 0;
}
