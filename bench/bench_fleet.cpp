// bench_fleet: the scenario fleet driver.
//
//   bench_fleet --list                       names + planes, one per line
//   bench_fleet --scenario NAME [...]        run named scenario(s)
//   bench_fleet --spec FILE.scn              run a spec straight from a file
//   bench_fleet --scenario-dir DIR           where --scenario resolves .scn
//   bench_fleet --smoke                      CI-sized measurement windows
//   bench_fleet --json OUT.json              machine-readable results
//
// With no scenario selection the whole built-in matrix runs. Exit
// status: 0 all accepted, 1 any acceptance miss, 2 usage/spec errors.
// JSON rows follow the google-benchmark shape scripts/bench_compare.py
// reads, one goodput rate row per scenario plus score rows for the
// acceptance verdict and fairness/delivery where the spec gates on
// them — so a BENCH_fleet.json baseline can ratchet the whole matrix.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/scenario_spec.hpp"
#include "sig/fleet.hpp"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list] [--scenario NAME]... [--spec FILE.scn]...\n"
               "          [--scenario-dir DIR] [--smoke] [--json OUT.json]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using hni::core::ScenarioResult;
  using hni::core::ScenarioSpec;

  bool list = false;
  bool smoke = false;
  std::string json_path;
  std::string scenario_dir;
  std::vector<std::string> names;
  std::vector<std::string> spec_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--scenario" && i + 1 < argc) {
      names.emplace_back(argv[++i]);
    } else if (arg == "--spec" && i + 1 < argc) {
      spec_files.emplace_back(argv[++i]);
    } else if (arg == "--scenario-dir" && i + 1 < argc) {
      scenario_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      usage(argv[0]);
    }
  }

  if (list) {
    for (const ScenarioSpec& s : hni::sig::builtin_scenarios()) {
      std::printf("%s %s\n", s.name.c_str(), s.plane.c_str());
    }
    return 0;
  }

  std::vector<ScenarioSpec> matrix;
  std::string error;
  for (const std::string& name : names) {
    ScenarioSpec s;
    if (!hni::sig::find_scenario(name, scenario_dir, s, error)) {
      std::fprintf(stderr, "bench_fleet: %s\n", error.c_str());
      return 2;
    }
    matrix.push_back(s);
  }
  for (const std::string& file : spec_files) {
    ScenarioSpec s;
    if (!hni::core::load_scenario_file(file, s, error)) {
      std::fprintf(stderr, "bench_fleet: %s: %s\n", file.c_str(),
                   error.c_str());
      return 2;
    }
    matrix.push_back(s);
  }
  if (matrix.empty()) matrix = hni::sig::builtin_scenarios();

  hni::bench::JsonEmitter json("bench_fleet");
  bool all_ok = true;
  std::printf("%-26s %-16s %10s %9s %9s %7s  %s\n", "scenario", "plane",
              "goodput", "delivery", "lat-mean", "jain", "verdict");
  for (const ScenarioSpec& spec : matrix) {
    const ScenarioResult r = hni::sig::run_scenario(spec, smoke);
    const bool ok = r.accepted();
    all_ok = all_ok && ok;
    std::printf("%-26s %-16s %8.2f M %9.3f %7.1f us %7.4f  %s\n",
                spec.name.c_str(), spec.plane.c_str(), r.goodput_mbps,
                r.delivery_ratio, r.latency_mean_us, r.jain_weighted,
                ok ? "PASS" : "FAIL");
    for (const std::string& f : r.failures) {
      std::printf("    miss: %s\n", f.c_str());
    }
    if (!ok) {
      std::printf("    detail: offered=%.2fM calls=%llu reroutes=%llu "
                  "stranded=%llu audit=%s\n",
                  r.offered_mbps,
                  static_cast<unsigned long long>(r.calls_connected),
                  static_cast<unsigned long long>(r.reroutes),
                  static_cast<unsigned long long>(r.stranded),
                  r.audit_clean ? "clean" : "DIRTY");
    }
    json.rate("fleet/" + spec.name + "/goodput",
              r.goodput_mbps * 1e6 / 8.0);  // bytes/s, a true rate
    json.score("fleet/" + spec.name + "/accepted", ok ? 1.0 : 0.0);
    if (spec.accept.min_delivery_ratio > 0) {
      json.score("fleet/" + spec.name + "/delivery", r.delivery_ratio);
    }
    if (spec.accept.min_jain > 0) {
      json.score("fleet/" + spec.name + "/jain", r.jain_weighted);
    }
    if (spec.accept.max_latency_us > 0) {
      json.cost("fleet/" + spec.name + "/latency_us", r.latency_mean_us);
    }
  }
  json.write_or_die(json_path);
  return all_ok ? 0 : 1;
}
