// T5 — Signalled call performance (extension experiment).
//
// The interface is only useful once VCs exist; this bench measures the
// control plane built on top of it: call-setup latency (SETUP ->
// CONNECT at the caller, four signalling frames through switch +
// agent), teardown latency, sustainable call rate, and behaviour at VC
// exhaustion. All latencies are emergent from the same simulated
// substrate the data plane uses — the signalling frames are real AAL5
// PDUs crossing real engines and queues.

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "sig/network.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const int kCalls = cli.smoke ? 60 : 200;
  double calls_per_s = 0.0, setup_mean_us = 0.0;
  std::printf("T5: signalled call performance (STS-3c plant, agent on a "
              "dedicated switch port)\n");

  // --- setup/teardown latency over repeated calls ---------------------
  {
    core::Testbed bed;
    auto& sw = bed.add_switch(
        {.ports = 3, .queue_cells = 512, .clp_threshold = 512});
    auto& a = bed.add_station({.name = "caller"});
    auto& b = bed.add_station({.name = "callee"});
    sig::SignalingNetwork net(bed, sw, 2);
    auto& cc_a = net.attach(a, 0, 1);
    auto& cc_b = net.attach(b, 1, 2);
    cc_b.set_incoming(
        [](const sig::CallControl::CallInfo&) { return true; });

    sim::RunningStat setup_us;
    sim::RunningStat teardown_us;
    std::function<void(int)> one_call = [&](int remaining) {
      if (remaining == 0) return;
      const sim::Time t0 = bed.now();
      cc_a.place_call(2, aal::AalType::kAal5, 0.0,
                      [&, t0, remaining](
                          const sig::CallControl::CallInfo& info) {
                        setup_us.add(sim::to_microseconds(bed.now() - t0));
                        const sim::Time t1 = bed.now();
                        cc_a.set_released(
                            [&, t1, remaining](
                                const sig::CallControl::CallInfo&,
                                sig::Cause) {
                              teardown_us.add(
                                  sim::to_microseconds(bed.now() - t1));
                              one_call(remaining - 1);
                            });
                        cc_a.release(info.call_id);
                      });
    };
    one_call(kCalls);
    bed.run_for(sim::seconds(2));

    core::Table t({"phase", "count", "mean us", "min us", "max us"});
    t.add_row({"call setup (SETUP->CONNECT)",
               core::Table::integer(setup_us.count()),
               core::Table::num(setup_us.mean(), 1),
               core::Table::num(setup_us.min(), 1),
               core::Table::num(setup_us.max(), 1)});
    t.add_row({"teardown (RELEASE->COMPLETE)",
               core::Table::integer(teardown_us.count()),
               core::Table::num(teardown_us.mean(), 1),
               core::Table::num(teardown_us.min(), 1),
               core::Table::num(teardown_us.max(), 1)});
    t.print("T5a: control-plane latency (" + std::to_string(kCalls) +
            " sequential calls)");
    const double per_call_s =
        (setup_us.mean() + teardown_us.mean()) / 1e6;
    calls_per_s = 1.0 / per_call_s;
    setup_mean_us = setup_us.mean();
    std::printf("    -> back-to-back call rate: %.0f calls/s per "
                "caller\n", calls_per_s);
  }

  // --- VC exhaustion ---------------------------------------------------
  {
    core::Testbed bed;
    auto& sw = bed.add_switch(
        {.ports = 3, .queue_cells = 512, .clp_threshold = 512});
    auto& a = bed.add_station({.name = "caller"});
    auto& b = bed.add_station({.name = "callee"});
    sig::SignalingConfig cfg;
    cfg.max_vcs_per_port = 8;
    sig::SignalingNetwork net(bed, sw, 2, cfg);
    auto& cc_a = net.attach(a, 0, 1);
    auto& cc_b = net.attach(b, 1, 2);
    cc_b.set_incoming(
        [](const sig::CallControl::CallInfo&) { return true; });

    std::size_t connected = 0, refused = 0;
    for (int i = 0; i < 12; ++i) {
      cc_a.place_call(
          2, aal::AalType::kAal5, 0.0,
          [&](const sig::CallControl::CallInfo&) { ++connected; },
          [&](std::uint32_t, sig::Cause c) {
            if (c == sig::Cause::kNetworkOutOfVcs) ++refused;
          });
    }
    bed.run_for(sim::milliseconds(50));

    core::Table t({"offered", "connected", "refused (no VC)",
                   "network active"});
    t.add_row({"12", core::Table::integer(connected),
               core::Table::integer(refused),
               core::Table::integer(net.active_calls())});
    t.print("T5b: admission at VC exhaustion (8 VCIs per port)");
  }

  std::printf(
      "\nReading: four signalling frames (two switch transits each) plus "
      "agent and endpoint\nprocessing put call setup in the "
      "hundred-microsecond range — the control plane rides the\nsame "
      "fast path as data. Admission control refuses exactly the calls "
      "the VCI pool cannot\nhold and recycles identifiers on release.\n");

  hni::bench::JsonEmitter json("bench_t5_signaling");
  json.rate("t5_signaling/calls_per_s", calls_per_s);
  json.cost("t5_signaling/setup_mean_us", setup_mean_us);
  json.write_or_die(cli.json);
  return 0;
}
