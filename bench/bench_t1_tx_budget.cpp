// T1 — Transmit (segmentation) engine cycle budget.
//
// Regenerates the paper-style table: instructions and time per firmware
// operation on the TX side, against the cell slot at STS-3c and
// STS-12c. The punchline the architecture rests on: per-cell transmit
// work on a 25 MIPS engine fits comfortably inside even the STS-12c
// slot; per-PDU work amortizes over the PDU's cells.

#include <cstdio>

#include "aal/aal5.hpp"
#include "bench_util.hpp"
#include "atm/phy.hpp"
#include "core/report.hpp"
#include "proc/engine.hpp"
#include "proc/firmware.hpp"

using namespace hni;

int main(int argc, char** argv) {
  // --smoke accepted for fleet uniformity; the budget tables are pure
  // arithmetic and already CI-sized.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  sim::Simulator sim;
  proc::Engine engine(sim, {"tx-80960", 25e6, 1.0});
  const proc::FirmwareProfile fw{};
  const sim::Time slot3 = atm::sts3c().cell_slot();
  const sim::Time slot12 = atm::sts12c().cell_slot();

  std::printf("T1: TX segmentation engine budget (25 MIPS engine)\n");
  std::printf("    cell slot: %s @ STS-3c, %s @ STS-12c\n",
              sim::format_time(slot3).c_str(),
              sim::format_time(slot12).c_str());

  core::Table ops({"operation", "scope", "instr", "time",
                   "fits STS-3c slot", "fits STS-12c slot"});
  auto row = [&](const char* name, const char* scope, std::uint32_t instr) {
    const sim::Time t = engine.cost(instr);
    ops.add_row({name, scope, core::Table::integer(instr),
                 sim::format_time(t), t <= slot3 ? "yes" : "NO",
                 t <= slot12 ? "yes" : "NO"});
  };
  row("fetch descriptor", "per PDU", fw.tx.fetch_descriptor);
  row("program DMA", "per PDU", fw.tx.program_dma);
  row("build CPCS trailer", "per PDU", fw.tx.build_trailer);
  row("complete PDU", "per PDU", fw.tx.complete_pdu);
  row("cell build (AAL5)", "per cell",
      proc::tx_cell_instructions(fw, aal::AalType::kAal5, {false, false}));
  row("cell build (AAL3/4)", "per cell",
      proc::tx_cell_instructions(fw, aal::AalType::kAal34, {false, false}));
  {
    proc::FirmwareProfile sw = fw;
    sw.assists.crc_offload = false;
    row("cell build (AAL5, firmware CRC)", "per cell",
        proc::tx_cell_instructions(sw, aal::AalType::kAal5, {false, false}));
  }
  ops.print("T1a: per-operation budget");

  // Amortized per-cell budget vs PDU size.
  core::Table amort(
      {"SDU bytes", "cells", "instr/cell (amortized)", "time/cell",
       "sustainable at", "line-bound at STS-3c", "line-bound at STS-12c"});
  double headline_mbps = 0.0, headline_instr = 0.0;
  for (std::size_t sdu : {40u, 256u, 1500u, 9180u, 65535u}) {
    const std::size_t cells = aal::aal5_cell_count(sdu);
    const double per_cell =
        static_cast<double>(proc::tx_pdu_instructions(fw)) /
            static_cast<double>(cells) +
        proc::tx_cell_instructions(fw, aal::AalType::kAal5, {false, false});
    const sim::Time t = engine.cost(static_cast<std::uint32_t>(per_cell));
    const double cells_per_s = 1.0 / sim::to_seconds(t);
    const double mbps = cells_per_s * 424.0 / 1e6;
    amort.add_row({core::Table::integer(sdu), core::Table::integer(cells),
                   core::Table::num(per_cell, 1), sim::format_time(t),
                   core::Table::num(mbps, 0) + " Mb/s payload",
                   t <= atm::sts3c().cell_slot() ? "yes" : "NO",
                   t <= atm::sts12c().cell_slot() ? "yes" : "NO"});
    if (sdu == 9180u) {
      headline_mbps = mbps;
      headline_instr = per_cell;
    }
  }
  amort.print("T1b: amortized TX budget vs PDU size (AAL5)");

  hni::bench::JsonEmitter json("bench_t1_tx_budget");
  json.rate("t1_tx_budget/aal5_9180_sustainable_mbps", headline_mbps);
  json.cost("t1_tx_budget/aal5_9180_instr_per_cell", headline_instr);
  json.write_or_die(cli.json);
  return 0;
}
