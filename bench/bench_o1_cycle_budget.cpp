// O1 — Observed per-cell cycle budget from live engine telemetry.
//
// T1/T2 regenerate the paper's cycle-budget table from the firmware
// cost model alone. O1 closes the loop: it runs real traffic through a
// testbed and lets the CycleProfiler attribute every cycle the TX and
// RX engines actually spent — header build, CRC, DMA wait, FIFO stall —
// then renders the same table from measurements. The two must agree
// with the model where the model has an opinion, and the profiler adds
// what the model cannot see (waits and stalls).
//
// The run also dumps the per-VC metrics subtree, and self-checks that a
// second identical run produces byte-identical telemetry — the
// determinism the diffable-telemetry workflow rests on.

#include <cstdio>
#include "bench_util.hpp"

#include <string>
#include <vector>

#include "core/report.hpp"
#include "core/testbed.hpp"

using namespace hni;

namespace {

struct RunOutput {
  std::string tx_table;
  std::string rx_table;
  std::string vc_tables;
  std::string json;
};

RunOutput run_once(bool crc_offload) {
  core::Testbed bed;
  core::StationConfig sc;
  sc.nic.firmware.assists.crc_offload = crc_offload;
  sc.name = "alice";
  auto& alice = bed.add_station(sc);
  sc.name = "bob";
  auto& bob = bed.add_station(sc);
  bed.connect(alice, bob);

  const std::vector<atm::VcId> vcs = {{0, 31}, {0, 32}, {1, 42}};
  for (const atm::VcId vc : vcs) {
    alice.nic().open_vc(vc, aal::AalType::kAal5);
    bob.nic().open_vc(vc, aal::AalType::kAal5);
  }

  // A mixed workload so every phase sees work: small PDUs stress the
  // per-PDU phases, large ones the per-cell phases, and the aggregate
  // rate is high enough to produce real FIFO stalls and DMA waits.
  const std::size_t sizes[] = {64, 1500, 9180};
  for (int round = 0; round < 12; ++round) {
    for (std::size_t i = 0; i < vcs.size(); ++i) {
      alice.host().send(vcs[i], aal::AalType::kAal5,
                        aal::make_pattern(sizes[i] + 7 * round, round + 1));
    }
  }
  bed.run_for(sim::milliseconds(250));  // long enough to drain fully

  const std::string variant =
      crc_offload ? "CRC assist" : "firmware CRC";
  RunOutput out;
  out.tx_table =
      core::cycle_budget_table(alice.nic().tx().profiler())
          .to_string("O1a: TX engine cycle budget (measured, " + variant +
                     ")");
  out.rx_table =
      core::cycle_budget_table(bob.nic().rx().profiler())
          .to_string("O1b: RX engine cycle budget (measured, " + variant +
                     ")");
  out.vc_tables =
      core::metrics_table(bed.metrics(), "station.0.alice.nic.tx.vc")
          .to_string("O1c: per-VC TX metrics") +
      core::metrics_table(bed.metrics(), "station.1.bob.nic.rx.vc")
          .to_string("O1d: per-VC RX metrics");
  out.json = bed.metrics().to_json("station.1.bob.nic.rx.vc");
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  // Three deterministic fixed-size runs; --smoke is a documented no-op.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  std::printf("O1: observed cycle budget and per-VC telemetry\n");
  const RunOutput first = run_once(/*crc_offload=*/true);
  std::fputs(first.tx_table.c_str(), stdout);
  std::fputs(first.rx_table.c_str(), stdout);
  std::fputs(first.vc_tables.c_str(), stdout);
  std::printf("\nper-VC RX subtree as JSON:\n%s\n", first.json.c_str());

  // Without the CRC assist the firmware computes CRC-32 per cell; the
  // phase moves from empty to the dominant compute line, exactly the
  // trade the paper's hardware-assist argument is about.
  const RunOutput software = run_once(/*crc_offload=*/false);
  std::fputs(software.tx_table.c_str(), stdout);
  std::fputs(software.rx_table.c_str(), stdout);

  // Determinism self-check: a second identical run must emit the same
  // bytes, tables and JSON alike.
  const RunOutput second = run_once(/*crc_offload=*/true);
  const bool same = first.tx_table == second.tx_table &&
                    first.rx_table == second.rx_table &&
                    first.vc_tables == second.vc_tables &&
                    first.json == second.json;
  std::printf("\nself-check (two same-seed runs byte-identical): %s\n",
              same ? "PASS" : "FAIL");

  hni::bench::JsonEmitter json("bench_o1_cycle_budget");
  json.score("o1_cycle_budget/deterministic", same ? 1.0 : 0.0);
  json.write_or_die(cli.json);
  return same ? 0 : 1;
}
