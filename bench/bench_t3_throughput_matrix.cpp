// T3 — Achievable end-to-end throughput matrix.
//
// Full-system simulation (host -> NIC -> wire -> NIC -> host) of a
// greedy large-PDU transfer for every combination of AAL, engine clock
// and line rate. Shows where the interface is line-bound (goodput at
// the AAL's payload ceiling) versus engine-bound, and how the receive
// engine's utilization climbs toward 1.0 at the crossover.

#include <cstdio>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  std::printf("T3: achievable throughput, greedy 9180-byte PDUs\n");
  hni::bench::JsonEmitter json("bench_t3_throughput_matrix");

  core::Table t({"line", "AAL", "engine clock", "goodput Mb/s",
                 "line util", "tx-engine util", "rx-engine util",
                 "cells dropped", "verdict"});

  for (const auto& [line_name, line] :
       {std::pair{"STS-3c", atm::sts3c()},
        std::pair{"STS-12c", atm::sts12c()}}) {
    for (auto aal : {aal::AalType::kAal5, aal::AalType::kAal34}) {
      for (double mhz : {25.0, 33.0, 50.0}) {
        if (cli.smoke && mhz == 33.0) continue;  // keep the endpoints
        core::P2pConfig cfg;
        cfg.aal = aal;
        cfg.traffic.mode = net::SduSource::Mode::kGreedy;
        cfg.traffic.sdu_bytes = 9180;
        cfg.station.nic.line = line;
        cfg.station.nic.with_clock(mhz * 1e6);
        // The host must not be the bottleneck in this experiment.
        cfg.station.host.cpu.clock_hz = 400e6;
        cfg.station.host.cpu.cpi = 1.0;
        cfg.station.host.max_inflight_tx = 64;
        cfg.warmup = sim::milliseconds(2);
        cfg.measure = sim::milliseconds(12);

        const auto r = core::run_p2p(cfg);
        const double cells =
            static_cast<double>(aal::FrameSegmenter::cell_count(aal, 9180));
        const double ceiling =
            line.payload_bps * (9180.0 * 8.0) / (cells * 424.0);
        const bool line_bound = r.goodput_bps > 0.97 * ceiling;
        t.add_row({line_name, std::string(aal::to_string(aal)),
                   core::Table::num(mhz, 0) + " MHz",
                   core::Table::num(r.goodput_bps / 1e6, 1),
                   core::Table::percent(r.tx_line_util),
                   core::Table::percent(r.tx_engine_util),
                   core::Table::percent(r.rx_engine_util),
                   core::Table::integer(r.cells_fifo_dropped),
                   line_bound ? "line-bound" : "engine-bound"});
        char row_name[96];
        std::snprintf(row_name, sizeof row_name,
                      "t3_throughput/%s/%s/%.0fMHz", line_name,
                      std::string(aal::to_string(aal)).c_str(), mhz);
        json.rate(row_name, r.goodput_bps / 8.0);  // bytes/s
      }
    }
  }
  t.print("T3: throughput matrix (goodput ceiling = payload rate x "
          "SDU/(cells x 424))");
  std::printf(
      "\nReading: at STS-3c every configuration is line-bound — the AAL5/"
      "AAL3-4 difference is purely\nthe 48-vs-44 payload octets per cell. "
      "At STS-12c the receive engine becomes the limit; when\nits sustained "
      "deficit sheds cells (dropped > 0), *every* large PDU is damaged and "
      "PDU goodput\ncollapses to zero even though most cells still get "
      "through — overload at the cell layer is\ncatastrophic at the frame "
      "layer, which is why the engine must be provisioned for the line.\n");
  json.write_or_die(cli.json);
  return 0;
}
