// P1 — Event-kernel scalability: many stations, thousands of VCs,
// sustained STS-12c.
//
// Everything else in bench/ measures the modeled hardware; this one
// measures the simulator itself. It builds N full-duplex station
// pairs, opens 256 VCs per pair, drives every pair with greedy AAL5
// traffic at STS-12c line rate, and reports *wall-clock* kernel
// throughput (events/s) alongside the simulated cell volume. The
// invariant auditor runs over every station afterwards: a kernel that
// reorders ties or drops events breaks conservation identities long
// before it breaks a microbenchmark.
//
// This is the scale regime the kernel overhaul targets: the heap holds
// one timer per VC/link/engine (thousands of pending events), so heap
// depth, cancellation churn, and per-event allocation all show up here
// at full weight.
//
//   bench_p1_kernel_scale           full sweep (up to 8 pairs / 2048 VCs)
//   bench_p1_kernel_scale --smoke   one small row (CI-sized, a few sec)

#include <chrono>
#include <cstdio>
#include "bench_util.hpp"

#include <cstring>
#include <memory>
#include <vector>

#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"

using namespace hni;

namespace {

struct Result {
  std::size_t pairs = 0;
  std::size_t vcs = 0;
  double sim_ms = 0;
  double wall_s = 0;
  std::uint64_t events = 0;
  std::uint64_t cells_rx = 0;
  std::uint64_t pdus_rx = 0;
  std::size_t audit_checks = 0;
  bool audit_ok = false;
};

Result run(std::size_t pairs, std::size_t vcs_per_pair, sim::Time sim_span) {
  core::Testbed bed;

  struct Pair {
    core::Station* tx;
    core::Station* rx;
    std::vector<atm::VcId> vcs;
    std::unique_ptr<net::SduSource> source;
    std::size_t next_vc = 0;
    std::uint64_t pdus = 0;
  };
  std::vector<Pair> lanes(pairs);

  for (std::size_t p = 0; p < pairs; ++p) {
    Pair& lane = lanes[p];
    core::StationConfig sc;
    sc.nic.line = atm::sts12c();
    sc.nic.with_clock(100e6);  // engine fast enough to sustain the line
    sc.name = "tx" + std::to_string(p);
    lane.tx = &bed.add_station(sc);
    sc.name = "rx" + std::to_string(p);
    lane.rx = &bed.add_station(sc);
    bed.connect(*lane.tx, *lane.rx);

    for (std::size_t v = 0; v < vcs_per_pair; ++v) {
      const atm::VcId vc{0, static_cast<std::uint16_t>(v + 1)};
      lane.tx->nic().open_vc(vc, aal::AalType::kAal5);
      lane.rx->nic().open_vc(vc, aal::AalType::kAal5);
      lane.vcs.push_back(vc);
    }
    lane.rx->host().set_rx_handler(
        [&lane](aal::Bytes, const host::RxInfo&) { ++lane.pdus; });

    // One greedy source per pair, rotating SDUs across all of the
    // pair's VCs — every VC carries traffic, the line stays saturated.
    net::SduSource::Config traffic;
    traffic.mode = net::SduSource::Mode::kGreedy;
    traffic.sdu_bytes = 9180;
    traffic.seed = 100 + p;
    lane.source = std::make_unique<net::SduSource>(
        bed.sim(), traffic, [&lane](aal::Bytes sdu) {
          const atm::VcId vc = lane.vcs[lane.next_vc];
          if (lane.tx->host().send(vc, aal::AalType::kAal5,
                                   std::move(sdu))) {
            lane.next_vc = (lane.next_vc + 1) % lane.vcs.size();
            return true;
          }
          return false;
        });
    lane.tx->host().set_tx_ready(
        [src = lane.source.get()] { src->notify_ready(); });
    lane.source->start();
  }

  const auto wall_start = std::chrono::steady_clock::now();
  bed.run_for(sim_span);
  const auto wall_end = std::chrono::steady_clock::now();

  Result r;
  r.pairs = pairs;
  r.vcs = pairs * vcs_per_pair;
  r.sim_ms = static_cast<double>(sim_span) / 1e9;
  r.wall_s = std::chrono::duration<double>(wall_end - wall_start).count();
  r.events = bed.sim().events_fired();
  for (Pair& lane : lanes) {
    lane.source->stop();
    r.cells_rx += lane.rx->nic().rx().cells_received();
    r.pdus_rx += lane.pdus;
  }
  core::InvariantAuditor auditor = bed.audit(/*include_hops=*/false);
  r.audit_checks = auditor.checks_run();
  r.audit_ok = auditor.ok();
  if (!r.audit_ok) std::fprintf(stderr, "%s", auditor.report().c_str());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  const bool smoke = cli.smoke;
  double last_events_per_s = 0.0;
  std::printf("P1: event-kernel scale — station pairs at STS-12c, greedy "
              "AAL5 across 256 VCs/pair\n");

  struct Row {
    std::size_t pairs;
    std::size_t vcs_per_pair;
    sim::Time span;
  };
  std::vector<Row> rows;
  if (smoke) {
    rows.push_back({2, 64, sim::milliseconds(2)});
  } else {
    rows.push_back({2, 256, sim::milliseconds(10)});
    rows.push_back({4, 256, sim::milliseconds(10)});
    rows.push_back({8, 256, sim::milliseconds(10)});
  }

  core::Table t({"pairs", "VCs", "sim ms", "wall s", "events",
                 "events/s", "cells rx", "PDUs rx", "audit"});
  bool all_ok = true;
  for (const Row& row : rows) {
    const Result r = run(row.pairs, row.vcs_per_pair, row.span);
    all_ok = all_ok && r.audit_ok;
    last_events_per_s = static_cast<double>(r.events) / r.wall_s;
    t.add_row({core::Table::integer(r.pairs), core::Table::integer(r.vcs),
               core::Table::num(r.sim_ms, 0), core::Table::num(r.wall_s, 2),
               core::Table::integer(r.events),
               core::Table::num(static_cast<double>(r.events) / r.wall_s / 1e6,
                                1),
               core::Table::integer(r.cells_rx),
               core::Table::integer(r.pdus_rx),
               r.audit_ok ? "ok (" + std::to_string(r.audit_checks) + ")"
                          : "FAIL"});
  }
  t.print("P1: kernel throughput at scale (events/s column is wall-clock, "
          "in millions)");

  std::printf("\nReading: wall-clock events/s is the cost of running "
              "experiments at this scale.\nThe events column grows "
              "linearly with offered load (pairs), while events/s should "
              "stay\nroughly flat — the kernel's heap is logarithmic in "
              "thousands of pending timers and\nthe per-event constant "
              "is allocation-free.\n");

  hni::bench::JsonEmitter json("bench_p1_kernel_scale");
  json.rate("p1_kernel/wallclock_events_per_s", last_events_per_s);
  json.score("p1_kernel/audits_clean", all_ok ? 1.0 : 0.0);
  json.write_or_die(cli.json);
  return all_ok ? 0 : 1;
}
