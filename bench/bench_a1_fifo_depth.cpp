// A1 — Ablation: RX FIFO depth.
//
// At a fixed, mildly overloaded operating point (engine service time
// just above the cell slot for bursts), deeper FIFOs absorb longer
// bursts before shedding cells. This sweep sizes the FIFO: where does
// added depth stop buying loss reduction for bursty PDU arrivals?

#include <cstdio>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double goodput_64 = 0.0, dropped_24 = 0.0;
  std::printf(
      "A1: cell loss vs RX FIFO depth. Poisson 9180-byte PDUs at ~60%% "
      "mean load (STS-12c),\nrx engine at 28 MHz: *within* a PDU the "
      "back-to-back cells arrive every 707.8 ns but are\nserviced every "
      "786 ns — a transient deficit of ~21 cells per PDU that the FIFO "
      "must absorb,\nwhile the Poisson gaps between PDUs let it drain.\n");

  core::Table t({"fifo cells", "fifo mean", "fifo max", "cells dropped",
                 "PDUs errored", "PDUs ok", "goodput Mb/s"});
  for (std::size_t depth : {4u, 8u, 16u, 24u, 32u, 64u, 128u}) {
    core::P2pConfig cfg;
    cfg.traffic.mode = net::SduSource::Mode::kPoisson;
    cfg.traffic.sdu_bytes = 9180;
    cfg.traffic.interval = sim::microseconds(230);  // ~0.6 load
    cfg.station.nic.line = atm::sts12c();
    cfg.station.nic.with_clock(50e6);
    cfg.station.nic.rx.engine.clock_hz = 28e6;  // marginal service rate
    cfg.station.nic.rx.fifo_cells = depth;
    cfg.station.host.cpu.clock_hz = 400e6;
    cfg.station.host.cpu.cpi = 1.0;
    cfg.station.host.max_inflight_tx = 64;
    cfg.warmup = sim::milliseconds(2);
    cfg.measure = sim::milliseconds(cli.smoke ? 10 : 40);
    const auto r = core::run_p2p(cfg);
    if (depth == 64) goodput_64 = r.goodput_bps;
    if (depth == 24) dropped_24 = static_cast<double>(r.cells_fifo_dropped);
    t.add_row({core::Table::integer(depth),
               core::Table::num(r.rx_fifo_mean, 1),
               core::Table::num(r.rx_fifo_max, 0),
               core::Table::integer(r.cells_fifo_dropped),
               core::Table::integer(r.sdus_errored),
               core::Table::integer(r.sdus_received),
               core::Table::num(r.goodput_bps / 1e6, 1)});
  }
  t.print("A1: FIFO depth sweep");
  std::printf("\nReading: the per-PDU transient deficit is ~21 cells, so "
              "depths below ~24 shed cells from\nalmost every PDU; at 24+ "
              "the burst fits and loss vanishes. Depth buys burst "
              "absorption, not\nsustained-rate headroom — under a "
              "sustained deficit (bench F3's upper rows) no finite "
              "FIFO\nhelps.\n");

  hni::bench::JsonEmitter json("bench_a1_fifo_depth");
  json.rate("a1_fifo/goodput_bytes_per_s_depth64", goodput_64 / 8.0);
  json.cost("a1_fifo/cells_dropped_depth24", dropped_24);
  json.write_or_die(cli.json);
  return 0;
}
