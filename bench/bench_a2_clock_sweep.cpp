// A2 — Ablation: protocol engine clock.
//
// Sweeps both engines' clocks at STS-12c and reports goodput plus the
// receive engine's utilization. The crossover — the clock at which the
// receive side stops being the bottleneck and the interface becomes
// line-bound — is the headline number for "can this architecture do
// 622 Mb/s".

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  // Smoke brackets the engine-bound/line-bound crossover (~31 MHz).
  const std::vector<double> clocks =
      cli.smoke ? std::vector<double>{12.5, 29.0, 33.0, 66.0}
                : std::vector<double>{12.5, 16.0, 20.0, 25.0, 29.0,
                                      33.0, 40.0, 50.0, 66.0};
  double goodput_66 = 0.0;
  std::printf("A2: engine clock sweep at STS-12c (greedy 9180-byte AAL5 "
              "PDUs)\n");

  core::Table t({"engine MHz", "goodput Mb/s", "line util",
                 "rx engine util", "tx engine util", "cells dropped",
                 "verdict"});
  double ceiling = 0;
  {
    const double cells = static_cast<double>(aal::aal5_cell_count(9180));
    ceiling = atm::sts12c().payload_bps * (9180.0 * 8.0) / (cells * 424.0);
  }
  for (double mhz : clocks) {
    core::P2pConfig cfg;
    cfg.traffic.mode = net::SduSource::Mode::kGreedy;
    cfg.traffic.sdu_bytes = 9180;
    cfg.station.nic.line = atm::sts12c();
    cfg.station.nic.with_clock(mhz * 1e6);
    cfg.station.host.cpu.clock_hz = 400e6;
    cfg.station.host.cpu.cpi = 1.0;
    cfg.station.host.max_inflight_tx = 64;
    cfg.warmup = sim::milliseconds(1);
    cfg.measure = sim::milliseconds(8);
    const auto r = core::run_p2p(cfg);
    if (mhz == 66.0) goodput_66 = r.goodput_bps;
    t.add_row({core::Table::num(mhz, 1),
               core::Table::num(r.goodput_bps / 1e6, 1),
               core::Table::percent(r.tx_line_util),
               core::Table::percent(r.rx_engine_util),
               core::Table::percent(r.tx_engine_util),
               core::Table::integer(r.cells_fifo_dropped),
               r.goodput_bps > 0.97 * ceiling ? "line-bound"
                                              : "engine-bound"});
  }
  t.print("A2: clock sweep @ STS-12c (AAL5 ceiling " +
          core::Table::num(ceiling / 1e6, 1) + " Mb/s)");
  std::printf("\nReading: transmit is never the limit; receive crosses "
              "from engine-bound to line-bound\nwhere its middle-cell "
              "service time (22 instr) drops under the 707.8 ns slot, "
              "i.e. around 31 MHz\n— one 25 MHz 80960CA is enough for "
              "STS-3c but STS-12c needs the faster grade or more\n"
              "hardware assist.\n");

  hni::bench::JsonEmitter json("bench_a2_clock_sweep");
  json.rate("a2_clock/goodput_bytes_per_s_66MHz", goodput_66 / 8.0);
  json.write_or_die(cli.json);
  return 0;
}
