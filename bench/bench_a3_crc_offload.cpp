// A3 — Ablation: the hardware/firmware split.
//
// The architecture's thesis is that per-cell, fixed-function work (CRC,
// VC lookup) belongs in hardware while protocol-variable work stays in
// firmware. This bench removes each assist in turn and measures what
// the engines must then carry — in instructions per cell and in
// delivered goodput at both line rates.

#include <cstdio>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  // Four variants x two lines at 8 ms windows; fast enough that
  // --smoke is a documented no-op.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double design_bps = 0.0, fw_crc_bps = 0.0;  // last pass = STS-12c
  std::printf("A3: hardware-assist ablation (greedy 9180-byte AAL5 PDUs, "
              "33 MHz engines)\n");

  struct Variant {
    const char* name;
    bool crc_offload;
    bool cam;
  };
  const Variant variants[] = {
      {"hw CRC + CAM (design point)", true, true},
      {"firmware CRC + CAM", false, true},
      {"hw CRC + hash lookup", true, false},
      {"firmware CRC + hash lookup", false, false},
  };

  for (const auto& [line_name, line] :
       {std::pair{"STS-3c", atm::sts3c()},
        std::pair{"STS-12c", atm::sts12c()}}) {
    core::Table t({"variant", "rx instr/cell (mid)", "goodput Mb/s",
                   "rx engine util", "cells dropped"});
    for (const auto& v : variants) {
      proc::FirmwareProfile fw;
      fw.assists.crc_offload = v.crc_offload;
      fw.assists.cam_lookup = v.cam;

      core::P2pConfig cfg;
      cfg.traffic.mode = net::SduSource::Mode::kGreedy;
      cfg.traffic.sdu_bytes = 9180;
      cfg.station.nic.firmware = fw;
      cfg.station.nic.line = line;
      cfg.station.nic.with_clock(33e6);
      cfg.station.host.cpu.clock_hz = 400e6;
      cfg.station.host.cpu.cpi = 1.0;
      cfg.station.host.max_inflight_tx = 64;
      cfg.warmup = sim::milliseconds(1);
      cfg.measure = sim::milliseconds(8);
      const auto r = core::run_p2p(cfg);

      if (v.crc_offload && v.cam) design_bps = r.goodput_bps;
      if (!v.crc_offload && v.cam) fw_crc_bps = r.goodput_bps;
      const auto instr = proc::rx_cell_instructions(
          fw, aal::AalType::kAal5, {false, false});
      t.add_row({v.name, core::Table::integer(instr),
                 core::Table::num(r.goodput_bps / 1e6, 1),
                 core::Table::percent(r.rx_engine_util),
                 core::Table::integer(r.cells_fifo_dropped)});
    }
    t.print(std::string("A3 @ ") + line_name);
  }

  std::printf("\nReading: at STS-3c the engine has slack, so losing an "
              "assist only raises utilization;\nat STS-12c the firmware-"
              "CRC variant blows the cell budget (22 -> 70 instr/cell) "
              "and the\ninterface collapses to the engine's rate — the "
              "quantitative case for CRC in the datapath.\n");

  hni::bench::JsonEmitter json("bench_a3_crc_offload");
  json.rate("a3_assists/design_goodput_bytes_per_s_sts12c",
            design_bps / 8.0);
  json.rate("a3_assists/fw_crc_goodput_bytes_per_s_sts12c",
            fw_crc_bps / 8.0);
  json.write_or_die(cli.json);
  return 0;
}
