// A6 — Ablation: interrupt coalescing.
//
// The architecture already interrupts per PDU, not per cell; coalescing
// trades the remaining per-PDU interrupts against delivery latency by
// batching completions inside a window. This bench sweeps the window
// under a stream of small PDUs — the workload where interrupt rate
// matters — and reports host CPU load, interrupts per PDU, and the
// latency cost.

#include <cstdio>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double uncoalesced_cpu = 0.0, latency_2ms_us = 0.0;
  std::printf("A6: interrupt coalescing window sweep (greedy 512-byte "
              "PDUs at STS-3c,\n~20 MIPS receive host)\n");

  core::Table t({"coalesce window", "PDUs/s", "interrupts/s",
                 "PDUs per interrupt", "rx host CPU", "latency us (mean)"});
  for (sim::Time window :
       {sim::Time{0}, sim::microseconds(20), sim::microseconds(100),
        sim::microseconds(500), sim::milliseconds(2)}) {
    core::P2pConfig cfg;
    cfg.traffic.mode = net::SduSource::Mode::kGreedy;
    cfg.traffic.sdu_bytes = 512;
    cfg.station.nic.rx.interrupt_coalesce = window;
    cfg.station.nic.with_clock(50e6);
    cfg.warmup = sim::milliseconds(2);
    cfg.measure = sim::milliseconds(cli.smoke ? 10 : 30);
    const auto r = core::run_p2p(cfg);
    if (window == sim::Time{0}) uncoalesced_cpu = r.rx_host_cpu_util;
    if (window == sim::milliseconds(2)) latency_2ms_us = r.latency_mean_us;

    const double pdus_per_s =
        static_cast<double>(r.sdus_received) / sim::to_seconds(cfg.measure);
    const double ints_per_s = pdus_per_s * r.interrupts_per_pdu;
    t.add_row({sim::format_time(window),
               core::Table::num(pdus_per_s, 0),
               core::Table::num(ints_per_s, 0),
               core::Table::num(r.interrupts_per_pdu > 0
                                    ? 1.0 / r.interrupts_per_pdu
                                    : 0.0,
                                1),
               core::Table::percent(r.rx_host_cpu_util),
               core::Table::num(r.latency_mean_us, 1)});
  }
  t.print("A6: coalescing window sweep");

  std::printf(
      "\nReading: at ~32k small PDUs/s the uncoalesced interrupt rate "
      "costs a ~20 MIPS host half its\nCPU (trap entry is ~180 "
      "instructions); widening the window collapses the interrupt\nrate "
      "roughly linearly while adding up to the window's worth of "
      "delivery latency — the\nfamiliar throughput/latency dial, here "
      "with exact numbers.\n");

  hni::bench::JsonEmitter json("bench_a6_interrupt_coalescing");
  json.score("a6_coalesce/uncoalesced_host_cpu", uncoalesced_cpu);
  json.cost("a6_coalesce/latency_us_2ms_window", latency_2ms_us);
  json.write_or_die(cli.json);
  return 0;
}
