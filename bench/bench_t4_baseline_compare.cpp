// T4 — The architecture against its alternatives.
//
// Three design points, identical workload (greedy 9180-byte AAL5 PDUs
// at STS-3c, identical host CPU class):
//
//   host-sw-SAR   — minimal adaptor; host CPU segments/reassembles,
//                   computes CRCs, moves cells by PIO, takes per-cell
//                   interrupts. The design the paper displaces.
//   outboard      — the paper's architecture: programmable engines do
//                   SAR, hardware does CRC/framing, DMA bursts, per-PDU
//                   interrupts.
//   hardwired     — fully fixed-function SAR (per-cell engine work ~0):
//                   fastest, but no protocol flexibility; included as
//                   the other end of the flexibility/performance axis.
//
// Reported: goodput, host CPU utilization, interrupts per PDU, and
// cell loss — who wins and by how much.

#include <cstdio>
#include <functional>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "host/sw_sar.hpp"

using namespace hni;

struct Row {
  double goodput_mbps;
  double host_cpu;
  double interrupts_per_pdu;
  std::uint64_t cells_dropped;
};

Row run_outboard(bool hardwired) {
  core::P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.warmup = sim::milliseconds(2);
  cfg.measure = sim::milliseconds(20);
  if (hardwired) {
    // Fixed-function datapath: per-cell work disappears into gates; only
    // the per-PDU descriptor/delivery work remains programmable.
    cfg.station.nic.firmware.tx.cell_overhead = 1;
    cfg.station.nic.firmware.rx.cell_arrival = 1;
    cfg.station.nic.firmware.rx.vc_lookup_cam = 1;
    cfg.station.nic.firmware.rx.buffer_append = 1;
    cfg.station.nic.firmware.rx.first_cell_extra = 4;
    cfg.station.nic.firmware.rx.last_cell_extra = 6;
  }
  const auto r = core::run_p2p(cfg);
  Row row;
  row.goodput_mbps = r.goodput_bps / 1e6;
  // The busier of the two hosts (they share the CPU class).
  row.host_cpu = std::max(r.tx_host_cpu_util, r.rx_host_cpu_util);
  row.interrupts_per_pdu = r.interrupts_per_pdu;
  row.cells_dropped = r.cells_fifo_dropped;
  return row;
}

Row run_sw_sar() {
  sim::Simulator sim;
  bus::Bus bus_a(sim, bus::BusConfig{});
  bus::Bus bus_b(sim, bus::BusConfig{});
  host::SwSarHost a(sim, bus_a, host::SwSarConfig{});
  host::SwSarHost b(sim, bus_b, host::SwSarConfig{});
  net::Link ab(sim, sim::microseconds(5));
  net::Link ba(sim, sim::microseconds(5));
  ab.set_sink([&](const net::WireCell& w) { b.receive_wire(w); });
  ba.set_sink([&](const net::WireCell& w) { a.receive_wire(w); });
  a.attach_tx(ab);
  b.attach_tx(ba);
  const atm::VcId vc{0, 1};
  a.open_vc(vc, aal::AalType::kAal5);
  b.open_vc(vc, aal::AalType::kAal5);

  std::uint64_t received_bytes = 0;
  bool measuring = false;
  b.set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    if (measuring) received_bytes += sdu.size();
  });
  std::uint64_t seq = 0;
  std::function<void()> offer = [&] {
    while (a.send(vc, aal::AalType::kAal5, aal::make_pattern(9180, seq))) {
      ++seq;
    }
  };
  a.set_tx_ready(offer);
  offer();

  const sim::Time warmup = sim::milliseconds(2);
  const sim::Time window = sim::milliseconds(20);
  std::uint64_t pdus0 = 0, ints0 = 0;
  sim.after(warmup, [&] {
    measuring = true;
    pdus0 = b.sdus_received();
    ints0 = b.interrupts_taken();
  });
  sim.run_until(warmup + window);

  Row row;
  row.goodput_mbps =
      static_cast<double>(received_bytes) * 8.0 / sim::to_seconds(window) /
      1e6;
  row.host_cpu = std::max(a.cpu_utilization(), b.cpu_utilization());
  const auto pdus = b.sdus_received() - pdus0;
  row.interrupts_per_pdu =
      pdus == 0 ? 0.0
                : static_cast<double>(b.interrupts_taken() - ints0) /
                      static_cast<double>(pdus);
  row.cells_dropped = b.rx_fifo_drops();
  return row;
}

int main(int argc, char** argv) {
  // --smoke accepted for fleet uniformity; three short fixed runs.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  std::printf("T4: architecture comparison — greedy 9180-byte AAL5 PDUs "
              "at STS-3c,\n    identical R3000-class host CPU (~20 MIPS)\n");

  const Row sw = run_sw_sar();
  const Row outboard = run_outboard(false);
  const Row hardwired = run_outboard(true);

  core::Table t({"design", "goodput Mb/s", "host CPU util",
                 "interrupts/PDU", "rx cells dropped", "flexibility"});
  auto add = [&](const char* name, const Row& r, const char* flex) {
    t.add_row({name, core::Table::num(r.goodput_mbps, 1),
               core::Table::percent(r.host_cpu),
               core::Table::num(r.interrupts_per_pdu, 1),
               core::Table::integer(r.cells_dropped), flex});
  };
  add("host software SAR + PIO", sw, "full (all in host sw)");
  add("outboard engines (this paper)", outboard,
      "high (firmware per AAL)");
  add("hardwired SAR", hardwired, "none (one AAL in gates)");
  t.print("T4: who wins and by how much");

  std::printf(
      "\nReading: software SAR saturates the host CPU at a small fraction "
      "of line rate and takes\ntens of interrupts per PDU; the "
      "outboard architecture runs at the line's AAL5 ceiling\nwith a "
      "near-idle host and one interrupt per PDU — at equal goodput to the "
      "hardwired design,\nwhile keeping the AAL programmable.\n");
  return 0;
}
