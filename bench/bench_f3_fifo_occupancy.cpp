// F3 — RX FIFO occupancy and cell loss vs receive-side pressure.
//
// The RX cell FIFO decouples line-rate arrival from engine service.
// This figure sweeps the service/arrival ratio two ways — (a) engine
// clock at a fixed line rate, (b) competing bus load stealing DMA
// bandwidth — and reports mean/max occupancy and the loss onset. FIFO
// sizing (bench A1) builds directly on this.

#include <cstdio>

#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main() {
  std::printf("F3: RX FIFO behaviour under pressure (STS-12c arrivals, "
              "64-cell FIFO, AAL5 9180-byte PDUs)\n");

  core::Table t({"rx engine MHz", "service/slot ratio", "fifo mean",
                 "fifo max", "cells dropped", "goodput Mb/s"});
  for (double mhz : {15.0, 20.0, 25.0, 28.0, 31.0, 33.0, 40.0, 50.0}) {
    core::P2pConfig cfg;
    cfg.traffic.mode = net::SduSource::Mode::kGreedy;
    cfg.traffic.sdu_bytes = 9180;
    cfg.station.nic.line = atm::sts12c();
    cfg.station.nic.with_clock(50e6);  // TX side always fast
    cfg.station.nic.rx.engine.clock_hz = mhz * 1e6;
    cfg.station.host.cpu.clock_hz = 400e6;
    cfg.station.host.cpu.cpi = 1.0;
    cfg.station.host.max_inflight_tx = 64;
    cfg.warmup = sim::milliseconds(1);
    cfg.measure = sim::milliseconds(8);
    const auto r = core::run_p2p(cfg);

    // Middle-cell service time vs the 707.8 ns slot.
    sim::Simulator s;
    proc::Engine probe(s, {"probe", mhz * 1e6, 1.0});
    const double ratio =
        static_cast<double>(probe.cost(proc::rx_cell_instructions(
            proc::FirmwareProfile{}, aal::AalType::kAal5, {false, false}))) /
        static_cast<double>(atm::sts12c().cell_slot());

    t.add_row({core::Table::num(mhz, 0), core::Table::num(ratio, 2),
               core::Table::num(r.rx_fifo_mean, 1),
               core::Table::num(r.rx_fifo_max, 0),
               core::Table::integer(r.cells_fifo_dropped),
               core::Table::num(r.goodput_bps / 1e6, 1)});
  }
  t.print("F3a: occupancy and loss vs engine clock (loss onset where "
          "service/slot crosses 1.0)");

  std::printf("\nReading: below ratio 1.0 the FIFO stays nearly empty; "
              "above it, occupancy pins at the\ncapacity and the excess "
              "arrival rate is shed as cell loss — the architecture "
              "degrades by\nwhole PDUs, not by host livelock.\n");
  return 0;
}
