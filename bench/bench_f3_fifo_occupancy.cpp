// F3 — RX FIFO occupancy and cell loss vs receive-side pressure.
//
// The RX cell FIFO decouples line-rate arrival from engine service.
// This figure sweeps the service/arrival ratio two ways — (a) engine
// clock at a fixed line rate, (b) competing bus load stealing DMA
// bandwidth — and reports mean/max occupancy and the loss onset. FIFO
// sizing (bench A1) builds directly on this.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace hni;

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  // Smoke keeps both loss-onset sides plus the crossover neighborhood.
  const std::vector<double> clocks =
      cli.smoke ? std::vector<double>{15.0, 28.0, 33.0, 50.0}
                : std::vector<double>{15.0, 20.0, 25.0, 28.0,
                                      31.0, 33.0, 40.0, 50.0};
  double headline_bps = 0.0;  // goodput once line-bound (50 MHz)
  std::printf("F3: RX FIFO behaviour under pressure (STS-12c arrivals, "
              "64-cell FIFO, AAL5 9180-byte PDUs)\n");

  core::Table t({"rx engine MHz", "service/slot ratio", "fifo mean",
                 "fifo max", "cells dropped", "goodput Mb/s"});
  for (double mhz : clocks) {
    core::P2pConfig cfg;
    cfg.traffic.mode = net::SduSource::Mode::kGreedy;
    cfg.traffic.sdu_bytes = 9180;
    cfg.station.nic.line = atm::sts12c();
    cfg.station.nic.with_clock(50e6);  // TX side always fast
    cfg.station.nic.rx.engine.clock_hz = mhz * 1e6;
    cfg.station.host.cpu.clock_hz = 400e6;
    cfg.station.host.cpu.cpi = 1.0;
    cfg.station.host.max_inflight_tx = 64;
    cfg.warmup = sim::milliseconds(1);
    cfg.measure = sim::milliseconds(8);
    const auto r = core::run_p2p(cfg);
    if (mhz == 50.0) headline_bps = r.goodput_bps;

    // Middle-cell service time vs the 707.8 ns slot.
    sim::Simulator s;
    proc::Engine probe(s, {"probe", mhz * 1e6, 1.0});
    const double ratio =
        static_cast<double>(probe.cost(proc::rx_cell_instructions(
            proc::FirmwareProfile{}, aal::AalType::kAal5, {false, false}))) /
        static_cast<double>(atm::sts12c().cell_slot());

    t.add_row({core::Table::num(mhz, 0), core::Table::num(ratio, 2),
               core::Table::num(r.rx_fifo_mean, 1),
               core::Table::num(r.rx_fifo_max, 0),
               core::Table::integer(r.cells_fifo_dropped),
               core::Table::num(r.goodput_bps / 1e6, 1)});
  }
  t.print("F3a: occupancy and loss vs engine clock (loss onset where "
          "service/slot crosses 1.0)");

  std::printf("\nReading: below ratio 1.0 the FIFO stays nearly empty; "
              "above it, occupancy pins at the\ncapacity and the excess "
              "arrival rate is shed as cell loss — the architecture "
              "degrades by\nwhole PDUs, not by host livelock.\n");

  hni::bench::JsonEmitter json("bench_f3_fifo_occupancy");
  json.rate("f3_fifo/goodput_bytes_per_s_50MHz", headline_bps / 8.0);
  json.write_or_die(cli.json);
  return 0;
}
