// Shared bench-binary plumbing: the unified CLI and the JSON emitter.
//
// Every bench_* binary accepts the same two flags:
//
//   --smoke        CI-sized run (shorter windows / fewer sweep points)
//   --json OUT     machine-readable results, google-benchmark JSON shape
//
// so scripts/fleet.py can drive the whole set uniformly: spawn, wait
// with a timeout, read the exit code (benches enforce their own
// acceptance), collect the JSON row(s). The emitter writes the same
// format scripts/bench_compare.py gates on:
//
//   rate rows   carry items_per_second (higher is better, reciprocal
//               real_time for google-benchmark compatibility);
//   score rows  carry "higher_is_better": true and a raw "value"
//               (fairness indices, retention ratios);
//   cost rows   carry "lower_is_better": true and a raw "value"
//               (bytes/VC, time-to-restore).

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace hni::bench {

struct Cli {
  bool smoke = false;
  std::string json;  // empty = no JSON output requested
};

/// Parses the unified bench CLI; exits 2 on anything it does not know.
/// `extra_usage` documents bench-specific flags a caller parsed out of
/// argv before handing the remainder here (none of the current benches
/// need any).
inline Cli parse_cli(int argc, char** argv, const char* extra_usage = "") {
  Cli cli;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--json" && i + 1 < argc) {
      cli.json = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json OUT.json]%s\n",
                   argv[0], extra_usage);
      std::exit(2);
    }
  }
  return cli;
}

class JsonEmitter {
 public:
  explicit JsonEmitter(std::string executable)
      : executable_(std::move(executable)) {}

  /// Throughput-style row: higher is better, compared as a rate.
  void rate(const std::string& name, double items_per_second) {
    rows_.push_back({name, items_per_second, Kind::kRate});
  }
  /// Direct score (fairness index, retention): higher is better.
  void score(const std::string& name, double value) {
    rows_.push_back({name, value, Kind::kScore});
  }
  /// Direct cost (bytes/VC, latency, time-to-restore): lower is better.
  void cost(const std::string& name, double value) {
    rows_.push_back({name, value, Kind::kCost});
  }

  std::string to_string() const {
    std::string out = "{\n  \"context\": {\"executable\": \"" + executable_ +
                      "\"},\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      char buf[256];
      switch (r.kind) {
        case Kind::kRate:
          std::snprintf(buf, sizeof buf,
                        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                        "\"items_per_second\": %.6g, \"real_time\": %.6g, "
                        "\"time_unit\": \"ns\"}",
                        r.name.c_str(), r.value,
                        r.value > 0 ? 1e9 / r.value : 0.0);
          break;
        case Kind::kScore:
          std::snprintf(buf, sizeof buf,
                        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                        "\"higher_is_better\": true, \"value\": %.6g, "
                        "\"real_time\": %.6g, \"time_unit\": \"ns\"}",
                        r.name.c_str(), r.value, r.value);
          break;
        case Kind::kCost:
          std::snprintf(buf, sizeof buf,
                        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
                        "\"lower_is_better\": true, \"value\": %.6g, "
                        "\"real_time\": %.6g, \"time_unit\": \"ns\"}",
                        r.name.c_str(), r.value, r.value);
          break;
      }
      out += buf;
      out += i + 1 < rows_.size() ? ",\n" : "\n";
    }
    out += "  ]\n}\n";
    return out;
  }

  /// Writes the JSON to `path`; exits 2 on I/O failure. No-op when
  /// `path` is empty (the caller passed through an unset --json).
  void write_or_die(const std::string& path) const {
    if (path.empty()) return;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "%s: cannot write %s\n", executable_.c_str(),
                   path.c_str());
      std::exit(2);
    }
    const std::string text = to_string();
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }

 private:
  enum class Kind { kRate, kScore, kCost };
  struct Row {
    std::string name;
    double value;
    Kind kind;
  };
  std::string executable_;
  std::vector<Row> rows_;
};

}  // namespace hni::bench
