// F4 — End-to-end latency breakdown per PDU size.
//
// One unloaded PDU per measurement; the timeline is decomposed into the
// stages a paper-style figure stacks: host send + TX staging (send ->
// first cell on the wire), wire serialization (first -> last cell),
// receive-side reassembly + DMA (last cell -> host memory), and the
// interrupt/driver hand-off (host memory -> application).

#include <cstdio>

#include "bench_util.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"

using namespace hni;

struct Breakdown {
  sim::Time send_to_first_cell = 0;
  sim::Time wire = 0;
  sim::Time rx_to_memory = 0;
  sim::Time memory_to_app = 0;
  sim::Time total = 0;
};

Breakdown measure(std::size_t sdu_bytes, atm::LineRate line) {
  core::Testbed bed;
  core::StationConfig sc;
  sc.nic.line = line;
  // Latency, not loss, is under study: provision the engines above the
  // line rate so the FIFO never sheds cells even at STS-12c.
  sc.nic.with_clock(50e6);
  auto& a = bed.add_station(sc);
  auto& b = bed.add_station(sc);
  auto [ab, ba] = bed.connect(a, b);
  (void)ba;
  const atm::VcId vc{0, 7};
  a.nic().open_vc(vc, aal::AalType::kAal5);
  b.nic().open_vc(vc, aal::AalType::kAal5);

  sim::Time first_cell = -1, last_cell = -1;
  // Tap the wire via a second sink layered over the link delivery.
  ab->set_sink([&](const net::WireCell& w) {
    if (first_cell < 0) first_cell = bed.sim().now();
    last_cell = bed.sim().now();
    b.nic().rx().receive_wire(w);
  });

  Breakdown out;
  sim::Time sent_at = -1;
  bool done = false;
  b.host().set_rx_handler([&](aal::Bytes, const host::RxInfo& info) {
    out.send_to_first_cell = first_cell - sent_at;
    out.wire = last_cell - first_cell;
    out.rx_to_memory = info.delivered_time - last_cell;
    out.memory_to_app = info.handed_up_time - info.delivered_time;
    out.total = info.handed_up_time - sent_at;
    done = true;
  });

  sent_at = bed.now();
  a.host().send(vc, aal::AalType::kAal5, aal::make_pattern(sdu_bytes, 1));
  bed.run_for(sim::milliseconds(200));
  if (!done) std::fprintf(stderr, "F4: no delivery for %zu!\n", sdu_bytes);
  return out;
}

int main(int argc, char** argv) {
  // Single-PDU measurements; cheap already, --smoke is a no-op.
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double total_9180_us = 0.0;  // last assignment lands on STS-12c
  std::printf("F4: unloaded end-to-end latency breakdown (AAL5)\n");
  for (const auto& [name, line] : {std::pair{"STS-3c", atm::sts3c()},
                                   std::pair{"STS-12c", atm::sts12c()}}) {
    core::Table t({"SDU bytes", "send->1st cell", "wire (1st->last)",
                   "last->host mem", "mem->app", "total"});
    for (std::size_t sdu : {40u, 512u, 1500u, 9180u, 65535u}) {
      const Breakdown b = measure(sdu, line);
      if (sdu == 9180) total_9180_us = sim::to_microseconds(b.total);
      t.add_row({core::Table::integer(sdu),
                 sim::format_time(b.send_to_first_cell),
                 sim::format_time(b.wire),
                 sim::format_time(b.rx_to_memory),
                 sim::format_time(b.memory_to_app),
                 sim::format_time(b.total)});
    }
    t.print(std::string("F4 @ ") + name);
  }
  std::printf("\nReading: small PDUs are dominated by fixed per-PDU costs "
              "(syscall, staging DMA, interrupt);\nlarge PDUs by wire "
              "serialization — with the whole-PDU staging DMA visible as "
              "the send->first-cell\nterm growing linearly in the PDU "
              "size.\n");

  hni::bench::JsonEmitter json("bench_f4_latency_breakdown");
  json.cost("f4_latency/sts12c_9180_total_us", total_9180_us);
  json.write_or_die(cli.json);
  return 0;
}
