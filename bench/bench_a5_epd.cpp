// A5 — Extension: frame-aware discard (EPD/PPD) at the congested switch.
//
// T3 showed the brutal fact: random cell loss under overload damages
// essentially every large PDU, so frame goodput collapses long before
// cell throughput does. Early Packet Discard attacks this where it
// happens — the switch queue — by refusing *whole* PDUs when the queue
// crosses a threshold (and Partial Packet Discard sheds the useless
// remainder of any PDU that still loses a cell, forwarding its final
// cell so frames never splice).
//
// Scenario: two stations offer ~1.55x an STS-3c port (Poisson 9180-byte
// PDUs) through upstream links with realistic CDV jitter. Sweep the
// discard policy — from plain tail drop through EPD sizing to the full
// per-VC overload plane (EPD + color-aware WRED + round-robin service)
// this series added. All rows drive the same unified per-VC queue
// stage; every run must leave the switch's queue-stage conservation
// identity balanced (the "books" column).

#include <cstdio>
#include "bench_util.hpp"

#include <memory>

#include "core/report.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"

using namespace hni;

struct Policy {
  const char* name;
  std::size_t queue;
  std::size_t epd;
  net::SwitchScheduler scheduler = net::SwitchScheduler::kFifo;
  bool wred = false;
};

struct Outcome {
  std::size_t delivered = 0;
  std::size_t errored = 0;
  std::uint64_t cell_drops = 0;
  std::uint64_t epd_pdus = 0;
  std::uint64_t ppd_cells = 0;
  std::uint64_t wred_cells = 0;
  double goodput_mbps = 0;
  bool books_ok = false;
};

Outcome run(const Policy& p, sim::Time window) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  auto& c = bed.add_station({});
  net::SwitchConfig sc{.ports = 3,
                       .queue_cells = p.queue,
                       .clp_threshold = p.queue,
                       .epd_threshold = p.epd,
                       .scheduler = p.scheduler};
  if (p.wred) {
    sc.wred.enabled = true;
    sc.wred.min_cells = p.queue / 2;
    sc.wred.max_cells = p.queue;
    sc.wred.max_p = 0.05;
    sc.wred.clp1_min_cells = p.queue / 4;
    sc.wred.clp1_max_cells = p.queue / 2;
  }
  auto& sw = bed.add_switch(sc);
  net::LossModel jitter;
  jitter.cdv_jitter = sim::microseconds(6);
  bed.connect_to_switch(a, sw, 0, jitter);
  bed.connect_to_switch(b, sw, 1, jitter);
  bed.connect_from_switch(sw, 2, c);
  sw.add_route(0, {0, 1}, 2, {0, 1});
  sw.add_route(1, {0, 2}, 2, {0, 2});
  a.nic().open_vc({0, 1}, aal::AalType::kAal5);
  b.nic().open_vc({0, 2}, aal::AalType::kAal5);
  c.nic().open_vc({0, 1}, aal::AalType::kAal5);
  c.nic().open_vc({0, 2}, aal::AalType::kAal5);

  Outcome out;
  std::uint64_t bytes = 0;
  c.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
    ++out.delivered;
    bytes += s.size();
  });
  auto drive = [&](core::Station& s, atm::VcId vc, std::uint64_t seed) {
    auto src = std::make_shared<net::SduSource>(
        bed.sim(),
        net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                               .sdu_bytes = 9180,
                               .count = 0,
                               .interval = sim::microseconds(700),
                               .seed = seed},
        [&s, vc](aal::Bytes sdu) {
          return s.host().send(vc, aal::AalType::kAal5, std::move(sdu));
        });
    src->start();
    return src;
  };
  auto s1 = drive(a, {0, 1}, 1);
  auto s2 = drive(b, {0, 2}, 2);
  bed.run_for(window);
  s1->stop();
  s2->stop();

  out.errored = c.nic().rx().pdus_errored();
  out.cell_drops = sw.cells_dropped_overflow();
  out.epd_pdus = sw.pdus_epd_discarded();
  out.ppd_cells = sw.cells_ppd_dropped();
  out.wred_cells = sw.cells_wred_dropped();
  out.goodput_mbps =
      static_cast<double>(bytes) * 8.0 / sim::to_seconds(window) / 1e6;
  // Drain in-flight cells, then check the queue-stage conservation
  // identity: everything offered to the queue is forwarded, accounted
  // to a named discard stage, or still resident.
  bed.run_for(sim::milliseconds(50));
  auto auditor = bed.audit(/*include_hops=*/true);
  out.books_ok = auditor.ok();
  if (!out.books_ok) std::fputs(auditor.report().c_str(), stderr);
  return out;
}

int main(int argc, char** argv) {
  const hni::bench::Cli cli = hni::bench::parse_cli(argc, argv);
  double epd_sized_mbps = 0.0, taildrop_damaged = 0.0;
  std::printf("A5: frame-aware discard under 1.55x overload of an STS-3c "
              "port (Poisson 9180-byte PDUs,\n6 us upstream CDV jitter, "
              "200 ms window; AAL5 goodput ceiling at this PDU size: "
              "135.1 Mb/s)\n");

  const sim::Time window = sim::milliseconds(cli.smoke ? 50 : 200);
  core::Table t({"policy", "queue", "PDUs intact", "PDUs damaged",
                 "EPD-discarded PDUs", "PPD cells", "WRED cells",
                 "overflow cells", "goodput Mb/s", "books"});
  const Policy cfgs[] = {
      {"tail drop", 1024, 0},
      {"EPD undersized (thr 896)", 1024, 896},
      {"EPD sized (thr 512)", 1024, 512},
      {"EPD small buffer (thr 64/128)", 128, 64},
      {"EPD + WRED + round-robin", 1024, 512,
       net::SwitchScheduler::kRoundRobin, true},
  };
  bool books_ok = true;
  for (const auto& cfg : cfgs) {
    const Outcome o = run(cfg, window);
    books_ok = books_ok && o.books_ok;
    if (std::string(cfg.name) == "EPD sized (thr 512)") {
      epd_sized_mbps = o.goodput_mbps;
    }
    if (std::string(cfg.name) == "tail drop") {
      taildrop_damaged = static_cast<double>(o.errored);
    }
    t.add_row({cfg.name, core::Table::integer(cfg.queue),
               core::Table::integer(o.delivered),
               core::Table::integer(o.errored),
               core::Table::integer(o.epd_pdus),
               core::Table::integer(o.ppd_cells),
               core::Table::integer(o.wred_cells),
               core::Table::integer(o.cell_drops),
               core::Table::num(o.goodput_mbps, 1),
               o.books_ok ? "ok" : "FAIL"});
  }
  t.print("A5: discard policy under sustained overload");

  std::printf(
      "\nReading: tail drop interleaves losses across both VCs and "
      "damages most admitted PDUs —\ngoodput collapses far below the "
      "port's capacity. Properly sized EPD (headroom beyond the\n"
      "threshold >= one max PDU per competing VC) sheds exactly the "
      "excess *whole* PDUs: zero\ndamaged deliveries and goodput at the "
      "port ceiling. Undersized headroom degrades toward\nPPD behaviour "
      "but still beats tail drop. The full per-VC plane (round-robin + "
      "WRED) keeps\nEPD's frame-goodput while removing FIFO's "
      "head-of-line capture between the two VCs.\n");
  hni::bench::JsonEmitter json("bench_a5_epd");
  json.rate("a5_epd/sized_goodput_bytes_per_s", epd_sized_mbps * 1e6 / 8.0);
  json.cost("a5_epd/taildrop_damaged_pdus", taildrop_damaged);
  json.write_or_die(cli.json);
  if (!books_ok) {
    std::fprintf(stderr, "A5: FAIL queue-stage conservation violated\n");
    return 1;
  }
  return 0;
}
