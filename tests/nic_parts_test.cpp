// Tests for the NIC's building blocks: cell FIFO, board buffer manager,
// VC table, interrupt controller.

#include <gtest/gtest.h>

#include "nic/buffer_mgr.hpp"
#include "nic/fifo.hpp"
#include "nic/interrupt.hpp"
#include "nic/vc_table.hpp"

namespace hni::nic {
namespace {

TEST(CellFifo, PushPopFifoOrder) {
  sim::Simulator sim;
  CellFifo<int> f(sim, 4);
  EXPECT_TRUE(f.empty());
  f.push(1);
  f.push(2);
  f.push(3);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(f.pop(), 1);
  EXPECT_EQ(f.pop(), 2);
  EXPECT_EQ(f.pop(), 3);
  EXPECT_FALSE(f.pop().has_value());
}

TEST(CellFifo, DropsWhenFull) {
  sim::Simulator sim;
  CellFifo<int> f(sim, 2);
  EXPECT_TRUE(f.push(1));
  EXPECT_TRUE(f.push(2));
  EXPECT_TRUE(f.full());
  EXPECT_FALSE(f.push(3));
  EXPECT_EQ(f.drops(), 1u);
  EXPECT_EQ(f.size(), 2u);
}

TEST(CellFifo, OnPushFiresPerPush) {
  sim::Simulator sim;
  CellFifo<int> f(sim, 4);
  int wakeups = 0;
  f.set_on_push([&] { ++wakeups; });
  f.push(1);
  f.push(2);
  EXPECT_EQ(wakeups, 2);
}

TEST(CellFifo, SpaceWaitersReleasedOnePerPop) {
  sim::Simulator sim;
  CellFifo<int> f(sim, 1);
  f.push(1);
  int released = 0;
  f.wait_space([&] { ++released; });
  f.wait_space([&] { ++released; });
  EXPECT_EQ(released, 0);
  f.pop();
  EXPECT_EQ(released, 1);
  f.pop();  // empty pop: no release
  EXPECT_EQ(released, 1);
  f.push(2);
  f.pop();
  EXPECT_EQ(released, 2);
}

TEST(CellFifo, OccupancyStats) {
  sim::Simulator sim;
  CellFifo<int> f(sim, 8);
  sim.at(0, [&] { f.push(1); });
  sim.at(10, [&] { f.push(2); });
  sim.at(20, [&] {
    f.pop();
    f.pop();
  });
  sim.run();
  sim.run_until(40);
  EXPECT_DOUBLE_EQ(f.max_depth(), 2.0);
  // depth: 1 over [0,10), 2 over [10,20), 0 over [20,40) -> mean 0.75
  EXPECT_DOUBLE_EQ(f.mean_depth(), 0.75);
}

TEST(BoardMemory, ChainsGrowByContainer) {
  sim::Simulator sim;
  BoardMemory bm(sim, {.containers = 4, .cells_per_container = 2});
  EXPECT_TRUE(bm.add_cell(1));
  EXPECT_EQ(bm.containers_in_use(), 1u);
  EXPECT_TRUE(bm.add_cell(1));  // fills container 1
  EXPECT_EQ(bm.containers_in_use(), 1u);
  EXPECT_TRUE(bm.add_cell(1));  // needs a second container
  EXPECT_EQ(bm.containers_in_use(), 2u);
  EXPECT_EQ(bm.chain_containers(1), 2u);
}

TEST(BoardMemory, ExhaustionRefusesWithoutCorruption) {
  sim::Simulator sim;
  BoardMemory bm(sim, {.containers = 2, .cells_per_container = 1});
  EXPECT_TRUE(bm.add_cell(1));
  EXPECT_TRUE(bm.add_cell(2));
  EXPECT_FALSE(bm.add_cell(3));
  EXPECT_EQ(bm.alloc_failures(), 1u);
  EXPECT_EQ(bm.containers_in_use(), 2u);
  bm.release(1);
  EXPECT_TRUE(bm.add_cell(3));
}

TEST(BoardMemory, ReleaseReturnsAllContainers) {
  sim::Simulator sim;
  BoardMemory bm(sim, {.containers = 8, .cells_per_container = 2});
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(bm.add_cell(7));
  EXPECT_EQ(bm.containers_in_use(), 3u);
  bm.release(7);
  EXPECT_EQ(bm.containers_in_use(), 0u);
  EXPECT_EQ(bm.chain_containers(7), 0u);
  bm.release(7);  // double release is harmless
}

TEST(BoardMemory, PeakTracked) {
  sim::Simulator sim;
  BoardMemory bm(sim, {.containers = 8, .cells_per_container = 1});
  bm.add_cell(1);
  bm.add_cell(2);
  bm.add_cell(3);
  bm.release(1);
  bm.release(2);
  EXPECT_DOUBLE_EQ(bm.peak_in_use(), 3.0);
  EXPECT_EQ(bm.containers_in_use(), 1u);
}

TEST(BoardMemoryConfig, ByteArithmetic) {
  BoardMemoryConfig c{.containers = 10,
                      .cells_per_container = 32,
                      .container_overhead_bytes = 4};
  EXPECT_EQ(c.container_bytes(), 32 * 48 + 4u);
  EXPECT_EQ(c.total_bytes(), 10 * (32 * 48 + 4u));
}

TEST(VcTable, InsertFindErase) {
  VcTable<int> t(16);
  t.insert({0, 1}, 100);
  t.insert({0, 2}, 200);
  EXPECT_EQ(t.size(), 2u);
  auto f = t.find({0, 1});
  ASSERT_NE(f.state, nullptr);
  EXPECT_EQ(*f.state, 100);
  EXPECT_EQ(t.find({9, 9}).state, nullptr);
  EXPECT_TRUE(t.erase({0, 1}));
  EXPECT_FALSE(t.erase({0, 1}));
  EXPECT_EQ(t.size(), 1u);
}

TEST(VcTable, InsertReplacesExisting) {
  VcTable<int> t(16);
  t.insert({1, 1}, 5);
  t.insert({1, 1}, 7);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(*t.find({1, 1}).state, 7);
}

TEST(VcTable, ProbeCountStaysBoundedAsTableGrows) {
  // The old fixed-bucket table turned probe cost into a config knob
  // (N entries on one chain -> N-1 probes). The robin-hood table grows
  // itself and keeps displacement near-constant: even starting from the
  // smallest index, thousands of sequential VCIs (the adversarial
  // allocation pattern) must stay within a handful of extra probes.
  VcTable<int> t(1);
  constexpr std::uint16_t kVcs = 4096;
  for (std::uint32_t i = 0; i < kVcs; ++i) {
    t.insert({static_cast<std::uint16_t>(i >> 12),
              static_cast<std::uint16_t>(i & 0xFFF)},
             static_cast<int>(i));
  }
  std::uint32_t max_probes = 0;
  for (std::uint32_t i = 0; i < kVcs; ++i) {
    auto f = t.find({static_cast<std::uint16_t>(i >> 12),
                     static_cast<std::uint16_t>(i & 0xFFF)});
    ASSERT_NE(f.state, nullptr);
    max_probes = std::max(max_probes, f.extra_probes);
  }
  // Robin-hood at a 7/8 load ceiling keeps the expected maximum probe
  // length O(log n); 16 is far above anything a healthy mixer produces.
  EXPECT_LE(max_probes, 16u);
  // A lone entry always sits at home: the engine charge for the common
  // small-population case is exactly the CAM-assist baseline.
  VcTable<int> one;
  one.insert({0, 100}, 1);
  EXPECT_EQ(one.find({0, 100}).extra_probes, 0u);
}

TEST(VcTable, ForEachVisitsAll) {
  VcTable<int> t(4);
  for (std::uint16_t i = 0; i < 10; ++i) t.insert({0, i}, i);
  int sum = 0;
  t.for_each([&](atm::VcId, int& v) { sum += v; });
  EXPECT_EQ(sum, 45);
}

TEST(InterruptController, ZeroWindowBatchesSameInstant) {
  sim::Simulator sim;
  InterruptController ic(sim, 0);
  std::vector<std::size_t> batches;
  ic.set_handler([&](std::size_t n) { batches.push_back(n); });
  sim.at(10, [&] {
    ic.post();
    ic.post();
    ic.post();
  });
  sim.run();
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0], 3u);
  EXPECT_EQ(ic.events(), 3u);
  EXPECT_EQ(ic.interrupts(), 1u);
  EXPECT_DOUBLE_EQ(ic.batching(), 3.0);
}

TEST(InterruptController, WindowCoalescesAcrossTime) {
  sim::Simulator sim;
  InterruptController ic(sim, sim::microseconds(10));
  std::vector<std::size_t> batches;
  ic.set_handler([&](std::size_t n) { batches.push_back(n); });
  sim.at(0, [&] { ic.post(); });
  sim.at(sim::microseconds(5), [&] { ic.post(); });
  sim.at(sim::microseconds(30), [&] { ic.post(); });
  sim.run();
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0], 2u);  // events at 0 and 5 us share one interrupt
  EXPECT_EQ(batches[1], 1u);
}

TEST(InterruptController, SeparateInstantsSeparateInterrupts) {
  sim::Simulator sim;
  InterruptController ic(sim, 0);
  int interrupts = 0;
  ic.set_handler([&](std::size_t) { ++interrupts; });
  sim.at(10, [&] { ic.post(); });
  sim.at(20, [&] { ic.post(); });
  sim.run();
  EXPECT_EQ(interrupts, 2);
}

}  // namespace
}  // namespace hni::nic
