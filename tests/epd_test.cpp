// Early/Partial Packet Discard tests: frame-aware queue management in
// the switch.

#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/testbed.hpp"
#include "net/traffic.hpp"

namespace hni {
namespace {

const atm::VcId kVc{0, 10};

net::WireCell wire(const atm::Cell& c) {
  net::WireCell w;
  w.bytes = c.serialize(atm::HeaderFormat::kUni);
  return w;
}

struct SwitchFixture {
  sim::Simulator sim;
  net::Switch sw;
  net::Link out{sim, 0};
  std::vector<atm::CellHeader> forwarded;

  explicit SwitchFixture(net::SwitchConfig cfg) : sw(sim, cfg) {
    sw.add_route(0, kVc, 1, kVc);
    sw.attach_output(1, out);
    out.set_sink([this](const net::WireCell& w) {
      forwarded.push_back(atm::decode_header(
          std::span<const std::uint8_t, 4>(w.bytes.data(), 4),
          atm::HeaderFormat::kUni));
    });
  }
};

TEST(Epd, FreshPduRefusedAtThreshold) {
  SwitchFixture f({.ports = 2, .queue_cells = 64, .clp_threshold = 64,
                   .epd_threshold = 8});
  // Fill the queue past the EPD threshold with one PDU's cells, then
  // start a second PDU: its cells must all be EPD-dropped.
  const auto pdu1 = aal::aal5_segment(aal::make_pattern(800, 1), kVc);
  const auto pdu2 = aal::aal5_segment(aal::make_pattern(800, 2), kVc);
  for (const auto& c : pdu1) f.sw.receive(0, wire(c));  // 17 cells queued
  for (const auto& c : pdu2) f.sw.receive(0, wire(c));
  f.sim.run_until(sim::milliseconds(1));

  EXPECT_EQ(f.sw.pdus_epd_discarded(), 1u);
  EXPECT_EQ(f.sw.cells_epd_dropped(), pdu2.size());
  // PDU 1 got through whole.
  EXPECT_EQ(f.forwarded.size(), pdu1.size());
}

TEST(Epd, ReassemblesCleanlyAfterDiscard) {
  SwitchFixture f({.ports = 2, .queue_cells = 64, .clp_threshold = 64,
                   .epd_threshold = 8});
  aal::Aal5Reassembler rx;
  std::vector<aal::Bytes> delivered;
  f.out.set_sink([&](const net::WireCell& w) {
    const atm::Cell c = atm::Cell::deserialize(
        std::span<const std::uint8_t, atm::kCellSize>(w.bytes.data(),
                                                      atm::kCellSize),
        atm::HeaderFormat::kUni);
    if (auto d = rx.push(c)) {
      ASSERT_EQ(d->error, aal::ReassemblyError::kNone);
      delivered.push_back(std::move(d->sdu));
    }
  });

  const aal::Bytes sdu1 = aal::make_pattern(800, 1);
  const aal::Bytes sdu3 = aal::make_pattern(800, 3);
  // PDU1 fills the queue; PDU2 is EPD-discarded entirely; PDU3 sent
  // after the queue drains arrives whole. The receiver must see exactly
  // PDU1 and PDU3, with no splice and no CRC error.
  for (const auto& c : aal::aal5_segment(sdu1, kVc)) {
    f.sw.receive(0, wire(c));
  }
  for (const auto& c : aal::aal5_segment(aal::make_pattern(800, 2), kVc)) {
    f.sw.receive(0, wire(c));
  }
  f.sim.run_until(sim::milliseconds(1));  // drain
  for (const auto& c : aal::aal5_segment(sdu3, kVc)) {
    f.sw.receive(0, wire(c));
  }
  f.sim.run_until(sim::milliseconds(2));

  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], sdu1);
  EXPECT_EQ(delivered[1], sdu3);
  EXPECT_EQ(rx.pdus_errored(), 0u);
}

TEST(Ppd, TailDroppedButFinalCellForwarded) {
  // Queue sized so overflow strikes mid-PDU (EPD threshold high enough
  // to admit the PDU). Cells arrive at 0.8 cell slots — slightly above
  // the service rate — so the queue builds gradually and, once PPD
  // sheds the remainder, drains enough to admit the final cell.
  SwitchFixture f({.ports = 2, .queue_cells = 6, .clp_threshold = 6,
                   .epd_threshold = 6});
  const auto pdu = aal::aal5_segment(aal::make_pattern(2000, 1), kVc);  // 42
  sim::Time t = 0;
  for (const auto& c : pdu) {
    f.sim.at(t, [&f, w = wire(c)] { f.sw.receive(0, w); });
    t += sim::nanoseconds(2265);  // 0.8 x 2.831 us
  }
  f.sim.run_until(t + sim::milliseconds(1));

  // Overflow counted once (the triggering cell), the useless remainder
  // PPD-dropped, but the final (AUU) cell forwarded.
  EXPECT_EQ(f.sw.cells_dropped_overflow(), 1u);
  EXPECT_GT(f.sw.cells_ppd_dropped(), 0u);
  ASSERT_FALSE(f.forwarded.empty());
  EXPECT_TRUE(atm::pti_auu(f.forwarded.back().pti));
  // Cells conserved: forwarded + overflow + ppd = sent.
  EXPECT_EQ(f.forwarded.size() + 1 + f.sw.cells_ppd_dropped(), pdu.size());
}

TEST(Ppd, ReceiverSeesErrorNotSplice) {
  SwitchFixture f({.ports = 2, .queue_cells = 6, .clp_threshold = 6,
                   .epd_threshold = 6});
  aal::Aal5Reassembler rx;
  std::size_t ok = 0, errored = 0;
  std::vector<aal::Bytes> good;
  f.out.set_sink([&](const net::WireCell& w) {
    const atm::Cell c = atm::Cell::deserialize(
        std::span<const std::uint8_t, atm::kCellSize>(w.bytes.data(),
                                                      atm::kCellSize),
        atm::HeaderFormat::kUni);
    if (auto d = rx.push(c)) {
      if (d->error == aal::ReassemblyError::kNone) {
        ++ok;
        good.push_back(std::move(d->sdu));
      } else {
        ++errored;
      }
    }
  });

  const aal::Bytes sdu2 = aal::make_pattern(100, 2);
  sim::Time t = 0;
  for (const auto& c : aal::aal5_segment(aal::make_pattern(2000, 1), kVc)) {
    // Paced at 0.8 slots: damaged by mid-PDU overflow -> PPD.
    f.sim.at(t, [&f, w = wire(c)] { f.sw.receive(0, w); });
    t += sim::nanoseconds(2265);
  }
  f.sim.run_until(t + sim::milliseconds(1));
  for (const auto& c : aal::aal5_segment(sdu2, kVc)) {
    f.sw.receive(0, wire(c));  // clean
  }
  f.sim.run_until(t + sim::milliseconds(2));

  // The forwarded EOM terminated the damaged PDU: exactly one error,
  // and the following PDU delivered intact (no splice).
  EXPECT_EQ(errored, 1u);
  ASSERT_EQ(ok, 1u);
  EXPECT_EQ(good[0], sdu2);
}

TEST(Epd, DisabledBehavesLikeTailDrop) {
  SwitchFixture f({.ports = 2, .queue_cells = 10, .clp_threshold = 10,
                   .epd_threshold = 0});
  const auto pdu = aal::aal5_segment(aal::make_pattern(2000, 1), kVc);
  for (const auto& c : pdu) f.sw.receive(0, wire(c));
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.sw.cells_epd_dropped(), 0u);
  EXPECT_EQ(f.sw.cells_ppd_dropped(), 0u);
  EXPECT_GT(f.sw.cells_dropped_overflow(), 1u);
}

TEST(Epd, GoodputUnderCongestionBeatsTailDrop) {
  // The payoff: two greedy senders into one port. With tail drop the
  // interleaved losses damage nearly every PDU; with EPD the switch
  // sheds whole PDUs and delivers a solid share intact.
  auto run = [](std::size_t epd_threshold) -> std::size_t {
    core::Testbed bed;
    auto& a = bed.add_station({});
    auto& b = bed.add_station({});
    auto& c = bed.add_station({});
    // EPD sizing rule: headroom beyond the threshold must cover one
    // maximum PDU per competing VC (2 x 192 cells here).
    auto& sw = bed.add_switch({.ports = 3,
                               .queue_cells = 1024,
                               .clp_threshold = 1024,
                               .epd_threshold = epd_threshold});
    // Upstream multiplexing jitter (the quantity GCRA's tau covers):
    // without it, phase-locked slot clocks make tail drop look
    // artificially frame-aware.
    net::LossModel jitter;
    jitter.cdv_jitter = sim::microseconds(6);
    bed.connect_to_switch(a, sw, 0, jitter);
    bed.connect_to_switch(b, sw, 1, jitter);
    bed.connect_from_switch(sw, 2, c);
    sw.add_route(0, {0, 1}, 2, {0, 1});
    sw.add_route(1, {0, 2}, 2, {0, 2});
    a.nic().open_vc({0, 1}, aal::AalType::kAal5);
    b.nic().open_vc({0, 2}, aal::AalType::kAal5);
    c.nic().open_vc({0, 1}, aal::AalType::kAal5);
    c.nic().open_vc({0, 2}, aal::AalType::kAal5);

    std::size_t delivered = 0;
    c.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
      EXPECT_TRUE(aal::verify_pattern(s));
      ++delivered;
    });
    auto drive = [&](core::Station& s, atm::VcId vc, std::uint64_t seed) {
      auto src = std::make_shared<net::SduSource>(
          bed.sim(),
          net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                                 .sdu_bytes = 9180,
                                 .count = 0,
                                 .interval = sim::microseconds(700),
                                 .seed = seed},
          [&s, vc](aal::Bytes sdu) {
            return s.host().send(vc, aal::AalType::kAal5, std::move(sdu));
          });
      src->start();
      return src;
    };
    auto s1 = drive(a, {0, 1}, 1);
    auto s2 = drive(b, {0, 2}, 2);
    bed.run_for(sim::milliseconds(60));
    (void)s1;
    (void)s2;
    return delivered;
  };

  const std::size_t tail_drop = run(0);
  const std::size_t epd = run(512);
  EXPECT_GT(epd, 2 * tail_drop) << "tail=" << tail_drop << " epd=" << epd;
}

}  // namespace
}  // namespace hni
