// Scheduler property/stress tests: the rebuilt event kernel against a
// naive reference scheduler.
//
// The reference keeps every scheduled event in a flat vector and fires
// by an explicit stable (when, insertion-seq) sort — obviously correct,
// hopelessly slow. Randomized interleavings of at/after/cancel/
// run_until must produce identical firing order, identical cancel
// verdicts, and identical pending() accounting on both. This is the
// contract the golden-determinism digests (determinism_digest_test)
// rest on: any divergence here is a byte-identity break waiting to
// happen in a full scenario.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"

namespace hni {
namespace {

// Naive reference: fire order recomputed from scratch by stable sort.
class ReferenceScheduler {
 public:
  // Returns an index usable with cancel().
  std::size_t schedule(sim::Time when, int id) {
    events_.push_back(Ev{when, next_seq_++, id, false, false});
    return events_.size() - 1;
  }

  bool cancel(std::size_t idx) {
    Ev& ev = events_[idx];
    if (ev.cancelled || ev.fired) return false;
    ev.cancelled = true;
    return true;
  }

  // Fires everything due at or before `deadline`, oldest (when, seq)
  // first; returns the fired ids in order.
  std::vector<int> run_until(sim::Time deadline) {
    std::vector<std::size_t> due;
    for (std::size_t i = 0; i < events_.size(); ++i) {
      const Ev& ev = events_[i];
      if (!ev.cancelled && !ev.fired && ev.when <= deadline) {
        due.push_back(i);
      }
    }
    std::sort(due.begin(), due.end(), [&](std::size_t a, std::size_t b) {
      const Ev& ea = events_[a];
      const Ev& eb = events_[b];
      return ea.when < eb.when || (ea.when == eb.when && ea.seq < eb.seq);
    });
    std::vector<int> order;
    order.reserve(due.size());
    for (std::size_t i : due) {
      events_[i].fired = true;
      order.push_back(events_[i].id);
    }
    return order;
  }

  std::size_t pending() const {
    std::size_t n = 0;
    for (const Ev& ev : events_) {
      if (!ev.cancelled && !ev.fired) ++n;
    }
    return n;
  }

 private:
  struct Ev {
    sim::Time when;
    std::uint64_t seq;
    int id;
    bool cancelled;
    bool fired;
  };
  std::vector<Ev> events_;
  std::uint64_t next_seq_ = 0;
};

// One randomized episode: phases of {schedule burst, random cancels,
// run_until a random deadline}, comparing kernel and reference at
// every step. Small time range so ties are common.
void run_episode(std::uint32_t seed) {
  SCOPED_TRACE(testing::Message() << "seed=" << seed);
  std::mt19937 rng(seed);
  sim::Simulator sim;
  ReferenceScheduler ref;
  std::vector<int> fired;  // ids, in kernel firing order

  struct Live {
    sim::EventHandle handle;
    std::size_t ref_idx;
  };
  std::vector<Live> issued;  // every handle ever issued, fired or not

  int next_id = 0;
  std::uniform_int_distribution<int> burst(1, 40);
  std::uniform_int_distribution<sim::Time> offset(0, 25);  // ties galore
  std::uniform_int_distribution<sim::Time> step(1, 30);

  for (int phase = 0; phase < 60; ++phase) {
    // Schedule a burst at random offsets from now (0 included: events
    // at the current instant must still fire, after already-queued
    // events of the same timestamp).
    const int n = burst(rng);
    for (int i = 0; i < n; ++i) {
      const sim::Time when = sim.now() + offset(rng);
      const int id = next_id++;
      const sim::EventHandle h = sim.at(when, [&fired, id] {
        fired.push_back(id);
      });
      EXPECT_TRUE(h.valid());
      issued.push_back({h, ref.schedule(when, id)});
    }
    ASSERT_EQ(sim.pending(), ref.pending());

    // Random cancels over the full issued history: pending events must
    // report true exactly once; fired or already-cancelled ones false.
    std::uniform_int_distribution<std::size_t> pick(0, issued.size() - 1);
    const int cancels = burst(rng) / 4;
    for (int i = 0; i < cancels; ++i) {
      const Live& victim = issued[pick(rng)];
      const bool expect = ref.cancel(victim.ref_idx);
      EXPECT_EQ(sim.cancel(victim.handle), expect);
    }
    ASSERT_EQ(sim.pending(), ref.pending());

    // Advance. Events at exactly the deadline fire; later ones do not.
    const sim::Time deadline = sim.now() + step(rng);
    const std::size_t before = fired.size();
    const std::uint64_t fired_by_kernel = sim.run_until(deadline);
    const std::vector<int> expected = ref.run_until(deadline);
    EXPECT_EQ(fired_by_kernel, expected.size());
    ASSERT_EQ(fired.size() - before, expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(fired[before + i], expected[i])
          << "divergent firing order at position " << before + i;
    }
    EXPECT_EQ(sim.now(), deadline);
    ASSERT_EQ(sim.pending(), ref.pending());
  }

  // Drain: everything still pending fires in reference order.
  const std::size_t before = fired.size();
  sim.run();
  const std::vector<int> rest = ref.run_until(
      std::numeric_limits<sim::Time>::max());
  ASSERT_EQ(fired.size() - before, rest.size());
  for (std::size_t i = 0; i < rest.size(); ++i) {
    ASSERT_EQ(fired[before + i], rest[i]);
  }
  EXPECT_EQ(sim.pending(), 0u);
  EXPECT_EQ(ref.pending(), 0u);
}

TEST(SimKernelProperty, RandomizedAgainstReference) {
  for (std::uint32_t seed = 1; seed <= 8; ++seed) {
    run_episode(seed);
  }
}

TEST(SimKernelProperty, FifoTieBreakSurvivesInterleavedCancels) {
  sim::Simulator sim;
  std::vector<int> order;
  std::vector<sim::EventHandle> handles;
  // 16 events, all at t=5; cancel every third one after the fact.
  for (int i = 0; i < 16; ++i) {
    handles.push_back(sim.at(5, [&order, i] { order.push_back(i); }));
  }
  std::vector<int> expected;
  for (int i = 0; i < 16; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
    } else {
      expected.push_back(i);
    }
  }
  sim.run();
  EXPECT_EQ(order, expected);  // insertion order among survivors
}

TEST(SimKernelProperty, CancelAfterFireIsNoOpAndKeepsBooks) {
  sim::Simulator sim;
  int fired = 0;
  const sim::EventHandle h = sim.at(1, [&fired] { ++fired; });
  sim.at(2, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.run_until(1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  // The handle's event already fired: cancel must refuse and must not
  // disturb the pending count of the unrelated survivor.
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimKernelProperty, CancelledHandleStaysDeadAfterSlotReuse) {
  sim::Simulator sim;
  int fired = 0;
  const sim::EventHandle h = sim.at(1, [&fired] { ++fired; });
  EXPECT_TRUE(sim.cancel(h));
  // The freed slot is immediately reused by the next schedule; the old
  // handle must not be able to cancel the new tenant.
  sim.at(2, [&fired] { fired += 10; });
  EXPECT_FALSE(sim.cancel(h));
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(SimKernelProperty, RunUntilFiresDeadlineEventsExactly) {
  sim::Simulator sim;
  std::vector<int> order;
  sim.at(10, [&order] { order.push_back(1); });
  sim.at(10, [&order] { order.push_back(2); });
  sim.at(11, [&order] { order.push_back(3); });
  EXPECT_EQ(sim.run_until(10), 2u);  // both t==deadline events fire
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 10);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_EQ(sim.run_until(11), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimKernelProperty, CallbackSchedulingKeepsSeqOrder) {
  // An event firing at time T that schedules another event at the same
  // T gets a later insertion seq: it must run after everything already
  // queued for T, including events inserted before it.
  sim::Simulator sim;
  std::vector<int> order;
  sim.at(5, [&] {
    order.push_back(1);
    sim.at(5, [&order] { order.push_back(4); });
  });
  sim.at(5, [&order] { order.push_back(2); });
  sim.at(5, [&order] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimKernelProperty, CallbackCancellingPendingEventWorks) {
  sim::Simulator sim;
  std::vector<int> order;
  sim::EventHandle victim = sim.at(7, [&order] { order.push_back(99); });
  sim.at(5, [&] {
    order.push_back(1);
    EXPECT_TRUE(sim.cancel(victim));
  });
  sim.at(9, [&order] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(SimKernelProperty, DeepRandomChurnKeepsPendingExact) {
  // Heavy cancel churn forces slot reuse and stale-node skimming; the
  // pending() identity must hold through all of it.
  std::mt19937 rng(0xC0FFEE);
  sim::Simulator sim;
  ReferenceScheduler ref;
  std::vector<std::pair<sim::EventHandle, std::size_t>> live;
  std::uniform_int_distribution<sim::Time> offset(1, 8);
  int fired_count = 0;
  for (int round = 0; round < 2000; ++round) {
    const sim::Time when = sim.now() + offset(rng);
    live.emplace_back(sim.at(when, [&fired_count] { ++fired_count; }),
                      ref.schedule(when, 0));
    if (live.size() > 4 && rng() % 2 == 0) {
      const std::size_t idx = rng() % live.size();
      EXPECT_EQ(sim.cancel(live[idx].first), ref.cancel(live[idx].second));
    }
    if (rng() % 4 == 0) {
      const sim::Time deadline = sim.now() + offset(rng);
      const auto fired_ref = ref.run_until(deadline);
      EXPECT_EQ(sim.run_until(deadline), fired_ref.size());
    }
    ASSERT_EQ(sim.pending(), ref.pending());
  }
  sim.run();
  EXPECT_EQ(sim.pending(), 0u);
}

}  // namespace
}  // namespace hni
