// Payload CRC tests: CRC-32 against published vectors, CRC-10 against a
// bit-serial reference implementation, incremental use, and error
// detection properties.

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

#include "atm/crc.hpp"
#include "sim/random.hpp"

namespace hni::atm {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view s) {
  return {s.begin(), s.end()};
}

// Bit-serial CRC-10 reference: x^10+x^9+x^5+x^4+x+1, MSB first.
std::uint16_t crc10_reference(std::span<const std::uint8_t> data) {
  std::uint16_t reg = 0;
  for (std::uint8_t byte : data) {
    for (int bit = 7; bit >= 0; --bit) {
      const int in = (byte >> bit) & 1;
      const int top = (reg >> 9) & 1;
      reg = static_cast<std::uint16_t>((reg << 1) & 0x3FF);
      if (top ^ in) reg ^= 0x233;  // poly low bits: x^9+x^5+x^4+x+1
    }
  }
  return reg;
}

TEST(Crc32, CheckValue123456789) {
  // The canonical CRC-32 check value.
  const auto data = bytes_of("123456789");
  EXPECT_EQ(crc32(data), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(std::span<const std::uint8_t>{}), 0x00000000u);
}

TEST(Crc32, KnownVectors) {
  EXPECT_EQ(crc32(bytes_of("a")), 0xE8B7BE43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441C2u);
  EXPECT_EQ(crc32(bytes_of("The quick brown fox jumps over the lazy dog")),
            0x414FA339u);
}

TEST(Crc32, IncrementalEqualsOneShot) {
  const auto data = bytes_of("segmentation and reassembly");
  Crc32 inc;
  inc.update(std::span<const std::uint8_t>(data.data(), 7));
  inc.update(std::span<const std::uint8_t>(data.data() + 7,
                                           data.size() - 7));
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, ResetRestartsState) {
  Crc32 c;
  c.update(bytes_of("garbage"));
  c.reset();
  c.update(bytes_of("123456789"));
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  sim::Rng rng(99);
  auto data = bytes_of("some payload bytes for flipping");
  const std::uint32_t good = crc32(data);
  for (int trial = 0; trial < 64; ++trial) {
    const auto byte = rng.uniform_int(0, data.size() - 1);
    const auto bit = rng.uniform_int(0, 7);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_NE(crc32(data), good);
    data[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }
}

TEST(Crc10, MatchesBitSerialReference) {
  sim::Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t len = 1 + rng.uniform_int(0, 63);
    std::vector<std::uint8_t> data(len);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    EXPECT_EQ(crc10(data), crc10_reference(data)) << "len=" << len;
  }
}

TEST(Crc10, TenBitRange) {
  sim::Rng rng(8);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> data(48);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    EXPECT_LE(crc10(data), 0x3FFu);
  }
}

TEST(Crc10, DetectsSingleBitFlips) {
  std::vector<std::uint8_t> data(48, 0x42);
  const std::uint16_t good = crc10(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    data[byte] ^= 0x10;
    EXPECT_NE(crc10(data), good) << "byte " << byte;
    data[byte] ^= 0x10;
  }
}

TEST(Crc10, ZeroMessageZeroCrc) {
  std::vector<std::uint8_t> zeros(16, 0);
  EXPECT_EQ(crc10(zeros), 0u);
}

}  // namespace
}  // namespace hni::atm
