// trTCM / srTCM meter tests.
//
// The centerpiece is a differential test: atm::TrTcm against a scalar
// reference written independently from RFC 2698's text (two buckets,
// refill-then-verdict), driven over randomized contracts and arrival
// processes. The production meter and the reference must agree on
// every verdict. Around it, directed edge cases pin the color
// transitions down: committed burst exhausted (green -> yellow), peak
// burst exhausted (yellow -> red), both at once, and recovery after
// idle time refills the buckets.

#include <gtest/gtest.h>

#include <vector>

#include "atm/meter.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

namespace hni {
namespace {

using atm::MeterColor;

// Scalar reference trTCM, straight from the RFC 2698 update rules.
// Same token arithmetic domain (cells, picosecond timebase) so the
// comparison is exact, but structured independently: the reference
// recomputes rates from the config on every refill instead of caching
// per-picosecond factors, and evaluates the verdict via the RFC's
// decision order.
class ReferenceTrTcm {
 public:
  explicit ReferenceTrTcm(const atm::TrTcmConfig& cfg) : cfg_(cfg) {
    cbs_ = std::max(cfg.cbs_cells, 1.0);
    pbs_ = std::max(cfg.pbs_cells, 1.0);
    tc_ = cbs_;
    tp_ = pbs_;
  }

  MeterColor color(sim::Time now) {
    if (now > last_) {
      const double dt = static_cast<double>(now - last_);
      tc_ = std::min(cbs_, tc_ + dt * (cfg_.cir_cells_per_second /
                                       sim::kSecond));
      tp_ = std::min(pbs_, tp_ + dt * (cfg_.pir_cells_per_second /
                                       sim::kSecond));
      last_ = now;
    }
    if (tp_ < 1.0) return MeterColor::kRed;
    if (tc_ < 1.0) {
      tp_ -= 1.0;
      return MeterColor::kYellow;
    }
    tc_ -= 1.0;
    tp_ -= 1.0;
    return MeterColor::kGreen;
  }

 private:
  atm::TrTcmConfig cfg_;
  double cbs_ = 1.0, pbs_ = 1.0, tc_ = 1.0, tp_ = 1.0;
  sim::Time last_ = 0;
};

TEST(TrTcm, DifferentialAgainstScalarReference) {
  sim::Rng rng(0x7C31);
  for (int trial = 0; trial < 200; ++trial) {
    atm::TrTcmConfig cfg;
    cfg.cir_cells_per_second =
        static_cast<double>(rng.uniform_int(1'000, 500'000));
    // PIR >= CIR (decode enforces SCR <= PCR; mirror that here).
    cfg.pir_cells_per_second =
        cfg.cir_cells_per_second +
        static_cast<double>(rng.uniform_int(0, 500'000));
    cfg.cbs_cells = static_cast<double>(rng.uniform_int(1, 50));
    cfg.pbs_cells = static_cast<double>(rng.uniform_int(1, 50));
    atm::TrTcm meter(cfg);
    ReferenceTrTcm ref(cfg);

    // Arrival process mixing back-to-back bursts (dt = 0) with gaps
    // spanning sub-slot to multi-burst-refill scales.
    sim::Time now = 0;
    for (int i = 0; i < 500; ++i) {
      if (!rng.chance(0.3)) {
        now += static_cast<sim::Time>(rng.uniform_int(1, 20'000'000));
      }
      const MeterColor got = meter.color(now);
      const MeterColor want = ref.color(now);
      ASSERT_EQ(static_cast<int>(got), static_cast<int>(want))
          << "trial " << trial << " cell " << i << " at t=" << now
          << " cir=" << cfg.cir_cells_per_second
          << " pir=" << cfg.pir_cells_per_second
          << " cbs=" << cfg.cbs_cells << " pbs=" << cfg.pbs_cells;
    }
  }
}

// CIR 1000 cells/s, PIR 10000 cells/s: one committed token every ms,
// one peak token every 100 us.
atm::TrTcmConfig small_contract(double cbs, double pbs) {
  atm::TrTcmConfig cfg;
  cfg.cir_cells_per_second = 1'000.0;
  cfg.pir_cells_per_second = 10'000.0;
  cfg.cbs_cells = cbs;
  cfg.pbs_cells = pbs;
  return cfg;
}

TEST(TrTcm, CommittedBurstExhaustionTurnsYellow) {
  // CBS 3, PBS 10: a back-to-back burst drains the committed bucket
  // after 3 cells while peak tokens remain.
  atm::TrTcm meter(small_contract(3, 10));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(meter.color(0), MeterColor::kGreen) << "cell " << i;
  }
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(meter.color(0), MeterColor::kYellow) << "cell " << i;
  }
}

TEST(TrTcm, PeakBurstExhaustionTurnsRed) {
  atm::TrTcm meter(small_contract(3, 10));
  for (int i = 0; i < 10; ++i) meter.color(0);  // 3 green + 7 yellow
  // Peak bucket empty: red, and red consumes nothing — it stays red.
  EXPECT_EQ(meter.color(0), MeterColor::kRed);
  EXPECT_EQ(meter.color(0), MeterColor::kRed);
  EXPECT_DOUBLE_EQ(meter.peak_tokens(), 0.0);
}

TEST(TrTcm, BothBucketsExhaustedSimultaneously) {
  // Equal depths: committed and peak run out on the same cell, so the
  // verdict goes green straight to red with no yellow band.
  atm::TrTcm meter(small_contract(5, 5));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(meter.color(0), MeterColor::kGreen) << "cell " << i;
  }
  EXPECT_EQ(meter.color(0), MeterColor::kRed);
}

TEST(TrTcm, IdleTimeRefillsBothBuckets) {
  atm::TrTcm meter(small_contract(3, 10));
  for (int i = 0; i < 11; ++i) meter.color(0);  // drain to red
  // One second of silence refills both buckets to their caps.
  EXPECT_EQ(meter.color(sim::seconds(1)), MeterColor::kGreen);
  EXPECT_DOUBLE_EQ(meter.committed_tokens(), 2.0);
  EXPECT_DOUBLE_EQ(meter.peak_tokens(), 9.0);
}

TEST(TrTcm, SustainedRateBetweenCirAndPirIsYellow) {
  // Cells every 200 us = 5000 cells/s: above CIR (1000), below PIR
  // (10000). Once the committed burst credit is spent, the steady
  // state is yellow — the VBR "bursting above SCR inside PCR" band.
  atm::TrTcm meter(small_contract(2, 10));
  int yellow = 0;
  sim::Time now = 0;
  for (int i = 0; i < 50; ++i) {
    if (meter.color(now) == MeterColor::kYellow) ++yellow;
    now += sim::microseconds(200);
  }
  EXPECT_GE(yellow, 35);  // ~1 in 5 earns a committed token back
  // And nothing went red: the peak bucket never empties at this rate.
  EXPECT_GT(meter.peak_tokens(), 0.0);
}

TEST(TrTcm, RedDoesNotDebitPeakBucket) {
  // RFC 2698: a red verdict consumes no tokens. After a red cell, the
  // very next peak token earned must go to the next cell, not to debt.
  atm::TrTcm meter(small_contract(1, 1));
  EXPECT_EQ(meter.color(0), MeterColor::kGreen);
  EXPECT_EQ(meter.color(0), MeterColor::kRed);
  // 100 us earns exactly one peak token (PIR 10k) and a tenth of a
  // committed token — so the cell passes as yellow, not red.
  EXPECT_EQ(meter.color(sim::microseconds(100)), MeterColor::kYellow);
}

TEST(SrTcm, ExcessBucketFillsOnlyFromCommittedSpill) {
  atm::SrTcmConfig cfg;
  cfg.cir_cells_per_second = 1'000.0;
  cfg.cbs_cells = 2.0;
  cfg.ebs_cells = 3.0;
  atm::SrTcm meter(cfg);
  // Buckets start full: 2 green, 3 yellow, then red.
  EXPECT_EQ(meter.color(0), MeterColor::kGreen);
  EXPECT_EQ(meter.color(0), MeterColor::kGreen);
  EXPECT_EQ(meter.color(0), MeterColor::kYellow);
  EXPECT_EQ(meter.color(0), MeterColor::kYellow);
  EXPECT_EQ(meter.color(0), MeterColor::kYellow);
  EXPECT_EQ(meter.color(0), MeterColor::kRed);
  // 1 ms earns one token. It lands in the committed bucket (not full),
  // so the excess bucket stays empty: green, then red again.
  EXPECT_EQ(meter.color(sim::milliseconds(1)), MeterColor::kGreen);
  EXPECT_DOUBLE_EQ(meter.excess_tokens(), 0.0);
  EXPECT_EQ(meter.color(sim::milliseconds(1)), MeterColor::kRed);
  // 4 ms earns four tokens: two fill the committed bucket, the spill
  // lands in the excess bucket per RFC 2697.
  EXPECT_EQ(meter.color(sim::milliseconds(5)), MeterColor::kGreen);
  EXPECT_NEAR(meter.excess_tokens(), 2.0, 1e-6);
}

}  // namespace
}  // namespace hni
