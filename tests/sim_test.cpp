// Unit tests for the simulation kernel: time arithmetic, event
// ordering, cancellation, and the statistics primitives.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace hni::sim {
namespace {

TEST(Time, UnitConversions) {
  EXPECT_EQ(nanoseconds(1), 1'000);
  EXPECT_EQ(microseconds(1), 1'000'000);
  EXPECT_EQ(milliseconds(1), 1'000'000'000);
  EXPECT_EQ(seconds(1), 1'000'000'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_microseconds(microseconds(7)), 7.0);
  EXPECT_DOUBLE_EQ(to_nanoseconds(nanoseconds(9)), 9.0);
}

TEST(Time, CycleTime) {
  EXPECT_EQ(cycle_time(25e6), 40'000);   // 25 MHz -> 40 ns
  EXPECT_EQ(cycle_time(100e6), 10'000);  // 100 MHz -> 10 ns
  EXPECT_EQ(cycle_time(1e12), 1);        // 1 THz -> 1 ps
}

TEST(Time, SerializationTime) {
  // One 53-octet cell at exactly 424 Mb/s takes 1 us.
  EXPECT_EQ(serialization_time(424, 424e6), 1'000'000);
  // STS-3c payload rate: 424 bits / 149.76 Mb/s = 2.8312 us.
  const Time slot = serialization_time(424, 149.76e6);
  EXPECT_NEAR(static_cast<double>(slot), 2.8312e6, 100.0);
}

TEST(Time, FormatAdaptiveUnits) {
  EXPECT_EQ(format_time(picoseconds(500)), "500 ps");
  EXPECT_EQ(format_time(nanoseconds(2)), "2 ns");
  EXPECT_EQ(format_time(microseconds(3)), "3 us");
  EXPECT_EQ(format_time(milliseconds(4)), "4 ms");
  EXPECT_EQ(format_time(seconds(5)), "5 s");
  EXPECT_EQ(format_time(-microseconds(1)), "-1 us");
}

TEST(Simulator, FiresInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30, [&] { order.push_back(3); });
  sim.at(10, [&] { order.push_back(1); });
  sim.at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, SimultaneousEventsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.at(100, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, AfterIsRelative) {
  Simulator sim;
  Time seen = -1;
  sim.at(500, [&] {
    sim.after(250, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 750);
}

TEST(Simulator, SchedulingIntoThePastThrows) {
  Simulator sim;
  sim.at(100, [&] {
    EXPECT_THROW(sim.at(50, [] {}), std::logic_error);
  });
  sim.run();
}

TEST(Simulator, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventHandle h = sim.at(10, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, CancelTwiceReportsFalse) {
  Simulator sim;
  EventHandle h = sim.at(10, [] {});
  EXPECT_TRUE(sim.cancel(h));
  EXPECT_FALSE(sim.cancel(h));
  sim.run();
}

TEST(Simulator, CancelInvalidHandleIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.cancel(EventHandle{}));
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.at(10, [&] { ++fired; });
  sim.at(20, [&] { ++fired; });
  sim.at(30, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(20), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.run_until(100), 1u);
  EXPECT_EQ(fired, 3);
  // With the queue drained, now() advances to the deadline.
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, RunUntilInclusiveOfDeadline) {
  Simulator sim;
  bool fired = false;
  sim.at(50, [&] { fired = true; });
  sim.run_until(50);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 100) sim.after(1, chain);
  };
  sim.after(1, chain);
  sim.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.events_fired(), 100u);
}

TEST(Simulator, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] { ++fired; });
  sim.at(2, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
}

TEST(RunningStat, MatchesDirectComputation) {
  const std::vector<double> xs{3.0, 1.5, 4.25, -2.0, 0.0, 9.5};
  RunningStat s;
  for (double x : xs) s.add(x);
  const double mean =
      std::accumulate(xs.begin(), xs.end(), 0.0) / xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_EQ(s.count(), xs.size());
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), -2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.5);
}

TEST(RunningStat, EmptyAndSingle) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, PercentilesAndOverflow) {
  Histogram h(1.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(50), 5.0, 0.51);
  EXPECT_NEAR(h.percentile(100), 10.0, 0.01);
  h.add(1e9);
  EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 0), std::invalid_argument);
}

TEST(TimeWeightedStat, IntegratesPiecewiseConstant) {
  TimeWeightedStat s;
  s.set(0, 2.0);    // 2.0 over [0,10)
  s.set(10, 6.0);   // 6.0 over [10,20)
  EXPECT_DOUBLE_EQ(s.mean(20), (2.0 * 10 + 6.0 * 10) / 20.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.current(), 6.0);
}

TEST(TimeWeightedStat, UnsetReturnsZero) {
  TimeWeightedStat s;
  EXPECT_DOUBLE_EQ(s.mean(100), 0.0);
}

TEST(Rng, Determinism) {
  Rng a(123), b(123);
  for (int i = 0; i < 32; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, ForkIndependence) {
  Rng a(123);
  Rng fork = a.fork();
  // Fork must not replay the parent stream.
  bool differs = false;
  Rng c(123);
  (void)c.fork();
  for (int i = 0; i < 16; ++i) {
    if (fork.uniform() != c.uniform()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(40.0);
  EXPECT_NEAR(sum / n, 40.0, 1.5);
}

TEST(Rng, ChanceFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace hni::sim
