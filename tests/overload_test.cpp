// Overload-control plane tests: color-aware WRED discard (UPC's kTag
// verdict made consequential), EFCI congestion marking observed end to
// end, the closed EFCI -> RM -> throttle -> recover loop, per-VC
// round-robin service, and the queue-stage conservation identity.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/testbed.hpp"
#include "net/traffic.hpp"

namespace hni {
namespace {

const atm::VcId kVcA{0, 10};
const atm::VcId kVcB{0, 20};

net::WireCell wire(const atm::Cell& c) {
  net::WireCell w;
  w.bytes = c.serialize(atm::HeaderFormat::kUni);
  w.meta = c.meta;
  return w;
}

atm::Cell raw_cell(atm::VcId vc, bool clp = false) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.clp = clp;
  return c;
}

// Two inputs, one output, forwarded headers captured.
struct SwitchFixture {
  sim::Simulator sim;
  net::Switch sw;
  net::Link out{sim, 0};
  std::vector<atm::CellHeader> forwarded;

  explicit SwitchFixture(net::SwitchConfig cfg) : sw(sim, cfg) {
    sw.add_route(0, kVcA, 2, kVcA);
    sw.add_route(1, kVcB, 2, kVcB);
    sw.attach_output(2, out);
    out.set_sink([this](const net::WireCell& w) {
      forwarded.push_back(atm::decode_header(
          std::span<const std::uint8_t, 4>(w.bytes.data(), 4),
          atm::HeaderFormat::kUni));
    });
  }

  void expect_queue_books_balanced() {
    core::InvariantAuditor auditor;
    auditor.audit_switch(sw, "sw");
    EXPECT_TRUE(auditor.ok()) << auditor.report();
  }
};

net::SwitchConfig wred_config() {
  net::SwitchConfig cfg{.ports = 3, .queue_cells = 64, .clp_threshold = 64};
  cfg.wred.enabled = true;
  cfg.wred.min_cells = 40;     // untagged band: engages only when deep
  cfg.wred.max_cells = 64;
  cfg.wred.max_p = 0.1;
  cfg.wred.clp1_min_cells = 4;  // tagged band: sheds early and hard
  cfg.wred.clp1_max_cells = 10;
  cfg.wred.clp1_max_p = 1.0;
  return cfg;
}

TEST(Wred, TaggedCellsDiscardedBeforeUntagged) {
  SwitchFixture f(wred_config());
  // Hold the pool at ~11 cells: inside the tagged band's certain-drop
  // region, below the untagged band entirely.
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  const std::size_t occupancy = f.sw.queue_occupancy(2);
  ASSERT_GE(occupancy, 10u);

  for (int i = 0; i < 8; ++i) {
    f.sw.receive(1, wire(raw_cell(kVcB, /*clp=*/true)));   // dies
    f.sw.receive(0, wire(raw_cell(kVcA, /*clp=*/false)));  // survives
  }
  EXPECT_EQ(f.sw.cells_wred_dropped(), 8u);
  EXPECT_EQ(f.sw.cells_wred_dropped_clp(), 8u);  // every loss was tagged
  f.expect_queue_books_balanced();  // mid-flight: identity still holds

  f.sim.run_until(sim::milliseconds(1));
  // Everything untagged came through.
  EXPECT_EQ(f.forwarded.size(), 20u);
  f.expect_queue_books_balanced();
}

TEST(Wred, UpcTagVerdictIsConsequential) {
  // A policer tags the violator instead of dropping it; the tagged
  // cells then absorb the early WRED losses downstream. This closes the
  // loop that made kTag a dead end before the per-VC queue stage.
  SwitchFixture f(wred_config());
  f.sw.add_policer(1, kVcB, /*pcr=*/1000.0, /*cdvt=*/0,
                   net::Switch::PoliceAction::kTag);
  // Pool held above the tagged band by conforming traffic.
  for (int i = 0; i < 14; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  ASSERT_GE(f.sw.queue_occupancy(2), 10u);

  // A back-to-back burst on the policed VC: the first cell conforms,
  // the rest are tagged (1000 cells/s allows ~1 per ms).
  for (int i = 0; i < 10; ++i) f.sw.receive(1, wire(raw_cell(kVcB)));
  EXPECT_EQ(f.sw.cells_policed_tagged(), 9u);
  // Tagged discards reconcile with the tag verdicts: every WRED CLP
  // loss is a cell UPC tagged (nothing else sets CLP here).
  EXPECT_EQ(f.sw.cells_wred_dropped_clp(), 9u);
  EXPECT_LE(f.sw.cells_wred_dropped_clp(), f.sw.cells_policed_tagged());

  f.sim.run_until(sim::milliseconds(1));
  // The conforming cell (and all of VC A) still got through.
  EXPECT_EQ(f.forwarded.size(), 15u);
  f.expect_queue_books_balanced();
}

TEST(Efci, MarksSurvivorsPastThresholdAndTraces) {
  net::SwitchConfig cfg{.ports = 3, .queue_cells = 64, .clp_threshold = 64};
  cfg.efci_threshold = 4;
  SwitchFixture f(cfg);
  sim::Tracer tracer;
  std::vector<sim::TraceEvent> events;
  tracer.collect_into(events);
  f.sw.set_tracer(&tracer, "sw");

  for (int i = 0; i < 10; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  f.sim.run_until(sim::milliseconds(1));

  // The first burst cell is served instantly, so occupancies seen at
  // the EFCI check are 0,0,1,2,3,4,... -> cells 6..10 are marked.
  ASSERT_EQ(f.forwarded.size(), 10u);
  EXPECT_EQ(f.sw.cells_efci_marked(), 5u);
  std::size_t marked = 0;
  for (const auto& h : f.forwarded) {
    if (atm::pti_efci(h.pti)) ++marked;
  }
  EXPECT_EQ(marked, 5u);
  // The typed trace event fired once per mark, naming the output port.
  std::size_t traced = 0;
  for (const auto& ev : events) {
    if (ev.id == sim::TraceEventId::kSwitchEfciMark) {
      EXPECT_EQ(ev.a, 2u);
      ++traced;
    }
  }
  EXPECT_EQ(traced, 5u);
  f.expect_queue_books_balanced();
}

TEST(Scheduler, RoundRobinPreventsHeadOfLineCapture) {
  auto run = [](net::SwitchScheduler sched) {
    net::SwitchConfig cfg{.ports = 3, .queue_cells = 64,
                          .clp_threshold = 64};
    cfg.scheduler = sched;
    SwitchFixture f(cfg);
    for (int i = 0; i < 20; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
    for (int i = 0; i < 20; ++i) f.sw.receive(1, wire(raw_cell(kVcB)));
    f.sim.run_until(sim::milliseconds(1));
    EXPECT_EQ(f.forwarded.size(), 40u);
    // Count VC B cells among the first 11 served (the burst head).
    std::size_t b_early = 0;
    for (std::size_t i = 0; i < 11 && i < f.forwarded.size(); ++i) {
      if (f.forwarded[i].vc == kVcB) ++b_early;
    }
    f.expect_queue_books_balanced();
    return b_early;
  };
  // FIFO: VC A's 20-cell burst monopolizes the head of the line.
  EXPECT_EQ(run(net::SwitchScheduler::kFifo), 0u);
  // Round-robin: B gets every other slot despite arriving second.
  EXPECT_GE(run(net::SwitchScheduler::kRoundRobin), 4u);
}

TEST(Congestion, ClosedLoopThrottlesThenRecovers) {
  core::Testbed bed;
  // The bottleneck: the switch serves at ~40% of the endpoints' line
  // rate, so a greedy source must overrun it without feedback.
  auto& sw = bed.add_switch({.ports = 2,
                             .queue_cells = 256,
                             .clp_threshold = 256,
                             .port_rate = atm::raw_rate(62e6, "slow"),
                             .efci_threshold = 16});
  core::StationConfig cfg;
  cfg.nic.congestion.enabled = true;
  cfg.name = "src";
  auto& a = bed.add_station(cfg);
  cfg.name = "sink";
  auto& b = bed.add_station(cfg);
  // Full duplex both ways: the forward path carries data, the reverse
  // path carries the sink's backward RM cells.
  bed.connect_to_switch(a, sw, 0);
  bed.connect_from_switch(sw, 1, b);
  bed.connect_to_switch(b, sw, 1);
  bed.connect_from_switch(sw, 0, a);
  sw.add_route(0, kVcA, 1, kVcA);
  sw.add_route(1, kVcA, 0, kVcA);
  a.nic().open_vc(kVcA, aal::AalType::kAal5);
  b.nic().open_vc(kVcA, aal::AalType::kAal5);
  std::size_t delivered = 0;
  b.host().set_rx_handler(
      [&](aal::Bytes, const host::RxInfo&) { ++delivered; });

  auto src = std::make_shared<net::SduSource>(
      bed.sim(),
      net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                             .sdu_bytes = 9180,
                             .count = 0,
                             .interval = sim::microseconds(400),
                             .seed = 7},
      [&a](aal::Bytes sdu) {
        return a.host().send(kVcA, aal::AalType::kAal5, std::move(sdu));
      });
  src->start();
  bed.run_for(sim::milliseconds(30));

  // The loop closed: marks observed at the sink, RM cells sent back,
  // and the source throttled.
  EXPECT_GT(sw.cells_efci_marked(), 0u);
  EXPECT_GT(b.nic().rx().cells_efci_marked(), 0u);
  EXPECT_GT(b.nic().rm_cells_sent(), 0u);
  EXPECT_GT(a.nic().rm_cells_received(), 0u);
  EXPECT_GT(a.nic().congestion_throttle_events(), 0u);
  EXPECT_GT(a.host().congestion_events(), 0u);
  EXPECT_LT(a.nic().vc_rate_factor(kVcA), 1.0);
  EXPECT_GT(delivered, 0u);

  // Quiet period: the source stops, the queued backlog (up to 32
  // inflight PDUs) drains at the throttled rate, and the
  // multiplicative-increase recovery walks the rate back to full.
  src->stop();
  bed.run_for(sim::milliseconds(120));
  EXPECT_GT(a.nic().congestion_recoveries(), 0u);
  EXPECT_DOUBLE_EQ(a.nic().vc_rate_factor(kVcA), 1.0);
  EXPECT_DOUBLE_EQ(a.host().tx_rate_factor(kVcA), 1.0);

  auto auditor = bed.audit(/*include_hops=*/true);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(Congestion, ContractedVcIsNeverThrottled) {
  // CBR with a contract is CAC's business, not the feedback loop's: RM
  // cells must leave a shaped VC's rate alone.
  core::Testbed bed;
  auto& sw = bed.add_switch({.ports = 2,
                             .queue_cells = 64,
                             .clp_threshold = 64,
                             .port_rate = atm::raw_rate(62e6, "slow"),
                             .efci_threshold = 4});
  core::StationConfig cfg;
  cfg.nic.congestion.enabled = true;
  auto& a = bed.add_station(cfg);
  auto& b = bed.add_station(cfg);
  bed.connect_to_switch(a, sw, 0);
  bed.connect_from_switch(sw, 1, b);
  bed.connect_to_switch(b, sw, 1);
  bed.connect_from_switch(sw, 0, a);
  sw.add_route(0, kVcA, 1, kVcA);
  sw.add_route(1, kVcA, 0, kVcA);
  a.nic().open_vc(kVcA, aal::AalType::kAal5);
  b.nic().open_vc(kVcA, aal::AalType::kAal5);
  // Contracted at 100k cells/s: shaped at the source.
  a.nic().tx().set_shaper(kVcA, 100000.0, sim::microseconds(3));

  auto src = std::make_shared<net::SduSource>(
      bed.sim(),
      net::SduSource::Config{.mode = net::SduSource::Mode::kCbr,
                             .sdu_bytes = 9180,
                             .count = 0,
                             .interval = sim::microseconds(500),
                             .seed = 3},
      [&a](aal::Bytes sdu) {
        return a.host().send(kVcA, aal::AalType::kAal5, std::move(sdu));
      });
  src->start();
  bed.run_for(sim::milliseconds(20));
  src->stop();

  // Even if RM cells arrived (the shared pool can still mark), the
  // contracted VC's rate factor never moved.
  EXPECT_EQ(a.nic().congestion_throttle_events(), 0u);
  EXPECT_DOUBLE_EQ(a.nic().vc_rate_factor(kVcA), 1.0);
}

}  // namespace
}  // namespace hni
