// Core API tests: testbed wiring, the report formatter, and the
// canonical point-to-point scenario runner.

#include <gtest/gtest.h>

#include "core/report.hpp"
#include "core/scenario.hpp"

namespace hni::core {
namespace {

TEST(Table, FormatsAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_string("demo");
  EXPECT_NE(s.find("== demo =="), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumberHelpers) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::percent(0.123, 1), "12.3%");
}

TEST(Testbed, StationsAreIndependent) {
  Testbed bed;
  auto& a = bed.add_station({.name = "a"});
  auto& b = bed.add_station({.name = "b"});
  EXPECT_EQ(a.name(), "a");
  EXPECT_EQ(b.name(), "b");
  EXPECT_NE(&a.bus(), &b.bus());
  EXPECT_NE(&a.memory(), &b.memory());
}

TEST(Testbed, RunForAdvancesClock) {
  Testbed bed;
  bed.run_for(sim::milliseconds(3));
  EXPECT_EQ(bed.now(), sim::milliseconds(3));
  bed.run_for(sim::milliseconds(2));
  EXPECT_EQ(bed.now(), sim::milliseconds(5));
}

TEST(RunP2p, GreedyAal5ReachesLineRate) {
  P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.warmup = sim::milliseconds(2);
  cfg.measure = sim::milliseconds(20);
  const P2pResult r = run_p2p(cfg);

  EXPECT_TRUE(r.data_ok());
  EXPECT_GT(r.sdus_received, 0u);
  EXPECT_EQ(r.sdus_errored, 0u);
  EXPECT_EQ(r.cells_fifo_dropped, 0u);
  // AAL5 goodput ceiling at STS-3c: payload_rate * 48/53 * (9180/9216).
  const double ceiling = 149.76e6 * (9180.0 * 8) / (192.0 * 424.0);
  EXPECT_GT(r.goodput_bps, 0.9 * ceiling);
  EXPECT_LT(r.goodput_bps, 1.02 * ceiling);
  EXPECT_GT(r.tx_line_util, 0.95);
  EXPECT_GT(r.latency_mean_us, 0.0);
}

TEST(RunP2p, Aal34CarriesLessGoodput) {
  P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.measure = sim::milliseconds(10);
  P2pConfig cfg34 = cfg;
  cfg34.aal = aal::AalType::kAal34;
  const P2pResult r5 = run_p2p(cfg);
  const P2pResult r34 = run_p2p(cfg34);
  EXPECT_TRUE(r34.data_ok());
  // 44/48 payload ratio shows up directly.
  EXPECT_LT(r34.goodput_bps, 0.95 * r5.goodput_bps);
  EXPECT_GT(r34.goodput_bps, 0.85 * r5.goodput_bps);
}

TEST(RunP2p, LossyLinkProducesErroredPdus) {
  P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.loss.cell_loss_rate = 0.001;
  cfg.measure = sim::milliseconds(20);
  const P2pResult r = run_p2p(cfg);
  EXPECT_GT(r.sdus_errored, 0u);
  EXPECT_TRUE(r.data_ok());  // delivered PDUs are still byte-perfect
  EXPECT_LT(r.goodput_bps, r.offered_bps);
}

TEST(RunP2p, OpenLoopPoissonUnderload) {
  P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kPoisson;
  cfg.traffic.sdu_bytes = 1000;
  cfg.traffic.interval = sim::microseconds(500);  // ~16 Mb/s offered
  cfg.measure = sim::milliseconds(20);
  const P2pResult r = run_p2p(cfg);
  // Underload: everything offered is delivered.
  EXPECT_NEAR(r.goodput_bps, r.offered_bps, 0.1 * r.offered_bps);
  EXPECT_EQ(r.cells_fifo_dropped, 0u);
  EXPECT_LT(r.rx_engine_util, 0.5);
}

}  // namespace
}  // namespace hni::core
