// TX path tests: descriptor ring, DMA staging, cell production, framer
// pacing, FIFO backpressure, and the per-cell DMA ablation mode.

#include <gtest/gtest.h>

#include <vector>

#include "aal/sar.hpp"
#include "nic/tx_path.hpp"

namespace hni::nic {
namespace {

struct Fixture {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};

  std::unique_ptr<TxPath> make(TxPathConfig cfg = {},
                               atm::LineRate line = atm::sts3c()) {
    return std::make_unique<TxPath>(sim, bus, mem, fw, cfg, line);
  }
};

TxDescriptor descriptor_for(bus::HostMemory& mem, const aal::Bytes& sdu,
                            atm::VcId vc,
                            aal::AalType aal = aal::AalType::kAal5) {
  TxDescriptor d;
  d.sg = mem.stage(sdu);
  d.len = sdu.size();
  d.vc = vc;
  d.aal = aal;
  return d;
}

TEST(TxPath, ProducesExactSegmentationOnTheWire) {
  Fixture f;
  auto tx = f.make();
  const aal::Bytes sdu = aal::make_pattern(1000, 3);
  const atm::VcId vc{0, 7};

  std::vector<atm::Cell> wire;
  tx->framer().set_sink([&](const atm::Cell& c) { wire.push_back(c); });
  tx->start();
  ASSERT_TRUE(tx->post(descriptor_for(f.mem, sdu, vc)));
  f.sim.run_until(sim::milliseconds(2));

  // The wire must carry exactly what a reference segmenter produces.
  aal::FrameSegmenter ref(aal::AalType::kAal5, vc);
  const auto expect = ref.segment(sdu);
  ASSERT_EQ(wire.size(), expect.size());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    EXPECT_EQ(wire[i].payload, expect[i].payload) << i;
    EXPECT_EQ(wire[i].header.vc, vc) << i;
    EXPECT_EQ(wire[i].header.pti, expect[i].header.pti) << i;
  }
  EXPECT_EQ(tx->pdus_sent(), 1u);
  EXPECT_EQ(tx->cells_built(), expect.size());
}

TEST(TxPath, CompletionFiresAndRingDrains) {
  Fixture f;
  auto tx = f.make();
  tx->framer().set_sink([](const atm::Cell&) {});
  tx->start();
  int completions = 0;
  tx->set_completion([&](const TxDescriptor&) { ++completions; });
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        tx->post(descriptor_for(f.mem, aal::make_pattern(500, i), {0, 1})));
  }
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(tx->ring_occupancy(), 0u);
}

TEST(TxPath, RingFullRefusesPost) {
  Fixture f;
  TxPathConfig cfg;
  cfg.ring_entries = 2;
  auto tx = f.make(cfg);
  tx->framer().set_sink([](const atm::Cell&) {});
  // Do not run the sim: the ring cannot drain.
  const aal::Bytes sdu = aal::make_pattern(100, 1);
  EXPECT_TRUE(tx->post(descriptor_for(f.mem, sdu, {0, 1})));
  EXPECT_TRUE(tx->post(descriptor_for(f.mem, sdu, {0, 1})));
  // One descriptor may already have left the ring for the engine, so
  // allow one more, then expect refusal.
  bool refused = false;
  for (int i = 0; i < 3; ++i) {
    if (!tx->post(descriptor_for(f.mem, sdu, {0, 1}))) {
      refused = true;
      break;
    }
  }
  EXPECT_TRUE(refused);
}

TEST(TxPath, FramerPacesAtLineRate) {
  Fixture f;
  auto tx = f.make({}, atm::raw_rate(424e6));  // 1 us slots
  std::vector<sim::Time> times;
  tx->framer().set_sink([&](const atm::Cell&) { times.push_back(f.sim.now()); });
  tx->start();
  ASSERT_TRUE(
      tx->post(descriptor_for(f.mem, aal::make_pattern(480, 2), {0, 1})));
  f.sim.run_until(sim::milliseconds(1));
  ASSERT_GE(times.size(), 2u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GE(times[i] - times[i - 1], sim::microseconds(1)) << i;
  }
}

TEST(TxPath, BackpressureNeverDropsCells) {
  Fixture f;
  TxPathConfig cfg;
  cfg.fifo_cells = 2;  // tiny FIFO: engine must stall, not drop
  auto tx = f.make(cfg, atm::sts3c());
  std::size_t on_wire = 0;
  tx->framer().set_sink([&](const atm::Cell&) { ++on_wire; });
  tx->start();
  const aal::Bytes sdu = aal::make_pattern(9180, 5);  // 192 cells
  ASSERT_TRUE(tx->post(descriptor_for(f.mem, sdu, {0, 1})));
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(on_wire, aal::aal5_cell_count(9180));
  EXPECT_EQ(tx->fifo().drops(), 0u);
}

TEST(TxPath, WholePduModeUsesOneDmaTransfer) {
  Fixture f;
  TxPathConfig cfg;
  cfg.dma_mode = TxDmaMode::kWholePdu;
  auto tx = f.make(cfg);
  tx->framer().set_sink([](const atm::Cell&) {});
  tx->start();
  ASSERT_TRUE(
      tx->post(descriptor_for(f.mem, aal::make_pattern(4800, 7), {0, 1})));
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(f.bus.transfers(), 1u);
  EXPECT_EQ(f.bus.bytes_moved(), 4800u);
}

TEST(TxPath, PerCellModeUsesOneDmaPerPayloadCell) {
  Fixture f;
  TxPathConfig cfg;
  cfg.dma_mode = TxDmaMode::kPerCell;
  auto tx = f.make(cfg);
  std::size_t on_wire = 0;
  tx->framer().set_sink([&](const atm::Cell&) { ++on_wire; });
  tx->start();
  const std::size_t n = 4800;  // 101 cells under AAL5 (4808/48 -> 101)
  ASSERT_TRUE(
      tx->post(descriptor_for(f.mem, aal::make_pattern(n, 8), {0, 1})));
  f.sim.run_until(sim::milliseconds(5));
  EXPECT_EQ(on_wire, aal::aal5_cell_count(n));
  // 100 cells carry payload windows of 48B; the 101st covers the tail
  // of the SDU (4800 = 100*48 exactly, so the last cell is pad+trailer
  // only and needs no DMA).
  EXPECT_EQ(f.bus.transfers(), 100u);
  EXPECT_EQ(f.bus.bytes_moved(), 4800u);
}

TEST(TxPath, Aal34DescriptorsProduceAal34Cells) {
  Fixture f;
  auto tx = f.make();
  std::vector<atm::Cell> wire;
  tx->framer().set_sink([&](const atm::Cell& c) { wire.push_back(c); });
  tx->start();
  const aal::Bytes sdu = aal::make_pattern(300, 9);
  ASSERT_TRUE(tx->post(
      descriptor_for(f.mem, sdu, {0, 2}, aal::AalType::kAal34)));
  f.sim.run_until(sim::milliseconds(2));
  ASSERT_EQ(wire.size(), aal::aal34_cell_count(300));
  aal::Aal34Reassembler rx;
  std::optional<aal::Aal34Reassembler::Delivery> d;
  for (const auto& c : wire) {
    auto r = rx.push(c);
    if (r) d = std::move(r);
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, aal::ReassemblyError::kNone);
  EXPECT_EQ(d->sdu, sdu);
}

TEST(TxPath, EngineChargedPerCellAndPerPdu) {
  Fixture f;
  auto tx = f.make();
  tx->framer().set_sink([](const atm::Cell&) {});
  tx->start();
  const std::size_t n = 1000;
  ASSERT_TRUE(
      tx->post(descriptor_for(f.mem, aal::make_pattern(n, 4), {0, 1})));
  f.sim.run_until(sim::milliseconds(2));
  const std::size_t cells = aal::aal5_cell_count(n);
  const std::uint64_t expect =
      proc::tx_pdu_instructions(f.fw) +
      static_cast<std::uint64_t>(cells) *
          proc::tx_cell_instructions(f.fw, aal::AalType::kAal5,
                                      {false, false});
  EXPECT_EQ(tx->engine().instructions_retired(), expect);
}

}  // namespace
}  // namespace hni::nic
