// RX path tests: delivery correctness, HEC handling, unknown VCs, FIFO
// overflow under overload, board-memory exhaustion, host-buffer
// exhaustion, interrupt coalescing, latency accounting.

#include <gtest/gtest.h>

#include <vector>

#include "aal/sar.hpp"
#include "nic/rx_path.hpp"

namespace hni::nic {
namespace {

net::WireCell wire_of(const atm::Cell& cell) {
  net::WireCell w;
  w.bytes = cell.serialize(atm::HeaderFormat::kUni);
  w.meta = cell.meta;
  return w;
}

struct Fixture {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  RxPathConfig cfg{};
  std::unique_ptr<RxPath> rx;

  explicit Fixture(RxPathConfig c = {}) : cfg(c) {
    rx = std::make_unique<RxPath>(sim, bus, mem, fw, cfg);
  }

  /// Injects the cells of one AAL5 PDU, spaced `gap` apart.
  void inject(const std::vector<atm::Cell>& cells,
              sim::Time gap = sim::microseconds(3)) {
    sim::Time t = sim.now();
    for (auto cell : cells) {
      cell.meta.created = t;
      sim.at(t, [this, cell] { rx->receive_wire(wire_of(cell)); });
      t += gap;
    }
  }
};

TEST(RxPath, DeliversSduToHostMemory) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  const aal::Bytes sdu = aal::make_pattern(2000, 1);
  f.inject(aal::aal5_segment(sdu, {0, 9}));

  std::vector<RxDelivery> got;
  f.rx->set_deliver([&](RxDelivery d) { got.push_back(std::move(d)); });
  f.sim.run_until(sim::milliseconds(2));

  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].len, sdu.size());
  EXPECT_EQ(f.mem.gather(got[0].sg, got[0].len), sdu);
  EXPECT_EQ(f.rx->pdus_delivered(), 1u);
  EXPECT_EQ(f.rx->pdus_errored(), 0u);
  EXPECT_TRUE(got[0].first_of_batch);
  EXPECT_EQ(got[0].interrupt_batch, 1u);
}

TEST(RxPath, MultiplePdusMultipleVcs) {
  Fixture f;
  f.rx->open_vc({0, 1}, aal::AalType::kAal5);
  f.rx->open_vc({0, 2}, aal::AalType::kAal34);
  const aal::Bytes sdu1 = aal::make_pattern(700, 1);
  const aal::Bytes sdu2 = aal::make_pattern(900, 2);
  f.inject(aal::aal5_segment(sdu1, {0, 1}));
  aal::Aal34Segmenter seg34({0, 2});
  f.inject(seg34.segment(sdu2), sim::microseconds(4));

  std::vector<std::pair<atm::VcId, aal::Bytes>> got;
  f.rx->set_deliver([&](RxDelivery d) {
    got.emplace_back(d.vc, f.mem.gather(d.sg, d.len));
  });
  f.sim.run_until(sim::milliseconds(3));

  ASSERT_EQ(got.size(), 2u);
  // Order can vary with interleaving; find by VC.
  for (const auto& [vc, bytes] : got) {
    if (vc == atm::VcId{0, 1}) {
      EXPECT_EQ(bytes, sdu1);
    } else {
      EXPECT_EQ(vc, (atm::VcId{0, 2}));
      EXPECT_EQ(bytes, sdu2);
    }
  }
}

TEST(RxPath, HecCorrectedHeaderStillDelivers) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  const aal::Bytes sdu = aal::make_pattern(100, 5);
  auto cells = aal::aal5_segment(sdu, {0, 9});

  std::size_t delivered = 0;
  f.rx->set_deliver([&](RxDelivery) { ++delivered; });

  sim::Time t = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    net::WireCell w = wire_of(cells[i]);
    if (i == 0) w.bytes[1] ^= 0x04;  // single header bit error
    f.sim.at(t, [&f, w] { f.rx->receive_wire(w); });
    t += sim::microseconds(3);
  }
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.rx->cells_hec_corrected(), 1u);
  EXPECT_EQ(delivered, 1u);
}

TEST(RxPath, ConsecutiveHeaderErrorsDiscardSecond) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  auto cells = aal::aal5_segment(aal::make_pattern(300, 5), {0, 9});
  ASSERT_GE(cells.size(), 3u);

  sim::Time t = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    net::WireCell w = wire_of(cells[i]);
    if (i == 0 || i == 1) w.bytes[0] ^= 0x02;  // two errored headers
    f.sim.at(t, [&f, w] { f.rx->receive_wire(w); });
    t += sim::microseconds(3);
  }
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.rx->cells_hec_corrected(), 1u);
  EXPECT_EQ(f.rx->cells_hec_discarded(), 1u);
}

TEST(RxPath, UnknownVcCounted) {
  Fixture f;  // no VC opened
  f.inject(aal::aal5_segment(aal::make_pattern(100, 1), {3, 3}));
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.rx->cells_no_vc(), 3u);
  EXPECT_EQ(f.rx->pdus_delivered(), 0u);
}

TEST(RxPath, FifoOverflowsWhenEngineTooSlow) {
  RxPathConfig cfg;
  cfg.fifo_cells = 4;
  cfg.engine.clock_hz = 1e6;  // absurdly slow engine: 22 us per cell
  Fixture f(cfg);
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  // Back-to-back cells at 1 us spacing overwhelm it.
  f.inject(aal::aal5_segment(aal::make_pattern(9180, 1), {0, 9}),
           sim::microseconds(1));
  f.sim.run_until(sim::milliseconds(10));
  EXPECT_GT(f.rx->cells_fifo_dropped(), 0u);
  EXPECT_EQ(f.rx->pdus_delivered(), 0u);  // PDU cannot survive the losses
  EXPECT_GE(f.rx->fifo().max_depth(), 4.0);
}

TEST(RxPath, BoardExhaustionDropsPdu) {
  RxPathConfig cfg;
  cfg.board.containers = 2;
  cfg.board.cells_per_container = 4;  // 8 cells of board memory
  Fixture f(cfg);
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  f.inject(aal::aal5_segment(aal::make_pattern(2000, 1), {0, 9}));  // 42 cells
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_GT(f.rx->pdus_dropped_board(), 0u);
  EXPECT_EQ(f.rx->pdus_delivered(), 0u);
}

TEST(RxPath, HostBufferExhaustionCounted) {
  Fixture f;
  f.rx->set_buffer_allocator(
      [](std::size_t) -> std::optional<bus::SgList> {
        return std::nullopt;  // host never provides buffers
      });
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  f.inject(aal::aal5_segment(aal::make_pattern(500, 1), {0, 9}));
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(f.rx->pdus_dropped_host_buffers(), 1u);
  EXPECT_EQ(f.rx->pdus_delivered(), 0u);
}

TEST(RxPath, ReassemblyErrorsCountedByKind) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  auto cells = aal::aal5_segment(aal::make_pattern(500, 1), {0, 9});
  cells.erase(cells.begin() + 1);  // lost cell -> CRC failure at EOM
  f.inject(cells);
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(f.rx->pdus_errored(), 1u);
  EXPECT_EQ(f.rx->error_count(aal::ReassemblyError::kCrc) +
                f.rx->error_count(aal::ReassemblyError::kLength),
            1u);
}

TEST(RxPath, InterruptCoalescingBatchesPdus) {
  RxPathConfig cfg;
  cfg.interrupt_coalesce = sim::milliseconds(1);
  Fixture f(cfg);
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  // Three small PDUs arriving close together.
  sim::Time t = 0;
  for (int k = 0; k < 3; ++k) {
    auto cells = aal::aal5_segment(aal::make_pattern(100, k), {0, 9});
    for (const auto& cell : cells) {
      f.sim.at(t, [&f, cell] { f.rx->receive_wire(wire_of(cell)); });
      t += sim::microseconds(3);
    }
  }
  std::size_t deliveries = 0;
  f.rx->set_deliver([&](RxDelivery) { ++deliveries; });
  f.sim.run_until(sim::milliseconds(5));
  EXPECT_EQ(deliveries, 3u);
  EXPECT_EQ(f.rx->interrupts().interrupts(), 1u);
  EXPECT_DOUBLE_EQ(f.rx->interrupts().batching(), 3.0);
}

TEST(RxPath, LatencyMeasuredFromFirstCell) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  f.inject(aal::aal5_segment(aal::make_pattern(1000, 1), {0, 9}));
  f.sim.run_until(sim::milliseconds(2));
  ASSERT_EQ(f.rx->pdu_latency_us().count(), 1u);
  // 21 cells spaced 3 us: at least 60 us of arrival spread.
  EXPECT_GT(f.rx->pdu_latency_us().mean(), 60.0);
}

TEST(RxPath, CloseVcStopsDelivery) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  f.rx->close_vc({0, 9});
  f.inject(aal::aal5_segment(aal::make_pattern(100, 1), {0, 9}));
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.rx->pdus_delivered(), 0u);
  EXPECT_GT(f.rx->cells_no_vc(), 0u);
}

TEST(RxPath, EngineInstructionAccounting) {
  Fixture f;
  f.rx->open_vc({0, 9}, aal::AalType::kAal5);
  const std::size_t n = 1000;  // 21 cells
  f.inject(aal::aal5_segment(aal::make_pattern(n, 1), {0, 9}));
  f.sim.run_until(sim::milliseconds(2));
  const std::size_t cells = aal::aal5_cell_count(n);
  const std::uint64_t expect =
      static_cast<std::uint64_t>(cells - 2) *
          proc::rx_cell_instructions(f.fw, aal::AalType::kAal5,
                                     {false, false}) +
      proc::rx_cell_instructions(f.fw, aal::AalType::kAal5, {true, false}) +
      proc::rx_cell_instructions(f.fw, aal::AalType::kAal5, {false, true}) +
      proc::rx_pdu_instructions(f.fw);
  EXPECT_EQ(f.rx->engine().instructions_retired(), expect);
}

}  // namespace
}  // namespace hni::nic
