// Cross-module integration tests: full topologies exercising every
// subsystem together — multi-VC hosts, a switch in the middle,
// congestion, lossy WAN paths, and the architecture-vs-baseline
// comparison the paper builds toward.

#include <gtest/gtest.h>

#include <map>

#include "core/scenario.hpp"
#include "core/testbed.hpp"

namespace hni {
namespace {

using aal::AalType;
using atm::VcId;

TEST(Integration, ManySizesManyPdusAllVerify) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  const VcId vc{0, 5};
  a.nic().open_vc(vc, AalType::kAal5);
  b.nic().open_vc(vc, AalType::kAal5);

  std::size_t received = 0;
  std::size_t bad = 0;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    ++received;
    if (!aal::verify_pattern(sdu)) ++bad;
  });

  const std::vector<std::size_t> sizes{1,    4,   40,  41,   48,  100,
                                       512,  1500, 4352, 9180, 16000,
                                       65535};
  std::size_t next = 0;
  std::function<void()> feed = [&] {
    while (next < sizes.size() &&
           a.host().send(vc, AalType::kAal5,
                         aal::make_pattern(sizes[next], next + 1))) {
      ++next;
    }
  };
  a.host().set_tx_ready(feed);
  feed();
  bed.run_for(sim::milliseconds(100));

  EXPECT_EQ(received, sizes.size());
  EXPECT_EQ(bad, 0u);
}

TEST(Integration, BidirectionalTrafficSimultaneously) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  const VcId vc{0, 5};
  a.nic().open_vc(vc, AalType::kAal5);
  b.nic().open_vc(vc, AalType::kAal5);

  std::size_t at_a = 0, at_b = 0;
  a.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
    EXPECT_TRUE(aal::verify_pattern(s));
    ++at_a;
  });
  b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
    EXPECT_TRUE(aal::verify_pattern(s));
    ++at_b;
  });
  for (int i = 0; i < 5; ++i) {
    a.host().send(vc, AalType::kAal5, aal::make_pattern(4000, 10 + i));
    b.host().send(vc, AalType::kAal5, aal::make_pattern(3000, 20 + i));
  }
  bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(at_a, 5u);
  EXPECT_EQ(at_b, 5u);
}

TEST(Integration, MixedAalsOnSeparateVcs) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  const VcId v5{0, 5};
  const VcId v34{0, 6};
  a.nic().open_vc(v5, AalType::kAal5);
  b.nic().open_vc(v5, AalType::kAal5);
  a.nic().open_vc(v34, AalType::kAal34);
  b.nic().open_vc(v34, AalType::kAal34);

  std::map<std::uint16_t, std::size_t> got;
  b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo& info) {
    EXPECT_TRUE(aal::verify_pattern(s));
    ++got[info.vc.vci];
  });
  for (int i = 0; i < 3; ++i) {
    a.host().send(v5, AalType::kAal5, aal::make_pattern(2000, 100 + i));
    a.host().send(v34, AalType::kAal34, aal::make_pattern(2000, 200 + i));
  }
  bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(got[5], 3u);
  EXPECT_EQ(got[6], 3u);
}

TEST(Integration, ThroughSwitchWithVciTranslation) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  auto& sw = bed.add_switch(
      {.ports = 2, .queue_cells = 256, .clp_threshold = 256});
  bed.connect_to_switch(a, sw, 0);
  bed.connect_from_switch(sw, 1, b);
  sw.add_route(0, {0, 10}, 1, {0, 99});

  a.nic().open_vc({0, 10}, AalType::kAal5);
  b.nic().open_vc({0, 99}, AalType::kAal5);

  aal::Bytes got;
  VcId got_vc{};
  b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo& i) {
    got = std::move(s);
    got_vc = i.vc;
  });
  const aal::Bytes sdu = aal::make_pattern(5000, 3);
  a.host().send({0, 10}, AalType::kAal5, sdu);
  bed.run_for(sim::milliseconds(20));

  EXPECT_EQ(got, sdu);
  EXPECT_EQ(got_vc, (VcId{0, 99}));
  EXPECT_GT(sw.cells_forwarded(), 0u);
}

TEST(Integration, TwoSendersCongestOneSwitchPort) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  auto& c = bed.add_station({});
  auto& sw = bed.add_switch(
      {.ports = 3, .queue_cells = 64, .clp_threshold = 64});
  bed.connect_to_switch(a, sw, 0);
  bed.connect_to_switch(b, sw, 1);
  bed.connect_from_switch(sw, 2, c);
  sw.add_route(0, {0, 1}, 2, {0, 1});
  sw.add_route(1, {0, 2}, 2, {0, 2});

  a.nic().open_vc({0, 1}, AalType::kAal5);
  b.nic().open_vc({0, 2}, AalType::kAal5);
  c.nic().open_vc({0, 1}, AalType::kAal5);
  c.nic().open_vc({0, 2}, AalType::kAal5);

  std::size_t delivered = 0;
  c.host().set_rx_handler(
      [&](aal::Bytes s, const host::RxInfo&) {
        EXPECT_TRUE(aal::verify_pattern(s));
        ++delivered;
      });

  // Two Poisson sources totalling ~1.4x the output port capacity: the
  // contended queue overflows intermittently, so some PDUs die while
  // others get through whole.
  auto drive = [&](core::Station& s, VcId vc, std::uint64_t seed_base) {
    auto src = std::make_shared<net::SduSource>(
        bed.sim(),
        net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                               .sdu_bytes = 9180,
                               .count = 0,
                               .interval = sim::microseconds(780),
                               .seed = seed_base},
        [&s, vc](aal::Bytes sdu) {
          return s.host().send(vc, AalType::kAal5, std::move(sdu));
        });
    src->start();
    return src;
  };
  auto src_a = drive(a, {0, 1}, 1);
  auto src_b = drive(b, {0, 2}, 2);
  bed.run_for(sim::milliseconds(80));

  // The contended port must drop cells...
  EXPECT_GT(sw.cells_dropped_overflow(), 0u);
  // ...which surface as errored PDUs at the receiver NIC...
  EXPECT_GT(c.nic().rx().pdus_errored(), 0u);
  // ...while whole PDUs still get through and verify.
  EXPECT_GT(delivered, 0u);
  (void)src_a;
  (void)src_b;
}

TEST(Integration, WanPathCorrelatedLossStillDeliversVerifiedPdus) {
  core::P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.loss.cell_loss_rate = 0.002;
  cfg.loss.mean_burst_cells = 5.0;
  cfg.propagation = sim::milliseconds(5);  // ~1000 km
  cfg.measure = sim::milliseconds(40);
  const auto r = run_p2p(cfg);
  EXPECT_GT(r.sdus_received, 0u);
  EXPECT_GT(r.sdus_errored, 0u);
  EXPECT_TRUE(r.data_ok());
}

TEST(Integration, HeaderBitErrorsMostlyCorrectedEndToEnd) {
  core::P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.loss.header_bit_error_rate = 1e-3;
  cfg.measure = sim::milliseconds(30);
  const auto r = run_p2p(cfg);
  // Isolated single-bit header errors are corrected by the HEC, so
  // goodput stays near the clean ceiling.
  EXPECT_GT(r.sdus_received, 0u);
  EXPECT_TRUE(r.data_ok());
  EXPECT_GT(r.goodput_bps, 0.9 * r.offered_bps);
}

TEST(Integration, PayloadBitErrorsAreCaughtByCrc) {
  core::P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kGreedy;
  cfg.traffic.sdu_bytes = 9180;
  cfg.loss.payload_bit_error_rate = 5e-3;
  cfg.measure = sim::milliseconds(30);
  const auto r = run_p2p(cfg);
  // Corrupted PDUs must be rejected (CRC-32), never delivered wrong.
  EXPECT_GT(r.sdus_errored, 0u);
  EXPECT_TRUE(r.data_ok());
}

TEST(Integration, FasterEngineClockRaisesSmallPduThroughput) {
  // Single-cell PDUs put per-PDU engine work on every wire slot: a
  // 12.5 MHz engine is compute-bound there, a 50 MHz one is line-bound.
  core::P2pConfig slow;
  slow.traffic.mode = net::SduSource::Mode::kGreedy;
  slow.traffic.sdu_bytes = 40;  // exactly one cell under AAL5
  slow.measure = sim::milliseconds(10);
  // Use a fast host CPU so the interface engine, not the driver
  // syscall path, is the limiting resource.
  slow.station.host.cpu.clock_hz = 400e6;
  slow.station.host.cpu.cpi = 1.0;
  slow.station.nic.with_clock(12.5e6);
  core::P2pConfig fast = slow;
  fast.station.nic.with_clock(50e6);
  const auto r_slow = core::run_p2p(slow);
  const auto r_fast = core::run_p2p(fast);
  EXPECT_GT(r_fast.goodput_bps, 1.5 * r_slow.goodput_bps);
}

}  // namespace
}  // namespace hni
