// AAL3/4 tests: SAR-PDU bit layout, CRC-10 protection, CPCS framing,
// MID multiplexing, and the error machinery (sequence gaps, tag
// mismatches, orphan cells).

#include <gtest/gtest.h>

#include "aal/aal34.hpp"
#include "aal/types.hpp"

namespace hni::aal {
namespace {

atm::VcId kVc{0, 33};

std::optional<Aal34Reassembler::Delivery> feed_all(
    Aal34Reassembler& rx, const std::vector<atm::Cell>& cells) {
  std::optional<Aal34Reassembler::Delivery> out;
  for (const auto& c : cells) {
    auto r = rx.push(c);
    if (r) out = std::move(r);
  }
  return out;
}

TEST(SarPdu, EncodeDecodeRoundtrip) {
  SarPdu pdu;
  pdu.st = SegmentType::kBom;
  pdu.sn = 0xB;
  pdu.mid = 0x2A7;
  pdu.li = 44;
  for (std::size_t i = 0; i < kAal34PayloadPerCell; ++i) {
    pdu.payload[i] = static_cast<std::uint8_t>(i + 3);
  }
  const auto raw = sar_encode(pdu);
  const SarPdu back = sar_decode(raw);
  EXPECT_EQ(back.st, pdu.st);
  EXPECT_EQ(back.sn, pdu.sn);
  EXPECT_EQ(back.mid, pdu.mid);
  EXPECT_EQ(back.li, pdu.li);
  EXPECT_EQ(back.payload, pdu.payload);
  EXPECT_TRUE(back.crc_ok);
}

TEST(SarPdu, Crc10CatchesCorruption) {
  SarPdu pdu;
  pdu.st = SegmentType::kCom;
  pdu.sn = 5;
  pdu.mid = 17;
  pdu.li = 44;
  auto raw = sar_encode(pdu);
  for (std::size_t byte : {0u, 1u, 2u, 25u, 45u, 46u, 47u}) {
    auto damaged = raw;
    damaged[byte] ^= 0x08;
    EXPECT_FALSE(sar_decode(damaged).crc_ok) << "byte " << byte;
  }
}

TEST(SarPdu, SegmentTypeCodepoints) {
  // ST occupies the top two bits of octet 0: BOM=10, COM=00, EOM=01,
  // SSM=11.
  SarPdu pdu;
  pdu.st = SegmentType::kBom;
  EXPECT_EQ(sar_encode(pdu)[0] >> 6, 0b10);
  pdu.st = SegmentType::kEom;
  EXPECT_EQ(sar_encode(pdu)[0] >> 6, 0b01);
  pdu.st = SegmentType::kSsm;
  EXPECT_EQ(sar_encode(pdu)[0] >> 6, 0b11);
  pdu.st = SegmentType::kCom;
  EXPECT_EQ(sar_encode(pdu)[0] >> 6, 0b00);
}

TEST(Aal34CellCount, IncludesCpcsOverheadAndAlignment) {
  // CPCS adds 8 octets and pads payload to 4; cells carry 44.
  EXPECT_EQ(aal34_cell_count(1), 1u);    // 4+4+4 = 12 -> 1 cell (SSM)
  EXPECT_EQ(aal34_cell_count(36), 1u);   // 4+36+4 = 44
  EXPECT_EQ(aal34_cell_count(37), 2u);   // 4+40+4 = 48 -> 2 cells
  EXPECT_EQ(aal34_cell_count(9180), 209u);
}

TEST(Aal34Segmenter, SingleCellUsesSsm) {
  Aal34Segmenter seg(kVc, 7);
  const auto cells = seg.segment(make_pattern(20, 1));
  ASSERT_EQ(cells.size(), 1u);
  const SarPdu sar = sar_decode(cells[0].payload);
  EXPECT_EQ(sar.st, SegmentType::kSsm);
  EXPECT_EQ(sar.mid, 7u);
  EXPECT_TRUE(sar.crc_ok);
}

TEST(Aal34Segmenter, BomComEomStructure) {
  Aal34Segmenter seg(kVc);
  const auto cells = seg.segment(make_pattern(200, 2));
  ASSERT_GE(cells.size(), 3u);
  EXPECT_EQ(sar_decode(cells.front().payload).st, SegmentType::kBom);
  for (std::size_t i = 1; i + 1 < cells.size(); ++i) {
    EXPECT_EQ(sar_decode(cells[i].payload).st, SegmentType::kCom) << i;
  }
  EXPECT_EQ(sar_decode(cells.back().payload).st, SegmentType::kEom);
}

TEST(Aal34Segmenter, SequenceNumbersIncrementMod16) {
  Aal34Segmenter seg(kVc);
  const auto cells = seg.segment(make_pattern(44 * 20, 3));
  std::uint8_t expect = sar_decode(cells[0].payload).sn;
  for (const auto& c : cells) {
    EXPECT_EQ(sar_decode(c.payload).sn, expect);
    expect = static_cast<std::uint8_t>((expect + 1) & 0x0F);
  }
}

TEST(Aal34Segmenter, RejectsBadInput) {
  Aal34Segmenter seg(kVc);
  EXPECT_THROW(seg.segment({}), std::length_error);
  EXPECT_THROW(seg.segment(Bytes(65536, 0)), std::length_error);
  EXPECT_THROW(Aal34Segmenter(kVc, 0x400), std::out_of_range);
}

class Aal34Roundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Aal34Roundtrip, DeliversExactBytes) {
  const std::size_t n = GetParam();
  const Bytes sdu = make_pattern(n, n);
  Aal34Segmenter seg(kVc, 5);
  const auto cells = seg.segment(sdu);
  EXPECT_EQ(cells.size(), aal34_cell_count(n));

  Aal34Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kNone);
  EXPECT_EQ(d->sdu, sdu);
  EXPECT_EQ(d->mid, 5u);
  EXPECT_EQ(rx.pdus_ok(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, Aal34Roundtrip,
    ::testing::Values(1, 2, 3, 4, 35, 36, 37, 43, 44, 45, 88, 100, 1000,
                      9180, 65535));

TEST(Aal34Reassembler, MidStreamsInterleave) {
  Aal34Segmenter seg_a(kVc, 1);
  Aal34Segmenter seg_b(kVc, 2);
  const Bytes sdu_a = make_pattern(300, 10);
  const Bytes sdu_b = make_pattern(500, 20);
  const auto cells_a = seg_a.segment(sdu_a);
  const auto cells_b = seg_b.segment(sdu_b);

  // Interleave strictly alternating.
  Aal34Reassembler rx;
  std::size_t ia = 0, ib = 0;
  Bytes got_a, got_b;
  while (ia < cells_a.size() || ib < cells_b.size()) {
    if (ia < cells_a.size()) {
      if (auto d = rx.push(cells_a[ia++])) {
        ASSERT_EQ(d->error, ReassemblyError::kNone);
        got_a = d->sdu;
      }
    }
    if (ib < cells_b.size()) {
      if (auto d = rx.push(cells_b[ib++])) {
        ASSERT_EQ(d->error, ReassemblyError::kNone);
        got_b = d->sdu;
      }
    }
  }
  EXPECT_EQ(got_a, sdu_a);
  EXPECT_EQ(got_b, sdu_b);
  EXPECT_EQ(rx.pdus_ok(), 2u);
}

TEST(Aal34Reassembler, LostComYieldsSequenceError) {
  Aal34Segmenter seg(kVc);
  auto cells = seg.segment(make_pattern(400, 4));
  ASSERT_GE(cells.size(), 4u);
  cells.erase(cells.begin() + 1);
  Aal34Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  // Sequence break detected; the later EOM is then an orphan.
  EXPECT_EQ(rx.pdus_ok(), 0u);
  EXPECT_GT(rx.pdus_errored(), 0u);
}

TEST(Aal34Reassembler, LostEomSplicesAndTagCatches) {
  Aal34Segmenter seg(kVc);
  const Bytes sdu1 = make_pattern(200, 7);
  const Bytes sdu2 = make_pattern(200, 8);
  auto c1 = seg.segment(sdu1);
  auto c2 = seg.segment(sdu2);
  c1.pop_back();  // lose the EOM

  Aal34Reassembler rx;
  for (const auto& c : c1) EXPECT_FALSE(rx.push(c).has_value());
  // The BOM of PDU 2 arrives while PDU 1 is open on the same MID ->
  // protocol error for the open PDU; PDU 2 proceeds fresh afterwards.
  bool second_ok = false;
  bool first_failed = false;
  for (const auto& c : c2) {
    if (auto d = rx.push(c)) {
      if (d->error == ReassemblyError::kNone) {
        second_ok = true;
        EXPECT_EQ(d->sdu, sdu2);
      } else {
        first_failed = true;
      }
    }
  }
  // Depending on SN phase the splice is caught at the BOM (protocol) or
  // at the spliced EOM (tag/length/sequence); either way PDU 1 must not
  // be delivered and PDU 2's bytes must survive if delivered.
  EXPECT_TRUE(first_failed);
  (void)second_ok;
  EXPECT_EQ(rx.pdus_ok(), second_ok ? 1u : 0u);
}

TEST(Aal34Reassembler, OrphanComCounted) {
  Aal34Segmenter seg(kVc);
  auto cells = seg.segment(make_pattern(400, 4));
  Aal34Reassembler rx;
  auto d = rx.push(cells[1]);  // a COM with no BOM
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kProtocol);
  EXPECT_EQ(rx.orphan_cells(), 1u);
}

TEST(Aal34Reassembler, CorruptedCellDroppedByCrc) {
  Aal34Segmenter seg(kVc);
  auto cells = seg.segment(make_pattern(400, 4));
  cells[1].payload[20] ^= 0xFF;
  Aal34Reassembler rx;
  auto d = feed_all(rx, cells);
  // The corrupted COM vanishes (CRC) -> later SN gap -> error, no OK PDU.
  EXPECT_EQ(rx.pdus_ok(), 0u);
  EXPECT_EQ(rx.cells_bad_crc(), 1u);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->error, ReassemblyError::kNone);
}

TEST(Aal34Reassembler, ActiveStreamsTracked) {
  Aal34Segmenter seg_a(kVc, 1);
  Aal34Segmenter seg_b(kVc, 2);
  auto a = seg_a.segment(make_pattern(200, 1));
  auto b = seg_b.segment(make_pattern(200, 2));
  Aal34Reassembler rx;
  rx.push(a[0]);
  rx.push(b[0]);
  EXPECT_EQ(rx.active_streams(), 2u);
  rx.reset();
  EXPECT_EQ(rx.active_streams(), 0u);
}

TEST(Aal34Reassembler, SsmWhileOpenAborts) {
  Aal34Segmenter seg(kVc, 3);
  auto big = seg.segment(make_pattern(200, 1));
  auto small = seg.segment(make_pattern(10, 2));
  ASSERT_EQ(small.size(), 1u);
  Aal34Reassembler rx;
  rx.push(big[0]);
  auto d = rx.push(small[0]);  // SSM on the same MID while open
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kProtocol);
}

}  // namespace
}  // namespace hni::aal
