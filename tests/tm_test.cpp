// Traffic-management plane tests: DWRR weighted service, WRED boundary
// semantics, route-close queue purging, control-cell (OAM/RM) discard
// exemption, the ERICA explicit-rate stamp, the TX shaper's
// throttle-then-recovery lifecycle, and the SETUP traffic descriptor
// (SCR / weight / ABR) riding signalling down to the switch.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "atm/meter.hpp"
#include "atm/rm.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "nic/tx_path.hpp"
#include "sig/network.hpp"

namespace hni {
namespace {

const atm::VcId kVcA{0, 10};
const atm::VcId kVcB{0, 20};
const atm::VcId kVcC{0, 30};

net::WireCell wire(const atm::Cell& c) {
  net::WireCell w;
  w.bytes = c.serialize(atm::HeaderFormat::kUni);
  w.meta = c.meta;
  return w;
}

atm::Cell raw_cell(atm::VcId vc, bool clp = false) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.clp = clp;
  return c;
}

atm::Cell rm_cell(atm::VcId vc, std::uint32_t er = atm::kRmErUnlimited,
                  std::uint8_t flags = atm::kRmFlagBackward) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.pti = atm::Pti::kResourceMgmt;
  c.payload[0] = atm::kRmProtocolId;
  atm::rm_set_flags(c.payload.data(), flags);
  atm::rm_set_explicit_rate(c.payload.data(), er);
  return c;
}

// N-port switch, one designated output, forwarded headers captured.
struct SwitchFixture {
  sim::Simulator sim;
  net::Switch sw;
  net::Link out{sim, 0};
  std::vector<atm::CellHeader> forwarded;

  SwitchFixture(net::SwitchConfig cfg, std::size_t out_port)
      : sw(sim, cfg) {
    sw.attach_output(out_port, out);
    out.set_sink([this](const net::WireCell& w) {
      forwarded.push_back(atm::decode_header(
          std::span<const std::uint8_t, 4>(w.bytes.data(), 4),
          atm::HeaderFormat::kUni));
    });
  }

  void expect_queue_books_balanced() {
    core::InvariantAuditor auditor;
    auditor.audit_switch(sw, "sw");
    EXPECT_TRUE(auditor.ok()) << auditor.report();
  }
};

// --- DWRR ---------------------------------------------------------------

TEST(Dwrr, ServiceSharesTrackWeights) {
  net::SwitchConfig cfg{.ports = 4, .queue_cells = 128,
                        .clp_threshold = 128};
  cfg.scheduler = net::SwitchScheduler::kDwrr;
  SwitchFixture f(cfg, 3);
  f.sw.add_route(0, kVcA, 3, kVcA, /*weight=*/1);
  f.sw.add_route(1, kVcB, 3, kVcB, /*weight=*/2);
  f.sw.add_route(2, kVcC, 3, kVcC, /*weight=*/4);
  // Backlog all three so each stays in the ring for the whole window.
  for (int i = 0; i < 40; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  for (int i = 0; i < 40; ++i) f.sw.receive(1, wire(raw_cell(kVcB)));
  for (int i = 0; i < 40; ++i) f.sw.receive(2, wire(raw_cell(kVcC)));
  f.sim.run_until(sim::milliseconds(2));
  ASSERT_EQ(f.forwarded.size(), 120u);

  // Cell 0 left before the others arrived; from there the rounds are
  // exact: 1 + 2 + 4 cells per ring rotation. Five rounds = 35 cells.
  std::size_t a = 0, b = 0, c = 0;
  for (std::size_t i = 1; i < 36; ++i) {
    if (f.forwarded[i].vc == kVcA) ++a;
    if (f.forwarded[i].vc == kVcB) ++b;
    if (f.forwarded[i].vc == kVcC) ++c;
  }
  EXPECT_EQ(a, 5u);
  EXPECT_EQ(b, 10u);
  EXPECT_EQ(c, 20u);
  f.expect_queue_books_balanced();
}

TEST(Dwrr, DrainedQueueForfeitsGrantAndLeavesRing) {
  net::SwitchConfig cfg{.ports = 4, .queue_cells = 128,
                        .clp_threshold = 128};
  cfg.scheduler = net::SwitchScheduler::kDwrr;
  SwitchFixture f(cfg, 3);
  f.sw.add_route(0, kVcA, 3, kVcA, /*weight=*/1);
  f.sw.add_route(2, kVcC, 3, kVcC, /*weight=*/4);
  // The heavy VC has only 2 cells: it must not bank the unused grant
  // or wedge the ring once it drains.
  for (int i = 0; i < 20; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  for (int i = 0; i < 2; ++i) f.sw.receive(2, wire(raw_cell(kVcC)));
  f.sim.run_until(sim::milliseconds(2));
  EXPECT_EQ(f.forwarded.size(), 22u);
  EXPECT_EQ(f.sw.cells_queued(), 0u);
  f.expect_queue_books_balanced();
}

// --- Per-VC buffer accounting -------------------------------------------

// One-cell AAL5 PDU: AUU set, so each cell is a complete frame to the
// EPD machinery.
atm::Cell pdu_cell(atm::VcId vc) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.pti = atm::Pti::kUserData1;
  return c;
}

TEST(PerVcBooks, EpdGatesOnOwnQueueNotSharedPool) {
  // vc_epd_cells = 4 with the shared-pool EPD disabled: a flooding VC
  // is gated by its *own* queue depth while a fresh VC on the same
  // port, arriving with the pool already backlogged, is admitted
  // untouched — the isolation the shared threshold cannot give.
  net::SwitchConfig cfg{.ports = 4, .queue_cells = 128,
                        .clp_threshold = 128};
  cfg.scheduler = net::SwitchScheduler::kDwrr;
  cfg.vc_epd_cells = 4;
  SwitchFixture f(cfg, 3);
  f.sw.add_route(0, kVcA, 3, kVcA);
  f.sw.add_route(1, kVcB, 3, kVcB);
  // Cell 0 is served instantly; cell i then meets its own queue at
  // depth i-1, so depths 0..3 admit (5 cells) and the rest are EPD'd.
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(pdu_cell(kVcA)));
  EXPECT_EQ(f.sw.pdus_epd_discarded(), 7u);
  // B's queue is empty: admitted despite A's resident backlog.
  for (int i = 0; i < 3; ++i) f.sw.receive(1, wire(pdu_cell(kVcB)));
  EXPECT_EQ(f.sw.pdus_epd_discarded(), 7u);
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.forwarded.size(), 8u);
  f.expect_queue_books_balanced();
}

TEST(PerVcBooks, HardCapDropsLandInVcLimitBook) {
  // vc_queue_cells alone (no frame awareness): cells beyond the cap
  // die in the dedicated book and the queue-stage identity still
  // balances.
  net::SwitchConfig cfg{.ports = 4, .queue_cells = 128,
                        .clp_threshold = 128};
  cfg.scheduler = net::SwitchScheduler::kDwrr;
  cfg.vc_queue_cells = 4;
  SwitchFixture f(cfg, 3);
  f.sw.add_route(0, kVcA, 3, kVcA);
  f.sw.add_route(1, kVcB, 3, kVcB);
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  EXPECT_EQ(f.sw.cells_dropped_vc_limit(), 7u);
  for (int i = 0; i < 2; ++i) f.sw.receive(1, wire(raw_cell(kVcB)));
  EXPECT_EQ(f.sw.cells_dropped_vc_limit(), 7u);
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.forwarded.size(), 7u);
  EXPECT_EQ(f.sw.cells_dropped_overflow(), 0u);
  f.expect_queue_books_balanced();
}

// --- WRED boundary ------------------------------------------------------

TEST(WredBoundary, DropIsForcedOnlyBeyondMaxThreshold) {
  // max_p = 0 makes every in-band draw a pass, so any WRED loss can
  // only come from the forced branch past the upper threshold. The
  // cell that meets occupancy == max (8) must survive; cells meeting
  // 9 must die without a draw.
  net::SwitchConfig cfg{.ports = 2, .queue_cells = 64,
                        .clp_threshold = 64};
  cfg.wred.enabled = true;
  cfg.wred.min_cells = 4;
  cfg.wred.max_cells = 8;
  cfg.wred.max_p = 0.0;
  SwitchFixture f(cfg, 1);
  f.sw.add_route(0, kVcA, 1, kVcA);
  // Cell 0 is served instantly, so cell i meets occupancy i-1.
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  EXPECT_EQ(f.sw.cells_wred_dropped(), 2u);  // the two that met 9
  EXPECT_EQ(f.sw.queue_occupancy(1), 9u);    // the one that met 8 got in
  f.expect_queue_books_balanced();
  f.sim.run_until(sim::milliseconds(1));
  f.expect_queue_books_balanced();
}

TEST(WredBoundary, RampReachesMaxPAtMaxThresholdUntaggedBand) {
  // Degenerate band (min == max == 8) with max_p = 1: occupancy == max
  // draws at exactly max_p, which at probability one is a certain
  // drop. Anything below the band is untouched.
  net::SwitchConfig cfg{.ports = 2, .queue_cells = 64,
                        .clp_threshold = 64};
  cfg.wred.enabled = true;
  cfg.wred.min_cells = 8;
  cfg.wred.max_cells = 8;
  cfg.wred.max_p = 1.0;
  SwitchFixture f(cfg, 1);
  f.sw.add_route(0, kVcA, 1, kVcA);
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  // Cells meeting occupancy 8 (the last three) all died at the
  // boundary; the pool never exceeds it.
  EXPECT_EQ(f.sw.cells_wred_dropped(), 3u);
  EXPECT_EQ(f.sw.queue_occupancy(1), 8u);
  f.expect_queue_books_balanced();
}

TEST(WredBoundary, RampReachesMaxPAtMaxThresholdTaggedBand) {
  // Same boundary semantics for the CLP-tagged band, via its own
  // thresholds (the untagged band stays disabled: max_cells = 0).
  net::SwitchConfig cfg{.ports = 2, .queue_cells = 64,
                        .clp_threshold = 64};
  cfg.wred.enabled = true;
  cfg.wred.clp1_min_cells = 8;
  cfg.wred.clp1_max_cells = 8;
  cfg.wred.clp1_max_p = 1.0;
  SwitchFixture f(cfg, 1);
  f.sw.add_route(0, kVcA, 1, kVcA);
  for (int i = 0; i < 12; ++i) {
    f.sw.receive(0, wire(raw_cell(kVcA, /*clp=*/true)));
  }
  EXPECT_EQ(f.sw.cells_wred_dropped(), 3u);
  EXPECT_EQ(f.sw.cells_wred_dropped_clp(), 3u);
  EXPECT_EQ(f.sw.queue_occupancy(1), 8u);
  f.expect_queue_books_balanced();
}

// --- remove_route purge -------------------------------------------------

void run_purge_test(net::SwitchScheduler sched) {
  net::SwitchConfig cfg{.ports = 3, .queue_cells = 128,
                        .clp_threshold = 128};
  cfg.scheduler = sched;
  SwitchFixture f(cfg, 2);
  f.sw.add_route(0, kVcA, 2, kVcA, /*weight=*/4);
  f.sw.add_route(1, kVcB, 2, kVcB, /*weight=*/1);
  for (int i = 0; i < 10; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  for (int i = 0; i < 10; ++i) f.sw.receive(1, wire(raw_cell(kVcB)));
  // 19 resident (cell 0 already committed); A holds 9 of them and is
  // at the front of the active ring, mid-grant under DWRR.
  ASSERT_EQ(f.sw.cells_queued(), 19u);
  ASSERT_TRUE(f.sw.remove_route(0, kVcA));
  // The close purged A's residents — accounted, not leaked — and
  // retired its ring ticket with the record.
  EXPECT_EQ(f.sw.cells_purged_on_close(), 9u);
  EXPECT_EQ(f.sw.cells_dropped_overflow(), 9u);
  EXPECT_EQ(f.sw.cells_queued(), 10u);
  f.expect_queue_books_balanced();  // conservation holds mid-flight

  // Late cells on the closed VC are unroutable, and the scheduler
  // serves the survivor without touching the dead queue's arena slot.
  f.sw.receive(0, wire(raw_cell(kVcA)));
  EXPECT_EQ(f.sw.cells_unroutable(), 1u);
  f.sim.run_until(sim::milliseconds(1));
  EXPECT_EQ(f.forwarded.size(), 11u);  // A's head cell + all of B
  EXPECT_EQ(f.sw.cells_queued(), 0u);
  f.expect_queue_books_balanced();
}

TEST(CloseVc, PurgesResidentQueueUnderRoundRobin) {
  run_purge_test(net::SwitchScheduler::kRoundRobin);
}

TEST(CloseVc, PurgesResidentQueueUnderDwrr) {
  run_purge_test(net::SwitchScheduler::kDwrr);
}

// --- control-cell exemption ---------------------------------------------

TEST(ControlCells, DrawOnReservedHeadroomAboveSaturatedPool) {
  net::SwitchConfig cfg{.ports = 2, .queue_cells = 8, .clp_threshold = 8};
  cfg.efci_threshold = 2;
  cfg.control_reserve_cells = 4;
  SwitchFixture f(cfg, 1);
  f.sw.add_route(0, kVcA, 1, kVcA);
  // Saturate the shared pool with user data: cells meeting
  // occupancy >= 8 tail-drop, so the pool pins at 8.
  for (int i = 0; i < 12; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  ASSERT_EQ(f.sw.queue_occupancy(1), 8u);
  const std::uint64_t data_drops = f.sw.cells_dropped_overflow();
  ASSERT_GT(data_drops, 0u);

  // Backward RM cells ride through the saturation on the reserve —
  // exactly 4 fit — and only then do control cells tail-drop too.
  for (int i = 0; i < 6; ++i) f.sw.receive(0, wire(rm_cell(kVcA)));
  EXPECT_EQ(f.sw.queue_occupancy(1), 12u);
  EXPECT_EQ(f.sw.cells_dropped_overflow(), data_drops + 2);
  f.expect_queue_books_balanced();

  f.sim.run_until(sim::milliseconds(1));
  // The four admitted RM cells came out the far side unmutated: no
  // EFCI mark ever touches a control cell (PTI stays kResourceMgmt).
  std::size_t rm_out = 0;
  for (const auto& h : f.forwarded) {
    if (h.pti == atm::Pti::kResourceMgmt) ++rm_out;
  }
  EXPECT_EQ(rm_out, 4u);
  f.expect_queue_books_balanced();
}

TEST(ControlCells, SkipClpThresholdAndWred) {
  net::SwitchConfig cfg{.ports = 2, .queue_cells = 8, .clp_threshold = 2};
  cfg.wred.enabled = true;
  cfg.wred.clp1_min_cells = 2;
  cfg.wred.clp1_max_cells = 2;
  cfg.wred.clp1_max_p = 1.0;
  SwitchFixture f(cfg, 1);
  f.sw.add_route(0, kVcA, 1, kVcA);
  // Raise the pool past both tagged-cell gates.
  for (int i = 0; i < 4; ++i) f.sw.receive(0, wire(raw_cell(kVcA)));
  ASSERT_GE(f.sw.queue_occupancy(1), 2u);

  // A tagged *user* cell dies (WRED's tagged band is certain here); a
  // tagged *RM* cell must pass both WRED and the CLP threshold.
  f.sw.receive(0, wire(raw_cell(kVcA, /*clp=*/true)));
  EXPECT_EQ(f.sw.cells_wred_dropped_clp(), 1u);
  atm::Cell rm = rm_cell(kVcA);
  rm.header.clp = true;
  const std::size_t before = f.sw.queue_occupancy(1);
  f.sw.receive(0, wire(rm));
  EXPECT_EQ(f.sw.queue_occupancy(1), before + 1);
  EXPECT_EQ(f.sw.cells_dropped_clp(), 0u);
  EXPECT_EQ(f.sw.cells_wred_dropped(), 1u);  // still only the user cell
  f.expect_queue_books_balanced();
}

// --- closed loop at 4x overload -----------------------------------------

TEST(Congestion, ConvergesAtFourTimesOverloadWithSaturatedQueues) {
  // Bidirectional 4x overload: both directions saturate their output
  // pools, so every backward RM cell must cross a full pool. Without
  // the control reserve the feedback dies with the data and the loop
  // never closes; with it, both sources throttle.
  core::Testbed bed;
  auto& sw = bed.add_switch({.ports = 2,
                             .queue_cells = 64,
                             .clp_threshold = 64,
                             .port_rate = atm::raw_rate(38e6, "slow"),
                             .efci_threshold = 16});
  core::StationConfig cfg;
  cfg.nic.congestion.enabled = true;
  cfg.name = "a";
  auto& a = bed.add_station(cfg);
  cfg.name = "b";
  auto& b = bed.add_station(cfg);
  bed.connect_to_switch(a, sw, 0);
  bed.connect_from_switch(sw, 1, b);
  bed.connect_to_switch(b, sw, 1);
  bed.connect_from_switch(sw, 0, a);
  sw.add_route(0, kVcA, 1, kVcA);
  sw.add_route(1, kVcA, 0, kVcA);
  a.nic().open_vc(kVcA, aal::AalType::kAal5);
  b.nic().open_vc(kVcA, aal::AalType::kAal5);
  std::size_t delivered_b = 0, delivered_a = 0;
  b.host().set_rx_handler(
      [&](aal::Bytes, const host::RxInfo&) { ++delivered_b; });
  a.host().set_rx_handler(
      [&](aal::Bytes, const host::RxInfo&) { ++delivered_a; });

  auto make_src = [&bed](core::Station& s, std::uint64_t seed) {
    return std::make_shared<net::SduSource>(
        bed.sim(),
        net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                               .sdu_bytes = 9180,
                               .count = 0,
                               .interval = sim::microseconds(250),
                               .seed = seed},
        [&s](aal::Bytes sdu) {
          return s.host().send(kVcA, aal::AalType::kAal5, std::move(sdu));
        });
  };
  auto src_a = make_src(a, 7);
  auto src_b = make_src(b, 11);
  src_a->start();
  src_b->start();
  bed.run_for(sim::milliseconds(30));

  // The pools really saturated...
  EXPECT_GT(sw.cells_dropped_overflow(), 0u);
  // ...yet RM cells crossed them and both sources throttled.
  EXPECT_GT(a.nic().rm_cells_received(), 0u);
  EXPECT_GT(b.nic().rm_cells_received(), 0u);
  EXPECT_LT(a.nic().vc_rate_factor(kVcA), 1.0);
  EXPECT_LT(b.nic().vc_rate_factor(kVcA), 1.0);
  EXPECT_GT(delivered_a, 0u);
  EXPECT_GT(delivered_b, 0u);

  src_a->stop();
  src_b->stop();
  bed.run_for(sim::milliseconds(150));
  auto auditor = bed.audit(/*include_hops=*/true);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- ERICA explicit-rate stamping ---------------------------------------

TEST(Erica, StampsBackwardRmWithGrantNearFairShare) {
  net::SwitchConfig cfg{.ports = 3, .queue_cells = 256,
                        .clp_threshold = 256};
  cfg.abr.enabled = true;
  cfg.abr.interval = sim::microseconds(100);
  sim::Simulator sim;
  net::Switch sw(sim, cfg);
  net::Link out0{sim, 0}, out2{sim, 0};
  sw.attach_output(0, out0);
  sw.attach_output(2, out2);
  std::vector<net::WireCell> back;  // cells leaving toward the source
  out0.set_sink([&](const net::WireCell& w) { back.push_back(w); });
  out2.set_sink([](const net::WireCell&) {});
  // Forward data 0 -> 2 and 1 -> 2 (both ABR); backward RM 2 -> 0.
  sw.add_route(0, kVcA, 2, kVcA, 1, /*abr=*/true);
  sw.add_route(1, kVcB, 2, kVcB, 1, /*abr=*/true);
  sw.add_route(2, kVcA, 0, kVcA);
  sw.add_route(2, kVcB, 1, kVcB);

  for (int i = 0; i < 20; ++i) {
    sw.receive(0, wire(raw_cell(kVcA)));
    sw.receive(1, wire(raw_cell(kVcB)));
  }
  sim.run_until(sim::microseconds(150));
  // This arrival closes the measurement window: the snapshot becomes
  // valid and stamping switches on.
  sw.receive(0, wire(raw_cell(kVcA)));

  // A backward RM born unlimited gets tightened to this switch's grant.
  sw.receive(2, wire(rm_cell(kVcA)));
  EXPECT_EQ(sw.rm_cells_er_stamped(), 1u);
  sim.run_until(sim::microseconds(200));
  ASSERT_EQ(back.size(), 1u);
  const std::uint32_t er = atm::rm_explicit_rate(back[0].bytes.data() + 5);
  ASSERT_NE(er, atm::kRmErUnlimited);
  // Two equal-rate ABR VCs on a ~353k cells/s port at 0.9 target: the
  // grant lands between the fair share (~159k) and the ABR capacity.
  const double port = cfg.port_rate.cells_per_second();
  EXPECT_GT(er, static_cast<std::uint32_t>(0.25 * port));
  EXPECT_LT(er, static_cast<std::uint32_t>(0.95 * port));

  // An RM already carrying a tighter ER than the grant is left alone.
  sw.receive(2, wire(rm_cell(kVcA, /*er=*/50'000)));
  EXPECT_EQ(sw.rm_cells_er_stamped(), 1u);
  sim.run_until(sim::microseconds(250));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(atm::rm_explicit_rate(back[1].bytes.data() + 5), 50'000u);

  core::InvariantAuditor auditor;
  auditor.audit_switch(sw, "sw");
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(Erica, ClosedLoopConvergesAndShedsShaperOnRecovery) {
  // End to end: ERICA stamps the bottleneck's grant into backward RM
  // cells, the source's NIC jumps its shaper to the grant, and after
  // the overload ends the recovered VC sheds the shaper entirely.
  core::Testbed bed;
  net::SwitchConfig scfg{.ports = 2,
                         .queue_cells = 256,
                         .clp_threshold = 256,
                         .port_rate = atm::raw_rate(62e6, "slow"),
                         .efci_threshold = 16};
  scfg.abr.enabled = true;
  auto& sw = bed.add_switch(scfg);
  core::StationConfig cfg;
  cfg.nic.congestion.enabled = true;
  cfg.nic.congestion.explicit_rate = true;
  cfg.name = "src";
  auto& a = bed.add_station(cfg);
  cfg.name = "sink";
  auto& b = bed.add_station(cfg);
  bed.connect_to_switch(a, sw, 0);
  bed.connect_from_switch(sw, 1, b);
  bed.connect_to_switch(b, sw, 1);
  bed.connect_from_switch(sw, 0, a);
  sw.add_route(0, kVcA, 1, kVcA, 1, /*abr=*/true);
  sw.add_route(1, kVcA, 0, kVcA);
  a.nic().open_vc(kVcA, aal::AalType::kAal5);
  b.nic().open_vc(kVcA, aal::AalType::kAal5);

  auto src = std::make_shared<net::SduSource>(
      bed.sim(),
      net::SduSource::Config{.mode = net::SduSource::Mode::kPoisson,
                             .sdu_bytes = 9180,
                             .count = 0,
                             .interval = sim::microseconds(400),
                             .seed = 7},
      [&a](aal::Bytes sdu) {
        return a.host().send(kVcA, aal::AalType::kAal5, std::move(sdu));
      });
  src->start();
  bed.run_for(sim::milliseconds(30));

  // The switch tightened RM cells and the source followed the grant —
  // somewhere around the bottleneck's share of the line, not at the
  // binary-feedback floor and not at full rate.
  EXPECT_GT(sw.rm_cells_er_stamped(), 0u);
  const double factor = a.nic().vc_rate_factor(kVcA);
  EXPECT_LT(factor, 0.9);
  EXPECT_GT(factor, 0.05);
  EXPECT_TRUE(a.nic().tx().vc_shaped(kVcA));

  // Quiet period: recovery walks the factor back to exactly 1.0 and
  // the best-effort VC's shaper is shed, not left pacing at ~line rate.
  src->stop();
  bed.run_for(sim::milliseconds(150));
  EXPECT_DOUBLE_EQ(a.nic().vc_rate_factor(kVcA), 1.0);
  EXPECT_FALSE(a.nic().tx().vc_shaped(kVcA));

  auto auditor = bed.audit(/*include_hops=*/true);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- TX shaper lifecycle ------------------------------------------------

TEST(TxShaper, FloatDirtyRecoveryFactorShedsShaper) {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  nic::TxPath tx(sim, bus, mem, fw, {}, atm::sts3c());
  const atm::VcId vc{0, 7};

  EXPECT_FALSE(tx.vc_shaped(vc));
  tx.set_rate_factor(vc, 0.5);
  EXPECT_TRUE(tx.vc_shaped(vc));
  // An ER grant of (almost) the full line computes er/line just shy of
  // 1.0 in floating point; the snap must treat it as full recovery
  // instead of rebuilding a GCRA at ~line rate forever.
  tx.set_rate_factor(vc, 0.99999999999);
  EXPECT_FALSE(tx.vc_shaped(vc));
  EXPECT_DOUBLE_EQ(tx.rate_factor(vc), 1.0);
}

TEST(TxShaper, PostRecoveryEmissionRunsAtLineRate) {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  const atm::LineRate line = atm::sts3c();
  nic::TxPath tx(sim, bus, mem, fw, {}, line);
  const atm::VcId vc{0, 7};
  std::vector<sim::Time> stamps;
  tx.framer().set_sink([&](const atm::Cell&) { stamps.push_back(sim.now()); });
  tx.start();

  auto post_pdu = [&] {
    const aal::Bytes sdu = aal::make_pattern(472, 3);  // 10 cells AAL5
    nic::TxDescriptor d;
    d.sg = mem.stage(sdu);
    d.len = sdu.size();
    d.vc = vc;
    d.aal = aal::AalType::kAal5;
    ASSERT_TRUE(tx.post(d));
  };

  // Throttled hard: ten cells crawl out at 1/64th of the line.
  tx.set_rate_factor(vc, 1.0 / 64);
  post_pdu();
  sim.run_until(sim::milliseconds(5));
  ASSERT_EQ(stamps.size(), 10u);
  const sim::Time slot = line.cell_slot();
  const sim::Time throttled_span = stamps.back() - stamps.front();
  EXPECT_GT(throttled_span, 400 * slot);  // nominal: 9 * 64 slots

  // Full recovery via a float-dirty ER ratio: the next PDU must drain
  // at line rate (the shaper is gone, not rebuilt at ~0.9999 line).
  tx.set_rate_factor(vc, 0.999999999999);
  stamps.clear();
  post_pdu();
  sim.run_until(sim::milliseconds(6));
  ASSERT_EQ(stamps.size(), 10u);
  const sim::Time recovered_span = stamps.back() - stamps.front();
  EXPECT_LE(recovered_span, 12 * slot);  // nominal: 9 slots
}

// --- signalling plumbing ------------------------------------------------

TEST(SigTraffic, DescriptorSurvivesTheWire) {
  sig::Message m;
  m.type = sig::MessageType::kSetup;
  m.call_id = 0x10002;
  m.calling_party = 1;
  m.called_party = 2;
  m.pcr_cells_per_second = 50'000.0;
  m.scr_cells_per_second = 20'000.0;
  m.weight = 3;
  m.abr = true;
  const auto decoded = sig::Message::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_DOUBLE_EQ(decoded->pcr_cells_per_second, 50'000.0);
  EXPECT_DOUBLE_EQ(decoded->scr_cells_per_second, 20'000.0);
  EXPECT_EQ(decoded->weight, 3);
  EXPECT_TRUE(decoded->abr);
}

TEST(SigTraffic, DecodeRejectsScrAbovePcr) {
  sig::Message m;
  m.pcr_cells_per_second = 10'000.0;
  m.scr_cells_per_second = 20'000.0;  // contradiction: SCR bounds PCR
  const auto r = sig::decode_checked(m.encode());
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, sig::Cause::kInvalidContents);
}

TEST(SigTraffic, VbrCallInstallsMeterAndCarriesDescriptorToCallee) {
  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 3, .queue_cells = 512, .clp_threshold = 512});
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  sig::SignalingNetwork net(bed, sw, /*agent_port=*/2);
  auto& cc_alice = net.attach(alice, 0, 1);
  auto& cc_bob = net.attach(bob, 1, 2);

  sig::CallControl::CallInfo callee_info;
  cc_bob.set_incoming([&](const sig::CallControl::CallInfo& info) {
    callee_info = info;
    return true;
  });
  bool connected = false;
  sig::CallControl::CallInfo caller_info;
  sig::TrafficDescriptor traffic;
  traffic.pcr_cells_per_second = 80'000.0;
  traffic.scr_cells_per_second = 30'000.0;
  traffic.weight = 3;
  traffic.abr = true;
  cc_alice.place_call(2, aal::AalType::kAal5, traffic,
                      [&](const sig::CallControl::CallInfo& info) {
                        connected = true;
                        caller_info = info;
                      });
  bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(connected);
  // The descriptor reached both ends intact.
  EXPECT_DOUBLE_EQ(caller_info.scr_cells_per_second, 30'000.0);
  EXPECT_DOUBLE_EQ(callee_info.scr_cells_per_second, 30'000.0);
  EXPECT_EQ(callee_info.weight, 3);
  EXPECT_TRUE(callee_info.abr);

  // And the network programmed a trTCM meter (not a GCRA policer) on
  // the data legs: the first burst is metered, the burst's excess over
  // the sustained rate tagged rather than dropped.
  alice.host().send(caller_info.vc, aal::AalType::kAal5,
                    aal::make_pattern(9180, 5));
  bed.run_for(sim::milliseconds(5));
  EXPECT_GT(sw.cells_metered(), 0u);
  EXPECT_EQ(sw.cells_metered(),
            sw.cells_meter_green() + sw.cells_meter_yellow() +
                sw.cells_meter_red());
  auto auditor = bed.audit(/*include_hops=*/false);
  net.audit_invariants(auditor);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

}  // namespace
}  // namespace hni
