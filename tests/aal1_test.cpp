// AAL1 tests: SNP (CRC-3 + parity) protection of the sequence count,
// stream slicing, gap detection modulo 8.

#include <gtest/gtest.h>

#include "aal/aal1.hpp"
#include "aal/types.hpp"

namespace hni::aal {
namespace {

atm::VcId kVc{2, 9};

TEST(Aal1Snp, AllSixteenHeadersSelfConsistent) {
  for (int csi = 0; csi < 2; ++csi) {
    for (std::uint8_t sc = 0; sc < 8; ++sc) {
      const std::uint8_t octet = aal1_encode_header(csi != 0, sc);
      const Aal1Header h = aal1_decode_header(octet);
      EXPECT_TRUE(h.snp_ok) << "csi=" << csi << " sc=" << int(sc);
      EXPECT_EQ(h.csi, csi != 0);
      EXPECT_EQ(h.sc, sc);
    }
  }
}

// Any single bit flip in the header octet must be detected by the SNP.
class Aal1HeaderBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(Aal1HeaderBitFlip, Detected) {
  const int bit = GetParam();
  for (std::uint8_t sc = 0; sc < 8; ++sc) {
    const std::uint8_t octet = aal1_encode_header(false, sc);
    const std::uint8_t damaged =
        static_cast<std::uint8_t>(octet ^ (1u << bit));
    EXPECT_FALSE(aal1_decode_header(damaged).snp_ok)
        << "sc=" << int(sc) << " bit=" << bit;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBits, Aal1HeaderBitFlip, ::testing::Range(0, 8));

TEST(Aal1Segmenter, SlicesStreamInto47ByteCells) {
  Aal1Segmenter seg(kVc);
  const Bytes stream = make_pattern(47 * 3 + 10, 5);
  auto cells = seg.push(stream);
  EXPECT_EQ(cells.size(), 3u);
  EXPECT_EQ(seg.buffered(), 10u);
  auto last = seg.flush(0xEE);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(seg.buffered(), 0u);
  EXPECT_FALSE(seg.flush().has_value());
}

TEST(Aal1Segmenter, SequenceCountsIncrementMod8) {
  Aal1Segmenter seg(kVc);
  auto cells = seg.push(make_pattern(47 * 20, 6));
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Aal1Header h = aal1_decode_header(cells[i].payload[0]);
    EXPECT_EQ(h.sc, i % 8) << i;
  }
}

TEST(Aal1Roundtrip, StreamBytesSurvive) {
  Aal1Segmenter seg(kVc);
  Aal1Reassembler rx;
  const Bytes stream = make_pattern(47 * 8, 7);
  Bytes out;
  for (const auto& cell : seg.push(stream)) {
    auto chunk = rx.push(cell);
    ASSERT_TRUE(chunk.has_value());
    EXPECT_EQ(chunk->lost_before, 0u);
    out.insert(out.end(), chunk->payload.begin(), chunk->payload.end());
  }
  EXPECT_EQ(out, stream);
  EXPECT_EQ(rx.cells_lost(), 0u);
}

TEST(Aal1Reassembler, DetectsGapOfOne) {
  Aal1Segmenter seg(kVc);
  auto cells = seg.push(make_pattern(47 * 5, 8));
  Aal1Reassembler rx;
  rx.push(cells[0]);
  rx.push(cells[1]);
  // cells[2] lost
  auto chunk = rx.push(cells[3]);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->lost_before, 1u);
  EXPECT_EQ(rx.cells_lost(), 1u);
}

TEST(Aal1Reassembler, DetectsGapUpToSeven) {
  Aal1Segmenter seg(kVc);
  auto cells = seg.push(make_pattern(47 * 9, 9));
  Aal1Reassembler rx;
  rx.push(cells[0]);
  // Drop cells 1..7 (seven cells).
  auto chunk = rx.push(cells[8]);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->lost_before, 7u);
}

TEST(Aal1Reassembler, DropsHeaderCorruptedCells) {
  Aal1Segmenter seg(kVc);
  auto cells = seg.push(make_pattern(47 * 2, 10));
  cells[0].payload[0] ^= 0x40;  // damage the SC field
  Aal1Reassembler rx;
  EXPECT_FALSE(rx.push(cells[0]).has_value());
  EXPECT_EQ(rx.header_errors(), 1u);
  // The follow-up cell still delivers (first accepted cell sets state).
  auto chunk = rx.push(cells[1]);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->lost_before, 0u);
}

TEST(Aal1Reassembler, CsiBitCarried) {
  atm::Cell cell;
  cell.payload[0] = aal1_encode_header(true, 3);
  Aal1Reassembler rx;
  auto chunk = rx.push(cell);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_TRUE(chunk->csi);
}

}  // namespace
}  // namespace hni::aal
