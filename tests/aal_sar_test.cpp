// Tests for the AAL-agnostic facade and the shared helper types.

#include <gtest/gtest.h>

#include "aal/sar.hpp"

namespace hni::aal {
namespace {

atm::VcId kVc{0, 5};

TEST(AalTypes, Names) {
  EXPECT_EQ(to_string(AalType::kAal1), "AAL1");
  EXPECT_EQ(to_string(AalType::kAal34), "AAL3/4");
  EXPECT_EQ(to_string(AalType::kAal5), "AAL5");
}

TEST(AalTypes, ErrorNames) {
  EXPECT_EQ(to_string(ReassemblyError::kNone), "none");
  EXPECT_EQ(to_string(ReassemblyError::kCrc), "crc");
  EXPECT_EQ(to_string(ReassemblyError::kTagMismatch), "tag-mismatch");
}

TEST(AalTypes, PayloadPerCell) {
  EXPECT_EQ(payload_per_cell(AalType::kAal1), 47u);
  EXPECT_EQ(payload_per_cell(AalType::kAal34), 44u);
  EXPECT_EQ(payload_per_cell(AalType::kAal5), 48u);
}

TEST(Pattern, SelfIdentifyingVerification) {
  for (std::size_t n : {4u, 8u, 9u, 100u, 9180u}) {
    const Bytes p = make_pattern(n, 0xABCDu + n);
    EXPECT_TRUE(verify_pattern(p)) << n;
    EXPECT_TRUE(verify_pattern(p, 0xABCDu + n)) << n;
  }
}

TEST(Pattern, DetectsCorruption) {
  Bytes p = make_pattern(64, 77);
  p[32] ^= 1;
  EXPECT_FALSE(verify_pattern(p));
}

TEST(Pattern, DetectsTruncation) {
  Bytes p = make_pattern(64, 77);
  p.resize(40);
  EXPECT_FALSE(verify_pattern(p));
}

TEST(FrameSegmenter, DispatchesBothAals) {
  FrameSegmenter s5(AalType::kAal5, kVc);
  FrameSegmenter s34(AalType::kAal34, kVc, 3);
  const Bytes sdu = make_pattern(200, 1);
  EXPECT_EQ(s5.segment(sdu).size(), aal5_cell_count(200));
  EXPECT_EQ(s34.segment(sdu).size(), aal34_cell_count(200));
}

TEST(FrameSegmenter, CellCountHelper) {
  EXPECT_EQ(FrameSegmenter::cell_count(AalType::kAal5, 9180), 192u);
  EXPECT_EQ(FrameSegmenter::cell_count(AalType::kAal34, 9180), 209u);
  EXPECT_EQ(FrameSegmenter::cell_count(AalType::kAal1, 94), 2u);
}

TEST(FrameSegmenter, RejectsAal1) {
  EXPECT_THROW(FrameSegmenter(AalType::kAal1, kVc), std::invalid_argument);
}

TEST(FrameReassembler, RejectsAal1) {
  EXPECT_THROW(FrameReassembler(AalType::kAal1), std::invalid_argument);
}

class FacadeRoundtrip : public ::testing::TestWithParam<AalType> {};

TEST_P(FacadeRoundtrip, DeliversThroughFacade) {
  const AalType aal = GetParam();
  FrameSegmenter seg(aal, kVc);
  FrameReassembler rx(aal);
  const Bytes sdu = make_pattern(1234, 42);
  std::optional<FrameDelivery> d;
  for (const auto& c : seg.segment(sdu)) {
    auto r = rx.push(c);
    if (r) d = std::move(r);
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->ok());
  EXPECT_EQ(d->sdu, sdu);
  EXPECT_EQ(rx.pdus_ok(), 1u);
  EXPECT_EQ(rx.pdus_errored(), 0u);
  EXPECT_FALSE(rx.mid_pdu());
}

INSTANTIATE_TEST_SUITE_P(BothFramedAals, FacadeRoundtrip,
                         ::testing::Values(AalType::kAal5, AalType::kAal34));

TEST(FrameReassembler, MidPduReflectsState) {
  FrameReassembler rx(AalType::kAal5);
  FrameSegmenter seg(AalType::kAal5, kVc);
  auto cells = seg.segment(make_pattern(200, 1));
  rx.push(cells[0]);
  EXPECT_TRUE(rx.mid_pdu());
  rx.reset();
  EXPECT_FALSE(rx.mid_pdu());
}

TEST(FrameReassembler, ErrorsSurfaceThroughFacade) {
  FrameReassembler rx(AalType::kAal5);
  FrameSegmenter seg(AalType::kAal5, kVc);
  auto cells = seg.segment(make_pattern(300, 2));
  cells.erase(cells.begin() + 1);
  std::optional<FrameDelivery> d;
  for (const auto& c : cells) {
    auto r = rx.push(c);
    if (r) d = std::move(r);
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->ok());
  EXPECT_EQ(rx.pdus_errored(), 1u);
}

}  // namespace
}  // namespace hni::aal
