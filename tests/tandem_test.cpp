// Multi-hop topologies: two switches in tandem with per-hop VCI
// translation, and a randomized signalling churn property test.

#include <gtest/gtest.h>

#include <functional>

#include "sig/network.hpp"
#include "sim/random.hpp"

namespace hni {
namespace {

TEST(Tandem, TwoSwitchesTranslatePerHop) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  auto& sw1 = bed.add_switch({.ports = 2, .queue_cells = 256,
                              .clp_threshold = 256});
  auto& sw2 = bed.add_switch({.ports = 2, .queue_cells = 256,
                              .clp_threshold = 256});

  // a -> sw1(0) ; sw1(1) -> sw2(0) ; sw2(1) -> b, with a VCI rewrite at
  // every hop: 10 -> 20 -> 30.
  bed.connect_to_switch(a, sw1, 0);
  net::Link& middle = bed.add_link(sim::microseconds(20));
  middle.set_sink([&sw2](const net::WireCell& w) { sw2.receive(0, w); });
  sw1.attach_output(1, middle);
  bed.connect_from_switch(sw2, 1, b);
  sw1.add_route(0, {0, 10}, 1, {0, 20});
  sw2.add_route(0, {0, 20}, 1, {0, 30});

  a.nic().open_vc({0, 10}, aal::AalType::kAal5);
  b.nic().open_vc({0, 30}, aal::AalType::kAal5);

  aal::Bytes got;
  atm::VcId got_vc{};
  b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo& i) {
    got = std::move(s);
    got_vc = i.vc;
  });
  const aal::Bytes sdu = aal::make_pattern(6000, 5);
  a.host().send({0, 10}, aal::AalType::kAal5, sdu);
  bed.run_for(sim::milliseconds(20));

  EXPECT_EQ(got, sdu);
  EXPECT_EQ(got_vc, (atm::VcId{0, 30}));
  EXPECT_EQ(sw1.cells_forwarded(), sw2.cells_forwarded());
}

TEST(Tandem, PerHopQueueingAccumulatesLatency) {
  // The same transfer through 0, 1 and 2 switches: each hop adds at
  // least its store-and-forward cell time and propagation.
  auto run_hops = [](int hops) -> sim::Time {
    core::Testbed bed;
    auto& a = bed.add_station({});
    auto& b = bed.add_station({});
    const atm::VcId vc{0, 10};
    if (hops == 0) {
      bed.connect(a, b);
    } else {
      std::vector<net::Switch*> sws;
      for (int i = 0; i < hops; ++i) {
        sws.push_back(&bed.add_switch(
            {.ports = 2, .queue_cells = 256, .clp_threshold = 256}));
      }
      bed.connect_to_switch(a, *sws[0], 0);
      for (int i = 0; i + 1 < hops; ++i) {
        net::Link& l = bed.add_link(sim::microseconds(5));
        auto* next = sws[static_cast<std::size_t>(i + 1)];
        l.set_sink([next](const net::WireCell& w) { next->receive(0, w); });
        sws[static_cast<std::size_t>(i)]->attach_output(1, l);
        sws[static_cast<std::size_t>(i)]->add_route(0, vc, 1, vc);
      }
      bed.connect_from_switch(*sws.back(), 1, b);
      sws.back()->add_route(0, vc, 1, vc);
    }
    a.nic().open_vc(vc, aal::AalType::kAal5);
    b.nic().open_vc(vc, aal::AalType::kAal5);
    sim::Time latency = 0;
    b.host().set_rx_handler([&](aal::Bytes, const host::RxInfo& i) {
      latency = i.handed_up_time - i.first_cell_time;
    });
    a.host().send(vc, aal::AalType::kAal5, aal::make_pattern(2000, 1));
    bed.run_for(sim::milliseconds(50));
    return latency;
  };

  const sim::Time h0 = run_hops(0);
  const sim::Time h1 = run_hops(1);
  const sim::Time h2 = run_hops(2);
  ASSERT_GT(h0, 0);
  ASSERT_GT(h1, h0);
  ASSERT_GT(h2, h1);
  // Each extra switch adds roughly one cell slot (store-and-forward of
  // the tail cell) + 5 us propagation; allow generous bounds.
  EXPECT_LT(h2 - h1, sim::microseconds(40));
}

TEST(Tandem, SignalingChurnConservesResources) {
  // Random storms of place/release; invariants: the VCI pool returns to
  // baseline, no routes leak, every call reaches a terminal state.
  sim::Rng rng(4242);
  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 3, .queue_cells = 512, .clp_threshold = 512});
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  sig::SignalingConfig cfg;
  cfg.max_vcs_per_port = 16;
  sig::SignalingNetwork net(bed, sw, 2, cfg);
  auto& cc_a = net.attach(a, 0, 1);
  auto& cc_b = net.attach(b, 1, 2);

  // Callee accepts 70% of calls.
  cc_b.set_incoming([&](const sig::CallControl::CallInfo&) {
    return rng.chance(0.7);
  });

  std::size_t connected = 0, failed = 0, released = 0;
  cc_a.set_released([&](const sig::CallControl::CallInfo&, sig::Cause) {
    ++released;
  });
  std::function<void(int)> storm = [&](int remaining) {
    if (remaining == 0) return;
    cc_a.place_call(
        2, aal::AalType::kAal5, 0.0,
        [&, remaining](const sig::CallControl::CallInfo& info) {
          ++connected;
          // Hold the call a random while, then release.
          bed.sim().after(
              sim::microseconds(
                  static_cast<std::int64_t>(rng.uniform_int(50, 2000))),
              [&, id = info.call_id] { cc_a.release(id); });
          storm(remaining - 1);
        },
        [&, remaining](std::uint32_t, sig::Cause) {
          ++failed;
          storm(remaining - 1);
        });
  };
  storm(60);
  bed.run_for(sim::seconds(1));

  EXPECT_EQ(connected + failed, 60u);
  EXPECT_EQ(released, connected);
  EXPECT_EQ(cc_a.active_calls(), 0u);
  EXPECT_EQ(cc_b.active_calls(), 0u);
  EXPECT_EQ(net.active_calls(), 0u);
  EXPECT_GT(connected, 20u);
  EXPECT_GT(failed, 5u);

  // Pool conserved: one more call still connects and gets a low VCI.
  std::optional<atm::VcId> vc;
  cc_b.set_incoming([](const sig::CallControl::CallInfo&) { return true; });
  cc_a.place_call(2, aal::AalType::kAal5, 0.0,
                  [&](const sig::CallControl::CallInfo& i) { vc = i.vc; });
  bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(vc.has_value());
  EXPECT_LT(vc->vci, cfg.first_data_vci + cfg.max_vcs_per_port);
}

}  // namespace
}  // namespace hni
