// Targeted fault/recovery tests: each recovery path exercised by an
// explicit fault, with the invariant auditor confirming no resource
// escaped the books.
//
//   * DMA retry with exponential backoff (transient faults absorbed)
//   * DMA give-up after max_retries (PDU aborted, buffers reclaimed)
//   * RX/TX progress watchdogs (wedged engine abort-and-reclaim reset)
//   * link down -> AIS inserted downstream -> RDI echoed upstream ->
//     transmit VC paused; alarm clears and the VC resumes
//   * reassembly-timeout sweep returns every board container
//   * bus hold-off, DMA stall, board-pool squeeze: degrade, recover

#include <gtest/gtest.h>

#include "core/audit.hpp"
#include "core/testbed.hpp"

namespace hni {
namespace {

using aal::AalType;
using atm::VcId;

constexpr VcId kVc{0, 77};

struct Pair {
  core::Testbed bed;
  core::Station* a = nullptr;
  core::Station* b = nullptr;
  net::Link* ab = nullptr;
  net::Link* ba = nullptr;
  std::uint64_t received = 0;
  std::uint64_t bad = 0;

  explicit Pair(core::StationConfig sc = {}) {
    a = &bed.add_station(sc);
    b = &bed.add_station(sc);
    auto links = bed.connect(*a, *b);
    ab = links.first;
    ba = links.second;
    a->nic().open_vc(kVc, AalType::kAal5);
    b->nic().open_vc(kVc, AalType::kAal5);
    b->host().set_rx_handler([this](aal::Bytes sdu, const host::RxInfo&) {
      ++received;
      if (!aal::verify_pattern(sdu)) ++bad;
    });
  }

  void expect_books_balance() {
    auto audit = bed.audit();
    EXPECT_TRUE(audit.ok()) << audit.report();
  }
};

TEST(DmaRetry, TransientFaultsAbsorbedByBackoff) {
  Pair p;
  p.a->nic().tx().dma().fail_next(2);  // < max_retries: must recover
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 1));
  p.bed.run_for(sim::milliseconds(10));

  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  EXPECT_EQ(p.a->nic().tx().dma().retries(), 2u);
  EXPECT_EQ(p.a->nic().tx().dma().gave_up(), 0u);
  EXPECT_EQ(p.a->nic().tx().pdus_aborted(), 0u);
  p.expect_books_balance();
}

TEST(DmaRetry, BackoffGrowsExponentially) {
  // With backoff b and max_retries 4, a persistent fault costs
  // b + 2b + 4b + 8b = 15b of backoff before the give-up.
  core::StationConfig sc;
  sc.nic.tx.dma.retry_backoff = sim::microseconds(100);
  Pair p(sc);
  p.a->nic().tx().dma().fail_next(1000);
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(400, 1));

  // 1 ms in: only the early attempts have happened (the summed backoff
  // 100+200+400+800 us = 1.5 ms is still running), so no give-up yet.
  p.bed.run_for(sim::milliseconds(1));
  EXPECT_EQ(p.a->nic().tx().dma().gave_up(), 0u);

  // Past the full backoff span the engine has given up.
  p.bed.run_for(sim::milliseconds(19));
  EXPECT_EQ(p.a->nic().tx().dma().gave_up(), 1u);
  EXPECT_EQ(p.a->nic().tx().dma().retries(), 4u);
  EXPECT_EQ(p.a->nic().tx().pdus_aborted(), 1u);
  EXPECT_EQ(p.received, 0u);
  p.expect_books_balance();
}

TEST(DmaRetry, GiveUpAbortsTxPduAndCompletesDescriptor) {
  Pair p;
  // Exactly the first attempt plus all 4 retries fail: the engine must
  // give up, and the fault is then fully consumed.
  p.a->nic().tx().dma().fail_next(5);
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 1));
  p.bed.run_for(sim::milliseconds(10));

  EXPECT_EQ(p.received, 0u);
  EXPECT_EQ(p.a->nic().tx().dma().gave_up(), 1u);
  EXPECT_EQ(p.a->nic().tx().pdus_aborted(), 1u);

  // The completion fired (descriptor reclaimed): the host can send
  // again and the path still works once the fault clears.
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 2));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

TEST(DmaRetry, RxLandingGiveUpReturnsHostBuffers) {
  Pair p;
  p.b->nic().rx().dma().fail_next(5);  // first attempt + all retries
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 1));
  p.bed.run_for(sim::milliseconds(10));

  EXPECT_EQ(p.received, 0u);
  EXPECT_EQ(p.b->nic().rx().pdus_dropped_dma(), 1u);
  EXPECT_EQ(p.b->nic().rx().dma().gave_up(), 1u);

  // The posted-buffer budget was replenished: later traffic lands.
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 2));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 1u);
  p.expect_books_balance();
}

TEST(DmaRetry, DisabledRetriesGiveUpImmediately) {
  core::StationConfig sc;
  sc.nic.tx.dma.max_retries = 0;  // recovery off
  Pair p(sc);
  p.a->nic().tx().dma().fail_next(1);
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(1000, 1));
  p.bed.run_for(sim::milliseconds(10));

  EXPECT_EQ(p.a->nic().tx().dma().retries(), 0u);
  EXPECT_EQ(p.a->nic().tx().dma().gave_up(), 1u);
  EXPECT_EQ(p.received, 0u);
  p.expect_books_balance();
}

TEST(Watchdog, RxResetReclaimsWedgedEngine) {
  Pair p;
  p.b->nic().rx().wedge_engine();
  for (int i = 0; i < 4; ++i) {
    p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, i + 1));
  }
  // Two watchdog samples (10 ms interval) must detect the stall.
  p.bed.run_for(sim::milliseconds(40));

  EXPECT_GE(p.b->nic().rx().watchdog_resets(), 1u);
  // The reset flushed the FIFO and/or aborted partial PDUs...
  EXPECT_GT(p.b->nic().rx().cells_flushed() +
                p.b->nic().rx().pdus_aborted(),
            0u);
  // ...and every board container came back.
  EXPECT_EQ(p.b->nic().rx().board().containers_in_use(), 0u);

  // Post-reset the path is alive again.
  const std::uint64_t before = p.received;
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 99));
  p.bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(p.received, before + 1);
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

TEST(Watchdog, TxResetClearsWedgedEngine) {
  Pair p;
  p.a->nic().tx().wedge_engine();
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 1));
  p.bed.run_for(sim::milliseconds(40));

  EXPECT_GE(p.a->nic().tx().watchdog_resets(), 1u);
  EXPECT_EQ(p.received, 1u);  // recovered and delivered
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

TEST(Watchdog, QuietInterfaceNeverFires) {
  Pair p;
  for (int i = 0; i < 8; ++i) {
    p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(9180, i + 1));
  }
  p.bed.run_for(sim::milliseconds(100));
  EXPECT_EQ(p.received, 8u);
  EXPECT_EQ(p.a->nic().tx().watchdog_resets(), 0u);
  EXPECT_EQ(p.b->nic().rx().watchdog_resets(), 0u);
  p.expect_books_balance();
}

TEST(Alarms, LinkDownEmitsAisDownstreamAndRdiUpstream) {
  Pair p;
  p.ab->set_down(true);
  p.bed.run_for(sim::milliseconds(5));

  // Downstream NIC (b) detected loss of signal and substituted AIS
  // cells into its receive stream.
  EXPECT_TRUE(p.b->nic().los());
  EXPECT_EQ(p.b->nic().los_events(), 1u);
  EXPECT_GT(p.b->nic().ais_inserted(), 0u);
  EXPECT_GT(p.b->nic().ais_received(), 0u);

  // It echoed RDI upstream on the healthy reverse link; the upstream
  // NIC (a) received the defect indication and paused the VC.
  EXPECT_GT(p.b->nic().rdi_sent(), 0u);
  EXPECT_GT(p.a->nic().rdi_received(), 0u);
  EXPECT_TRUE(p.a->nic().tx().vc_paused(kVc));

  // Posts into the paused VC are shed with accounting, not queued.
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 1));
  p.bed.run_for(sim::milliseconds(2));
  EXPECT_GE(p.a->nic().tx().pdus_dropped_paused(), 1u);
  EXPECT_EQ(p.received, 0u);

  // Repair the link: AIS stops, the RDI hold expires, the VC resumes
  // and traffic flows again.
  p.ab->set_down(false);
  p.bed.run_for(sim::milliseconds(10));  // > rdi_hold
  EXPECT_FALSE(p.b->nic().los());
  EXPECT_FALSE(p.a->nic().tx().vc_paused(kVc));

  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 2));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

TEST(Alarms, AisInsertionDisabledMeansNoReaction) {
  core::StationConfig sc;
  sc.nic.ais_period = 0;  // alarm recovery off
  Pair p(sc);
  p.ab->set_down(true);
  p.bed.run_for(sim::milliseconds(5));

  EXPECT_TRUE(p.b->nic().los());
  EXPECT_EQ(p.b->nic().ais_inserted(), 0u);
  EXPECT_EQ(p.a->nic().rdi_received(), 0u);
  EXPECT_FALSE(p.a->nic().tx().vc_paused(kVc));
  p.expect_books_balance();
}

TEST(Sweep, ReassemblyTimeoutReturnsAllContainers) {
  Pair p;
  // Hand the receiver every cell of a PDU except the last: reassembly
  // sits mid-PDU holding board containers.
  aal::FrameSegmenter seg(AalType::kAal5, kVc);
  const auto cells = seg.segment(aal::make_pattern(9180, 7), false);
  ASSERT_GT(cells.size(), 2u);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    net::WireCell w;
    w.bytes = cells[i].serialize(atm::HeaderFormat::kUni);
    w.meta = cells[i].meta;
    p.b->nic().rx().receive_wire(w);
  }
  p.bed.run_for(sim::milliseconds(5));
  EXPECT_GT(p.b->nic().rx().board().containers_in_use(), 0u);

  // Past the reassembly timeout the sweep abandons the PDU and the
  // pool books balance again: allocated == released, nothing in use.
  p.bed.run_for(sim::milliseconds(120));
  EXPECT_GE(p.b->nic().rx().pdus_timed_out(), 1u);
  EXPECT_EQ(p.b->nic().rx().board().containers_in_use(), 0u);
  EXPECT_EQ(p.b->nic().rx().board().allocated(),
            p.b->nic().rx().board().released());

  // The stream restarts cleanly on the next full PDU.
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(4000, 8));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

TEST(Degrade, BusHoldOffDelaysButLosesNothing) {
  Pair p;
  p.a->bus().hold_off(sim::microseconds(500));
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(9180, 1));
  p.bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  EXPECT_GE(p.a->bus().holdoffs(), 1u);
  p.expect_books_balance();
}

TEST(Degrade, DmaStallDelaysButLosesNothing) {
  Pair p;
  p.a->nic().tx().dma().stall(sim::microseconds(800));
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(9180, 1));
  p.bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.a->nic().tx().dma().stalls(), 1u);
  p.expect_books_balance();
}

TEST(Degrade, BoardSqueezeDropsThenRecovers) {
  Pair p;
  p.b->nic().rx().board_memory().set_capacity_limit(1);
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(9180, 1));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 0u);
  EXPECT_GE(p.b->nic().rx().pdus_dropped_board(), 1u);

  p.b->nic().rx().board_memory().clear_capacity_limit();
  p.a->host().send(kVc, AalType::kAal5, aal::make_pattern(9180, 2));
  p.bed.run_for(sim::milliseconds(10));
  EXPECT_EQ(p.received, 1u);
  EXPECT_EQ(p.bad, 0u);
  p.expect_books_balance();
}

}  // namespace
}  // namespace hni
