// Reproducibility: identical scenarios must produce bit-identical
// results — the property every experiment in EXPERIMENTS.md rests on.

#include <gtest/gtest.h>

#include "core/scenario.hpp"

namespace hni {
namespace {

core::P2pResult run_once() {
  core::P2pConfig cfg;
  cfg.traffic.mode = net::SduSource::Mode::kPoisson;
  cfg.traffic.sdu_bytes = 2000;
  cfg.traffic.interval = sim::microseconds(300);
  cfg.loss.cell_loss_rate = 0.001;
  cfg.loss.mean_burst_cells = 3.0;
  cfg.loss.cdv_jitter = sim::microseconds(2);
  cfg.measure = sim::milliseconds(20);
  return core::run_p2p(cfg);
}

TEST(Determinism, IdenticalRunsIdenticalResults) {
  const auto r1 = run_once();
  const auto r2 = run_once();
  EXPECT_EQ(r1.sdus_sent, r2.sdus_sent);
  EXPECT_EQ(r1.sdus_received, r2.sdus_received);
  EXPECT_EQ(r1.sdus_errored, r2.sdus_errored);
  EXPECT_EQ(r1.cells_fifo_dropped, r2.cells_fifo_dropped);
  EXPECT_DOUBLE_EQ(r1.goodput_bps, r2.goodput_bps);
  EXPECT_DOUBLE_EQ(r1.latency_mean_us, r2.latency_mean_us);
  EXPECT_DOUBLE_EQ(r1.rx_engine_util, r2.rx_engine_util);
}

TEST(Determinism, SeedChangesOutcome) {
  core::P2pConfig a;
  a.traffic.mode = net::SduSource::Mode::kPoisson;
  a.traffic.sdu_bytes = 2000;
  a.traffic.interval = sim::microseconds(300);
  a.traffic.seed = 1;
  a.loss.cell_loss_rate = 0.002;
  a.measure = sim::milliseconds(20);
  core::P2pConfig b = a;
  b.traffic.seed = 2;
  const auto ra = core::run_p2p(a);
  const auto rb = core::run_p2p(b);
  // Different universes: at least one observable differs.
  EXPECT_TRUE(ra.sdus_received != rb.sdus_received ||
              ra.latency_mean_us != rb.latency_mean_us ||
              ra.goodput_bps != rb.goodput_bps);
}

}  // namespace
}  // namespace hni
