// QoS machinery tests: GCRA conformance mathematics, transmit-side
// per-VC shaping, cell-level round-robin interleaving (no head-of-line
// blocking), and switch ingress policing (UPC).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "atm/gcra.hpp"
#include "core/testbed.hpp"
#include "nic/tx_path.hpp"

namespace hni {
namespace {

using atm::Gcra;

TEST(Gcra, ConformingStreamAtExactRatePasses) {
  Gcra g(sim::microseconds(10), 0);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(g.police(sim::microseconds(10) * i)) << i;
  }
}

TEST(Gcra, FasterThanContractRejected) {
  Gcra g(sim::microseconds(10), 0);
  EXPECT_TRUE(g.police(0));
  EXPECT_FALSE(g.police(sim::microseconds(5)));   // too early
  EXPECT_TRUE(g.police(sim::microseconds(10)));   // on time
}

TEST(Gcra, NonConformingCellEarnsNoCredit) {
  Gcra g(sim::microseconds(10), 0);
  EXPECT_TRUE(g.police(0));
  const sim::Time tat_before = g.tat();
  EXPECT_FALSE(g.police(sim::microseconds(1)));
  EXPECT_EQ(g.tat(), tat_before);  // state untouched by the violator
}

TEST(Gcra, CdvtToleratesJitter) {
  Gcra strict(sim::microseconds(10), 0);
  Gcra tolerant(sim::microseconds(10), sim::microseconds(3));
  EXPECT_TRUE(strict.police(0));
  EXPECT_TRUE(tolerant.police(0));
  // A cell 3 us early: rejected strictly, tolerated with CDVT >= 3 us.
  EXPECT_FALSE(strict.police(sim::microseconds(7)));
  EXPECT_TRUE(tolerant.police(sim::microseconds(7)));
}

TEST(Gcra, IdleStreamAccumulatesNoBurstCredit) {
  // After a long silence a GCRA(T, 0) still admits only one cell
  // immediately (TAT catches up to now, it does not fall behind).
  Gcra g(sim::microseconds(10), 0);
  EXPECT_TRUE(g.police(0));
  const sim::Time later = sim::milliseconds(5);
  EXPECT_TRUE(g.police(later));
  EXPECT_FALSE(g.police(later + sim::microseconds(1)));
}

TEST(Gcra, ForPcrComputesIncrement) {
  const Gcra g = Gcra::for_pcr(100000.0, 0);  // 100k cells/s
  EXPECT_EQ(g.increment(), sim::microseconds(10));
}

TEST(Gcra, ForPcrRoundsAwkwardPeriodsUp) {
  // Rates whose ideal period is non-integral in picoseconds: the
  // increment must round UP (never-faster-than-contract), within 1 ps.
  for (const double pcr : {300000.0, 353207.55, 106132.08, 7.0}) {
    const Gcra g = Gcra::for_pcr(pcr, 0);
    const double ideal = static_cast<double>(sim::kSecond) / pcr;
    EXPECT_GE(static_cast<double>(g.increment()), ideal) << pcr;
    EXPECT_LT(static_cast<double>(g.increment()), ideal + 1.0) << pcr;
  }
}

TEST(Gcra, ShapedStreamSurvivesExactRatePolicer) {
  // Regression: for_pcr used round-to-nearest, so at an awkward PCR the
  // shaper's period could round DOWN. A stream paced at that period
  // runs slightly faster than the contract, drifts ahead of an ideal
  // policer's TAT, and eventually gets dropped — a shaped stream
  // violating its own contract. With ceil this cannot happen.
  const double pcr = 300000.0;  // ideal period: 3333333.33... ps
  Gcra shaper = Gcra::for_pcr(pcr, 0);

  // Exact-rate policer with zero CDVT, run in long-double arithmetic so
  // its TAT carries the fractional picoseconds the integer clock
  // cannot.
  const long double ideal_t =
      static_cast<long double>(sim::kSecond) / static_cast<long double>(pcr);
  long double tat = 0.0L;
  std::uint64_t drops = 0;

  sim::Time now = 0;
  for (int i = 0; i < 200000; ++i) {  // ~0.67 s of cells
    if (!shaper.conforms(now)) now = shaper.eligible_at();
    shaper.commit(now);
    const auto t = static_cast<long double>(now);
    if (t < tat) {
      ++drops;  // violator earns no credit
    } else {
      tat = std::max(tat, t) + ideal_t;
    }
  }
  EXPECT_EQ(drops, 0u);
}

TEST(Gcra, EligibleAtTracksTat) {
  Gcra g(sim::microseconds(10), sim::microseconds(2));
  g.commit(0);
  EXPECT_EQ(g.eligible_at(), sim::microseconds(8));  // TAT 10 - tau 2
}

// --- transmit shaping -------------------------------------------------

struct TxFixture {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  nic::TxPath tx{sim, bus, mem, fw, nic::TxPathConfig{}, atm::sts3c()};
  std::vector<atm::Cell> wire;
  std::vector<sim::Time> times;

  TxFixture() {
    tx.framer().set_sink([this](const atm::Cell& c) {
      wire.push_back(c);
      times.push_back(sim.now());
    });
    tx.start();
  }

  nic::TxDescriptor descriptor(const aal::Bytes& sdu, atm::VcId vc) {
    nic::TxDescriptor d;
    d.sg = mem.stage(sdu);
    d.len = sdu.size();
    d.vc = vc;
    d.aal = aal::AalType::kAal5;
    return d;
  }
};

TEST(TxShaping, ShapedVcPacesToPcr) {
  TxFixture f;
  const atm::VcId vc{0, 1};
  // STS-3c carries ~353208 cells/s; shape to a tenth of that.
  f.tx.set_shaper(vc, 35320.8, 0);
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(2000, 1), vc)));
  f.sim.run_until(sim::milliseconds(5));

  ASSERT_EQ(f.wire.size(), aal::aal5_cell_count(2000));
  // Consecutive cells at least one shaper increment apart (28.31 us).
  for (std::size_t i = 1; i < f.times.size(); ++i) {
    EXPECT_GE(f.times[i] - f.times[i - 1], sim::microseconds(28)) << i;
  }
}

TEST(TxShaping, UnshapedVcFillsShaperGaps) {
  TxFixture f;
  const atm::VcId shaped{0, 1};
  const atm::VcId greedy{0, 2};
  f.tx.set_shaper(shaped, 35320.8, 0);
  ASSERT_TRUE(
      f.tx.post(f.descriptor(aal::make_pattern(2000, 1), shaped)));
  ASSERT_TRUE(
      f.tx.post(f.descriptor(aal::make_pattern(9180, 2), greedy)));
  f.sim.run_until(sim::milliseconds(5));

  // Both PDUs complete; line stays busy (greedy VC uses shaper gaps).
  std::size_t shaped_cells = 0, greedy_cells = 0;
  for (const auto& c : f.wire) {
    (c.header.vc == shaped ? shaped_cells : greedy_cells)++;
  }
  EXPECT_EQ(shaped_cells, aal::aal5_cell_count(2000));
  EXPECT_EQ(greedy_cells, aal::aal5_cell_count(9180));
  EXPECT_EQ(f.tx.pdus_sent(), 2u);
}

TEST(TxShaping, ClearShaperRestoresGreedyPacing) {
  TxFixture f;
  const atm::VcId vc{0, 1};
  f.tx.set_shaper(vc, 1000.0, 0);
  f.tx.clear_shaper(vc);
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(480, 1), vc)));
  f.sim.run_until(sim::milliseconds(5));
  ASSERT_GE(f.times.size(), 2u);
  // Unshaped: back-to-back at the cell slot (2.83 us), not 1 ms.
  EXPECT_LT(f.times[1] - f.times[0], sim::microseconds(10));
}

TEST(TxInterleave, SmallPduNotBlockedBehindHugeOne) {
  TxFixture f;
  const atm::VcId bulk{0, 1};
  const atm::VcId urgent{0, 2};
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(65535, 1), bulk)));
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(100, 2), urgent)));
  f.sim.run_until(sim::milliseconds(20));

  // Find when the urgent PDU's last cell left.
  sim::Time urgent_done = 0;
  for (std::size_t i = 0; i < f.wire.size(); ++i) {
    if (f.wire[i].header.vc == urgent) urgent_done = f.times[i];
  }
  ASSERT_GT(urgent_done, 0);
  // 65535 bytes = 1366 cells = 3.87 ms of wire; the 3-cell urgent PDU
  // must leave orders of magnitude earlier thanks to cell interleaving.
  EXPECT_LT(urgent_done, sim::microseconds(600));
  EXPECT_EQ(f.tx.pdus_sent(), 2u);
}

TEST(TxInterleave, CellsOfOneVcStayInOrder) {
  TxFixture f;
  const atm::VcId a{0, 1};
  const atm::VcId b{0, 2};
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(2000, 1), a)));
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(2000, 2), b)));
  ASSERT_TRUE(f.tx.post(f.descriptor(aal::make_pattern(2000, 3), a)));
  f.sim.run_until(sim::milliseconds(10));

  // Reassemble each VC's stream independently: ordering within a VC
  // must be intact even though the wire interleaves.
  aal::Aal5Reassembler rx_a, rx_b;
  std::vector<aal::Bytes> got_a, got_b;
  for (const auto& c : f.wire) {
    if (c.header.vc == a) {
      if (auto d = rx_a.push(c)) {
        ASSERT_EQ(d->error, aal::ReassemblyError::kNone);
        got_a.push_back(std::move(d->sdu));
      }
    } else if (auto d = rx_b.push(c)) {
      ASSERT_EQ(d->error, aal::ReassemblyError::kNone);
      got_b.push_back(std::move(d->sdu));
    }
  }
  ASSERT_EQ(got_a.size(), 2u);
  ASSERT_EQ(got_b.size(), 1u);
  EXPECT_EQ(got_a[0], aal::make_pattern(2000, 1));
  EXPECT_EQ(got_a[1], aal::make_pattern(2000, 3));
  EXPECT_EQ(got_b[0], aal::make_pattern(2000, 2));
}

// --- switch policing ---------------------------------------------------

net::WireCell wire_on(atm::VcId vc, bool clp = false) {
  atm::Cell c;
  c.header.vc = vc;
  c.header.clp = clp;
  net::WireCell w;
  w.bytes = c.serialize(atm::HeaderFormat::kUni);
  return w;
}

TEST(SwitchPolicing, DropActionShedsNonConforming) {
  sim::Simulator sim;
  net::Switch sw(sim, {.ports = 2, .queue_cells = 4096,
                       .clp_threshold = 4096});
  net::Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  std::size_t delivered = 0;
  out.set_sink([&](const net::WireCell&) { ++delivered; });
  // Contract: 10k cells/s. Offer a burst of 100 back-to-back cells.
  sw.add_policer(0, {0, 1}, 10000.0, 0,
                 net::Switch::PoliceAction::kDrop);
  for (int i = 0; i < 100; ++i) sw.receive(0, wire_on({0, 1}));
  sim.run_until(sim::seconds(1));
  // Only the first cell of the instantaneous burst conforms.
  EXPECT_EQ(sw.cells_policed_dropped(), 99u);
  EXPECT_EQ(delivered, 1u);
}

TEST(SwitchPolicing, ConformingStreamUntouched) {
  sim::Simulator sim;
  net::Switch sw(sim, {.ports = 2, .queue_cells = 64, .clp_threshold = 64});
  net::Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  std::size_t delivered = 0;
  out.set_sink([&](const net::WireCell&) { ++delivered; });
  sw.add_policer(0, {0, 1}, 10000.0, sim::microseconds(1),
                 net::Switch::PoliceAction::kDrop);
  for (int i = 0; i < 50; ++i) {
    sim.at(sim::microseconds(100) * i,
           [&sw] { sw.receive(0, wire_on({0, 1})); });
  }
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(sw.cells_policed_dropped(), 0u);
  EXPECT_EQ(delivered, 50u);
}

TEST(SwitchPolicing, TagActionSetsClp) {
  sim::Simulator sim;
  net::Switch sw(sim, {.ports = 2, .queue_cells = 4096,
                       .clp_threshold = 4096});
  net::Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  std::size_t clp_set = 0, total = 0;
  out.set_sink([&](const net::WireCell& w) {
    const auto h = atm::decode_header(
        std::span<const std::uint8_t, 4>(w.bytes.data(), 4),
        atm::HeaderFormat::kUni);
    ++total;
    if (h.clp) ++clp_set;
  });
  sw.add_policer(0, {0, 1}, 10000.0, 0, net::Switch::PoliceAction::kTag);
  for (int i = 0; i < 10; ++i) sw.receive(0, wire_on({0, 1}));
  sim.run_until(sim::seconds(1));
  EXPECT_EQ(total, 10u);      // tagging forwards everything...
  EXPECT_EQ(clp_set, 9u);     // ...but marks the violators
  EXPECT_EQ(sw.cells_policed_tagged(), 9u);
}

TEST(SwitchPolicing, TaggedCellsDieFirstUnderCongestion) {
  sim::Simulator sim;
  // CLP threshold far below queue size: tagged cells shed early.
  net::Switch sw(sim, {.ports = 2, .queue_cells = 64, .clp_threshold = 4});
  net::Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  out.set_sink([](const net::WireCell&) {});
  sw.add_policer(0, {0, 1}, 10000.0, 0, net::Switch::PoliceAction::kTag);
  for (int i = 0; i < 40; ++i) sw.receive(0, wire_on({0, 1}));
  sim.run_until(sim::seconds(1));
  EXPECT_GT(sw.cells_dropped_clp(), 0u);
  EXPECT_EQ(sw.cells_dropped_overflow(), 0u);
}

TEST(SwitchPolicing, EndToEndShapingAvoidsPolicerLoss) {
  // The payoff test: an unshaped greedy source loses most cells to a
  // strict policer; shaping the TX VC to the contract makes the same
  // transfer lossless.
  for (bool shaped : {false, true}) {
    core::Testbed bed;
    auto& a = bed.add_station({});
    auto& b = bed.add_station({});
    auto& sw = bed.add_switch(
        {.ports = 2, .queue_cells = 256, .clp_threshold = 256});
    bed.connect_to_switch(a, sw, 0);
    bed.connect_from_switch(sw, 1, b);
    const atm::VcId vc{0, 9};
    sw.add_route(0, vc, 1, vc);
    // Contract: a quarter of STS-3c.
    const double pcr = atm::sts3c().cells_per_second() / 4.0;
    sw.add_policer(0, vc, pcr, sim::microseconds(1),
                   net::Switch::PoliceAction::kDrop);
    a.nic().open_vc(vc, aal::AalType::kAal5);
    b.nic().open_vc(vc, aal::AalType::kAal5);
    if (shaped) a.nic().tx().set_shaper(vc, pcr);

    std::size_t ok = 0;
    b.host().set_rx_handler(
        [&](aal::Bytes s, const host::RxInfo&) {
          if (aal::verify_pattern(s)) ++ok;
        });
    for (int i = 0; i < 8; ++i) {
      a.host().send(vc, aal::AalType::kAal5, aal::make_pattern(9180, i));
    }
    bed.run_for(sim::milliseconds(80));

    if (shaped) {
      EXPECT_EQ(sw.cells_policed_dropped(), 0u);
      EXPECT_EQ(ok, 8u);
    } else {
      EXPECT_GT(sw.cells_policed_dropped(), 0u);
      EXPECT_LT(ok, 8u);
    }
  }
}

}  // namespace
}  // namespace hni
