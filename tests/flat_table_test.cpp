// Tests for the cache-compact VC state layer (sim/flat_table.hpp):
// randomized differential testing against std::unordered_map, the
// iteration contracts (sorted walk tolerates erase/insert), memory
// bounds under churn, probe-distribution regressions for the key
// patterns the data plane actually produces, and SlotArena lifetime.

#include "sim/flat_table.hpp"

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

namespace hni::sim {
namespace {

TEST(Mix64, AvalanchesLowAndHighBits) {
  // Keys differing in a single bit — low (vci) or high (port field of
  // a packed route label) — must land far apart.
  std::set<std::uint64_t> outs;
  for (int bit = 0; bit < 32; ++bit) {
    outs.insert(mix64(std::uint64_t{1} << bit));
  }
  outs.insert(mix64(0));
  EXPECT_EQ(outs.size(), 33u);  // no two single-bit keys collide
}

TEST(SlotArena, HandlesAreStableAndReused) {
  SlotArena<std::string> arena;
  const std::uint32_t a = arena.alloc("alpha");
  const std::uint32_t b = arena.alloc("beta");
  std::string* pa = &arena[a];
  // Growth (many more allocations) must not move existing records.
  std::vector<std::uint32_t> rest;
  for (int i = 0; i < 1000; ++i) rest.push_back(arena.alloc("x"));
  EXPECT_EQ(&arena[a], pa);
  EXPECT_EQ(arena[a], "alpha");
  // A freed slot is recycled before any new chunk is touched.
  arena.free(b);
  const std::size_t cap_before = arena.capacity();
  const std::uint32_t c = arena.alloc("gamma");
  EXPECT_EQ(c, b);
  EXPECT_EQ(arena.capacity(), cap_before);
  EXPECT_EQ(arena[c], "gamma");
  EXPECT_EQ(arena.size(), 1002u);
}

TEST(SlotArena, ClearDestroysLiveRecordsOnly) {
  // shared_ptr use-counts observe destructor calls: after free + clear
  // every record must have been destroyed exactly once.
  auto tracker = std::make_shared<int>(42);
  SlotArena<std::shared_ptr<int>> arena;
  const std::uint32_t a = arena.alloc(tracker);
  arena.alloc(tracker);
  arena.alloc(tracker);
  EXPECT_EQ(tracker.use_count(), 4);
  arena.free(a);
  EXPECT_EQ(tracker.use_count(), 3);
  arena.clear();
  EXPECT_EQ(tracker.use_count(), 1);
}

TEST(FlatMap, DifferentialAgainstUnorderedMap) {
  // Randomized op-for-op comparison with the reference container,
  // including a deliberately adversarial key range (dense sequential
  // labels, exactly what VC allocation produces).
  std::mt19937 rng(20260808);
  FlatMap<std::uint32_t, std::uint64_t> map;
  std::unordered_map<std::uint32_t, std::uint64_t> ref;
  std::uniform_int_distribution<std::uint32_t> key_dist(0, 4095);
  std::uniform_int_distribution<int> op_dist(0, 99);
  for (int step = 0; step < 200000; ++step) {
    const std::uint32_t key = key_dist(rng);
    const int op = op_dist(rng);
    if (op < 50) {  // insert-or-assign
      const std::uint64_t value = rng();
      map.insert(key, value);
      ref[key] = value;
    } else if (op < 75) {  // erase
      EXPECT_EQ(map.erase(key), ref.erase(key) > 0) << "step " << step;
    } else {  // find
      auto it = ref.find(key);
      const std::uint64_t* found = map.find(key).value;
      if (it == ref.end()) {
        EXPECT_EQ(found, nullptr) << "step " << step << " key " << key;
      } else {
        ASSERT_NE(found, nullptr) << "step " << step << " key " << key;
        EXPECT_EQ(*found, it->second) << "step " << step;
      }
    }
    EXPECT_EQ(map.size(), ref.size());
  }
  // Full sweep at the end: contents identical both ways.
  for (const auto& [k, v] : ref) {
    const std::uint64_t* found = map.find(k).value;
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(*found, v);
  }
  std::size_t visited = 0;
  map.for_each([&](std::uint32_t k, std::uint64_t& v) {
    ++visited;
    auto it = ref.find(k);
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(v, it->second);
  });
  EXPECT_EQ(visited, ref.size());
}

TEST(FlatMap, TryEmplaceSemantics) {
  FlatMap<std::uint32_t, int> map;
  auto [p1, inserted1] = map.try_emplace(7, 1);
  EXPECT_TRUE(inserted1);
  EXPECT_EQ(*p1, 1);
  auto [p2, inserted2] = map.try_emplace(7, 2);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(p2, p1);
  EXPECT_EQ(*p2, 1);  // existing record untouched
  map.insert(7, 3);
  EXPECT_EQ(*p1, 3);  // insert replaces in place — pointer still valid
}

TEST(FlatMap, RecordPointersSurviveUnrelatedChurn) {
  FlatMap<std::uint32_t, std::uint64_t> map;
  map.insert(42, 4242);
  std::uint64_t* p = map.find(42).value;
  ASSERT_NE(p, nullptr);
  // Thousands of unrelated inserts and erases force many index rehashes
  // and arena growth; the record must not move.
  for (std::uint32_t i = 0; i < 5000; ++i) map.insert(1000 + i, i);
  for (std::uint32_t i = 0; i < 5000; i += 2) map.erase(1000 + i);
  EXPECT_EQ(map.find(42).value, p);
  EXPECT_EQ(*p, 4242u);
}

TEST(FlatMap, SortedWalkIsAscendingAndTolerantOfErase) {
  FlatMap<std::uint32_t, int> map;
  for (std::uint32_t i = 0; i < 1000; ++i) map.insert(i * 7, 0);
  // Erase every third entry (including the current one) mid-walk, and
  // insert new entries; the walk must visit the surviving snapshot in
  // ascending order exactly once and never the new entries.
  std::vector<std::uint32_t> visited;
  map.for_each_sorted([&](std::uint32_t key, int&) {
    visited.push_back(key);
    if (key % 3 == 0) map.erase(key);    // sometimes erase *this* entry
    map.erase(key + 7);                  // erase the next snapshot key
    map.insert(1'000'000 + key, 1);      // never visited
  });
  // Every visit kills its successor, so the walk lands on exactly every
  // other snapshot key, in ascending order, and never on an insertion
  // made during the walk.
  ASSERT_EQ(visited.size(), 500u);
  for (std::size_t i = 0; i < visited.size(); ++i) {
    EXPECT_EQ(visited[i], static_cast<std::uint32_t>(i * 14));
  }
}

TEST(FlatMap, MemoryStaysBoundedUnderChurn) {
  // A window of 4k live entries churned 100k times: capacity must
  // reflect the window, not the total insert count (backward-shift
  // delete leaves no tombstones to rot the index; freed arena slots
  // are recycled).
  FlatMap<std::uint32_t, std::uint64_t> map;
  constexpr std::uint32_t kWindow = 4096;
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    map.insert(i, i);
    if (i >= kWindow) map.erase(i - kWindow);
  }
  EXPECT_EQ(map.size(), kWindow);
  // 7/8 ceiling on a power-of-two index: 4096 live entries need at
  // most an 8192-slot index; the arena at most the window plus one
  // chunk of slack.
  EXPECT_LE(map.index_capacity(), 8192u);
  const std::size_t bytes_per_entry = map.memory_bytes() / map.size();
  EXPECT_LT(bytes_per_entry, 128u);
}

TEST(FlatMap, ProbeDistributionForSequentialLabels) {
  // Regression for the weak-combiner bug: the old route key hash
  // (hash(vc) * 1315423911 ^ port) clustered sequential (port, vci)
  // labels. The splitmix64-mixed table must keep the *mean* probe
  // displacement near zero and the max small for exactly that pattern.
  FlatMap<std::uint32_t, int> map;
  std::vector<std::uint32_t> labels;
  for (std::uint32_t port = 0; port < 4; ++port) {
    for (std::uint32_t vci = 32; vci < 8224; ++vci) {
      labels.push_back((port << 24) | vci);
    }
  }
  for (const std::uint32_t label : labels) map.insert(label, 0);
  std::uint64_t total_probes = 0;
  std::uint32_t max_probes = 0;
  for (const std::uint32_t label : labels) {
    const auto found = map.find(label);
    ASSERT_NE(found.value, nullptr);
    total_probes += found.extra_probes;
    max_probes = std::max(max_probes, found.extra_probes);
  }
  const double mean = static_cast<double>(total_probes) /
                      static_cast<double>(labels.size());
  EXPECT_LT(mean, 1.5) << "sequential labels are probe-clustering";
  EXPECT_LE(max_probes, 16u);
}

TEST(FlatMap, ZeroKeyIsAnOrdinaryKey) {
  // dist1 (not a key sentinel) marks empty slots, so label 0 — VC 0/0,
  // a real identifier — must behave like any other key.
  FlatMap<std::uint32_t, int> map;
  EXPECT_EQ(map.find(0).value, nullptr);
  map.insert(0, 99);
  ASSERT_NE(map.find(0).value, nullptr);
  EXPECT_EQ(*map.find(0).value, 99);
  EXPECT_TRUE(map.erase(0));
  EXPECT_EQ(map.find(0).value, nullptr);
}

TEST(FlatMap, GrowsFromEmptyAndClears) {
  FlatMap<std::uint64_t, int> map;
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(1).value, nullptr);
  EXPECT_FALSE(map.erase(1));
  for (std::uint64_t i = 0; i < 100; ++i) map.insert(i << 32 | i, 1);
  EXPECT_EQ(map.size(), 100u);
  map.clear();
  EXPECT_EQ(map.size(), 0u);
  EXPECT_EQ(map.find(42).value, nullptr);
  map.insert(7, 7);  // usable again after clear
  EXPECT_EQ(*map.find(7).value, 7);
}

}  // namespace
}  // namespace hni::sim
