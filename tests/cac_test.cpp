// Connection admission control tests: the call agent's committed-
// capacity books, resource-unavailable refusals, endpoint
// retry-with-backoff, and reconciliation across agent crash-restart.

#include <gtest/gtest.h>

#include <optional>

#include "sig/network.hpp"

namespace hni {
namespace {

using sig::Cause;

// Three endpoints + agent on a 4-port switch (ports: alice 0, bob 1,
// carol 2, agent 3), mirroring sig_test's scenario but with CAC armed.
struct CacBed {
  core::Testbed bed;
  net::Switch& sw;
  core::Station& alice;
  core::Station& bob;
  core::Station& carol;
  sig::SignalingNetwork net;
  sig::CallControl& cc_alice;
  sig::CallControl& cc_bob;
  sig::CallControl& cc_carol;

  explicit CacBed(sig::SignalingConfig cfg)
      : sw(bed.add_switch({.ports = 4,
                           .queue_cells = 512,
                           .clp_threshold = 512})),
        alice(bed.add_station({.name = "alice"})),
        bob(bed.add_station({.name = "bob"})),
        carol(bed.add_station({.name = "carol"})),
        net(bed, sw, /*agent_port=*/3, cfg),
        cc_alice(net.attach(alice, 0, 1)),
        cc_bob(net.attach(bob, 1, 2)),
        cc_carol(net.attach(carol, 2, 3)) {
    cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
      return true;
    });
  }

  void expect_books_balanced() {
    auto auditor = bed.audit(/*include_hops=*/false);
    net.audit_invariants(auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.report();
  }
};

sig::SignalingConfig half_port_cac() {
  sig::SignalingConfig cfg;
  cfg.cac_utilization = 0.5;  // sts3c: ~176.6 kcells/s committable
  return cfg;
}

TEST(Cac, OversubscribedSetupRefusedWithResourceUnavailable) {
  CacBed s(half_port_cac());
  const double pcr = 100000.0;  // two of these exceed the 50% budget

  bool first_up = false;
  s.cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                        [&](const sig::CallControl::CallInfo&) {
                          first_up = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(first_up);
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(0), pcr);  // alice's leg
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(1), pcr);  // bob's leg

  // Bob's port can't carry a second 100k contract.
  std::optional<Cause> cause;
  s.cc_carol.place_call(
      2, aal::AalType::kAal5, pcr,
      [](const sig::CallControl::CallInfo&) { FAIL() << "admitted?"; },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kResourceUnavailable);
  EXPECT_EQ(s.net.calls_refused_cac(), 1u);
  // The refusal left no state behind: books unchanged, nothing stranded.
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(1), pcr);
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(2), 0.0);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  EXPECT_EQ(s.cc_carol.active_calls(), 0u);
  s.expect_books_balanced();
}

TEST(Cac, BestEffortCallsBypassAdmission) {
  CacBed s(half_port_cac());
  // Saturate bob's committed capacity...
  bool up = false;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 176000.0,
                        [&](const sig::CallControl::CallInfo&) {
                          up = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(up);
  // ...and a PCR-less (best effort) call still gets through: CAC only
  // polices contracted capacity.
  bool be_up = false;
  s.cc_carol.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo&) {
                          be_up = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  EXPECT_TRUE(be_up);
  EXPECT_EQ(s.net.calls_refused_cac(), 0u);
  s.expect_books_balanced();
}

TEST(Cac, BackoffRetrySucceedsWhenCapacityFrees) {
  sig::SignalingConfig cfg = half_port_cac();
  cfg.endpoint.setup_retry_limit = 4;
  cfg.endpoint.setup_retry_backoff = sim::milliseconds(2);
  CacBed s(cfg);
  const double pcr = 100000.0;

  std::optional<sig::CallControl::CallInfo> first;
  s.cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                        [&](const sig::CallControl::CallInfo& i) {
                          first = i;
                        });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(first.has_value());

  // Carol's SETUP is refused now, but retries on a doubling backoff.
  bool carol_up = false;
  bool carol_failed = false;
  s.cc_carol.place_call(
      2, aal::AalType::kAal5, pcr,
      [&](const sig::CallControl::CallInfo&) { carol_up = true; },
      [&](std::uint32_t, Cause) { carol_failed = true; });
  // Free the capacity while carol is backing off.
  s.bed.sim().after(sim::milliseconds(3), [&] {
    s.cc_alice.release(first->call_id);
  });
  s.bed.run_for(sim::milliseconds(40));

  EXPECT_TRUE(carol_up) << "retry-with-backoff left the call stranded";
  EXPECT_FALSE(carol_failed);
  EXPECT_GE(s.cc_carol.setup_backoff_retries(), 1u);
  EXPECT_GE(s.net.calls_refused_cac(), 1u);
  // Alice's contract released, carol's committed: one call's worth.
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(1), pcr);
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(0), 0.0);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  s.expect_books_balanced();
}

TEST(Cac, BackoffExhaustionFailsCleanly) {
  sig::SignalingConfig cfg = half_port_cac();
  cfg.endpoint.setup_retry_limit = 2;
  cfg.endpoint.setup_retry_backoff = sim::milliseconds(1);
  CacBed s(cfg);
  const double pcr = 150000.0;

  bool up = false;
  s.cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                        [&](const sig::CallControl::CallInfo&) {
                          up = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(up);

  // Nobody releases: carol's retries all hit the same wall and the
  // call fails with the CAC cause — cleanly, nothing half-open.
  std::optional<Cause> cause;
  s.cc_carol.place_call(
      2, aal::AalType::kAal5, pcr,
      [](const sig::CallControl::CallInfo&) { FAIL() << "admitted?"; },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(40));

  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kResourceUnavailable);
  EXPECT_EQ(s.cc_carol.setup_backoff_retries(), 2u);
  EXPECT_EQ(s.net.calls_refused_cac(), 3u);  // initial + both retries
  EXPECT_EQ(s.cc_carol.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 1u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  s.expect_books_balanced();
}

TEST(Cac, CrashRestartReconcilesCommittedCapacity) {
  sig::SignalingConfig cfg = half_port_cac();
  CacBed s(cfg);
  s.cc_carol.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });

  bool up1 = false, up2 = false;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 80000.0,
                        [&](const sig::CallControl::CallInfo&) {
                          up1 = true;
                        });
  s.cc_alice.place_call(3, aal::AalType::kAal5, 60000.0,
                        [&](const sig::CallControl::CallInfo&) {
                          up2 = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  ASSERT_TRUE(up1 && up2);
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(0), 140000.0);

  // The agent dies. Its volatile books die with it; endpoints are told
  // to clear, and the committed capacity must read zero — not the
  // pre-crash phantom that would refuse every future call.
  s.net.crash_restart();
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(0), 0.0);
  EXPECT_DOUBLE_EQ(s.net.committed_pcr(1), 0.0);
  s.bed.run_for(sim::milliseconds(20));  // RESTART handshake settles

  // Post-recovery the full budget is available again.
  bool up3 = false;
  s.cc_carol.place_call(2, aal::AalType::kAal5, 170000.0,
                        [&](const sig::CallControl::CallInfo&) {
                          up3 = true;
                        });
  s.bed.run_for(sim::milliseconds(5));
  EXPECT_TRUE(up3);
  EXPECT_EQ(s.net.calls_refused_cac(), 0u);
  s.expect_books_balanced();
}

}  // namespace
}  // namespace hni
