// Chaos soak: a seeded random fault schedule against every fault point
// at once, while real traffic flows. Asserts the three properties the
// fault layer promises:
//
//   1. Reproducibility — the same seed yields a bit-identical fault
//      schedule and bit-identical end-to-end statistics.
//   2. Integrity — whatever does get delivered verifies; faults may
//      lose PDUs, never corrupt them silently.
//   3. Conservation — after the storm the invariant auditor finds every
//      buffer, container and cell accounted for.
//
// A recovery-off run (watchdogs, retries and alarms disabled) under the
// same schedule measurably degrades goodput — the recovery paths, not
// luck, carry traffic through the faults.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/audit.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"

namespace hni {
namespace {

using aal::AalType;
using atm::VcId;

constexpr VcId kVc{0, 42};

struct ChaosOutcome {
  std::string fault_log;
  std::uint64_t faults_begun = 0;
  std::uint64_t received = 0;
  std::uint64_t bad = 0;
  std::uint64_t cells_rx = 0;
  std::uint64_t watchdog_resets = 0;
  std::uint64_t dma_retries = 0;
  bool audit_ok = false;
  std::string audit_report;
};

ChaosOutcome run_chaos(std::uint64_t seed, bool recovery) {
  core::StationConfig sc;
  if (!recovery) {
    sc.nic.tx.watchdog_interval = 0;
    sc.nic.rx.watchdog_interval = 0;
    sc.nic.ais_period = 0;
    sc.nic.tx.dma.max_retries = 0;
    sc.nic.rx.dma.max_retries = 0;
  }

  core::Testbed bed;
  auto& a = bed.add_station(sc);
  auto& b = bed.add_station(sc);
  auto links = bed.connect(a, b);
  net::Link* ab = links.first;
  a.nic().open_vc(kVc, AalType::kAal5);
  b.nic().open_vc(kVc, AalType::kAal5);

  ChaosOutcome out;
  b.host().set_rx_handler([&out](aal::Bytes sdu, const host::RxInfo&) {
    ++out.received;
    if (!aal::verify_pattern(sdu)) ++out.bad;
  });

  net::SduSource::Config tc;
  tc.mode = net::SduSource::Mode::kGreedy;
  tc.sdu_bytes = 4000;
  tc.count = 150;
  tc.seed = 7;
  net::SduSource source(bed.sim(), tc, [&](aal::Bytes sdu) {
    return a.host().send(kVc, AalType::kAal5, std::move(sdu));
  });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();

  sim::FaultInjector inj(bed.sim(), seed);
  inj.register_point("tx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      a.nic().tx().dma().fail_next(
          static_cast<std::uint64_t>(e.magnitude));
    }
  }, /*default_magnitude=*/2.0);
  inj.register_point("rx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().fail_next(
          static_cast<std::uint64_t>(e.magnitude));
    }
  }, 2.0);
  // Wedges clear only through the watchdog reset — that is the
  // recovery path under test; the fault's own end is ignored.
  inj.register_point("tx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.nic().tx().wedge_engine();
  });
  inj.register_point("rx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) b.nic().rx().wedge_engine();
  });
  inj.register_point("link.flap", [&](const sim::FaultEvent& e) {
    ab->set_down(e.phase == sim::FaultPhase::kBegin);
  });
  inj.register_point("board.squeeze", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().board_memory().set_capacity_limit(4);
    } else {
      b.nic().rx().board_memory().clear_capacity_limit();
    }
  });
  inj.register_point("bus.holdoff", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.bus().hold_off(e.duration);
  });
  inj.register_point("rx.dma.stall", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().stall(e.duration);
    }
  });

  inj.chaos(/*start=*/sim::milliseconds(2), /*horizon=*/sim::milliseconds(30),
            /*count=*/24, /*mean_duration=*/sim::microseconds(400));

  // Run well past the horizon so every fault ends, every watchdog and
  // alarm timer settles, and the wire drains (hop audits need quiet).
  bed.run_for(sim::milliseconds(120));

  out.fault_log = inj.log_string();
  out.faults_begun = inj.faults_begun();
  out.cells_rx = b.nic().rx().cells_received();
  out.watchdog_resets = a.nic().tx().watchdog_resets() +
                        b.nic().rx().watchdog_resets();
  out.dma_retries = a.nic().tx().dma().retries() +
                    b.nic().rx().dma().retries();
  auto audit = bed.audit(/*include_hops=*/true);
  out.audit_ok = audit.ok();
  out.audit_report = audit.report();
  return out;
}

TEST(Chaos, SoakSurvivesWithBooksBalanced) {
  const ChaosOutcome out = run_chaos(/*seed=*/1001, /*recovery=*/true);

  // The schedule actually stormed, and recovery actually worked.
  EXPECT_GE(out.faults_begun, 20u);
  EXPECT_GT(out.received, 0u);
  EXPECT_EQ(out.bad, 0u) << "a delivered SDU failed payload verification";
  EXPECT_TRUE(out.audit_ok) << out.audit_report;
}

TEST(Chaos, SameSeedSameScheduleSameStats) {
  const ChaosOutcome first = run_chaos(2002, true);
  const ChaosOutcome second = run_chaos(2002, true);

  EXPECT_EQ(first.fault_log, second.fault_log);
  EXPECT_EQ(first.received, second.received);
  EXPECT_EQ(first.cells_rx, second.cells_rx);
  EXPECT_EQ(first.watchdog_resets, second.watchdog_resets);
  EXPECT_EQ(first.dma_retries, second.dma_retries);
}

TEST(Chaos, DifferentSeedDifferentSchedule) {
  const ChaosOutcome first = run_chaos(3003, true);
  const ChaosOutcome second = run_chaos(3004, true);
  EXPECT_NE(first.fault_log, second.fault_log);
}

// --- Control-plane chaos -------------------------------------------
//
// The same discipline applied to signalling: call churn under seeded
// message loss, duplication, delay and agent crash-restarts. With the
// recovery machinery on (protocol timers + status audit) the network
// side must end the storm with zero active calls, zero stranded VCIs
// and zero stranded routes; the ablation (timers and audit off) leaks
// half-open state under the very same fault schedule.

struct SigChaosOutcome {
  std::string fault_log;
  std::uint64_t placed = 0;
  std::uint64_t connected = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t reclaimed = 0;
  std::uint64_t restarts_sent = 0;
  std::uint64_t tap_dropped = 0;
  std::size_t net_active = 0;
  std::size_t endpoint_active = 0;
  std::size_t stranded_vcis = 0;
  std::size_t stranded_routes = 0;
  bool audit_ok = false;
  std::string audit_report;
};

SigChaosOutcome run_sig_chaos(std::uint64_t seed, bool recovery) {
  sig::SignalingConfig cfg;
  cfg.fault_seed = seed * 31 + 7;
  if (!recovery) {
    cfg.endpoint.retransmit = false;  // no T303/T310/T308
    cfg.audit_period = 0;             // no status audit, no reclamation
  }

  core::Testbed bed;
  auto& sw = bed.add_switch(
      {.ports = 4, .queue_cells = 512, .clp_threshold = 512});
  auto& alice = bed.add_station({.name = "alice"});
  auto& bob = bed.add_station({.name = "bob"});
  auto& carol = bed.add_station({.name = "carol"});
  sig::SignalingNetwork net(bed, sw, /*agent_port=*/3, cfg);
  auto& cc_alice = net.attach(alice, 0, 1);
  auto& cc_bob = net.attach(bob, 1, 2);
  auto& cc_carol = net.attach(carol, 2, 3);
  auto accept_all = [](const sig::CallControl::CallInfo&) { return true; };
  cc_bob.set_incoming(accept_all);
  cc_carol.set_incoming(accept_all);

  // Baseline signalling loss on every sender for the whole run, on top
  // of the injector's scheduled bursts.
  cc_alice.tap().set_drop_rate(0.03);
  cc_bob.tap().set_drop_rate(0.03);
  cc_carol.tap().set_drop_rate(0.03);
  net.agent_tap().set_drop_rate(0.03);

  // Call churn: a new call every 250 us, held ~1 ms, then released —
  // several calls are always mid-handshake when a fault lands.
  sim::Rng churn(seed ^ 0xC0FFEE);
  int to_place = 96;
  std::function<void()> place = [&] {
    if (to_place-- <= 0) return;
    const std::uint16_t callee = churn.chance(0.5) ? 2 : 3;
    cc_alice.place_call(
        callee, aal::AalType::kAal5, 0.0,
        [&](const sig::CallControl::CallInfo& info) {
          const std::uint32_t id = info.call_id;
          bed.sim().after(sim::milliseconds(1),
                          [&, id] { cc_alice.release(id); });
        });
    bed.sim().after(sim::microseconds(250), place);
  };
  bed.sim().after(sim::milliseconds(1), place);

  sim::FaultInjector inj(bed.sim(), seed);
  inj.register_point("sig.alice.drop", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      cc_alice.tap().drop_next(static_cast<unsigned>(e.magnitude));
    }
  }, /*default_magnitude=*/2.0);
  inj.register_point("sig.bob.drop", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      cc_bob.tap().drop_next(static_cast<unsigned>(e.magnitude));
    }
  }, 2.0);
  inj.register_point("sig.agent.drop", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      net.agent_tap().drop_next(static_cast<unsigned>(e.magnitude));
    }
  }, 2.0);
  inj.register_point("sig.alice.dup", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) cc_alice.tap().duplicate_next(1);
  });
  inj.register_point("sig.agent.delay", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      net.agent_tap().delay_next(1, e.duration);
    }
  });
  inj.register_point("agent.crash", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) net.crash_restart();
  });
  inj.chaos(/*start=*/sim::milliseconds(2), /*horizon=*/sim::milliseconds(20),
            /*count=*/24, /*mean_duration=*/sim::microseconds(200));

  // Churn ends ~25 ms in; run far past it so bounded retransmissions
  // settle and the audit gets many rounds to reclaim what the losses
  // half-opened.
  bed.run_for(sim::milliseconds(80));

  SigChaosOutcome out;
  out.fault_log = inj.log_string();
  out.placed = cc_alice.calls_placed();
  out.connected = cc_alice.calls_connected();
  out.retransmits = cc_alice.retransmits() + cc_bob.retransmits() +
                    cc_carol.retransmits();
  out.reclaimed = net.calls_reclaimed() + cc_alice.calls_reclaimed() +
                  cc_bob.calls_reclaimed() + cc_carol.calls_reclaimed();
  out.restarts_sent = net.restarts_sent();
  out.tap_dropped = cc_alice.tap().dropped() + cc_bob.tap().dropped() +
                    cc_carol.tap().dropped() + net.agent_tap().dropped();
  out.net_active = net.active_calls();
  out.endpoint_active = cc_alice.active_calls() + cc_bob.active_calls() +
                        cc_carol.active_calls();
  out.stranded_vcis = net.stranded_vcis();
  out.stranded_routes = net.stranded_routes();
  auto audit = bed.audit(/*include_hops=*/true);
  net.audit_invariants(audit);
  out.audit_ok = audit.ok();
  out.audit_report = audit.report();
  return out;
}

TEST(SigChaos, SignalingSoakLeavesNothingStranded) {
  const SigChaosOutcome out = run_sig_chaos(/*seed=*/4004, /*recovery=*/true);

  // The storm was real: messages died, timers fired, the audit and the
  // restart machinery all did work.
  EXPECT_EQ(out.placed, 96u);
  EXPECT_GT(out.tap_dropped, 0u);
  EXPECT_GT(out.retransmits, 0u);
  EXPECT_GT(out.connected, 0u);

  // And the control plane came out clean: no half-open calls at the
  // agent, no VCI or route leaked, every conservation book balanced.
  EXPECT_EQ(out.net_active, 0u);
  EXPECT_EQ(out.stranded_vcis, 0u);
  EXPECT_EQ(out.stranded_routes, 0u);
  EXPECT_TRUE(out.audit_ok) << out.audit_report;
}

TEST(SigChaos, SameSeedSameScheduleSameBooks) {
  const SigChaosOutcome first = run_sig_chaos(5005, true);
  const SigChaosOutcome second = run_sig_chaos(5005, true);

  EXPECT_EQ(first.fault_log, second.fault_log);
  EXPECT_EQ(first.connected, second.connected);
  EXPECT_EQ(first.retransmits, second.retransmits);
  EXPECT_EQ(first.reclaimed, second.reclaimed);
  EXPECT_EQ(first.restarts_sent, second.restarts_sent);
  EXPECT_EQ(first.tap_dropped, second.tap_dropped);
  EXPECT_EQ(first.endpoint_active, second.endpoint_active);
}

TEST(SigChaos, RecoveryOffLeaksHalfOpenState) {
  const SigChaosOutcome with = run_sig_chaos(4004, /*recovery=*/true);
  const SigChaosOutcome without = run_sig_chaos(4004, /*recovery=*/false);

  // Same scheduled fault storm either way.
  EXPECT_EQ(with.fault_log, without.fault_log);

  // Without timers and audit, lost handshake messages strand state
  // that nothing ever cleans up; with them the network side is empty.
  EXPECT_EQ(with.net_active, 0u);
  EXPECT_GT(without.net_active + without.endpoint_active, 0u)
      << "ablation lost nothing — the storm was too gentle to matter";
  EXPECT_LT(without.connected, without.placed);
  EXPECT_GT(with.connected, without.connected);
}

TEST(Chaos, RecoveryOffMeasurablyDegradesGoodput) {
  const ChaosOutcome with = run_chaos(1001, /*recovery=*/true);
  const ChaosOutcome without = run_chaos(1001, /*recovery=*/false);

  // Same fault schedule both times (the injector's draws do not depend
  // on the station configuration).
  EXPECT_EQ(with.fault_log, without.fault_log);

  // Recovery-off still keeps its books straight — the accounting is
  // part of the datapath, not of the recovery machinery.
  EXPECT_TRUE(without.audit_ok) << without.audit_report;
  EXPECT_EQ(without.bad, 0u);

  // But a permanently wedged engine / unretried DMA faults cost real
  // goodput: require at least 20% more delivered with recovery on.
  EXPECT_GE(with.received * 10, without.received * 12)
      << "with=" << with.received << " without=" << without.received;
}

}  // namespace
}  // namespace hni
