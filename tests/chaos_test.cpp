// Chaos soak: a seeded random fault schedule against every fault point
// at once, while real traffic flows. Asserts the three properties the
// fault layer promises:
//
//   1. Reproducibility — the same seed yields a bit-identical fault
//      schedule and bit-identical end-to-end statistics.
//   2. Integrity — whatever does get delivered verifies; faults may
//      lose PDUs, never corrupt them silently.
//   3. Conservation — after the storm the invariant auditor finds every
//      buffer, container and cell accounted for.
//
// A recovery-off run (watchdogs, retries and alarms disabled) under the
// same schedule measurably degrades goodput — the recovery paths, not
// luck, carry traffic through the faults.

#include <gtest/gtest.h>

#include <string>

#include "core/audit.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sim/fault.hpp"

namespace hni {
namespace {

using aal::AalType;
using atm::VcId;

constexpr VcId kVc{0, 42};

struct ChaosOutcome {
  std::string fault_log;
  std::uint64_t faults_begun = 0;
  std::uint64_t received = 0;
  std::uint64_t bad = 0;
  std::uint64_t cells_rx = 0;
  std::uint64_t watchdog_resets = 0;
  std::uint64_t dma_retries = 0;
  bool audit_ok = false;
  std::string audit_report;
};

ChaosOutcome run_chaos(std::uint64_t seed, bool recovery) {
  core::StationConfig sc;
  if (!recovery) {
    sc.nic.tx.watchdog_interval = 0;
    sc.nic.rx.watchdog_interval = 0;
    sc.nic.ais_period = 0;
    sc.nic.tx.dma.max_retries = 0;
    sc.nic.rx.dma.max_retries = 0;
  }

  core::Testbed bed;
  auto& a = bed.add_station(sc);
  auto& b = bed.add_station(sc);
  auto links = bed.connect(a, b);
  net::Link* ab = links.first;
  a.nic().open_vc(kVc, AalType::kAal5);
  b.nic().open_vc(kVc, AalType::kAal5);

  ChaosOutcome out;
  b.host().set_rx_handler([&out](aal::Bytes sdu, const host::RxInfo&) {
    ++out.received;
    if (!aal::verify_pattern(sdu)) ++out.bad;
  });

  net::SduSource::Config tc;
  tc.mode = net::SduSource::Mode::kGreedy;
  tc.sdu_bytes = 4000;
  tc.count = 150;
  tc.seed = 7;
  net::SduSource source(bed.sim(), tc, [&](aal::Bytes sdu) {
    return a.host().send(kVc, AalType::kAal5, std::move(sdu));
  });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();

  sim::FaultInjector inj(bed.sim(), seed);
  inj.register_point("tx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      a.nic().tx().dma().fail_next(
          static_cast<std::uint64_t>(e.magnitude));
    }
  }, /*default_magnitude=*/2.0);
  inj.register_point("rx.dma.fail", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().fail_next(
          static_cast<std::uint64_t>(e.magnitude));
    }
  }, 2.0);
  // Wedges clear only through the watchdog reset — that is the
  // recovery path under test; the fault's own end is ignored.
  inj.register_point("tx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.nic().tx().wedge_engine();
  });
  inj.register_point("rx.engine.wedge", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) b.nic().rx().wedge_engine();
  });
  inj.register_point("link.flap", [&](const sim::FaultEvent& e) {
    ab->set_down(e.phase == sim::FaultPhase::kBegin);
  });
  inj.register_point("board.squeeze", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().board_memory().set_capacity_limit(4);
    } else {
      b.nic().rx().board_memory().clear_capacity_limit();
    }
  });
  inj.register_point("bus.holdoff", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) a.bus().hold_off(e.duration);
  });
  inj.register_point("rx.dma.stall", [&](const sim::FaultEvent& e) {
    if (e.phase == sim::FaultPhase::kBegin) {
      b.nic().rx().dma().stall(e.duration);
    }
  });

  inj.chaos(/*start=*/sim::milliseconds(2), /*horizon=*/sim::milliseconds(30),
            /*count=*/24, /*mean_duration=*/sim::microseconds(400));

  // Run well past the horizon so every fault ends, every watchdog and
  // alarm timer settles, and the wire drains (hop audits need quiet).
  bed.run_for(sim::milliseconds(120));

  out.fault_log = inj.log_string();
  out.faults_begun = inj.faults_begun();
  out.cells_rx = b.nic().rx().cells_received();
  out.watchdog_resets = a.nic().tx().watchdog_resets() +
                        b.nic().rx().watchdog_resets();
  out.dma_retries = a.nic().tx().dma().retries() +
                    b.nic().rx().dma().retries();
  auto audit = bed.audit(/*include_hops=*/true);
  out.audit_ok = audit.ok();
  out.audit_report = audit.report();
  return out;
}

TEST(Chaos, SoakSurvivesWithBooksBalanced) {
  const ChaosOutcome out = run_chaos(/*seed=*/1001, /*recovery=*/true);

  // The schedule actually stormed, and recovery actually worked.
  EXPECT_GE(out.faults_begun, 20u);
  EXPECT_GT(out.received, 0u);
  EXPECT_EQ(out.bad, 0u) << "a delivered SDU failed payload verification";
  EXPECT_TRUE(out.audit_ok) << out.audit_report;
}

TEST(Chaos, SameSeedSameScheduleSameStats) {
  const ChaosOutcome first = run_chaos(2002, true);
  const ChaosOutcome second = run_chaos(2002, true);

  EXPECT_EQ(first.fault_log, second.fault_log);
  EXPECT_EQ(first.received, second.received);
  EXPECT_EQ(first.cells_rx, second.cells_rx);
  EXPECT_EQ(first.watchdog_resets, second.watchdog_resets);
  EXPECT_EQ(first.dma_retries, second.dma_retries);
}

TEST(Chaos, DifferentSeedDifferentSchedule) {
  const ChaosOutcome first = run_chaos(3003, true);
  const ChaosOutcome second = run_chaos(3004, true);
  EXPECT_NE(first.fault_log, second.fault_log);
}

TEST(Chaos, RecoveryOffMeasurablyDegradesGoodput) {
  const ChaosOutcome with = run_chaos(1001, /*recovery=*/true);
  const ChaosOutcome without = run_chaos(1001, /*recovery=*/false);

  // Same fault schedule both times (the injector's draws do not depend
  // on the station configuration).
  EXPECT_EQ(with.fault_log, without.fault_log);

  // Recovery-off still keeps its books straight — the accounting is
  // part of the datapath, not of the recovery machinery.
  EXPECT_TRUE(without.audit_ok) << without.audit_report;
  EXPECT_EQ(without.bad, 0u);

  // But a permanently wedged engine / unretried DMA faults cost real
  // goodput: require at least 20% more delivered with recovery on.
  EXPECT_GE(with.received * 10, without.received * 12)
      << "with=" << with.received << " without=" << without.received;
}

}  // namespace
}  // namespace hni
