// ATM cell header codec tests: field packing, both header formats,
// serialization roundtrips, and the PTI helpers.

#include <gtest/gtest.h>

#include "atm/cell.hpp"
#include "atm/hec.hpp"

namespace hni::atm {
namespace {

TEST(CellHeader, UniRoundtrip) {
  CellHeader h;
  h.gfc = 0xA;
  h.vc = {0x5C, 0xBEEF};
  h.pti = Pti::kUserData1;
  h.clp = true;
  std::array<std::uint8_t, 4> raw{};
  encode_header(h, HeaderFormat::kUni, raw);
  const CellHeader back = decode_header(raw, HeaderFormat::kUni);
  EXPECT_EQ(back, h);
}

TEST(CellHeader, NniRoundtripWideVpi) {
  CellHeader h;
  h.vc = {0xABC, 0x1234};  // 12-bit VPI only representable at NNI
  h.pti = Pti::kOamSegment;
  std::array<std::uint8_t, 4> raw{};
  encode_header(h, HeaderFormat::kNni, raw);
  const CellHeader back = decode_header(raw, HeaderFormat::kNni);
  EXPECT_EQ(back.vc, h.vc);
  EXPECT_EQ(back.pti, h.pti);
  EXPECT_EQ(back.gfc, 0);
}

TEST(CellHeader, FieldWidthViolationsThrow) {
  std::array<std::uint8_t, 4> raw{};
  CellHeader h;
  h.gfc = 0x10;  // 5 bits
  EXPECT_THROW(encode_header(h, HeaderFormat::kUni, raw), std::out_of_range);
  h.gfc = 0;
  h.vc.vpi = 0x100;  // 9 bits: too wide for UNI
  EXPECT_THROW(encode_header(h, HeaderFormat::kUni, raw), std::out_of_range);
  // ...but fine for NNI.
  EXPECT_NO_THROW(encode_header(h, HeaderFormat::kNni, raw));
  h.vc.vpi = 0x1000;  // 13 bits: too wide even for NNI
  EXPECT_THROW(encode_header(h, HeaderFormat::kNni, raw), std::out_of_range);
}

TEST(CellHeader, KnownBitLayout) {
  // GFC=0, VPI=1, VCI=5, PTI=0, CLP=0 (UNI):
  //   octet0 = 0000 0000, octet1 = 0001 0000, octet2 = 0000 0000,
  //   octet3 = 0101 0000
  CellHeader h;
  h.vc = {1, 5};
  std::array<std::uint8_t, 4> raw{};
  encode_header(h, HeaderFormat::kUni, raw);
  EXPECT_EQ(raw[0], 0x00);
  EXPECT_EQ(raw[1], 0x10);
  EXPECT_EQ(raw[2], 0x00);
  EXPECT_EQ(raw[3], 0x50);
}

TEST(Pti, UserDataAndAuu) {
  EXPECT_TRUE(pti_is_user_data(Pti::kUserData0));
  EXPECT_TRUE(pti_is_user_data(Pti::kUserDataCong1));
  EXPECT_FALSE(pti_is_user_data(Pti::kOamSegment));
  EXPECT_FALSE(pti_is_user_data(Pti::kResourceMgmt));
  EXPECT_FALSE(pti_auu(Pti::kUserData0));
  EXPECT_TRUE(pti_auu(Pti::kUserData1));
  EXPECT_TRUE(pti_auu(Pti::kUserDataCong1));
  EXPECT_FALSE(pti_auu(Pti::kOamEndToEnd));  // AUU only for user data
}

TEST(Cell, SerializeRoundtripPreservesEverything) {
  Cell cell;
  cell.header.vc = {3, 77};
  cell.header.pti = Pti::kUserData1;
  cell.header.clp = true;
  for (std::size_t i = 0; i < kPayloadSize; ++i) {
    cell.payload[i] = static_cast<std::uint8_t>(i * 7 + 1);
  }
  const auto wire = cell.serialize(HeaderFormat::kUni);
  ASSERT_EQ(wire.size(), kCellSize);
  const Cell back = Cell::deserialize(wire, HeaderFormat::kUni);
  EXPECT_EQ(back.header, cell.header);
  EXPECT_EQ(back.payload, cell.payload);
}

TEST(Cell, SerializeWritesValidHec) {
  Cell cell;
  cell.header.vc = {9, 1234};
  const auto wire = cell.serialize(HeaderFormat::kUni);
  EXPECT_TRUE(hec_check(
      std::span<const std::uint8_t, 4>(wire.data(), 4), wire[4]));
}

TEST(VcId, EqualityAndOrdering) {
  EXPECT_EQ((VcId{1, 2}), (VcId{1, 2}));
  EXPECT_NE((VcId{1, 2}), (VcId{1, 3}));
  EXPECT_LT((VcId{1, 2}), (VcId{2, 0}));
  EXPECT_EQ((VcId{4, 42}).to_string(), "4/42");
}

TEST(VcId, HashSpreadsVpiAndVci) {
  const std::size_t h1 = std::hash<VcId>{}(VcId{0, 1});
  const std::size_t h2 = std::hash<VcId>{}(VcId{1, 0});
  EXPECT_NE(h1, h2);
}

TEST(VcId, LabelPacksVpiAndVciLosslessly) {
  // The packed 32-bit label is the data plane's key; VPI and VCI must
  // each keep their full field width. Boundary values for both header
  // formats: UNI VPI tops out at 255, NNI at 4095, VCI at 65535.
  const VcId cases[] = {
      {0, 0},           {0, 1},           {1, 0},
      {kMaxUniVpi, 0},  {kMaxUniVpi, 0xFFFF},
      {kMaxNniVpi, 0},  {kMaxNniVpi, 0xFFFF},
      {0, 0xFFFF},      {kMaxUniVpi + 1, 1},
  };
  for (const VcId& vc : cases) {
    const std::uint32_t label = vc_label(vc);
    EXPECT_EQ(vc_from_label(label), vc) << vc.to_string();
    EXPECT_EQ(label >> 16, vc.vpi) << vc.to_string();
    EXPECT_EQ(label & 0xFFFFu, vc.vci) << vc.to_string();
  }
}

TEST(VcId, LabelsDistinctAcrossFieldBoundaries) {
  // The classic packing bug: vpi and vci folding into the same bits so
  // {1,0} and {0,65536-ish} alias. Adjacent boundary pairs must map to
  // distinct labels.
  EXPECT_NE(vc_label({1, 0}), vc_label({0, 1}));
  EXPECT_NE(vc_label({1, 0}), vc_label({0, 0xFFFF}));
  EXPECT_NE(vc_label({kMaxUniVpi, 0xFFFF}), vc_label({kMaxUniVpi + 1, 0}));
  EXPECT_NE(vc_label({kMaxNniVpi, 0}), vc_label({kMaxNniVpi - 1, 0xFFFF}));
}

// Exhaustive-ish roundtrip sweep across the field space.
struct HeaderCase {
  std::uint8_t gfc;
  std::uint16_t vpi;
  std::uint16_t vci;
  std::uint8_t pti;
  bool clp;
};

class HeaderRoundtrip : public ::testing::TestWithParam<HeaderCase> {};

TEST_P(HeaderRoundtrip, Uni) {
  const HeaderCase& c = GetParam();
  if (c.vpi > 0xFF) GTEST_SKIP() << "VPI too wide for UNI";
  CellHeader h{c.gfc, {c.vpi, c.vci}, static_cast<Pti>(c.pti), c.clp};
  std::array<std::uint8_t, 4> raw{};
  encode_header(h, HeaderFormat::kUni, raw);
  EXPECT_EQ(decode_header(raw, HeaderFormat::kUni), h);
}

TEST_P(HeaderRoundtrip, Nni) {
  const HeaderCase& c = GetParam();
  CellHeader h{0, {c.vpi, c.vci}, static_cast<Pti>(c.pti), c.clp};
  std::array<std::uint8_t, 4> raw{};
  encode_header(h, HeaderFormat::kNni, raw);
  EXPECT_EQ(decode_header(raw, HeaderFormat::kNni), h);
}

INSTANTIATE_TEST_SUITE_P(
    FieldSweep, HeaderRoundtrip,
    ::testing::Values(
        HeaderCase{0, 0, 0, 0, false}, HeaderCase{0xF, 0xFF, 0xFFFF, 7, true},
        HeaderCase{1, 1, 1, 1, false}, HeaderCase{8, 0x80, 0x8000, 4, true},
        HeaderCase{5, 0x23, 0xABCD, 3, false},
        HeaderCase{2, 0xFFF, 0x5555, 6, true},
        HeaderCase{0, 0x3A, 0x0101, 2, true},
        HeaderCase{7, 0x7F, 0xFFFE, 5, false}));

}  // namespace
}  // namespace hni::atm
