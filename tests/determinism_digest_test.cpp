// Golden-determinism digests: same-seed scenarios must stay
// byte-identical across kernel changes.
//
// Each canonical scenario runs with the tracer armed; every trace
// event (the full wire-level event order) and a telemetry snapshot are
// folded into a single FNV-1a digest. The digest is compared against a
// committed golden file in tests/golden/ — any change to event
// ordering, loss draws, or counter arithmetic shows up as a digest
// mismatch, which is exactly the alarm we want when touching the event
// kernel: the (time, insertion-seq) contract makes these bytes part of
// the public behaviour.
//
// Regenerating (only after an *intentional* behaviour change, with the
// diff reviewed):
//
//   HNI_UPDATE_GOLDEN=1 ./build/tests/determinism_digest_test
//
// then commit the rewritten tests/golden/*.digest files.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"

#ifndef HNI_GOLDEN_DIR
#error "HNI_GOLDEN_DIR must point at tests/golden"
#endif

namespace hni {
namespace {

// --- FNV-1a 64-bit over typed words ---------------------------------

class Digest {
 public:
  void fold(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ull;
    }
  }
  void fold_double(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    fold(bits);
  }
  void fold_string(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ull;
    }
  }

  std::string hex() const {
    std::ostringstream out;
    out << "fnv1a64:" << std::hex;
    out.width(16);
    out.fill('0');
    out << hash_;
    return out.str();
  }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

void fold_trace(Digest& d, const std::vector<sim::TraceEvent>& events) {
  d.fold(events.size());
  for (const sim::TraceEvent& ev : events) {
    d.fold(static_cast<std::uint64_t>(ev.when));
    d.fold(static_cast<std::uint64_t>(ev.id) << 32 |
           static_cast<std::uint64_t>(ev.source));
    d.fold(static_cast<std::uint64_t>(ev.a) << 32 |
           static_cast<std::uint64_t>(ev.b));
    d.fold(ev.seq);
  }
}

// --- Canonical scenarios --------------------------------------------
//
// Both arm the testbed tracer, run a P2P workload, and digest the
// complete trace stream + the full telemetry snapshot + the kernel's
// own books. Parameters are frozen: changing them invalidates the
// goldens by design.

struct ScenarioOutput {
  std::string digest;
  std::uint64_t trace_events = 0;
  std::uint64_t kernel_events = 0;
};

// Scenario 3: a protected multi-switch fabric riding out a trunk flap.
// Exercises the whole resilience event vocabulary — OAM continuity
// heartbeats, switch AIS insertion, endpoint defect reports, the
// protection reroute and the wait-to-restore revert — so any
// nondeterminism in those paths lands in the digest.
ScenarioOutput run_tandem_protection() {
  core::Testbed bed;
  std::vector<sim::TraceEvent> trace;
  bed.tracer().collect_into(trace);

  net::SwitchConfig swc{.ports = 4, .queue_cells = 512,
                        .clp_threshold = 512};
  net::Switch& sw0 = bed.add_switch(swc);
  net::Switch& sw1 = bed.add_switch(swc);
  net::Switch& sw2 = bed.add_switch(swc);
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  sig::SignalingNetwork net(bed, {&sw0, &sw1, &sw2},
                            /*agent_switch=*/0, /*agent_port=*/3, cfg);
  const std::size_t t0 = net.add_trunk(0, 1, 1, 1);  // primary
  net.add_trunk(0, 2, 2, 0);
  net.add_trunk(2, 1, 1, 2);

  core::StationConfig sc;
  sc.nic.cc.enabled = true;
  sc.name = "tx";
  core::Station& a = bed.add_station(sc);
  sc.name = "rx";
  core::Station& b = bed.add_station(sc);
  sig::CallControl& cca = net.attach(a, /*sw=*/0, /*port=*/0, /*party=*/1);
  sig::CallControl& ccb = net.attach(b, /*sw=*/1, /*port=*/0, /*party=*/2);
  ccb.set_incoming([](const sig::CallControl::CallInfo&) { return true; });

  std::optional<atm::VcId> vc;
  cca.place_call(2, aal::AalType::kAal5, 0.0,
                 [&vc](const sig::CallControl::CallInfo& i) { vc = i.vc; });
  bed.run_for(sim::milliseconds(2));

  std::uint64_t received = 0;
  std::uint64_t pattern_failures = 0;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    ++received;
    if (!aal::verify_pattern(sdu)) ++pattern_failures;
  });
  net::SduSource::Config traffic;
  traffic.mode = net::SduSource::Mode::kCbr;
  traffic.sdu_bytes = 1500;
  traffic.interval = sim::microseconds(200);
  traffic.seed = 13;
  net::SduSource source(bed.sim(), traffic, [&](aal::Bytes sdu) {
    return a.host().send(*vc, aal::AalType::kAal5, std::move(sdu));
  });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();

  // One full failure/recovery cycle on the primary trunk: the flap is
  // longer than the holdoff (reroute fires) and the recovery outlasts
  // the wait-to-restore (revert fires).
  const auto [ab, ba] = net.trunk_links(t0);
  bed.sim().after(sim::milliseconds(3), [ab, ba] {
    ab->set_down(true);
    ba->set_down(true);
  });
  bed.sim().after(sim::milliseconds(6), [ab, ba] {
    ab->set_down(false);
    ba->set_down(false);
  });
  bed.run_for(sim::milliseconds(12));

  Digest d;
  fold_trace(d, trace);
  d.fold_string(bed.metrics().to_json());
  d.fold(bed.sim().events_fired());
  d.fold(static_cast<std::uint64_t>(bed.now()));
  d.fold(received);
  d.fold(pattern_failures);
  d.fold(net.reroutes());
  d.fold(net.reverts());
  d.fold(net.stranded_vcis());
  d.fold(net.stranded_routes());

  ScenarioOutput out;
  out.digest = d.hex();
  out.trace_events = trace.size();
  out.kernel_events = bed.sim().events_fired();
  return out;
}

ScenarioOutput run_canonical(const char* name) {
  if (std::string(name) == "tandem-protection") {
    return run_tandem_protection();
  }
  core::Testbed bed;
  std::vector<sim::TraceEvent> trace;
  bed.tracer().collect_into(trace);

  core::StationConfig sc;
  sc.name = "tx";
  core::Station& a = bed.add_station(sc);
  sc.name = "rx";
  core::Station& b = bed.add_station(sc);

  const atm::VcId vc{0, 100};
  net::SduSource::Config traffic;
  net::LossModel loss;
  const bool lossy = std::string(name) == "p2p-lossy-poisson";
  if (lossy) {
    // Scenario 1: Poisson arrivals over a bursty-loss, jittery link.
    traffic.mode = net::SduSource::Mode::kPoisson;
    traffic.sdu_bytes = 2000;
    traffic.interval = sim::microseconds(300);
    traffic.seed = 7;
    loss.cell_loss_rate = 0.001;
    loss.mean_burst_cells = 3.0;
    loss.cdv_jitter = sim::microseconds(2);
  } else {
    // Scenario 2: CBR over a clean link — pure FIFO-ordering workload.
    traffic.mode = net::SduSource::Mode::kCbr;
    traffic.sdu_bytes = 4096;
    traffic.interval = sim::microseconds(500);
    traffic.seed = 11;
  }
  bed.connect(a, b, loss, sim::microseconds(5));
  a.nic().open_vc(vc, aal::AalType::kAal5);
  b.nic().open_vc(vc, aal::AalType::kAal5);

  std::uint64_t received = 0;
  std::uint64_t pattern_failures = 0;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    ++received;
    if (!aal::verify_pattern(sdu)) ++pattern_failures;
  });
  net::SduSource source(bed.sim(), traffic, [&](aal::Bytes sdu) {
    return a.host().send(vc, aal::AalType::kAal5, std::move(sdu));
  });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();
  bed.run_for(sim::milliseconds(10));

  Digest d;
  fold_trace(d, trace);
  // Telemetry snapshot: every counter and gauge in the scenario, in
  // registration order, names included (a renamed or vanished
  // instrument is a behaviour change too).
  d.fold_string(bed.metrics().to_json());
  // Kernel books and endpoint truths.
  d.fold(bed.sim().events_fired());
  d.fold(static_cast<std::uint64_t>(bed.now()));
  d.fold(received);
  d.fold(pattern_failures);

  ScenarioOutput out;
  out.digest = d.hex();
  out.trace_events = trace.size();
  out.kernel_events = bed.sim().events_fired();
  return out;
}

// --- Golden-file plumbing -------------------------------------------

std::string golden_path(const std::string& name) {
  return std::string(HNI_GOLDEN_DIR) + "/" + name + ".digest";
}

std::string read_golden(const std::string& name) {
  std::ifstream in(golden_path(name));
  std::string line;
  std::getline(in, line);
  return line;
}

bool update_mode() {
  const char* env = std::getenv("HNI_UPDATE_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

void check_scenario(const char* name) {
  const ScenarioOutput first = run_canonical(name);
  const ScenarioOutput second = run_canonical(name);

  // In-process reproducibility: two same-seed runs, byte-identical
  // trace + telemetry, independent of any committed file.
  ASSERT_EQ(first.digest, second.digest)
      << "scenario '" << name << "' is not deterministic in-process";
  ASSERT_GT(first.trace_events, 0u) << "tracer captured nothing";

  if (update_mode()) {
    std::ofstream out(golden_path(name));
    out << first.digest << "\n";
    ASSERT_TRUE(out.good()) << "failed writing " << golden_path(name);
    GTEST_LOG_(INFO) << "updated golden for " << name << ": "
                     << first.digest;
    return;
  }
  const std::string golden = read_golden(name);
  ASSERT_FALSE(golden.empty())
      << "missing golden file " << golden_path(name)
      << " — run with HNI_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(first.digest, golden)
      << "scenario '" << name << "' diverged from the committed golden "
      << "digest. If this change is intentional, regenerate with\n"
      << "  HNI_UPDATE_GOLDEN=1 ./build/tests/determinism_digest_test\n"
      << "and commit the new tests/golden/" << name << ".digest";
}

TEST(GoldenDeterminism, P2pLossyPoisson) {
  check_scenario("p2p-lossy-poisson");
}

TEST(GoldenDeterminism, P2pCleanCbr) { check_scenario("p2p-clean-cbr"); }

TEST(GoldenDeterminism, TandemProtection) {
  check_scenario("tandem-protection");
}

}  // namespace
}  // namespace hni
