// PHY model tests: SONET payload rates, slot arithmetic, and the
// transmit framer's pacing/idle behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "atm/phy.hpp"

namespace hni::atm {
namespace {

TEST(LineRate, Sts3cNumbers) {
  const LineRate r = sts3c();
  EXPECT_DOUBLE_EQ(r.line_bps, 155.52e6);
  EXPECT_DOUBLE_EQ(r.payload_bps, 149.760e6);
  // 149.76e6 / 424 = 353,207.5 cells/s
  EXPECT_NEAR(r.cells_per_second(), 353207.5, 0.1);
  // slot = 424 / 149.76e6 s = 2.8312 us
  EXPECT_NEAR(static_cast<double>(r.cell_slot()), 2.8312e6, 100.0);
}

TEST(LineRate, Sts12cNumbers) {
  const LineRate r = sts12c();
  EXPECT_DOUBLE_EQ(r.payload_bps, 599.040e6);
  EXPECT_NEAR(r.cells_per_second(), 1412830.2, 1.0);
  EXPECT_NEAR(static_cast<double>(r.cell_slot()), 707.8e3, 100.0);
}

TEST(LineRate, Sts12cIsFourTimesSts3c) {
  EXPECT_NEAR(sts12c().payload_bps / sts3c().payload_bps, 4.0, 1e-9);
}

TEST(LineRate, RawRateHasNoOverhead) {
  const LineRate r = raw_rate(424e6, "test");
  EXPECT_DOUBLE_EQ(r.line_bps, r.payload_bps);
  EXPECT_EQ(r.cell_slot(), sim::microseconds(1));
}

TEST(TxFramer, RequiresWiringBeforeStart) {
  sim::Simulator sim;
  TxFramer framer(sim, sts3c());
  EXPECT_THROW(framer.start(), std::logic_error);
}

TEST(TxFramer, RejectsNonPositiveRate) {
  sim::Simulator sim;
  EXPECT_THROW(TxFramer(sim, raw_rate(0.0)), std::invalid_argument);
}

TEST(TxFramer, PacesCellsAtSlotRate) {
  sim::Simulator sim;
  TxFramer framer(sim, raw_rate(424e6));  // slot = exactly 1 us
  int to_send = 5;
  std::vector<sim::Time> arrivals;
  framer.set_supplier([&]() -> std::optional<Cell> {
    if (to_send == 0) return std::nullopt;
    --to_send;
    return Cell{};
  });
  framer.set_sink([&](const Cell&) { arrivals.push_back(sim.now()); });
  framer.start();
  sim.run_until(sim::microseconds(20));

  ASSERT_EQ(arrivals.size(), 5u);
  // Cell n completes serialization at (n+1) slots.
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_EQ(arrivals[i], sim::microseconds(static_cast<std::int64_t>(i + 1)));
  }
  EXPECT_EQ(framer.cells_sent(), 5u);
}

TEST(TxFramer, CountsIdleSlots) {
  sim::Simulator sim;
  TxFramer framer(sim, raw_rate(424e6));
  int sent = 0;
  framer.set_supplier([&]() -> std::optional<Cell> {
    // Supply a cell every other slot.
    if (++sent % 2 == 0) return Cell{};
    return std::nullopt;
  });
  framer.set_sink([](const Cell&) {});
  framer.start();
  sim.run_until(sim::microseconds(100));
  EXPECT_NEAR(framer.utilization(), 0.5, 0.02);
  EXPECT_GT(framer.idle_slots(), 0u);
}

TEST(TxFramer, StopHaltsTheSlotClock) {
  sim::Simulator sim;
  TxFramer framer(sim, raw_rate(424e6));
  framer.set_supplier([]() -> std::optional<Cell> { return Cell{}; });
  framer.set_sink([](const Cell&) {});
  framer.start();
  sim.run_until(sim::microseconds(10));
  framer.stop();
  const auto sent = framer.cells_sent();
  sim.run_until(sim::microseconds(50));
  // At most the in-flight slot completes after stop().
  EXPECT_LE(framer.cells_sent(), sent + 1);
}

TEST(TxFramer, FullUtilizationWhenAlwaysSupplied) {
  sim::Simulator sim;
  TxFramer framer(sim, sts3c());
  framer.set_supplier([]() -> std::optional<Cell> { return Cell{}; });
  framer.set_sink([](const Cell&) {});
  framer.start();
  sim.run_until(sim::milliseconds(1));
  EXPECT_DOUBLE_EQ(framer.utilization(), 1.0);
  // ~353 cells in a millisecond at STS-3c.
  EXPECT_NEAR(static_cast<double>(framer.cells_sent()), 353.0, 2.0);
}

}  // namespace
}  // namespace hni::atm
