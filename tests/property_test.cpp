// Property-based tests: randomized inputs, invariant checks.
//
// Each suite is parameterized over seeds (TEST_P), so every run covers
// many independent random universes deterministically. The invariants
// are the ones the whole library leans on:
//
//   * integrity  — nothing corrupted is ever *delivered*: a reassembler
//     either hands back exactly what was segmented or flags an error;
//   * conservation — cells and bytes are all accounted for: every cell
//     in equals cells discarded + dropped + consumed; host pages return
//     to the baseline once traffic drains;
//   * conformance — a stream accepted by a GCRA policer is a stream the
//     same GCRA accepts when replayed; TX-shaped streams always conform.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "atm/gcra.hpp"
#include "core/testbed.hpp"
#include "sim/random.hpp"

namespace hni {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t> {};

// --- AAL5 cell-stream fuzz --------------------------------------------

TEST_P(Seeded, Aal5NeverDeliversCorruptedData) {
  sim::Rng rng(GetParam());
  const atm::VcId vc{0, 4};
  // Build a library of PDUs and remember their exact bytes.
  std::vector<aal::Bytes> sent;
  std::vector<atm::Cell> stream;
  for (int i = 0; i < 20; ++i) {
    const std::size_t n = 1 + rng.uniform_int(0, 4000);
    sent.push_back(aal::make_pattern(n, GetParam() * 100 + i));
    for (auto& c : aal::aal5_segment(sent.back(), vc)) {
      stream.push_back(std::move(c));
    }
  }
  // Mutate the stream: random drops, duplicates, payload corruption.
  std::vector<atm::Cell> mutated;
  for (const auto& c : stream) {
    const double dice = rng.uniform();
    if (dice < 0.05) continue;  // drop
    atm::Cell copy = c;
    if (dice < 0.10) {
      copy.payload[rng.uniform_int(0, 47)] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    mutated.push_back(copy);
    if (dice > 0.97) mutated.push_back(copy);  // duplicate
  }

  std::set<aal::Bytes> sent_set(sent.begin(), sent.end());
  aal::Aal5Reassembler rx;
  std::size_t ok = 0, errored = 0;
  for (const auto& c : mutated) {
    if (auto d = rx.push(c)) {
      if (d->error == aal::ReassemblyError::kNone) {
        ++ok;
        // Integrity: anything delivered clean must be a sent PDU.
        EXPECT_TRUE(sent_set.count(d->sdu)) << "seed " << GetParam();
      } else {
        ++errored;
      }
    }
  }
  EXPECT_EQ(rx.pdus_ok(), ok);
  EXPECT_EQ(rx.pdus_errored(), errored);
  EXPECT_LE(ok, sent.size() + 2);  // duplicates may re-deliver a PDU
}

TEST_P(Seeded, Aal34NeverDeliversCorruptedData) {
  sim::Rng rng(GetParam() ^ 0xA34);
  const atm::VcId vc{0, 4};
  std::vector<aal::Bytes> sent;
  std::vector<atm::Cell> stream;
  // Two interleaved MID streams.
  aal::Aal34Segmenter seg_a(vc, 1);
  aal::Aal34Segmenter seg_b(vc, 2);
  std::vector<atm::Cell> sa, sb;
  for (int i = 0; i < 10; ++i) {
    const std::size_t n = 1 + rng.uniform_int(0, 3000);
    sent.push_back(aal::make_pattern(n, GetParam() * 50 + i));
    auto cells = (i % 2 ? seg_a : seg_b).segment(sent.back());
    auto& dst = (i % 2 ? sa : sb);
    dst.insert(dst.end(), cells.begin(), cells.end());
  }
  // Random-interleave the two MID streams, then mutate.
  std::size_t ia = 0, ib = 0;
  while (ia < sa.size() || ib < sb.size()) {
    const bool from_a =
        ib >= sb.size() || (ia < sa.size() && rng.chance(0.5));
    stream.push_back(from_a ? sa[ia++] : sb[ib++]);
  }
  std::set<aal::Bytes> sent_set(sent.begin(), sent.end());
  aal::Aal34Reassembler rx;
  for (const auto& c : stream) {
    atm::Cell copy = c;
    const double dice = rng.uniform();
    if (dice < 0.04) continue;
    if (dice < 0.08) {
      copy.payload[rng.uniform_int(0, 47)] ^=
          static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    }
    if (auto d = rx.push(copy)) {
      if (d->error == aal::ReassemblyError::kNone) {
        EXPECT_TRUE(sent_set.count(d->sdu)) << "seed " << GetParam();
      }
    }
  }
}

// --- end-to-end randomized universes ------------------------------------

TEST_P(Seeded, EndToEndInvariantsUnderRandomLoss) {
  sim::Rng rng(GetParam() ^ 0xE2E);
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  net::LossModel loss;
  loss.cell_loss_rate = rng.uniform() * 0.01;
  if (rng.chance(0.5)) loss.mean_burst_cells = 2 + rng.uniform() * 6;
  loss.payload_bit_error_rate = rng.uniform() * 1e-3;
  loss.header_bit_error_rate = rng.uniform() * 1e-3;
  bed.connect(a, b, loss);

  const auto aal_type =
      rng.chance(0.5) ? aal::AalType::kAal5 : aal::AalType::kAal34;
  const atm::VcId vc{0, 21};
  a.nic().open_vc(vc, aal_type);
  b.nic().open_vc(vc, aal_type);

  const std::size_t free_pages_a = a.memory().pages_free();
  const std::size_t free_pages_b = b.memory().pages_free();

  std::size_t delivered = 0, corrupted = 0;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    ++delivered;
    if (!aal::verify_pattern(sdu)) ++corrupted;
  });

  const std::size_t to_send = 30;
  std::size_t sent = 0;
  std::function<void()> pump = [&] {
    while (sent < to_send) {
      const std::size_t n = 1 + rng.uniform_int(0, 9180);
      if (!a.host().send(vc, aal_type,
                         aal::make_pattern(n, GetParam() + sent))) {
        return;
      }
      ++sent;
    }
  };
  a.host().set_tx_ready(pump);
  pump();
  bed.run_for(sim::milliseconds(120));

  // Integrity: losses may shrink `delivered`, never corrupt it.
  EXPECT_EQ(corrupted, 0u);
  EXPECT_LE(delivered, to_send);
  EXPECT_EQ(sent, to_send);

  // Cell conservation at the receiver.
  const auto& rx = b.nic().rx();
  EXPECT_GE(rx.cells_received(),
            rx.cells_hec_discarded() + rx.cells_fifo_dropped() +
                rx.cells_no_vc());

  // Memory conservation: all pages return once traffic drains.
  EXPECT_EQ(a.memory().pages_free(), free_pages_a);
  EXPECT_EQ(b.memory().pages_free(), free_pages_b);
}

// --- GCRA conformance properties ----------------------------------------

TEST_P(Seeded, PolicedStreamReplaysClean) {
  sim::Rng rng(GetParam() ^ 0x6C4A);
  const sim::Time T = sim::nanoseconds(
      static_cast<std::int64_t>(100 + rng.uniform_int(0, 20000)));
  const sim::Time tau = sim::nanoseconds(
      static_cast<std::int64_t>(rng.uniform_int(0, 5000)));
  atm::Gcra police(T, tau);

  sim::Time t = 0;
  std::vector<sim::Time> accepted;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<sim::Time>(rng.exponential(static_cast<double>(T)));
    if (police.police(t)) accepted.push_back(t);
  }
  // The accepted subsequence is a conforming stream by definition:
  // replaying it through a fresh GCRA accepts every cell.
  atm::Gcra replay(T, tau);
  for (sim::Time when : accepted) {
    EXPECT_TRUE(replay.police(when)) << "seed " << GetParam();
  }
}

TEST_P(Seeded, ShapedTxStreamAlwaysConforms) {
  sim::Rng rng(GetParam() ^ 0x54A9);
  sim::Simulator sim;
  bus::Bus bus(sim, bus::BusConfig{});
  bus::HostMemory mem(1u << 20, 4096);
  proc::FirmwareProfile fw;
  nic::TxPath tx(sim, bus, mem, fw, nic::TxPathConfig{}, atm::sts3c());

  const atm::VcId vc{0, 3};
  const double pcr = 20000.0 + rng.uniform() * 100000.0;
  tx.set_shaper(vc, pcr, 0);

  // A strict policer at the same PCR with one-slot CDVT must accept
  // every emitted cell.
  atm::Gcra police = atm::Gcra::for_pcr(pcr, atm::sts3c().cell_slot());
  std::size_t violations = 0;
  tx.framer().set_sink([&](const atm::Cell&) {
    if (!police.police(sim.now())) ++violations;
  });
  tx.start();

  for (int i = 0; i < 5; ++i) {
    nic::TxDescriptor d;
    const aal::Bytes sdu =
        aal::make_pattern(100 + rng.uniform_int(0, 3000), i);
    d.sg = mem.stage(sdu);
    d.len = sdu.size();
    d.vc = vc;
    ASSERT_TRUE(tx.post(std::move(d)));
  }
  sim.run_until(sim::milliseconds(200));
  EXPECT_EQ(violations, 0u) << "seed " << GetParam();
  EXPECT_EQ(tx.pdus_sent(), 5u);
}

// --- HEC randomized correction ------------------------------------------

TEST_P(Seeded, HecCorrectsRandomSingleBitErrors) {
  sim::Rng rng(GetParam() ^ 0xEC);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<std::uint8_t, 4> header{
        static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
        static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
    const std::uint8_t hec = atm::hec_compute(
        std::span<const std::uint8_t, 4>(header.data(), 4));
    auto damaged = header;
    const auto bit = rng.uniform_int(0, 31);
    damaged[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    atm::HecReceiver rx;
    ASSERT_EQ(rx.push(std::span<std::uint8_t, 4>(damaged.data(), 4), hec),
              atm::HecVerdict::kCorrected);
    EXPECT_EQ(damaged, header);
  }
}

// --- bus byte conservation -----------------------------------------------

TEST_P(Seeded, BusMovesEveryByteExactlyOnce) {
  sim::Rng rng(GetParam() ^ 0xB5);
  sim::Simulator sim;
  bus::Bus bus(sim, bus::BusConfig{});
  std::uint64_t expect = 0;
  int completions = 0;
  const int n = 50;
  for (int i = 0; i < n; ++i) {
    const std::size_t bytes = 1 + rng.uniform_int(0, 20000);
    expect += bytes;
    const auto dir = rng.chance(0.5) ? bus::Direction::kRead
                                     : bus::Direction::kWrite;
    sim.at(static_cast<sim::Time>(rng.uniform_int(0, 1'000'000)),
           [&bus, bytes, dir, &completions] {
             bus.transfer(bytes, dir, [&completions] { ++completions; });
           });
  }
  sim.run();
  EXPECT_EQ(completions, n);
  EXPECT_EQ(bus.bytes_moved(), expect);
  EXPECT_GT(bus.utilization(sim.now()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Universes, Seeded,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hni
