// Statistical validation of the link loss processes.
//
// The Gilbert-Elliott model is parameterized indirectly (long-run loss
// rate + mean burst length); these tests drive a large, fixed-seed
// sample through the link and check that the realized statistics
// converge to the configured targets. Tolerances are generous — the
// point is catching an inverted transition probability or a biased
// draw, not re-deriving the chain's variance.

#include <gtest/gtest.h>

#include <vector>

#include "net/link.hpp"
#include "sim/simulator.hpp"

namespace hni {
namespace {

// Offers `count` cells and records, per cell, whether the link lost it
// (loss is decided synchronously in send_wire, so counter deltas
// attribute losses to individual cells).
std::vector<bool> offer_cells(net::Link& link, std::size_t count) {
  std::vector<bool> lost(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t before = link.cells_lost();
    net::WireCell w;
    w.meta.seq = i;
    link.send_wire(w);
    lost[i] = link.cells_lost() != before;
  }
  return lost;
}

TEST(LinkLoss, BernoulliConvergesToConfiguredRate) {
  sim::Simulator s;
  net::LossModel loss;
  loss.cell_loss_rate = 0.05;
  net::Link link(s, sim::microseconds(1), loss, /*seed=*/1234);
  link.set_sink([](const net::WireCell&) {});

  const std::size_t n = 200000;
  const auto lost = offer_cells(link, n);
  std::size_t losses = 0;
  for (bool l : lost) losses += l ? 1 : 0;

  const double rate = static_cast<double>(losses) / n;
  EXPECT_NEAR(rate, 0.05, 0.005);  // +-10% of target
}

TEST(LinkLoss, GilbertElliottConvergesToRateAndBurstLength) {
  sim::Simulator s;
  net::LossModel loss;
  loss.cell_loss_rate = 0.10;
  loss.mean_burst_cells = 8.0;
  net::Link link(s, sim::microseconds(1), loss, /*seed=*/99);
  link.set_sink([](const net::WireCell&) {});

  const std::size_t n = 400000;
  const auto lost = offer_cells(link, n);

  std::size_t losses = 0;
  std::size_t bursts = 0;
  std::size_t run = 0;
  std::vector<std::size_t> burst_lengths;
  for (bool l : lost) {
    if (l) {
      ++losses;
      ++run;
    } else if (run > 0) {
      ++bursts;
      burst_lengths.push_back(run);
      run = 0;
    }
  }
  if (run > 0) burst_lengths.push_back(run), ++bursts;

  const double rate = static_cast<double>(losses) / n;
  EXPECT_NEAR(rate, 0.10, 0.02);  // +-20% of target

  ASSERT_GT(bursts, 100u);  // enough bursts for the mean to settle
  double mean_burst = 0.0;
  for (std::size_t b : burst_lengths) mean_burst += static_cast<double>(b);
  mean_burst /= static_cast<double>(bursts);
  EXPECT_NEAR(mean_burst, 8.0, 2.0);  // +-25% of target
}

TEST(LinkLoss, GilbertElliottLossesAreBurstier) {
  // Same long-run rate, bursty vs independent: the burst model must
  // produce far fewer (longer) loss events.
  sim::Simulator s;
  net::LossModel bern;
  bern.cell_loss_rate = 0.10;
  net::LossModel ge = bern;
  ge.mean_burst_cells = 16.0;

  net::Link link_bern(s, 1, bern, 7);
  net::Link link_ge(s, 1, ge, 7);
  link_bern.set_sink([](const net::WireCell&) {});
  link_ge.set_sink([](const net::WireCell&) {});

  const std::size_t n = 100000;
  auto count_bursts = [](const std::vector<bool>& lost) {
    std::size_t bursts = 0;
    bool in_burst = false;
    for (bool l : lost) {
      if (l && !in_burst) ++bursts;
      in_burst = l;
    }
    return bursts;
  };
  const std::size_t bursts_bern = count_bursts(offer_cells(link_bern, n));
  const std::size_t bursts_ge = count_bursts(offer_cells(link_ge, n));
  EXPECT_GT(bursts_bern, 4 * bursts_ge);
}

TEST(LinkLoss, SameSeedSameRealization) {
  auto run_once = [] {
    sim::Simulator s;
    net::LossModel loss;
    loss.cell_loss_rate = 0.10;
    loss.mean_burst_cells = 8.0;
    net::Link link(s, 1, loss, /*seed=*/4242);
    link.set_sink([](const net::WireCell&) {});
    return offer_cells(link, 50000);
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace hni
