// Network substrate tests: link loss/error processes, switch routing
// and queueing, traffic generators.

#include <gtest/gtest.h>

#include "aal/aal5.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "net/traffic.hpp"

namespace hni::net {
namespace {

atm::Cell cell_on(atm::VcId vc) {
  atm::Cell c;
  c.header.vc = vc;
  return c;
}

TEST(Link, DeliversAfterPropagation) {
  sim::Simulator sim;
  Link link(sim, sim::microseconds(25));
  sim::Time arrival = -1;
  link.set_sink([&](const WireCell&) { arrival = sim.now(); });
  sim.at(sim::microseconds(5), [&] { link.send(cell_on({0, 1})); });
  sim.run();
  EXPECT_EQ(arrival, sim::microseconds(30));
}

TEST(Link, WireBytesMatchSerialization) {
  sim::Simulator sim;
  Link link(sim, 0);
  atm::Cell cell = cell_on({3, 9});
  cell.payload[0] = 0xAA;
  cell.meta.seq = 77;
  WireCell got;
  link.set_sink([&](const WireCell& w) { got = w; });
  link.send(cell);
  sim.run();
  EXPECT_EQ(got.bytes, cell.serialize(atm::HeaderFormat::kUni));
  EXPECT_EQ(got.meta.seq, 77u);
}

TEST(Link, BernoulliLossRateConverges) {
  sim::Simulator sim;
  LossModel loss;
  loss.cell_loss_rate = 0.1;
  Link link(sim, 0, loss, 42);
  std::size_t delivered = 0;
  link.set_sink([&](const WireCell&) { ++delivered; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) link.send(cell_on({0, 1}));
  sim.run();
  EXPECT_EQ(link.cells_in(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(link.cells_lost()) / n, 0.1, 0.01);
  EXPECT_EQ(delivered + link.cells_lost(), static_cast<std::size_t>(n));
}

TEST(Link, GilbertElliottProducesBursts) {
  sim::Simulator sim;
  LossModel loss;
  loss.cell_loss_rate = 0.1;
  loss.mean_burst_cells = 8.0;
  Link link(sim, 0, loss, 7);
  std::vector<bool> outcome;
  link.set_sink([&](const WireCell&) { outcome.push_back(true); });
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto before = link.cells_lost();
    link.send(cell_on({0, 1}));
    sim.run();
    if (link.cells_lost() > before) outcome.push_back(false);
  }
  // Long-run loss rate still ~10%...
  EXPECT_NEAR(static_cast<double>(link.cells_lost()) / n, 0.1, 0.02);
  // ...but organized in runs: mean loss-burst length near 8.
  std::vector<int> bursts;
  int run = 0;
  for (bool ok : outcome) {
    if (!ok) {
      ++run;
    } else if (run > 0) {
      bursts.push_back(run);
      run = 0;
    }
  }
  ASSERT_FALSE(bursts.empty());
  double mean = 0;
  for (int b : bursts) mean += b;
  mean /= static_cast<double>(bursts.size());
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 14.0);
}

TEST(Link, RejectsInvalidLossConfig) {
  sim::Simulator sim;
  LossModel loss;
  loss.cell_loss_rate = 1.5;
  EXPECT_THROW(Link(sim, 0, loss), std::invalid_argument);
  LossModel impossible;
  impossible.cell_loss_rate = 0.9;
  impossible.mean_burst_cells = 1.0;  // needs p(G->B) > 1
  EXPECT_THROW(Link(sim, 0, impossible), std::invalid_argument);
}

TEST(Link, HeaderBitErrorsFlipWireBits) {
  sim::Simulator sim;
  LossModel loss;
  loss.header_bit_error_rate = 1.0;  // every cell
  Link link(sim, 0, loss, 3);
  atm::Cell cell = cell_on({0, 1});
  const auto clean = cell.serialize(atm::HeaderFormat::kUni);
  int header_diffs = 0;
  link.set_sink([&](const WireCell& w) {
    for (int i = 0; i < 5; ++i) {
      if (w.bytes[static_cast<std::size_t>(i)] !=
          clean[static_cast<std::size_t>(i)]) {
        ++header_diffs;
      }
    }
  });
  link.send(cell);
  sim.run();
  EXPECT_EQ(header_diffs, 1);
  EXPECT_EQ(link.cells_corrupted(), 1u);
}

TEST(Link, SendWithoutSinkThrows) {
  sim::Simulator sim;
  Link link(sim, 0);
  EXPECT_THROW(link.send(cell_on({0, 1})), std::logic_error);
}

// --- switch ----------------------------------------------------------

WireCell wire_on(atm::VcId vc) {
  WireCell w;
  w.bytes = cell_on(vc).serialize(atm::HeaderFormat::kUni);
  return w;
}

TEST(Switch, RoutesAndTranslatesVc) {
  sim::Simulator sim;
  Switch sw(sim, {.ports = 2, .queue_cells = 16, .clp_threshold = 16});
  Link out(sim, 0);
  sw.add_route(0, {0, 10}, 1, {0, 20});
  sw.attach_output(1, out);
  std::optional<atm::CellHeader> seen;
  out.set_sink([&](const WireCell& w) {
    seen = atm::decode_header(
        std::span<const std::uint8_t, 4>(w.bytes.data(), 4),
        atm::HeaderFormat::kUni);
    // The translated header must carry a fresh valid HEC.
    EXPECT_TRUE(atm::hec_check(
        std::span<const std::uint8_t, 4>(w.bytes.data(), 4), w.bytes[4]));
  });
  sw.receive(0, wire_on({0, 10}));
  sim.run();
  ASSERT_TRUE(seen.has_value());
  EXPECT_EQ(seen->vc, (atm::VcId{0, 20}));
  EXPECT_EQ(sw.cells_forwarded(), 1u);
}

TEST(Switch, UnroutableCounted) {
  sim::Simulator sim;
  Switch sw(sim, {.ports = 2});
  sw.receive(0, wire_on({9, 99}));
  sim.run();
  EXPECT_EQ(sw.cells_unroutable(), 1u);
  EXPECT_EQ(sw.cells_forwarded(), 0u);
}

TEST(Switch, QueueOverflowDropsTail) {
  sim::Simulator sim;
  Switch sw(sim, {.ports = 2, .queue_cells = 4, .clp_threshold = 4});
  Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  out.set_sink([](const WireCell&) {});
  // Burst 20 cells into a 4-cell queue before any slot elapses.
  for (int i = 0; i < 20; ++i) sw.receive(0, wire_on({0, 1}));
  sim.run_until(sim::milliseconds(1));
  EXPECT_GT(sw.cells_dropped_overflow(), 0u);
  // Conservation: forwarded + dropped = 20 (one may be in service).
  EXPECT_EQ(sw.cells_forwarded() + sw.cells_dropped_overflow(), 20u);
}

TEST(Switch, ClpCellsDroppedFirst) {
  sim::Simulator sim;
  Switch sw(sim,
            {.ports = 2, .queue_cells = 8, .clp_threshold = 2});
  Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  out.set_sink([](const WireCell&) {});
  atm::Cell clp_cell = cell_on({0, 1});
  clp_cell.header.clp = true;
  WireCell clp_wire;
  clp_wire.bytes = clp_cell.serialize(atm::HeaderFormat::kUni);
  for (int i = 0; i < 6; ++i) sw.receive(0, wire_on({0, 1}));
  for (int i = 0; i < 4; ++i) sw.receive(0, clp_wire);
  sim.run_until(sim::milliseconds(1));
  EXPECT_GT(sw.cells_dropped_clp(), 0u);
  EXPECT_EQ(sw.cells_dropped_overflow(), 0u);  // CLP=0 all fit in 8
}

TEST(Switch, BadHecDiscardedAtInput) {
  sim::Simulator sim;
  Switch sw(sim, {.ports = 2});
  sw.add_route(0, {0, 1}, 1, {0, 1});
  WireCell w = wire_on({0, 1});
  w.bytes[0] ^= 0x01;
  w.bytes[2] ^= 0x40;  // two header errors: uncorrectable
  sw.receive(0, w);
  sim.run();
  EXPECT_EQ(sw.cells_hec_discarded() + sw.cells_unroutable(), 1u);
}

TEST(Switch, QueueDepthStatsTracked) {
  sim::Simulator sim;
  Switch sw(sim, {.ports = 2, .queue_cells = 64, .clp_threshold = 64});
  Link out(sim, 0);
  sw.add_route(0, {0, 1}, 1, {0, 1});
  sw.attach_output(1, out);
  out.set_sink([](const WireCell&) {});
  for (int i = 0; i < 32; ++i) sw.receive(0, wire_on({0, 1}));
  sim.run_until(sim::milliseconds(1));
  EXPECT_GT(sw.max_queue_depth(1), 10.0);
}

// --- traffic ---------------------------------------------------------

TEST(SduSource, GreedyRespectsBackpressureAndResumes) {
  sim::Simulator sim;
  int window = 3;
  std::size_t accepted = 0;
  SduSource::Config cfg;
  cfg.mode = SduSource::Mode::kGreedy;
  cfg.sdu_bytes = 100;
  cfg.count = 10;
  SduSource src(sim, cfg, [&](aal::Bytes) {
    if (window == 0) return false;
    --window;
    ++accepted;
    return true;
  });
  src.start();
  sim.run();
  EXPECT_EQ(accepted, 3u);
  EXPECT_EQ(src.refused(), 1u);
  window = 100;
  src.notify_ready();
  sim.run();
  EXPECT_EQ(accepted, 10u);
  EXPECT_TRUE(src.done());
}

TEST(SduSource, CbrSpacingExact) {
  sim::Simulator sim;
  std::vector<sim::Time> times;
  SduSource::Config cfg;
  cfg.mode = SduSource::Mode::kCbr;
  cfg.interval = sim::microseconds(125);
  cfg.count = 8;
  cfg.sdu_bytes = 64;
  SduSource src(sim, cfg, [&](aal::Bytes) {
    times.push_back(sim.now());
    return true;
  });
  src.start();
  sim.run();
  ASSERT_EQ(times.size(), 8u);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_EQ(times[i] - times[i - 1], sim::microseconds(125));
  }
}

TEST(SduSource, PoissonMeanRate) {
  sim::Simulator sim;
  SduSource::Config cfg;
  cfg.mode = SduSource::Mode::kPoisson;
  cfg.interval = sim::microseconds(50);
  cfg.count = 4000;
  cfg.sdu_bytes = 10;
  SduSource src(sim, cfg, [](aal::Bytes) { return true; });
  src.start();
  sim.run();
  // 4000 arrivals at mean 50 us spacing ~= 200 ms total.
  EXPECT_NEAR(sim::to_seconds(sim.now()), 0.2, 0.02);
}

TEST(SduSource, OnOffAlternatesPhases) {
  sim::Simulator sim;
  SduSource::Config cfg;
  cfg.mode = SduSource::Mode::kOnOff;
  cfg.interval = sim::microseconds(10);
  cfg.mean_on = sim::microseconds(200);
  cfg.mean_off = sim::microseconds(800);
  cfg.count = 2000;
  cfg.sdu_bytes = 10;
  std::vector<sim::Time> times;
  SduSource src(sim, cfg, [&](aal::Bytes) {
    times.push_back(sim.now());
    return true;
  });
  src.start();
  sim.run();
  ASSERT_EQ(times.size(), 2000u);
  // Duty cycle 20%: the 2000 arrivals at 10 us spacing need ~20 ms of
  // on-time, so total time should be near 100 ms (loose bounds).
  const double total_s = sim::to_seconds(times.back());
  EXPECT_GT(total_s, 0.04);
  EXPECT_LT(total_s, 0.25);
  // And gaps >> interval exist (off phases).
  int big_gaps = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] - times[i - 1] > sim::microseconds(100)) ++big_gaps;
  }
  EXPECT_GT(big_gaps, 5);
}

TEST(SduSource, PayloadsVerify) {
  sim::Simulator sim;
  SduSource::Config cfg;
  cfg.mode = SduSource::Mode::kCbr;
  cfg.interval = sim::microseconds(10);
  cfg.count = 5;
  cfg.sdu_bytes = 256;
  SduSource src(sim, cfg, [&](aal::Bytes b) {
    EXPECT_TRUE(aal::verify_pattern(b));
    return true;
  });
  src.start();
  sim.run();
  EXPECT_EQ(src.generated(), 5u);
  EXPECT_EQ(src.bytes_offered(), 5u * 256u);
}

TEST(SduSource, RejectsBadConfig) {
  sim::Simulator sim;
  SduSource::Config cfg;
  cfg.sdu_bytes = 0;
  EXPECT_THROW(SduSource(sim, cfg, [](aal::Bytes) { return true; }),
               std::invalid_argument);
}

}  // namespace
}  // namespace hni::net
