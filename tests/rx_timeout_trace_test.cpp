// Reassembly-timeout sweep and tracing facility tests.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "sim/trace.hpp"

namespace hni {
namespace {

const atm::VcId kVc{0, 31};

TEST(ReassemblyTimeout, StalePduReclaimedAndVcRecovers) {
  core::Testbed bed;
  core::StationConfig sc;
  sc.nic.rx.reassembly_timeout = sim::milliseconds(5);
  auto& a = bed.add_station({});
  auto& b = bed.add_station(sc);
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  std::vector<std::size_t> delivered;
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo&) {
    EXPECT_TRUE(aal::verify_pattern(sdu));
    delivered.push_back(sdu.size());
  });

  // Inject a PDU whose final cell never arrives: feed the cells
  // directly so we can drop the EOM deterministically.
  auto cells = aal::aal5_segment(aal::make_pattern(3000, 1), kVc);
  cells.pop_back();
  sim::Time t = 0;
  for (const auto& cell : cells) {
    net::WireCell w;
    w.bytes = cell.serialize(atm::HeaderFormat::kUni);
    bed.sim().at(t, [&b, w] { b.nic().rx().receive_wire(w); });
    t += sim::microseconds(3);
  }
  bed.run_for(sim::milliseconds(2));
  // Partial PDU holds board containers.
  EXPECT_GT(b.nic().rx().board().containers_in_use(), 0u);

  bed.run_for(sim::milliseconds(15));  // beyond the timeout
  EXPECT_EQ(b.nic().rx().pdus_timed_out(), 1u);
  EXPECT_EQ(b.nic().rx().board().containers_in_use(), 0u);

  // The VC is healthy again: a fresh PDU reassembles (the stale prefix
  // would otherwise have spliced in front of it).
  const aal::Bytes fresh = aal::make_pattern(2000, 2);
  a.host().send(kVc, aal::AalType::kAal5, fresh);
  bed.run_for(sim::milliseconds(10));
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], fresh.size());
}

TEST(ReassemblyTimeout, ActivePdusUntouched) {
  // A slow-but-alive sender must never be timed out mid-PDU.
  core::Testbed bed;
  core::StationConfig sc;
  sc.nic.rx.reassembly_timeout = sim::milliseconds(5);
  auto& b = bed.add_station(sc);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  std::size_t got = 0;
  b.nic().rx().set_deliver([&](nic::RxDelivery) { ++got; });

  // One cell every 4 ms — always inside the 5 ms timeout.
  auto cells = aal::aal5_segment(aal::make_pattern(500, 1), kVc);
  sim::Time t = 0;
  for (const auto& cell : cells) {
    net::WireCell w;
    w.bytes = cell.serialize(atm::HeaderFormat::kUni);
    bed.sim().at(t, [&b, w] { b.nic().rx().receive_wire(w); });
    t += sim::milliseconds(4);
  }
  bed.run_for(t + sim::milliseconds(20));
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(b.nic().rx().pdus_timed_out(), 0u);
}

TEST(ReassemblyTimeout, ZeroDisablesSweep) {
  core::Testbed bed;
  core::StationConfig sc;
  sc.nic.rx.reassembly_timeout = 0;
  auto& b = bed.add_station(sc);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  auto cells = aal::aal5_segment(aal::make_pattern(3000, 1), kVc);
  cells.pop_back();
  for (const auto& cell : cells) {
    net::WireCell w;
    w.bytes = cell.serialize(atm::HeaderFormat::kUni);
    b.nic().rx().receive_wire(w);
  }
  bed.run_for(sim::milliseconds(100));
  EXPECT_EQ(b.nic().rx().pdus_timed_out(), 0u);
  EXPECT_GT(b.nic().rx().board().containers_in_use(), 0u);
}

TEST(Tracer, DisabledCostsNothingAndCollectsNothing) {
  sim::Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  const std::uint16_t src = tracer.intern("x");
  tracer.emit({0, sim::TraceEventId::kUser, src, 1, 2, 3});  // no sink yet
  std::vector<sim::TraceEvent> events;
  tracer.collect_into(events);
  EXPECT_TRUE(tracer.enabled());
  tracer.emit({5, sim::TraceEventId::kUser, src, 7, 8, 9});
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].when, 5);
  EXPECT_EQ(tracer.source_name(events[0].source), "x");
  EXPECT_EQ(events[0].a, 7u);
  EXPECT_EQ(events[0].b, 8u);
  EXPECT_EQ(events[0].seq, 9u);
}

TEST(Tracer, FanOutToMultipleSinks) {
  sim::Tracer tracer;
  int a = 0, b = 0;
  tracer.add_sink([&](const sim::TraceEvent&) { ++a; });
  tracer.add_sink([&](const sim::TraceEvent&) { ++b; });
  tracer.emit({1, sim::TraceEventId::kUser, 0, 0, 0, 0});
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
}

TEST(Tracer, RingRetainsMostRecentEventsWithoutAllocation) {
  sim::Tracer tracer;
  sim::TraceRing& ring = tracer.ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    tracer.emit({static_cast<sim::Time>(i), sim::TraceEventId::kUser, 0,
                 0, 0, i});
  }
  EXPECT_EQ(ring.total(), 10u);
  EXPECT_EQ(ring.size(), 4u);
  std::vector<std::uint64_t> seqs;
  ring.for_each([&](const sim::TraceEvent& ev) { seqs.push_back(ev.seq); });
  ASSERT_EQ(seqs.size(), 4u);
  EXPECT_EQ(seqs.front(), 6u);  // oldest retained
  EXPECT_EQ(seqs.back(), 9u);   // newest
}

TEST(Tracer, LinksEmitPerCellEvents) {
  core::Testbed bed;
  std::vector<sim::TraceEvent> events;
  bed.tracer().collect_into(events);

  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(200, 1));
  bed.run_for(sim::milliseconds(5));

  // 5 cells -> 5 wire events carrying the VC, lazily formattable.
  ASSERT_EQ(events.size(), aal::aal5_cell_count(200));
  for (const auto& ev : events) {
    EXPECT_EQ(ev.id, sim::TraceEventId::kLinkCellSent);
    EXPECT_EQ(ev.a, kVc.vpi);
    EXPECT_EQ(ev.b, kVc.vci);
    const std::string line = bed.tracer().format(ev);
    EXPECT_NE(line.find("vc=0/31"), std::string::npos) << line;
  }
}

TEST(Tracer, LostCellsAreMarked) {
  core::Testbed bed;
  std::vector<sim::TraceEvent> events;
  bed.tracer().collect_into(events);
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  net::LossModel loss;
  loss.cell_loss_rate = 0.3;
  bed.connect(a, b, loss);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(4000, 1));
  bed.run_for(sim::milliseconds(5));

  std::size_t lost = 0;
  for (const auto& ev : events) {
    if (ev.id == sim::TraceEventId::kLinkCellLost) {
      ++lost;
      EXPECT_NE(bed.tracer().format(ev).find("LOST"), std::string::npos);
    }
  }
  EXPECT_GT(lost, 0u);
}

}  // namespace
}  // namespace hni
