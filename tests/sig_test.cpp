// Signalling tests: message codec (including decode hardening against
// arbitrary garbage), end-to-end call setup/teardown through the
// switch, rejection causes, VCI lifecycle under churn, traffic
// contracts installed by the network, data flow over switched VCs, and
// the control-plane recovery machinery — T303/T310/T308 timers,
// duplicate idempotence, the status audit, and agent crash-restart.

#include <gtest/gtest.h>

#include "sig/network.hpp"
#include "sim/random.hpp"

namespace hni {
namespace {

using sig::CallState;
using sig::Cause;
using sig::Message;
using sig::MessageType;

TEST(SigMessage, CodecRoundtrip) {
  Message m;
  m.type = MessageType::kSetup;
  m.call_id = 0x12345678;
  m.calling_party = 7;
  m.called_party = 9;
  m.aal = aal::AalType::kAal34;
  m.pcr_cells_per_second = 88301.875;
  m.assigned_vc = {3, 1234};
  m.cause = Cause::kUserBusy;

  const auto back = Message::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->call_id, m.call_id);
  EXPECT_EQ(back->calling_party, m.calling_party);
  EXPECT_EQ(back->called_party, m.called_party);
  EXPECT_EQ(back->aal, m.aal);
  EXPECT_NEAR(back->pcr_cells_per_second, m.pcr_cells_per_second, 1e-5);
  EXPECT_EQ(back->assigned_vc, m.assigned_vc);
  EXPECT_EQ(back->cause, m.cause);
}

TEST(SigMessage, RejectsGarbage) {
  EXPECT_FALSE(Message::decode({}).has_value());
  EXPECT_FALSE(Message::decode(aal::Bytes(5, 0xAB)).has_value());
  aal::Bytes wire = Message{}.encode();
  wire[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(Message::decode(wire).has_value());
  aal::Bytes wire2 = Message{}.encode();
  wire2[2] = 99;  // invalid type
  EXPECT_FALSE(Message::decode(wire2).has_value());
  aal::Bytes truncated = Message{}.encode();
  truncated.pop_back();
  EXPECT_FALSE(Message::decode(truncated).has_value());
}

TEST(SigMessage, RecoveryFieldsRoundtrip) {
  Message m;
  m.type = MessageType::kStatus;
  m.call_id = 9;
  m.cause = Cause::kRecoveryOnTimerExpiry;
  m.call_state = CallState::kReleasing;
  const auto back = Message::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, MessageType::kStatus);
  EXPECT_EQ(back->cause, Cause::kRecoveryOnTimerExpiry);
  EXPECT_EQ(back->call_state, CallState::kReleasing);

  // Every message type survives the wire, including the new audit and
  // restart types.
  for (int t = 1; t <= 8; ++t) {
    Message probe;
    probe.type = static_cast<MessageType>(t);
    const auto again = Message::decode(probe.encode());
    ASSERT_TRUE(again.has_value()) << "type " << t;
    EXPECT_EQ(again->type, probe.type);
  }
}

// Wire offsets (see messages.cpp): magic 0-1, type 2, call_id 3-6,
// parties 7-10, aal 11, pcr 12-19, vc 20-23, cause 24, state 25.
TEST(SigMessage, DecodeCheckedReportsSpecificCauses) {
  Message m;
  m.call_id = 77;
  const aal::Bytes wire = m.encode();

  aal::Bytes truncated = wire;
  truncated.pop_back();
  auto r = sig::decode_checked(truncated);
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, Cause::kInvalidMessage);
  EXPECT_EQ(r.call_id_hint, 0u);  // frame guard failed: hint untrusted

  aal::Bytes bad_magic = wire;
  bad_magic[0] ^= 0xFF;
  r = sig::decode_checked(bad_magic);
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, Cause::kInvalidMessage);
  EXPECT_EQ(r.call_id_hint, 0u);

  // Past the frame guard the call reference is trustworthy: a receiver
  // can answer STATUS for the rejected message.
  aal::Bytes bad_type = wire;
  bad_type[2] = 200;
  r = sig::decode_checked(bad_type);
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, Cause::kMessageTypeNonExistent);
  EXPECT_EQ(r.call_id_hint, 77u);

  aal::Bytes bad_aal = wire;
  bad_aal[11] = 7;
  r = sig::decode_checked(bad_aal);
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, Cause::kInvalidContents);
  EXPECT_EQ(r.call_id_hint, 77u);

  aal::Bytes bad_state = wire;
  bad_state[25] = 9;
  r = sig::decode_checked(bad_state);
  EXPECT_FALSE(r.message.has_value());
  EXPECT_EQ(r.error, Cause::kInvalidContents);
}

TEST(SigMessage, DecodeSurvivesFuzzedInput) {
  sim::Rng rng(0xF022);
  // Random blobs of every length around the frame size: decode must
  // never throw, and must never accept a frame that fails the guard.
  for (std::size_t len = 0; len <= 52; ++len) {
    for (int trial = 0; trial < 16; ++trial) {
      aal::Bytes blob(len);
      for (auto& byte : blob) {
        byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      const auto r = sig::decode_checked(blob);
      if (!r.message.has_value()) EXPECT_NE(r.error, Cause::kNormal);
    }
  }
  // Single-byte corruptions of valid frames of every type: either the
  // mutation lands in a don't-care position and decodes, or it is
  // rejected with a non-normal cause — never a crash, never a throw.
  for (int t = 1; t <= 8; ++t) {
    Message m;
    m.type = static_cast<MessageType>(t);
    m.call_id = 0xABCD1234;
    const aal::Bytes wire = m.encode();
    for (std::size_t i = 0; i < wire.size(); ++i) {
      for (std::uint8_t flip : {0x01, 0x80, 0xFF}) {
        aal::Bytes mut = wire;
        mut[i] ^= flip;
        const auto r = sig::decode_checked(mut);
        if (!r.message.has_value()) EXPECT_NE(r.error, Cause::kNormal);
      }
    }
  }
}

// Shared scenario: three endpoints + agent on a 4-port switch.
struct SigBed {
  core::Testbed bed;
  net::Switch& sw;
  core::Station& alice;
  core::Station& bob;
  core::Station& carol;
  sig::SignalingNetwork net;
  sig::CallControl& cc_alice;
  sig::CallControl& cc_bob;
  sig::CallControl& cc_carol;

  explicit SigBed(sig::SignalingConfig cfg = {})
      : sw(bed.add_switch({.ports = 4,
                           .queue_cells = 512,
                           .clp_threshold = 512})),
        alice(bed.add_station({.name = "alice"})),
        bob(bed.add_station({.name = "bob"})),
        carol(bed.add_station({.name = "carol"})),
        net(bed, sw, /*agent_port=*/3, cfg),
        cc_alice(net.attach(alice, 0, 1)),
        cc_bob(net.attach(bob, 1, 2)),
        cc_carol(net.attach(carol, 2, 3)) {}

  // Runs the full invariant audit: per-station datapath books plus the
  // signalling plane's VCI/route/endpoint conservation identities.
  void expect_books_balanced() {
    auto auditor = bed.audit(/*include_hops=*/false);
    net.audit_invariants(auditor);
    EXPECT_TRUE(auditor.ok()) << auditor.report();
  }
};

TEST(Signaling, CallSetupConnectsBothEnds) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });

  std::optional<sig::CallControl::CallInfo> at_alice;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          at_alice = i;
                        });
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(at_alice->peer, 2);
  EXPECT_GE(at_alice->vc.vci, 1000);
  EXPECT_EQ(s.cc_alice.active_calls(), 1u);
  EXPECT_EQ(s.cc_bob.active_calls(), 1u);
  EXPECT_EQ(s.net.calls_routed(), 1u);
  EXPECT_EQ(s.net.active_calls(), 1u);
}

TEST(Signaling, DataFlowsOverSwitchedCall) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  aal::Bytes got;
  s.bob.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo&) { got = std::move(sdu); });

  const aal::Bytes payload = aal::make_pattern(5000, 11);
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          s.alice.host().send(i.vc, i.aal, payload);
                        });
  s.bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(got, payload);
}

TEST(Signaling, RejectionReportsCause) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return false;  // busy
  });
  std::optional<Cause> cause;
  s.cc_alice.place_call(
      2, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL() << "connected?"; },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kCallRejected);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_EQ(s.cc_alice.calls_failed(), 1u);
}

TEST(Signaling, UnknownPartyRefusedByNetwork) {
  SigBed s;
  std::optional<Cause> cause;
  s.cc_alice.place_call(
      42, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL(); },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kNoRouteToDestination);
  EXPECT_EQ(s.net.calls_refused(), 1u);
}

TEST(Signaling, ReleaseTearsDownRoutesAndNotifiesPeer) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::optional<sig::CallControl::CallInfo> call;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          call = i;
                        });
  std::optional<Cause> bob_released;
  s.cc_bob.set_released(
      [&](const sig::CallControl::CallInfo&, Cause c) { bob_released = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(call.has_value());

  s.cc_alice.release(call->call_id);
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_TRUE(bob_released.has_value());
  EXPECT_EQ(*bob_released, Cause::kNormal);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 0u);

  // The data path is really gone: cells on the old VC are unroutable.
  const auto unroutable_before = s.sw.cells_unroutable();
  s.alice.host().send(call->vc, aal::AalType::kAal5,
                      aal::make_pattern(100, 1));
  s.bed.run_for(sim::milliseconds(10));
  EXPECT_GT(s.sw.cells_unroutable(), unroutable_before);
}

TEST(Signaling, ConcurrentCallsGetDistinctVcs) {
  SigBed s;
  auto accept_all = [](const sig::CallControl::CallInfo&) { return true; };
  s.cc_bob.set_incoming(accept_all);
  s.cc_carol.set_incoming(accept_all);

  std::vector<atm::VcId> vcs;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          vcs.push_back(i.vc);
                        });
  s.cc_alice.place_call(3, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          vcs.push_back(i.vc);
                        });
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_EQ(vcs.size(), 2u);
  EXPECT_NE(vcs[0], vcs[1]);  // alice's two legs use distinct VCIs
  EXPECT_EQ(s.net.active_calls(), 2u);
}

TEST(Signaling, VcisRecycledAfterRelease) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::optional<sig::CallControl::CallInfo> first;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          first = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(first.has_value());
  s.cc_alice.release(first->call_id);
  s.bed.run_for(sim::milliseconds(10));

  std::optional<sig::CallControl::CallInfo> second;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          second = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->vc, first->vc);  // freed VCI reused
}

TEST(Signaling, ContractedCallIsShapedAndPoliced) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::size_t got = 0;
  s.bob.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo&) {
        EXPECT_TRUE(aal::verify_pattern(sdu));
        ++got;
      });

  // A call with a PCR contract at a quarter of STS-3c. The network
  // installs UPC; the caller's CallControl installs the GCRA shaper —
  // so a greedy burst of PDUs still arrives intact, just paced.
  const double pcr = atm::sts3c().cells_per_second() / 4.0;
  std::optional<sig::CallControl::CallInfo> call;
  s.cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                        [&](const sig::CallControl::CallInfo& i) {
                          call = i;
                          for (int k = 0; k < 5; ++k) {
                            s.alice.host().send(
                                i.vc, i.aal, aal::make_pattern(9180, k));
                          }
                        });
  s.bed.run_for(sim::milliseconds(80));

  EXPECT_EQ(got, 5u);
  EXPECT_EQ(s.sw.cells_policed_dropped(), 0u);
}

TEST(Signaling, SetupLatencyIsMicroseconds) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  sim::Time connected_at = 0;
  const sim::Time start = s.bed.now();
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo&) {
                          connected_at = s.bed.now();
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_GT(connected_at, start);
  // Four signalling frames through switch + agent: well under 1 ms.
  EXPECT_LT(connected_at - start, sim::milliseconds(1));
}

TEST(Signaling, VciSpaceSurvivesCallChurn) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });

  // More sequential calls than the per-port VCI budget (256): the
  // allocator must recycle released VCIs, not exhaust the space.
  int connected = 0;
  int failed = 0;
  for (int i = 0; i < 300; ++i) {
    std::optional<sig::CallControl::CallInfo> info;
    s.cc_alice.place_call(
        2, aal::AalType::kAal5, 0.0,
        [&](const sig::CallControl::CallInfo& in) {
          ++connected;
          info = in;
        },
        [&](std::uint32_t, Cause) { ++failed; });
    s.bed.run_for(sim::milliseconds(1));
    ASSERT_TRUE(info.has_value()) << "call " << i << " did not connect";
    EXPECT_LT(info->vc.vci, 1000 + 256) << "allocator ran off the end";
    s.cc_alice.release(info->call_id);
    s.bed.run_for(sim::milliseconds(1));
  }

  EXPECT_EQ(connected, 300);
  EXPECT_EQ(failed, 0);
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  EXPECT_EQ(s.net.stranded_routes(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, LostSetupIsRetransmitted) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  s.cc_alice.tap().drop_next(1);  // the first SETUP dies on the wire

  bool connected = false;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo&) {
                          connected = true;
                        });
  s.bed.run_for(sim::milliseconds(10));

  EXPECT_TRUE(connected) << "T303 did not recover the lost SETUP";
  EXPECT_GE(s.cc_alice.retransmits(), 1u);
  EXPECT_EQ(s.net.active_calls(), 1u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, DuplicateSetupDoesNotAllocateTwice) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  s.cc_alice.tap().duplicate_next(1);  // SETUP arrives twice at the agent

  int connects = 0;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo&) {
                          ++connects;
                        });
  s.bed.run_for(sim::milliseconds(10));

  EXPECT_EQ(connects, 1);
  EXPECT_EQ(s.net.duplicate_setups(), 1u);
  EXPECT_EQ(s.net.active_calls(), 1u);
  EXPECT_EQ(s.cc_bob.active_calls(), 1u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u) << "duplicate SETUP leaked a VCI";
  s.expect_books_balanced();
}

TEST(SigRecovery, LostConnectRecoveredByDuplicateSetup) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  s.cc_bob.tap().drop_next(1);  // bob's CONNECT dies on the wire

  std::optional<sig::CallControl::CallInfo> info;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          info = i;
                        });
  s.bed.run_for(sim::milliseconds(10));

  // Alice's T303 re-SETUP reaches bob as a duplicate; bob re-answers
  // CONNECT from the stored call instead of opening a second VC.
  ASSERT_TRUE(info.has_value()) << "lost CONNECT was never recovered";
  EXPECT_EQ(s.cc_alice.active_calls(), 1u);
  EXPECT_EQ(s.cc_bob.active_calls(), 1u);
  EXPECT_EQ(s.net.active_calls(), 1u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, AwaitConnectDeadlineFailsCallAndNetworkReclaims) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  s.cc_bob.tap().set_drop_rate(1.0);  // bob can receive but never answer

  std::optional<Cause> failure;
  s.cc_alice.place_call(
      2, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL() << "connected?"; },
      [&](std::uint32_t, Cause c) { failure = c; });
  s.bed.run_for(sim::milliseconds(60));

  ASSERT_TRUE(failure.has_value()) << "T310 never fired";
  EXPECT_EQ(*failure, Cause::kRecoveryOnTimerExpiry);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);  // cleared by relayed RELEASE
  EXPECT_EQ(s.net.active_calls(), 0u) << "agent kept a half-open call";
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  EXPECT_EQ(s.net.stranded_routes(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, UnansweredReleaseForceClearsAndAuditReclaims) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::optional<sig::CallControl::CallInfo> info;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          info = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(info.has_value());

  // From here alice is mute: her RELEASE never reaches the agent. T308
  // retransmits, then force-clears locally; the agent's status audit
  // notices the dead leg (its enquiries go unanswered) and reclaims.
  s.cc_alice.tap().set_drop_rate(1.0);
  std::optional<Cause> released;
  s.cc_alice.set_released(
      [&](const sig::CallControl::CallInfo&, Cause c) { released = c; });
  s.cc_alice.release(info->call_id);
  s.bed.run_for(sim::milliseconds(60));

  ASSERT_TRUE(released.has_value()) << "T308 never force-cleared";
  EXPECT_EQ(*released, Cause::kRecoveryOnTimerExpiry);
  EXPECT_GE(s.cc_alice.retransmits(), 4u);  // every T308 retry used
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);  // audit RELEASE reached bob
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_GE(s.net.calls_reclaimed(), 1u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  EXPECT_EQ(s.net.stranded_routes(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, StatusAuditReclaimsHalfOpenCallWithoutEndpointTimers) {
  // Endpoint recovery off (the ablation): a lost CONNECT leaves alice
  // calling forever and the agent's call half-open. Only the agent's
  // status audit can clean this up.
  sig::SignalingConfig cfg;
  cfg.endpoint.retransmit = false;
  SigBed s(cfg);
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  s.cc_bob.tap().drop_next(1);  // CONNECT lost; nobody retransmits

  std::optional<Cause> failure;
  s.cc_alice.place_call(
      2, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL() << "connected?"; },
      [&](std::uint32_t, Cause c) { failure = c; });
  s.bed.run_for(sim::milliseconds(40));

  ASSERT_TRUE(failure.has_value()) << "audit never reclaimed the call";
  EXPECT_EQ(*failure, Cause::kRecoveryOnTimerExpiry);
  EXPECT_GE(s.net.calls_reclaimed(), 1u);
  EXPECT_GE(s.net.audit_ticks(), 1u);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);
  EXPECT_EQ(s.net.stranded_routes(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, MalformedFrameAnsweredWithStatus) {
  SigBed s;
  // Hand the agent a frame whose guard passes but whose type is bogus:
  // it must count it, answer STATUS (cause 97) on the hinted call, and
  // carry on — the endpoint's decoder must likewise survive the reply
  // path. Injected directly on alice's signalling VC toward the agent.
  Message bogus;
  bogus.call_id = 4242;
  aal::Bytes wire = bogus.encode();
  wire[2] = 200;  // nonexistent message type
  s.alice.host().send({0, 5}, aal::AalType::kAal5, wire);
  s.bed.run_for(sim::milliseconds(5));

  EXPECT_EQ(s.net.malformed_frames(), 1u);
  EXPECT_EQ(s.net.active_calls(), 0u);
  s.expect_books_balanced();
}

TEST(SigRecovery, AgentCrashRestartClearsEndpointsAndFabric) {
  SigBed s;
  auto accept_all = [](const sig::CallControl::CallInfo&) { return true; };
  s.cc_bob.set_incoming(accept_all);
  s.cc_carol.set_incoming(accept_all);

  int established = 0;
  auto count = [&](const sig::CallControl::CallInfo&) { ++established; };
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0, count);
  s.cc_alice.place_call(3, aal::AalType::kAal5, 0.0, count);
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_EQ(established, 2);

  s.net.crash_restart();
  s.bed.run_for(sim::milliseconds(20));

  // RESTART told every endpoint to clear; every endpoint acked; the
  // fabric sweep removed the orphan routes the crash left behind.
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);
  EXPECT_EQ(s.cc_carol.active_calls(), 0u);
  EXPECT_EQ(s.net.restart_acks(), 3u);
  EXPECT_GE(s.net.routes_reclaimed(), 4u);  // two duplex routes dropped
  EXPECT_EQ(s.net.stranded_routes(), 0u);
  EXPECT_EQ(s.net.stranded_vcis(), 0u);

  // The plane is usable again, and the wiped allocator hands out the
  // base VCI afresh.
  std::optional<sig::CallControl::CallInfo> again;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          again = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(again.has_value()) << "network unusable after restart";
  EXPECT_EQ(again->vc.vci, 1000);
  s.expect_books_balanced();
}

}  // namespace
}  // namespace hni
