// Signalling tests: message codec, end-to-end call setup/teardown
// through the switch, rejection causes, VCI lifecycle, traffic
// contracts installed by the network, and data flow over switched VCs.

#include <gtest/gtest.h>

#include "sig/network.hpp"

namespace hni {
namespace {

using sig::Cause;
using sig::Message;
using sig::MessageType;

TEST(SigMessage, CodecRoundtrip) {
  Message m;
  m.type = MessageType::kSetup;
  m.call_id = 0x12345678;
  m.calling_party = 7;
  m.called_party = 9;
  m.aal = aal::AalType::kAal34;
  m.pcr_cells_per_second = 88301.875;
  m.assigned_vc = {3, 1234};
  m.cause = Cause::kUserBusy;

  const auto back = Message::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, m.type);
  EXPECT_EQ(back->call_id, m.call_id);
  EXPECT_EQ(back->calling_party, m.calling_party);
  EXPECT_EQ(back->called_party, m.called_party);
  EXPECT_EQ(back->aal, m.aal);
  EXPECT_NEAR(back->pcr_cells_per_second, m.pcr_cells_per_second, 1e-5);
  EXPECT_EQ(back->assigned_vc, m.assigned_vc);
  EXPECT_EQ(back->cause, m.cause);
}

TEST(SigMessage, RejectsGarbage) {
  EXPECT_FALSE(Message::decode({}).has_value());
  EXPECT_FALSE(Message::decode(aal::Bytes(5, 0xAB)).has_value());
  aal::Bytes wire = Message{}.encode();
  wire[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(Message::decode(wire).has_value());
  aal::Bytes wire2 = Message{}.encode();
  wire2[2] = 99;  // invalid type
  EXPECT_FALSE(Message::decode(wire2).has_value());
  aal::Bytes truncated = Message{}.encode();
  truncated.pop_back();
  EXPECT_FALSE(Message::decode(truncated).has_value());
}

// Shared scenario: three endpoints + agent on a 4-port switch.
struct SigBed {
  core::Testbed bed;
  net::Switch& sw;
  core::Station& alice;
  core::Station& bob;
  core::Station& carol;
  sig::SignalingNetwork net;
  sig::CallControl& cc_alice;
  sig::CallControl& cc_bob;
  sig::CallControl& cc_carol;

  SigBed()
      : sw(bed.add_switch({.ports = 4,
                           .queue_cells = 512,
                           .clp_threshold = 512})),
        alice(bed.add_station({.name = "alice"})),
        bob(bed.add_station({.name = "bob"})),
        carol(bed.add_station({.name = "carol"})),
        net(bed, sw, /*agent_port=*/3),
        cc_alice(net.attach(alice, 0, 1)),
        cc_bob(net.attach(bob, 1, 2)),
        cc_carol(net.attach(carol, 2, 3)) {}
};

TEST(Signaling, CallSetupConnectsBothEnds) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });

  std::optional<sig::CallControl::CallInfo> at_alice;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          at_alice = i;
                        });
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_TRUE(at_alice.has_value());
  EXPECT_EQ(at_alice->peer, 2);
  EXPECT_GE(at_alice->vc.vci, 1000);
  EXPECT_EQ(s.cc_alice.active_calls(), 1u);
  EXPECT_EQ(s.cc_bob.active_calls(), 1u);
  EXPECT_EQ(s.net.calls_routed(), 1u);
  EXPECT_EQ(s.net.active_calls(), 1u);
}

TEST(Signaling, DataFlowsOverSwitchedCall) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  aal::Bytes got;
  s.bob.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo&) { got = std::move(sdu); });

  const aal::Bytes payload = aal::make_pattern(5000, 11);
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          s.alice.host().send(i.vc, i.aal, payload);
                        });
  s.bed.run_for(sim::milliseconds(20));
  EXPECT_EQ(got, payload);
}

TEST(Signaling, RejectionReportsCause) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return false;  // busy
  });
  std::optional<Cause> cause;
  s.cc_alice.place_call(
      2, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL() << "connected?"; },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kCallRejected);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 0u);
  EXPECT_EQ(s.cc_alice.calls_failed(), 1u);
}

TEST(Signaling, UnknownPartyRefusedByNetwork) {
  SigBed s;
  std::optional<Cause> cause;
  s.cc_alice.place_call(
      42, aal::AalType::kAal5, 0.0,
      [](const sig::CallControl::CallInfo&) { FAIL(); },
      [&](std::uint32_t, Cause c) { cause = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kNoRouteToDestination);
  EXPECT_EQ(s.net.calls_refused(), 1u);
}

TEST(Signaling, ReleaseTearsDownRoutesAndNotifiesPeer) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::optional<sig::CallControl::CallInfo> call;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          call = i;
                        });
  std::optional<Cause> bob_released;
  s.cc_bob.set_released(
      [&](const sig::CallControl::CallInfo&, Cause c) { bob_released = c; });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(call.has_value());

  s.cc_alice.release(call->call_id);
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_TRUE(bob_released.has_value());
  EXPECT_EQ(*bob_released, Cause::kNormal);
  EXPECT_EQ(s.cc_alice.active_calls(), 0u);
  EXPECT_EQ(s.cc_bob.active_calls(), 0u);
  EXPECT_EQ(s.net.active_calls(), 0u);

  // The data path is really gone: cells on the old VC are unroutable.
  const auto unroutable_before = s.sw.cells_unroutable();
  s.alice.host().send(call->vc, aal::AalType::kAal5,
                      aal::make_pattern(100, 1));
  s.bed.run_for(sim::milliseconds(10));
  EXPECT_GT(s.sw.cells_unroutable(), unroutable_before);
}

TEST(Signaling, ConcurrentCallsGetDistinctVcs) {
  SigBed s;
  auto accept_all = [](const sig::CallControl::CallInfo&) { return true; };
  s.cc_bob.set_incoming(accept_all);
  s.cc_carol.set_incoming(accept_all);

  std::vector<atm::VcId> vcs;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          vcs.push_back(i.vc);
                        });
  s.cc_alice.place_call(3, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          vcs.push_back(i.vc);
                        });
  s.bed.run_for(sim::milliseconds(10));

  ASSERT_EQ(vcs.size(), 2u);
  EXPECT_NE(vcs[0], vcs[1]);  // alice's two legs use distinct VCIs
  EXPECT_EQ(s.net.active_calls(), 2u);
}

TEST(Signaling, VcisRecycledAfterRelease) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::optional<sig::CallControl::CallInfo> first;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          first = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(first.has_value());
  s.cc_alice.release(first->call_id);
  s.bed.run_for(sim::milliseconds(10));

  std::optional<sig::CallControl::CallInfo> second;
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo& i) {
                          second = i;
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->vc, first->vc);  // freed VCI reused
}

TEST(Signaling, ContractedCallIsShapedAndPoliced) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  std::size_t got = 0;
  s.bob.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo&) {
        EXPECT_TRUE(aal::verify_pattern(sdu));
        ++got;
      });

  // A call with a PCR contract at a quarter of STS-3c. The network
  // installs UPC; the caller's CallControl installs the GCRA shaper —
  // so a greedy burst of PDUs still arrives intact, just paced.
  const double pcr = atm::sts3c().cells_per_second() / 4.0;
  std::optional<sig::CallControl::CallInfo> call;
  s.cc_alice.place_call(2, aal::AalType::kAal5, pcr,
                        [&](const sig::CallControl::CallInfo& i) {
                          call = i;
                          for (int k = 0; k < 5; ++k) {
                            s.alice.host().send(
                                i.vc, i.aal, aal::make_pattern(9180, k));
                          }
                        });
  s.bed.run_for(sim::milliseconds(80));

  EXPECT_EQ(got, 5u);
  EXPECT_EQ(s.sw.cells_policed_dropped(), 0u);
}

TEST(Signaling, SetupLatencyIsMicroseconds) {
  SigBed s;
  s.cc_bob.set_incoming([](const sig::CallControl::CallInfo&) {
    return true;
  });
  sim::Time connected_at = 0;
  const sim::Time start = s.bed.now();
  s.cc_alice.place_call(2, aal::AalType::kAal5, 0.0,
                        [&](const sig::CallControl::CallInfo&) {
                          connected_at = s.bed.now();
                        });
  s.bed.run_for(sim::milliseconds(10));
  ASSERT_GT(connected_at, start);
  // Four signalling frames through switch + agent: well under 1 ms.
  EXPECT_LT(connected_at - start, sim::milliseconds(1));
}

}  // namespace
}  // namespace hni
