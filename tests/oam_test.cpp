// OAM fault-management tests: cell codec, CRC-10 protection, loopback
// round-trips through the full testbed, control-cell priority, and the
// host's posted receive-buffer budget.

#include <gtest/gtest.h>

#include "atm/oam.hpp"
#include "core/audit.hpp"
#include "core/testbed.hpp"

namespace hni {
namespace {

const atm::VcId kVc{0, 70};

TEST(OamCell, CodecRoundtrip) {
  atm::OamCell oam;
  oam.function = atm::OamFunction::kLoopbackRequest;
  oam.tag = 0xDEADBEEFCAFE1234ull;
  oam.end_to_end = true;
  const atm::Cell cell = oam.to_cell(kVc);
  EXPECT_EQ(cell.header.pti, atm::Pti::kOamEndToEnd);
  EXPECT_EQ(cell.header.vc, kVc);

  const auto back = atm::OamCell::parse(cell);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->function, oam.function);
  EXPECT_EQ(back->tag, oam.tag);
  EXPECT_TRUE(back->end_to_end);
}

TEST(OamCell, SegmentScopeUsesSegmentPti) {
  atm::OamCell oam;
  oam.end_to_end = false;
  const atm::Cell cell = oam.to_cell(kVc);
  EXPECT_EQ(cell.header.pti, atm::Pti::kOamSegment);
  const auto back = atm::OamCell::parse(cell);
  ASSERT_TRUE(back.has_value());
  EXPECT_FALSE(back->end_to_end);
}

TEST(OamCell, UserDataCellsDoNotParse) {
  atm::Cell cell;
  cell.header.pti = atm::Pti::kUserData0;
  EXPECT_FALSE(atm::OamCell::parse(cell).has_value());
}

TEST(OamCell, CorruptedPayloadRejectedByCrc10) {
  atm::OamCell oam;
  oam.tag = 42;
  atm::Cell cell = oam.to_cell(kVc);
  for (std::size_t byte : {0u, 5u, 20u, 47u}) {
    atm::Cell damaged = cell;
    damaged.payload[byte] ^= 0x40;
    EXPECT_FALSE(atm::OamCell::parse(damaged).has_value()) << byte;
  }
}

TEST(Loopback, RoundTripAcrossTestbed) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b, {}, sim::microseconds(50));
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  std::uint64_t got_tag = 0;
  sim::Time rtt = 0;
  a.nic().set_loopback_handler(
      [&](atm::VcId vc, std::uint64_t tag, sim::Time t) {
        EXPECT_EQ(vc, kVc);
        got_tag = tag;
        rtt = t;
      });
  a.nic().send_loopback(kVc, 77);
  bed.run_for(sim::milliseconds(5));

  EXPECT_EQ(got_tag, 77u);
  EXPECT_EQ(a.nic().loopbacks_sent(), 1u);
  EXPECT_EQ(a.nic().loopbacks_completed(), 1u);
  EXPECT_EQ(b.nic().loopbacks_answered(), 1u);
  // RTT at least two propagation delays, plus slots and engine work.
  EXPECT_GE(rtt, sim::microseconds(100));
  EXPECT_LE(rtt, sim::microseconds(150));
}

TEST(Loopback, CloseVcSweepsOutstandingRequests) {
  // Regression: outstanding loopbacks were keyed by tag alone, so a
  // closing VC could not find its pending requests — they sat in the
  // table forever and the books never balanced. close_vc now abandons
  // them, and a reply arriving after the close is ignored.
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b, {}, sim::microseconds(50));
  const atm::VcId other{0, 71};
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  a.nic().open_vc(other, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(other, aal::AalType::kAal5);

  std::size_t completions = 0;
  a.nic().set_loopback_handler(
      [&](atm::VcId, std::uint64_t, sim::Time) { ++completions; });
  a.nic().send_loopback(kVc, 1);
  a.nic().send_loopback(kVc, 2);
  a.nic().send_loopback(other, 3);
  EXPECT_EQ(a.nic().loopbacks_outstanding(), 3u);

  // Close before any reply can make the ~100us round trip: only the
  // closing VC's requests are abandoned, the other VC's completes.
  a.nic().close_vc(kVc);
  EXPECT_EQ(a.nic().loopbacks_abandoned(), 2u);
  EXPECT_EQ(a.nic().loopbacks_outstanding(), 1u);
  bed.run_for(sim::milliseconds(5));

  EXPECT_EQ(completions, 1u);  // late replies for tags 1 and 2 ignored
  EXPECT_EQ(a.nic().loopbacks_completed(), 1u);
  EXPECT_EQ(a.nic().loopbacks_outstanding(), 0u);

  // The conservation identity the auditor now enforces:
  // sent == completed + abandoned + outstanding.
  core::InvariantAuditor auditor;
  auditor.audit_station(a);
  auditor.audit_station(b);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(Rdi, CloseVcClearsStandingPause) {
  // Regression: a VC closed while RDI-paused left its hold entry and a
  // frozen TX lane behind; reopening the VC started life paused.
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b, {}, sim::microseconds(50));
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  // The far end reports a remote defect on the VC.
  atm::OamCell rdi;
  rdi.function = atm::OamFunction::kRdi;
  b.nic().tx().inject_cell(rdi.to_cell(kVc));
  bed.run_for(sim::milliseconds(1));
  ASSERT_EQ(a.nic().rdi_received(), 1u);
  ASSERT_TRUE(a.nic().tx().vc_paused(kVc));
  EXPECT_EQ(a.nic().rdi_pending(), 1u);

  a.nic().close_vc(kVc);
  EXPECT_EQ(a.nic().rdi_pending(), 0u);
  EXPECT_FALSE(a.nic().tx().vc_paused(kVc));

  // The rdi_pending <= open VCs bound the auditor checks.
  core::InvariantAuditor auditor;
  auditor.audit_station(a);
  EXPECT_TRUE(auditor.ok()) << auditor.report();

  // The stale hold timer that fires later must not resurrect the pause.
  bed.run_for(a.nic().config().rdi_hold + sim::milliseconds(3));
  EXPECT_FALSE(a.nic().tx().vc_paused(kVc));
}

TEST(Loopback, WorksWhileUserDataFlows) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  std::size_t sdus = 0;
  b.host().set_rx_handler([&](aal::Bytes s, const host::RxInfo&) {
    EXPECT_TRUE(aal::verify_pattern(s));
    ++sdus;
  });
  std::size_t pings = 0;
  a.nic().set_loopback_handler(
      [&](atm::VcId, std::uint64_t, sim::Time) { ++pings; });

  // Interleave pings with a bulk transfer on the same VC.
  a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(30000, 1));
  for (std::uint64_t i = 0; i < 5; ++i) {
    bed.sim().after(sim::microseconds(200) * static_cast<std::int64_t>(i),
                    [&, i] { a.nic().send_loopback(kVc, i); });
  }
  bed.run_for(sim::milliseconds(20));

  EXPECT_EQ(sdus, 1u);   // the PDU still reassembles despite OAM cells
  EXPECT_EQ(pings, 5u);  // all loopbacks completed
  EXPECT_EQ(b.nic().rx().oam_cells_received(), 5u);
}

TEST(Loopback, ControlCellsPreemptBulkEmission) {
  // A loopback issued mid-bulk-transfer must leave (and return) long
  // before the transfer finishes: control cells skip the user queue.
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  sim::Time rtt = 0;
  a.nic().set_loopback_handler(
      [&](atm::VcId, std::uint64_t, sim::Time t) { rtt = t; });
  a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(65535, 1));
  bed.sim().after(sim::milliseconds(1),
                  [&] { a.nic().send_loopback(kVc, 1); });
  bed.run_for(sim::milliseconds(10));

  ASSERT_GT(rtt, 0);
  // The bulk transfer needs ~3.9 ms of wire; the ping returns in tens
  // of microseconds.
  EXPECT_LT(rtt, sim::microseconds(100));
}

TEST(RxBufferBudget, StarvationDropsAndRecovers) {
  core::Testbed bed;
  core::StationConfig rx_cfg;
  rx_cfg.host.rx_posted_pages = 2;  // tiny: one 8 kB PDU eats both pages
  // Slow host CPU: deliveries pile up before the budget replenishes.
  rx_cfg.host.cpu.clock_hz = 1e5;
  auto& a = bed.add_station({});
  auto& b = bed.add_station(rx_cfg);
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  std::size_t got = 0;
  b.host().set_rx_handler([&](aal::Bytes, const host::RxInfo&) { ++got; });

  for (int i = 0; i < 6; ++i) {
    a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(8000, i));
  }
  bed.run_for(sim::milliseconds(100));

  EXPECT_GT(b.nic().rx().pdus_dropped_host_buffers(), 0u);
  EXPECT_GT(got, 0u);  // budget replenishes; later PDUs land
  EXPECT_EQ(b.host().rx_pages_posted(), 2u);  // conserved at rest
}

TEST(RxBufferBudget, AmplePostingNeverStarves) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  std::size_t got = 0;
  b.host().set_rx_handler([&](aal::Bytes, const host::RxInfo&) { ++got; });
  for (int i = 0; i < 6; ++i) {
    a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(8000, i));
  }
  bed.run_for(sim::milliseconds(50));
  EXPECT_EQ(got, 6u);
  EXPECT_EQ(b.nic().rx().pdus_dropped_host_buffers(), 0u);
}

}  // namespace
}  // namespace hni
