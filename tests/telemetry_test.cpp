// Telemetry subsystem tests: metrics registry, cycle-budget profiler,
// typed tracing, and the stats primitives they surface.
//
// The headline guarantee is cost: the tracing/metrics hot path must be
// allocation-free (the paper's engines have a per-cell cycle budget; an
// observability layer that mallocs per cell would distort exactly what
// it measures). The test binary replaces global operator new to count
// allocations and asserts a zero delta across the hot paths.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/audit.hpp"
#include "core/report.hpp"
#include "core/testbed.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/telemetry/profiler.hpp"
#include "sim/trace.hpp"

// --- Global allocation counter -------------------------------------
//
// Replaces the default operator new/delete for this binary. The tests
// are single-threaded, so a plain counter suffices.

namespace {
std::uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hni {
namespace {

const atm::VcId kVc{0, 31};

// --- Zero-allocation guarantees ------------------------------------

TEST(ZeroAlloc, DisabledTracerEmitAllocatesNothing) {
  sim::Tracer tracer;
  const std::uint16_t src = tracer.intern("hot");
  ASSERT_FALSE(tracer.enabled());

  const std::uint64_t before = g_allocations;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    tracer.emit({static_cast<sim::Time>(i), sim::TraceEventId::kUser, src,
                 1, 2, i});
  }
  EXPECT_EQ(g_allocations - before, 0u);
}

TEST(ZeroAlloc, RingSinkEmitAllocatesNothing) {
  sim::Tracer tracer;
  const std::uint16_t src = tracer.intern("hot");
  sim::TraceRing& ring = tracer.ring(1024);  // preallocates here

  const std::uint64_t before = g_allocations;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    tracer.emit({static_cast<sim::Time>(i), sim::TraceEventId::kUser, src,
                 1, 2, i});
  }
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_EQ(ring.total(), 100000u);
  EXPECT_EQ(ring.size(), 1024u);
}

TEST(ZeroAlloc, CounterAndProfilerHotPathsAllocateNothing) {
  sim::MetricsRegistry registry;
  sim::Counter& counter = registry.counter("hot.counter");
  sim::CycleProfiler profiler(25e6);
  const sim::CycleProfiler::PhaseId ph = profiler.phase("hot phase");

  const std::uint64_t before = g_allocations;
  for (int i = 0; i < 100000; ++i) {
    counter.add();
    profiler.add(ph, 40000 /* 40 ns */);
  }
  EXPECT_EQ(g_allocations - before, 0u);
  EXPECT_EQ(counter.value(), 100000u);
  EXPECT_EQ(profiler.stats()[0].items, 100000u);
}

// --- MetricsRegistry -----------------------------------------------

TEST(MetricsRegistry, CounterDeduplicatesByName) {
  sim::MetricsRegistry registry;
  sim::Counter& a = registry.counter("nic.tx.cells");
  sim::Counter& b = registry.counter("nic.tx.cells");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.size(), 1u);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, ExposeReflectsExternalCounter) {
  sim::MetricsRegistry registry;
  sim::Counter member;
  registry.expose("fifo.drops", member);
  member.add(7);  // after registration — snapshot must see it
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].name, "fifo.drops");
  EXPECT_EQ(snap[0].kind, sim::MetricKind::kCounter);
  EXPECT_EQ(snap[0].value, 7.0);
}

TEST(MetricsRegistry, GaugeSampledAtSnapshotTime) {
  sim::MetricsRegistry registry;
  double depth = 1.0;
  registry.gauge("fifo.depth", [&depth] { return depth; });
  EXPECT_EQ(registry.snapshot()[0].value, 1.0);
  depth = 9.0;
  EXPECT_EQ(registry.snapshot()[0].value, 9.0);
}

TEST(MetricsRegistry, SnapshotSortedByName) {
  sim::MetricsRegistry registry;
  registry.counter("zeta");
  registry.counter("alpha");
  registry.gauge("mid", [] { return 0.0; });
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
}

TEST(MetricsRegistry, HistogramSampleCarriesDistribution) {
  sim::MetricsRegistry registry;
  sim::Histogram& h = registry.histogram("latency", 1.0, 16);
  h.add(2.5);
  h.add(3.5);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].kind, sim::MetricKind::kHistogram);
  EXPECT_EQ(snap[0].value, 2.0);  // sample count
  ASSERT_NE(snap[0].histogram, nullptr);
  EXPECT_EQ(snap[0].histogram->count(), 2u);
}

TEST(MetricScope, PrefixesComposeThroughSubAndVc) {
  sim::MetricsRegistry registry;
  const sim::MetricScope root(registry, "station.0");
  root.sub("nic.rx").counter("cells");
  root.sub("nic.rx").vc(0, 31).counter("pdus");
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].name, "station.0.nic.rx.cells");
  EXPECT_EQ(snap[1].name, "station.0.nic.rx.vc.0.31.pdus");
}

TEST(MetricScope, ExposeStatSurfacesCountMeanMax) {
  sim::MetricsRegistry registry;
  sim::RunningStat stat;
  sim::MetricScope(registry, "rx").expose_stat("pdu_latency_us", stat);
  stat.add(10.0);
  stat.add(30.0);
  const auto snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "rx.pdu_latency_us.count");
  EXPECT_EQ(snap[0].value, 2.0);
  EXPECT_EQ(snap[1].name, "rx.pdu_latency_us.max");
  EXPECT_EQ(snap[1].value, 30.0);
  EXPECT_EQ(snap[2].name, "rx.pdu_latency_us.mean");
  EXPECT_EQ(snap[2].value, 20.0);
}

// One end-to-end scenario, metrics dumped as JSON. Two identical runs
// must dump byte-identical text (sorted snapshot + deterministic
// simulator); this is what lets benches diff telemetry across runs.
std::string run_scenario_json() {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  for (int i = 0; i < 4; ++i) {
    a.host().send(kVc, aal::AalType::kAal5,
                  aal::make_pattern(1000 + 100 * i, i + 1));
  }
  bed.run_for(sim::milliseconds(10));
  return bed.metrics().to_json();
}

TEST(MetricsRegistry, JsonDumpByteIdenticalAcrossIdenticalRuns) {
  const std::string first = run_scenario_json();
  const std::string second = run_scenario_json();
  EXPECT_EQ(first, second);
  // The tree covers the whole system, per-VC labels included.
  EXPECT_NE(first.find("\"station.0.station.nic.tx.pdus_sent\":4"),
            std::string::npos)
      << first;
  EXPECT_NE(first.find(".nic.tx.vc.0.31.cells\""), std::string::npos);
  EXPECT_NE(first.find(".nic.rx.vc.0.31.pdus\""), std::string::npos);
  EXPECT_NE(first.find("\"link.0.cells_in\""), std::string::npos);
}

TEST(MetricsRegistry, TableRendersAndFiltersByPrefix) {
  sim::MetricsRegistry registry;
  registry.counter("a.x").add(1);
  registry.counter("b.y").add(2);
  const std::string all =
      core::metrics_table(registry).to_string("metrics");
  EXPECT_NE(all.find("a.x"), std::string::npos);
  EXPECT_NE(all.find("b.y"), std::string::npos);
  const std::string only_a =
      core::metrics_table(registry, "a.").to_string("metrics");
  EXPECT_NE(only_a.find("a.x"), std::string::npos);
  EXPECT_EQ(only_a.find("b.y"), std::string::npos);
}

// --- CycleProfiler --------------------------------------------------

TEST(CycleProfiler, PhaseRegistrationFindsOrCreates) {
  sim::CycleProfiler p(25e6);
  const auto a = p.phase("header build");
  const auto b = p.phase("payload CRC");
  EXPECT_NE(a, b);
  EXPECT_EQ(p.phase("header build"), a);  // find, not re-register
  EXPECT_EQ(p.phases(), 2u);
}

TEST(CycleProfiler, StatsConvertTimeToCycles) {
  sim::CycleProfiler p(25e6);  // 40 ns per cycle
  const auto ph = p.phase("crc");
  p.add(ph, sim::microseconds(4), 2);  // 100 cycles over 2 items
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].name, "crc");
  EXPECT_EQ(stats[0].items, 2u);
  EXPECT_EQ(stats[0].total, sim::microseconds(4));
  EXPECT_DOUBLE_EQ(stats[0].cycles, 100.0);
  EXPECT_DOUBLE_EQ(stats[0].cycles_per_item, 50.0);
  EXPECT_EQ(stats[0].time_per_item, sim::microseconds(2));
  EXPECT_EQ(p.total(), sim::microseconds(4));
}

TEST(CycleProfiler, StatsKeepRegistrationOrder) {
  // The cycle-budget table rows must follow pipeline order, not
  // alphabetical order.
  sim::CycleProfiler p(1e6);
  p.phase("zeta first");
  p.phase("alpha second");
  const auto stats = p.stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].name, "zeta first");
  EXPECT_EQ(stats[1].name, "alpha second");
}

TEST(CycleProfiler, ResetClearsTotalsKeepsPhases) {
  sim::CycleProfiler p(1e6);
  const auto ph = p.phase("x");
  p.add(ph, 1000);
  p.reset();
  EXPECT_EQ(p.phases(), 1u);
  EXPECT_EQ(p.total(), 0);
  EXPECT_EQ(p.stats()[0].items, 0u);
}

TEST(CycleProfiler, RejectsNonPositiveClock) {
  EXPECT_THROW(sim::CycleProfiler(0.0), std::invalid_argument);
  EXPECT_THROW(sim::CycleProfiler(-25e6), std::invalid_argument);
}

// --- TimeWeightedStat -----------------------------------------------

TEST(TimeWeightedStat, MeanIsReadOnlyAndRepeatable) {
  sim::TimeWeightedStat s;
  s.set(0, 2.0);
  s.set(10, 4.0);
  const sim::TimeWeightedStat& view = s;  // must compile against const
  EXPECT_DOUBLE_EQ(view.mean(10), 2.0);
  EXPECT_DOUBLE_EQ(view.mean(20), 3.0);  // extends arithmetically
  EXPECT_DOUBLE_EQ(view.mean(20), 3.0);  // repeated read: same answer
  EXPECT_DOUBLE_EQ(view.mean(10), 2.0);  // earlier read still intact
}

TEST(TimeWeightedStat, OutOfOrderReadClampsToFrontier) {
  sim::TimeWeightedStat s;
  s.set(0, 2.0);
  s.set(10, 4.0);
  // A reader with a stale clock (now=4 < last change at 10) must get
  // the frontier mean, and must not corrupt later reads.
  EXPECT_DOUBLE_EQ(s.mean(4), 2.0);
  EXPECT_DOUBLE_EQ(s.mean(20), 3.0);
}

TEST(TimeWeightedStat, StaleWriteCannotMoveBooksBackwards) {
  sim::TimeWeightedStat s;
  s.set(0, 2.0);
  s.set(10, 4.0);
  s.set(5, 6.0);  // non-monotonic writer: takes effect at the frontier
  EXPECT_DOUBLE_EQ(s.current(), 6.0);
  // [0,10) at 2.0, [10,20) at 6.0.
  EXPECT_DOUBLE_EQ(s.mean(20), 4.0);
}

TEST(TimeWeightedStat, AdvanceIntegratesWithoutChangingValue) {
  sim::TimeWeightedStat s;
  s.set(0, 3.0);
  s.advance(10);
  EXPECT_DOUBLE_EQ(s.current(), 3.0);
  EXPECT_DOUBLE_EQ(s.mean(10), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

// --- Histogram percentile edges -------------------------------------

TEST(Histogram, EmptyPercentileIsZero) {
  sim::Histogram h(1.0, 8);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 0.0);
}

TEST(Histogram, PercentileExtremes) {
  sim::Histogram h(1.0, 10);
  h.add(5.5);
  // p=0 sits at the distribution floor; p=100 at the top edge of the
  // bin holding the maximum.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 6.0);
  // Out-of-range p clamps rather than throws.
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), h.percentile(0.0));
  EXPECT_DOUBLE_EQ(h.percentile(250.0), h.percentile(100.0));
}

TEST(Histogram, AllMassInOverflowReportsTopEdge) {
  sim::Histogram h(1.0, 4);
  h.add(10.0);
  h.add(99.0);
  h.add(1e9);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.overflow(), 3u);
  // Every percentile saturates at the histogram's top edge — the
  // honest answer when the distribution escaped the binned range.
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 4.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 4.0);
}

TEST(Histogram, SingleBinLinearInterpolation) {
  sim::Histogram h(10.0, 10);
  for (int i = 0; i < 4; ++i) h.add(1.0 + i);  // all land in bin 0
  EXPECT_DOUBLE_EQ(h.percentile(25.0), 2.5);   // 1/4 through the bin
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 5.0);   // halfway through
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 10.0);  // bin top edge
}

// --- Priority-lane drop accounting (regression) ---------------------
//
// A full RX FIFO during a link-down alarm: the PHY's substituted AIS
// cell takes the priority lane and is refused. The refusal must land in
// its own book (priority_drops), emit a typed trace event, and keep the
// auditor's conservation identities balanced.

TEST(PriorityLane, FullRxFifoDuringLinkDownAlarmCountsSeparately) {
  core::Testbed bed;
  sim::TraceRing& ring = bed.tracer().ring(64);

  core::StationConfig small;
  small.name = "bob";
  small.nic.rx.fifo_cells = 4;
  auto& a = bed.add_station({});
  auto& b = bed.add_station(small);
  auto [ab, ba] = bed.connect(a, b);
  (void)ba;
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  // Fill b's RX FIFO synchronously — the service engine never gets a
  // chance to drain because the simulator clock is held still.
  const auto cells = aal::aal5_segment(aal::make_pattern(400, 1), kVc);
  ASSERT_GT(cells.size(), 4u);
  for (const auto& cell : cells) {
    net::WireCell w;
    w.bytes = cell.serialize(atm::HeaderFormat::kUni);
    b.nic().rx().receive_wire(w);
  }
  // (The engine grabs the first cell at push time, so drops are one shy
  // of offered-minus-capacity; what matters is that the FIFO is full.)
  ASSERT_TRUE(b.nic().rx().fifo().full());
  const std::uint64_t data_drops = b.nic().rx().fifo().drops();
  EXPECT_GT(data_drops, 0u);
  EXPECT_EQ(b.nic().rx().fifo().priority_drops(), 0u);

  // Loss of signal: the PHY substitutes one AIS cell per open VC, fed
  // through the same receive path — and the FIFO is still full.
  ab->set_down(true);
  EXPECT_EQ(b.nic().ais_inserted(), 1u);
  EXPECT_EQ(b.nic().rx().fifo().priority_drops(), 1u);
  // The alarm loss did not leak into the data-loss book.
  EXPECT_EQ(b.nic().rx().fifo().drops(), data_drops);

  // The refusal is visible in the trace ring as a typed event carrying
  // the occupancy at the drop, attributed to bob's RX FIFO.
  std::size_t priority_events = 0;
  ring.for_each([&](const sim::TraceEvent& ev) {
    if (ev.id != sim::TraceEventId::kFifoPriorityDrop) return;
    ++priority_events;
    EXPECT_EQ(ev.a, 4u);  // occupancy == capacity at the refusal
    const std::string& who = bed.tracer().source_name(ev.source);
    EXPECT_NE(who.find("bob.nic.rx.fifo"), std::string::npos) << who;
  });
  EXPECT_EQ(priority_events, 1u);

  // The separate book keeps the conservation identities balanced.
  core::InvariantAuditor auditor;
  auditor.audit_station(b);
  EXPECT_TRUE(auditor.ok()) << auditor.report();

  // The metrics tree exports the new book alongside the old one.
  const std::string json = bed.metrics().to_json();
  EXPECT_NE(json.find(".nic.rx.fifo.priority_drops\":1"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace hni
