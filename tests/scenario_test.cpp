// ScenarioSpec: text codec round-trips, hard parse errors, acceptance
// arithmetic, and (one small simulation) same-seed determinism of the
// fleet runner itself.

#include <gtest/gtest.h>

#include "core/scenario_spec.hpp"
#include "sig/fleet.hpp"

namespace hni::core {
namespace {

ScenarioSpec rich_spec() {
  ScenarioSpec s;
  s.name = "codec-exercise";
  s.plane = "fairness";
  s.topology = ScenarioSpec::Topology::kLine;
  s.switches = 4;
  s.seed = 99;
  s.warmup = sim::milliseconds(3);
  s.measure = sim::milliseconds(24);
  s.smoke_measure = sim::milliseconds(6);
  s.sts12 = true;
  s.queue_cells = 512;
  s.epd_threshold = 384;
  s.scheduler = ScenarioSpec::Scheduler::kDwrr;
  s.wred = true;
  s.efci_rm = true;
  s.per_vc_books = true;
  s.cac_utilization = 0.85;
  s.sig_audit = false;
  TrafficSpec t;
  t.kind = TrafficSpec::Kind::kOnOff;
  t.rate_mbps = 42.5;
  t.sdu_bytes = 9180;
  t.pcr_mbps = 60;
  t.scr_mbps = 45;
  t.weight = 4;
  t.abr = true;
  s.traffic = {t};
  s.fault.cell_loss_rate = 1e-3;
  s.fault.loss_burst_cells = 8;
  s.fault.flap_period = sim::milliseconds(10);
  s.fault.flap_down = sim::milliseconds(1);
  s.fault.sig_drop_rate = 0.05;
  s.accept.min_goodput_mbps = 30;
  s.accept.min_delivery_ratio = 0.9;
  s.accept.max_latency_us = 800;
  s.accept.min_jain = 0.95;
  s.accept.audit_clean = false;
  s.accept.determinism = true;
  s.accept.digest = "deadbeefdeadbeef";
  return s;
}

TEST(ScenarioCodec, ToTextParsesBackIdentically) {
  const ScenarioSpec a = rich_spec();
  ScenarioSpec b;
  std::string error;
  ASSERT_TRUE(parse_scenario(a.to_text(), b, error)) << error;
  // Canonical-form round trip: the re-emitted text must match exactly,
  // which covers every field the codec carries.
  EXPECT_EQ(a.to_text(), b.to_text());
  // Spot-check fields that the text form encodes indirectly.
  EXPECT_EQ(b.switches, 4u);
  EXPECT_EQ(b.measure_window(true), sim::milliseconds(6));
  EXPECT_EQ(b.traffic.at(0).weight, 4);
  EXPECT_TRUE(b.traffic.at(0).abr);
  EXPECT_FALSE(b.sig_audit);
  EXPECT_FALSE(b.accept.audit_clean);
}

TEST(ScenarioCodec, EveryBuiltinRoundTrips) {
  for (const ScenarioSpec& s : sig::builtin_scenarios()) {
    ScenarioSpec back;
    std::string error;
    ASSERT_TRUE(parse_scenario(s.to_text(), back, error))
        << s.name << ": " << error;
    EXPECT_EQ(s.to_text(), back.to_text()) << s.name;
  }
}

TEST(ScenarioCodec, UnknownKeyIsAHardError) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(parse_scenario(
      "name = typo\nsource = cbr rate_mbps=10 sdu=1500\nqueue_cels = 64\n",
      out, error));
  EXPECT_NE(error.find("unknown key"), std::string::npos) << error;
  EXPECT_NE(error.find("line 3"), std::string::npos) << error;
}

TEST(ScenarioCodec, UnknownSourceAttributeIsAHardError) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(parse_scenario(
      "name = typo\nsource = cbr rate_mpbs=10\n", out, error));
  EXPECT_NE(error.find("rate_mpbs"), std::string::npos) << error;
}

TEST(ScenarioCodec, SourcelessSpecIsRejected) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(parse_scenario("name = empty\n", out, error));
  EXPECT_NE(error.find("no traffic"), std::string::npos) << error;
}

TEST(ScenarioCodec, FlapLongerThanPeriodIsRejected) {
  ScenarioSpec out;
  std::string error;
  EXPECT_FALSE(parse_scenario(
      "name = bad-flap\nsource = cbr rate_mbps=10 sdu=1500\n"
      "flap_period_us = 100\nflap_down_us = 100\n",
      out, error));
  EXPECT_NE(error.find("flap_down_us"), std::string::npos) << error;
}

TEST(ScenarioCodec, CommentsAndBlanksAreIgnored) {
  ScenarioSpec out;
  std::string error;
  ASSERT_TRUE(parse_scenario(
      "# header comment\n\nname = commented   # trailing\n"
      "source = cbr rate_mbps=10 sdu=1500\n",
      out, error))
      << error;
  EXPECT_EQ(out.name, "commented");
}

ScenarioResult passing_result() {
  ScenarioResult r;
  r.ran = true;
  r.goodput_mbps = 80;
  r.offered_mbps = 82;
  r.delivery_ratio = 0.98;
  r.latency_mean_us = 120;
  r.jain_weighted = 0.99;
  r.audit_clean = true;
  return r;
}

TEST(Acceptance, CleanRunPasses) {
  ScenarioSpec s;
  s.traffic.emplace_back();
  s.accept.min_goodput_mbps = 70;
  s.accept.min_delivery_ratio = 0.95;
  s.accept.max_latency_us = 500;
  s.accept.min_jain = 0.95;
  ScenarioResult r = passing_result();
  evaluate_acceptance(s, r);
  EXPECT_TRUE(r.accepted()) << (r.failures.empty() ? "" : r.failures[0]);
}

TEST(Acceptance, EachFloorFailsIndependently) {
  ScenarioSpec s;
  s.traffic.emplace_back();
  s.accept.min_goodput_mbps = 70;
  s.accept.min_delivery_ratio = 0.95;
  s.accept.max_latency_us = 500;
  s.accept.min_jain = 0.95;

  ScenarioResult r = passing_result();
  r.goodput_mbps = 60;
  r.delivery_ratio = 0.5;
  r.latency_mean_us = 900;
  r.jain_weighted = 0.4;
  r.audit_clean = false;
  evaluate_acceptance(s, r);
  EXPECT_FALSE(r.accepted());
  // One failure line per missed criterion: four floors plus the audit.
  EXPECT_EQ(r.failures.size(), 5u);
}

TEST(Acceptance, SetupFailureIsItsOwnMiss) {
  ScenarioSpec s;
  s.traffic.emplace_back();
  ScenarioResult r;
  r.ran = false;
  r.setup_error = "call setup failed";
  evaluate_acceptance(s, r);
  EXPECT_FALSE(r.accepted());
  ASSERT_FALSE(r.failures.empty());
  EXPECT_NE(r.failures[0].find("call setup failed"), std::string::npos);
}

TEST(Acceptance, DigestMismatchFails) {
  ScenarioSpec s;
  s.traffic.emplace_back();
  s.accept.digest = "0000000000000000";
  ScenarioResult r = passing_result();
  r.digest = "1111111111111111";
  evaluate_acceptance(s, r);
  EXPECT_FALSE(r.accepted());
}

TEST(Acceptance, DeterminismMismatchFails) {
  ScenarioSpec s;
  s.traffic.emplace_back();
  s.accept.determinism = true;
  ScenarioResult r = passing_result();
  r.digest = "1111111111111111";
  r.digest_rerun = "2222222222222222";
  evaluate_acceptance(s, r);
  EXPECT_FALSE(r.accepted());
}

TEST(Jain, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.0, 5.0, 5.0}), 1.0);
  // One user hogging everything among n: index = 1/n.
  EXPECT_NEAR(jain_index({9.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
}

// The one simulating test: the fleet runner must be bit-deterministic
// for a fixed spec, and the digest must move when the seed does.
TEST(FleetRunner, SameSpecSameDigest) {
  ScenarioSpec s;
  s.name = "det-probe";
  s.topology = ScenarioSpec::Topology::kP2p;
  s.seed = 5;
  s.warmup = sim::milliseconds(1);
  s.measure = sim::milliseconds(4);
  s.accept.determinism = true;
  TrafficSpec t;
  t.kind = TrafficSpec::Kind::kPoisson;
  t.rate_mbps = 40;
  t.sdu_bytes = 1500;
  s.traffic = {t};

  const ScenarioResult a = sig::run_scenario(s, /*smoke=*/true);
  EXPECT_TRUE(a.accepted()) << (a.failures.empty() ? "" : a.failures[0]);
  EXPECT_FALSE(a.digest.empty());
  EXPECT_EQ(a.digest, a.digest_rerun);

  ScenarioSpec reseeded = s;
  reseeded.seed = 6;
  const ScenarioResult b = sig::run_scenario(reseeded, /*smoke=*/true);
  EXPECT_NE(a.digest, b.digest);
}

}  // namespace
}  // namespace hni::core
