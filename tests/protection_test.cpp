// Multi-hop fabric resilience: OAM F5 continuity checking, AIS/RDI
// propagation through switches, and automatic protection switching.
//
// The canonical topology is a triangle fabric:
//
//           t0 (primary)
//   [sw0] ================= [sw1]
//     \\                     //
//      t1 \\             // t2
//           \\  [sw2]  //
//
// alice and the call agent attach to sw0, bob to sw1. The working path
// for an alice<->bob call is the single trunk t0; the standby path runs
// through sw2 (t1 + t2). Failing t0 exercises the whole fault chain:
// cells die at the trunk, sw1 originates AIS toward bob, bob's NIC
// reports the defect (RDI upstream + STATUS cause 27 to the agent), and
// the agent's protection sweep moves the call — endpoint-facing VCIs
// untouched — onto the standby path.

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "core/audit.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"
#include "sim/fault.hpp"
#include "sim/random.hpp"

namespace hni {
namespace {

using aal::AalType;
using atm::VcId;

// --- OAM continuity check: the endpoint state machine -----------------

constexpr VcId kVc{0, 77};

struct CcPair {
  core::Testbed bed;
  core::Station* a = nullptr;
  core::Station* b = nullptr;
  net::Link* ab = nullptr;
  net::Link* ba = nullptr;
};

// Point-to-point pair with CC active on one VC in both NICs.
// `rx_ais` controls whether b's PHY inserts AIS under loss-of-signal
// (the I.610 behaviour); disabling it exposes the raw LOC detector.
std::unique_ptr<CcPair> make_cc_pair(bool rx_ais) {
  auto p = std::make_unique<CcPair>();
  core::StationConfig sc;
  sc.nic.cc.enabled = true;
  if (!rx_ais) sc.nic.ais_period = 0;
  p->a = &p->bed.add_station(sc);
  p->b = &p->bed.add_station(sc);
  auto links = p->bed.connect(*p->a, *p->b, {}, sim::microseconds(5));
  p->ab = links.first;
  p->ba = links.second;
  p->a->nic().open_vc(kVc, AalType::kAal5);
  p->b->nic().open_vc(kVc, AalType::kAal5);
  p->a->nic().start_cc(kVc);
  p->b->nic().start_cc(kVc);
  return p;
}

TEST(ContinuityCheck, HeartbeatsFlowAndNoFalseAlarm) {
  auto p = make_cc_pair(/*rx_ais=*/true);
  p->bed.run_for(sim::milliseconds(5));

  EXPECT_GT(p->a->nic().cc_cells_sent(), 10u);
  EXPECT_GT(p->b->nic().cc_cells_received(), 10u);
  EXPECT_EQ(p->a->nic().cc_loss_declared(), 0u);
  EXPECT_EQ(p->b->nic().cc_loss_declared(), 0u);
  EXPECT_EQ(p->a->nic().cc_monitored(), 1u);
}

TEST(ContinuityCheck, DeclareAndClearThresholds) {
  auto p = make_cc_pair(/*rx_ais=*/false);
  const auto& cc = p->a->nic().config().cc;

  std::vector<std::pair<nic::Nic::Defect, bool>> edges;
  p->b->nic().add_defect_observer(
      [&](VcId vc, nic::Nic::Defect d, bool active) {
        EXPECT_EQ(vc, kVc);
        edges.emplace_back(d, active);
      });

  p->bed.run_for(sim::milliseconds(2));
  ASSERT_EQ(p->b->nic().cc_loss_declared(), 0u);

  // Cut the a->b direction only: silence at b, but nothing at b's PHY
  // (its receive link "carrier" drops, yet AIS insertion is disabled).
  p->ab->set_down(true);
  // LOC must NOT be declared before loss_multiplier periods of silence…
  p->bed.run_for(static_cast<sim::Time>(
      static_cast<double>(cc.period) * (cc.loss_multiplier - 1.0)));
  EXPECT_EQ(p->b->nic().cc_loss_declared(), 0u);
  // …and MUST be declared within a couple of periods after the
  // threshold.
  p->bed.run_for(cc.period * 3);
  EXPECT_EQ(p->b->nic().cc_loss_declared(), 1u);
  EXPECT_EQ(p->b->nic().cc_loss_standing(), 1u);
  EXPECT_TRUE(p->b->nic().cc_loss(kVc));

  // Repair: the first heartbeat through clears the alarm.
  p->ab->set_down(false);
  p->bed.run_for(cc.period * 3);
  EXPECT_EQ(p->b->nic().cc_loss_cleared(), 1u);
  EXPECT_EQ(p->b->nic().cc_loss_standing(), 0u);
  EXPECT_FALSE(p->b->nic().cc_loss(kVc));

  // Exactly one declare edge and one clear edge, in that order.
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], std::make_pair(nic::Nic::Defect::kLoc, true));
  EXPECT_EQ(edges[1], std::make_pair(nic::Nic::Defect::kLoc, false));

  core::InvariantAuditor auditor;
  auditor.audit_station(*p->a);
  auditor.audit_station(*p->b);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(ContinuityCheck, UserDataCountsAsContinuity) {
  // CC declares on *total* silence; a VC carrying steady user data with
  // no heartbeats getting through separately must not alarm. Kill only
  // heartbeat generation at the source by never activating CC there —
  // b still monitors, fed by data cells alone.
  auto p = make_cc_pair(/*rx_ais=*/false);
  p->a->nic().stop_cc(kVc);  // no heartbeats from a at all

  bool stop = false;
  std::function<void()> pump = [&] {
    if (stop) return;
    p->a->host().send(kVc, AalType::kAal5, aal::make_pattern(400, 1));
    p->bed.sim().after(sim::microseconds(100), pump);
  };
  pump();
  p->bed.run_for(sim::milliseconds(3));
  stop = true;

  EXPECT_EQ(p->a->nic().cc_cells_sent(), 0u);
  EXPECT_EQ(p->b->nic().cc_loss_declared(), 0u);
}

TEST(ContinuityCheck, AisSuppressesLocAndRdiReachesSource) {
  // With the PHY's AIS insertion on (the I.610 chain), loss-of-signal
  // at b turns into AIS on the VC — which suppresses the LOC detector
  // (the defect is already alarmed) and echoes RDI back to a, pausing
  // a's transmitter for the alarm hold.
  auto p = make_cc_pair(/*rx_ais=*/true);
  p->bed.run_for(sim::milliseconds(1));

  p->ab->set_down(true);
  p->bed.run_for(sim::milliseconds(3));  // well past the LOC threshold

  EXPECT_GT(p->b->nic().ais_inserted(), 0u);
  EXPECT_EQ(p->b->nic().cc_loss_declared(), 0u)
      << "AIS must suppress the downstream LOC declaration";
  EXPECT_GT(p->b->nic().rdi_sent(), 0u);
  EXPECT_GT(p->a->nic().rdi_received(), 0u);
  EXPECT_TRUE(p->a->nic().tx().vc_paused(kVc));

  // Repair; AIS stops, the hold expires, the source resumes.
  p->ab->set_down(false);
  p->bed.run_for(p->a->nic().config().rdi_hold +
                 p->b->nic().config().cc.ais_hold + sim::milliseconds(2));
  EXPECT_FALSE(p->a->nic().tx().vc_paused(kVc));
  EXPECT_EQ(p->b->nic().cc_loss_standing(), 0u);

  core::InvariantAuditor auditor;
  auditor.audit_station(*p->a);
  auditor.audit_station(*p->b);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

TEST(ContinuityCheck, CloseVcBalancesTheBooks) {
  // A VC closed while LOC stands must clear the alarm through the same
  // books (declared == cleared + standing) and stop monitoring.
  auto p = make_cc_pair(/*rx_ais=*/false);
  p->bed.run_for(sim::milliseconds(1));
  p->ab->set_down(true);
  p->bed.run_for(sim::milliseconds(2));
  ASSERT_EQ(p->b->nic().cc_loss_standing(), 1u);

  p->b->nic().close_vc(kVc);
  EXPECT_EQ(p->b->nic().cc_monitored(), 0u);
  EXPECT_EQ(p->b->nic().cc_loss_declared(),
            p->b->nic().cc_loss_cleared() + p->b->nic().cc_loss_standing());

  core::InvariantAuditor auditor;
  auditor.audit_station(*p->b);
  EXPECT_TRUE(auditor.ok()) << auditor.report();
}

// --- the triangle fabric ----------------------------------------------

struct Fabric {
  core::Testbed bed;
  net::Switch* sw0 = nullptr;
  net::Switch* sw1 = nullptr;
  net::Switch* sw2 = nullptr;
  std::unique_ptr<sig::SignalingNetwork> net;
  core::Station* alice = nullptr;
  core::Station* bob = nullptr;
  sig::CallControl* cc_alice = nullptr;
  sig::CallControl* cc_bob = nullptr;
  std::size_t t0 = 0, t1 = 0, t2 = 0;
};

std::unique_ptr<Fabric> make_fabric(sig::SignalingConfig cfg,
                                    bool endpoint_cc = true,
                                    double sw2_port_rate_scale = 1.0) {
  auto f = std::make_unique<Fabric>();
  net::SwitchConfig swc{.ports = 4, .queue_cells = 512,
                        .clp_threshold = 512};
  f->sw0 = &f->bed.add_switch(swc);
  f->sw1 = &f->bed.add_switch(swc);
  net::SwitchConfig swc2 = swc;
  if (sw2_port_rate_scale != 1.0) {
    // A slower standby fabric: CAC headroom on the protection path is
    // scarcer than on the working path.
    swc2.port_rate.line_bps *= sw2_port_rate_scale;
    swc2.port_rate.payload_bps *= sw2_port_rate_scale;
  }
  f->sw2 = &f->bed.add_switch(swc2);
  f->net = std::make_unique<sig::SignalingNetwork>(
      f->bed, std::vector<net::Switch*>{f->sw0, f->sw1, f->sw2},
      /*agent_switch=*/0, /*agent_port=*/3, cfg);
  f->t0 = f->net->add_trunk(0, 1, 1, 1);  // sw0 <-> sw1 (primary)
  f->t1 = f->net->add_trunk(0, 2, 2, 0);  // sw0 <-> sw2
  f->t2 = f->net->add_trunk(2, 1, 1, 2);  // sw2 <-> sw1

  core::StationConfig sa{.name = "alice"};
  core::StationConfig sb{.name = "bob"};
  if (endpoint_cc) {
    sa.nic.cc.enabled = true;
    sb.nic.cc.enabled = true;
  }
  f->alice = &f->bed.add_station(sa);
  f->bob = &f->bed.add_station(sb);
  f->cc_alice = &f->net->attach(*f->alice, /*sw=*/0, /*port=*/0, /*party=*/1);
  f->cc_bob = &f->net->attach(*f->bob, /*sw=*/1, /*port=*/0, /*party=*/2);
  f->cc_bob->set_incoming(
      [](const sig::CallControl::CallInfo&) { return true; });
  return f;
}

void fail_trunk(Fabric& f, std::size_t trunk, bool down) {
  auto [ab, ba] = f.net->trunk_links(trunk);
  ab->set_down(down);
  ba->set_down(down);
}

struct Established {
  VcId alice_vc{};
  VcId bob_vc{};
  std::uint32_t call_id = 0;
};

// Establishes one alice->bob call and returns both VC ends + the ref.
Established establish(Fabric& f, double pcr = 0.0) {
  Established e;
  std::optional<VcId> alice_vc, bob_vc;
  f.cc_bob->set_incoming(
      [](const sig::CallControl::CallInfo&) { return true; },
      [&bob_vc](const sig::CallControl::CallInfo& i) { bob_vc = i.vc; });
  e.call_id = f.cc_alice->place_call(
      2, AalType::kAal5, pcr,
      [&alice_vc](const sig::CallControl::CallInfo& i) { alice_vc = i.vc; });
  f.bed.run_for(sim::milliseconds(2));
  EXPECT_TRUE(alice_vc.has_value());
  EXPECT_TRUE(bob_vc.has_value());
  e.alice_vc = alice_vc.value_or(VcId{});
  e.bob_vc = bob_vc.value_or(VcId{});
  return e;
}

TEST(Fabric, MultiHopCallSetupDataAndTeardown) {
  auto f = make_fabric({});
  const Established call = establish(*f);

  std::size_t got = 0;
  f->bob->host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo& info) {
        EXPECT_TRUE(aal::verify_pattern(sdu));
        EXPECT_EQ(info.vc, call.bob_vc);
        ++got;
      });
  for (int i = 0; i < 5; ++i) {
    f->alice->host().send(call.alice_vc, AalType::kAal5,
                          aal::make_pattern(3000, i));
  }
  f->bed.run_for(sim::milliseconds(5));
  EXPECT_EQ(got, 5u);
  // The call crossed the trunk, not some accidental one-switch path.
  EXPECT_GT(f->sw1->cells_forwarded(), 0u);
  EXPECT_EQ(f->net->active_calls(), 1u);
  EXPECT_EQ(f->net->calls_routed(), 1u);

  // Teardown releases every hop on every switch.
  f->cc_alice->release(call.call_id);
  f->bed.run_for(sim::milliseconds(3));
  EXPECT_EQ(f->net->active_calls(), 0u);
  EXPECT_EQ(f->net->stranded_routes(), 0u);
  EXPECT_EQ(f->net->stranded_vcis(), 0u);

  auto audit = f->bed.audit(/*include_hops=*/true);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();
}

TEST(Fabric, TrunkFailureInsertsAisAtDownstreamSwitch) {
  auto f = make_fabric({});
  establish(*f);

  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::milliseconds(3));

  // The switch just downstream of the failure (sw1 for alice->bob)
  // originated AIS on the translated out-VC, and bob both saw the alarm
  // and suppressed his LOC detector with it.
  EXPECT_GT(f->sw1->cells_ais_inserted(), 0u);
  EXPECT_GT(f->bob->nic().ais_received(), 0u);
  EXPECT_EQ(f->bob->nic().cc_loss_declared(), 0u)
      << "AIS from the fabric must suppress endpoint LOC";
  // Bob reported the defect to the network (STATUS cause 27)…
  EXPECT_GT(f->cc_bob->defect_reports(), 0u);
  // …and echoed RDI upstream; the b->a trunk direction is down too, so
  // the echo dies inside the fabric — but it was sent.
  EXPECT_GT(f->bob->nic().rdi_sent(), 0u);
}

TEST(Fabric, ProtectionSwitchesCallToStandbyPath) {
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  auto f = make_fabric(cfg);
  const Established call = establish(*f);

  std::size_t got = 0;
  f->bob->host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo&) {
        EXPECT_TRUE(aal::verify_pattern(sdu));
        ++got;
      });

  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::milliseconds(1));

  // The sweep moved the call (and bob's signalling relay, which also
  // rode t0) onto the standby path.
  EXPECT_EQ(f->net->reroutes(), 1u);
  EXPECT_GE(f->net->sig_reroutes(), 1u);
  EXPECT_EQ(f->net->calls_on_protection(), 1u);

  // Data flows end-to-end again, through sw2 — with the *same*
  // endpoint-facing VCIs (neither endpoint renegotiated anything).
  f->bed.run_for(f->alice->nic().config().rdi_hold);  // drain a held pause
  const std::uint64_t sw2_before = f->sw2->cells_forwarded();
  for (int i = 0; i < 5; ++i) {
    f->alice->host().send(call.alice_vc, AalType::kAal5,
                          aal::make_pattern(3000, i));
  }
  f->bed.run_for(sim::milliseconds(5));
  EXPECT_EQ(got, 5u);
  EXPECT_GT(f->sw2->cells_forwarded(), sw2_before);

  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();
}

TEST(Fabric, RecoveredTrunkRevertsAfterWaitToRestore) {
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  auto f = make_fabric(cfg);
  establish(*f);

  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::milliseconds(1));
  ASSERT_EQ(f->net->calls_on_protection(), 1u);

  // Repair. Nothing reverts before the wait-to-restore window…
  fail_trunk(*f, f->t0, false);
  f->bed.run_for(cfg.protection.revert_delay / 2);
  EXPECT_EQ(f->net->reverts(), 0u);
  EXPECT_EQ(f->net->calls_on_protection(), 1u);
  // …and the call (plus bob's signalling relay) reverts after it.
  f->bed.run_for(cfg.protection.revert_delay);
  EXPECT_EQ(f->net->reverts(), 1u);
  EXPECT_EQ(f->net->calls_on_protection(), 0u);

  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();
}

TEST(Fabric, FlapWithinHoldoffDoesNotReroute) {
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  cfg.protection.holdoff = sim::microseconds(200);
  auto f = make_fabric(cfg);
  establish(*f);

  // Down and back up well inside the holdoff: the damped sweep never
  // runs, the call never moves.
  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::microseconds(50));
  fail_trunk(*f, f->t0, false);
  f->bed.run_for(sim::milliseconds(2));

  EXPECT_EQ(f->net->reroutes(), 0u);
  EXPECT_EQ(f->net->calls_on_protection(), 0u);
}

TEST(Fabric, CacRefusesStandbyPathWithoutHeadroom) {
  // The standby fabric (sw2) runs at a tenth of the line rate. A
  // contracted call that fits the working path cannot be admitted onto
  // the protection path — the reroute must fail *cleanly*: books
  // restored, failure counted, and the call recovers when the primary
  // trunk does.
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  cfg.cac_utilization = 0.5;
  auto f = make_fabric(cfg, /*endpoint_cc=*/true,
                       /*sw2_port_rate_scale=*/0.1);
  const double line =
      f->sw0->config().port_rate.cells_per_second();
  // Fits 0.5 * line on the working path; far beyond 0.5 * line/10.
  const Established call = establish(*f, /*pcr=*/0.3 * line);
  ASSERT_EQ(f->net->calls_routed(), 1u);

  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::milliseconds(1));
  EXPECT_EQ(f->net->reroutes(), 0u);
  EXPECT_GE(f->net->reroutes_failed(), 1u);
  EXPECT_EQ(f->net->calls_on_protection(), 0u);
  // The CAC books survived the failed attempt intact.
  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();

  // When the working trunk returns, the stranded call flows again.
  fail_trunk(*f, f->t0, false);
  f->bed.run_for(f->alice->nic().config().rdi_hold + sim::milliseconds(2));
  std::size_t got = 0;
  f->bob->host().set_rx_handler(
      [&](aal::Bytes, const host::RxInfo&) { ++got; });
  f->alice->host().send(call.alice_vc, AalType::kAal5,
                        aal::make_pattern(2000, 9));
  f->bed.run_for(sim::milliseconds(5));
  EXPECT_EQ(got, 1u);
}

TEST(Fabric, ContractedCallsRerouteBeforeBestEffort) {
  // With CAC headroom for only one contracted call on the standby path,
  // the sweep's ordering (contracted before best-effort, larger PCR
  // first) decides who survives. The big contract must win.
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  cfg.cac_utilization = 0.5;
  auto f = make_fabric(cfg, /*endpoint_cc=*/true,
                       /*sw2_port_rate_scale=*/0.5);
  const double line = f->sw0->config().port_rate.cells_per_second();
  // Standby CAC budget: 0.5 * 0.5 * line = 0.25 * line per port.
  establish(*f, /*pcr=*/0.2 * line);   // the big contract
  establish(*f, /*pcr=*/0.1 * line);   // refused on standby after the big one
  establish(*f, /*pcr=*/0.0);          // best effort, always admitted
  ASSERT_EQ(f->net->calls_routed(), 3u);

  fail_trunk(*f, f->t0, true);
  f->bed.run_for(sim::milliseconds(1));

  // Big contract + best-effort moved; the small contract found no room.
  EXPECT_EQ(f->net->reroutes(), 2u);
  EXPECT_EQ(f->net->reroutes_failed(), 1u);
  EXPECT_EQ(f->net->calls_on_protection(), 2u);
  EXPECT_GT(f->net->committed_pcr(2, 1), 0.0)
      << "the surviving contract must be committed on the standby trunk";

  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();
}

TEST(Fabric, CrashRestartSweepsEverySwitchOnThePath)  {
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  auto f = make_fabric(cfg);
  establish(*f);
  establish(*f);
  ASSERT_EQ(f->net->active_calls(), 2u);
  ASSERT_GT(f->sw1->route_count(), 0u);

  f->net->crash_restart();
  f->bed.run_for(sim::milliseconds(10));

  // Volatile state gone, every endpoint told, every switch swept: no
  // data route outlives the call table on *any* switch of the path.
  EXPECT_EQ(f->net->active_calls(), 0u);
  EXPECT_EQ(f->net->restart_acks(), 2u);
  EXPECT_EQ(f->net->stranded_routes(), 0u);
  EXPECT_EQ(f->net->stranded_vcis(), 0u);
  EXPECT_EQ(f->cc_alice->active_calls(), 0u);
  EXPECT_EQ(f->cc_bob->active_calls(), 0u);

  // And the fabric still works: a fresh call connects across the trunk.
  const Established call = establish(*f);
  std::size_t got = 0;
  f->bob->host().set_rx_handler(
      [&](aal::Bytes, const host::RxInfo&) { ++got; });
  f->alice->host().send(call.alice_vc, AalType::kAal5,
                        aal::make_pattern(2000, 3));
  f->bed.run_for(sim::milliseconds(5));
  EXPECT_EQ(got, 1u);

  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  EXPECT_TRUE(audit.ok()) << audit.report();
}

// --- chaos soak: trunk flaps ------------------------------------------

struct FlapOutcome {
  std::string fault_log;
  std::uint64_t reroutes = 0;
  std::uint64_t reverts = 0;
  std::uint64_t connected = 0;
  std::size_t net_active = 0;
  std::size_t stranded_vcis = 0;
  std::size_t stranded_routes = 0;
  std::size_t on_protection = 0;
  bool audit_ok = false;
  std::string audit_report;
};

FlapOutcome run_flap_soak(std::uint64_t seed) {
  sig::SignalingConfig cfg;
  cfg.protection.enabled = true;
  cfg.fault_seed = seed * 131 + 17;
  auto f = make_fabric(cfg);

  // Call churn across the trunk for the whole storm.
  sim::Rng churn(seed ^ 0xF1A9);
  int to_place = 60;
  std::function<void()> place = [&] {
    if (to_place-- <= 0) return;
    f->cc_alice->place_call(
        2, AalType::kAal5, 0.0,
        [&](const sig::CallControl::CallInfo& info) {
          const std::uint32_t id = info.call_id;
          f->bed.sim().after(
              sim::microseconds(
                  static_cast<std::int64_t>(churn.uniform_int(200, 3000))),
              [&, id] { f->cc_alice->release(id); });
        });
    f->bed.sim().after(sim::microseconds(400), place);
  };
  f->bed.sim().after(sim::milliseconds(1), place);

  // 200 trunk flaps: every trunk of the triangle, both directions,
  // scheduled by the seeded injector. Calls are mid-handshake, mid-
  // reroute and mid-revert when trunks drop out from under them.
  sim::FaultInjector inj(f->bed.sim(), seed);
  const char* names[3] = {"trunk0.flap", "trunk1.flap", "trunk2.flap"};
  for (std::size_t t = 0; t < 3; ++t) {
    auto [ab, ba] = f->net->trunk_links(t);
    inj.register_point(names[t], [ab, ba](const sim::FaultEvent& e) {
      ab->set_down(e.phase == sim::FaultPhase::kBegin);
      ba->set_down(e.phase == sim::FaultPhase::kBegin);
    });
  }
  inj.chaos(/*start=*/sim::milliseconds(2), /*horizon=*/sim::milliseconds(40),
            /*count=*/200, /*mean_duration=*/sim::microseconds(300));

  // Run far past the horizon: every flap ends, every holdoff/revert
  // timer settles, the audit reclaims whatever the storm half-opened.
  f->bed.run_for(sim::milliseconds(150));

  FlapOutcome out;
  out.fault_log = inj.log_string();
  out.reroutes = f->net->reroutes();
  out.reverts = f->net->reverts();
  out.connected = f->cc_alice->calls_connected();
  out.net_active = f->net->active_calls();
  out.stranded_vcis = f->net->stranded_vcis();
  out.stranded_routes = f->net->stranded_routes();
  out.on_protection = f->net->calls_on_protection();
  auto audit = f->bed.audit(/*include_hops=*/false);
  f->net->audit_invariants(audit);
  out.audit_ok = audit.ok();
  out.audit_report = audit.report();
  return out;
}

TEST(FlapChaos, NothingStrandedAfterTwoHundredFlaps) {
  const FlapOutcome out = run_flap_soak(/*seed=*/6006);

  // The storm was real and protection actually worked during it.
  EXPECT_GT(out.connected, 20u);
  EXPECT_GT(out.reroutes, 0u);
  EXPECT_GT(out.reverts, 0u);

  // And afterwards: no half-open calls, nothing stranded anywhere in
  // the fabric, every conservation book balanced.
  EXPECT_EQ(out.net_active, 0u);
  EXPECT_EQ(out.stranded_vcis, 0u);
  EXPECT_EQ(out.stranded_routes, 0u);
  EXPECT_TRUE(out.audit_ok) << out.audit_report;
}

TEST(FlapChaos, DeterministicUnderTrunkFlaps) {
  const FlapOutcome first = run_flap_soak(7007);
  const FlapOutcome second = run_flap_soak(7007);

  EXPECT_EQ(first.fault_log, second.fault_log);
  EXPECT_EQ(first.reroutes, second.reroutes);
  EXPECT_EQ(first.reverts, second.reverts);
  EXPECT_EQ(first.connected, second.connected);
  EXPECT_EQ(first.stranded_vcis, second.stranded_vcis);
  EXPECT_EQ(first.stranded_routes, second.stranded_routes);
}

}  // namespace
}  // namespace hni
