// HEC tests: the CRC-8/coset arithmetic, single-bit correction over the
// whole 40-bit codeword, the correction/detection mode automaton, and
// cell delineation (HUNT/PRESYNC/SYNC).

#include <gtest/gtest.h>

#include <array>

#include "atm/hec.hpp"

namespace hni::atm {
namespace {

using Header = std::array<std::uint8_t, 4>;

std::uint8_t hec_of(const Header& h) {
  return hec_compute(std::span<const std::uint8_t, 4>(h.data(), 4));
}

TEST(Hec, ZeroHeaderCoset) {
  // CRC-8 of all-zero input is 0, so the wire HEC is the coset itself.
  Header h{0, 0, 0, 0};
  EXPECT_EQ(hec_of(h), kHecCosetPattern);
}

TEST(Hec, CheckAcceptsComputed) {
  Header h{0x12, 0x34, 0x56, 0x78};
  EXPECT_TRUE(hec_check(std::span<const std::uint8_t, 4>(h.data(), 4),
                        hec_of(h)));
  EXPECT_FALSE(hec_check(std::span<const std::uint8_t, 4>(h.data(), 4),
                         static_cast<std::uint8_t>(hec_of(h) ^ 1)));
}

TEST(Hec, DiffersAcrossHeaders) {
  Header a{1, 2, 3, 4};
  Header b{1, 2, 3, 5};
  EXPECT_NE(hec_of(a), hec_of(b));
}

TEST(HecReceiver, ValidStaysInCorrectionMode) {
  HecReceiver rx;
  Header h{9, 9, 9, 9};
  auto hec = hec_of(h);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(h.data(), 4), hec),
              HecVerdict::kValid);
    EXPECT_TRUE(rx.in_correction_mode());
  }
}

// Every single-bit error in the 32 header bits must be corrected and the
// original header restored.
class HecHeaderBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(HecHeaderBitFlip, Corrected) {
  const int bit = GetParam();
  const Header original{0xDE, 0xAD, 0xBE, 0xEF};
  const std::uint8_t hec = hec_of(original);

  Header damaged = original;
  damaged[static_cast<std::size_t>(bit / 8)] ^=
      static_cast<std::uint8_t>(0x80u >> (bit % 8));

  HecReceiver rx;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(damaged.data(), 4), hec),
            HecVerdict::kCorrected);
  EXPECT_EQ(damaged, original);
  // After a correction the receiver must drop to detection mode.
  EXPECT_FALSE(rx.in_correction_mode());
}

INSTANTIATE_TEST_SUITE_P(AllHeaderBits, HecHeaderBitFlip,
                         ::testing::Range(0, 32));

// Errors in the HEC octet itself are also single-bit errors of the
// codeword: the header must pass through untouched.
class HecOctetBitFlip : public ::testing::TestWithParam<int> {};

TEST_P(HecOctetBitFlip, HeaderSurvives) {
  const int bit = GetParam();
  const Header original{0x01, 0x02, 0x03, 0x04};
  const std::uint8_t hec = static_cast<std::uint8_t>(
      hec_of(original) ^ (0x80u >> bit));

  Header h = original;
  HecReceiver rx;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(h.data(), 4), hec),
            HecVerdict::kCorrected);
  EXPECT_EQ(h, original);
}

INSTANTIATE_TEST_SUITE_P(AllHecBits, HecOctetBitFlip, ::testing::Range(0, 8));

TEST(HecReceiver, DoubleBitErrorDiscardsInCorrectionMode) {
  Header original{0x55, 0x66, 0x77, 0x88};
  const std::uint8_t hec = hec_of(original);
  // Flip two header bits: most such patterns yield a syndrome that is
  // either unmapped or maps to a *wrong* single-bit "correction". The
  // I.432 algorithm accepts this; what matters is that the next error
  // in detection mode is discarded. Choose a pattern with an unmapped
  // syndrome: flipping the same bit position in two different octets.
  Header damaged = original;
  damaged[0] ^= 0x80;
  damaged[1] ^= 0x80;
  HecReceiver rx;
  const auto verdict =
      rx.push(std::span<std::uint8_t, 4>(damaged.data(), 4), hec);
  // Either discarded outright or miscorrected — but never "valid", and
  // the receiver must leave correction mode.
  EXPECT_NE(verdict, HecVerdict::kValid);
  EXPECT_FALSE(rx.in_correction_mode());
}

TEST(HecReceiver, DetectionModeDiscardsSingleBitErrors) {
  HecReceiver rx;
  Header h{1, 2, 3, 4};
  const std::uint8_t hec = hec_of(h);

  // First error: corrected, drops to detection mode.
  Header e1 = h;
  e1[0] ^= 0x01;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(e1.data(), 4), hec),
            HecVerdict::kCorrected);

  // Second consecutive error: discarded even though correctable.
  Header e2 = h;
  e2[2] ^= 0x10;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(e2.data(), 4), hec),
            HecVerdict::kDiscard);

  // A clean header restores correction mode.
  Header ok = h;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(ok.data(), 4), hec),
            HecVerdict::kValid);
  EXPECT_TRUE(rx.in_correction_mode());

  // And the next single-bit error is corrected again.
  Header e3 = h;
  e3[3] ^= 0x40;
  EXPECT_EQ(rx.push(std::span<std::uint8_t, 4>(e3.data(), 4), hec),
            HecVerdict::kCorrected);
}

TEST(HecSyndromes, SingleBitSyndromesAreUnique) {
  // Correction over a 40-bit codeword is only sound if all 40
  // single-bit syndromes are distinct and nonzero. Verify via the
  // public API: each corrected position must restore the exact
  // original, which fails if two positions shared a syndrome.
  const Header original{0xA5, 0x5A, 0xC3, 0x3C};
  const std::uint8_t hec = hec_of(original);
  for (int bit = 0; bit < 32; ++bit) {
    Header damaged = original;
    damaged[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(0x80u >> (bit % 8));
    HecReceiver rx;
    ASSERT_EQ(rx.push(std::span<std::uint8_t, 4>(damaged.data(), 4), hec),
              HecVerdict::kCorrected)
        << "bit " << bit;
    ASSERT_EQ(damaged, original) << "bit " << bit;
  }
}

TEST(CellDelineation, HuntToSyncViaPresync) {
  CellDelineation d;
  EXPECT_EQ(d.state(), CellDelineation::State::kHunt);
  d.push(true);  // first valid HEC -> PRESYNC
  EXPECT_EQ(d.state(), CellDelineation::State::kPresync);
  for (int i = 1; i < kHecDelta; ++i) {
    d.push(true);
  }
  EXPECT_EQ(d.state(), CellDelineation::State::kSync);
}

TEST(CellDelineation, PresyncFallsBackOnError) {
  CellDelineation d;
  d.push(true);
  d.push(true);
  d.push(false);
  EXPECT_EQ(d.state(), CellDelineation::State::kHunt);
}

TEST(CellDelineation, SyncTolleratesFewerThanAlphaErrors) {
  CellDelineation d;
  for (int i = 0; i < kHecDelta; ++i) d.push(true);
  ASSERT_EQ(d.state(), CellDelineation::State::kSync);
  for (int i = 0; i < kHecAlpha - 1; ++i) d.push(false);
  EXPECT_EQ(d.state(), CellDelineation::State::kSync);
  d.push(true);  // a good cell resets the run
  for (int i = 0; i < kHecAlpha - 1; ++i) d.push(false);
  EXPECT_EQ(d.state(), CellDelineation::State::kSync);
  EXPECT_EQ(d.sync_losses(), 0u);
}

TEST(CellDelineation, AlphaConsecutiveErrorsLoseSync) {
  CellDelineation d;
  for (int i = 0; i < kHecDelta; ++i) d.push(true);
  for (int i = 0; i < kHecAlpha; ++i) d.push(false);
  EXPECT_EQ(d.state(), CellDelineation::State::kHunt);
  EXPECT_EQ(d.sync_losses(), 1u);
}

TEST(CellDelineation, ResetReturnsToHunt) {
  CellDelineation d;
  for (int i = 0; i < kHecDelta; ++i) d.push(true);
  d.reset();
  EXPECT_EQ(d.state(), CellDelineation::State::kHunt);
}

}  // namespace
}  // namespace hni::atm
