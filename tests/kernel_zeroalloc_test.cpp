// Zero-allocation guarantees for the event kernel and the steady-state
// cell path.
//
// The kernel overhaul's core claim: once the arena, heap, FIFOs and
// reassembly buffers are warm, scheduling/firing events and moving a
// cell through the TX and RX paths never touches the allocator. Same
// operator-new counting hook as telemetry_test — the binary is single-
// threaded, so a plain counter suffices. Windows are chosen to sit
// strictly inside a PDU (per-PDU work — staging, delivery, completion
// — is allowed to allocate; per-cell work is not).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

#include "aal/sar.hpp"
#include "nic/rx_path.hpp"
#include "nic/tx_path.hpp"
#include "sim/simulator.hpp"

// --- Global allocation counter -------------------------------------

namespace {
std::uint64_t g_allocations = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hni {
namespace {

// --- Kernel only ----------------------------------------------------

struct ChainEvent {
  sim::Simulator* sim;
  std::uint64_t* count;
  std::uint64_t limit;
  void operator()() {
    if (++*count < limit) sim->after(1, ChainEvent{sim, count, limit});
  }
};

TEST(KernelZeroAlloc, ScheduleFireCycleAllocatesNothingOnceWarm) {
  sim::Simulator sim;
  std::uint64_t count = 0;
  // Warm: grows the slot arena and the heap vector.
  sim.after(1, ChainEvent{&sim, &count, 1000});
  sim.run();
  ASSERT_EQ(count, 1000u);

  const std::uint64_t before = g_allocations;
  count = 0;
  sim.after(1, ChainEvent{&sim, &count, 100000});
  sim.run();
  EXPECT_EQ(count, 100000u);
  EXPECT_EQ(g_allocations - before, 0u)
      << "kernel schedule/fire cycle hit the allocator";
}

TEST(KernelZeroAlloc, CancelChurnAllocatesNothingOnceWarm) {
  sim::Simulator sim;
  std::vector<sim::EventHandle> handles(64);
  // Warm: populate and churn once so arena + heap reach steady size.
  for (int round = 0; round < 4; ++round) {
    for (auto& h : handles) {
      h = sim.after(10, [] {});
    }
    for (auto& h : handles) sim.cancel(h);
    sim.run();
  }

  const std::uint64_t before = g_allocations;
  for (int round = 0; round < 10000; ++round) {
    for (auto& h : handles) {
      h = sim.after(10, [] {});
    }
    for (auto& h : handles) {
      EXPECT_TRUE(sim.cancel(h));
    }
    sim.run();  // skims the stale nodes so the heap stays bounded
  }
  EXPECT_EQ(g_allocations - before, 0u)
      << "schedule+cancel churn hit the allocator";
  EXPECT_EQ(sim.pending(), 0u);
}

// --- TX: mid-PDU cell emission --------------------------------------

TEST(KernelZeroAlloc, TxMidPduCellPathAllocatesNothing) {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  nic::TxPath tx(sim, bus, mem, fw, nic::TxPathConfig{}, atm::sts3c());

  std::uint64_t cells = 0;
  tx.framer().set_sink([&cells](const atm::Cell&) { ++cells; });
  tx.start();

  const aal::Bytes sdu = aal::make_pattern(60000, 5);  // 1251 cells
  const atm::VcId vc{0, 7};
  auto post = [&] {
    nic::TxDescriptor d;
    d.sg = mem.stage(sdu);
    d.len = sdu.size();
    d.vc = vc;
    d.aal = aal::AalType::kAal5;
    ASSERT_TRUE(tx.post(d));
  };

  // Warm PDU: every pool, FIFO and arena reaches steady state.
  post();
  sim.run_until(sim.now() + sim::milliseconds(5));
  ASSERT_GT(cells, 1000u);

  // Measured PDU: count allocations strictly between cell 100 and
  // cell 1100 of the same PDU — pure per-cell emission work.
  cells = 0;
  post();
  while (cells < 100 && sim.step()) {
  }
  ASSERT_GE(cells, 100u);
  const std::uint64_t before = g_allocations;
  while (cells < 1100 && sim.step()) {
  }
  ASSERT_GE(cells, 1100u);
  EXPECT_EQ(g_allocations - before, 0u)
      << "TX per-cell emission path hit the allocator";
  sim.run_until(sim.now() + sim::milliseconds(5));  // drain cleanly
}

// --- RX: mid-PDU reassembly -----------------------------------------

TEST(KernelZeroAlloc, RxMidPduCellPathAllocatesNothing) {
  sim::Simulator sim;
  bus::Bus bus{sim, bus::BusConfig{}};
  bus::HostMemory mem{1u << 20, 4096};
  proc::FirmwareProfile fw{};
  nic::RxPath rx(sim, bus, mem, fw, nic::RxPathConfig{});
  const atm::VcId vc{0, 9};
  rx.open_vc(vc, aal::AalType::kAal5);

  std::uint64_t delivered = 0;
  rx.set_deliver([&delivered](nic::RxDelivery) { ++delivered; });

  const aal::Bytes sdu = aal::make_pattern(60000, 6);  // 1251 cells
  std::uint64_t injected = 0;
  auto inject_pdu = [&] {
    sim::Time t = sim.now() + sim::microseconds(1);
    for (const auto& cell : aal::aal5_segment(sdu, vc)) {
      // [this-ish, cell, counter] capture: stays inside the Action's
      // inline buffer — scheduling itself must not allocate either.
      sim.at(t, [&rx, &injected, cell] {
        net::WireCell w;
        w.bytes = cell.serialize(atm::HeaderFormat::kUni);
        w.meta = cell.meta;
        rx.receive_wire(w);
        ++injected;
      });
      t += sim::microseconds(3);
    }
  };

  // Warm PDU end to end (reassembler reserve, FIFO, engine, buffers).
  // run_until, not run(): the stale-PDU sweeper reschedules itself
  // forever, so the heap never drains.
  inject_pdu();
  sim.run_until(sim.now() + sim::milliseconds(10));
  ASSERT_EQ(delivered, 1u);

  // Measured PDU: window sits strictly inside the cell stream. All
  // injection events are pre-scheduled (arena/heap growth happens
  // before the snapshot); per-PDU delivery work at the tail is outside
  // the window.
  injected = 0;
  inject_pdu();
  while (injected < 100 && sim.step()) {
  }
  ASSERT_GE(injected, 100u);
  const std::uint64_t before = g_allocations;
  while (injected < 1100 && sim.step()) {
  }
  ASSERT_GE(injected, 1100u);
  EXPECT_EQ(g_allocations - before, 0u)
      << "RX per-cell reassembly path hit the allocator";
  sim.run_until(sim.now() + sim::milliseconds(10));
  EXPECT_EQ(delivered, 2u);
}

}  // namespace
}  // namespace hni
