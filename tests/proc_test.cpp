// Protocol engine and firmware-table tests: cost arithmetic, busy
// accounting, and the structural properties of the instruction budgets
// (receive > transmit, CAM cheaper than hashing, offload savings, the
// AAL3/4 surcharge).

#include <gtest/gtest.h>

#include "proc/engine.hpp"
#include "proc/firmware.hpp"

namespace hni::proc {
namespace {

EngineConfig cfg(double hz = 25e6, double cpi = 1.0) {
  return EngineConfig{"test-engine", hz, cpi};
}

TEST(Engine, CostArithmetic) {
  sim::Simulator sim;
  Engine e(sim, cfg());
  // 25 instructions at 25 MHz, CPI 1 = 1 us.
  EXPECT_EQ(e.cost(25), sim::microseconds(1));
  Engine slow(sim, cfg(25e6, 2.0));
  EXPECT_EQ(slow.cost(25), sim::microseconds(2));
}

TEST(Engine, RejectsBadConfig) {
  sim::Simulator sim;
  EXPECT_THROW(Engine(sim, cfg(0)), std::invalid_argument);
  EXPECT_THROW(Engine(sim, cfg(25e6, 0)), std::invalid_argument);
}

TEST(Engine, WorkSerializesFifo) {
  sim::Simulator sim;
  Engine e(sim, cfg());
  std::vector<sim::Time> completions;
  e.execute(25, [&] { completions.push_back(sim.now()); });  // 1 us
  e.execute(50, [&] { completions.push_back(sim.now()); });  // 2 us more
  sim.run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0], sim::microseconds(1));
  EXPECT_EQ(completions[1], sim::microseconds(3));
  EXPECT_EQ(e.instructions_retired(), 75u);
  EXPECT_EQ(e.work_items(), 2u);
}

TEST(Engine, IdleReflectsQueue) {
  sim::Simulator sim;
  Engine e(sim, cfg());
  EXPECT_TRUE(e.idle());
  e.execute(25, [] {});
  EXPECT_FALSE(e.idle());
  sim.run();
  EXPECT_TRUE(e.idle());
}

TEST(Engine, UtilizationOverWindow) {
  sim::Simulator sim;
  Engine e(sim, cfg());
  e.execute(25, [] {});  // busy 1 us
  sim.run();
  sim.run_until(sim::microseconds(4));
  EXPECT_NEAR(e.utilization(sim.now()), 0.25, 1e-9);
}

TEST(Engine, OccupyChargesLiteralTime) {
  sim::Simulator sim;
  Engine e(sim, cfg());
  sim::Time done = 0;
  e.occupy(sim::microseconds(7), [&] { done = sim.now(); });
  sim.run();
  EXPECT_EQ(done, sim::microseconds(7));
}

// --- firmware table structure ----------------------------------------

FirmwareProfile default_profile() { return FirmwareProfile{}; }

TEST(Firmware, RxMiddleCellCheaperThanEdges) {
  const auto p = default_profile();
  const auto mid = rx_cell_instructions(p, aal::AalType::kAal5,
                                        {false, false});
  const auto first = rx_cell_instructions(p, aal::AalType::kAal5,
                                          {true, false});
  const auto last = rx_cell_instructions(p, aal::AalType::kAal5,
                                         {false, true});
  const auto only = rx_cell_instructions(p, aal::AalType::kAal5,
                                         {true, true});
  EXPECT_LT(mid, first);
  EXPECT_LT(mid, last);
  EXPECT_EQ(only, first + last - mid);  // both surcharges apply
}

TEST(Firmware, ReceiveCostsMoreThanTransmit) {
  // The paper's central asymmetry: reassembly (lookup + chaining +
  // validation) outweighs segmentation for every cell position.
  const auto p = default_profile();
  for (bool first : {false, true}) {
    for (bool last : {false, true}) {
      const CellPosition pos{first, last};
      EXPECT_GE(rx_cell_instructions(p, aal::AalType::kAal5, pos),
                tx_cell_instructions(p, aal::AalType::kAal5, pos));
    }
  }
}

TEST(Firmware, CamLookupCheaperThanHash) {
  FirmwareProfile cam = default_profile();
  cam.assists.cam_lookup = true;
  FirmwareProfile hash = default_profile();
  hash.assists.cam_lookup = false;
  const CellPosition mid{false, false};
  EXPECT_LT(rx_cell_instructions(cam, aal::AalType::kAal5, mid),
            rx_cell_instructions(hash, aal::AalType::kAal5, mid));
  // And hash cost grows with probes.
  EXPECT_LT(rx_cell_instructions(hash, aal::AalType::kAal5, mid, 0),
            rx_cell_instructions(hash, aal::AalType::kAal5, mid, 4));
  // Probes are irrelevant with a CAM.
  EXPECT_EQ(rx_cell_instructions(cam, aal::AalType::kAal5, mid, 0),
            rx_cell_instructions(cam, aal::AalType::kAal5, mid, 9));
}

TEST(Firmware, CrcOffloadSavesPerCellWork) {
  FirmwareProfile hw = default_profile();
  hw.assists.crc_offload = true;
  FirmwareProfile sw = default_profile();
  sw.assists.crc_offload = false;
  const CellPosition mid{false, false};
  const auto saving =
      rx_cell_instructions(sw, aal::AalType::kAal5, mid) -
      rx_cell_instructions(hw, aal::AalType::kAal5, mid);
  EXPECT_EQ(saving, sw.rx.crc_per_word * 12);  // 48 bytes = 12 words
  EXPECT_GT(tx_cell_instructions(sw, aal::AalType::kAal5, mid),
            tx_cell_instructions(hw, aal::AalType::kAal5, mid));
}

TEST(Firmware, Aal34CostsMoreThanAal5) {
  const auto p = default_profile();
  const CellPosition mid{false, false};
  EXPECT_GT(rx_cell_instructions(p, aal::AalType::kAal34, mid),
            rx_cell_instructions(p, aal::AalType::kAal5, mid));
  EXPECT_GT(tx_cell_instructions(p, aal::AalType::kAal34, mid),
            tx_cell_instructions(p, aal::AalType::kAal5, mid));
}

TEST(Firmware, PerPduBudgetsArePositive) {
  const auto p = default_profile();
  EXPECT_GT(tx_pdu_instructions(p), 0u);
  EXPECT_GT(rx_pdu_instructions(p), 0u);
}

TEST(Firmware, DefaultBudgetFitsSts3cSlot) {
  // The paper's feasibility claim: a 25 MIPS engine handles the
  // per-cell budget of any multi-cell PDU within the 2.83 us STS-3c
  // slot. (Single-cell PDUs — first and last surcharges on one cell —
  // are the known worst case; see the companion test below.)
  sim::Simulator sim;
  Engine e(sim, cfg(25e6, 1.0));
  const auto p = default_profile();
  const sim::Time slot = sim::nanoseconds(2831);
  for (bool first : {false, true}) {
    for (bool last : {false, true}) {
      if (first && last) continue;
      for (auto aal : {aal::AalType::kAal5, aal::AalType::kAal34}) {
        const CellPosition pos{first, last};
        EXPECT_LE(e.cost(rx_cell_instructions(p, aal, pos)), slot);
        EXPECT_LE(e.cost(tx_cell_instructions(p, aal, pos)), slot);
      }
    }
  }
}

TEST(Firmware, BackToBackSingleCellPdusAreTheRxWorstCase) {
  // A stream of one-cell PDUs puts first+last+per-PDU work on every
  // slot; that exceeds a 2.83 us slot on 25 MIPS. The RX FIFO absorbs
  // short bursts of these; sustained streams need a faster engine —
  // exactly the sizing discussion the paper's analysis supports.
  sim::Simulator sim;
  Engine e(sim, cfg(25e6, 1.0));
  const auto p = default_profile();
  const sim::Time slot = sim::nanoseconds(2831);
  const auto instr =
      rx_cell_instructions(p, aal::AalType::kAal5, {true, true}) +
      rx_pdu_instructions(p);
  EXPECT_GT(e.cost(instr), slot);
  // A 33 MHz part closes most of the gap; 50 MHz closes it fully.
  Engine fast(sim, cfg(50e6, 1.0));
  EXPECT_LE(fast.cost(instr), slot);
}

TEST(Firmware, MiddleCellBudgetMissesSts12cOn25MipsRx) {
  // ...and the flip side: at STS-12c (707.8 ns slots) the default
  // receive budget does NOT fit on 25 MIPS — the motivation for faster
  // engines / more hardware assist (bench A2 sweeps this).
  sim::Simulator sim;
  Engine e(sim, cfg(25e6, 1.0));
  const auto p = default_profile();
  const sim::Time slot = sim::nanoseconds(708);
  EXPECT_GT(e.cost(rx_cell_instructions(p, aal::AalType::kAal5,
                                        {false, false})),
            slot);
  // TX, being lighter, fits even at STS-12c.
  EXPECT_LE(e.cost(tx_cell_instructions(p, aal::AalType::kAal5,
                                        {false, false})),
            slot);
}

}  // namespace
}  // namespace hni::proc
