// Host model tests: driver send window, CPU accounting, receive
// hand-off; and the software-SAR baseline host end to end.

#include <gtest/gtest.h>

#include "core/testbed.hpp"
#include "host/sw_sar.hpp"

namespace hni::host {
namespace {

const atm::VcId kVc{0, 50};

TEST(Host, SendWindowEnforced) {
  core::Testbed bed;
  core::StationConfig cfg;
  cfg.host.max_inflight_tx = 2;
  auto& a = bed.add_station(cfg);
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  EXPECT_TRUE(a.host().send(kVc, aal::AalType::kAal5,
                            aal::make_pattern(100, 1)));
  EXPECT_TRUE(a.host().send(kVc, aal::AalType::kAal5,
                            aal::make_pattern(100, 2)));
  EXPECT_FALSE(a.host().send(kVc, aal::AalType::kAal5,
                             aal::make_pattern(100, 3)));
  EXPECT_EQ(a.host().inflight_tx(), 2u);

  bool ready = false;
  a.host().set_tx_ready([&] { ready = true; });
  bed.run_for(sim::milliseconds(5));
  EXPECT_TRUE(ready);
  EXPECT_EQ(a.host().inflight_tx(), 0u);
  EXPECT_TRUE(a.host().send(kVc, aal::AalType::kAal5,
                            aal::make_pattern(100, 4)));
}

TEST(Host, DeliversVerifiedBytes) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);

  const aal::Bytes sdu = aal::make_pattern(5000, 9);
  aal::Bytes got;
  RxInfo info{};
  b.host().set_rx_handler([&](aal::Bytes s, const RxInfo& i) {
    got = std::move(s);
    info = i;
  });
  a.host().send(kVc, aal::AalType::kAal5, sdu);
  bed.run_for(sim::milliseconds(5));

  EXPECT_EQ(got, sdu);
  EXPECT_EQ(info.vc, kVc);
  EXPECT_GT(info.handed_up_time, info.delivered_time);
  EXPECT_GT(info.delivered_time, info.first_cell_time);
  EXPECT_EQ(b.host().sdus_received(), 1u);
  EXPECT_EQ(b.host().interrupts_taken(), 1u);
}

TEST(Host, HostMemoryReclaimedAfterRoundtrip) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  const std::size_t free_a = a.memory().pages_free();
  const std::size_t free_b = b.memory().pages_free();
  b.host().set_rx_handler([](aal::Bytes, const RxInfo&) {});
  for (int i = 0; i < 4; ++i) {
    a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(8000, i));
    bed.run_for(sim::milliseconds(3));
  }
  EXPECT_EQ(a.memory().pages_free(), free_a);
  EXPECT_EQ(b.memory().pages_free(), free_b);
}

TEST(Host, CpuChargedPerOperation) {
  core::Testbed bed;
  auto& a = bed.add_station({});
  auto& b = bed.add_station({});
  bed.connect(a, b);
  a.nic().open_vc(kVc, aal::AalType::kAal5);
  b.nic().open_vc(kVc, aal::AalType::kAal5);
  b.host().set_rx_handler([](aal::Bytes, const RxInfo&) {});
  a.host().send(kVc, aal::AalType::kAal5, aal::make_pattern(1000, 1));
  bed.run_for(sim::milliseconds(5));
  const HostCosts costs;
  EXPECT_EQ(a.host().cpu().instructions_retired(),
            costs.tx_syscall + costs.tx_completion);
  EXPECT_EQ(b.host().cpu().instructions_retired(),
            costs.interrupt_entry + costs.rx_per_pdu);
}

// --- software-SAR baseline -------------------------------------------

struct SwPair {
  sim::Simulator sim;
  bus::Bus bus_a{sim, bus::BusConfig{}};
  bus::Bus bus_b{sim, bus::BusConfig{}};
  SwSarHost a{sim, bus_a, SwSarConfig{}};
  SwSarHost b{sim, bus_b, SwSarConfig{}};
  net::Link ab{sim, sim::microseconds(5)};
  net::Link ba{sim, sim::microseconds(5)};

  SwPair() {
    ab.set_sink([this](const net::WireCell& w) { b.receive_wire(w); });
    ba.set_sink([this](const net::WireCell& w) { a.receive_wire(w); });
    a.attach_tx(ab);
    b.attach_tx(ba);
    a.open_vc(kVc, aal::AalType::kAal5);
    b.open_vc(kVc, aal::AalType::kAal5);
  }
};

TEST(SwSarHost, RoundtripDeliversBytes) {
  SwPair p;
  const aal::Bytes sdu = aal::make_pattern(3000, 4);
  aal::Bytes got;
  p.b.set_rx_handler([&](aal::Bytes s, const RxInfo&) { got = std::move(s); });
  EXPECT_TRUE(p.a.send(kVc, aal::AalType::kAal5, sdu));
  p.sim.run_until(sim::milliseconds(20));
  EXPECT_EQ(got, sdu);
  EXPECT_EQ(p.b.sdus_received(), 1u);
}

TEST(SwSarHost, PerCellInterruptsOnReceive) {
  SwPair p;
  p.b.set_rx_handler([](aal::Bytes, const RxInfo&) {});
  const std::size_t n = 3000;
  p.a.send(kVc, aal::AalType::kAal5, aal::make_pattern(n, 4));
  p.sim.run_until(sim::milliseconds(20));
  // The software sender trickles cells out at roughly the service rate
  // of the software receiver, so the receiver's "drain the FIFO in one
  // interrupt" loop batches only a handful of cells per interrupt:
  // interrupts stay within an order of magnitude of the cell count —
  // nothing like the single per-PDU interrupt of the outboard design.
  EXPECT_GT(p.b.interrupts_taken(), aal::aal5_cell_count(n) / 10);
  EXPECT_GT(p.b.interrupts_taken(), 1u);
}

TEST(SwSarHost, HostCpuSaturatesUnderLoad) {
  SwPair p;
  p.b.set_rx_handler([](aal::Bytes, const RxInfo&) {});
  // Keep offering PDUs for the whole run.
  int queued = 0;
  std::function<void()> offer = [&] {
    while (queued < 50 &&
           p.a.send(kVc, aal::AalType::kAal5, aal::make_pattern(9000, queued))) {
      ++queued;
    }
  };
  p.a.set_tx_ready(offer);
  offer();
  p.sim.run_until(sim::milliseconds(30));
  // The sending host's CPU is the bottleneck: near-saturated.
  EXPECT_GT(p.a.cpu_utilization(), 0.9);
}

TEST(SwSarHost, RxFifoOverflowsWhenHostCannotKeepUp) {
  // Drive the software receiver from a fast hardware sender model: a
  // raw link injecting back-to-back cells at STS-3c.
  sim::Simulator sim;
  bus::Bus bus(sim, bus::BusConfig{});
  SwSarConfig cfg;
  cfg.rx_fifo_cells = 8;
  SwSarHost rx_host(sim, bus, cfg);
  rx_host.open_vc(kVc, aal::AalType::kAal5);
  rx_host.set_rx_handler([](aal::Bytes, const RxInfo&) {});

  auto cells = aal::aal5_segment(aal::make_pattern(60000, 1), kVc);
  sim::Time t = 0;
  for (const auto& cell : cells) {
    net::WireCell w;
    w.bytes = cell.serialize(atm::HeaderFormat::kUni);
    sim.at(t, [&rx_host, w] { rx_host.receive_wire(w); });
    t += sim::nanoseconds(2831);
  }
  sim.run_until(t + sim::milliseconds(5));
  EXPECT_GT(rx_host.rx_fifo_drops(), 0u);
}

TEST(SwSarHost, RefusesWhenWindowFull) {
  SwPair p;
  int accepted = 0;
  for (int i = 0; i < 20; ++i) {
    if (p.a.send(kVc, aal::AalType::kAal5, aal::make_pattern(9000, i))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 4);  // default max_inflight_tx
}

}  // namespace
}  // namespace hni::host
