// Bus/host-memory/DMA tests: transaction timing arithmetic, FIFO
// serialization of the shared medium, PIO costs, page allocation,
// scatter/gather integrity.

#include <gtest/gtest.h>

#include "bus/dma.hpp"
#include "bus/host_memory.hpp"
#include "bus/turbochannel.hpp"

namespace hni::bus {
namespace {

BusConfig tc_config() {
  BusConfig c;
  c.clock_hz = 25e6;          // 40 ns cycle
  c.word_bytes = 4;
  c.max_burst_words = 64;
  c.overhead_cycles = 5;
  c.read_latency_cycles = 4;
  return c;
}

TEST(BusConfig, PeakBandwidth) {
  EXPECT_DOUBLE_EQ(tc_config().peak_bytes_per_second(), 100e6);
  EXPECT_EQ(tc_config().cycle(), sim::nanoseconds(40));
}

TEST(Bus, BurstTimeArithmetic) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  // Write burst of 64 words: (5 + 64) cycles * 40 ns = 2760 ns.
  EXPECT_EQ(bus.burst_time(64, Direction::kWrite), sim::nanoseconds(2760));
  // Read adds 4 latency cycles: 73 * 40 = 2920 ns.
  EXPECT_EQ(bus.burst_time(64, Direction::kRead), sim::nanoseconds(2920));
}

TEST(Bus, TransferSplitsIntoBursts) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  // 100 words = one 64-word burst + one 36-word burst (writes):
  // (5+64)*40 + (5+36)*40 = 2760 + 1640 = 4400 ns.
  EXPECT_EQ(bus.transfer_time(400, Direction::kWrite),
            sim::nanoseconds(4400));
  // Zero bytes: zero time.
  EXPECT_EQ(bus.transfer_time(0, Direction::kWrite), 0);
  // Partial word rounds up: 1 byte = 1 word.
  EXPECT_EQ(bus.transfer_time(1, Direction::kWrite),
            bus.transfer_time(4, Direction::kWrite));
}

TEST(Bus, PioChargesPerWordTransaction) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  // 53 bytes = 14 words; each write word costs (5+1)*40 = 240 ns.
  EXPECT_EQ(bus.pio_time(53, Direction::kWrite),
            14 * sim::nanoseconds(240));
  // PIO is far worse than a burst of the same size.
  EXPECT_GT(bus.pio_time(53, Direction::kWrite),
            bus.transfer_time(53, Direction::kWrite));
}

TEST(Bus, EffectiveBandwidthRisesWithBurstSize) {
  sim::Simulator sim;
  double last = 0.0;
  for (std::size_t burst : {4u, 8u, 16u, 32u, 64u, 128u}) {
    BusConfig c = tc_config();
    c.max_burst_words = burst;
    Bus bus(sim, c);
    const auto t = bus.transfer_time(65536, Direction::kWrite);
    const double bw = 65536.0 / sim::to_seconds(t);
    EXPECT_GT(bw, last) << burst;
    last = bw;
  }
  // And it approaches (never exceeds) the 100 MB/s peak.
  EXPECT_LT(last, 100e6);
  EXPECT_GT(last, 90e6);
}

TEST(Bus, TransactionsSerializeFifo) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  std::vector<int> order;
  sim::Time t1 = 0, t2 = 0;
  bus.transfer(256, Direction::kWrite, [&] {
    order.push_back(1);
    t1 = sim.now();
  });
  bus.transfer(256, Direction::kWrite, [&] {
    order.push_back(2);
    t2 = sim.now();
  });
  sim.run();
  ASSERT_EQ(order, (std::vector<int>{1, 2}));
  // Second transfer waits for the first: completes at exactly 2x.
  EXPECT_EQ(t2, 2 * t1);
  EXPECT_EQ(bus.transfers(), 2u);
  EXPECT_EQ(bus.bytes_moved(), 512u);
}

TEST(Bus, QueueingDelayMeasured) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  bus.transfer(4096, Direction::kWrite, [] {});
  bus.transfer(4, Direction::kWrite, [] {});
  sim.run();
  // The second request queued behind the first.
  EXPECT_GT(bus.queueing_delay_us().max(), 0.0);
}

TEST(Bus, UtilizationTracksLoad) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  // Occupy roughly half of a 100 us window.
  const sim::Time busy = bus.transfer_time(4096, Direction::kWrite);
  bus.transfer(4096, Direction::kWrite, [] {});
  sim.run();
  sim.run_until(2 * busy);
  EXPECT_NEAR(bus.utilization(sim.now()), 0.5, 0.01);
}

TEST(Bus, RejectsBadConfig) {
  sim::Simulator sim;
  BusConfig c = tc_config();
  c.clock_hz = 0;
  EXPECT_THROW(Bus(sim, c), std::invalid_argument);
}

TEST(HostMemory, PageAccounting) {
  HostMemory mem(64 * 1024, 4096);
  EXPECT_EQ(mem.pages_total(), 16u);
  EXPECT_EQ(mem.pages_free(), 16u);
  auto page = mem.alloc_page();
  EXPECT_EQ(mem.pages_free(), 15u);
  mem.free(page);
  EXPECT_EQ(mem.pages_free(), 16u);
}

TEST(HostMemory, AllocTrimsLastPage) {
  HostMemory mem(64 * 1024, 4096);
  SgList sg = mem.alloc(10000);
  ASSERT_EQ(sg.size(), 3u);
  EXPECT_EQ(sg[0].len, 4096u);
  EXPECT_EQ(sg[1].len, 4096u);
  EXPECT_EQ(sg[2].len, 10000u - 8192u);
  EXPECT_EQ(sg_length(sg), 10000u);
  mem.free(sg);
  EXPECT_EQ(mem.pages_free(), 16u);
}

TEST(HostMemory, ExhaustionThrows) {
  HostMemory mem(2 * 4096, 4096);
  auto a = mem.alloc(8192);
  EXPECT_THROW(mem.alloc_page(), std::bad_alloc);
  mem.free(a);
  EXPECT_NO_THROW(mem.alloc_page());
}

TEST(HostMemory, StageGatherRoundtrip) {
  HostMemory mem(64 * 1024, 4096);
  const aal::Bytes data = aal::make_pattern(10000, 3);
  SgList sg = mem.stage(data);
  EXPECT_EQ(mem.gather(sg, data.size()), data);
}

TEST(HostMemory, BoundsChecked) {
  HostMemory mem(8192, 4096);
  aal::Bytes buf(16);
  EXPECT_THROW(mem.read(8190, std::span<std::uint8_t>(buf.data(), 16)),
               std::out_of_range);
  EXPECT_THROW(
      mem.write(8190, std::span<const std::uint8_t>(buf.data(), 16)),
      std::out_of_range);
  EXPECT_THROW(mem.free(BufferDescriptor{123, 4096}),
               std::invalid_argument);
}

TEST(HostMemory, RejectsSillyConstruction) {
  EXPECT_THROW(HostMemory(100, 4096), std::invalid_argument);
  EXPECT_THROW(HostMemory(4096, 0), std::invalid_argument);
}

TEST(DmaEngine, ReadReturnsWindowedBytes) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  HostMemory mem(64 * 1024, 4096);
  DmaEngine dma(bus, mem);
  const aal::Bytes data = aal::make_pattern(9000, 5);
  SgList sg = mem.stage(data);

  aal::Bytes got;
  dma.read(sg, 4000, 3000, [&](aal::Bytes b) { got = std::move(b); });
  sim.run();
  ASSERT_EQ(got.size(), 3000u);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), data.begin() + 4000));
  EXPECT_EQ(dma.reads(), 1u);
  EXPECT_EQ(dma.bytes_read(), 3000u);
}

TEST(DmaEngine, WriteLandsAtOffset) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  HostMemory mem(64 * 1024, 4096);
  DmaEngine dma(bus, mem);
  SgList sg = mem.alloc(9000);
  const aal::Bytes payload = aal::make_pattern(1000, 6);
  bool done = false;
  dma.write(sg, 5000, payload, [&] { done = true; });
  sim.run();
  ASSERT_TRUE(done);
  const aal::Bytes all = mem.gather(sg, 9000);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), all.begin() + 5000));
  EXPECT_EQ(dma.writes(), 1u);
  EXPECT_EQ(dma.bytes_written(), 1000u);
}

TEST(DmaEngine, WindowBeyondListThrows) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  HostMemory mem(64 * 1024, 4096);
  DmaEngine dma(bus, mem);
  SgList sg = mem.alloc(100);
  dma.read(sg, 50, 100, [](aal::Bytes) { FAIL(); });
  EXPECT_THROW(sim.run(), std::out_of_range);
}

TEST(DmaEngine, CompletionTimeMatchesBusArithmetic) {
  sim::Simulator sim;
  Bus bus(sim, tc_config());
  HostMemory mem(64 * 1024, 4096);
  DmaEngine dma(bus, mem);
  SgList sg = mem.alloc(4096);
  sim::Time done_at = 0;
  dma.write(sg, 0, aal::Bytes(4096, 1), [&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, bus.transfer_time(4096, Direction::kWrite));
}

}  // namespace
}  // namespace hni::bus
