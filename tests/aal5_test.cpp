// AAL5 tests: CPCS framing, padding and trailer layout, segmentation,
// reassembly, and every failure mode a receiver must detect.

#include <gtest/gtest.h>

#include "aal/aal5.hpp"
#include "atm/crc.hpp"
#include "aal/types.hpp"

namespace hni::aal {
namespace {

atm::VcId kVc{1, 42};

Bytes sdu_of(std::size_t n, std::uint64_t seed = 1) {
  return make_pattern(n, seed);
}

std::optional<Aal5Reassembler::Delivery> feed_all(
    Aal5Reassembler& rx, const std::vector<atm::Cell>& cells) {
  std::optional<Aal5Reassembler::Delivery> out;
  for (const auto& c : cells) {
    auto r = rx.push(c);
    if (r) out = std::move(r);
  }
  return out;
}

TEST(Aal5CellCount, MatchesFormula) {
  EXPECT_EQ(aal5_cell_count(1), 1u);
  EXPECT_EQ(aal5_cell_count(40), 1u);   // 40+8 = 48
  EXPECT_EQ(aal5_cell_count(41), 2u);   // 49 > 48
  EXPECT_EQ(aal5_cell_count(88), 2u);   // 96 exactly
  EXPECT_EQ(aal5_cell_count(9180), 192u);
  EXPECT_EQ(aal5_cell_count(65535), 1366u);  // the AAL5 maximum
}

TEST(Aal5Cpcs, PduIsMultipleOf48) {
  for (std::size_t n : {1u, 39u, 40u, 41u, 47u, 48u, 100u, 9180u}) {
    const Bytes pdu = aal5_build_cpcs_pdu(sdu_of(n));
    EXPECT_EQ(pdu.size() % atm::kPayloadSize, 0u) << n;
    EXPECT_EQ(pdu.size(), aal5_cell_count(n) * atm::kPayloadSize) << n;
  }
}

TEST(Aal5Cpcs, TrailerFields) {
  const Bytes sdu = sdu_of(100);
  const Bytes pdu = aal5_build_cpcs_pdu(sdu, /*uu=*/0xAB, /*cpi=*/0x01);
  const std::uint8_t* t = pdu.data() + pdu.size() - 8;
  EXPECT_EQ(t[0], 0xAB);                       // UU
  EXPECT_EQ(t[1], 0x01);                       // CPI
  EXPECT_EQ((t[2] << 8) | t[3], 100);          // Length
}

TEST(Aal5Cpcs, PadIsZeroed) {
  const Bytes sdu = sdu_of(10);
  const Bytes pdu = aal5_build_cpcs_pdu(sdu);
  for (std::size_t i = 10; i + 8 < pdu.size(); ++i) {
    EXPECT_EQ(pdu[i], 0) << i;
  }
}

TEST(Aal5Cpcs, RejectsEmptyAndOversize) {
  EXPECT_THROW(aal5_build_cpcs_pdu({}), std::length_error);
  EXPECT_THROW(aal5_build_cpcs_pdu(Bytes(65536, 0)), std::length_error);
}

TEST(Aal5Segment, OnlyLastCellCarriesAuu) {
  const auto cells = aal5_segment(sdu_of(200), kVc);
  ASSERT_GE(cells.size(), 2u);
  for (std::size_t i = 0; i + 1 < cells.size(); ++i) {
    EXPECT_FALSE(atm::pti_auu(cells[i].header.pti)) << i;
  }
  EXPECT_TRUE(atm::pti_auu(cells.back().header.pti));
}

TEST(Aal5Segment, AllCellsOnTheVc) {
  const auto cells = aal5_segment(sdu_of(500), kVc, 0, 0, /*clp=*/true);
  for (const auto& c : cells) {
    EXPECT_EQ(c.header.vc, kVc);
    EXPECT_TRUE(c.header.clp);
  }
}

class Aal5Roundtrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Aal5Roundtrip, DeliversExactBytes) {
  const std::size_t n = GetParam();
  const Bytes sdu = sdu_of(n, n);
  const auto cells = aal5_segment(sdu, kVc, 0x11, 0x00);
  EXPECT_EQ(cells.size(), aal5_cell_count(n));

  Aal5Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kNone);
  EXPECT_EQ(d->sdu, sdu);
  EXPECT_EQ(d->uu, 0x11);
  EXPECT_EQ(d->cells, cells.size());
  EXPECT_EQ(rx.pdus_ok(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, Aal5Roundtrip,
    ::testing::Values(1, 2, 7, 39, 40, 41, 47, 48, 49, 95, 96, 97, 255,
                      1000, 4096, 9180, 65535));

TEST(Aal5Reassembler, BackToBackPdus) {
  Aal5Reassembler rx;
  for (int k = 0; k < 5; ++k) {
    const Bytes sdu = sdu_of(100 + static_cast<std::size_t>(k) * 37,
                             static_cast<std::uint64_t>(k));
    auto d = feed_all(rx, aal5_segment(sdu, kVc));
    ASSERT_TRUE(d.has_value()) << k;
    EXPECT_EQ(d->sdu, sdu) << k;
  }
  EXPECT_EQ(rx.pdus_ok(), 5u);
  EXPECT_EQ(rx.pdus_errored(), 0u);
}

TEST(Aal5Reassembler, LostMiddleCellCorruptsCrc) {
  auto cells = aal5_segment(sdu_of(300), kVc);
  ASSERT_GE(cells.size(), 3u);
  cells.erase(cells.begin() + 2);
  Aal5Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->error, ReassemblyError::kNone);
  EXPECT_TRUE(d->sdu.empty());
  EXPECT_EQ(rx.pdus_errored(), 1u);
}

TEST(Aal5Reassembler, LostLastCellConcatenatesAndIsDetected) {
  auto first = aal5_segment(sdu_of(200, 1), kVc);
  auto second = aal5_segment(sdu_of(200, 2), kVc);
  first.pop_back();  // lose the AUU cell

  Aal5Reassembler rx;
  std::optional<Aal5Reassembler::Delivery> d;
  for (const auto& c : first) d = rx.push(c);
  EXPECT_FALSE(d.has_value());
  for (const auto& c : second) {
    auto r = rx.push(c);
    if (r) d = std::move(r);
  }
  // The spliced monster PDU must be rejected, not delivered.
  ASSERT_TRUE(d.has_value());
  EXPECT_NE(d->error, ReassemblyError::kNone);
  EXPECT_EQ(rx.pdus_ok(), 0u);
}

TEST(Aal5Reassembler, CorruptedPayloadFailsCrc) {
  auto cells = aal5_segment(sdu_of(100), kVc);
  cells[0].payload[10] ^= 0xFF;
  Aal5Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kCrc);
}

TEST(Aal5Reassembler, CorruptedLengthDetected) {
  // Flip a length bit *and* fix nothing else: CRC catches it. To test
  // the length check in isolation, rebuild the trailer CRC after
  // tampering with the length.
  const Bytes sdu = sdu_of(100);
  Bytes pdu = aal5_build_cpcs_pdu(sdu);
  std::uint8_t* t = pdu.data() + pdu.size() - 8;
  t[3] = 90;  // wrong length
  // Recompute CRC over the tampered PDU.
  const std::uint32_t crc = [&] {
    return atm::crc32(
        std::span<const std::uint8_t>(pdu.data(), pdu.size() - 4));
  }();
  t[4] = static_cast<std::uint8_t>(crc >> 24);
  t[5] = static_cast<std::uint8_t>(crc >> 16);
  t[6] = static_cast<std::uint8_t>(crc >> 8);
  t[7] = static_cast<std::uint8_t>(crc);

  // Hand-build cells from the tampered PDU.
  std::vector<atm::Cell> cells(pdu.size() / atm::kPayloadSize);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].header.vc = kVc;
    cells[i].header.pti = (i + 1 == cells.size()) ? atm::Pti::kUserData1
                                                  : atm::Pti::kUserData0;
    std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(
                                  i * atm::kPayloadSize),
                atm::kPayloadSize, cells[i].payload.begin());
  }
  Aal5Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  // Length 90 in a 144-octet PDU implies pad of 46 < 48 — wait, 90+8=98,
  // 144-98=46 which is a *valid* pad. The reassembler would truncate to
  // 90 bytes; that is indistinguishable from a legitimate PDU at this
  // layer, so the CRC we recomputed makes it "valid". Assert the
  // truncation contract instead.
  if (d->error == ReassemblyError::kNone) {
    EXPECT_EQ(d->sdu.size(), 90u);
  } else {
    EXPECT_EQ(d->error, ReassemblyError::kLength);
  }
}

TEST(Aal5Reassembler, ImplausibleLengthRejected) {
  // Length implying pad >= 48 must be rejected even with a valid CRC.
  const Bytes sdu = sdu_of(100);  // 3 cells: 144 octets
  Bytes pdu = aal5_build_cpcs_pdu(sdu);
  std::uint8_t* t = pdu.data() + pdu.size() - 8;
  t[2] = 0;
  t[3] = 10;  // pad would be 144-18 = 126 >= 48: bogus
  const std::uint32_t crc = atm::crc32(
      std::span<const std::uint8_t>(pdu.data(), pdu.size() - 4));
  t[4] = static_cast<std::uint8_t>(crc >> 24);
  t[5] = static_cast<std::uint8_t>(crc >> 16);
  t[6] = static_cast<std::uint8_t>(crc >> 8);
  t[7] = static_cast<std::uint8_t>(crc);

  std::vector<atm::Cell> cells(pdu.size() / atm::kPayloadSize);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    cells[i].header.vc = kVc;
    cells[i].header.pti = (i + 1 == cells.size()) ? atm::Pti::kUserData1
                                                  : atm::Pti::kUserData0;
    std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(
                                  i * atm::kPayloadSize),
                atm::kPayloadSize, cells[i].payload.begin());
  }
  Aal5Reassembler rx;
  auto d = feed_all(rx, cells);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kLength);
}

TEST(Aal5Reassembler, OversizeGuardWithoutEom) {
  // A stream that never carries AUU must be bounded by max_sdu.
  Aal5Reassembler rx(Aal5Reassembler::Config(1000));
  auto cells = aal5_segment(sdu_of(5000), kVc);
  cells.pop_back();  // never ends
  std::optional<Aal5Reassembler::Delivery> d;
  for (const auto& c : cells) {
    auto r = rx.push(c);
    if (r) {
      d = std::move(r);
      break;
    }
  }
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->error, ReassemblyError::kOversize);
}

TEST(Aal5Reassembler, IgnoresOamCells) {
  Aal5Reassembler rx;
  atm::Cell oam;
  oam.header.vc = kVc;
  oam.header.pti = atm::Pti::kOamSegment;
  EXPECT_FALSE(rx.push(oam).has_value());
  EXPECT_FALSE(rx.mid_pdu());
}

TEST(Aal5Reassembler, ResetDiscardsPartialPdu) {
  auto cells = aal5_segment(sdu_of(300), kVc);
  Aal5Reassembler rx;
  rx.push(cells[0]);
  EXPECT_TRUE(rx.mid_pdu());
  rx.reset();
  EXPECT_FALSE(rx.mid_pdu());
  // A fresh PDU afterwards reassembles fine.
  const Bytes sdu = sdu_of(50, 9);
  auto d = feed_all(rx, aal5_segment(sdu, kVc));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->sdu, sdu);
}

TEST(Aal5Reassembler, TracksBufferedOctets) {
  auto cells = aal5_segment(sdu_of(300), kVc);
  Aal5Reassembler rx;
  rx.push(cells[0]);
  rx.push(cells[1]);
  EXPECT_EQ(rx.buffered_octets(), 2 * atm::kPayloadSize);
}

}  // namespace
}  // namespace hni::aal
