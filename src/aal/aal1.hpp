// AAL1 — constant-bit-rate circuit emulation (ITU-T I.363.1).
//
// SAR-PDU: a 1-octet header followed by 47 payload octets.
//
//   [ CSI(1b) SC(3b) CRC3(3b) P(1b) | payload(47) ]
//
//   SC    — 3-bit sequence count, increments modulo 8 per cell.
//   CSI   — convergence-sublayer indication (carried, not interpreted
//           here; used e.g. for SRTS timestamps).
//   CRC3  — generator x^3 + x + 1 over the CSI+SC nibble.
//   P     — even parity over the preceding seven bits.
//
// AAL1 carries an octet *stream*, not framed SDUs: the transmitter
// slices its input into 47-octet cells; the receiver emits chunks and
// flags sequence gaps (lost cells) so the application can conceal them.
// The SNP (CRC3 + parity) lets the receiver distinguish a corrupted
// header from a genuine discontinuity.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::aal {

inline constexpr std::size_t kAal1PayloadPerCell = 47;

/// Computes the 4-bit SNP (CRC-3 then even parity) for a CSI+SC nibble.
std::uint8_t aal1_snp(std::uint8_t csi_sc);

/// Builds the AAL1 SAR header octet.
std::uint8_t aal1_encode_header(bool csi, std::uint8_t sc);

/// Decoded AAL1 header.
struct Aal1Header {
  bool csi = false;
  std::uint8_t sc = 0;
  bool snp_ok = false;
};

Aal1Header aal1_decode_header(std::uint8_t octet);

/// Transmit side: slices a byte stream into AAL1 cells.
class Aal1Segmenter {
 public:
  explicit Aal1Segmenter(atm::VcId vc) : vc_(vc) {}

  /// Appends stream octets; returns any cells completed by this input.
  /// Octets short of a full 47-octet payload stay buffered.
  std::vector<atm::Cell> push(const Bytes& stream);

  /// Pads the residue with `fill` and emits a final cell (if any).
  std::optional<atm::Cell> flush(std::uint8_t fill = 0);

  std::size_t buffered() const { return residue_.size(); }

 private:
  atm::Cell make_cell();

  atm::VcId vc_;
  Bytes residue_;
  std::uint8_t next_sc_ = 0;
};

/// Receive side: validates headers, tracks the sequence count, reports
/// payload chunks and detected gaps.
class Aal1Reassembler {
 public:
  struct Chunk {
    std::array<std::uint8_t, kAal1PayloadPerCell> payload{};
    bool csi = false;
    /// Cells inferred lost immediately before this one (0..6; a gap of
    /// exactly 8 is invisible to a 3-bit count).
    std::uint8_t lost_before = 0;
    sim::Time created = 0;
  };

  /// Consumes a cell; returns nothing when the header SNP is invalid
  /// (the cell is dropped as corrupted).
  std::optional<Chunk> push(const atm::Cell& cell);

  std::uint64_t chunks_delivered() const { return delivered_; }
  std::uint64_t cells_lost() const { return lost_; }
  std::uint64_t header_errors() const { return header_errors_; }

 private:
  bool have_state_ = false;
  std::uint8_t expected_sc_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t header_errors_ = 0;
};

}  // namespace hni::aal
