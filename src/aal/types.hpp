// Common types for the ATM adaptation layers.
//
// The paper's central flexibility argument is that the interface's
// programmable engines must support *multiple* AALs, since the adaptation
// layer standards were still in flux in 1991. This library implements the
// three that matter to that argument:
//
//   AAL1  — constant-bit-rate circuit emulation; 1-octet SAR header
//           (CSI + 3-bit sequence count + SNP), 47-octet payload.
//   AAL3/4— the full-featured data AAL: 2-octet SAR header
//           (ST/SN/MID), 44-octet payload, 2-octet trailer (LI/CRC-10),
//           plus a CPCS layer with BTag/ETag framing.
//   AAL5  — "SEAL", the simple and efficient AAL: whole 48-octet cell
//           payloads, end-of-frame signalled in the PTI AUU bit, 8-octet
//           CPCS trailer (UU/CPI/Length/CRC-32).
//
// Segmenters and reassemblers here are *functional* state machines; the
// NIC engines (src/nic) wrap them and charge simulated processing time
// per the firmware cost model (src/proc).

#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace hni::aal {

/// Raw octet buffer for SDUs and CPCS-PDUs.
using Bytes = std::vector<std::uint8_t>;

/// Adaptation layer selector.
enum class AalType : std::uint8_t { kAal1, kAal34, kAal5 };

std::string_view to_string(AalType type);

/// Payload octets carried per cell by each AAL.
constexpr std::size_t payload_per_cell(AalType type) {
  switch (type) {
    case AalType::kAal1:
      return 47;
    case AalType::kAal34:
      return 44;
    case AalType::kAal5:
      return 48;
  }
  return 0;
}

/// Why a reassembly attempt failed.
enum class ReassemblyError : std::uint8_t {
  kNone,
  kCrc,            // payload CRC mismatch (CRC-32 or CRC-10)
  kLength,         // trailer length disagrees with received octets
  kOversize,       // exceeds the configured maximum SDU
  kSequence,       // SAR sequence-number discontinuity (AAL1, AAL3/4)
  kTagMismatch,    // AAL3/4 BTag != ETag
  kProtocol,       // malformed PDU structure (e.g. COM before BOM)
};

std::string_view to_string(ReassemblyError error);

/// Fills `n` bytes with a deterministic, self-identifying test pattern:
/// the first up-to-8 bytes carry `seed` (little-endian), the rest an
/// xorshift stream keyed by it. verify_pattern() recovers the seed from
/// the data itself, so receivers can validate byte integrity even when
/// loss makes SDU indices unknowable. SDUs under 4 bytes are too small
/// to self-identify and verify as true.
Bytes make_pattern(std::size_t n, std::uint64_t seed);
bool verify_pattern(const Bytes& data);
/// Checks against a known seed (strict form).
bool verify_pattern(const Bytes& data, std::uint64_t seed);

}  // namespace hni::aal
