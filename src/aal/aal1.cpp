#include "aal/aal1.hpp"

#include <algorithm>
#include <bit>

namespace hni::aal {
namespace {

// CRC-3 with generator x^3 + x + 1 (0b1011) over the 4-bit CSI+SC value.
std::uint8_t crc3(std::uint8_t nibble) {
  std::uint8_t reg = static_cast<std::uint8_t>((nibble & 0x0F) << 3);
  for (int bit = 6; bit >= 3; --bit) {
    if (reg & (1u << (bit))) {
      reg = static_cast<std::uint8_t>(reg ^ (0b1011u << (bit - 3)));
    }
  }
  return static_cast<std::uint8_t>(reg & 0x07);
}

}  // namespace

std::uint8_t aal1_snp(std::uint8_t csi_sc) {
  const std::uint8_t c = crc3(csi_sc);
  const std::uint8_t upper7 =
      static_cast<std::uint8_t>(((csi_sc & 0x0F) << 3) | c);
  const bool parity_odd = (std::popcount(upper7) & 1) != 0;
  // Even parity: P makes the total number of ones even.
  return static_cast<std::uint8_t>((c << 1) | (parity_odd ? 1 : 0));
}

std::uint8_t aal1_encode_header(bool csi, std::uint8_t sc) {
  const std::uint8_t csi_sc =
      static_cast<std::uint8_t>(((csi ? 1 : 0) << 3) | (sc & 0x07));
  return static_cast<std::uint8_t>((csi_sc << 4) | aal1_snp(csi_sc));
}

Aal1Header aal1_decode_header(std::uint8_t octet) {
  Aal1Header h;
  const std::uint8_t csi_sc = static_cast<std::uint8_t>(octet >> 4);
  h.csi = (csi_sc & 0x08) != 0;
  h.sc = static_cast<std::uint8_t>(csi_sc & 0x07);
  h.snp_ok = aal1_snp(csi_sc) == (octet & 0x0F);
  return h;
}

std::vector<atm::Cell> Aal1Segmenter::push(const Bytes& stream) {
  residue_.insert(residue_.end(), stream.begin(), stream.end());
  std::vector<atm::Cell> cells;
  while (residue_.size() >= kAal1PayloadPerCell) {
    cells.push_back(make_cell());
  }
  return cells;
}

std::optional<atm::Cell> Aal1Segmenter::flush(std::uint8_t fill) {
  if (residue_.empty()) return std::nullopt;
  residue_.resize(kAal1PayloadPerCell, fill);
  return make_cell();
}

atm::Cell Aal1Segmenter::make_cell() {
  atm::Cell cell;
  cell.header.vc = vc_;
  cell.header.pti = atm::Pti::kUserData0;
  cell.payload[0] = aal1_encode_header(false, next_sc_);
  next_sc_ = static_cast<std::uint8_t>((next_sc_ + 1) & 0x07);
  std::copy_n(residue_.begin(), kAal1PayloadPerCell,
              cell.payload.begin() + 1);
  residue_.erase(residue_.begin(),
                 residue_.begin() + kAal1PayloadPerCell);
  return cell;
}

std::optional<Aal1Reassembler::Chunk> Aal1Reassembler::push(
    const atm::Cell& cell) {
  const Aal1Header h = aal1_decode_header(cell.payload[0]);
  if (!h.snp_ok) {
    ++header_errors_;
    return std::nullopt;
  }
  Chunk chunk;
  chunk.csi = h.csi;
  chunk.created = cell.meta.created;
  if (have_state_) {
    chunk.lost_before =
        static_cast<std::uint8_t>((h.sc - expected_sc_) & 0x07);
    lost_ += chunk.lost_before;
  }
  have_state_ = true;
  expected_sc_ = static_cast<std::uint8_t>((h.sc + 1) & 0x07);
  std::copy_n(cell.payload.begin() + 1, kAal1PayloadPerCell,
              chunk.payload.begin());
  ++delivered_;
  return chunk;
}

}  // namespace hni::aal
