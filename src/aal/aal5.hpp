// AAL5 ("SEAL") segmentation and reassembly.
//
// CPCS-PDU layout (ITU-T I.363.5):
//
//   [ payload (1..65535) | pad (0..47) | UU(1) CPI(1) Length(2) CRC32(4) ]
//
// The whole CPCS-PDU is a multiple of 48 octets and is carried in whole
// cell payloads; the final cell of a PDU is marked by the AUU bit of the
// PTI field. Length is the payload length (excluding pad and trailer);
// CRC-32 covers the entire CPCS-PDU with the CRC field itself excluded.
//
// A lost final cell concatenates two PDUs; the reassembler catches this
// via length/CRC violations, exactly as real AAL5 does.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::aal {

/// Maximum AAL5 CPCS payload (Length is a 16-bit count).
inline constexpr std::size_t kAal5MaxSdu = 65535;
inline constexpr std::size_t kAal5TrailerSize = 8;

/// Number of cells an SDU of `sdu_len` occupies on the wire.
constexpr std::size_t aal5_cell_count(std::size_t sdu_len) {
  return (sdu_len + kAal5TrailerSize + atm::kPayloadSize - 1) /
         atm::kPayloadSize;
}

/// Builds the padded CPCS-PDU (payload + pad + trailer) for an SDU.
Bytes aal5_build_cpcs_pdu(const Bytes& sdu, std::uint8_t uu = 0,
                          std::uint8_t cpi = 0);

/// Segments an SDU into cells on virtual connection `vc`. The final
/// cell's PTI carries AUU=1. Throws std::length_error for empty or
/// oversized SDUs.
std::vector<atm::Cell> aal5_segment(const Bytes& sdu, atm::VcId vc,
                                    std::uint8_t uu = 0, std::uint8_t cpi = 0,
                                    bool clp = false);

/// Per-VC AAL5 reassembly state machine.
class Aal5Reassembler {
 public:
  struct Config {
    std::size_t max_sdu;
    Config(std::size_t max_sdu_octets = kAal5MaxSdu) : max_sdu(max_sdu_octets) {}
  };

  struct Delivery {
    Bytes sdu;                 // valid only when error == kNone
    std::uint8_t uu = 0;
    std::uint8_t cpi = 0;
    ReassemblyError error = ReassemblyError::kNone;
    std::size_t cells = 0;     // cells consumed by this PDU attempt
    sim::Time first_cell_time = 0;  // meta.created of the first cell
  };

  explicit Aal5Reassembler(Config config = Config()) : config_(config) {}

  /// Consumes one cell; returns a Delivery when a PDU completes (with
  /// error == kNone) or fails (error set, sdu empty).
  std::optional<Delivery> push(const atm::Cell& cell);

  /// Discards any partially assembled PDU (e.g. on VC teardown).
  void reset();

  /// True if a PDU is partially assembled.
  bool mid_pdu() const { return !buffer_.empty(); }
  std::size_t buffered_octets() const { return buffer_.size(); }

  std::uint64_t pdus_ok() const { return pdus_ok_; }
  std::uint64_t pdus_errored() const { return pdus_errored_; }

 private:
  Delivery finish(ReassemblyError error, std::size_t cells);

  Config config_;
  Bytes buffer_;
  std::size_t cells_in_pdu_ = 0;
  sim::Time first_cell_time_ = 0;
  std::uint64_t pdus_ok_ = 0;
  std::uint64_t pdus_errored_ = 0;
};

}  // namespace hni::aal
