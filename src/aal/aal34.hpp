// AAL3/4 segmentation and reassembly (ITU-T I.363.3/4).
//
// SAR-PDU — exactly one cell payload (48 octets):
//
//   [ ST(2b) SN(4b) MID(10b) | payload(44) | LI(6b) CRC10(10b) ]
//
//   ST: segment type — BOM(10) begins a CPCS-PDU, COM(00) continues,
//       EOM(01) ends, SSM(11) carries a whole PDU in one cell.
//   SN: per-(VC,MID) sequence number modulo 16; gaps reveal lost cells
//       even without end-of-frame loss.
//   MID: multiplexing identifier — up to 1024 interleaved CPCS-PDUs on
//       one VC (the capability AAL5 gave up).
//   LI: number of valid payload octets in this cell (44 except possibly
//       in EOM/SSM).
//   CRC10: covers the whole SAR-PDU with the CRC field zeroed.
//
// CPCS-PDU:
//
//   [ CPI(1) BTag(1) BASize(2) | payload | pad(0..3) | AL(1) ETag(1) Length(2) ]
//
//   BTag must equal ETag (catches a lost EOM splicing two PDUs);
//   Length is the payload octet count; BASize >= Length (equal in
//   message mode, which is what this library uses).

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::aal {

inline constexpr std::size_t kAal34PayloadPerCell = 44;
inline constexpr std::size_t kAal34MaxSdu = 65535;
inline constexpr std::uint16_t kAal34MaxMid = 0x3FF;

/// Segment type codepoints.
enum class SegmentType : std::uint8_t {
  kCom = 0b00,
  kEom = 0b01,
  kBom = 0b10,
  kSsm = 0b11,
};

/// Decoded SAR-PDU fields.
struct SarPdu {
  SegmentType st = SegmentType::kCom;
  std::uint8_t sn = 0;       // 4-bit sequence number
  std::uint16_t mid = 0;     // 10-bit multiplexing id
  std::uint8_t li = 0;       // 6-bit length indicator
  std::array<std::uint8_t, kAal34PayloadPerCell> payload{};
  bool crc_ok = false;       // filled by decode
};

/// Encodes a SAR-PDU into a 48-octet cell payload (computes CRC-10).
std::array<std::uint8_t, atm::kPayloadSize> sar_encode(const SarPdu& pdu);

/// Decodes a 48-octet cell payload; `crc_ok` reflects the CRC-10 check.
SarPdu sar_decode(const std::array<std::uint8_t, atm::kPayloadSize>& raw);

/// Number of cells an SDU of `sdu_len` occupies (CPCS header+trailer and
/// 4-octet alignment included).
std::size_t aal34_cell_count(std::size_t sdu_len);

/// Per-(VC,MID) segmenter. `btag` auto-increments per PDU.
class Aal34Segmenter {
 public:
  explicit Aal34Segmenter(atm::VcId vc, std::uint16_t mid = 0);

  /// Segments an SDU into cells. Throws std::length_error when empty or
  /// beyond kAal34MaxSdu.
  std::vector<atm::Cell> segment(const Bytes& sdu, bool clp = false);

  atm::VcId vc() const { return vc_; }
  std::uint16_t mid() const { return mid_; }

 private:
  atm::VcId vc_;
  std::uint16_t mid_;
  std::uint8_t next_sn_ = 0;
  std::uint8_t next_btag_ = 0;
};

/// Per-VC reassembler demultiplexing all MIDs on the connection.
class Aal34Reassembler {
 public:
  struct Config {
    std::size_t max_sdu;
    Config(std::size_t max_sdu_octets = kAal34MaxSdu) : max_sdu(max_sdu_octets) {}
  };

  struct Delivery {
    Bytes sdu;
    std::uint16_t mid = 0;
    ReassemblyError error = ReassemblyError::kNone;
    std::size_t cells = 0;
    sim::Time first_cell_time = 0;
  };

  explicit Aal34Reassembler(Config config = Config()) : config_(config) {}

  /// Consumes one cell; may complete (or fail) one CPCS-PDU.
  std::optional<Delivery> push(const atm::Cell& cell);

  void reset();

  std::uint64_t pdus_ok() const { return pdus_ok_; }
  std::uint64_t pdus_errored() const { return pdus_errored_; }
  /// Cells dropped for a bad SAR CRC-10 (MID untrustworthy).
  std::uint64_t cells_bad_crc() const { return cells_bad_crc_; }
  /// COM/EOM cells arriving with no open stream (lost BOM).
  std::uint64_t orphan_cells() const { return orphan_cells_; }
  /// Number of MIDs with a partially assembled PDU.
  std::size_t active_streams() const { return streams_.size(); }

 private:
  struct Stream {
    Bytes buffer;
    std::uint8_t expected_sn = 0;
    std::size_t cells = 0;
    sim::Time first_cell_time = 0;
  };

  void begin_stream(Stream& s, const SarPdu& sar, const atm::Cell& cell);
  Delivery complete(std::uint16_t mid, Stream s);
  Delivery fail(std::uint16_t mid, Stream* stream, ReassemblyError error);

  Config config_;
  std::unordered_map<std::uint16_t, Stream> streams_;
  std::uint64_t pdus_ok_ = 0;
  std::uint64_t pdus_errored_ = 0;
  std::uint64_t cells_bad_crc_ = 0;
  std::uint64_t orphan_cells_ = 0;
};

}  // namespace hni::aal
