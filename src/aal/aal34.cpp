#include "aal/aal34.hpp"

#include <algorithm>
#include <stdexcept>

#include "atm/crc.hpp"

namespace hni::aal {
namespace {

constexpr std::size_t kCpcsHeader = 4;   // CPI BTag BASize
constexpr std::size_t kCpcsTrailer = 4;  // AL ETag Length

// CPCS-PDU octet count for an SDU: header + payload padded to a 4-octet
// boundary + trailer.
std::size_t cpcs_size(std::size_t sdu_len) {
  const std::size_t padded = (sdu_len + 3) & ~std::size_t{3};
  return kCpcsHeader + padded + kCpcsTrailer;
}

}  // namespace

std::size_t aal34_cell_count(std::size_t sdu_len) {
  return (cpcs_size(sdu_len) + kAal34PayloadPerCell - 1) /
         kAal34PayloadPerCell;
}

std::array<std::uint8_t, atm::kPayloadSize> sar_encode(const SarPdu& pdu) {
  std::array<std::uint8_t, atm::kPayloadSize> raw{};
  raw[0] = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(pdu.st) << 6) | ((pdu.sn & 0x0F) << 2) |
      ((pdu.mid >> 8) & 0x03));
  raw[1] = static_cast<std::uint8_t>(pdu.mid & 0xFF);
  std::copy(pdu.payload.begin(), pdu.payload.end(), raw.begin() + 2);
  raw[46] = static_cast<std::uint8_t>((pdu.li & 0x3F) << 2);  // CRC zeroed
  raw[47] = 0;
  const std::uint16_t crc =
      atm::crc10(std::span<const std::uint8_t>(raw.data(), raw.size()));
  raw[46] |= static_cast<std::uint8_t>((crc >> 8) & 0x03);
  raw[47] = static_cast<std::uint8_t>(crc & 0xFF);
  return raw;
}

SarPdu sar_decode(const std::array<std::uint8_t, atm::kPayloadSize>& raw) {
  SarPdu pdu;
  pdu.st = static_cast<SegmentType>(raw[0] >> 6);
  pdu.sn = static_cast<std::uint8_t>((raw[0] >> 2) & 0x0F);
  pdu.mid = static_cast<std::uint16_t>(((raw[0] & 0x03) << 8) | raw[1]);
  std::copy(raw.begin() + 2, raw.begin() + 2 + kAal34PayloadPerCell,
            pdu.payload.begin());
  pdu.li = static_cast<std::uint8_t>(raw[46] >> 2);
  // Verify CRC-10: recompute with the CRC bits zeroed.
  auto scratch = raw;
  const std::uint16_t wire_crc =
      static_cast<std::uint16_t>(((raw[46] & 0x03) << 8) | raw[47]);
  scratch[46] &= 0xFC;
  scratch[47] = 0;
  pdu.crc_ok = atm::crc10(std::span<const std::uint8_t>(
                   scratch.data(), scratch.size())) == wire_crc;
  return pdu;
}

Aal34Segmenter::Aal34Segmenter(atm::VcId vc, std::uint16_t mid)
    : vc_(vc), mid_(mid) {
  if (mid > kAal34MaxMid) {
    throw std::out_of_range("AAL3/4: MID exceeds 10 bits");
  }
}

std::vector<atm::Cell> Aal34Segmenter::segment(const Bytes& sdu, bool clp) {
  if (sdu.empty()) throw std::length_error("AAL3/4: empty SDU");
  if (sdu.size() > kAal34MaxSdu) {
    throw std::length_error("AAL3/4: SDU > 65535");
  }

  // Build the CPCS-PDU.
  Bytes pdu(cpcs_size(sdu.size()), 0);
  const std::uint8_t btag = next_btag_++;
  pdu[0] = 0;  // CPI: message mode, counts in octets
  pdu[1] = btag;
  pdu[2] = static_cast<std::uint8_t>(sdu.size() >> 8);  // BASize
  pdu[3] = static_cast<std::uint8_t>(sdu.size() & 0xFF);
  std::copy(sdu.begin(), sdu.end(), pdu.begin() + kCpcsHeader);
  std::uint8_t* t = pdu.data() + pdu.size() - kCpcsTrailer;
  t[0] = 0;  // AL
  t[1] = btag;
  t[2] = static_cast<std::uint8_t>(sdu.size() >> 8);  // Length
  t[3] = static_cast<std::uint8_t>(sdu.size() & 0xFF);

  // Slice into SAR-PDUs.
  const std::size_t n_cells =
      (pdu.size() + kAal34PayloadPerCell - 1) / kAal34PayloadPerCell;
  std::vector<atm::Cell> cells(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    SarPdu sar;
    const std::size_t off = i * kAal34PayloadPerCell;
    const std::size_t chunk =
        std::min(kAal34PayloadPerCell, pdu.size() - off);
    if (n_cells == 1) {
      sar.st = SegmentType::kSsm;
    } else if (i == 0) {
      sar.st = SegmentType::kBom;
    } else if (i + 1 == n_cells) {
      sar.st = SegmentType::kEom;
    } else {
      sar.st = SegmentType::kCom;
    }
    sar.sn = next_sn_;
    next_sn_ = static_cast<std::uint8_t>((next_sn_ + 1) & 0x0F);
    sar.mid = mid_;
    sar.li = static_cast<std::uint8_t>(chunk);
    std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(off), chunk,
                sar.payload.begin());

    atm::Cell& cell = cells[i];
    cell.header.vc = vc_;
    cell.header.clp = clp;
    cell.header.pti = atm::Pti::kUserData0;  // AAL3/4 does not use AUU
    cell.payload = sar_encode(sar);
  }
  return cells;
}

std::optional<Aal34Reassembler::Delivery> Aal34Reassembler::push(
    const atm::Cell& cell) {
  if (!atm::pti_is_user_data(cell.header.pti)) return std::nullopt;
  const SarPdu sar = sar_decode(cell.payload);
  if (!sar.crc_ok) {
    // A corrupted SAR-PDU: we cannot even trust the MID. Real receivers
    // drop the cell; any affected stream times out / fails at EOM.
    ++cells_bad_crc_;
    return std::nullopt;
  }

  auto it = streams_.find(sar.mid);

  switch (sar.st) {
    case SegmentType::kSsm: {
      if (it != streams_.end()) {
        // An SSM while mid-PDU aborts the open stream.
        Delivery d = fail(sar.mid, &it->second, ReassemblyError::kProtocol);
        streams_.erase(it);
        return d;
      }
      Stream s;
      s.first_cell_time = cell.meta.created;
      s.cells = 1;
      s.buffer.assign(sar.payload.begin(), sar.payload.begin() + sar.li);
      return complete(sar.mid, std::move(s));
    }
    case SegmentType::kBom: {
      if (it != streams_.end()) {
        Delivery d = fail(sar.mid, &it->second, ReassemblyError::kProtocol);
        it->second = Stream{};
        begin_stream(it->second, sar, cell);
        return d;
      }
      Stream& s = streams_[sar.mid];
      begin_stream(s, sar, cell);
      return std::nullopt;
    }
    case SegmentType::kCom:
    case SegmentType::kEom: {
      if (it == streams_.end()) {
        // COM/EOM with no BOM: lost BOM. Count and drop.
        ++orphan_cells_;
        Delivery d;
        d.mid = sar.mid;
        d.error = ReassemblyError::kProtocol;
        d.cells = 1;
        ++pdus_errored_;
        return d;
      }
      Stream& s = it->second;
      if (sar.sn != s.expected_sn) {
        Delivery d = fail(sar.mid, &s, ReassemblyError::kSequence);
        streams_.erase(it);
        return d;
      }
      s.expected_sn = static_cast<std::uint8_t>((s.expected_sn + 1) & 0x0F);
      ++s.cells;
      s.buffer.insert(s.buffer.end(), sar.payload.begin(),
                      sar.payload.begin() + sar.li);
      if (s.buffer.size() > cpcs_size(config_.max_sdu)) {
        Delivery d = fail(sar.mid, &s, ReassemblyError::kOversize);
        streams_.erase(it);
        return d;
      }
      if (sar.st == SegmentType::kCom) return std::nullopt;
      Stream finished = std::move(s);
      streams_.erase(it);
      return complete(sar.mid, std::move(finished));
    }
  }
  return std::nullopt;
}

void Aal34Reassembler::begin_stream(Stream& s, const SarPdu& sar,
                                    const atm::Cell& cell) {
  s.buffer.assign(sar.payload.begin(), sar.payload.begin() + sar.li);
  s.expected_sn = static_cast<std::uint8_t>((sar.sn + 1) & 0x0F);
  s.cells = 1;
  s.first_cell_time = cell.meta.created;
}

Aal34Reassembler::Delivery Aal34Reassembler::complete(std::uint16_t mid,
                                                      Stream s) {
  Delivery d;
  d.mid = mid;
  d.cells = s.cells;
  d.first_cell_time = s.first_cell_time;

  const Bytes& pdu = s.buffer;
  if (pdu.size() < kCpcsHeader + kCpcsTrailer) {
    d.error = ReassemblyError::kLength;
    ++pdus_errored_;
    return d;
  }
  const std::uint8_t btag = pdu[1];
  const std::size_t basize = (static_cast<std::size_t>(pdu[2]) << 8) | pdu[3];
  const std::uint8_t* t = pdu.data() + pdu.size() - kCpcsTrailer;
  const std::uint8_t etag = t[1];
  const std::size_t length = (static_cast<std::size_t>(t[2]) << 8) | t[3];
  if (btag != etag) {
    d.error = ReassemblyError::kTagMismatch;
    ++pdus_errored_;
    return d;
  }
  if (length == 0 || length > config_.max_sdu || basize < length ||
      cpcs_size(length) != pdu.size()) {
    d.error = ReassemblyError::kLength;
    ++pdus_errored_;
    return d;
  }
  d.sdu.assign(pdu.begin() + kCpcsHeader,
               pdu.begin() + static_cast<std::ptrdiff_t>(kCpcsHeader + length));
  d.error = ReassemblyError::kNone;
  ++pdus_ok_;
  return d;
}

Aal34Reassembler::Delivery Aal34Reassembler::fail(std::uint16_t mid,
                                                  Stream* stream,
                                                  ReassemblyError error) {
  Delivery d;
  d.mid = mid;
  d.error = error;
  if (stream != nullptr) {
    d.cells = stream->cells;
    d.first_cell_time = stream->first_cell_time;
  }
  ++pdus_errored_;
  return d;
}

void Aal34Reassembler::reset() { streams_.clear(); }

}  // namespace hni::aal
