#include "aal/sar.hpp"

#include <stdexcept>

#include "aal/aal1.hpp"

namespace hni::aal {

FrameSegmenter::FrameSegmenter(AalType type, atm::VcId vc, std::uint16_t mid)
    : type_(type), vc_(vc) {
  switch (type) {
    case AalType::kAal5:
      break;
    case AalType::kAal34:
      aal34_.emplace(vc, mid);
      break;
    case AalType::kAal1:
      throw std::invalid_argument(
          "FrameSegmenter: AAL1 is a stream AAL; use Aal1Segmenter");
  }
}

std::vector<atm::Cell> FrameSegmenter::segment(const Bytes& sdu, bool clp) {
  if (type_ == AalType::kAal5) return aal5_segment(sdu, vc_, 0, 0, clp);
  return aal34_->segment(sdu, clp);
}

std::size_t FrameSegmenter::cell_count(AalType type, std::size_t sdu_len) {
  switch (type) {
    case AalType::kAal5:
      return aal5_cell_count(sdu_len);
    case AalType::kAal34:
      return aal34_cell_count(sdu_len);
    case AalType::kAal1:
      return (sdu_len + kAal1PayloadPerCell - 1) / kAal1PayloadPerCell;
  }
  return 0;
}

FrameReassembler::FrameReassembler(AalType type, Config config)
    : type_(type),
      impl_(type == AalType::kAal5
                ? std::variant<Aal5Reassembler, Aal34Reassembler>(
                      Aal5Reassembler(Aal5Reassembler::Config(config.max_sdu)))
                : std::variant<Aal5Reassembler, Aal34Reassembler>(
                      Aal34Reassembler(Aal34Reassembler::Config(config.max_sdu)))) {
  if (type == AalType::kAal1) {
    throw std::invalid_argument(
        "FrameReassembler: AAL1 is a stream AAL; use Aal1Reassembler");
  }
}

std::optional<FrameDelivery> FrameReassembler::push(const atm::Cell& cell) {
  FrameDelivery out;
  if (type_ == AalType::kAal5) {
    auto r = std::get<Aal5Reassembler>(impl_).push(cell);
    if (!r) return std::nullopt;
    out.sdu = std::move(r->sdu);
    out.error = r->error;
    out.cells = r->cells;
    out.first_cell_time = r->first_cell_time;
  } else {
    auto r = std::get<Aal34Reassembler>(impl_).push(cell);
    if (!r) return std::nullopt;
    out.sdu = std::move(r->sdu);
    out.error = r->error;
    out.cells = r->cells;
    out.first_cell_time = r->first_cell_time;
  }
  return out;
}

void FrameReassembler::reset() {
  if (type_ == AalType::kAal5) {
    std::get<Aal5Reassembler>(impl_).reset();
  } else {
    std::get<Aal34Reassembler>(impl_).reset();
  }
}

bool FrameReassembler::mid_pdu() const {
  return type_ == AalType::kAal5
             ? std::get<Aal5Reassembler>(impl_).mid_pdu()
             : std::get<Aal34Reassembler>(impl_).active_streams() > 0;
}

std::uint64_t FrameReassembler::pdus_ok() const {
  return type_ == AalType::kAal5 ? std::get<Aal5Reassembler>(impl_).pdus_ok()
                                 : std::get<Aal34Reassembler>(impl_).pdus_ok();
}

std::uint64_t FrameReassembler::pdus_errored() const {
  return type_ == AalType::kAal5
             ? std::get<Aal5Reassembler>(impl_).pdus_errored()
             : std::get<Aal34Reassembler>(impl_).pdus_errored();
}

}  // namespace hni::aal
