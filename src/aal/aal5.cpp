#include "aal/aal5.hpp"

#include <algorithm>
#include <stdexcept>

#include "atm/crc.hpp"

namespace hni::aal {

Bytes aal5_build_cpcs_pdu(const Bytes& sdu, std::uint8_t uu,
                          std::uint8_t cpi) {
  if (sdu.empty()) throw std::length_error("AAL5: empty SDU");
  if (sdu.size() > kAal5MaxSdu) throw std::length_error("AAL5: SDU > 65535");

  const std::size_t total = aal5_cell_count(sdu.size()) * atm::kPayloadSize;
  Bytes pdu(total, 0);
  std::copy(sdu.begin(), sdu.end(), pdu.begin());
  // Trailer occupies the final 8 octets.
  std::uint8_t* t = pdu.data() + total - kAal5TrailerSize;
  t[0] = uu;
  t[1] = cpi;
  t[2] = static_cast<std::uint8_t>(sdu.size() >> 8);
  t[3] = static_cast<std::uint8_t>(sdu.size() & 0xFF);
  const std::uint32_t crc = atm::crc32(
      std::span<const std::uint8_t>(pdu.data(), total - 4));
  t[4] = static_cast<std::uint8_t>(crc >> 24);
  t[5] = static_cast<std::uint8_t>(crc >> 16);
  t[6] = static_cast<std::uint8_t>(crc >> 8);
  t[7] = static_cast<std::uint8_t>(crc & 0xFF);
  return pdu;
}

std::vector<atm::Cell> aal5_segment(const Bytes& sdu, atm::VcId vc,
                                    std::uint8_t uu, std::uint8_t cpi,
                                    bool clp) {
  const Bytes pdu = aal5_build_cpcs_pdu(sdu, uu, cpi);
  const std::size_t n_cells = pdu.size() / atm::kPayloadSize;
  std::vector<atm::Cell> cells(n_cells);
  for (std::size_t i = 0; i < n_cells; ++i) {
    atm::Cell& cell = cells[i];
    cell.header.vc = vc;
    cell.header.clp = clp;
    cell.header.pti =
        (i + 1 == n_cells) ? atm::Pti::kUserData1 : atm::Pti::kUserData0;
    std::copy_n(pdu.begin() + static_cast<std::ptrdiff_t>(
                                  i * atm::kPayloadSize),
                atm::kPayloadSize, cell.payload.begin());
  }
  return cells;
}

std::optional<Aal5Reassembler::Delivery> Aal5Reassembler::push(
    const atm::Cell& cell) {
  if (!atm::pti_is_user_data(cell.header.pti)) return std::nullopt;  // OAM
  if (buffer_.empty()) {
    first_cell_time_ = cell.meta.created;
    // Reserve the full admissible PDU on the first cell: one
    // allocation per PDU instead of a doubling reallocation every few
    // cells — the mid-PDU cell path must stay off the allocator.
    buffer_.reserve(aal5_cell_count(config_.max_sdu) * atm::kPayloadSize);
  }
  buffer_.insert(buffer_.end(), cell.payload.begin(), cell.payload.end());
  ++cells_in_pdu_;

  if (!atm::pti_auu(cell.header.pti)) {
    // Mid-PDU cell. Enforce the size bound early so a lost final cell
    // cannot buffer unboundedly.
    const std::size_t limit =
        aal5_cell_count(config_.max_sdu) * atm::kPayloadSize;
    if (buffer_.size() > limit) {
      return finish(ReassemblyError::kOversize, cells_in_pdu_);
    }
    return std::nullopt;
  }

  // Final cell: validate trailer.
  const std::size_t total = buffer_.size();
  const std::uint8_t* t = buffer_.data() + total - kAal5TrailerSize;
  const std::size_t length = static_cast<std::size_t>(t[2]) << 8 | t[3];
  const std::uint32_t wire_crc = (static_cast<std::uint32_t>(t[4]) << 24) |
                                 (static_cast<std::uint32_t>(t[5]) << 16) |
                                 (static_cast<std::uint32_t>(t[6]) << 8) |
                                 static_cast<std::uint32_t>(t[7]);
  const std::uint32_t crc =
      atm::crc32(std::span<const std::uint8_t>(buffer_.data(), total - 4));
  if (crc != wire_crc) return finish(ReassemblyError::kCrc, cells_in_pdu_);
  if (length == 0 || length > config_.max_sdu ||
      length + kAal5TrailerSize > total ||
      total - (length + kAal5TrailerSize) >= atm::kPayloadSize) {
    return finish(ReassemblyError::kLength, cells_in_pdu_);
  }

  Delivery d;
  d.uu = t[0];
  d.cpi = t[1];
  d.error = ReassemblyError::kNone;
  d.cells = cells_in_pdu_;
  d.first_cell_time = first_cell_time_;
  buffer_.resize(length);
  d.sdu = std::move(buffer_);
  buffer_.clear();
  cells_in_pdu_ = 0;
  ++pdus_ok_;
  return d;
}

Aal5Reassembler::Delivery Aal5Reassembler::finish(ReassemblyError error,
                                                  std::size_t cells) {
  Delivery d;
  d.error = error;
  d.cells = cells;
  d.first_cell_time = first_cell_time_;
  buffer_.clear();
  cells_in_pdu_ = 0;
  ++pdus_errored_;
  return d;
}

void Aal5Reassembler::reset() {
  buffer_.clear();
  cells_in_pdu_ = 0;
}

}  // namespace hni::aal
