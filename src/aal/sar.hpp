// AAL-agnostic segmentation/reassembly facade for framed AALs.
//
// The NIC protocol engines are programmable precisely so the same
// hardware can run different AALs; this facade is the software analogue:
// nic/ and host/ code handles frames through one interface and the AAL
// variant is a per-VC configuration knob (AAL5 or AAL3/4 — AAL1 is a
// stream AAL and keeps its own interface in aal1.hpp).

#pragma once

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "aal/aal34.hpp"
#include "aal/aal5.hpp"
#include "aal/types.hpp"
#include "atm/cell.hpp"

namespace hni::aal {

/// Result of a completed (or failed) reassembly, AAL-independent.
struct FrameDelivery {
  Bytes sdu;
  ReassemblyError error = ReassemblyError::kNone;
  std::size_t cells = 0;
  sim::Time first_cell_time = 0;

  bool ok() const { return error == ReassemblyError::kNone; }
};

/// Segments SDUs on one VC with the configured framed AAL.
class FrameSegmenter {
 public:
  FrameSegmenter(AalType type, atm::VcId vc, std::uint16_t mid = 0);

  std::vector<atm::Cell> segment(const Bytes& sdu, bool clp = false);

  AalType type() const { return type_; }
  atm::VcId vc() const { return vc_; }

  /// Cells an SDU of `sdu_len` octets occupies under this AAL.
  static std::size_t cell_count(AalType type, std::size_t sdu_len);

 private:
  AalType type_;
  atm::VcId vc_;
  std::optional<Aal34Segmenter> aal34_;  // engaged iff type == kAal34
};

/// Reassembles one VC's cell stream with the configured framed AAL.
class FrameReassembler {
 public:
  struct Config {
    std::size_t max_sdu;
    Config(std::size_t max_sdu_octets = kAal5MaxSdu) : max_sdu(max_sdu_octets) {}
  };

  explicit FrameReassembler(AalType type, Config config = Config());

  std::optional<FrameDelivery> push(const atm::Cell& cell);
  void reset();

  AalType type() const { return type_; }
  /// True while a PDU is partially assembled (AAL5: the single stream;
  /// AAL3/4: any open MID stream).
  bool mid_pdu() const;
  std::uint64_t pdus_ok() const;
  std::uint64_t pdus_errored() const;

 private:
  AalType type_;
  std::variant<Aal5Reassembler, Aal34Reassembler> impl_;
};

}  // namespace hni::aal
