#include "host/host.hpp"

#include <utility>

namespace hni::host {

Host::Host(sim::Simulator& sim, bus::HostMemory& memory, nic::Nic& nic,
           HostConfig config)
    : sim_(sim),
      memory_(memory),
      nic_(nic),
      config_(config),
      cpu_(sim, config.cpu) {
  nic_.tx().set_completion(
      [this](const nic::TxDescriptor& d) { on_tx_complete(d); });
  nic_.rx().set_deliver([this](nic::RxDelivery d) { on_rx(std::move(d)); });
  // Congestion visibility: record every throttle/recovery the NIC's
  // closed-loop controller applies, per VC, for applications to read.
  nic_.set_congestion_handler([this](atm::VcId vc, double factor) {
    rate_factors_[vc] = factor;
    congestion_events_.add();
  });
  // Post the receive-buffer budget: the NIC draws landing pages from it
  // and a delivery returns them once the host has consumed the SDU.
  rx_pages_available_ = config_.rx_posted_pages;
  nic_.rx().set_buffer_allocator(
      [this](std::size_t bytes) -> std::optional<bus::SgList> {
        const std::size_t pages =
            (bytes + memory_.page_bytes() - 1) / memory_.page_bytes();
        if (pages > rx_pages_available_ ||
            pages > memory_.pages_free()) {
          return std::nullopt;
        }
        rx_pages_available_ -= pages;
        return memory_.alloc(bytes);
      });
  // A landing that never completes (DMA gave up) must repost its pages,
  // or the budget leaks away under faults.
  nic_.rx().set_buffer_releaser([this](const bus::SgList& sg) {
    memory_.free(sg);
    rx_pages_available_ += sg.size();
  });
}

bool Host::send(atm::VcId vc, aal::AalType aal, aal::Bytes sdu) {
  if (inflight_ >= config_.max_inflight_tx) return false;
  ++inflight_;
  sent_.add();
  bytes_tx_.add(sdu.size());

  // Stage the SDU into pinned host pages (functional copy; the CPU cost
  // of the syscall + staging is charged to the host engine).
  nic::TxDescriptor d;
  d.len = sdu.size();
  d.sg = memory_.stage(sdu);
  d.vc = vc;
  d.aal = aal;
  d.cookie = sent_.value();

  cpu_.execute(config_.costs.tx_syscall, [this, d = std::move(d)]() mutable {
    if (!nic_.tx().post(d)) backlog_.push_back(std::move(d));
  });
  return true;
}

void Host::on_tx_complete(const nic::TxDescriptor& d) {
  memory_.free(d.sg);
  drain_backlog();
  cpu_.execute(config_.costs.tx_completion, [this] {
    if (inflight_ > 0) --inflight_;
    if (tx_ready_) tx_ready_();
  });
}

void Host::drain_backlog() {
  while (!backlog_.empty() && nic_.tx().post(backlog_.front())) {
    backlog_.pop_front();
  }
}

void Host::on_rx(nic::RxDelivery d) {
  // One interrupt may cover several PDUs; charge trap entry once.
  std::uint32_t instr = config_.costs.rx_per_pdu;
  if (d.first_of_batch) {
    instr += config_.costs.interrupt_entry;
    interrupts_.add();
  }
  cpu_.execute(instr, [this, d = std::move(d)] {
    aal::Bytes sdu = memory_.gather(d.sg, d.len);
    memory_.free(d.sg);
    rx_pages_available_ += d.sg.size();  // replenish the posted budget
    received_.add();
    bytes_rx_.add(sdu.size());
    RxInfo info;
    info.vc = d.vc;
    info.first_cell_time = d.first_cell_time;
    info.delivered_time = d.delivered_time;
    info.handed_up_time = sim_.now();
    info.interrupt_batch = d.interrupt_batch;
    if (auto it = vc_handlers_.find(d.vc); it != vc_handlers_.end()) {
      it->second(std::move(sdu), info);
    } else if (rx_handler_) {
      rx_handler_(std::move(sdu), info);
    }
  });
}

}  // namespace hni::host
