#include "host/sw_sar.hpp"

#include <utility>

namespace hni::host {

SwSarHost::SwSarHost(sim::Simulator& sim, bus::Bus& bus, SwSarConfig config)
    : sim_(sim),
      bus_(bus),
      config_(config),
      cpu_(sim, config.cpu),
      tx_fifo_(sim, config.tx_fifo_cells),
      rx_fifo_(sim, config.rx_fifo_cells),
      framer_(sim, config.line) {
  framer_.set_supplier([this]() -> std::optional<atm::Cell> {
    return tx_fifo_.pop();
  });
  rx_fifo_.set_on_push([this] { pump_rx(); });
}

void SwSarHost::open_vc(atm::VcId vc, aal::AalType aal) {
  vc_aal_.insert_or_assign(vc, aal);
  reassemblers_.emplace(vc, aal::FrameReassembler(aal));
}

void SwSarHost::attach_tx(net::Link& link) {
  framer_.set_sink([&link](const atm::Cell& cell) { link.send(cell); });
  framer_.start();
}

bool SwSarHost::send(atm::VcId vc, aal::AalType aal, aal::Bytes sdu) {
  if (tx_jobs_.size() >= config_.max_inflight_tx) return false;
  sent_.add();
  // Segmentation is functional up front; every CPU and bus cost is
  // charged in the per-cell pump below.
  aal::FrameSegmenter seg(aal, vc);
  TxJob job;
  job.cells = seg.segment(sdu);
  tx_jobs_.push_back(std::move(job));
  cpu_.execute(config_.costs.tx_syscall, [this] { pump_tx(); });
  return true;
}

void SwSarHost::pump_tx() {
  if (tx_active_ || tx_jobs_.empty()) return;
  if (tx_fifo_.full()) {
    tx_fifo_.wait_space([this] { pump_tx(); });
    return;
  }
  tx_active_ = true;
  const std::uint32_t instr =
      config_.sar_tx_per_cell + crc_instructions(config_.crc_per_word);
  cpu_.execute(instr, [this] {
    // CPU stays occupied while it PIOs the cell to the adaptor.
    const sim::Time pio =
        bus_.pio_time(atm::kCellSize, bus::Direction::kRead);
    bus_.pio_transfer(atm::kCellSize, bus::Direction::kRead, [] {});
    cpu_.occupy(pio, [this] { tx_cell_done(); });
  });
}

void SwSarHost::tx_cell_done() {
  TxJob& job = tx_jobs_.front();
  atm::Cell cell = std::move(job.cells[job.next]);
  cell.meta.created = sim_.now();
  cell.meta.seq = next_seq_++;
  tx_fifo_.push(std::move(cell));
  ++job.next;
  if (job.next == job.cells.size()) {
    tx_jobs_.pop_front();
    if (tx_ready_) tx_ready_();
  }
  tx_active_ = false;
  pump_tx();
}

void SwSarHost::receive_wire(const net::WireCell& wire) {
  auto bytes = wire.bytes;
  auto header = std::span<std::uint8_t, 4>(bytes.data(), 4);
  if (hec_.push(header, bytes[4]) == atm::HecVerdict::kDiscard) return;
  atm::Cell cell = atm::Cell::deserialize(
      std::span<const std::uint8_t, atm::kCellSize>(bytes.data(),
                                                    atm::kCellSize),
      atm::HeaderFormat::kUni);
  cell.meta = wire.meta;
  rx_fifo_.push(std::move(cell));  // overflow counted by the FIFO
}

void SwSarHost::pump_rx() {
  if (rx_active_) return;
  std::optional<atm::Cell> cell = rx_fifo_.pop();
  if (!cell) return;
  rx_active_ = true;

  // A fresh interrupt only when the host was out of the service loop.
  std::uint32_t instr =
      config_.sar_rx_per_cell + crc_instructions(config_.crc_per_word);
  if (!in_interrupt_) {
    in_interrupt_ = true;
    interrupts_.add();
    instr += config_.costs.interrupt_entry;
  }

  atm::Cell c = std::move(*cell);
  cpu_.execute(instr, [this, c = std::move(c)]() mutable {
    // PIO the cell out of the adaptor while the CPU waits.
    const sim::Time pio =
        bus_.pio_time(atm::kCellSize, bus::Direction::kWrite);
    bus_.pio_transfer(atm::kCellSize, bus::Direction::kWrite, [] {});
    cpu_.occupy(pio, [this, c = std::move(c)]() mutable {
      auto it = reassemblers_.find(c.header.vc);
      if (it != reassemblers_.end()) {
        if (auto done = it->second.push(c)) {
          if (done->ok()) {
            received_.add();
            const auto finish = [this, d = std::move(*done),
                                 vc = c.header.vc]() mutable {
              if (rx_handler_) {
                RxInfo info;
                info.vc = vc;
                info.first_cell_time = d.first_cell_time;
                info.delivered_time = sim_.now();
                info.handed_up_time = sim_.now();
                rx_handler_(std::move(d.sdu), info);
              }
            };
            rx_active_ = false;
            cpu_.execute(config_.costs.rx_per_pdu, finish);
            // Continue draining; leave interrupt context when empty.
            if (rx_fifo_.empty()) in_interrupt_ = false;
            pump_rx();
            return;
          }
          pdus_err_.add();
        }
      }
      rx_active_ = false;
      if (rx_fifo_.empty()) in_interrupt_ = false;
      pump_rx();
    });
  });
}

}  // namespace hni::host
