// Baseline: software SAR on the host CPU.
//
// This is the design the paper's architecture displaces — a minimal
// adaptor (framer + shallow hardware FIFOs, no engines, no DMA) where
// the host processor itself segments, reassembles, computes CRCs, and
// moves every cell across the bus with programmed I/O:
//
//   TX: per PDU, a syscall; per cell, SAR work + software CRC on the
//       CPU, then 53 octets of PIO (one bus transaction per word).
//   RX: each cell interrupts the host (cells already waiting in the
//       shallow FIFO are drained in the same interrupt); per cell, PIO
//       read + SAR + CRC on the CPU; per PDU, protocol hand-off.
//
// The host CPU is occupied for the full duration of each PIO transfer.
// Under load the RX FIFO overflows — the cell loss the outboard
// architecture avoids. Bench T4 puts this side by side with the
// engine-based interface.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "aal/sar.hpp"
#include "atm/phy.hpp"
#include "bus/turbochannel.hpp"
#include "host/host.hpp"
#include "net/link.hpp"
#include "nic/fifo.hpp"
#include "proc/engine.hpp"

namespace hni::host {

struct SwSarConfig {
  proc::EngineConfig cpu{"host-cpu", 25e6, 1.25};
  HostCosts costs{};
  std::uint32_t sar_tx_per_cell = 30;  // header/trailer fields, loop
  std::uint32_t sar_rx_per_cell = 40;  // demux, state, append
  std::uint32_t crc_per_word = 4;      // software CRC (no offload here)
  std::size_t tx_fifo_cells = 32;
  std::size_t rx_fifo_cells = 32;      // shallow adaptor FIFO
  std::size_t max_inflight_tx = 4;
  atm::LineRate line = atm::sts3c();
};

class SwSarHost {
 public:
  using RxHandler = std::function<void(aal::Bytes sdu, const RxInfo& info)>;
  using ReadyFn = std::function<void()>;

  SwSarHost(sim::Simulator& sim, bus::Bus& bus, SwSarConfig config);

  bool send(atm::VcId vc, aal::AalType aal, aal::Bytes sdu);
  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
  void set_tx_ready(ReadyFn ready) { tx_ready_ = std::move(ready); }

  void open_vc(atm::VcId vc, aal::AalType aal);

  /// Connects the adaptor's framer to an outgoing link and starts it.
  void attach_tx(net::Link& link);
  /// PHY entry point (connect the incoming link's sink here).
  void receive_wire(const net::WireCell& wire);

  double cpu_utilization() const { return cpu_.utilization(sim_.now()); }
  const proc::Engine& cpu() const { return cpu_; }
  std::uint64_t sdus_sent() const { return sent_.value(); }
  std::uint64_t sdus_received() const { return received_.value(); }
  std::uint64_t interrupts_taken() const { return interrupts_.value(); }
  std::uint64_t rx_fifo_drops() const { return rx_fifo_.drops(); }
  std::uint64_t pdus_errored() const { return pdus_err_.value(); }

 private:
  struct TxJob {
    std::vector<atm::Cell> cells;
    std::size_t next = 0;
  };

  void pump_tx();
  void tx_cell_done();
  void pump_rx();

  static std::uint32_t crc_instructions(std::uint32_t per_word) {
    return per_word * (48 / 4);
  }

  sim::Simulator& sim_;
  bus::Bus& bus_;
  SwSarConfig config_;
  proc::Engine cpu_;
  nic::CellFifo<atm::Cell> tx_fifo_;
  nic::CellFifo<atm::Cell> rx_fifo_;
  atm::TxFramer framer_;
  atm::HecReceiver hec_;
  RxHandler rx_handler_;
  ReadyFn tx_ready_;

  std::deque<TxJob> tx_jobs_;
  bool tx_active_ = false;
  bool rx_active_ = false;      // a cell is being serviced right now
  bool in_interrupt_ = false;   // host is inside the RX interrupt loop
  std::unordered_map<atm::VcId, aal::FrameReassembler> reassemblers_;
  std::unordered_map<atm::VcId, aal::AalType> vc_aal_;
  std::uint64_t next_seq_ = 0;

  sim::Counter sent_;
  sim::Counter received_;
  sim::Counter interrupts_;
  sim::Counter pdus_err_;
};

}  // namespace hni::host
