// Host system model: workstation CPU + driver for the outboard
// interface.
//
// The host side of the architecture is deliberately thin — that is the
// point. send() costs one system call and a descriptor post; receive
// costs one (possibly coalesced) interrupt plus per-PDU driver work. The
// host CPU is a cycle-cost Engine (an R3000-class workstation processor)
// so experiments can report host CPU utilization, the headline number in
// the comparison against software SAR (bench T4).

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "bus/host_memory.hpp"
#include "nic/nic.hpp"
#include "proc/engine.hpp"

namespace hni::host {

/// Host CPU cost table, in instructions. The counts are driver-path
/// budgets typical of the period's measurements (trap handling in the
/// low hundreds of instructions, syscalls similar).
struct HostCosts {
  std::uint32_t interrupt_entry = 180;  // trap, dispatch, EOI, return
  std::uint32_t tx_syscall = 150;       // user->kernel, pin/stage, post
  std::uint32_t tx_completion = 40;     // reclaim buffers, wake sender
  std::uint32_t rx_per_pdu = 120;       // unlink, protocol hand-off, wake
};

struct HostConfig {
  proc::EngineConfig cpu{"host-cpu", 25e6, 1.25};  // ~20 MIPS R3000 class
  HostCosts costs{};
  std::size_t max_inflight_tx = 32;  // driver-visible send window
  /// Receive buffer budget the driver posts to the interface, in host
  /// pages. A PDU whose landing would exceed the posted budget is
  /// dropped by the NIC (pdus_dropped_host_buffers); the budget
  /// replenishes when the host consumes a delivery.
  std::size_t rx_posted_pages = 512;
};

/// Metadata accompanying a received SDU.
struct RxInfo {
  atm::VcId vc;
  sim::Time first_cell_time = 0;
  sim::Time delivered_time = 0;   // DMA completion (NIC side)
  sim::Time handed_up_time = 0;   // after host interrupt + driver work
  std::size_t interrupt_batch = 0;
};

class Host {
 public:
  using RxHandler = std::function<void(aal::Bytes sdu, const RxInfo& info)>;
  using ReadyFn = std::function<void()>;

  Host(sim::Simulator& sim, bus::HostMemory& memory, nic::Nic& nic,
       HostConfig config = {});

  /// Sends an SDU on `vc`; returns false when the send window is full
  /// (the ready callback fires when space returns).
  bool send(atm::VcId vc, aal::AalType aal, aal::Bytes sdu);

  /// Default handler for SDUs on VCs without a dedicated handler.
  void set_rx_handler(RxHandler handler) { rx_handler_ = std::move(handler); }
  /// Per-VC handler (signalling stacks, dedicated services). Takes
  /// precedence over the default handler for that VC.
  void set_vc_handler(atm::VcId vc, RxHandler handler) {
    vc_handlers_[vc] = std::move(handler);
  }
  void clear_vc_handler(atm::VcId vc) { vc_handlers_.erase(vc); }
  void set_tx_ready(ReadyFn ready) { tx_ready_ = std::move(ready); }

  double cpu_utilization() const { return cpu_.utilization(sim_.now()); }
  const proc::Engine& cpu() const { return cpu_; }

  std::uint64_t sdus_sent() const { return sent_.value(); }
  std::uint64_t sdus_received() const { return received_.value(); }
  std::uint64_t bytes_sent() const { return bytes_tx_.value(); }
  std::uint64_t bytes_received() const { return bytes_rx_.value(); }
  std::uint64_t interrupts_taken() const { return interrupts_.value(); }
  std::size_t inflight_tx() const { return inflight_; }
  /// Receive pages currently posted (available to the NIC).
  std::size_t rx_pages_posted() const { return rx_pages_available_; }

  /// Congestion visibility: the last TX rate factor the NIC's
  /// closed-loop controller reported for `vc` (1.0 = never squeezed).
  double tx_rate_factor(atm::VcId vc) const {
    const auto it = rate_factors_.find(vc);
    return it != rate_factors_.end() ? it->second : 1.0;
  }
  /// Throttle/recovery events the NIC reported to this host.
  std::uint64_t congestion_events() const { return congestion_events_.value(); }

 private:
  void on_tx_complete(const nic::TxDescriptor& d);
  void on_rx(nic::RxDelivery d);
  void drain_backlog();

  sim::Simulator& sim_;
  bus::HostMemory& memory_;
  nic::Nic& nic_;
  HostConfig config_;
  proc::Engine cpu_;
  RxHandler rx_handler_;
  std::unordered_map<atm::VcId, RxHandler> vc_handlers_;
  ReadyFn tx_ready_;
  std::size_t inflight_ = 0;
  std::size_t rx_pages_available_ = 0;
  // Descriptors accepted by the host but refused by a full NIC ring.
  std::deque<nic::TxDescriptor> backlog_;
  // Last-reported TX rate factor per VC (congestion visibility).
  std::unordered_map<atm::VcId, double> rate_factors_;

  sim::Counter sent_;
  sim::Counter received_;
  sim::Counter bytes_tx_;
  sim::Counter bytes_rx_;
  sim::Counter interrupts_;
  sim::Counter congestion_events_;
};

}  // namespace hni::host
