#include "proc/firmware.hpp"

namespace hni::proc {
namespace {

// 32-bit words of payload the software CRC must digest per cell.
constexpr std::uint32_t crc_words(aal::AalType aal) {
  switch (aal) {
    case aal::AalType::kAal5:
      return 48 / 4;
    case aal::AalType::kAal34:
      return 48 / 4;  // CRC-10 covers the whole SAR-PDU
    case aal::AalType::kAal1:
      return 0;  // SNP is 4 bits over 4 bits; negligible either way
  }
  return 0;
}

}  // namespace

std::uint32_t tx_cell_instructions(const FirmwareProfile& profile,
                                   aal::AalType aal, CellPosition pos) {
  std::uint32_t n = profile.tx.cell_overhead;
  if (aal == aal::AalType::kAal34) n += profile.tx.aal34_cell_extra;
  n += tx_cell_crc_instructions(profile, aal);
  (void)pos;  // TX treats all cells alike; PDU edges are charged per PDU
  return n;
}

std::uint32_t tx_cell_crc_instructions(const FirmwareProfile& profile,
                                       aal::AalType aal) {
  if (profile.assists.crc_offload) return 0;
  return profile.tx.crc_per_word * crc_words(aal);
}

std::uint32_t tx_pdu_instructions(const FirmwareProfile& profile) {
  return profile.tx.fetch_descriptor + profile.tx.program_dma +
         profile.tx.build_trailer + profile.tx.complete_pdu;
}

std::uint32_t rx_cell_instructions(const FirmwareProfile& profile,
                                   aal::AalType aal, CellPosition pos,
                                   std::uint32_t extra_probes) {
  std::uint32_t n = profile.rx.cell_arrival;
  n += rx_cell_lookup_instructions(profile, extra_probes);
  n += profile.rx.buffer_append;
  if (pos.first) n += profile.rx.first_cell_extra;
  if (pos.last) n += profile.rx.last_cell_extra;
  if (aal == aal::AalType::kAal34) n += profile.rx.aal34_cell_extra;
  n += rx_cell_crc_instructions(profile, aal);
  return n;
}

std::uint32_t rx_cell_lookup_instructions(const FirmwareProfile& profile,
                                          std::uint32_t extra_probes) {
  return profile.assists.cam_lookup
             ? profile.rx.vc_lookup_cam
             : profile.rx.vc_lookup_hash +
                   profile.rx.vc_lookup_probe * extra_probes;
}

std::uint32_t rx_cell_crc_instructions(const FirmwareProfile& profile,
                                       aal::AalType aal) {
  if (profile.assists.crc_offload) return 0;
  return profile.rx.crc_per_word * crc_words(aal);
}

std::uint32_t rx_pdu_instructions(const FirmwareProfile& profile) {
  return profile.rx.deliver_pdu;
}

}  // namespace hni::proc
