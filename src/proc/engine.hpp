// Protocol engine: a cycle-cost model of the interface's programmable
// processors.
//
// The paper puts one Intel 80960CA-class RISC microcontroller on each
// side of the interface (TX segmentation, RX reassembly) and evaluates
// the design by counting the instructions each per-cell and per-PDU
// firmware operation executes, then comparing the resulting time against
// the cell slot (2.831 us at STS-3c, 707.7 ns at STS-12c). This class is
// exactly that arithmetic plus busy/idle bookkeeping: an Engine is a
// serially-busy resource; work items cost instructions; instructions
// cost cpi/clock seconds.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/telemetry/profiler.hpp"

namespace hni::proc {

struct EngineConfig {
  std::string name = "engine";
  double clock_hz = 25e6;  // 80960CA shipped at 25/33 MHz
  double cpi = 1.0;        // sustained cycles per instruction (hot loops)
};

class Engine {
 public:
  // sim::Action rather than std::function: completions capture whole
  // cells on the per-cell path, which must not allocate per work item.
  using Done = sim::Action;

  Engine(sim::Simulator& sim, EngineConfig config);

  /// Time `instructions` take on this engine.
  sim::Time cost(std::uint32_t instructions) const;

  /// Occupies the engine for `instructions`, FIFO behind queued work,
  /// then fires `done`.
  void execute(std::uint32_t instructions, Done done);

  /// As execute(), attributing the work to `phase` of the attached
  /// cycle-budget profiler (no-op attribution when none is attached).
  void execute(sim::CycleProfiler::PhaseId phase, std::uint32_t instructions,
               Done done);

  /// Attaches a cycle-budget profiler; the paths register their phases
  /// against it and attribute work via the phased execute() overload.
  void set_profiler(sim::CycleProfiler* profiler) { profiler_ = profiler; }
  sim::CycleProfiler* profiler() const { return profiler_; }

  /// Occupies the engine for a literal duration (e.g. a CPU stalled on
  /// programmed I/O while the bus moves words).
  void occupy(sim::Time duration, Done done);

  /// True when no work is in progress or queued.
  bool idle() const { return free_at_ <= sim_.now(); }
  sim::Time free_at() const { return free_at_; }

  /// Fraction of time busy since construction.
  double utilization(sim::Time now) const;

  const EngineConfig& config() const { return config_; }
  std::uint64_t instructions_retired() const { return instructions_.value(); }
  std::uint64_t work_items() const { return items_.value(); }

  /// Surfaces the engine's books under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("instructions", instructions_);
    scope.expose("work_items", items_);
    scope.gauge("utilization", [this] { return utilization(sim_.now()); });
  }

 private:
  sim::Simulator& sim_;
  EngineConfig config_;
  sim::CycleProfiler* profiler_ = nullptr;
  sim::Time free_at_ = 0;
  sim::Time busy_accum_ = 0;
  sim::Time born_;
  sim::Counter instructions_;
  sim::Counter items_;
};

}  // namespace hni::proc
