// Firmware cost tables: instruction counts for every per-cell and
// per-PDU operation of the TX (segmentation) and RX (reassembly)
// engines.
//
// These mirror the paper's assembly-level budgeting. The default counts
// are calibrated so that the derived budgets land where the literature
// of the period puts them (tens of instructions per cell; receive more
// expensive than transmit; a 25 MIPS engine comfortable at STS-3c and
// marginal at STS-12c). Every knob the experiments sweep — CRC offload,
// CAM-assisted VC lookup, AAL choice, clock — is explicit here, so the
// tables double as documentation of the hardware/firmware split the
// architecture proposes.

#pragma once

#include <cstdint>

#include "aal/types.hpp"

namespace hni::proc {

/// Transmit (segmentation) engine costs, in instructions.
struct TxFirmware {
  // Per PDU.
  std::uint32_t fetch_descriptor = 24;  // ring read, validate, VC state load
  std::uint32_t program_dma = 12;       // stage the S/G window
  std::uint32_t build_trailer = 18;     // CPCS trailer / pad arithmetic
  std::uint32_t complete_pdu = 14;      // ring update, completion decision

  // Per cell.
  std::uint32_t cell_overhead = 9;      // length bookkeeping, header from
                                        // per-VC template, FIFO enqueue
  std::uint32_t aal34_cell_extra = 7;   // ST/SN/MID/LI field construction
  std::uint32_t crc_per_word = 4;       // software CRC, per 32-bit word
                                        // (charged only without offload)
};

/// Receive (reassembly) engine costs, in instructions.
struct RxFirmware {
  // Per cell.
  std::uint32_t cell_arrival = 8;        // FIFO dequeue, header parse
  std::uint32_t vc_lookup_cam = 4;       // CAM-assisted VCI->state map
  std::uint32_t vc_lookup_hash = 18;     // software hash + first probe
  std::uint32_t vc_lookup_probe = 6;     // each additional probe
  std::uint32_t buffer_append = 10;      // chain pointer update, valid bits
  std::uint32_t first_cell_extra = 22;   // open PDU: buffer alloc, state init
  std::uint32_t last_cell_extra = 30;    // trailer check, DMA program
  std::uint32_t aal34_cell_extra = 12;   // ST/SN/LI checks, CRC10 verdict
  std::uint32_t crc_per_word = 4;        // software CRC, per 32-bit word

  // Per OAM cell (parse function field, CRC verdict, dispatch).
  std::uint32_t oam_cell = 25;

  // Per PDU.
  std::uint32_t deliver_pdu = 16;        // descriptor post, interrupt logic
};

/// Hardware assists present on the board; firmware skips the
/// corresponding software costs when an assist is present.
struct HardwareAssists {
  bool crc_offload = true;   // CRC-32 / CRC-10 computed in the datapath
  bool cam_lookup = true;    // content-addressable VCI lookup
};

/// A complete firmware/hardware profile for one interface.
struct FirmwareProfile {
  TxFirmware tx;
  RxFirmware rx;
  HardwareAssists assists;
};

/// Position of a cell within its PDU (first and last may coincide).
struct CellPosition {
  bool first = false;
  bool last = false;
};

/// Instructions the TX engine spends on one cell.
std::uint32_t tx_cell_instructions(const FirmwareProfile& profile,
                                   aal::AalType aal, CellPosition pos);

/// The software-CRC share of one TX cell (0 with the CRC offload). The
/// cycle-budget profiler attributes this separately from header build.
std::uint32_t tx_cell_crc_instructions(const FirmwareProfile& profile,
                                       aal::AalType aal);

/// Instructions the TX engine spends per PDU (outside the cell loop).
std::uint32_t tx_pdu_instructions(const FirmwareProfile& profile);

/// Instructions the RX engine spends on one cell. `extra_probes` models
/// hash-chain length when CAM lookup is absent.
std::uint32_t rx_cell_instructions(const FirmwareProfile& profile,
                                   aal::AalType aal, CellPosition pos,
                                   std::uint32_t extra_probes = 0);

/// Instructions the RX engine spends per delivered PDU.
std::uint32_t rx_pdu_instructions(const FirmwareProfile& profile);

/// The VC-lookup share of one RX cell (CAM or hash + probes).
std::uint32_t rx_cell_lookup_instructions(const FirmwareProfile& profile,
                                          std::uint32_t extra_probes = 0);

/// The software-CRC share of one RX cell (0 with the CRC offload).
std::uint32_t rx_cell_crc_instructions(const FirmwareProfile& profile,
                                       aal::AalType aal);

}  // namespace hni::proc
