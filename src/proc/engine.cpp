#include "proc/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::proc {

Engine::Engine(sim::Simulator& sim, EngineConfig config)
    : sim_(sim), config_(std::move(config)), born_(sim.now()) {
  if (config_.clock_hz <= 0 || config_.cpi <= 0) {
    throw std::invalid_argument("Engine: clock and cpi must be positive");
  }
}

sim::Time Engine::cost(std::uint32_t instructions) const {
  const double cycles = static_cast<double>(instructions) * config_.cpi;
  return static_cast<sim::Time>(
      cycles * static_cast<double>(sim::kSecond) / config_.clock_hz + 0.5);
}

void Engine::execute(std::uint32_t instructions, Done done) {
  instructions_.add(instructions);
  occupy(cost(instructions), std::move(done));
}

void Engine::execute(sim::CycleProfiler::PhaseId phase,
                     std::uint32_t instructions, Done done) {
  instructions_.add(instructions);
  const sim::Time t = cost(instructions);
  if (profiler_) profiler_->add(phase, t);
  occupy(t, std::move(done));
}

void Engine::occupy(sim::Time duration, Done done) {
  const sim::Time now = sim_.now();
  const sim::Time start = std::max(now, free_at_);
  free_at_ = start + duration;
  busy_accum_ += duration;
  items_.add();
  sim_.at(free_at_, std::move(done));
}

double Engine::utilization(sim::Time now) const {
  const sim::Time elapsed = now - born_;
  if (elapsed <= 0) return 0.0;
  const sim::Time pending = std::max<sim::Time>(0, free_at_ - now);
  const sim::Time busy =
      std::min<sim::Time>(busy_accum_ - pending, elapsed);
  return static_cast<double>(std::max<sim::Time>(busy, 0)) /
         static_cast<double>(elapsed);
}

}  // namespace hni::proc
