#include "bus/host_memory.hpp"

#include <algorithm>
#include <cstring>
#include <new>

namespace hni::bus {

std::size_t sg_length(const SgList& sg) {
  std::size_t n = 0;
  for (const auto& b : sg) n += b.len;
  return n;
}

HostMemory::HostMemory(std::size_t bytes, std::size_t page_bytes)
    : store_(bytes), page_bytes_(page_bytes) {
  if (page_bytes == 0 || bytes < page_bytes) {
    throw std::invalid_argument("HostMemory: need at least one page");
  }
  const std::size_t pages = bytes / page_bytes;
  free_.reserve(pages);
  // LIFO order: lowest addresses allocated first (stable for tests).
  for (std::size_t i = pages; i-- > 0;) {
    free_.push_back(static_cast<std::uint64_t>(i) * page_bytes);
  }
}

BufferDescriptor HostMemory::alloc_page() {
  if (free_.empty()) throw std::bad_alloc();
  const std::uint64_t addr = free_.back();
  free_.pop_back();
  ++used_;
  return BufferDescriptor{addr, static_cast<std::uint32_t>(page_bytes_)};
}

SgList HostMemory::alloc(std::size_t bytes) {
  if (bytes == 0) throw std::invalid_argument("HostMemory::alloc(0)");
  SgList sg;
  std::size_t remaining = bytes;
  while (remaining > 0) {
    BufferDescriptor page = alloc_page();
    page.len = static_cast<std::uint32_t>(
        std::min<std::size_t>(remaining, page_bytes_));
    sg.push_back(page);
    remaining -= page.len;
  }
  return sg;
}

std::size_t HostMemory::page_index(std::uint64_t addr) const {
  if (addr % page_bytes_ != 0 || addr + page_bytes_ > store_.size()) {
    throw std::invalid_argument("HostMemory: bad page address");
  }
  return static_cast<std::size_t>(addr / page_bytes_);
}

void HostMemory::free(const BufferDescriptor& buffer) {
  (void)page_index(buffer.addr);  // validate
  free_.push_back(buffer.addr);
  --used_;
}

void HostMemory::free(const SgList& sg) {
  for (const auto& b : sg) free(b);
}

void HostMemory::write(std::uint64_t addr,
                       std::span<const std::uint8_t> data) {
  if (addr + data.size() > store_.size()) {
    throw std::out_of_range("HostMemory::write beyond end of memory");
  }
  std::memcpy(store_.data() + addr, data.data(), data.size());
}

void HostMemory::read(std::uint64_t addr, std::span<std::uint8_t> out) const {
  if (addr + out.size() > store_.size()) {
    throw std::out_of_range("HostMemory::read beyond end of memory");
  }
  std::memcpy(out.data(), store_.data() + addr, out.size());
}

SgList HostMemory::stage(const aal::Bytes& data) {
  SgList sg = alloc(data.size());
  std::size_t off = 0;
  for (const auto& b : sg) {
    write(b.addr, std::span<const std::uint8_t>(data.data() + off, b.len));
    off += b.len;
  }
  return sg;
}

aal::Bytes HostMemory::gather(const SgList& sg, std::size_t bytes) const {
  aal::Bytes out(bytes);
  std::size_t off = 0;
  for (const auto& b : sg) {
    if (off >= bytes) break;
    const std::size_t take = std::min<std::size_t>(b.len, bytes - off);
    read(b.addr, std::span<std::uint8_t>(out.data() + off, take));
    off += take;
  }
  if (off != bytes) {
    throw std::length_error("HostMemory::gather: list shorter than bytes");
  }
  return out;
}

}  // namespace hni::bus
