#include "bus/turbochannel.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::bus {

Bus::Bus(sim::Simulator& sim, BusConfig config)
    : sim_(sim), config_(config), born_(sim.now()) {
  if (config_.clock_hz <= 0 || config_.word_bytes == 0 ||
      config_.max_burst_words == 0) {
    throw std::invalid_argument("Bus: invalid configuration");
  }
}

sim::Time Bus::burst_time(std::size_t words, Direction dir) const {
  std::uint64_t cycles = config_.overhead_cycles + words;
  if (dir == Direction::kRead) cycles += config_.read_latency_cycles;
  return static_cast<sim::Time>(cycles) * config_.cycle();
}

sim::Time Bus::transfer_time(std::size_t bytes, Direction dir) const {
  if (bytes == 0) return 0;
  const std::size_t words =
      (bytes + config_.word_bytes - 1) / config_.word_bytes;
  const std::size_t full = words / config_.max_burst_words;
  const std::size_t tail = words % config_.max_burst_words;
  sim::Time t = static_cast<sim::Time>(full) *
                burst_time(config_.max_burst_words, dir);
  if (tail != 0) t += burst_time(tail, dir);
  return t;
}

sim::Time Bus::pio_time(std::size_t bytes, Direction dir) const {
  if (bytes == 0) return 0;
  const std::size_t words =
      (bytes + config_.word_bytes - 1) / config_.word_bytes;
  return static_cast<sim::Time>(words) * burst_time(1, dir);
}

void Bus::submit(std::size_t bytes, Direction dir,
                 std::size_t words_per_burst, Done done) {
  transfers_.add();
  bytes_.add(bytes);
  if (bytes == 0) {
    sim_.after(0, std::move(done));
    return;
  }
  Pending p;
  p.words_left = (bytes + config_.word_bytes - 1) / config_.word_bytes;
  p.words_per_burst = words_per_burst;
  p.dir = dir;
  p.done = std::move(done);
  p.submitted = sim_.now();
  p.started = false;
  queue_.push_back(std::move(p));
  if (!serving_) serve_next();
}

void Bus::transfer(std::size_t bytes, Direction dir, Done done) {
  submit(bytes, dir, config_.max_burst_words, std::move(done));
}

void Bus::pio_transfer(std::size_t bytes, Direction dir, Done done) {
  // Programmed I/O: each word is its own transaction; it arbitrates
  // against DMA bursts like any other requestor.
  submit(bytes, dir, 1, std::move(done));
}

// Round-robin arbitration at burst granularity: the front requestor
// gets one burst, then rotates to the back of the ring, so a short
// transfer is never stuck behind a long one for more than the ring's
// worth of bursts — how real multi-master buses behave.
void Bus::hold_off(sim::Time duration) {
  holdoffs_.add();
  held_until_ = std::max(held_until_, sim_.now() + std::max<sim::Time>(0, duration));
  // An idle bus must still wake itself when the hold clears, in case
  // transfers arrive meanwhile; a serving bus re-checks between bursts.
  if (!serving_ && !queue_.empty()) serve_next();
}

void Bus::serve_next() {
  if (queue_.empty()) {
    serving_ = false;
    return;
  }
  serving_ = true;
  if (sim_.now() < held_until_) {
    // Arbiter held off: no grants until the hold clears.
    sim_.at(held_until_, [this] { serve_next(); });
    return;
  }
  Pending p = std::move(queue_.front());
  queue_.pop_front();
  if (!p.started) {
    p.started = true;
    queueing_us_.add(sim::to_microseconds(sim_.now() - p.submitted));
  }
  const std::size_t words = std::min(p.words_left, p.words_per_burst);
  p.words_left -= words;
  const sim::Time t = burst_time(words, p.dir);
  busy_accum_ += t;
  if (p.words_left == 0) {
    Done done = std::move(p.done);
    sim_.after(t, [this, done = std::move(done)] {
      done();
      serve_next();
    });
  } else {
    queue_.push_back(std::move(p));
    sim_.after(t, [this] { serve_next(); });
  }
}

double Bus::utilization(sim::Time now) const {
  const sim::Time elapsed = now - born_;
  if (elapsed <= 0) return 0.0;
  // busy_accum_ counts scheduled bursts, the last of which may extend
  // slightly past `now`; clamp.
  return std::min(1.0, static_cast<double>(busy_accum_) /
                           static_cast<double>(elapsed));
}

}  // namespace hni::bus
