#include "bus/dma.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::bus {

void DmaEngine::copy_window(const SgList& sg, std::size_t offset,
                            std::span<std::uint8_t> linear, bool to_host) {
  std::size_t skip = offset;
  std::size_t pos = 0;
  for (const auto& b : sg) {
    if (pos == linear.size()) break;
    if (skip >= b.len) {
      skip -= b.len;
      continue;
    }
    const std::size_t avail = b.len - skip;
    const std::size_t take =
        std::min<std::size_t>(avail, linear.size() - pos);
    if (to_host) {
      memory_.write(b.addr + skip, linear.subspan(pos, take));
    } else {
      memory_.read(b.addr + skip, linear.subspan(pos, take));
    }
    pos += take;
    skip = 0;
  }
  if (pos != linear.size()) {
    throw std::out_of_range("DmaEngine: window exceeds scatter list");
  }
}

void DmaEngine::stall(sim::Time duration) {
  stalls_.add();
  stalled_until_ =
      std::max(stalled_until_, bus_.sim().now() + std::max<sim::Time>(0, duration));
}

void DmaEngine::attempt(std::size_t bytes, Direction dir,
                        std::uint32_t tries, std::function<void()> success,
                        Failed failed) {
  const sim::Time now = bus_.sim().now();
  if (now < stalled_until_) {
    // The controller is wedged: hold the attempt, resume when it clears.
    bus_.sim().at(stalled_until_,
                  [this, bytes, dir, tries, success = std::move(success),
                   failed = std::move(failed)]() mutable {
                    attempt(bytes, dir, tries, std::move(success),
                            std::move(failed));
                  });
    return;
  }
  bus_.transfer(bytes, dir,
                [this, bytes, dir, tries, success = std::move(success),
                 failed = std::move(failed)]() mutable {
    if (faults_pending_ == 0) {
      success();
      return;
    }
    // This attempt was faulted (parity error, aborted burst, ...).
    --faults_pending_;
    if (tries > config_.max_retries) {
      gave_up_.add();
      if (failed) failed();
      return;
    }
    retries_.add();
    // Exponential backoff: base, 2*base, 4*base, ...
    const sim::Time backoff =
        config_.retry_backoff << std::min<std::uint32_t>(tries - 1, 30);
    bus_.sim().after(backoff,
                     [this, bytes, dir, tries, success = std::move(success),
                      failed = std::move(failed)]() mutable {
                       attempt(bytes, dir, tries + 1, std::move(success),
                               std::move(failed));
                     });
  });
}

void DmaEngine::read(const SgList& sg, std::size_t offset, std::size_t len,
                     ReadDone done, Failed failed) {
  reads_.add();
  bytes_read_.add(len);
  attempt(len, Direction::kRead, 1,
          [this, sg, offset, len, done = std::move(done)] {
            aal::Bytes data(len);
            copy_window(sg, offset,
                        std::span<std::uint8_t>(data.data(), len),
                        /*to_host=*/false);
            done(std::move(data));
          },
          std::move(failed));
}

void DmaEngine::write(const SgList& sg, std::size_t offset, aal::Bytes data,
                      Done done, Failed failed) {
  writes_.add();
  const std::size_t len = data.size();
  bytes_written_.add(len);
  attempt(len, Direction::kWrite, 1,
          [this, sg, offset, data = std::move(data),
           done = std::move(done)]() mutable {
            copy_window(sg, offset,
                        std::span<std::uint8_t>(data.data(), data.size()),
                        /*to_host=*/true);
            done();
          },
          std::move(failed));
}

}  // namespace hni::bus
