#include "bus/dma.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::bus {

void DmaEngine::copy_window(const SgList& sg, std::size_t offset,
                            std::span<std::uint8_t> linear, bool to_host) {
  std::size_t skip = offset;
  std::size_t pos = 0;
  for (const auto& b : sg) {
    if (pos == linear.size()) break;
    if (skip >= b.len) {
      skip -= b.len;
      continue;
    }
    const std::size_t avail = b.len - skip;
    const std::size_t take =
        std::min<std::size_t>(avail, linear.size() - pos);
    if (to_host) {
      memory_.write(b.addr + skip, linear.subspan(pos, take));
    } else {
      memory_.read(b.addr + skip, linear.subspan(pos, take));
    }
    pos += take;
    skip = 0;
  }
  if (pos != linear.size()) {
    throw std::out_of_range("DmaEngine: window exceeds scatter list");
  }
}

void DmaEngine::read(const SgList& sg, std::size_t offset, std::size_t len,
                     ReadDone done) {
  ++reads_;
  bytes_read_ += len;
  bus_.transfer(len, Direction::kRead,
                [this, sg, offset, len, done = std::move(done)] {
                  aal::Bytes data(len);
                  copy_window(sg, offset,
                              std::span<std::uint8_t>(data.data(), len),
                              /*to_host=*/false);
                  done(std::move(data));
                });
}

void DmaEngine::write(const SgList& sg, std::size_t offset, aal::Bytes data,
                      Done done) {
  ++writes_;
  const std::size_t len = data.size();
  bytes_written_ += len;
  bus_.transfer(len, Direction::kWrite,
                [this, sg, offset, data = std::move(data),
                 done = std::move(done)]() mutable {
                  copy_window(sg, offset,
                              std::span<std::uint8_t>(data.data(),
                                                      data.size()),
                              /*to_host=*/true);
                  done();
                });
}

}  // namespace hni::bus
