// Host memory model: real byte storage plus a page-pool allocator.
//
// The interface's contract with the host is descriptor-based: the driver
// pins buffers in host memory and hands the board their physical
// addresses; DMA moves bytes directly between those buffers and the
// board, so each byte crosses the bus exactly once. To let tests verify
// end-to-end byte integrity (not just timing), HostMemory stores actual
// bytes; addresses are simulated physical addresses into that store.

#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "aal/types.hpp"

namespace hni::bus {

/// A contiguous region of (simulated) physical memory.
struct BufferDescriptor {
  std::uint64_t addr = 0;
  std::uint32_t len = 0;
};

/// Scatter/gather list describing one SDU in host memory.
using SgList = std::vector<BufferDescriptor>;

/// Total byte count of a scatter/gather list.
std::size_t sg_length(const SgList& sg);

/// Byte-addressable host memory with a fixed-size page allocator.
class HostMemory {
 public:
  /// `bytes` of storage carved into pages of `page_bytes`.
  HostMemory(std::size_t bytes, std::size_t page_bytes = 4096);

  std::size_t page_bytes() const { return page_bytes_; }
  std::size_t pages_total() const { return free_.size() + used_; }
  std::size_t pages_free() const { return free_.size(); }

  /// Allocates one page; throws std::bad_alloc when exhausted.
  BufferDescriptor alloc_page();

  /// Allocates pages to cover `bytes`, returning a scatter list whose
  /// total length is exactly `bytes` (last page trimmed).
  SgList alloc(std::size_t bytes);

  /// Returns a page (or trimmed page) to the pool. The descriptor must
  /// originate from this allocator.
  void free(const BufferDescriptor& buffer);
  void free(const SgList& sg);

  /// Raw access used by DMA models and the host API.
  void write(std::uint64_t addr, std::span<const std::uint8_t> data);
  void read(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Copies an SDU into freshly allocated pages (TX convenience).
  SgList stage(const aal::Bytes& data);

  /// Gathers a scatter list back into a contiguous buffer (RX
  /// convenience); `bytes` may be less than the list's capacity.
  aal::Bytes gather(const SgList& sg, std::size_t bytes) const;

 private:
  std::size_t page_index(std::uint64_t addr) const;

  std::vector<std::uint8_t> store_;
  std::size_t page_bytes_;
  std::vector<std::uint64_t> free_;  // free page base addresses (LIFO)
  std::size_t used_ = 0;
};

}  // namespace hni::bus
