// Host I/O bus model (TURBOchannel-class).
//
// The paper's host is a DECstation 5000/200 whose TURBOchannel is a
// 32-bit synchronous bus clocked at 25 MHz — 100 MB/s of raw word
// bandwidth. DMA moves blocks ("bursts") of words; each transaction
// additionally pays a fixed overhead (arbitration, address cycle,
// turnaround), and reads pay a memory-access latency. Effective
// bandwidth therefore rises with burst length — the knee of that curve
// is one of the quantities the paper's analysis turns on (bench F2).
//
// The bus is a shared, non-preemptive FIFO server: requests from all
// clients (TX DMA, RX DMA, host programmed I/O) serialize in arrival
// order. Utilization and per-request queueing delay are first-class
// outputs.

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"

namespace hni::bus {

struct BusConfig {
  double clock_hz = 25e6;        // TURBOchannel: 25 MHz
  std::size_t word_bytes = 4;    // 32-bit data path
  std::size_t max_burst_words = 64;   // longest single transaction
  std::uint32_t overhead_cycles = 5;  // arbitration + address + turnaround
  std::uint32_t read_latency_cycles = 4;  // DRAM access before first word

  sim::Time cycle() const { return sim::cycle_time(clock_hz); }
  double peak_bytes_per_second() const {
    return clock_hz * static_cast<double>(word_bytes);
  }
};

/// Direction of a transfer relative to host memory.
enum class Direction : std::uint8_t {
  kRead,   // host memory -> device (TX path)
  kWrite,  // device -> host memory (RX path)
};

/// The shared bus. Clients submit transfers; the bus arbitrates at
/// burst granularity, round-robin across outstanding transfers (so a
/// short DMA is not head-of-line blocked behind a long one — how real
/// multi-master buses behave). Completions fire at the end of each
/// transfer's final burst.
class Bus {
 public:
  using Done = std::function<void()>;

  Bus(sim::Simulator& sim, BusConfig config);

  /// The simulation clock this bus runs on (clients schedule retries
  /// and timeouts against it).
  sim::Simulator& sim() { return sim_; }

  /// Submits a transfer of `bytes` (split into bursts internally).
  /// `done` fires when the final burst completes.
  void transfer(std::size_t bytes, Direction dir, Done done);

  /// Fault hook: the arbiter grants no bursts until `duration` from now
  /// (a misbehaving master holding the bus). Queued transfers resume by
  /// themselves; in-flight bursts finish.
  void hold_off(sim::Time duration);
  std::uint64_t holdoffs() const { return holdoffs_.value(); }

  /// Unloaded duration of a transfer of `bytes` (all bursts, overheads
  /// included) — the analytical quantity benches report.
  sim::Time transfer_time(std::size_t bytes, Direction dir) const;

  /// Duration of a single burst of `words` data words.
  sim::Time burst_time(std::size_t words, Direction dir) const;

  /// Programmed I/O: every word is its own transaction (no bursts).
  /// This is what a host CPU pays when it moves cells itself — the
  /// software-SAR baseline's handicap.
  sim::Time pio_time(std::size_t bytes, Direction dir) const;
  void pio_transfer(std::size_t bytes, Direction dir, Done done);

  const BusConfig& config() const { return config_; }

  /// Fraction of elapsed time the bus was moving a transaction,
  /// measured from construction to `now`.
  double utilization(sim::Time now) const;

  std::uint64_t transfers() const { return transfers_.value(); }
  std::uint64_t bytes_moved() const { return bytes_.value(); }
  const sim::RunningStat& queueing_delay_us() const { return queueing_us_; }

  /// Surfaces the bus's books under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("transfers", transfers_);
    scope.expose("bytes_moved", bytes_);
    scope.expose("holdoffs", holdoffs_);
    scope.gauge("utilization", [this] { return utilization(sim_.now()); });
    scope.expose_stat("queueing_delay_us", queueing_us_);
  }

 private:
  struct Pending {
    std::size_t words_left = 0;
    std::size_t words_per_burst = 0;
    Direction dir = Direction::kWrite;
    Done done;
    sim::Time submitted = 0;
    bool started = false;
  };

  void submit(std::size_t bytes, Direction dir,
              std::size_t words_per_burst, Done done);
  void serve_next();

  sim::Simulator& sim_;
  BusConfig config_;
  std::deque<Pending> queue_;
  bool serving_ = false;
  sim::Time held_until_ = 0;
  sim::Counter holdoffs_;
  sim::Time busy_accum_ = 0;  // total time spent transferring
  sim::Time born_;
  sim::Counter transfers_;
  sim::Counter bytes_;
  sim::RunningStat queueing_us_;
};

}  // namespace hni::bus
