// DMA engine: moves bytes between host memory and the board across the
// shared bus.
//
// One engine serves one direction of the interface (the paper gives the
// TX and RX sides independent DMA machinery). Requests address host
// memory through scatter/gather lists, so a CS-PDU that spans host pages
// still crosses the bus as maximal bursts. Completion callbacks fire at
// the simulated end of the final burst; the data copy happens at
// completion time, which is faithful for reads (the driver does not
// recycle a posted buffer before completion) and conservative for
// writes.

#pragma once

#include <functional>

#include "aal/types.hpp"
#include "bus/host_memory.hpp"
#include "bus/turbochannel.hpp"

namespace hni::bus {

class DmaEngine {
 public:
  using Done = std::function<void()>;
  using ReadDone = std::function<void(aal::Bytes)>;

  DmaEngine(Bus& bus, HostMemory& memory) : bus_(bus), memory_(memory) {}

  /// Reads `len` bytes starting `offset` bytes into `sg` from host
  /// memory (TX direction). Throws std::out_of_range if the window
  /// exceeds the list.
  void read(const SgList& sg, std::size_t offset, std::size_t len,
            ReadDone done);

  /// Writes `data` starting `offset` bytes into `sg` (RX direction).
  void write(const SgList& sg, std::size_t offset, aal::Bytes data,
             Done done);

  std::uint64_t reads() const { return reads_; }
  std::uint64_t writes() const { return writes_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  /// Copies between host memory and a linear buffer through an S/G
  /// window. `to_host` selects the direction.
  void copy_window(const SgList& sg, std::size_t offset,
                   std::span<std::uint8_t> linear, bool to_host);

  Bus& bus_;
  HostMemory& memory_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace hni::bus
