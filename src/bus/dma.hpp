// DMA engine: moves bytes between host memory and the board across the
// shared bus.
//
// One engine serves one direction of the interface (the paper gives the
// TX and RX sides independent DMA machinery). Requests address host
// memory through scatter/gather lists, so a CS-PDU that spans host pages
// still crosses the bus as maximal bursts. Completion callbacks fire at
// the simulated end of the final burst; the data copy happens at
// completion time, which is faithful for reads (the driver does not
// recycle a posted buffer before completion) and conservative for
// writes.
//
// Fault model: a transfer attempt can be made to fail (fail_next) or the
// whole engine to stall (stall). A failed attempt is retried after an
// exponentially growing backoff, up to max_retries; past that the
// engine gives up and reports the transfer failed, so the caller can
// abort and reclaim rather than wedge. Retries and give-ups are counted
// — they appear in the standard fault/recovery report.

#pragma once

#include <functional>

#include "aal/types.hpp"
#include "bus/host_memory.hpp"
#include "bus/turbochannel.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"

namespace hni::bus {

struct DmaConfig {
  /// Retry attempts after a failed transfer before giving up. 0 means a
  /// single attempt (recovery disabled).
  std::uint32_t max_retries = 4;
  /// First retry delay; doubles per subsequent retry.
  sim::Time retry_backoff = sim::microseconds(2);
};

class DmaEngine {
 public:
  using Done = std::function<void()>;
  using ReadDone = std::function<void(aal::Bytes)>;
  /// Fired instead of the completion when the engine gives up on a
  /// transfer (all retries exhausted).
  using Failed = std::function<void()>;

  DmaEngine(Bus& bus, HostMemory& memory, DmaConfig config = {})
      : bus_(bus), memory_(memory), config_(config) {}

  /// Reads `len` bytes starting `offset` bytes into `sg` from host
  /// memory (TX direction). Throws std::out_of_range if the window
  /// exceeds the list.
  void read(const SgList& sg, std::size_t offset, std::size_t len,
            ReadDone done, Failed failed = {});

  /// Writes `data` starting `offset` bytes into `sg` (RX direction).
  void write(const SgList& sg, std::size_t offset, aal::Bytes data,
             Done done, Failed failed = {});

  // --- fault hooks ------------------------------------------------------
  /// The next `attempts` transfer attempts (including retries) fail.
  void fail_next(std::uint64_t attempts) { faults_pending_ += attempts; }
  /// Holds new transfer attempts until `duration` from now (a wedged
  /// DMA controller; queued work resumes by itself afterwards).
  void stall(sim::Time duration);

  std::uint64_t reads() const { return reads_.value(); }
  std::uint64_t writes() const { return writes_.value(); }
  std::uint64_t bytes_read() const { return bytes_read_.value(); }
  std::uint64_t bytes_written() const { return bytes_written_.value(); }
  /// Failed attempts that were retried.
  std::uint64_t retries() const { return retries_.value(); }
  /// Transfers abandoned after exhausting every retry.
  std::uint64_t gave_up() const { return gave_up_.value(); }
  std::uint64_t stalls() const { return stalls_.value(); }
  const DmaConfig& config() const { return config_; }

  /// Surfaces the engine's books under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("reads", reads_);
    scope.expose("writes", writes_);
    scope.expose("bytes_read", bytes_read_);
    scope.expose("bytes_written", bytes_written_);
    scope.expose("retries", retries_);
    scope.expose("gave_up", gave_up_);
    scope.expose("stalls", stalls_);
  }

 private:
  /// Copies between host memory and a linear buffer through an S/G
  /// window. `to_host` selects the direction.
  void copy_window(const SgList& sg, std::size_t offset,
                   std::span<std::uint8_t> linear, bool to_host);

  /// One transfer attempt (plus retries) of `bytes`; `success` fires on
  /// bus completion of a non-faulted attempt, `failed` after giving up.
  void attempt(std::size_t bytes, Direction dir, std::uint32_t tries,
               std::function<void()> success, Failed failed);

  Bus& bus_;
  HostMemory& memory_;
  DmaConfig config_;
  std::uint64_t faults_pending_ = 0;
  sim::Time stalled_until_ = 0;
  sim::Counter reads_;
  sim::Counter writes_;
  sim::Counter bytes_read_;
  sim::Counter bytes_written_;
  sim::Counter retries_;
  sim::Counter gave_up_;
  sim::Counter stalls_;
};

}  // namespace hni::bus
