// Workload generators.
//
// A source produces SDUs and offers them to a sender function (the host
// API's transmit entry). The four processes cover the evaluation's
// needs: greedy (closed-loop, saturates the path — used for throughput
// ceilings), Poisson (open-loop), CBR (periodic — video/circuit
// workloads), and on/off (bursty, exponential dwell times — the classic
// data-traffic model).
//
// Payloads carry a deterministic per-SDU pattern (aal::make_pattern
// keyed by sequence number) so any receiver can verify byte integrity.

#pragma once

#include <cstdint>
#include <functional>

#include "aal/types.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::net {

class SduSource {
 public:
  enum class Mode : std::uint8_t { kGreedy, kPoisson, kCbr, kOnOff };

  struct Config {
    Mode mode = Mode::kGreedy;
    std::size_t sdu_bytes = 9180;  // classical IP-over-ATM MTU
    std::uint64_t count = 0;       // SDUs to produce; 0 = unlimited
    sim::Time interval = sim::microseconds(100);  // CBR period / Poisson
                                                  // mean interarrival /
                                                  // on-phase spacing
    sim::Time mean_on = sim::milliseconds(1);     // on/off dwell means
    sim::Time mean_off = sim::milliseconds(1);
    std::uint64_t seed = 42;
  };

  /// `send` accepts an SDU or refuses it (transmit ring full). Greedy
  /// mode stops on refusal and resumes on notify_ready(); open-loop
  /// modes count a refusal as an offered-load drop.
  using SendFn = std::function<bool(aal::Bytes)>;

  SduSource(sim::Simulator& sim, Config config, SendFn send);

  void start();
  /// Backpressure release for greedy mode (no-op for open-loop modes).
  void notify_ready();
  /// Stops producing (pending scheduled arrivals are abandoned).
  void stop() { running_ = false; }

  std::uint64_t generated() const { return generated_.value(); }
  std::uint64_t refused() const { return refused_.value(); }
  std::uint64_t bytes_offered() const { return bytes_.value(); }
  bool done() const {
    return config_.count != 0 && generated_.value() >= config_.count;
  }

  /// The pattern seed used for SDU number `n` (receivers verify with it).
  static std::uint64_t pattern_seed(std::uint64_t n) {
    return 0xC0FFEE00u + n;
  }

 private:
  void pump_greedy();
  void schedule_next();
  void emit_one();

  sim::Simulator& sim_;
  Config config_;
  SendFn send_;
  sim::Rng rng_;
  bool running_ = false;
  sim::Time phase_ends_ = 0;
  sim::Counter generated_;
  sim::Counter refused_;
  sim::Counter bytes_;
};

}  // namespace hni::net
