// Output-buffered ATM switch.
//
// Minimal but real: per-input VC translation (the (port, VPI/VCI) ->
// (port', VPI'/VCI') map every ATM switch maintains), per-VC output
// queues drawing on a shared per-port buffer pool of bounded depth, and
// an output scheduler that serves one cell per output slot at the
// port's line rate (global-FIFO or per-VC round-robin service order).
// This is enough substrate to create the congestion losses and
// multiplexing jitter the host interface must live with.
//
// The discard/overload plane, in the order a cell meets it:
//
//   HEC --> route lookup --> ER stamp (backward RM) --> UPC
//       (GCRA drop/tag or trTCM green/yellow/red) --> EPD/PPD (pool or
//       per-VC gate) --> WRED --> per-VC residency cap --> pool
//       overflow --> CLP threshold --> EFCI mark --> enqueue
//
// * UPC is either the classic single-GCRA policer or a trTCM two-rate
//   meter (atm::TrTcm): green passes, yellow tags CLP=1, red drops.
// * EPD/PPD shed whole AAL5 frames once the pool passes epd_threshold.
// * WRED sheds early and probabilistically as occupancy climbs, with a
//   lower threshold band for CLP-tagged cells so UPC's tag verdict is
//   consequential: tagged traffic dies first under pressure.
// * EFCI marks surviving user-data cells once occupancy passes
//   efci_threshold — the forward congestion signal endpoints close the
//   loop on (nic::Nic turns observed marks into backward RM cells that
//   throttle the source).
// * Control cells (OAM and RM, PTI 0b1xx) are exempt from WRED, the
//   CLP threshold and EFCI, and draw on a small reserved headroom above
//   the shared pool — the congestion signal must not be discarded or
//   mutated by the congestion it measures.
// * With abr.enabled the switch runs an ERICA-style explicit-rate loop:
//   per-port input rate and ABR share are measured over fixed windows,
//   and backward RM cells are stamped with min(carried ER, max(fair
//   share, vc_rate / load_factor)) so sources converge to max-min fair
//   rates instead of oscillating on binary CI feedback.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <functional>
#include <string>
#include <vector>

#include "atm/cell.hpp"
#include "atm/hec.hpp"
#include "atm/gcra.hpp"
#include "atm/meter.hpp"
#include "atm/phy.hpp"
#include "net/link.hpp"
#include "sim/flat_table.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace hni::net {

/// Service order across the per-VC queues of one output port.
enum class SwitchScheduler : std::uint8_t {
  kFifo,        // global arrival order (classic shared FIFO behaviour)
  kRoundRobin,  // one cell per active VC per turn (no head-of-line
                // capture by a bursty connection)
  kDwrr,        // deficit-weighted round robin: each active VC gets a
                // per-round grant of `weight` cells (sch_dwrr-style
                // deficit counters), so service shares track the
                // configured weights instead of 1/N
};

/// WRED-style early discard on the shared output pool. Tagged (CLP=1)
/// cells use the clp1_* band, which sits below the untagged band, so
/// discard-eligible traffic absorbs the early losses. Drop probability
/// ramps linearly from 0 at min_cells, reaching exactly max_p at
/// max_cells; only beyond max_cells does the verdict become a forced
/// drop with no RNG draw. Decisions use the instantaneous pool occupancy —
/// "WRED-style", not a literal EWMA RED — and a seeded deterministic
/// RNG so runs replay exactly.
struct WredConfig {
  bool enabled = false;
  std::size_t min_cells = 0;
  std::size_t max_cells = 0;
  double max_p = 0.1;
  std::size_t clp1_min_cells = 0;
  std::size_t clp1_max_cells = 0;
  double clp1_max_p = 1.0;
  std::uint64_t seed = 0xEC4;
};

struct SwitchConfig {
  std::size_t ports = 2;
  std::size_t queue_cells = 128;   // per-output shared pool, in cells
  /// Pool depth at and beyond which CLP=1 cells are dropped (<= queue_cells).
  std::size_t clp_threshold = 128;
  atm::LineRate port_rate = atm::sts3c();
  /// Early Packet Discard: when the *first* cell of an AAL5 PDU arrives
  /// with the output pool at or beyond this depth, the whole PDU is
  /// discarded instead of shedding random cells from many PDUs. Partial
  /// Packet Discard engages automatically after any mid-PDU loss: the
  /// rest of the damaged PDU is dropped (its final cell is forwarded so
  /// the receiver's reassembler terminates cleanly instead of splicing).
  /// 0 disables frame-aware discard. AAL5 VCs only (uses the PTI AUU
  /// end-of-PDU bit); leave disabled on AAL3/4 paths.
  std::size_t epd_threshold = 0;
  /// Per-VC buffer accounting at the per-VC output queues (kRoundRobin
  /// and kDwrr only — kFifo has no per-VC queues and ignores both).
  /// vc_epd_cells: a fresh AAL5 PDU is EPD-discarded when its own VC's
  /// output queue already holds this many cells. vc_queue_cells: hard
  /// cap on one VC's pool residency; cells beyond it are dropped
  /// (cells_dropped_vc_limit) and, mid-PDU on a frame-aware VC, the
  /// damaged remainder is shed via PPD. Bounding each connection's
  /// claim on the shared pool is what makes the DWRR weights govern
  /// *delivered* shares: without it a slow VC's standing backlog fills
  /// the pool and gates every other VC's admission at the shared
  /// thresholds. 0 disables either check.
  std::size_t vc_epd_cells = 0;
  std::size_t vc_queue_cells = 0;
  /// Service order across per-VC output queues. kFifo reproduces the
  /// historical shared-FIFO switch exactly.
  SwitchScheduler scheduler = SwitchScheduler::kFifo;
  /// Color-aware random early discard (see WredConfig).
  WredConfig wred{};
  /// Pool depth at and beyond which surviving user-data cells get the
  /// EFCI congestion mark (PTI bit 0b010). 0 disables marking.
  std::size_t efci_threshold = 0;
  /// Reserved headroom above queue_cells that only control cells
  /// (OAM/RM) may draw on — the closed-loop congestion signal survives
  /// a saturated pool instead of being tail-dropped by the very
  /// congestion it reports. 0 gives control cells no protection.
  std::size_t control_reserve_cells = 8;
  /// While a registered input link (set_input_link) is down, the switch
  /// inserts an AIS cell per affected route every ais_period — the
  /// I.610 hop-by-hop alarm a failed trunk's downstream switch
  /// originates so endpoints learn of a mid-path failure in cell time.
  /// 0 disables insertion.
  sim::Time ais_period = sim::microseconds(500);
  /// ERICA-style explicit-rate ABR loop (see AbrConfig).
  struct AbrConfig {
    bool enabled = false;
    /// Fraction of the port rate ERICA aims to fill; the slack absorbs
    /// measurement noise so queues drain instead of sitting full.
    double target_utilization = 0.9;
    /// Measurement window: per-port input rate, ABR share and per-VC
    /// rates are averaged over this interval (advanced lazily on
    /// arrivals — no standing timer, so idle runs still drain).
    sim::Time interval = sim::milliseconds(1);
  } abr{};
  /// Output clock oscillator offset in ppm; nullopt lets core::Testbed
  /// assign a realistic random value.
  std::optional<double> clock_ppm{};
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig config);

  /// Routes (in_port, vc) to (out_port, out_vc). `weight` is the VC's
  /// DWRR service weight on the output port (cells granted per
  /// scheduling round; ignored by kFifo/kRoundRobin). `abr` marks the
  /// VC as rate-adaptive for the ERICA explicit-rate loop.
  void add_route(std::size_t in_port, atm::VcId vc, std::size_t out_port,
                 atm::VcId out_vc, std::uint32_t weight = 1,
                 bool abr = false);

  /// What UPC does with a non-conforming cell.
  enum class PoliceAction : std::uint8_t {
    kDrop,  // discard immediately
    kTag,   // set CLP=1 (discard-eligible downstream)
  };

  /// Installs usage parameter control on (in_port, vc): cells are
  /// checked against GCRA(1/pcr, cdvt) on arrival.
  void add_policer(std::size_t in_port, atm::VcId vc,
                   double pcr_cells_per_second, sim::Time cdvt,
                   PoliceAction action);

  /// Installs a trTCM two-rate meter on (in_port, vc), replacing any
  /// single-GCRA policer there: green cells pass, yellow cells are
  /// tagged CLP=1 (counted in cells_policed_tagged, so WRED's lower
  /// band sheds them first), red cells are dropped (counted in
  /// cells_policed_dropped). The per-color books satisfy the meter
  /// conservation identity offered == green + yellow + red.
  void add_meter(std::size_t in_port, atm::VcId vc,
                 const atm::TrTcmConfig& meter);

  /// Tears down a route (and its policer/meter, if any). Cells of the
  /// closed VC still resident in a per-VC output queue are purged —
  /// counted as overflow drops so the queue-stage conservation identity
  /// keeps balancing — and the queue's active-ring ticket is retired
  /// with the record (no stale ring entry, no dangling arena pointer).
  /// Returns true if a route existed. Subsequent cells on the VC count
  /// as unroutable.
  bool remove_route(std::size_t in_port, atm::VcId vc);

  /// Whether (in_port, vc) has a route installed.
  bool has_route(std::size_t in_port, atm::VcId vc) const {
    const auto found = vcs_.find(route_label(in_port, vc));
    return found.value != nullptr && found.value->has_route;
  }
  std::size_t route_count() const { return route_count_; }

  /// Steady-state bytes the per-VC state (index + pooled records)
  /// occupies — bench P2's bytes/VC column.
  std::size_t vc_state_bytes() const { return vcs_.memory_bytes(); }

  /// Visits every route as fn(in_port, in_vc, out_port, out_vc), in
  /// ascending (in_port, vpi, vci) order — audit iteration stays
  /// byte-deterministic however the table was populated. The callback
  /// may add or remove routes (mutations do not disturb the walk).
  template <typename Fn>
  void for_each_route(Fn&& fn) {
    vcs_.for_each_sorted([&fn](std::uint32_t label, VcEntry& e) {
      if (!e.has_route) return;
      fn(static_cast<std::size_t>(label >> 24),
         atm::VcId{static_cast<std::uint16_t>((label >> 16) & 0xFF),
                   static_cast<std::uint16_t>(label & 0xFFFF)},
         e.out_port, e.out_vc);
    });
  }

  /// Attaches the link leaving `out_port`.
  void attach_output(std::size_t out_port, Link& link);

  /// Registers the link feeding `in_port` as this port's loss-of-signal
  /// source: while it is down, the switch periodically inserts AIS on
  /// the translated outgoing VC of every route entering on that port
  /// (I.610 hop-by-hop alarm insertion at the switch just downstream of
  /// the failure). Does not attach the link's sink — wire delivery
  /// stays with the usual set_sink -> receive() lambda.
  void set_input_link(std::size_t in_port, Link& link);

  /// Delivers a wire cell arriving on `in_port` (connect a Link's sink
  /// to this via a lambda).
  void receive(std::size_t in_port, const WireCell& wire);

  std::uint64_t cells_received() const { return received_.value(); }
  std::uint64_t cells_forwarded() const { return forwarded_.value(); }
  /// Per-port splits of the two books above, for per-hop conservation
  /// audits on multi-switch paths.
  std::uint64_t cells_received_on(std::size_t in_port) const {
    return received_on_.at(in_port);
  }
  std::uint64_t cells_forwarded_on(std::size_t out_port) const {
    return forwarded_on_.at(out_port);
  }
  /// AIS cells this switch originated for routes whose input link is
  /// down (they enter the books at the queue stage, not at receive).
  std::uint64_t cells_ais_inserted() const { return ais_inserted_.value(); }
  std::uint64_t cells_dropped_overflow() const { return dropped_.value(); }
  std::uint64_t cells_dropped_clp() const { return clp_dropped_.value(); }
  /// Cells dropped at the per-VC residency cap (vc_queue_cells).
  std::uint64_t cells_dropped_vc_limit() const {
    return vc_limit_drop_.value();
  }
  std::uint64_t cells_unroutable() const { return unroutable_.value(); }
  std::uint64_t cells_hec_discarded() const { return hec_discard_.value(); }
  std::uint64_t cells_policed_dropped() const { return policed_drop_.value(); }
  std::uint64_t cells_policed_tagged() const { return policed_tag_.value(); }
  std::uint64_t cells_epd_dropped() const { return epd_drop_.value(); }
  std::uint64_t pdus_epd_discarded() const { return epd_pdus_.value(); }
  std::uint64_t cells_ppd_dropped() const { return ppd_drop_.value(); }
  /// Cells that cleared HEC, routing and UPC — everything offered to
  /// the output queue stage. The queue-stage conservation identity
  /// (core::InvariantAuditor::audit_switch) balances this against the
  /// forwarded + per-cause discard counters + resident cells.
  std::uint64_t cells_queue_offered() const { return queue_offered_.value(); }
  std::uint64_t cells_wred_dropped() const { return wred_drop_.value(); }
  std::uint64_t cells_wred_dropped_clp() const {
    return wred_drop_clp_.value();
  }
  std::uint64_t cells_efci_marked() const { return efci_marked_.value(); }
  /// trTCM books. Offered counts every cell a meter saw; the colors
  /// partition it exactly (offered == green + yellow + red).
  std::uint64_t cells_metered() const { return metered_.value(); }
  std::uint64_t cells_meter_green() const { return meter_green_.value(); }
  std::uint64_t cells_meter_yellow() const { return meter_yellow_.value(); }
  std::uint64_t cells_meter_red() const { return meter_red_.value(); }
  /// Resident cells purged by remove_route (a sub-book of
  /// cells_dropped_overflow, where they are also counted).
  std::uint64_t cells_purged_on_close() const { return purged_close_.value(); }
  /// Backward RM cells whose explicit-rate field this switch tightened.
  std::uint64_t rm_cells_er_stamped() const { return er_stamped_.value(); }
  /// Cells currently resident across all output pools.
  std::size_t cells_queued() const;
  /// Current occupancy of one output port's shared pool.
  std::size_t queue_occupancy(std::size_t out_port) const {
    return outputs_.at(out_port).occupancy;
  }

  const SwitchConfig& config() const { return config_; }

  /// Time-average and max depth of an output pool.
  double mean_queue_depth(std::size_t out_port) const;
  double max_queue_depth(std::size_t out_port) const;

  /// Surfaces the switch's books (plus per-port queue-depth gauges)
  /// under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("cells_received", received_);
    scope.expose("cells_forwarded", forwarded_);
    scope.expose("cells_dropped_overflow", dropped_);
    scope.expose("cells_dropped_clp", clp_dropped_);
    scope.expose("cells_dropped_vc_limit", vc_limit_drop_);
    scope.expose("cells_unroutable", unroutable_);
    scope.expose("cells_hec_discarded", hec_discard_);
    scope.expose("cells_policed_dropped", policed_drop_);
    scope.expose("cells_policed_tagged", policed_tag_);
    scope.expose("cells_epd_dropped", epd_drop_);
    scope.expose("pdus_epd_discarded", epd_pdus_);
    scope.expose("cells_ppd_dropped", ppd_drop_);
    scope.expose("cells_queue_offered", queue_offered_);
    scope.expose("cells_wred_dropped", wred_drop_);
    scope.expose("cells_wred_dropped_clp", wred_drop_clp_);
    scope.expose("cells_efci_marked", efci_marked_);
    scope.expose("cells_metered", metered_);
    scope.expose("cells_meter_green", meter_green_);
    scope.expose("cells_meter_yellow", meter_yellow_);
    scope.expose("cells_meter_red", meter_red_);
    scope.expose("cells_purged_on_close", purged_close_);
    scope.expose("rm_cells_er_stamped", er_stamped_);
    scope.expose("cells_ais_inserted", ais_inserted_);
    for (std::size_t p = 0; p < config_.ports; ++p) {
      const sim::MetricScope port = scope.sub("port." + std::to_string(p));
      port.gauge("queue_depth_mean",
                 [this, p] { return mean_queue_depth(p); });
      port.gauge("queue_depth_max",
                 [this, p] { return max_queue_depth(p); });
      port.gauge("cells_received", [this, p] {
        return static_cast<double>(received_on_[p]);
      });
      port.gauge("cells_forwarded", [this, p] {
        return static_cast<double>(forwarded_on_[p]);
      });
    }
  }

  /// Attaches a tracer: EFCI marks and WRED drops emit typed events
  /// tagged `name`.
  void set_tracer(sim::Tracer* tracer, const std::string& name) {
    tracer_ = tracer;
    trace_source_ = tracer ? tracer->intern(name) : 0;
  }

 private:
  /// Frame-aware discard state per (in_port, vc), AAL5 framing.
  struct FrameState {
    bool mid_pdu = false;      // a PDU is in progress (first cell seen)
    enum class Discard : std::uint8_t {
      kNone,
      kWholePdu,   // EPD: drop everything through the final cell
      kTail,       // PPD: drop the rest but forward the final cell
    } discard = Discard::kNone;
  };
  /// UPC discipline installed on a label. The three mutually exclusive
  /// policing states (single GCRA dropping, single GCRA tagging, trTCM
  /// meter) collapse into one byte so the hot per-VC record stays at
  /// 40 bytes — bench P2's bytes/VC budget is paid per cell, per probe.
  /// kTrTcm's bucket state lives out-of-line in meters_ (VBR VCs are
  /// sparse; the common probe must not carry their buckets).
  enum class Upc : std::uint8_t { kNone, kGcraDrop, kGcraTag, kTrTcm };
  /// Everything the data plane needs for one (in_port, vc), in one
  /// pooled record: a cell pays exactly one table probe, not three.
  struct VcEntry {
    std::uint32_t out_port = 0;
    atm::VcId out_vc{};
    atm::Gcra police{0, 0};
    Upc upc = Upc::kNone;
    bool has_route = false;
    /// The VC adapts to explicit-rate feedback (ERICA measures it and
    /// stamps its backward RM cells).
    bool abr = false;
    FrameState frame;
    /// DWRR service weight on the output port (cells per round).
    std::uint16_t weight = 1;
  };
  /// One (translated) VC's cells awaiting service on an output port.
  struct VcQueue {
    std::deque<WireCell> cells;
    std::uint32_t weight = 1;   // refreshed from the route on enqueue
    std::uint32_t deficit = 0;  // DWRR: cells left in the current grant
  };
  /// ERICA measurement state for one output port. Windows advance
  /// lazily on arrivals (no standing timer); the finalized snapshot is
  /// what backward RM stamping reads.
  struct AbrMeasure {
    sim::Time window_start = 0;
    std::uint64_t total_cells = 0;  // everything offered to this port
    std::uint64_t abr_cells = 0;    // the ABR-classified share
    sim::FlatMap<std::uint32_t, std::uint64_t> per_vc;  // by out-vc label
    // Finalized snapshot of the last completed window:
    bool valid = false;
    double abr_capacity = 0.0;  // cells/s left for ABR after other load
    double fair_share = 0.0;    // abr_capacity / active ABR VCs
    double load_factor = 0.0;   // ABR input rate / abr_capacity
    sim::FlatMap<std::uint32_t, double> vc_rate;  // cells/s by label
  };
  struct OutputPort {
    /// kFifo service structure: the historical shared FIFO, literally —
    /// one deque of cells in arrival order, so the default scheduler
    /// pays nothing for the per-VC machinery it doesn't use.
    std::deque<WireCell> fifo;
    /// kRoundRobin/kDwrr: per-VC queues keyed on the *outgoing* VC
    /// label, all drawing on the shared `occupancy` pool bounded by
    /// queue_cells, plus the active ring (one entry per non-empty VC
    /// queue). Ring tickets are arena pointers — stable across inserts,
    /// so the scheduler pays no table probe per served cell. A record
    /// is erased only by remove_route, which first retires its ring
    /// ticket and purges its resident cells, so no dangling pointer
    /// survives the erase.
    sim::FlatMap<std::uint32_t, VcQueue> queues;
    std::deque<VcQueue*> order;
    std::size_t occupancy = 0;
    Link* link = nullptr;
    bool serving = false;
    sim::TimeWeightedStat depth;
    AbrMeasure abr;
  };
  /// Loss-of-signal state for one input port (set_input_link).
  struct InputPort {
    Link* link = nullptr;
    bool down = false;
    std::uint64_t epoch = 0;  // invalidates stale AIS timers on recovery
  };

  /// Packs (in_port, vpi, vci) into the 32-bit table label:
  /// port(8) | vpi(8) | vci(16). The forwarding plane parses headers
  /// as UNI, so the VPI always fits 8 bits here; out-of-range values
  /// (a would-be 12-bit NNI VPI, a port beyond 255) throw rather than
  /// aliasing another connection's state.
  static std::uint32_t route_label(std::size_t port, atm::VcId vc);

  /// One WRED trial against the band for `tagged` at `occupancy`.
  bool wred_decides_drop(std::size_t occupancy, bool tagged);
  void serve(std::size_t out_port);
  /// ERICA arrival accounting for one offered cell (lazily closes the
  /// measurement window when it has run its interval).
  void abr_account(const VcEntry& entry, OutputPort& out);
  /// The explicit rate this switch grants the ABR VC whose *forward*
  /// data leaves via out_port under out-vc `label` (cells/s).
  double compute_er(std::size_t out_port, std::uint32_t label) const;
  /// Tightens the ER field of a backward RM cell in place.
  void stamp_backward_rm(std::size_t in_port, const atm::CellHeader& h,
                         WireCell& cell);
  /// One AIS insertion round for a down input port; re-arms itself on
  /// ais_period while the port's epoch matches.
  void insert_ais(std::size_t in_port, std::uint64_t epoch);
  /// Enqueues a switch-originated control cell on entry's output queue
  /// (queue stage directly: offered + reserved-headroom admission).
  void inject_control(const VcEntry& entry, WireCell wire);

  sim::Simulator& sim_;
  SwitchConfig config_;
  sim::Time slot_;  // output cell slot, clock_ppm applied once
  double port_cells_per_s_ = 0.0;  // nominal output rate, for ERICA
  sim::FlatMap<std::uint32_t, VcEntry> vcs_;
  sim::FlatMap<std::uint32_t, atm::TrTcm> meters_;
  std::size_t route_count_ = 0;
  std::vector<OutputPort> outputs_;
  std::vector<InputPort> inputs_;
  std::vector<atm::HecReceiver> hec_;  // one per input port
  std::vector<std::uint64_t> received_on_;   // per-input-port split
  std::vector<std::uint64_t> forwarded_on_;  // per-output-port split
  sim::Rng wred_rng_;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t trace_source_ = 0;
  sim::Counter received_;
  sim::Counter forwarded_;
  sim::Counter dropped_;
  sim::Counter clp_dropped_;
  sim::Counter vc_limit_drop_;
  sim::Counter unroutable_;
  sim::Counter hec_discard_;
  sim::Counter policed_drop_;
  sim::Counter policed_tag_;
  sim::Counter epd_drop_;
  sim::Counter epd_pdus_;
  sim::Counter ppd_drop_;
  sim::Counter queue_offered_;
  sim::Counter wred_drop_;
  sim::Counter wred_drop_clp_;
  sim::Counter efci_marked_;
  sim::Counter metered_;
  sim::Counter meter_green_;
  sim::Counter meter_yellow_;
  sim::Counter meter_red_;
  sim::Counter purged_close_;
  sim::Counter er_stamped_;
  sim::Counter ais_inserted_;
};

}  // namespace hni::net
