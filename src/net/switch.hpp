// Output-buffered ATM switch.
//
// Minimal but real: per-input VC translation (the (port, VPI/VCI) ->
// (port', VPI'/VCI') map every ATM switch maintains), per-output FIFO
// queues of bounded depth with tail drop (CLP-eligible cells dropped
// first at a configurable threshold — the standard CLP usage), and an
// output scheduler that serves one cell per output slot at the port's
// line rate. This is enough substrate to create the congestion losses
// and multiplexing jitter the host interface must live with.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <functional>
#include <vector>

#include "atm/cell.hpp"
#include "atm/hec.hpp"
#include "atm/gcra.hpp"
#include "atm/phy.hpp"
#include "net/link.hpp"
#include "sim/flat_table.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::net {

struct SwitchConfig {
  std::size_t ports = 2;
  std::size_t queue_cells = 128;   // per-output buffer, in cells
  /// Queue depth at and beyond which CLP=1 cells are dropped (<= queue_cells).
  std::size_t clp_threshold = 128;
  atm::LineRate port_rate = atm::sts3c();
  /// Early Packet Discard: when the *first* cell of an AAL5 PDU arrives
  /// with the output queue at or beyond this depth, the whole PDU is
  /// discarded instead of shedding random cells from many PDUs. Partial
  /// Packet Discard engages automatically after any mid-PDU loss: the
  /// rest of the damaged PDU is dropped (its final cell is forwarded so
  /// the receiver's reassembler terminates cleanly instead of splicing).
  /// 0 disables frame-aware discard. AAL5 VCs only (uses the PTI AUU
  /// end-of-PDU bit); leave disabled on AAL3/4 paths.
  std::size_t epd_threshold = 0;
  /// Output clock oscillator offset in ppm; nullopt lets core::Testbed
  /// assign a realistic random value.
  std::optional<double> clock_ppm{};
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig config);

  /// Routes (in_port, vc) to (out_port, out_vc).
  void add_route(std::size_t in_port, atm::VcId vc, std::size_t out_port,
                 atm::VcId out_vc);

  /// What UPC does with a non-conforming cell.
  enum class PoliceAction : std::uint8_t {
    kDrop,  // discard immediately
    kTag,   // set CLP=1 (discard-eligible downstream)
  };

  /// Installs usage parameter control on (in_port, vc): cells are
  /// checked against GCRA(1/pcr, cdvt) on arrival.
  void add_policer(std::size_t in_port, atm::VcId vc,
                   double pcr_cells_per_second, sim::Time cdvt,
                   PoliceAction action);

  /// Tears down a route (and its policer, if any). Returns true if a
  /// route existed. Subsequent cells on the VC count as unroutable.
  bool remove_route(std::size_t in_port, atm::VcId vc);

  /// Whether (in_port, vc) has a route installed.
  bool has_route(std::size_t in_port, atm::VcId vc) const {
    const auto found = vcs_.find(route_label(in_port, vc));
    return found.value != nullptr && found.value->has_route;
  }
  std::size_t route_count() const { return route_count_; }

  /// Steady-state bytes the per-VC state (index + pooled records)
  /// occupies — bench P2's bytes/VC column.
  std::size_t vc_state_bytes() const { return vcs_.memory_bytes(); }

  /// Visits every route as fn(in_port, in_vc, out_port, out_vc), in
  /// ascending (in_port, vpi, vci) order — audit iteration stays
  /// byte-deterministic however the table was populated. The callback
  /// may add or remove routes (mutations do not disturb the walk).
  template <typename Fn>
  void for_each_route(Fn&& fn) {
    vcs_.for_each_sorted([&fn](std::uint32_t label, VcEntry& e) {
      if (!e.has_route) return;
      fn(static_cast<std::size_t>(label >> 24),
         atm::VcId{static_cast<std::uint16_t>((label >> 16) & 0xFF),
                   static_cast<std::uint16_t>(label & 0xFFFF)},
         e.out_port, e.out_vc);
    });
  }

  /// Attaches the link leaving `out_port`.
  void attach_output(std::size_t out_port, Link& link);

  /// Delivers a wire cell arriving on `in_port` (connect a Link's sink
  /// to this via a lambda).
  void receive(std::size_t in_port, const WireCell& wire);

  std::uint64_t cells_forwarded() const { return forwarded_.value(); }
  std::uint64_t cells_dropped_overflow() const { return dropped_.value(); }
  std::uint64_t cells_dropped_clp() const { return clp_dropped_.value(); }
  std::uint64_t cells_unroutable() const { return unroutable_.value(); }
  std::uint64_t cells_hec_discarded() const { return hec_discard_.value(); }
  std::uint64_t cells_policed_dropped() const { return policed_drop_.value(); }
  std::uint64_t cells_policed_tagged() const { return policed_tag_.value(); }
  std::uint64_t cells_epd_dropped() const { return epd_drop_.value(); }
  std::uint64_t pdus_epd_discarded() const { return epd_pdus_.value(); }
  std::uint64_t cells_ppd_dropped() const { return ppd_drop_.value(); }

  const SwitchConfig& config() const { return config_; }

  /// Time-average and max depth of an output queue.
  double mean_queue_depth(std::size_t out_port) const;
  double max_queue_depth(std::size_t out_port) const;

  /// Surfaces the switch's books (plus per-port queue-depth gauges)
  /// under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("cells_forwarded", forwarded_);
    scope.expose("cells_dropped_overflow", dropped_);
    scope.expose("cells_dropped_clp", clp_dropped_);
    scope.expose("cells_unroutable", unroutable_);
    scope.expose("cells_hec_discarded", hec_discard_);
    scope.expose("cells_policed_dropped", policed_drop_);
    scope.expose("cells_policed_tagged", policed_tag_);
    scope.expose("cells_epd_dropped", epd_drop_);
    scope.expose("pdus_epd_discarded", epd_pdus_);
    scope.expose("cells_ppd_dropped", ppd_drop_);
    for (std::size_t p = 0; p < config_.ports; ++p) {
      const sim::MetricScope port = scope.sub("port." + std::to_string(p));
      port.gauge("queue_depth_mean",
                 [this, p] { return mean_queue_depth(p); });
      port.gauge("queue_depth_max",
                 [this, p] { return max_queue_depth(p); });
    }
  }

 private:
  /// Frame-aware discard state per (in_port, vc), AAL5 framing.
  struct FrameState {
    bool mid_pdu = false;      // a PDU is in progress (first cell seen)
    enum class Discard : std::uint8_t {
      kNone,
      kWholePdu,   // EPD: drop everything through the final cell
      kTail,       // PPD: drop the rest but forward the final cell
    } discard = Discard::kNone;
  };
  /// Everything the data plane needs for one (in_port, vc), in one
  /// pooled record: a cell pays exactly one table probe, not three.
  struct VcEntry {
    std::uint32_t out_port = 0;
    atm::VcId out_vc{};
    atm::Gcra police{0, 0};
    PoliceAction police_action = PoliceAction::kDrop;
    bool has_route = false;
    bool has_policer = false;
    FrameState frame;
  };
  struct OutputPort {
    std::deque<WireCell> queue;
    Link* link = nullptr;
    bool serving = false;
    sim::TimeWeightedStat depth;
  };

  /// Packs (in_port, vpi, vci) into the 32-bit table label:
  /// port(8) | vpi(8) | vci(16). The forwarding plane parses headers
  /// as UNI, so the VPI always fits 8 bits here; out-of-range values
  /// (a would-be 12-bit NNI VPI, a port beyond 255) throw rather than
  /// aliasing another connection's state.
  static std::uint32_t route_label(std::size_t port, atm::VcId vc);

  void serve(std::size_t out_port);

  sim::Simulator& sim_;
  SwitchConfig config_;
  sim::FlatMap<std::uint32_t, VcEntry> vcs_;
  std::size_t route_count_ = 0;
  std::vector<OutputPort> outputs_;
  std::vector<atm::HecReceiver> hec_;  // one per input port
  sim::Counter forwarded_;
  sim::Counter dropped_;
  sim::Counter clp_dropped_;
  sim::Counter unroutable_;
  sim::Counter hec_discard_;
  sim::Counter policed_drop_;
  sim::Counter policed_tag_;
  sim::Counter epd_drop_;
  sim::Counter epd_pdus_;
  sim::Counter ppd_drop_;
};

}  // namespace hni::net
