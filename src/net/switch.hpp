// Output-buffered ATM switch.
//
// Minimal but real: per-input VC translation (the (port, VPI/VCI) ->
// (port', VPI'/VCI') map every ATM switch maintains), per-VC output
// queues drawing on a shared per-port buffer pool of bounded depth, and
// an output scheduler that serves one cell per output slot at the
// port's line rate (global-FIFO or per-VC round-robin service order).
// This is enough substrate to create the congestion losses and
// multiplexing jitter the host interface must live with.
//
// The discard/overload plane, in the order a cell meets it:
//
//   HEC --> route lookup --> UPC (drop/tag) --> EPD/PPD --> WRED
//       --> pool overflow --> CLP threshold --> EFCI mark --> enqueue
//
// * EPD/PPD shed whole AAL5 frames once the pool passes epd_threshold.
// * WRED sheds early and probabilistically as occupancy climbs, with a
//   lower threshold band for CLP-tagged cells so UPC's kTag verdict is
//   consequential: tagged traffic dies first under pressure.
// * EFCI marks surviving user-data cells once occupancy passes
//   efci_threshold — the forward congestion signal endpoints close the
//   loop on (nic::Nic turns observed marks into backward RM cells that
//   throttle the source).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <functional>
#include <string>
#include <vector>

#include "atm/cell.hpp"
#include "atm/hec.hpp"
#include "atm/gcra.hpp"
#include "atm/phy.hpp"
#include "net/link.hpp"
#include "sim/flat_table.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace hni::net {

/// Service order across the per-VC queues of one output port.
enum class SwitchScheduler : std::uint8_t {
  kFifo,        // global arrival order (classic shared FIFO behaviour)
  kRoundRobin,  // one cell per active VC per turn (no head-of-line
                // capture by a bursty connection)
};

/// WRED-style early discard on the shared output pool. Tagged (CLP=1)
/// cells use the clp1_* band, which sits below the untagged band, so
/// discard-eligible traffic absorbs the early losses. Drop probability
/// ramps linearly from 0 at min_cells to max_p at max_cells (and is 1
/// beyond max_cells). Decisions use the instantaneous pool occupancy —
/// "WRED-style", not a literal EWMA RED — and a seeded deterministic
/// RNG so runs replay exactly.
struct WredConfig {
  bool enabled = false;
  std::size_t min_cells = 0;
  std::size_t max_cells = 0;
  double max_p = 0.1;
  std::size_t clp1_min_cells = 0;
  std::size_t clp1_max_cells = 0;
  double clp1_max_p = 1.0;
  std::uint64_t seed = 0xEC4;
};

struct SwitchConfig {
  std::size_t ports = 2;
  std::size_t queue_cells = 128;   // per-output shared pool, in cells
  /// Pool depth at and beyond which CLP=1 cells are dropped (<= queue_cells).
  std::size_t clp_threshold = 128;
  atm::LineRate port_rate = atm::sts3c();
  /// Early Packet Discard: when the *first* cell of an AAL5 PDU arrives
  /// with the output pool at or beyond this depth, the whole PDU is
  /// discarded instead of shedding random cells from many PDUs. Partial
  /// Packet Discard engages automatically after any mid-PDU loss: the
  /// rest of the damaged PDU is dropped (its final cell is forwarded so
  /// the receiver's reassembler terminates cleanly instead of splicing).
  /// 0 disables frame-aware discard. AAL5 VCs only (uses the PTI AUU
  /// end-of-PDU bit); leave disabled on AAL3/4 paths.
  std::size_t epd_threshold = 0;
  /// Service order across per-VC output queues. kFifo reproduces the
  /// historical shared-FIFO switch exactly.
  SwitchScheduler scheduler = SwitchScheduler::kFifo;
  /// Color-aware random early discard (see WredConfig).
  WredConfig wred{};
  /// Pool depth at and beyond which surviving user-data cells get the
  /// EFCI congestion mark (PTI bit 0b010). 0 disables marking.
  std::size_t efci_threshold = 0;
  /// Output clock oscillator offset in ppm; nullopt lets core::Testbed
  /// assign a realistic random value.
  std::optional<double> clock_ppm{};
};

class Switch {
 public:
  Switch(sim::Simulator& sim, SwitchConfig config);

  /// Routes (in_port, vc) to (out_port, out_vc).
  void add_route(std::size_t in_port, atm::VcId vc, std::size_t out_port,
                 atm::VcId out_vc);

  /// What UPC does with a non-conforming cell.
  enum class PoliceAction : std::uint8_t {
    kDrop,  // discard immediately
    kTag,   // set CLP=1 (discard-eligible downstream)
  };

  /// Installs usage parameter control on (in_port, vc): cells are
  /// checked against GCRA(1/pcr, cdvt) on arrival.
  void add_policer(std::size_t in_port, atm::VcId vc,
                   double pcr_cells_per_second, sim::Time cdvt,
                   PoliceAction action);

  /// Tears down a route (and its policer, if any). Returns true if a
  /// route existed. Subsequent cells on the VC count as unroutable.
  bool remove_route(std::size_t in_port, atm::VcId vc);

  /// Whether (in_port, vc) has a route installed.
  bool has_route(std::size_t in_port, atm::VcId vc) const {
    const auto found = vcs_.find(route_label(in_port, vc));
    return found.value != nullptr && found.value->has_route;
  }
  std::size_t route_count() const { return route_count_; }

  /// Steady-state bytes the per-VC state (index + pooled records)
  /// occupies — bench P2's bytes/VC column.
  std::size_t vc_state_bytes() const { return vcs_.memory_bytes(); }

  /// Visits every route as fn(in_port, in_vc, out_port, out_vc), in
  /// ascending (in_port, vpi, vci) order — audit iteration stays
  /// byte-deterministic however the table was populated. The callback
  /// may add or remove routes (mutations do not disturb the walk).
  template <typename Fn>
  void for_each_route(Fn&& fn) {
    vcs_.for_each_sorted([&fn](std::uint32_t label, VcEntry& e) {
      if (!e.has_route) return;
      fn(static_cast<std::size_t>(label >> 24),
         atm::VcId{static_cast<std::uint16_t>((label >> 16) & 0xFF),
                   static_cast<std::uint16_t>(label & 0xFFFF)},
         e.out_port, e.out_vc);
    });
  }

  /// Attaches the link leaving `out_port`.
  void attach_output(std::size_t out_port, Link& link);

  /// Delivers a wire cell arriving on `in_port` (connect a Link's sink
  /// to this via a lambda).
  void receive(std::size_t in_port, const WireCell& wire);

  std::uint64_t cells_received() const { return received_.value(); }
  std::uint64_t cells_forwarded() const { return forwarded_.value(); }
  std::uint64_t cells_dropped_overflow() const { return dropped_.value(); }
  std::uint64_t cells_dropped_clp() const { return clp_dropped_.value(); }
  std::uint64_t cells_unroutable() const { return unroutable_.value(); }
  std::uint64_t cells_hec_discarded() const { return hec_discard_.value(); }
  std::uint64_t cells_policed_dropped() const { return policed_drop_.value(); }
  std::uint64_t cells_policed_tagged() const { return policed_tag_.value(); }
  std::uint64_t cells_epd_dropped() const { return epd_drop_.value(); }
  std::uint64_t pdus_epd_discarded() const { return epd_pdus_.value(); }
  std::uint64_t cells_ppd_dropped() const { return ppd_drop_.value(); }
  /// Cells that cleared HEC, routing and UPC — everything offered to
  /// the output queue stage. The queue-stage conservation identity
  /// (core::InvariantAuditor::audit_switch) balances this against the
  /// forwarded + per-cause discard counters + resident cells.
  std::uint64_t cells_queue_offered() const { return queue_offered_.value(); }
  std::uint64_t cells_wred_dropped() const { return wred_drop_.value(); }
  std::uint64_t cells_wred_dropped_clp() const {
    return wred_drop_clp_.value();
  }
  std::uint64_t cells_efci_marked() const { return efci_marked_.value(); }
  /// Cells currently resident across all output pools.
  std::size_t cells_queued() const;
  /// Current occupancy of one output port's shared pool.
  std::size_t queue_occupancy(std::size_t out_port) const {
    return outputs_.at(out_port).occupancy;
  }

  const SwitchConfig& config() const { return config_; }

  /// Time-average and max depth of an output pool.
  double mean_queue_depth(std::size_t out_port) const;
  double max_queue_depth(std::size_t out_port) const;

  /// Surfaces the switch's books (plus per-port queue-depth gauges)
  /// under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("cells_received", received_);
    scope.expose("cells_forwarded", forwarded_);
    scope.expose("cells_dropped_overflow", dropped_);
    scope.expose("cells_dropped_clp", clp_dropped_);
    scope.expose("cells_unroutable", unroutable_);
    scope.expose("cells_hec_discarded", hec_discard_);
    scope.expose("cells_policed_dropped", policed_drop_);
    scope.expose("cells_policed_tagged", policed_tag_);
    scope.expose("cells_epd_dropped", epd_drop_);
    scope.expose("pdus_epd_discarded", epd_pdus_);
    scope.expose("cells_ppd_dropped", ppd_drop_);
    scope.expose("cells_queue_offered", queue_offered_);
    scope.expose("cells_wred_dropped", wred_drop_);
    scope.expose("cells_wred_dropped_clp", wred_drop_clp_);
    scope.expose("cells_efci_marked", efci_marked_);
    for (std::size_t p = 0; p < config_.ports; ++p) {
      const sim::MetricScope port = scope.sub("port." + std::to_string(p));
      port.gauge("queue_depth_mean",
                 [this, p] { return mean_queue_depth(p); });
      port.gauge("queue_depth_max",
                 [this, p] { return max_queue_depth(p); });
    }
  }

  /// Attaches a tracer: EFCI marks and WRED drops emit typed events
  /// tagged `name`.
  void set_tracer(sim::Tracer* tracer, const std::string& name) {
    tracer_ = tracer;
    trace_source_ = tracer ? tracer->intern(name) : 0;
  }

 private:
  /// Frame-aware discard state per (in_port, vc), AAL5 framing.
  struct FrameState {
    bool mid_pdu = false;      // a PDU is in progress (first cell seen)
    enum class Discard : std::uint8_t {
      kNone,
      kWholePdu,   // EPD: drop everything through the final cell
      kTail,       // PPD: drop the rest but forward the final cell
    } discard = Discard::kNone;
  };
  /// Everything the data plane needs for one (in_port, vc), in one
  /// pooled record: a cell pays exactly one table probe, not three.
  struct VcEntry {
    std::uint32_t out_port = 0;
    atm::VcId out_vc{};
    atm::Gcra police{0, 0};
    PoliceAction police_action = PoliceAction::kDrop;
    bool has_route = false;
    bool has_policer = false;
    FrameState frame;
  };
  /// One (translated) VC's cells awaiting service on an output port.
  struct VcQueue {
    std::deque<WireCell> cells;
  };
  struct OutputPort {
    /// kFifo service structure: the historical shared FIFO, literally —
    /// one deque of cells in arrival order, so the default scheduler
    /// pays nothing for the per-VC machinery it doesn't use.
    std::deque<WireCell> fifo;
    /// kRoundRobin: per-VC queues keyed on the *outgoing* VC label, all
    /// drawing on the shared `occupancy` pool bounded by queue_cells,
    /// plus the active ring (one entry per non-empty VC queue). Ring
    /// tickets are arena pointers — queue records are never erased, so
    /// they stay valid across inserts and the scheduler pays no table
    /// probe per served cell.
    sim::FlatMap<std::uint32_t, VcQueue> queues;
    std::deque<VcQueue*> order;
    std::size_t occupancy = 0;
    Link* link = nullptr;
    bool serving = false;
    sim::TimeWeightedStat depth;
  };

  /// Packs (in_port, vpi, vci) into the 32-bit table label:
  /// port(8) | vpi(8) | vci(16). The forwarding plane parses headers
  /// as UNI, so the VPI always fits 8 bits here; out-of-range values
  /// (a would-be 12-bit NNI VPI, a port beyond 255) throw rather than
  /// aliasing another connection's state.
  static std::uint32_t route_label(std::size_t port, atm::VcId vc);

  /// One WRED trial against the band for `tagged` at `occupancy`.
  bool wred_decides_drop(std::size_t occupancy, bool tagged);
  void serve(std::size_t out_port);

  sim::Simulator& sim_;
  SwitchConfig config_;
  sim::Time slot_;  // output cell slot, clock_ppm applied once
  sim::FlatMap<std::uint32_t, VcEntry> vcs_;
  std::size_t route_count_ = 0;
  std::vector<OutputPort> outputs_;
  std::vector<atm::HecReceiver> hec_;  // one per input port
  sim::Rng wred_rng_;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t trace_source_ = 0;
  sim::Counter received_;
  sim::Counter forwarded_;
  sim::Counter dropped_;
  sim::Counter clp_dropped_;
  sim::Counter unroutable_;
  sim::Counter hec_discard_;
  sim::Counter policed_drop_;
  sim::Counter policed_tag_;
  sim::Counter epd_drop_;
  sim::Counter epd_pdus_;
  sim::Counter ppd_drop_;
  sim::Counter queue_offered_;
  sim::Counter wred_drop_;
  sim::Counter wred_drop_clp_;
  sim::Counter efci_marked_;
};

}  // namespace hni::net
