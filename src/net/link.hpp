// Point-to-point ATM link with loss and bit-error injection.
//
// The link carries *wire images*: the 53-octet serialized cell. Bit
// errors are injected by flipping real bits, so the receiver's HEC
// machinery (correction/detection) and the AAL CRCs are exercised
// end-to-end rather than being told the answer.
//
// Loss models:
//   - Bernoulli: each cell independently lost with probability p.
//   - Gilbert-Elliott: two-state Markov loss (good/bad), capturing the
//     correlated losses ATM switches produce under congestion.
//
// Serialization time is the upstream framer's job; the link adds
// propagation delay only.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "atm/cell.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/trace.hpp"

namespace hni::net {

/// A serialized cell in flight, with simulation metadata alongside.
struct WireCell {
  std::array<std::uint8_t, atm::kCellSize> bytes{};
  atm::Cell::Meta meta;
};

/// Loss-process configuration.
struct LossModel {
  // Independent loss.
  double cell_loss_rate = 0.0;

  // Gilbert-Elliott correlated loss; enabled when mean_burst_cells > 0.
  // In the bad state every cell is lost; transitions are chosen so the
  // long-run loss rate equals cell_loss_rate and loss bursts average
  // mean_burst_cells cells.
  double mean_burst_cells = 0.0;

  // Probability a cell suffers one header bit flip / one payload bit
  // flip (independent).
  double header_bit_error_rate = 0.0;
  double payload_bit_error_rate = 0.0;

  // Cell delay variation: each cell's delivery is delayed by an
  // additional U(0, cdv_jitter) — the multiplexing jitter a real path
  // accumulates (the quantity GCRA's tau exists to tolerate). Cell
  // order within the link is preserved.
  sim::Time cdv_jitter = 0;
};

class Link {
 public:
  using Sink = std::function<void(const WireCell&)>;

  Link(sim::Simulator& sim, sim::Time propagation_delay,
       LossModel loss = {}, std::uint64_t seed = 1);

  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Attaches a tracer: the link emits one typed event per cell
  /// (sent / lost / corrupted) and per state transition, tagged with
  /// the interned `name`.
  void set_tracer(sim::Tracer* tracer, std::string name) {
    tracer_ = tracer;
    source_ = tracer ? tracer->intern(std::move(name)) : 0;
  }

  /// Accepts a structured cell, serializes it and sends it (UNI header
  /// format — the interface-to-network hop the paper concerns).
  void send(const atm::Cell& cell);

  /// Accepts a pre-serialized cell (switch-to-link hop).
  void send_wire(WireCell wire);

  // --- fault hooks ----------------------------------------------------
  /// Takes the link down (fiber pull) or brings it back. While down
  /// every cell is dropped; observers (the receiving NIC's loss-of-
  /// signal detector) are notified on each transition.
  void set_down(bool down);
  bool is_down() const { return down_; }
  /// Registers a state observer, called with `down` on every
  /// transition. The downstream NIC uses this as its LOS detector.
  using StateObserver = std::function<void(bool down)>;
  void add_state_observer(StateObserver observer) {
    observers_.push_back(std::move(observer));
  }

  std::uint64_t cells_in() const { return in_.value(); }
  std::uint64_t cells_lost() const { return lost_.value(); }
  std::uint64_t cells_corrupted() const { return corrupted_.value(); }
  /// Cells whose header / payload took a bit flip (a cell can take both;
  /// corrupted() counts it once, these count each region). The receiver
  /// must account every header hit as HEC-corrected or HEC-discarded.
  std::uint64_t cells_corrupted_header() const {
    return corrupted_header_.value();
  }
  std::uint64_t cells_corrupted_payload() const {
    return corrupted_payload_.value();
  }
  /// Cells dropped because the link was administratively down.
  std::uint64_t cells_dropped_down() const { return down_drop_.value(); }
  /// Up->down transitions seen.
  std::uint64_t flaps() const { return flaps_.value(); }
  /// State transitions in either direction (down + up).
  std::uint64_t transitions() const { return transitions_.value(); }
  /// Total simulated time spent down, including the live interval when
  /// the link is down right now.
  sim::Time down_time_total() const {
    return down_time_accum_ + (down_ ? sim_.now() - down_since_ : 0);
  }
  sim::Time propagation_delay() const { return delay_; }

  /// Surfaces the link's books under `scope`.
  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("cells_in", in_);
    scope.expose("cells_lost", lost_);
    scope.expose("cells_corrupted", corrupted_);
    scope.expose("cells_corrupted_header", corrupted_header_);
    scope.expose("cells_corrupted_payload", corrupted_payload_);
    scope.expose("cells_dropped_down", down_drop_);
    scope.expose("flaps", flaps_);
    scope.expose("transitions", transitions_);
    scope.gauge("down_time_total",
                [this] { return static_cast<double>(down_time_total()); });
  }

 private:
  bool survives();  // advances the loss process

  sim::Simulator& sim_;
  sim::Time delay_;
  LossModel loss_;
  sim::Rng rng_;
  Sink sink_;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t source_ = 0;
  bool bad_state_ = false;
  double p_good_to_bad_ = 0.0;
  double p_bad_to_good_ = 0.0;
  sim::Time last_delivery_ = 0;  // FIFO guard under CDV jitter
  bool down_ = false;
  sim::Time down_since_ = 0;
  sim::Time down_time_accum_ = 0;
  std::vector<StateObserver> observers_;
  sim::Counter in_;
  sim::Counter lost_;
  sim::Counter corrupted_;
  sim::Counter corrupted_header_;
  sim::Counter corrupted_payload_;
  sim::Counter down_drop_;
  sim::Counter flaps_;
  sim::Counter transitions_;
};

}  // namespace hni::net
