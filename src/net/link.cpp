#include "net/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace hni::net {

Link::Link(sim::Simulator& sim, sim::Time propagation_delay, LossModel loss,
           std::uint64_t seed)
    : sim_(sim), delay_(propagation_delay), loss_(loss), rng_(seed) {
  if (loss_.cell_loss_rate < 0.0 || loss_.cell_loss_rate >= 1.0) {
    throw std::invalid_argument("Link: cell_loss_rate must be in [0,1)");
  }
  if (loss_.mean_burst_cells > 0.0 && loss_.cell_loss_rate > 0.0) {
    // Gilbert-Elliott: bad state loses every cell. Long-run bad-state
    // occupancy must equal the target loss rate and bursts average
    // mean_burst_cells.
    p_bad_to_good_ = 1.0 / loss_.mean_burst_cells;
    p_good_to_bad_ = loss_.cell_loss_rate * p_bad_to_good_ /
                     (1.0 - loss_.cell_loss_rate);
    if (p_good_to_bad_ > 1.0) {
      throw std::invalid_argument(
          "Link: loss rate too high for the requested burst length");
    }
  }
}

bool Link::survives() {
  if (loss_.cell_loss_rate <= 0.0) return true;
  if (loss_.mean_burst_cells > 0.0) {
    if (bad_state_) {
      if (rng_.chance(p_bad_to_good_)) bad_state_ = false;
    } else {
      if (rng_.chance(p_good_to_bad_)) bad_state_ = true;
    }
    return !bad_state_;
  }
  return !rng_.chance(loss_.cell_loss_rate);
}

void Link::send(const atm::Cell& cell) {
  WireCell wire;
  wire.bytes = cell.serialize(atm::HeaderFormat::kUni);
  wire.meta = cell.meta;
  send_wire(std::move(wire));
}

void Link::set_down(bool down) {
  if (down == down_) return;
  down_ = down;
  transitions_.add();
  if (down) {
    flaps_.add();
    down_since_ = sim_.now();
  } else {
    down_time_accum_ += sim_.now() - down_since_;
  }
  if (tracer_) {
    tracer_->emit({sim_.now(),
                   down ? sim::TraceEventId::kLinkDown
                        : sim::TraceEventId::kLinkUp,
                   source_, 0, 0, 0});
  }
  for (const auto& observer : observers_) observer(down_);
}

void Link::send_wire(WireCell wire) {
  in_.add();
  if (down_) {
    down_drop_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kLinkCellDroppedDown,
                     source_, 0, 0, wire.meta.seq});
    }
    return;
  }
  if (!survives()) {
    lost_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kLinkCellLost, source_,
                     0, 0, wire.meta.seq});
    }
    return;
  }
  // Capture the header for tracing BEFORE any bit flips: the trace must
  // report the cell's original VPI/VCI, not the garbled one.
  atm::CellHeader pre_flip{};
  const bool tracing = tracer_ && tracer_->enabled();
  if (tracing) {
    // Header decode only when someone is listening; the emit itself is
    // a POD copy — no strings until Tracer::format().
    pre_flip = atm::decode_header(
        std::span<const std::uint8_t, 4>(wire.bytes.data(), 4),
        atm::HeaderFormat::kUni);
  }
  bool header_hit = false;
  bool payload_hit = false;
  if (loss_.header_bit_error_rate > 0.0 &&
      rng_.chance(loss_.header_bit_error_rate)) {
    const auto bit = rng_.uniform_int(0, 8 * atm::kHeaderSize - 1);
    wire.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    header_hit = true;
  }
  if (loss_.payload_bit_error_rate > 0.0 &&
      rng_.chance(loss_.payload_bit_error_rate)) {
    const auto bit = rng_.uniform_int(8 * atm::kHeaderSize,
                                      8 * atm::kCellSize - 1);
    wire.bytes[bit / 8] ^= static_cast<std::uint8_t>(0x80u >> (bit % 8));
    payload_hit = true;
  }
  if (header_hit) corrupted_header_.add();
  if (payload_hit) corrupted_payload_.add();
  if (header_hit || payload_hit) corrupted_.add();
  if (tracing) {
    tracer_->emit({sim_.now(),
                   (header_hit || payload_hit)
                       ? sim::TraceEventId::kLinkCellCorrupted
                       : sim::TraceEventId::kLinkCellSent,
                   source_, pre_flip.vc.vpi, pre_flip.vc.vci, wire.meta.seq});
  }
  if (!sink_) throw std::logic_error("Link: sink not set");
  sim::Time deliver_at = sim_.now() + delay_;
  if (loss_.cdv_jitter > 0) {
    deliver_at += static_cast<sim::Time>(
        rng_.uniform_int(0, static_cast<std::uint64_t>(loss_.cdv_jitter)));
    // Jitter must not reorder cells on the link.
    deliver_at = std::max(deliver_at, last_delivery_ + 1);
  }
  last_delivery_ = deliver_at;
  sim_.at(deliver_at, [this, wire = std::move(wire)] { sink_(wire); });
}

}  // namespace hni::net
