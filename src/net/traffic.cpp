#include "net/traffic.hpp"

#include <stdexcept>
#include <utility>

namespace hni::net {

SduSource::SduSource(sim::Simulator& sim, Config config, SendFn send)
    : sim_(sim), config_(config), send_(std::move(send)),
      rng_(config.seed) {
  if (config_.sdu_bytes == 0) {
    throw std::invalid_argument("SduSource: sdu_bytes must be nonzero");
  }
  if (!send_) throw std::invalid_argument("SduSource: send fn required");
}

void SduSource::start() {
  if (running_) return;
  running_ = true;
  if (config_.mode == Mode::kGreedy) {
    // Defer to an event so callers can finish wiring first.
    sim_.after(0, [this] { pump_greedy(); });
  } else {
    if (config_.mode == Mode::kOnOff) {
      phase_ends_ =
          sim_.now() + static_cast<sim::Time>(rng_.exponential(
                           static_cast<double>(config_.mean_on)));
    }
    schedule_next();
  }
}

void SduSource::notify_ready() {
  if (running_ && config_.mode == Mode::kGreedy) pump_greedy();
}

void SduSource::pump_greedy() {
  while (running_ && !done()) {
    const std::uint64_t n = generated_.value();
    aal::Bytes sdu = aal::make_pattern(config_.sdu_bytes, pattern_seed(n));
    if (!send_(std::move(sdu))) {
      refused_.add();
      return;  // wait for notify_ready()
    }
    generated_.add();
    bytes_.add(config_.sdu_bytes);
  }
}

void SduSource::schedule_next() {
  if (!running_ || done()) return;
  sim::Time gap = 0;
  switch (config_.mode) {
    case Mode::kCbr:
      gap = config_.interval;
      break;
    case Mode::kPoisson:
      gap = static_cast<sim::Time>(
          rng_.exponential(static_cast<double>(config_.interval)));
      break;
    case Mode::kOnOff: {
      // Arrivals spaced `interval` apart during an on phase; when the
      // phase is exhausted, dwell off (exponential) and begin the next
      // burst.
      sim::Time when = sim_.now() + config_.interval;
      if (when >= phase_ends_) {
        const sim::Time off = static_cast<sim::Time>(
            rng_.exponential(static_cast<double>(config_.mean_off)));
        when = phase_ends_ + off;
        phase_ends_ = when + static_cast<sim::Time>(rng_.exponential(
                                 static_cast<double>(config_.mean_on)));
      }
      gap = when - sim_.now();
      break;
    }
    case Mode::kGreedy:
      return;  // handled by pump_greedy
  }
  sim_.after(gap, [this] { emit_one(); });
}

void SduSource::emit_one() {
  if (!running_ || done()) return;
  const std::uint64_t n = generated_.value();
  aal::Bytes sdu = aal::make_pattern(config_.sdu_bytes, pattern_seed(n));
  generated_.add();
  bytes_.add(config_.sdu_bytes);
  if (!send_(std::move(sdu))) refused_.add();
  schedule_next();
}

}  // namespace hni::net
