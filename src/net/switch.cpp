#include "net/switch.hpp"

#include <algorithm>
#include <stdexcept>

#include "atm/oam.hpp"
#include "atm/rm.hpp"

namespace hni::net {

Switch::Switch(sim::Simulator& sim, SwitchConfig config)
    : sim_(sim), config_(config), outputs_(config.ports),
      inputs_(config.ports), hec_(config.ports),
      received_on_(config.ports, 0), forwarded_on_(config.ports, 0),
      wred_rng_(config.wred.seed) {
  if (config_.ports == 0 || config_.queue_cells == 0) {
    throw std::invalid_argument("Switch: ports and queue must be nonzero");
  }
  if (config_.clp_threshold > config_.queue_cells) {
    config_.clp_threshold = config_.queue_cells;
  }
  slot_ = config_.port_rate.cell_slot();
  port_cells_per_s_ = config_.port_rate.cells_per_second();
  if (config_.clock_ppm) {
    slot_ = static_cast<sim::Time>(static_cast<double>(slot_) *
                                       (1.0 + *config_.clock_ppm * 1e-6) +
                                   0.5);
  }
}

std::uint32_t Switch::route_label(std::size_t port, atm::VcId vc) {
  if (port > 0xFF) throw std::out_of_range("Switch: port exceeds label");
  if (vc.vpi > atm::kMaxUniVpi) {
    throw std::out_of_range("Switch: VPI exceeds UNI label width");
  }
  return (static_cast<std::uint32_t>(port) << 24) |
         (static_cast<std::uint32_t>(vc.vpi) << 16) |
         static_cast<std::uint32_t>(vc.vci);
}

void Switch::add_route(std::size_t in_port, atm::VcId vc,
                       std::size_t out_port, atm::VcId out_vc,
                       std::uint32_t weight, bool abr) {
  if (in_port >= config_.ports || out_port >= config_.ports) {
    throw std::out_of_range("Switch: port index");
  }
  auto [entry, inserted] = vcs_.try_emplace(route_label(in_port, vc));
  if (!entry->has_route) ++route_count_;
  entry->has_route = true;
  entry->out_port = static_cast<std::uint32_t>(out_port);
  entry->out_vc = out_vc;
  entry->weight = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(std::max<std::uint32_t>(weight, 1), 0xFFFF));
  entry->abr = abr;
  entry->frame = FrameState{};
}

void Switch::add_policer(std::size_t in_port, atm::VcId vc,
                         double pcr_cells_per_second, sim::Time cdvt,
                         PoliceAction action) {
  if (in_port >= config_.ports) throw std::out_of_range("Switch: port");
  const std::uint32_t label = route_label(in_port, vc);
  auto [entry, inserted] = vcs_.try_emplace(label);
  if (entry->upc == Upc::kTrTcm) meters_.erase(label);
  entry->upc = action == PoliceAction::kDrop ? Upc::kGcraDrop : Upc::kGcraTag;
  entry->police = atm::Gcra::for_pcr(pcr_cells_per_second, cdvt);
}

void Switch::add_meter(std::size_t in_port, atm::VcId vc,
                       const atm::TrTcmConfig& meter) {
  if (in_port >= config_.ports) throw std::out_of_range("Switch: port");
  const std::uint32_t label = route_label(in_port, vc);
  auto [entry, inserted] = vcs_.try_emplace(label);
  entry->upc = Upc::kTrTcm;  // trTCM replaces any single-GCRA tagger
  auto [slot, fresh] = meters_.try_emplace(label);
  *slot = atm::TrTcm(meter);
}

bool Switch::remove_route(std::size_t in_port, atm::VcId vc) {
  // The whole record — route, policer/meter, frame-discard state — dies
  // with the connection (keeping frame state alive for a removed route
  // was a slow leak: nothing could ever clear it again).
  const std::uint32_t label = route_label(in_port, vc);
  const auto found = vcs_.find(label);
  if (found.value == nullptr) return false;
  const bool had_route = found.value->has_route;
  if (found.value->upc == Upc::kTrTcm) meters_.erase(label);
  if (had_route && config_.scheduler != SwitchScheduler::kFifo) {
    // Purge the closed VC's output queue. Resident cells are accounted
    // as overflow drops (the queue-stage identity keeps balancing), the
    // active-ring ticket is retired before the record is erased so the
    // scheduler never dereferences a recycled arena slot, and a later
    // connection reusing the same out-VC label starts from a fresh
    // record instead of inheriting stale weight/deficit state.
    OutputPort& out = outputs_[found.value->out_port];
    const std::uint32_t out_label = atm::vc_label(found.value->out_vc);
    VcQueue* vq = out.queues.find(out_label).value;
    if (vq != nullptr) {
      const std::size_t resident = vq->cells.size();
      if (resident > 0) {
        out.occupancy -= resident;
        out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
        for (std::size_t i = 0; i < resident; ++i) {
          dropped_.add();
          purged_close_.add();
        }
        out.order.erase(std::remove(out.order.begin(), out.order.end(), vq),
                        out.order.end());
      }
      out.queues.erase(out_label);
    }
  }
  vcs_.erase(label);
  if (had_route) --route_count_;
  return had_route;
}

void Switch::attach_output(std::size_t out_port, Link& link) {
  outputs_.at(out_port).link = &link;
}

void Switch::set_input_link(std::size_t in_port, Link& link) {
  InputPort& ip = inputs_.at(in_port);
  ip.link = &link;
  ip.down = link.is_down();
  link.add_state_observer([this, in_port](bool down) {
    InputPort& port = inputs_[in_port];
    if (port.down == down) return;
    port.down = down;
    ++port.epoch;  // kills any timer armed for the previous state
    if (down && config_.ais_period > 0) insert_ais(in_port, port.epoch);
  });
  if (ip.down && config_.ais_period > 0) insert_ais(in_port, ++ip.epoch);
}

void Switch::insert_ais(std::size_t in_port, std::uint64_t epoch) {
  InputPort& ip = inputs_[in_port];
  if (!ip.down || ip.epoch != epoch) return;
  // Walk the routes entering on the dead port in sorted label order
  // (deterministic however the table was populated) and originate one
  // AIS per connection, already translated onto the outgoing VC — the
  // next hop forwards it like any routed control cell, so the alarm
  // propagates to the endpoint however many switches remain.
  for_each_route([&](std::size_t port, atm::VcId in_vc, std::size_t,
                     atm::VcId out_vc) {
    if (port != in_port) return;
    const VcEntry* entry = vcs_.find(route_label(port, in_vc)).value;
    if (entry == nullptr) return;
    atm::OamCell oam;
    oam.function = atm::OamFunction::kAis;
    oam.tag = static_cast<std::uint64_t>(in_port);  // defect location
    const atm::Cell cell = oam.to_cell(out_vc);
    WireCell wire;
    wire.bytes = cell.serialize(atm::HeaderFormat::kUni);
    wire.meta = cell.meta;
    ais_inserted_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchAisInsert,
                     trace_source_, static_cast<std::uint32_t>(in_port),
                     atm::vc_label(out_vc), 0});
    }
    inject_control(*entry, std::move(wire));
  });
  sim_.after(config_.ais_period,
             [this, in_port, epoch] { insert_ais(in_port, epoch); });
}

void Switch::inject_control(const VcEntry& entry, WireCell wire) {
  // Switch-originated control cells enter the books at the queue stage:
  // they were never received on a port, so the receive-stage identity
  // balances them through cells_ais_inserted instead.
  queue_offered_.add();
  OutputPort& out = outputs_[entry.out_port];
  const std::size_t pool_limit =
      config_.queue_cells + config_.control_reserve_cells;
  if (out.occupancy >= pool_limit) {
    dropped_.add();
    return;
  }
  const std::size_t out_port = entry.out_port;
  if (config_.scheduler == SwitchScheduler::kFifo) {
    out.fifo.push_back(std::move(wire));
  } else {
    auto [vq, inserted] = out.queues.try_emplace(atm::vc_label(entry.out_vc));
    vq->weight = entry.weight;
    if (vq->cells.empty()) out.order.push_back(vq);
    vq->cells.push_back(std::move(wire));
  }
  ++out.occupancy;
  out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
  if (!out.serving) serve(out_port);
}

bool Switch::wred_decides_drop(std::size_t occupancy, bool tagged) {
  const WredConfig& w = config_.wred;
  const std::size_t lo = tagged ? w.clp1_min_cells : w.min_cells;
  const std::size_t hi = tagged ? w.clp1_max_cells : w.max_cells;
  if (hi == 0 || occupancy < lo) return false;   // band disabled or idle
  if (occupancy > hi) return true;               // past the band: forced shed
  // Inside the band the ramp is linear, reaching exactly max_p at the
  // upper threshold — occupancy == hi still takes an RNG draw; only
  // beyond it is the drop unconditional.
  const double max_p = tagged ? w.clp1_max_p : w.max_p;
  const double p = hi == lo ? max_p
                            : max_p * static_cast<double>(occupancy - lo) /
                                  static_cast<double>(hi - lo);
  return wred_rng_.chance(p);
}

void Switch::receive(std::size_t in_port, const WireCell& wire) {
  received_.add();
  ++received_on_[in_port];
  // Validate/correct the header before trusting the VCI.
  WireCell cell = wire;
  auto header = std::span<std::uint8_t, 4>(cell.bytes.data(), 4);
  const auto verdict = hec_.at(in_port).push(header, cell.bytes[4]);
  if (verdict == atm::HecVerdict::kDiscard) {
    hec_discard_.add();
    return;
  }
  if (verdict == atm::HecVerdict::kCorrected) {
    // Re-stamp the HEC so downstream hops see a consistent codeword.
    cell.bytes[4] = atm::hec_compute(
        std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));
  }

  atm::CellHeader h = atm::decode_header(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4),
      atm::HeaderFormat::kUni);
  // One probe fetches the whole per-VC record: route, policer and
  // frame-discard state live in the same pooled entry.
  const std::uint32_t in_label = route_label(in_port, h.vc);
  VcEntry* entry = vcs_.find(in_label).value;
  if (entry == nullptr || !entry->has_route) {
    unroutable_.add();
    return;
  }

  // ERICA: a backward RM cell entering on this port reports on the
  // *forward* data that leaves through it — tighten its explicit rate
  // to this switch's grant before it continues toward the source.
  if (config_.abr.enabled && h.pti == atm::Pti::kResourceMgmt) {
    stamp_backward_rm(in_port, h, cell);
  }

  // Usage parameter control: non-conforming cells are dropped or tagged
  // discard-eligible before they reach the output queue.
  if (entry->upc != Upc::kNone) {
    if (entry->upc == Upc::kTrTcm) {
      // trTCM: green passes, yellow is tagged discard-eligible (the
      // policed_tag book keeps WRED's clp1-band reconciliation intact),
      // red dies here (counted as a policed drop so the receive-stage
      // conservation identity is unchanged).
      metered_.add();
      switch (meters_.find(in_label).value->color(sim_.now())) {
        case atm::MeterColor::kGreen:
          meter_green_.add();
          break;
        case atm::MeterColor::kYellow:
          meter_yellow_.add();
          policed_tag_.add();
          h.clp = true;
          break;
        case atm::MeterColor::kRed:
          meter_red_.add();
          policed_drop_.add();
          return;
      }
    } else if (!entry->police.police(sim_.now())) {
      if (entry->upc == Upc::kGcraDrop) {
        policed_drop_.add();
        return;
      }
      policed_tag_.add();
      h.clp = true;
    }
  }

  // From here the cell is in the output queue stage; every path below
  // must land in exactly one of {forwarded, overflow, clp, epd, ppd,
  // wred} or stay resident — audit_switch balances these books.
  queue_offered_.add();
  OutputPort& out = outputs_[entry->out_port];
  if (config_.abr.enabled) abr_account(*entry, out);

  // Frame-aware discard (EPD/PPD) for AAL5 traffic. Control cells
  // (OAM/RM, PTI 0b1xx) are not user data: they skip frame logic, WRED,
  // the CLP threshold and EFCI below — the congestion-control signal
  // must not be shed or mutated by the congestion it measures.
  const bool user_data = atm::pti_is_user_data(h.pti);
  const bool last_of_pdu = atm::pti_auu(h.pti);
  // Per-VC buffer accounting needs per-VC queues, so kFifo ignores it.
  const bool per_vc_books =
      config_.scheduler != SwitchScheduler::kFifo &&
      (config_.vc_epd_cells > 0 || config_.vc_queue_cells > 0);
  const auto vc_resident = [&]() -> std::size_t {
    const VcQueue* vq = out.queues.find(atm::vc_label(entry->out_vc)).value;
    return vq != nullptr ? vq->cells.size() : 0;
  };
  const bool frame_aware =
      (config_.epd_threshold > 0 ||
       (per_vc_books && config_.vc_epd_cells > 0)) &&
      user_data;
  bool fresh_pdu = false;  // this cell opens a new PDU on a frame-aware VC
  if (frame_aware) {
    FrameState& fs = entry->frame;
    if (fs.discard == FrameState::Discard::kWholePdu) {
      // EPD in progress: consume everything through the final cell.
      epd_drop_.add();
      if (last_of_pdu) {
        fs.discard = FrameState::Discard::kNone;
        fs.mid_pdu = false;
      }
      return;
    }
    if (fs.discard == FrameState::Discard::kTail) {
      // PPD: the PDU is already damaged; drop the useless remainder but
      // let the final cell through so the receiver terminates the frame
      // instead of splicing it into the next one.
      if (!last_of_pdu) {
        ppd_drop_.add();
        return;
      }
      fs.discard = FrameState::Discard::kNone;
      fs.mid_pdu = false;
      // fall through: the final cell is forwarded (queue permitting)
    } else if (!fs.mid_pdu) {
      // First cell of a fresh PDU: admit whole PDUs only while the
      // pool is below the EPD threshold and, with per-VC accounting
      // on, while this VC's own queue is below its gate.
      const bool pool_gate = config_.epd_threshold > 0 &&
                             out.occupancy >= config_.epd_threshold;
      const bool vc_gate = per_vc_books && config_.vc_epd_cells > 0 &&
                           vc_resident() >= config_.vc_epd_cells;
      if (pool_gate || vc_gate) {
        epd_drop_.add();
        epd_pdus_.add();
        if (!last_of_pdu) {
          fs.discard = FrameState::Discard::kWholePdu;
          fs.mid_pdu = true;
        }
        return;
      }
      fresh_pdu = true;
      fs.mid_pdu = true;
    }
    if (last_of_pdu) fs.mid_pdu = false;
  }

  // Color-aware random early discard. Tagged cells are tried per cell
  // (their lower band is what makes UPC's kTag consequential); untagged
  // frame-aware traffic is tried once per PDU, at its first cell, so a
  // WRED verdict sheds a whole frame via the EPD machinery instead of
  // sprinkling mid-PDU losses.
  if (config_.wred.enabled && user_data &&
      (h.clp || !frame_aware || fresh_pdu) &&
      wred_decides_drop(out.occupancy, h.clp)) {
    wred_drop_.add();
    if (h.clp) wred_drop_clp_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchWredDrop,
                     trace_source_, static_cast<std::uint32_t>(entry->out_port),
                     h.clp ? 1u : 0u, cell.meta.seq});
    }
    if (frame_aware && !last_of_pdu) {
      // Extend the verdict over the rest of the frame: a dropped first
      // cell kills the whole PDU; a dropped tagged mid-PDU cell leaves
      // a damaged frame whose remainder is useless (PPD).
      entry->frame.discard = fresh_pdu ? FrameState::Discard::kWholePdu
                                       : FrameState::Discard::kTail;
      entry->frame.mid_pdu = true;
    }
    return;
  }

  // Hard per-VC residency cap: one connection's backlog cannot claim
  // pool space beyond its configured share. Mid-PDU overruns on a
  // frame-aware VC shed the damaged remainder via PPD, like any other
  // mid-frame loss.
  if (user_data && per_vc_books && config_.vc_queue_cells > 0 &&
      vc_resident() >= config_.vc_queue_cells) {
    vc_limit_drop_.add();
    if (frame_aware && !last_of_pdu) {
      entry->frame.discard = FrameState::Discard::kTail;
      entry->frame.mid_pdu = true;
    }
    return;
  }

  // Control cells may draw on a reserved headroom above the shared
  // pool: with the pool saturated, a tail-dropped backward RM cell
  // would stall the very throttling that could drain the queue.
  const std::size_t pool_limit =
      user_data ? config_.queue_cells
                : config_.queue_cells + config_.control_reserve_cells;
  if (out.occupancy >= pool_limit) {
    // Shared pool exhausted: tail drop (and, mid-PDU on a frame-aware
    // VC, shed the PDU's remainder too).
    dropped_.add();
    if (frame_aware && !last_of_pdu) {
      entry->frame.discard = FrameState::Discard::kTail;
      entry->frame.mid_pdu = true;
    }
    return;
  }
  if (user_data && h.clp && out.occupancy >= config_.clp_threshold) {
    clp_dropped_.add();
    return;
  }

  // Survivor. Mark EFCI once the pool is past the congestion threshold
  // — the forward signal the endpoints' closed loop feeds on.
  if (config_.efci_threshold > 0 && user_data &&
      out.occupancy >= config_.efci_threshold) {
    h.pti = atm::pti_with_efci(h.pti);
    efci_marked_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchEfciMark,
                     trace_source_, static_cast<std::uint32_t>(entry->out_port),
                     atm::vc_label(entry->out_vc), cell.meta.seq});
    }
  }

  // Translate the VC and restamp the HEC.
  h.vc = entry->out_vc;
  atm::encode_header(h, atm::HeaderFormat::kUni,
                     std::span<std::uint8_t, 4>(cell.bytes.data(), 4));
  cell.bytes[4] = atm::hec_compute(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));

  const std::size_t out_port = entry->out_port;
  if (config_.scheduler == SwitchScheduler::kFifo) {
    out.fifo.push_back(std::move(cell));
  } else {
    auto [vq, inserted] =
        out.queues.try_emplace(atm::vc_label(entry->out_vc));
    vq->weight = entry->weight;  // follow route reprogramming live
    if (vq->cells.empty()) out.order.push_back(vq);  // now active
    vq->cells.push_back(std::move(cell));
  }
  ++out.occupancy;
  out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
  if (!out.serving) serve(out_port);
}

void Switch::serve(std::size_t out_port) {
  OutputPort& out = outputs_[out_port];
  if (out.occupancy == 0) {
    out.serving = false;
    return;
  }
  out.serving = true;
  WireCell cell;
  if (config_.scheduler == SwitchScheduler::kFifo) {
    cell = std::move(out.fifo.front());
    out.fifo.pop_front();
  } else if (config_.scheduler == SwitchScheduler::kRoundRobin) {
    VcQueue* vq = out.order.front();
    out.order.pop_front();
    cell = std::move(vq->cells.front());
    vq->cells.pop_front();
    if (!vq->cells.empty()) {
      out.order.push_back(vq);  // still active: back of the ring
    }
  } else {
    // DWRR: the head queue holds the token until its grant (deficit,
    // refilled to `weight` on reaching the head) is spent or it runs
    // out of cells; weights therefore set the per-round service ratio.
    VcQueue* vq = out.order.front();
    if (vq->deficit == 0) vq->deficit = std::max<std::uint32_t>(vq->weight, 1);
    cell = std::move(vq->cells.front());
    vq->cells.pop_front();
    --vq->deficit;
    if (vq->cells.empty()) {
      out.order.pop_front();  // drained: leave the ring, forfeit grant
      vq->deficit = 0;
    } else if (vq->deficit == 0) {
      out.order.pop_front();  // grant spent: rotate to the ring's back
      out.order.push_back(vq);
    }
  }
  --out.occupancy;
  out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
  // The cell is committed to its output slot here, so count it now:
  // the queue-stage books (offered == forwarded + drops + resident)
  // then balance at any instant, not only at quiescence.
  forwarded_.add();
  ++forwarded_on_[out_port];
  sim_.after(slot_, [this, out_port, cell = std::move(cell)]() mutable {
    OutputPort& out = outputs_[out_port];
    if (out.link != nullptr) out.link->send_wire(std::move(cell));
    serve(out_port);
  });
}

void Switch::abr_account(const VcEntry& entry, OutputPort& out) {
  AbrMeasure& m = out.abr;
  const sim::Time now = sim_.now();
  ++m.total_cells;
  if (entry.abr) {
    ++m.abr_cells;
    auto [count, inserted] = m.per_vc.try_emplace(atm::vc_label(entry.out_vc));
    ++*count;
  }
  if (now - m.window_start < config_.abr.interval) return;

  // Close the window: turn raw counts into the rate snapshot that
  // backward RM stamping reads until the next window completes.
  const double secs = sim::to_seconds(now - m.window_start);
  const double total_rate = static_cast<double>(m.total_cells) / secs;
  const double abr_rate = static_cast<double>(m.abr_cells) / secs;
  const double target = config_.abr.target_utilization * port_cells_per_s_;
  // Capacity left for the elastic class after the inelastic load, with
  // a small floor so a fully CBR/VBR-loaded port still grants ABR a
  // trickle to probe with instead of an ER of zero.
  m.abr_capacity = std::max(target - (total_rate - abr_rate), 0.01 * target);
  m.load_factor = abr_rate / m.abr_capacity;
  m.fair_share =
      m.abr_capacity / static_cast<double>(std::max<std::size_t>(
                           m.per_vc.size(), 1));
  m.vc_rate.clear();
  m.per_vc.for_each([&](std::uint32_t label, std::uint64_t& count) {
    auto [rate, inserted] = m.vc_rate.try_emplace(label);
    *rate = static_cast<double>(count) / secs;
  });
  m.per_vc.clear();
  m.valid = true;
  m.window_start = now;
  m.total_cells = 0;
  m.abr_cells = 0;
}

double Switch::compute_er(std::size_t out_port, std::uint32_t label) const {
  // ERICA: ER = min(max(fair_share, vc_rate / load_factor), capacity).
  // The vc_rate/z term lets an underloaded port raise everyone toward
  // full use; the fair-share floor lets a starved (or new) VC climb to
  // its max-min share regardless of its current measured rate.
  const AbrMeasure& m = outputs_[out_port].abr;
  if (!m.valid) return static_cast<double>(atm::kRmErUnlimited);
  const double* vcr = m.vc_rate.find(label).value;
  const double current = vcr != nullptr ? *vcr : 0.0;
  const double share =
      m.load_factor > 1e-12 ? current / m.load_factor : m.fair_share;
  return std::min(std::max(m.fair_share, share), m.abr_capacity);
}

void Switch::stamp_backward_rm(std::size_t in_port, const atm::CellHeader& h,
                               WireCell& cell) {
  std::uint8_t* payload = cell.bytes.data() + 5;
  if (!atm::rm_is_protocol(payload)) return;
  if ((atm::rm_flags(payload) & atm::kRmFlagBackward) == 0) return;
  // The forward data of this connection *leaves* on the port the
  // backward RM cell *enters* (the RM cell rides the reverse route), so
  // in_port's measurements — keyed by the forward out-VC label, which
  // is this cell's incoming VC — are the ones that apply.
  const double er = compute_er(in_port, atm::vc_label(h.vc));
  const std::uint32_t granted =
      er >= static_cast<double>(atm::kRmErUnlimited)
          ? atm::kRmErUnlimited
          : static_cast<std::uint32_t>(er);
  if (granted < atm::rm_explicit_rate(payload)) {
    atm::rm_set_explicit_rate(payload, granted);
    er_stamped_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchErStamp,
                     trace_source_, static_cast<std::uint32_t>(in_port),
                     granted, cell.meta.seq});
    }
  }
}

std::size_t Switch::cells_queued() const {
  std::size_t total = 0;
  for (const OutputPort& out : outputs_) total += out.occupancy;
  return total;
}

double Switch::mean_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.mean(sim_.now());
}

double Switch::max_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.max();
}

}  // namespace hni::net
