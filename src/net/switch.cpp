#include "net/switch.hpp"

#include <stdexcept>

namespace hni::net {

Switch::Switch(sim::Simulator& sim, SwitchConfig config)
    : sim_(sim), config_(config), outputs_(config.ports),
      hec_(config.ports), wred_rng_(config.wred.seed) {
  if (config_.ports == 0 || config_.queue_cells == 0) {
    throw std::invalid_argument("Switch: ports and queue must be nonzero");
  }
  if (config_.clp_threshold > config_.queue_cells) {
    config_.clp_threshold = config_.queue_cells;
  }
  slot_ = config_.port_rate.cell_slot();
  if (config_.clock_ppm) {
    slot_ = static_cast<sim::Time>(static_cast<double>(slot_) *
                                       (1.0 + *config_.clock_ppm * 1e-6) +
                                   0.5);
  }
}

std::uint32_t Switch::route_label(std::size_t port, atm::VcId vc) {
  if (port > 0xFF) throw std::out_of_range("Switch: port exceeds label");
  if (vc.vpi > atm::kMaxUniVpi) {
    throw std::out_of_range("Switch: VPI exceeds UNI label width");
  }
  return (static_cast<std::uint32_t>(port) << 24) |
         (static_cast<std::uint32_t>(vc.vpi) << 16) |
         static_cast<std::uint32_t>(vc.vci);
}

void Switch::add_route(std::size_t in_port, atm::VcId vc,
                       std::size_t out_port, atm::VcId out_vc) {
  if (in_port >= config_.ports || out_port >= config_.ports) {
    throw std::out_of_range("Switch: port index");
  }
  auto [entry, inserted] = vcs_.try_emplace(route_label(in_port, vc));
  if (!entry->has_route) ++route_count_;
  entry->has_route = true;
  entry->out_port = static_cast<std::uint32_t>(out_port);
  entry->out_vc = out_vc;
  entry->frame = FrameState{};
}

void Switch::add_policer(std::size_t in_port, atm::VcId vc,
                         double pcr_cells_per_second, sim::Time cdvt,
                         PoliceAction action) {
  if (in_port >= config_.ports) throw std::out_of_range("Switch: port");
  auto [entry, inserted] = vcs_.try_emplace(route_label(in_port, vc));
  entry->has_policer = true;
  entry->police = atm::Gcra::for_pcr(pcr_cells_per_second, cdvt);
  entry->police_action = action;
}

bool Switch::remove_route(std::size_t in_port, atm::VcId vc) {
  // The whole record — route, policer, frame-discard state — dies with
  // the connection (keeping frame state alive for a removed route was a
  // slow leak: nothing could ever clear it again).
  const std::uint32_t label = route_label(in_port, vc);
  const auto found = vcs_.find(label);
  if (found.value == nullptr) return false;
  const bool had_route = found.value->has_route;
  vcs_.erase(label);
  if (had_route) --route_count_;
  return had_route;
}

void Switch::attach_output(std::size_t out_port, Link& link) {
  outputs_.at(out_port).link = &link;
}

bool Switch::wred_decides_drop(std::size_t occupancy, bool tagged) {
  const WredConfig& w = config_.wred;
  const std::size_t lo = tagged ? w.clp1_min_cells : w.min_cells;
  const std::size_t hi = tagged ? w.clp1_max_cells : w.max_cells;
  if (hi == 0 || occupancy < lo) return false;   // band disabled or idle
  if (occupancy >= hi) return true;              // past the band: shed
  const double max_p = tagged ? w.clp1_max_p : w.max_p;
  const double p = max_p * static_cast<double>(occupancy - lo) /
                   static_cast<double>(hi - lo);
  return wred_rng_.chance(p);
}

void Switch::receive(std::size_t in_port, const WireCell& wire) {
  received_.add();
  // Validate/correct the header before trusting the VCI.
  WireCell cell = wire;
  auto header = std::span<std::uint8_t, 4>(cell.bytes.data(), 4);
  const auto verdict = hec_.at(in_port).push(header, cell.bytes[4]);
  if (verdict == atm::HecVerdict::kDiscard) {
    hec_discard_.add();
    return;
  }
  if (verdict == atm::HecVerdict::kCorrected) {
    // Re-stamp the HEC so downstream hops see a consistent codeword.
    cell.bytes[4] = atm::hec_compute(
        std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));
  }

  atm::CellHeader h = atm::decode_header(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4),
      atm::HeaderFormat::kUni);
  // One probe fetches the whole per-VC record: route, policer and
  // frame-discard state live in the same pooled entry.
  VcEntry* entry = vcs_.find(route_label(in_port, h.vc)).value;
  if (entry == nullptr || !entry->has_route) {
    unroutable_.add();
    return;
  }

  // Usage parameter control: non-conforming cells are dropped or tagged
  // discard-eligible before they reach the output queue.
  if (entry->has_policer && !entry->police.police(sim_.now())) {
    if (entry->police_action == PoliceAction::kDrop) {
      policed_drop_.add();
      return;
    }
    policed_tag_.add();
    h.clp = true;
  }

  // From here the cell is in the output queue stage; every path below
  // must land in exactly one of {forwarded, overflow, clp, epd, ppd,
  // wred} or stay resident — audit_switch balances these books.
  queue_offered_.add();
  OutputPort& out = outputs_[entry->out_port];

  // Frame-aware discard (EPD/PPD) for AAL5 traffic.
  const bool user_data = atm::pti_is_user_data(h.pti);
  const bool last_of_pdu = atm::pti_auu(h.pti);
  const bool frame_aware = config_.epd_threshold > 0 && user_data;
  bool fresh_pdu = false;  // this cell opens a new PDU on a frame-aware VC
  if (frame_aware) {
    FrameState& fs = entry->frame;
    if (fs.discard == FrameState::Discard::kWholePdu) {
      // EPD in progress: consume everything through the final cell.
      epd_drop_.add();
      if (last_of_pdu) {
        fs.discard = FrameState::Discard::kNone;
        fs.mid_pdu = false;
      }
      return;
    }
    if (fs.discard == FrameState::Discard::kTail) {
      // PPD: the PDU is already damaged; drop the useless remainder but
      // let the final cell through so the receiver terminates the frame
      // instead of splicing it into the next one.
      if (!last_of_pdu) {
        ppd_drop_.add();
        return;
      }
      fs.discard = FrameState::Discard::kNone;
      fs.mid_pdu = false;
      // fall through: the final cell is forwarded (queue permitting)
    } else if (!fs.mid_pdu) {
      // First cell of a fresh PDU: admit whole PDUs only while the
      // pool is below the EPD threshold.
      if (out.occupancy >= config_.epd_threshold) {
        epd_drop_.add();
        epd_pdus_.add();
        if (!last_of_pdu) {
          fs.discard = FrameState::Discard::kWholePdu;
          fs.mid_pdu = true;
        }
        return;
      }
      fresh_pdu = true;
      fs.mid_pdu = true;
    }
    if (last_of_pdu) fs.mid_pdu = false;
  }

  // Color-aware random early discard. Tagged cells are tried per cell
  // (their lower band is what makes UPC's kTag consequential); untagged
  // frame-aware traffic is tried once per PDU, at its first cell, so a
  // WRED verdict sheds a whole frame via the EPD machinery instead of
  // sprinkling mid-PDU losses.
  if (config_.wred.enabled && user_data &&
      (h.clp || !frame_aware || fresh_pdu) &&
      wred_decides_drop(out.occupancy, h.clp)) {
    wred_drop_.add();
    if (h.clp) wred_drop_clp_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchWredDrop,
                     trace_source_, static_cast<std::uint32_t>(entry->out_port),
                     h.clp ? 1u : 0u, cell.meta.seq});
    }
    if (frame_aware && !last_of_pdu) {
      // Extend the verdict over the rest of the frame: a dropped first
      // cell kills the whole PDU; a dropped tagged mid-PDU cell leaves
      // a damaged frame whose remainder is useless (PPD).
      entry->frame.discard = fresh_pdu ? FrameState::Discard::kWholePdu
                                       : FrameState::Discard::kTail;
      entry->frame.mid_pdu = true;
    }
    return;
  }

  if (out.occupancy >= config_.queue_cells) {
    // Shared pool exhausted: tail drop (and, mid-PDU on a frame-aware
    // VC, shed the PDU's remainder too).
    dropped_.add();
    if (frame_aware && !last_of_pdu) {
      entry->frame.discard = FrameState::Discard::kTail;
      entry->frame.mid_pdu = true;
    }
    return;
  }
  if (h.clp && out.occupancy >= config_.clp_threshold) {
    clp_dropped_.add();
    return;
  }

  // Survivor. Mark EFCI once the pool is past the congestion threshold
  // — the forward signal the endpoints' closed loop feeds on.
  if (config_.efci_threshold > 0 && user_data &&
      out.occupancy >= config_.efci_threshold) {
    h.pti = atm::pti_with_efci(h.pti);
    efci_marked_.add();
    if (tracer_) {
      tracer_->emit({sim_.now(), sim::TraceEventId::kSwitchEfciMark,
                     trace_source_, static_cast<std::uint32_t>(entry->out_port),
                     atm::vc_label(entry->out_vc), cell.meta.seq});
    }
  }

  // Translate the VC and restamp the HEC.
  h.vc = entry->out_vc;
  atm::encode_header(h, atm::HeaderFormat::kUni,
                     std::span<std::uint8_t, 4>(cell.bytes.data(), 4));
  cell.bytes[4] = atm::hec_compute(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));

  const std::size_t out_port = entry->out_port;
  if (config_.scheduler == SwitchScheduler::kFifo) {
    out.fifo.push_back(std::move(cell));
  } else {
    auto [vq, inserted] =
        out.queues.try_emplace(atm::vc_label(entry->out_vc));
    if (vq->cells.empty()) out.order.push_back(vq);  // now active
    vq->cells.push_back(std::move(cell));
  }
  ++out.occupancy;
  out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
  if (!out.serving) serve(out_port);
}

void Switch::serve(std::size_t out_port) {
  OutputPort& out = outputs_[out_port];
  if (out.occupancy == 0) {
    out.serving = false;
    return;
  }
  out.serving = true;
  WireCell cell;
  if (config_.scheduler == SwitchScheduler::kFifo) {
    cell = std::move(out.fifo.front());
    out.fifo.pop_front();
  } else {
    VcQueue* vq = out.order.front();
    out.order.pop_front();
    cell = std::move(vq->cells.front());
    vq->cells.pop_front();
    if (!vq->cells.empty()) {
      out.order.push_back(vq);  // still active: back of the ring
    }
  }
  --out.occupancy;
  out.depth.set(sim_.now(), static_cast<double>(out.occupancy));
  // The cell is committed to its output slot here, so count it now:
  // the queue-stage books (offered == forwarded + drops + resident)
  // then balance at any instant, not only at quiescence.
  forwarded_.add();
  sim_.after(slot_, [this, out_port, cell = std::move(cell)]() mutable {
    OutputPort& out = outputs_[out_port];
    if (out.link != nullptr) out.link->send_wire(std::move(cell));
    serve(out_port);
  });
}

std::size_t Switch::cells_queued() const {
  std::size_t total = 0;
  for (const OutputPort& out : outputs_) total += out.occupancy;
  return total;
}

double Switch::mean_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.mean(sim_.now());
}

double Switch::max_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.max();
}

}  // namespace hni::net
