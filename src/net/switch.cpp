#include "net/switch.hpp"

#include <stdexcept>

namespace hni::net {

Switch::Switch(sim::Simulator& sim, SwitchConfig config)
    : sim_(sim), config_(config), outputs_(config.ports),
      hec_(config.ports) {
  if (config_.ports == 0 || config_.queue_cells == 0) {
    throw std::invalid_argument("Switch: ports and queue must be nonzero");
  }
  if (config_.clp_threshold > config_.queue_cells) {
    config_.clp_threshold = config_.queue_cells;
  }
}

void Switch::add_route(std::size_t in_port, atm::VcId vc,
                       std::size_t out_port, atm::VcId out_vc) {
  if (in_port >= config_.ports || out_port >= config_.ports) {
    throw std::out_of_range("Switch: port index");
  }
  routes_[RouteKey{in_port, vc}] = Route{out_port, out_vc};
}

void Switch::add_policer(std::size_t in_port, atm::VcId vc,
                         double pcr_cells_per_second, sim::Time cdvt,
                         PoliceAction action) {
  if (in_port >= config_.ports) throw std::out_of_range("Switch: port");
  policers_.insert_or_assign(
      RouteKey{in_port, vc},
      Policer{atm::Gcra::for_pcr(pcr_cells_per_second, cdvt), action});
}

bool Switch::remove_route(std::size_t in_port, atm::VcId vc) {
  policers_.erase(RouteKey{in_port, vc});
  return routes_.erase(RouteKey{in_port, vc}) > 0;
}

void Switch::attach_output(std::size_t out_port, Link& link) {
  outputs_.at(out_port).link = &link;
}

void Switch::receive(std::size_t in_port, const WireCell& wire) {
  // Validate/correct the header before trusting the VCI.
  WireCell cell = wire;
  auto header = std::span<std::uint8_t, 4>(cell.bytes.data(), 4);
  const auto verdict = hec_.at(in_port).push(header, cell.bytes[4]);
  if (verdict == atm::HecVerdict::kDiscard) {
    hec_discard_.add();
    return;
  }
  if (verdict == atm::HecVerdict::kCorrected) {
    // Re-stamp the HEC so downstream hops see a consistent codeword.
    cell.bytes[4] = atm::hec_compute(
        std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));
  }

  atm::CellHeader h = atm::decode_header(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4),
      atm::HeaderFormat::kUni);
  const auto it = routes_.find(RouteKey{in_port, h.vc});
  if (it == routes_.end()) {
    unroutable_.add();
    return;
  }

  // Usage parameter control: non-conforming cells are dropped or tagged
  // discard-eligible before they reach the output queue.
  if (auto pit = policers_.find(RouteKey{in_port, h.vc});
      pit != policers_.end()) {
    if (!pit->second.gcra.police(sim_.now())) {
      if (pit->second.action == PoliceAction::kDrop) {
        policed_drop_.add();
        return;
      }
      policed_tag_.add();
      h.clp = true;
    }
  }

  OutputPort& out = outputs_[it->second.out_port];

  // Frame-aware discard (EPD/PPD) for AAL5 traffic.
  const bool user_data = atm::pti_is_user_data(h.pti);
  const bool last_of_pdu = atm::pti_auu(h.pti);
  if (config_.epd_threshold > 0 && user_data) {
    FrameState& fs = frames_[RouteKey{in_port, h.vc}];
    if (fs.discard == FrameState::Discard::kWholePdu) {
      // EPD in progress: consume everything through the final cell.
      epd_drop_.add();
      if (last_of_pdu) {
        fs.discard = FrameState::Discard::kNone;
        fs.mid_pdu = false;
      }
      return;
    }
    if (fs.discard == FrameState::Discard::kTail) {
      // PPD: the PDU is already damaged; drop the useless remainder but
      // let the final cell through so the receiver terminates the frame
      // instead of splicing it into the next one.
      if (!last_of_pdu) {
        ppd_drop_.add();
        return;
      }
      fs.discard = FrameState::Discard::kNone;
      fs.mid_pdu = false;
      // fall through: the final cell is forwarded (queue permitting)
    } else if (!fs.mid_pdu) {
      // First cell of a fresh PDU: admit whole PDUs only while the
      // queue is below the EPD threshold.
      if (out.queue.size() >= config_.epd_threshold) {
        epd_drop_.add();
        epd_pdus_.add();
        if (!last_of_pdu) {
          fs.discard = FrameState::Discard::kWholePdu;
          fs.mid_pdu = true;
        }
        return;
      }
      fs.mid_pdu = true;
    }
    if (last_of_pdu) fs.mid_pdu = false;

    if (out.queue.size() >= config_.queue_cells) {
      // Overflow mid-PDU despite EPD: shed this cell and the PDU's
      // remainder (PPD).
      dropped_.add();
      if (!last_of_pdu) {
        fs.discard = FrameState::Discard::kTail;
        fs.mid_pdu = true;
      }
      return;
    }
  } else if (out.queue.size() >= config_.queue_cells) {
    dropped_.add();
    return;
  }
  if (h.clp && out.queue.size() >= config_.clp_threshold) {
    clp_dropped_.add();
    return;
  }

  // Translate the VC and restamp the HEC.
  h.vc = it->second.out_vc;
  atm::encode_header(h, atm::HeaderFormat::kUni,
                     std::span<std::uint8_t, 4>(cell.bytes.data(), 4));
  cell.bytes[4] = atm::hec_compute(
      std::span<const std::uint8_t, 4>(cell.bytes.data(), 4));

  out.queue.push_back(std::move(cell));
  out.depth.set(sim_.now(), static_cast<double>(out.queue.size()));
  if (!out.serving) serve(it->second.out_port);
}

void Switch::serve(std::size_t out_port) {
  OutputPort& out = outputs_[out_port];
  if (out.queue.empty()) {
    out.serving = false;
    return;
  }
  out.serving = true;
  WireCell cell = std::move(out.queue.front());
  out.queue.pop_front();
  out.depth.set(sim_.now(), static_cast<double>(out.queue.size()));
  sim::Time slot = config_.port_rate.cell_slot();
  if (config_.clock_ppm) {
    slot = static_cast<sim::Time>(static_cast<double>(slot) *
                                      (1.0 + *config_.clock_ppm * 1e-6) +
                                  0.5);
  }
  sim_.after(slot, [this, out_port, cell = std::move(cell)]() mutable {
    OutputPort& out = outputs_[out_port];
    forwarded_.add();
    if (out.link != nullptr) out.link->send_wire(std::move(cell));
    serve(out_port);
  });
}

double Switch::mean_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.mean(sim_.now());
}

double Switch::max_queue_depth(std::size_t out_port) const {
  return outputs_.at(out_port).depth.max();
}

}  // namespace hni::net
