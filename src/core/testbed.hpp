// Scenario builder: stations, links, switches, and the simulation clock
// in one place. The library's top-level public API.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::Testbed bed;
//   auto& a = bed.add_station({.name = "alice"});
//   auto& b = bed.add_station({.name = "bob"});
//   bed.connect(a, b, net::LossModel{});           // duplex, both NICs wired
//   a.nic().open_vc(vc, aal::AalType::kAal5);      // rx side of a
//   b.nic().open_vc(vc, aal::AalType::kAal5);
//   b.host().set_rx_handler(...);
//   a.host().send(vc, aal::AalType::kAal5, payload);
//   bed.run_for(sim::milliseconds(5));

#pragma once

#include <memory>
#include <vector>

#include "core/audit.hpp"
#include "core/station.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"
#include "sim/random.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/simulator.hpp"

namespace hni::core {

class Testbed {
 public:
  Testbed() = default;

  /// Teardown runs the station-level invariant audit and warns on
  /// stderr if any conservation identity is broken — a leak anywhere
  /// in a scenario surfaces even when no test asked.
  ~Testbed();

  sim::Simulator& sim() { return sim_; }
  sim::Time now() const { return sim_.now(); }

  /// Shared tracer: add a sink (or enable the ring) to see per-cell
  /// wire events from every link the testbed creates (off — one branch
  /// per emit, zero allocations — until armed).
  sim::Tracer& tracer() { return tracer_; }

  /// The system-wide metrics registry. Everything the testbed creates
  /// registers itself: stations under "station.<i>.<name>", links under
  /// "link.<i>", switches under "switch.<i>". Snapshot or to_json() it
  /// to enumerate every instrument in the scenario.
  sim::MetricsRegistry& metrics() { return metrics_; }
  const sim::MetricsRegistry& metrics() const { return metrics_; }

  /// Creates a station owned by the testbed.
  Station& add_station(StationConfig config = {});

  /// Creates a free-standing link owned by the testbed.
  net::Link& add_link(sim::Time propagation, net::LossModel loss = {},
                      std::uint64_t seed = 1);

  /// Full-duplex connection a<->b: wires a's framer to a fresh link
  /// into b's receive path and vice versa; starts both framers.
  /// Returns {a->b, b->a}.
  std::pair<net::Link*, net::Link*> connect(
      Station& a, Station& b, net::LossModel loss = {},
      sim::Time propagation = sim::microseconds(5));

  /// Creates a switch owned by the testbed.
  net::Switch& add_switch(net::SwitchConfig config);

  /// Wires `s`'s transmit side into switch input `port`.
  void connect_to_switch(Station& s, net::Switch& sw, std::size_t port,
                         net::LossModel loss = {},
                         sim::Time propagation = sim::microseconds(5));

  /// Wires switch output `port` into `s`'s receive path.
  void connect_from_switch(net::Switch& sw, std::size_t port, Station& s,
                           net::LossModel loss = {},
                           sim::Time propagation = sim::microseconds(5));

  /// Wires a full-duplex inter-switch trunk: a's output `port_a` feeds
  /// b's input `port_b` and vice versa. Each switch registers the
  /// incoming link as that port's loss-of-signal source, so a trunk
  /// failure triggers downstream AIS insertion (Switch::set_input_link).
  /// Returns {a->b, b->a}.
  std::pair<net::Link*, net::Link*> connect_trunk(
      net::Switch& a, std::size_t port_a, net::Switch& b, std::size_t port_b,
      net::LossModel loss = {}, sim::Time propagation = sim::microseconds(5));

  /// Advances simulated time by `duration`.
  void run_for(sim::Time duration) { sim_.run_until(sim_.now() + duration); }

  /// Runs the invariant auditor over every station; with
  /// `include_hops`, also audits each connect()ed wire hop (only valid
  /// once the event queue has run dry — cells in flight are on
  /// nobody's books).
  InvariantAuditor audit(bool include_hops = false);

 private:
  struct Hop {
    Station* tx;
    net::Link* link;
    Station* rx;
  };
  // Recorded fabric wiring, one struct per simplex hop kind — the audit
  // sweeps these to run per-hop conservation on every switch of a
  // multi-hop path, not just the station-to-station case.
  struct IngressHop {
    Station* tx;
    net::Link* link;
    net::Switch* sw;
    std::size_t port;
  };
  struct EgressHop {
    net::Switch* sw;
    std::size_t port;
    net::Link* link;
    Station* rx;
  };
  struct TrunkHop {
    net::Switch* tx;
    std::size_t tx_port;
    net::Link* link;
    net::Switch* rx;
    std::size_t rx_port;
  };

  std::string switch_label(const net::Switch* sw) const;
  void audit_path_conservation(InvariantAuditor& auditor) const;

  std::uint64_t next_seed() { return seed_counter_++; }

  sim::Simulator sim_;
  sim::Tracer tracer_;
  // Declared before the components that register into it: gauges hold
  // references into stations/links/switches, so those must die first
  // only if nobody snapshots afterwards — which ~Testbed guarantees by
  // auditing in its body, before any member is destroyed.
  sim::MetricsRegistry metrics_;
  sim::Rng ppm_rng_{0xC10C4};  // oscillator-offset source (deterministic)
  std::vector<std::unique_ptr<Station>> stations_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<std::unique_ptr<net::Switch>> switches_;
  std::vector<Hop> hops_;
  std::vector<IngressHop> ingress_hops_;
  std::vector<EgressHop> egress_hops_;
  std::vector<TrunkHop> trunk_hops_;
  std::uint64_t seed_counter_ = 0x5EED;
};

}  // namespace hni::core
