// Text-table reporting for benches and examples.
//
// Every bench regenerates a paper-style table or figure series; this
// formatter keeps their output consistent and aligned.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/station.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/telemetry/profiler.hpp"

namespace hni::core {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `digits` significant decimals.
  static std::string num(double value, int digits = 2);
  static std::string integer(std::uint64_t value);
  static std::string percent(double fraction, int digits = 1);

  /// Renders with a title and column alignment to stdout.
  void print(const std::string& title) const;
  std::string to_string(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// The standard fault & recovery accounting for one station: DMA
/// retry/backoff behaviour, bus hold-offs, watchdog resets, abort
/// accounting and OAM alarm traffic. Benches print this next to their
/// performance tables when a run involved fault injection.
Table fault_recovery_table(Station& s);

/// Every instrument in `registry` as an aligned (name, kind, value)
/// table, in snapshot (sorted-by-name) order — byte-identical across
/// identical runs. Pass a `prefix` to restrict to one subtree.
Table metrics_table(const sim::MetricsRegistry& registry,
                    const std::string& prefix = "");

/// The paper-style per-phase cycle-budget table of one engine: items,
/// cycles/item, us/item, total cycles, and each phase's share of the
/// attributed time.
Table cycle_budget_table(const sim::CycleProfiler& profiler);

}  // namespace hni::core
