#include "core/station.hpp"

namespace hni::core {

Station::Station(sim::Simulator& sim, StationConfig config)
    : config_(std::move(config)),
      sim_(sim),
      bus_(sim, config_.bus),
      memory_(config_.host_memory_bytes, config_.host_page_bytes),
      nic_(sim, bus_, memory_, config_.nic),
      host_(sim, memory_, nic_, config_.host) {}

}  // namespace hni::core
