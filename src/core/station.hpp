// A workstation: host bus + host memory + the ATM interface + the host
// CPU/driver, assembled and wired.
//
// This is the unit of the paper's design: everything from the
// TURBOchannel connector to the SONET plug. Scenarios (core::Testbed)
// instantiate stations and connect them with links and switches.

#pragma once

#include <memory>
#include <string>

#include "bus/host_memory.hpp"
#include "bus/turbochannel.hpp"
#include "host/host.hpp"
#include "nic/nic.hpp"
#include "sim/simulator.hpp"

namespace hni::core {

struct StationConfig {
  std::string name = "station";
  bus::BusConfig bus{};
  std::size_t host_memory_bytes = 16u << 20;  // 16 MiB
  std::size_t host_page_bytes = 4096;
  nic::NicConfig nic{};
  host::HostConfig host{};
};

class Station {
 public:
  Station(sim::Simulator& sim, StationConfig config);

  const std::string& name() const { return config_.name; }
  sim::Simulator& sim() { return sim_; }
  bus::Bus& bus() { return bus_; }
  bus::HostMemory& memory() { return memory_; }
  nic::Nic& nic() { return nic_; }
  host::Host& host() { return host_; }
  const StationConfig& config() const { return config_; }

  /// Surfaces the whole station — bus + NIC (both paths, per-VC) —
  /// under `scope`.
  void register_metrics(const sim::MetricScope& scope) {
    bus_.register_metrics(scope.sub("bus"));
    nic_.register_metrics(scope.sub("nic"));
  }

 private:
  StationConfig config_;
  sim::Simulator& sim_;
  bus::Bus bus_;
  bus::HostMemory memory_;
  nic::Nic nic_;
  host::Host host_;
};

}  // namespace hni::core
