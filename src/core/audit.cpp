#include "core/audit.hpp"

namespace hni::core {

void InvariantAuditor::expect_eq(std::uint64_t lhs, std::uint64_t rhs,
                                 const std::string& check,
                                 const std::string& detail) {
  ++checks_;
  if (lhs == rhs) return;
  violations_.push_back(
      {check, detail + " (" + std::to_string(lhs) +
                  " != " + std::to_string(rhs) + ")"});
}

void InvariantAuditor::expect_le(std::uint64_t lhs, std::uint64_t rhs,
                                 const std::string& check,
                                 const std::string& detail) {
  ++checks_;
  if (lhs <= rhs) return;
  violations_.push_back(
      {check, detail + " (" + std::to_string(lhs) + " > " +
                  std::to_string(rhs) + ")"});
}

void InvariantAuditor::audit_station(Station& s) {
  const std::string who = s.name() + ": ";
  nic::RxPath& rx = s.nic().rx();
  nic::TxPath& tx = s.nic().tx();

  // Board container pool: every allocation is matched by a release or
  // is still in use. Abort/timeout/reset paths all release through the
  // same books, so a leak shows up here no matter which path leaked.
  expect_eq(rx.board().allocated(),
            rx.board().released() + rx.board().containers_in_use(),
            "board-pool conservation",
            who + "allocated == released + in_use");

  // RX FIFO: everything offered was accepted or dropped; everything
  // accepted was removed or is still resident. Priority-lane (OAM)
  // drops are a separate book — a lost alarm must not hide inside the
  // data-loss count, and it must not unbalance the conservation either.
  expect_eq(rx.cells_received(),
            rx.cells_hec_discarded() + rx.fifo().pushes() +
                rx.fifo().drops() + rx.fifo().priority_drops(),
            "rx-fifo offered conservation",
            who + "received == hec_discarded + accepted + dropped + "
                  "priority_dropped");
  expect_eq(rx.fifo().pushes(), rx.fifo().pops() + rx.fifo().size(),
            "rx-fifo resident conservation",
            who + "accepted == removed + resident");

  // RX engine: the only two consumers of the FIFO are normal service
  // and the reset flush.
  expect_eq(rx.fifo().pops(), rx.cells_serviced() + rx.cells_flushed(),
            "rx-engine service conservation",
            who + "removed == serviced + flushed");

  // TX FIFO: every built cell was accepted by the FIFO or dropped at
  // its mouth (control cells through the priority lane); accepted cells
  // were handed to the framer or are queued.
  expect_eq(tx.cells_built(),
            tx.fifo().pushes() + tx.fifo().drops() +
                tx.fifo().priority_drops(),
            "tx-fifo offered conservation",
            who + "built == accepted + dropped + priority_dropped");
  expect_eq(tx.fifo().pushes(), tx.fifo().pops() + tx.fifo().size(),
            "tx-fifo resident conservation",
            who + "accepted == removed + resident");

  // OAM loopback books: every request sent either completed, was
  // abandoned when its VC closed, or is still outstanding. An entry
  // that survives its VC (the old tag-only table could not be swept)
  // unbalances this identity.
  expect_eq(s.nic().loopbacks_sent(),
            s.nic().loopbacks_completed() + s.nic().loopbacks_abandoned() +
                s.nic().loopbacks_outstanding(),
            "oam loopback conservation",
            who + "sent == completed + abandoned + outstanding");

  // RDI pause state is per *open* VC: close_vc clears the hold, so the
  // pending set can never outgrow the connections that exist.
  expect_le(s.nic().rdi_pending(), s.nic().open_vc_count(),
            "oam rdi-pending bound", who + "rdi_pending <= open VCs");

  // Continuity-check books: every declared loss-of-continuity alarm was
  // either cleared (by a later arrival, a superseding AIS, or stop_cc)
  // or still stands; and CC monitoring is per open VC.
  expect_eq(s.nic().cc_loss_declared(),
            s.nic().cc_loss_cleared() + s.nic().cc_loss_standing(),
            "oam cc alarm conservation",
            who + "loc declared == cleared + standing");
  expect_le(s.nic().cc_monitored(), s.nic().open_vc_count(),
            "oam cc monitored bound", who + "cc monitored <= open VCs");
}

void InvariantAuditor::audit_hop(Station& tx, const net::Link& link,
                                 Station& rx) {
  const std::string who = tx.name() + "->" + rx.name() + ": ";

  // The framer forwards every cell it pops straight onto the link.
  expect_eq(tx.nic().tx().fifo().pops(), link.cells_in(),
            "hop emission conservation",
            who + "framer pops == link cells in");

  // Cells the link accepted either died on it or arrived; the receive
  // count additionally includes alarm cells the RX PHY itself inserted
  // while the link was down.
  expect_eq(link.cells_in() - link.cells_lost() - link.cells_dropped_down()
                + rx.nic().ais_inserted(),
            rx.nic().rx().cells_received(),
            "hop delivery conservation",
            who + "sent - lost - down_dropped + ais == received");

  // Corruption accounting: the link applies its loss/down checks before
  // the bit flip, so every header-corrupted cell reaches the receiver;
  // and it flips at most one header bit per cell, so each such cell
  // must be either HEC-corrected or HEC-discarded — no third fate.
  expect_eq(rx.nic().rx().cells_hec_corrected() +
                rx.nic().rx().cells_hec_discarded(),
            link.cells_corrupted_header(),
            "hop corruption accounting",
            who + "hec_corrected + hec_discarded == header_corrupted");
}

void InvariantAuditor::audit_switch(const net::Switch& sw,
                                    const std::string& name) {
  const std::string who = name + ": ";

  // Receive stage: every cell that arrived was discarded by HEC, had no
  // route, died at the policer, or was offered to the queue stage —
  // which additionally holds the AIS cells the switch itself originated
  // for routes whose input link is down (they were never received).
  expect_eq(sw.cells_received() + sw.cells_ais_inserted(),
            sw.cells_hec_discarded() + sw.cells_unroutable() +
                sw.cells_policed_dropped() + sw.cells_queue_offered(),
            "switch receive conservation",
            who + "received + ais_inserted == hec + unroutable + policed "
                  "+ offered");

  // Queue stage: everything offered was forwarded, dropped by exactly
  // one discard mechanism, or is still resident in an output pool.
  expect_eq(sw.cells_queue_offered(),
            sw.cells_forwarded() + sw.cells_dropped_overflow() +
                sw.cells_dropped_vc_limit() + sw.cells_dropped_clp() +
                sw.cells_epd_dropped() + sw.cells_ppd_dropped() +
                sw.cells_wred_dropped() + sw.cells_queued(),
            "switch queue-stage conservation",
            who + "offered == forwarded + overflow + vc_limit + clp + "
                  "epd + ppd + wred + resident");

  // Color accounting: WRED's tagged-drop book is a subset of its total.
  expect_le(sw.cells_wred_dropped_clp(), sw.cells_wred_dropped(),
            "switch wred color bound", who + "wred_clp <= wred_total");

  // Meter color conservation: every cell a trTCM meter saw got exactly
  // one color.
  expect_eq(sw.cells_metered(),
            sw.cells_meter_green() + sw.cells_meter_yellow() +
                sw.cells_meter_red(),
            "switch meter color conservation",
            who + "metered == green + yellow + red");
  // Meter verdicts land in the UPC books: yellow tags, red drops.
  expect_le(sw.cells_meter_yellow(), sw.cells_policed_tagged(),
            "switch meter tag bound", who + "meter_yellow <= policed_tag");
  expect_le(sw.cells_meter_red(), sw.cells_policed_dropped(),
            "switch meter drop bound", who + "meter_red <= policed_drop");
  // Purged-on-close cells are a sub-book of the overflow drops they are
  // accounted under.
  expect_le(sw.cells_purged_on_close(), sw.cells_dropped_overflow(),
            "switch purge bound", who + "purged_on_close <= overflow");
}

void InvariantAuditor::audit_ingress_hop(Station& tx, const net::Link& link,
                                         const net::Switch& sw,
                                         std::size_t port,
                                         const std::string& sw_name) {
  const std::string who =
      tx.name() + "->" + sw_name + ".in" + std::to_string(port) + ": ";
  expect_eq(tx.nic().tx().fifo().pops(), link.cells_in(),
            "ingress-hop emission conservation",
            who + "framer pops == link cells in");
  expect_eq(link.cells_in() - link.cells_lost() - link.cells_dropped_down(),
            sw.cells_received_on(port),
            "ingress-hop delivery conservation",
            who + "sent - lost - down_dropped == switch received on port");
}

void InvariantAuditor::audit_trunk_hop(const net::Switch& tx,
                                       std::size_t tx_port,
                                       const net::Link& link,
                                       const net::Switch& rx,
                                       std::size_t rx_port,
                                       const std::string& tx_name,
                                       const std::string& rx_name) {
  const std::string who = tx_name + ".out" + std::to_string(tx_port) + "->" +
                          rx_name + ".in" + std::to_string(rx_port) + ": ";
  expect_eq(tx.cells_forwarded_on(tx_port), link.cells_in(),
            "trunk-hop emission conservation",
            who + "forwarded on port == link cells in");
  expect_eq(link.cells_in() - link.cells_lost() - link.cells_dropped_down(),
            rx.cells_received_on(rx_port),
            "trunk-hop delivery conservation",
            who + "sent - lost - down_dropped == received on port");
}

void InvariantAuditor::audit_egress_hop(const net::Switch& sw,
                                        std::size_t port,
                                        const net::Link& link, Station& rx,
                                        const std::string& sw_name) {
  const std::string who =
      sw_name + ".out" + std::to_string(port) + "->" + rx.name() + ": ";
  expect_eq(sw.cells_forwarded_on(port), link.cells_in(),
            "egress-hop emission conservation",
            who + "forwarded on port == link cells in");
  // The receive count additionally includes alarm cells the RX PHY
  // itself inserted while the link was down (same as audit_hop).
  expect_eq(link.cells_in() - link.cells_lost() - link.cells_dropped_down()
                + rx.nic().ais_inserted(),
            rx.nic().rx().cells_received(),
            "egress-hop delivery conservation",
            who + "sent - lost - down_dropped + ais == received");
}

std::string InvariantAuditor::report() const {
  if (violations_.empty()) {
    return "invariant audit: " + std::to_string(checks_) + " checks, ok\n";
  }
  std::string out = "invariant audit: " +
                    std::to_string(violations_.size()) + " of " +
                    std::to_string(checks_) + " checks FAILED\n";
  for (const auto& v : violations_) {
    out += "  FAIL " + v.check + ": " + v.detail + "\n";
  }
  return out;
}

}  // namespace hni::core
