#include "core/scenario.hpp"

namespace hni::core {

P2pResult run_p2p(const P2pConfig& config) {
  Testbed bed;
  StationConfig sc = config.station;
  sc.name = "tx-station";
  Station& a = bed.add_station(sc);
  sc.name = "rx-station";
  Station& b = bed.add_station(sc);
  bed.connect(a, b, config.loss, config.propagation);

  a.nic().open_vc(config.vc, config.aal);
  b.nic().open_vc(config.vc, config.aal);

  // Receiver: verify every SDU, track latency inside the window.
  std::uint64_t received = 0;
  std::uint64_t received_bytes = 0;
  std::uint64_t pattern_failures = 0;
  sim::RunningStat latency_us;
  bool measuring = false;

  b.host().set_rx_handler(
      [&](aal::Bytes sdu, const host::RxInfo& info) {
        if (!aal::verify_pattern(sdu)) ++pattern_failures;
        if (!measuring) return;
        ++received;
        received_bytes += sdu.size();
        latency_us.add(
            sim::to_microseconds(info.handed_up_time - info.first_cell_time));
      });

  // Source.
  net::SduSource source(
      bed.sim(), config.traffic,
      [&](aal::Bytes sdu) {
        return a.host().send(config.vc, config.aal, std::move(sdu));
      });
  a.host().set_tx_ready([&source] { source.notify_ready(); });
  source.start();

  // Warm up, then snapshot counters and measure.
  std::uint64_t sent0 = 0;
  std::uint64_t errs0 = 0;
  std::uint64_t drops0 = 0;
  std::uint64_t offered_bytes0 = 0;
  bed.sim().after(config.warmup, [&] {
    measuring = true;
    sent0 = a.host().sdus_sent();
    errs0 = b.nic().rx().pdus_errored();
    drops0 = b.nic().rx().cells_fifo_dropped();
    offered_bytes0 = source.bytes_offered();
  });
  bed.run_for(config.warmup + config.measure);

  const double window_s = sim::to_seconds(config.measure);
  P2pResult r;
  r.goodput_bps = static_cast<double>(received_bytes) * 8.0 / window_s;
  r.offered_bps =
      static_cast<double>(source.bytes_offered() - offered_bytes0) * 8.0 /
      window_s;
  r.sdus_sent = a.host().sdus_sent() - sent0;
  r.sdus_received = received;
  r.sdus_errored = b.nic().rx().pdus_errored() - errs0;
  r.cells_fifo_dropped = b.nic().rx().cells_fifo_dropped() - drops0;
  r.pattern_failures = pattern_failures;

  const sim::Time now = bed.now();
  r.tx_engine_util = a.nic().tx().engine().utilization(now);
  r.rx_engine_util = b.nic().rx().engine().utilization(now);
  r.tx_host_cpu_util = a.host().cpu().utilization(now);
  r.rx_host_cpu_util = b.host().cpu().utilization(now);
  r.rx_bus_util = b.bus().utilization(now);
  r.tx_line_util = a.nic().tx().framer().utilization();

  r.rx_fifo_mean = b.nic().rx().fifo().mean_depth();
  r.rx_fifo_max = b.nic().rx().fifo().max_depth();

  r.latency_mean_us = latency_us.mean();
  r.latency_max_us = latency_us.max();

  const auto& ints = b.nic().rx().interrupts();
  r.interrupts_per_pdu =
      ints.events() == 0
          ? 0.0
          : static_cast<double>(ints.interrupts()) /
                static_cast<double>(ints.events());
  return r;
}

}  // namespace hni::core
