// Canonical measured scenarios.
//
// run_p2p() is the workhorse the benches and examples share: two
// stations, a duplex connection (optionally lossy), one VC, a traffic
// source on one host and a verifying sink on the other, with a warm-up
// window excluded from measurement. Results carry every quantity the
// experiment suite reports: goodput, utilizations, FIFO behaviour,
// latency, loss accounting and byte-integrity verdicts.

#pragma once

#include <cstdint>
#include <string>

#include "core/testbed.hpp"
#include "net/traffic.hpp"

namespace hni::core {

struct P2pConfig {
  StationConfig station{};  // template applied to both ends
  aal::AalType aal = aal::AalType::kAal5;
  atm::VcId vc{0, 100};
  net::SduSource::Config traffic{};
  net::LossModel loss{};
  sim::Time propagation = sim::microseconds(5);
  sim::Time warmup = sim::milliseconds(2);
  sim::Time measure = sim::milliseconds(20);
};

struct P2pResult {
  // Measured over the post-warmup window.
  double goodput_bps = 0.0;     // receiver-verified SDU payload bits/s
  double offered_bps = 0.0;     // source SDU payload bits/s
  std::uint64_t sdus_sent = 0;
  std::uint64_t sdus_received = 0;
  std::uint64_t sdus_errored = 0;   // reassembly failures at the receiver
  std::uint64_t cells_fifo_dropped = 0;
  std::uint64_t pattern_failures = 0;

  double tx_engine_util = 0.0;
  double rx_engine_util = 0.0;
  double tx_host_cpu_util = 0.0;
  double rx_host_cpu_util = 0.0;
  double rx_bus_util = 0.0;
  double tx_line_util = 0.0;

  double rx_fifo_mean = 0.0;
  double rx_fifo_max = 0.0;

  double latency_mean_us = 0.0;  // first cell emitted -> host memory
  double latency_max_us = 0.0;

  double interrupts_per_pdu = 0.0;  // receiver side

  bool data_ok() const { return pattern_failures == 0; }
};

/// Runs the scenario to completion of warmup+measure and reports.
P2pResult run_p2p(const P2pConfig& config);

}  // namespace hni::core
