#include "core/testbed.hpp"

#include <cstdio>
#include <string>

namespace hni::core {

Testbed::~Testbed() {
  InvariantAuditor auditor;
  for (auto& s : stations_) auditor.audit_station(*s);
  if (!auditor.ok()) {
    std::fputs(auditor.report().c_str(), stderr);
  }
}

std::string Testbed::switch_label(const net::Switch* sw) const {
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    if (switches_[i].get() == sw) return "switch." + std::to_string(i);
  }
  return "switch.?";
}

InvariantAuditor Testbed::audit(bool include_hops) {
  InvariantAuditor auditor;
  for (auto& s : stations_) auditor.audit_station(*s);
  if (include_hops) {
    for (const Hop& hop : hops_) {
      auditor.audit_hop(*hop.tx, *hop.link, *hop.rx);
    }
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      auditor.audit_switch(*switches_[i], "switch." + std::to_string(i));
    }
    // Per-hop conservation over every recorded fabric hop — each switch
    // on a multi-hop path gets its ingress, trunk and egress links
    // balanced, not just the first one.
    for (const IngressHop& hop : ingress_hops_) {
      auditor.audit_ingress_hop(*hop.tx, *hop.link, *hop.sw, hop.port,
                                switch_label(hop.sw));
    }
    for (const TrunkHop& hop : trunk_hops_) {
      auditor.audit_trunk_hop(*hop.tx, hop.tx_port, *hop.link, *hop.rx,
                              hop.rx_port, switch_label(hop.tx),
                              switch_label(hop.rx));
    }
    for (const EgressHop& hop : egress_hops_) {
      auditor.audit_egress_hop(*hop.sw, hop.port, *hop.link, *hop.rx,
                               switch_label(hop.sw));
    }
    audit_path_conservation(auditor);
  }
  return auditor;
}

void Testbed::audit_path_conservation(InvariantAuditor& auditor) const {
  if (switches_.empty()) return;
  // The identity composes per-hop and per-switch books end to end, so
  // it is only meaningful when the recorded hops explain every cell the
  // fabric saw. A scenario that wired some switch port by hand (raw
  // add_link + set_sink) is skipped — its switches are still audited
  // individually by audit_switch.
  const auto recorded_input = [&](const net::Switch* sw, std::size_t port) {
    for (const IngressHop& h : ingress_hops_) {
      if (h.sw == sw && h.port == port) return true;
    }
    for (const TrunkHop& h : trunk_hops_) {
      if (h.rx == sw && h.rx_port == port) return true;
    }
    return false;
  };
  const auto recorded_output = [&](const net::Switch* sw, std::size_t port) {
    for (const EgressHop& h : egress_hops_) {
      if (h.sw == sw && h.port == port) return true;
    }
    for (const TrunkHop& h : trunk_hops_) {
      if (h.tx == sw && h.tx_port == port) return true;
    }
    return false;
  };
  for (const auto& sw : switches_) {
    for (std::size_t p = 0; p < sw->config().ports; ++p) {
      if (sw->cells_received_on(p) > 0 && !recorded_input(sw.get(), p)) {
        return;
      }
      if (sw->cells_forwarded_on(p) > 0 && !recorded_output(sw.get(), p)) {
        return;
      }
    }
  }
  // Cells offered at the fabric's ingress edges, plus alarms the
  // switches originated, equal the cells delivered at the egress edges
  // plus every drop book on the way plus whatever is still resident.
  std::uint64_t ingress_in = 0;
  std::uint64_t egress_in = 0;
  std::uint64_t wire_losses = 0;
  for (const IngressHop& h : ingress_hops_) {
    ingress_in += h.link->cells_in();
    wire_losses += h.link->cells_lost() + h.link->cells_dropped_down();
  }
  for (const TrunkHop& h : trunk_hops_) {
    wire_losses += h.link->cells_lost() + h.link->cells_dropped_down();
  }
  for (const EgressHop& h : egress_hops_) egress_in += h.link->cells_in();
  std::uint64_t ais = 0;
  std::uint64_t drops = 0;
  std::uint64_t resident = 0;
  for (const auto& sw : switches_) {
    ais += sw->cells_ais_inserted();
    drops += sw->cells_hec_discarded() + sw->cells_unroutable() +
             sw->cells_policed_dropped() + sw->cells_dropped_overflow() +
             sw->cells_dropped_vc_limit() + sw->cells_dropped_clp() +
             sw->cells_epd_dropped() + sw->cells_ppd_dropped() +
             sw->cells_wred_dropped();
    resident += sw->cells_queued();
  }
  auditor.expect_eq(ingress_in + ais,
                    egress_in + drops + resident + wire_losses,
                    "fabric path conservation",
                    "ingress offered + switch AIS == egress delivered-in + "
                    "per-hop drops + resident + wire losses");
}

Station& Testbed::add_station(StationConfig config) {
  if (!config.nic.tx.clock_ppm) {
    // Give every station a realistic, deterministic oscillator offset
    // so independent framers do not stay phase-locked forever.
    config.nic.tx.clock_ppm = ppm_rng_.normal(0.0, 20.0);
  }
  stations_.push_back(std::make_unique<Station>(sim_, std::move(config)));
  Station& st = *stations_.back();
  const std::string scope =
      "station." + std::to_string(stations_.size() - 1) + "." + st.name();
  st.register_metrics(sim::MetricScope(metrics_, scope));
  // Priority-lane drops in the RX FIFO (a lost alarm cell) are trace
  // events too, not just a counter.
  st.nic().rx().set_tracer(&tracer_, scope + ".nic.rx.fifo");
  // Continuity-check loss declare/clear edges are trace events as well.
  st.nic().set_tracer(&tracer_, scope + ".nic");
  return st;
}

net::Link& Testbed::add_link(sim::Time propagation, net::LossModel loss,
                             std::uint64_t seed) {
  links_.push_back(
      std::make_unique<net::Link>(sim_, propagation, loss, seed));
  const std::string idx = std::to_string(links_.size() - 1);
  links_.back()->set_tracer(&tracer_, "link" + idx);
  links_.back()->register_metrics(sim::MetricScope(metrics_, "link." + idx));
  return *links_.back();
}

std::pair<net::Link*, net::Link*> Testbed::connect(Station& a, Station& b,
                                                   net::LossModel loss,
                                                   sim::Time propagation) {
  net::Link& ab = add_link(propagation, loss, next_seed());
  net::Link& ba = add_link(propagation, loss, next_seed());
  b.nic().attach_rx(ab);  // sink + loss-of-signal observer
  a.nic().attach_rx(ba);
  a.nic().attach_tx(ab);
  b.nic().attach_tx(ba);
  hops_.push_back({&a, &ab, &b});
  hops_.push_back({&b, &ba, &a});
  return {&ab, &ba};
}

net::Switch& Testbed::add_switch(net::SwitchConfig config) {
  if (!config.clock_ppm) config.clock_ppm = ppm_rng_.normal(0.0, 20.0);
  switches_.push_back(std::make_unique<net::Switch>(sim_, config));
  const std::string idx = std::to_string(switches_.size() - 1);
  switches_.back()->register_metrics(
      sim::MetricScope(metrics_, "switch." + idx));
  switches_.back()->set_tracer(&tracer_, "switch." + idx);
  return *switches_.back();
}

void Testbed::connect_to_switch(Station& s, net::Switch& sw,
                                std::size_t port, net::LossModel loss,
                                sim::Time propagation) {
  net::Link& link = add_link(propagation, loss, next_seed());
  link.set_sink(
      [&sw, port](const net::WireCell& w) { sw.receive(port, w); });
  s.nic().attach_tx(link);
  sw.set_input_link(port, link);
  ingress_hops_.push_back({&s, &link, &sw, port});
}

void Testbed::connect_from_switch(net::Switch& sw, std::size_t port,
                                  Station& s, net::LossModel loss,
                                  sim::Time propagation) {
  net::Link& link = add_link(propagation, loss, next_seed());
  s.nic().attach_rx(link);
  sw.attach_output(port, link);
  egress_hops_.push_back({&sw, port, &link, &s});
}

std::pair<net::Link*, net::Link*> Testbed::connect_trunk(
    net::Switch& a, std::size_t port_a, net::Switch& b, std::size_t port_b,
    net::LossModel loss, sim::Time propagation) {
  net::Link& ab = add_link(propagation, loss, next_seed());
  net::Link& ba = add_link(propagation, loss, next_seed());
  ab.set_sink([&b, port_b](const net::WireCell& w) { b.receive(port_b, w); });
  ba.set_sink([&a, port_a](const net::WireCell& w) { a.receive(port_a, w); });
  a.attach_output(port_a, ab);
  b.attach_output(port_b, ba);
  // Each switch watches the link *feeding* it: trunk down -> the
  // downstream switch originates AIS for every route entering there.
  b.set_input_link(port_b, ab);
  a.set_input_link(port_a, ba);
  trunk_hops_.push_back({&a, port_a, &ab, &b, port_b});
  trunk_hops_.push_back({&b, port_b, &ba, &a, port_a});
  return {&ab, &ba};
}

}  // namespace hni::core
