#include "core/testbed.hpp"

#include <cstdio>
#include <string>

namespace hni::core {

Testbed::~Testbed() {
  InvariantAuditor auditor;
  for (auto& s : stations_) auditor.audit_station(*s);
  if (!auditor.ok()) {
    std::fputs(auditor.report().c_str(), stderr);
  }
}

InvariantAuditor Testbed::audit(bool include_hops) {
  InvariantAuditor auditor;
  for (auto& s : stations_) auditor.audit_station(*s);
  if (include_hops) {
    for (const Hop& hop : hops_) {
      auditor.audit_hop(*hop.tx, *hop.link, *hop.rx);
    }
    for (std::size_t i = 0; i < switches_.size(); ++i) {
      auditor.audit_switch(*switches_[i], "switch." + std::to_string(i));
    }
  }
  return auditor;
}

Station& Testbed::add_station(StationConfig config) {
  if (!config.nic.tx.clock_ppm) {
    // Give every station a realistic, deterministic oscillator offset
    // so independent framers do not stay phase-locked forever.
    config.nic.tx.clock_ppm = ppm_rng_.normal(0.0, 20.0);
  }
  stations_.push_back(std::make_unique<Station>(sim_, std::move(config)));
  Station& st = *stations_.back();
  const std::string scope =
      "station." + std::to_string(stations_.size() - 1) + "." + st.name();
  st.register_metrics(sim::MetricScope(metrics_, scope));
  // Priority-lane drops in the RX FIFO (a lost alarm cell) are trace
  // events too, not just a counter.
  st.nic().rx().set_tracer(&tracer_, scope + ".nic.rx.fifo");
  return st;
}

net::Link& Testbed::add_link(sim::Time propagation, net::LossModel loss,
                             std::uint64_t seed) {
  links_.push_back(
      std::make_unique<net::Link>(sim_, propagation, loss, seed));
  const std::string idx = std::to_string(links_.size() - 1);
  links_.back()->set_tracer(&tracer_, "link" + idx);
  links_.back()->register_metrics(sim::MetricScope(metrics_, "link." + idx));
  return *links_.back();
}

std::pair<net::Link*, net::Link*> Testbed::connect(Station& a, Station& b,
                                                   net::LossModel loss,
                                                   sim::Time propagation) {
  net::Link& ab = add_link(propagation, loss, next_seed());
  net::Link& ba = add_link(propagation, loss, next_seed());
  b.nic().attach_rx(ab);  // sink + loss-of-signal observer
  a.nic().attach_rx(ba);
  a.nic().attach_tx(ab);
  b.nic().attach_tx(ba);
  hops_.push_back({&a, &ab, &b});
  hops_.push_back({&b, &ba, &a});
  return {&ab, &ba};
}

net::Switch& Testbed::add_switch(net::SwitchConfig config) {
  if (!config.clock_ppm) config.clock_ppm = ppm_rng_.normal(0.0, 20.0);
  switches_.push_back(std::make_unique<net::Switch>(sim_, config));
  const std::string idx = std::to_string(switches_.size() - 1);
  switches_.back()->register_metrics(
      sim::MetricScope(metrics_, "switch." + idx));
  switches_.back()->set_tracer(&tracer_, "switch." + idx);
  return *switches_.back();
}

void Testbed::connect_to_switch(Station& s, net::Switch& sw,
                                std::size_t port, net::LossModel loss,
                                sim::Time propagation) {
  net::Link& link = add_link(propagation, loss, next_seed());
  link.set_sink(
      [&sw, port](const net::WireCell& w) { sw.receive(port, w); });
  s.nic().attach_tx(link);
}

void Testbed::connect_from_switch(net::Switch& sw, std::size_t port,
                                  Station& s, net::LossModel loss,
                                  sim::Time propagation) {
  net::Link& link = add_link(propagation, loss, next_seed());
  s.nic().attach_rx(link);
  sw.attach_output(port, link);
}

}  // namespace hni::core
