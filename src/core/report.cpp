#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hni::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string Table::integer(std::uint64_t value) {
  return std::to_string(value);
}

std::string Table::percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }

  std::string out;
  out += "\n== " + title + " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += "| ";
      out += row[i];
      out.append(width[i] - row[i].size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule += "|";
    rule.append(width[i] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

Table fault_recovery_table(Station& s) {
  nic::TxPath& tx = s.nic().tx();
  nic::RxPath& rx = s.nic().rx();
  Table t({"counter", "tx", "rx"});
  t.add_row({"dma retries", Table::integer(tx.dma().retries()),
             Table::integer(rx.dma().retries())});
  t.add_row({"dma gave up", Table::integer(tx.dma().gave_up()),
             Table::integer(rx.dma().gave_up())});
  t.add_row({"dma stalls", Table::integer(tx.dma().stalls()),
             Table::integer(rx.dma().stalls())});
  t.add_row({"watchdog resets", Table::integer(tx.watchdog_resets()),
             Table::integer(rx.watchdog_resets())});
  t.add_row({"pdus aborted", Table::integer(tx.pdus_aborted()),
             Table::integer(rx.pdus_aborted())});
  t.add_row({"pdus dropped (paused vc)",
             Table::integer(tx.pdus_dropped_paused()), "0"});
  t.add_row({"pdus dropped (dma)", "0",
             Table::integer(rx.pdus_dropped_dma())});
  t.add_row({"pdus timed out", "0", Table::integer(rx.pdus_timed_out())});
  t.add_row({"cells flushed (reset)", "0",
             Table::integer(rx.cells_flushed())});
  t.add_row({"priority-lane drops",
             Table::integer(tx.fifo().priority_drops()),
             Table::integer(rx.fifo().priority_drops())});
  t.add_row({"bus hold-offs", Table::integer(s.bus().holdoffs()),
             Table::integer(s.bus().holdoffs())});
  t.add_row({"ais inserted / received",
             Table::integer(s.nic().ais_inserted()),
             Table::integer(s.nic().ais_received())});
  t.add_row({"rdi sent / received", Table::integer(s.nic().rdi_sent()),
             Table::integer(s.nic().rdi_received())});
  return t;
}

namespace {

std::string metric_value(const sim::MetricsRegistry::Sample& s) {
  if (s.kind == sim::MetricKind::kHistogram && s.histogram != nullptr) {
    return "n=" + Table::integer(s.histogram->count()) +
           " p50=" + Table::num(s.histogram->percentile(50.0), 3) +
           " p99=" + Table::num(s.histogram->percentile(99.0), 3);
  }
  const auto as_int = static_cast<std::int64_t>(s.value);
  if (s.value == static_cast<double>(as_int)) {
    return std::to_string(as_int);
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", s.value);
  return buf;
}

}  // namespace

Table metrics_table(const sim::MetricsRegistry& registry,
                    const std::string& prefix) {
  Table t({"metric", "kind", "value"});
  for (const auto& s : registry.snapshot()) {
    if (!prefix.empty() && s.name.rfind(prefix, 0) != 0) continue;
    const char* kind = s.kind == sim::MetricKind::kCounter ? "counter"
                       : s.kind == sim::MetricKind::kGauge ? "gauge"
                                                           : "histogram";
    t.add_row({s.name, kind, metric_value(s)});
  }
  return t;
}

Table cycle_budget_table(const sim::CycleProfiler& profiler) {
  Table t({"phase", "items", "cycles/item", "us/item", "total cycles",
           "share"});
  const sim::Time total = profiler.total();
  for (const auto& ps : profiler.stats()) {
    const double share =
        total > 0 ? static_cast<double>(ps.total) / static_cast<double>(total)
                  : 0.0;
    t.add_row({ps.name, Table::integer(ps.items),
               Table::num(ps.cycles_per_item, 1),
               Table::num(sim::to_microseconds(ps.time_per_item), 3),
               Table::num(ps.cycles, 0), Table::percent(share)});
  }
  return t;
}

}  // namespace hni::core
