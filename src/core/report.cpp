#include "core/report.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace hni::core {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width != header width");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, value);
  return buf;
}

std::string Table::integer(std::uint64_t value) {
  return std::to_string(value);
}

std::string Table::percent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    width[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  }

  std::string out;
  out += "\n== " + title + " ==\n";
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out += "| ";
      out += row[i];
      out.append(width[i] - row[i].size() + 1, ' ');
    }
    out += "|\n";
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    rule += "|";
    rule.append(width[i] + 2, '-');
  }
  rule += "|\n";
  out += rule;
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

Table fault_recovery_table(Station& s) {
  nic::TxPath& tx = s.nic().tx();
  nic::RxPath& rx = s.nic().rx();
  Table t({"counter", "tx", "rx"});
  t.add_row({"dma retries", Table::integer(tx.dma().retries()),
             Table::integer(rx.dma().retries())});
  t.add_row({"dma gave up", Table::integer(tx.dma().gave_up()),
             Table::integer(rx.dma().gave_up())});
  t.add_row({"dma stalls", Table::integer(tx.dma().stalls()),
             Table::integer(rx.dma().stalls())});
  t.add_row({"watchdog resets", Table::integer(tx.watchdog_resets()),
             Table::integer(rx.watchdog_resets())});
  t.add_row({"pdus aborted", Table::integer(tx.pdus_aborted()),
             Table::integer(rx.pdus_aborted())});
  t.add_row({"pdus dropped (paused vc)",
             Table::integer(tx.pdus_dropped_paused()), "0"});
  t.add_row({"pdus dropped (dma)", "0",
             Table::integer(rx.pdus_dropped_dma())});
  t.add_row({"pdus timed out", "0", Table::integer(rx.pdus_timed_out())});
  t.add_row({"cells flushed (reset)", "0",
             Table::integer(rx.cells_flushed())});
  t.add_row({"bus hold-offs", Table::integer(s.bus().holdoffs()),
             Table::integer(s.bus().holdoffs())});
  t.add_row({"ais inserted / received",
             Table::integer(s.nic().ais_inserted()),
             Table::integer(s.nic().ais_received())});
  t.add_row({"rdi sent / received", Table::integer(s.nic().rdi_sent()),
             Table::integer(s.nic().rdi_received())});
  return t;
}

}  // namespace hni::core
