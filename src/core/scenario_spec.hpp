// Declarative scenario specs for the fleet runner.
//
// A ScenarioSpec is the run-matrix row the bench suite converged on
// after nine planes of bespoke binaries: one struct naming a topology
// (point-to-point, single-switch mux, N-switch line, protected
// triangle), a traffic mix (CBR/Poisson/on-off/greedy sources with
// contracts and DWRR weights), a fault profile (cell loss, trunk
// flaps, signalling-message drops) and an acceptance block (goodput
// floors, delivery-ratio floors, latency ceilings, Jain floors, clean
// conservation audit, golden digests, same-seed determinism).
//
// This header is pure data + text codec + acceptance arithmetic; the
// machinery that builds a core::Testbed/sig::SignalingNetwork from a
// spec and runs it lives in sig::run_scenario (src/sig/fleet.hpp) so
// the core library stays below the signalling layer.
//
// Text format: `key = value` lines, '#' comments, unknown keys are
// hard errors (a typo must not silently run a different scenario).
// `source` lines repeat, one per traffic source:
//
//   # scenario: three weighted flows through one DWRR port
//   name       = mux-fairness-dwrr
//   plane      = fairness
//   topology   = mux
//   scheduler  = dwrr
//   source     = cbr rate_mbps=90 sdu=9180 weight=1
//   source     = cbr rate_mbps=90 sdu=9180 weight=2
//   source     = cbr rate_mbps=90 sdu=9180 weight=4
//   accept_jain = 0.97
//
// to_text() emits the canonical form; parse(to_text(s)) round-trips.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace hni::core {

/// One traffic source. Rates are SDU-payload megabits per second; the
/// runner derives inter-SDU spacing and (for contracts) cell rates.
struct TrafficSpec {
  enum class Kind : std::uint8_t { kCbr, kPoisson, kOnOff, kGreedy };
  Kind kind = Kind::kCbr;
  double rate_mbps = 10.0;     // offered load (greedy saturates instead)
  std::size_t sdu_bytes = 1500;
  double pcr_mbps = 0.0;       // signalled PCR contract; 0 = best effort
  double scr_mbps = 0.0;       // > 0 adds a trTCM meter (VBR contract)
  std::uint16_t weight = 1;    // DWRR share at switch output queues
  bool abr = false;            // ERICA explicit-rate participant
};

/// The fault profile applied while the measurement window runs.
struct FaultSpec {
  /// Cell loss on the data path: the p2p link, or every trunk.
  double cell_loss_rate = 0.0;
  double loss_burst_cells = 0.0;  // Gilbert-Elliott mean burst; 0 = iid
  /// Square-wave outage on the first trunk (or the p2p link pair):
  /// down for `flap_down` at the head of every `flap_period`.
  sim::Time flap_period = 0;
  sim::Time flap_down = 0;
  /// Bernoulli drop rate on every signalling sender's message tap.
  double sig_drop_rate = 0.0;
};

/// What the scenario must deliver to pass. Zero disables a numeric
/// check; the audit check is on unless explicitly waived.
struct AcceptanceSpec {
  double min_goodput_mbps = 0.0;   // total delivered payload rate
  double min_delivery_ratio = 0.0; // delivered/offered bytes in-window
  double max_latency_us = 0.0;     // mean in-network latency ceiling
  double min_jain = 0.0;           // weight-normalised Jain floor
  bool audit_clean = true;         // conservation books must balance
  bool determinism = false;        // run twice; digests must match
  std::string digest;              // expected golden digest; "" = off
};

struct ScenarioSpec {
  enum class Topology : std::uint8_t { kP2p, kMux, kLine, kTriangle };
  enum class Scheduler : std::uint8_t { kFifo, kRoundRobin, kDwrr };

  std::string name = "unnamed";
  /// Which plane of the system the scenario regresses (fault-recovery,
  /// signalling-fault, overload, fairness, protection, ...) — reporting
  /// only, but fleet.py groups and the matrix coverage check reads it.
  std::string plane = "baseline";
  Topology topology = Topology::kP2p;
  std::size_t switches = 1;        // line length; ignored elsewhere
  std::uint64_t seed = 1;
  sim::Time warmup = sim::milliseconds(2);
  sim::Time measure = sim::milliseconds(20);
  /// Measurement window under --smoke; 0 = measure / 4.
  sim::Time smoke_measure = 0;

  // Plant knobs (applied to every switch; p2p ignores them).
  bool sts12 = false;              // STS-12c ports instead of STS-3c
  std::size_t queue_cells = 1024;  // shared output pool depth
  std::size_t epd_threshold = 0;   // frame-aware discard; 0 = off
  Scheduler scheduler = Scheduler::kFifo;
  bool wred = false;               // colour-aware WRED band on the pool
  bool efci_rm = false;            // EFCI marking + endpoint RM loop
  bool abr_loop = false;           // ERICA ER stamping + explicit-rate
  bool per_vc_books = false;       // per-VC EPD gate + residency cap
  double cac_utilization = 0.0;    // admission control; 0 = admit all
  bool protection = false;         // protection switching + CC heartbeats
  bool sig_audit = true;           // agent status audit (off for flaps)

  std::vector<TrafficSpec> traffic;
  FaultSpec fault;
  AcceptanceSpec accept;

  sim::Time measure_window(bool smoke) const {
    if (!smoke) return measure;
    return smoke_measure > 0 ? smoke_measure : measure / 4;
  }

  /// Canonical text form; parse_scenario(to_text()) round-trips.
  std::string to_text() const;
};

/// Parses the key=value text form. Returns false and fills `error`
/// (with a line number) on unknown keys, malformed values, or an empty
/// traffic mix.
bool parse_scenario(const std::string& text, ScenarioSpec& out,
                    std::string& error);

/// parse_scenario over a file's contents.
bool load_scenario_file(const std::string& path, ScenarioSpec& out,
                        std::string& error);

/// What one run measured. Filled by sig::run_scenario; evaluated
/// against the spec's acceptance block by evaluate_acceptance.
struct ScenarioResult {
  bool ran = false;           // false = setup failed (see setup_error)
  std::string setup_error;
  double goodput_mbps = 0.0;
  double offered_mbps = 0.0;
  double delivery_ratio = 0.0;
  double latency_mean_us = 0.0;
  double latency_max_us = 0.0;
  double jain_weighted = 1.0;
  std::vector<double> per_flow_mbps;
  std::uint64_t calls_connected = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t stranded = 0;
  bool audit_clean = true;
  std::string digest;         // computed only when the spec needs it
  std::string digest_rerun;   // second run (determinism check)
  std::vector<std::string> failures;  // acceptance misses, human-readable

  bool accepted() const { return ran && failures.empty(); }
};

/// Appends one failure line per missed acceptance criterion to
/// `result.failures` (and one for a failed setup). Pure arithmetic —
/// unit-testable without running a simulation.
void evaluate_acceptance(const ScenarioSpec& spec, ScenarioResult& result);

/// Jain's fairness index over `xs`; 1.0 for empty input.
double jain_index(const std::vector<double>& xs);

/// FNV-1a 64-bit digest over typed words — the same construction the
/// golden-determinism tests use, shared so fleet digests and test
/// digests stay comparable in spirit (not in value: the fold inputs
/// differ per consumer).
class Digest {
 public:
  void fold(std::uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (word >> (8 * i)) & 0xFF;
      hash_ *= 0x100000001B3ull;
    }
  }
  void fold_string(const std::string& s) {
    for (const char c : s) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001B3ull;
    }
  }
  std::string hex() const;

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ull;
};

}  // namespace hni::core
