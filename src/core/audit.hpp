// Invariant auditor: conservation checks over the interface's books.
//
// Every resource the interface manages is double-entry accounted —
// containers allocated vs released, cells pushed vs popped, cells sent
// vs received-plus-lost. Fault injection exercises exactly the paths
// where such books historically go wrong (abort paths, retries, resets
// that forget to return a buffer), so the auditor re-derives each
// identity from independent counters and reports any imbalance:
//
//   * board container pool:  allocated == released + in_use
//   * cell FIFOs:            offered == accepted + dropped,
//                            accepted == removed + resident
//   * RX engine:             removed == serviced + flushed
//   * wire hop (quiescent):  sent == delivered + lost + dropped-down,
//                            received == delivered + AIS inserted
//
// Station identities hold at *any* instant (counters update together);
// hop identities only once the simulator has run dry (cells in flight
// are on nobody's books). core::Testbed runs the station audits at
// teardown and warns on stderr; tests call audit() and assert ok().

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/station.hpp"
#include "net/link.hpp"
#include "net/switch.hpp"

namespace hni::core {

class InvariantAuditor {
 public:
  struct Violation {
    std::string check;   // which identity failed
    std::string detail;  // the numbers that disagree
  };

  /// Records an equality check; a mismatch becomes a violation.
  void expect_eq(std::uint64_t lhs, std::uint64_t rhs,
                 const std::string& check, const std::string& detail);

  /// Records an upper-bound check (lhs <= rhs); an excess becomes a
  /// violation. For books that bound rather than balance — e.g. paused
  /// VCs can never outnumber open VCs.
  void expect_le(std::uint64_t lhs, std::uint64_t rhs,
                 const std::string& check, const std::string& detail);

  /// Audits one station's always-true identities (valid at any time).
  void audit_station(Station& s);

  /// Audits a simplex wire hop tx -> link -> rx. Only valid once the
  /// simulator has run dry: cells in flight are on nobody's books.
  void audit_hop(Station& tx, const net::Link& link, Station& rx);

  /// Audits a switch's receive and queue-stage conservation identities.
  /// Both hold at any instant (the switch counts a cell forwarded the
  /// moment the scheduler commits it to an output slot), but Testbed
  /// runs this alongside the quiescent hop audit.
  void audit_switch(const net::Switch& sw, const std::string& name);

  // Per-hop fabric audits (quiescent only, like audit_hop): every link
  // of a multi-hop path balances against the per-port books of the
  // switch on each side.
  /// station TX -> link -> switch input port.
  void audit_ingress_hop(Station& tx, const net::Link& link,
                         const net::Switch& sw, std::size_t port,
                         const std::string& sw_name);
  /// switch output port -> trunk link -> switch input port.
  void audit_trunk_hop(const net::Switch& tx, std::size_t tx_port,
                       const net::Link& link, const net::Switch& rx,
                       std::size_t rx_port, const std::string& tx_name,
                       const std::string& rx_name);
  /// switch output port -> link -> station RX.
  void audit_egress_hop(const net::Switch& sw, std::size_t port,
                        const net::Link& link, Station& rx,
                        const std::string& sw_name);

  bool ok() const { return violations_.empty(); }
  std::size_t checks_run() const { return checks_; }
  const std::vector<Violation>& violations() const { return violations_; }

  /// Human-readable verdict, one line per violation.
  std::string report() const;

 private:
  std::vector<Violation> violations_;
  std::size_t checks_ = 0;
};

}  // namespace hni::core
