#include "core/scenario_spec.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace hni::core {

namespace {

// Shortest decimal form that parses back to the same double, so
// parse(to_text(s)) round-trips at the string level too.
std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  if (std::strtod(buf, nullptr) != v) {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

const char* topology_name(ScenarioSpec::Topology t) {
  switch (t) {
    case ScenarioSpec::Topology::kP2p: return "p2p";
    case ScenarioSpec::Topology::kMux: return "mux";
    case ScenarioSpec::Topology::kLine: return "line";
    case ScenarioSpec::Topology::kTriangle: return "triangle";
  }
  return "?";
}

const char* scheduler_name(ScenarioSpec::Scheduler s) {
  switch (s) {
    case ScenarioSpec::Scheduler::kFifo: return "fifo";
    case ScenarioSpec::Scheduler::kRoundRobin: return "rr";
    case ScenarioSpec::Scheduler::kDwrr: return "dwrr";
  }
  return "?";
}

const char* kind_name(TrafficSpec::Kind k) {
  switch (k) {
    case TrafficSpec::Kind::kCbr: return "cbr";
    case TrafficSpec::Kind::kPoisson: return "poisson";
    case TrafficSpec::Kind::kOnOff: return "onoff";
    case TrafficSpec::Kind::kGreedy: return "greedy";
  }
  return "?";
}

bool parse_bool(const std::string& v, bool& out) {
  if (v == "on" || v == "true" || v == "1") {
    out = true;
    return true;
  }
  if (v == "off" || v == "false" || v == "0") {
    out = false;
    return true;
  }
  return false;
}

bool parse_double(const std::string& v, double& out) {
  char* end = nullptr;
  out = std::strtod(v.c_str(), &end);
  return end != v.c_str() && *end == '\0';
}

bool parse_u64(const std::string& v, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(v.c_str(), &end, 10);
  return end != v.c_str() && *end == '\0';
}

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

bool parse_source(const std::string& value, TrafficSpec& out,
                  std::string& error) {
  std::istringstream in(value);
  std::string kind;
  in >> kind;
  if (kind == "cbr") {
    out.kind = TrafficSpec::Kind::kCbr;
  } else if (kind == "poisson") {
    out.kind = TrafficSpec::Kind::kPoisson;
  } else if (kind == "onoff") {
    out.kind = TrafficSpec::Kind::kOnOff;
  } else if (kind == "greedy") {
    out.kind = TrafficSpec::Kind::kGreedy;
  } else {
    error = "unknown source kind '" + kind + "'";
    return false;
  }
  std::string tok;
  while (in >> tok) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      error = "source attribute '" + tok + "' is not key=value";
      return false;
    }
    const std::string key = tok.substr(0, eq);
    const std::string val = tok.substr(eq + 1);
    std::uint64_t u = 0;
    bool ok = true;
    if (key == "rate_mbps") {
      ok = parse_double(val, out.rate_mbps);
    } else if (key == "sdu") {
      ok = parse_u64(val, u);
      out.sdu_bytes = static_cast<std::size_t>(u);
    } else if (key == "pcr_mbps") {
      ok = parse_double(val, out.pcr_mbps);
    } else if (key == "scr_mbps") {
      ok = parse_double(val, out.scr_mbps);
    } else if (key == "weight") {
      ok = parse_u64(val, u) && u >= 1 && u <= 0xFFFF;
      out.weight = static_cast<std::uint16_t>(u);
    } else if (key == "abr") {
      ok = parse_bool(val, out.abr);
    } else {
      error = "unknown source attribute '" + key + "'";
      return false;
    }
    if (!ok) {
      error = "bad value for source attribute '" + key + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

std::string ScenarioSpec::to_text() const {
  std::ostringstream out;
  out << "name = " << name << "\n";
  out << "plane = " << plane << "\n";
  out << "topology = " << topology_name(topology) << "\n";
  if (topology == Topology::kLine) out << "switches = " << switches << "\n";
  out << "seed = " << seed << "\n";
  out << "warmup_us = " << warmup / sim::kMicrosecond << "\n";
  out << "measure_us = " << measure / sim::kMicrosecond << "\n";
  if (smoke_measure > 0) {
    out << "smoke_measure_us = " << smoke_measure / sim::kMicrosecond << "\n";
  }
  out << "line = " << (sts12 ? "sts12c" : "sts3c") << "\n";
  out << "queue_cells = " << queue_cells << "\n";
  if (epd_threshold > 0) out << "epd_threshold = " << epd_threshold << "\n";
  out << "scheduler = " << scheduler_name(scheduler) << "\n";
  if (wred) out << "wred = on\n";
  if (efci_rm) out << "efci_rm = on\n";
  if (abr_loop) out << "abr_loop = on\n";
  if (per_vc_books) out << "per_vc_books = on\n";
  if (cac_utilization > 0) {
    out << "cac = " << fmt_double(cac_utilization) << "\n";
  }
  if (protection) out << "protection = on\n";
  if (!sig_audit) out << "sig_audit = off\n";
  for (const TrafficSpec& t : traffic) {
    out << "source = " << kind_name(t.kind)
        << " rate_mbps=" << fmt_double(t.rate_mbps) << " sdu=" << t.sdu_bytes;
    if (t.pcr_mbps > 0) out << " pcr_mbps=" << fmt_double(t.pcr_mbps);
    if (t.scr_mbps > 0) out << " scr_mbps=" << fmt_double(t.scr_mbps);
    if (t.weight != 1) out << " weight=" << t.weight;
    if (t.abr) out << " abr=on";
    out << "\n";
  }
  if (fault.cell_loss_rate > 0) {
    out << "loss_rate = " << fmt_double(fault.cell_loss_rate) << "\n";
  }
  if (fault.loss_burst_cells > 0) {
    out << "loss_burst = " << fmt_double(fault.loss_burst_cells) << "\n";
  }
  if (fault.flap_period > 0) {
    out << "flap_period_us = " << fault.flap_period / sim::kMicrosecond
        << "\n";
    out << "flap_down_us = " << fault.flap_down / sim::kMicrosecond << "\n";
  }
  if (fault.sig_drop_rate > 0) {
    out << "sig_drop = " << fmt_double(fault.sig_drop_rate) << "\n";
  }
  if (accept.min_goodput_mbps > 0) {
    out << "accept_goodput_mbps = " << fmt_double(accept.min_goodput_mbps)
        << "\n";
  }
  if (accept.min_delivery_ratio > 0) {
    out << "accept_delivery = " << fmt_double(accept.min_delivery_ratio)
        << "\n";
  }
  if (accept.max_latency_us > 0) {
    out << "accept_latency_us = " << fmt_double(accept.max_latency_us)
        << "\n";
  }
  if (accept.min_jain > 0) {
    out << "accept_jain = " << fmt_double(accept.min_jain) << "\n";
  }
  if (!accept.audit_clean) out << "accept_audit = off\n";
  if (accept.determinism) out << "accept_determinism = on\n";
  if (!accept.digest.empty()) {
    out << "accept_digest = " << accept.digest << "\n";
  }
  return out.str();
}

bool parse_scenario(const std::string& text, ScenarioSpec& out,
                    std::string& error) {
  out = ScenarioSpec{};
  out.traffic.clear();
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  const auto fail = [&](const std::string& what) {
    error = "line " + std::to_string(lineno) + ": " + what;
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) return fail("expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string val = trim(line.substr(eq + 1));
    if (key.empty() || val.empty()) return fail("expected 'key = value'");

    std::uint64_t u = 0;
    bool ok = true;
    if (key == "name") {
      out.name = val;
    } else if (key == "plane") {
      out.plane = val;
    } else if (key == "topology") {
      if (val == "p2p") {
        out.topology = ScenarioSpec::Topology::kP2p;
      } else if (val == "mux") {
        out.topology = ScenarioSpec::Topology::kMux;
      } else if (val == "line") {
        out.topology = ScenarioSpec::Topology::kLine;
      } else if (val == "triangle") {
        out.topology = ScenarioSpec::Topology::kTriangle;
      } else {
        return fail("unknown topology '" + val + "'");
      }
    } else if (key == "switches") {
      ok = parse_u64(val, u) && u >= 2 && u <= 16;
      out.switches = static_cast<std::size_t>(u);
    } else if (key == "seed") {
      ok = parse_u64(val, out.seed);
    } else if (key == "warmup_us") {
      ok = parse_u64(val, u);
      out.warmup = static_cast<sim::Time>(u) * sim::kMicrosecond;
    } else if (key == "measure_us") {
      ok = parse_u64(val, u) && u > 0;
      out.measure = static_cast<sim::Time>(u) * sim::kMicrosecond;
    } else if (key == "smoke_measure_us") {
      ok = parse_u64(val, u) && u > 0;
      out.smoke_measure = static_cast<sim::Time>(u) * sim::kMicrosecond;
    } else if (key == "line") {
      if (val == "sts3c") {
        out.sts12 = false;
      } else if (val == "sts12c") {
        out.sts12 = true;
      } else {
        return fail("unknown line rate '" + val + "'");
      }
    } else if (key == "queue_cells") {
      ok = parse_u64(val, u) && u >= 16;
      out.queue_cells = static_cast<std::size_t>(u);
    } else if (key == "epd_threshold") {
      ok = parse_u64(val, u);
      out.epd_threshold = static_cast<std::size_t>(u);
    } else if (key == "scheduler") {
      if (val == "fifo") {
        out.scheduler = ScenarioSpec::Scheduler::kFifo;
      } else if (val == "rr") {
        out.scheduler = ScenarioSpec::Scheduler::kRoundRobin;
      } else if (val == "dwrr") {
        out.scheduler = ScenarioSpec::Scheduler::kDwrr;
      } else {
        return fail("unknown scheduler '" + val + "'");
      }
    } else if (key == "wred") {
      ok = parse_bool(val, out.wred);
    } else if (key == "efci_rm") {
      ok = parse_bool(val, out.efci_rm);
    } else if (key == "abr_loop") {
      ok = parse_bool(val, out.abr_loop);
    } else if (key == "per_vc_books") {
      ok = parse_bool(val, out.per_vc_books);
    } else if (key == "cac") {
      ok = parse_double(val, out.cac_utilization) &&
           out.cac_utilization >= 0 && out.cac_utilization <= 1.0;
    } else if (key == "protection") {
      ok = parse_bool(val, out.protection);
    } else if (key == "sig_audit") {
      ok = parse_bool(val, out.sig_audit);
    } else if (key == "source") {
      TrafficSpec t;
      std::string serr;
      if (!parse_source(val, t, serr)) return fail(serr);
      out.traffic.push_back(t);
    } else if (key == "loss_rate") {
      ok = parse_double(val, out.fault.cell_loss_rate);
    } else if (key == "loss_burst") {
      ok = parse_double(val, out.fault.loss_burst_cells);
    } else if (key == "flap_period_us") {
      ok = parse_u64(val, u);
      out.fault.flap_period = static_cast<sim::Time>(u) * sim::kMicrosecond;
    } else if (key == "flap_down_us") {
      ok = parse_u64(val, u);
      out.fault.flap_down = static_cast<sim::Time>(u) * sim::kMicrosecond;
    } else if (key == "sig_drop") {
      ok = parse_double(val, out.fault.sig_drop_rate) &&
           out.fault.sig_drop_rate >= 0 && out.fault.sig_drop_rate < 1.0;
    } else if (key == "accept_goodput_mbps") {
      ok = parse_double(val, out.accept.min_goodput_mbps);
    } else if (key == "accept_delivery") {
      ok = parse_double(val, out.accept.min_delivery_ratio);
    } else if (key == "accept_latency_us") {
      ok = parse_double(val, out.accept.max_latency_us);
    } else if (key == "accept_jain") {
      ok = parse_double(val, out.accept.min_jain);
    } else if (key == "accept_audit") {
      ok = parse_bool(val, out.accept.audit_clean);
    } else if (key == "accept_determinism") {
      ok = parse_bool(val, out.accept.determinism);
    } else if (key == "accept_digest") {
      out.accept.digest = val;
    } else {
      return fail("unknown key '" + key + "'");
    }
    if (!ok) return fail("bad value '" + val + "' for key '" + key + "'");
  }
  if (out.traffic.empty()) {
    error = "scenario has no traffic sources";
    return false;
  }
  if (out.fault.flap_period > 0 &&
      out.fault.flap_down >= out.fault.flap_period) {
    error = "flap_down_us must be below flap_period_us";
    return false;
  }
  return true;
}

bool load_scenario_file(const std::string& path, ScenarioSpec& out,
                        std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!parse_scenario(text.str(), out, error)) {
    error = path + ": " + error;
    return false;
  }
  return true;
}

double jain_index(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0, sq = 0;
  for (const double x : xs) {
    sum += x;
    sq += x * x;
  }
  if (sq <= 0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sq);
}

void evaluate_acceptance(const ScenarioSpec& spec, ScenarioResult& r) {
  char buf[192];
  const auto miss = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof buf, fmt, args...);
    r.failures.push_back(buf);
  };
  if (!r.ran) {
    miss("setup failed: %s", r.setup_error.empty() ? "unknown"
                                                   : r.setup_error.c_str());
    return;
  }
  const AcceptanceSpec& a = spec.accept;
  if (a.min_goodput_mbps > 0 && r.goodput_mbps < a.min_goodput_mbps) {
    miss("goodput %.2f Mb/s below floor %.2f", r.goodput_mbps,
         a.min_goodput_mbps);
  }
  if (a.min_delivery_ratio > 0 && r.delivery_ratio < a.min_delivery_ratio) {
    miss("delivery ratio %.3f below floor %.3f", r.delivery_ratio,
         a.min_delivery_ratio);
  }
  if (a.max_latency_us > 0 && r.latency_mean_us > a.max_latency_us) {
    miss("mean latency %.1f us above ceiling %.1f", r.latency_mean_us,
         a.max_latency_us);
  }
  if (a.min_jain > 0 && r.jain_weighted < a.min_jain) {
    miss("weighted Jain %.4f below floor %.4f", r.jain_weighted, a.min_jain);
  }
  if (a.audit_clean && (!r.audit_clean || r.stranded != 0)) {
    miss("conservation audit failed (clean=%d stranded=%" PRIu64 ")",
         r.audit_clean ? 1 : 0, r.stranded);
  }
  if (!a.digest.empty() && r.digest != a.digest) {
    miss("digest mismatch: got %s want %s", r.digest.c_str(),
         a.digest.c_str());
  }
  if (a.determinism && r.digest != r.digest_rerun) {
    miss("nondeterministic: first %s rerun %s", r.digest.c_str(),
         r.digest_rerun.c_str());
  }
}

std::string Digest::hex() const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "fnv1a64:%016" PRIx64, hash_);
  return buf;
}

}  // namespace hni::core
