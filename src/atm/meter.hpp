// Two-rate three-color metering (trTCM, RFC 2698 profile) and its
// single-rate sibling (srTCM, RFC 2697), in the token-bucket style of
// DPDK's rte_meter.
//
// A meter classifies each cell against a traffic contract instead of
// the binary conform/violate verdict a single GCRA gives:
//
//   trTCM: two buckets — committed (CIR, depth CBS) and peak (PIR,
//   depth PBS), both in cells. A cell that finds the peak bucket empty
//   is RED (outside even the peak rate: UPC discards it). Otherwise,
//   if the committed bucket is empty it is YELLOW (bursting above the
//   sustainable rate but inside the peak: UPC tags it CLP=1, so WRED's
//   lower band sheds it first under pressure). Otherwise it is GREEN.
//
//   srTCM: one rate (CIR) with a committed burst (CBS) and an excess
//   burst (EBS) drawn down only after the committed bucket empties.
//
// This is the ATM VBR story (sustainable rate + peak rate) expressed
// as buckets rather than the equivalent dual GCRA: SCR maps to CIR,
// PCR to PIR, and the burst tolerances to the bucket depths. Meters
// run color-blind (the incoming CLP bit does not demote the verdict;
// tagging is the switch's job) and are deterministic: token refill is
// a pure function of the elapsed sim::Time, with no wall clock and no
// RNG, so runs replay exactly.

#pragma once

#include <algorithm>
#include <cstdint>

#include "sim/time.hpp"

namespace hni::atm {

enum class MeterColor : std::uint8_t {
  kGreen,   // within the committed rate
  kYellow,  // above committed, within peak: mark discard-eligible
  kRed,     // above peak: non-conforming
};

/// Two-rate three-color meter configuration. Rates are in cells per
/// second, burst depths in cells. A valid contract has
/// 0 < cir <= pir and bursts >= 1 (a bucket must fit one cell).
struct TrTcmConfig {
  double cir_cells_per_second = 0.0;  // committed (sustainable) rate
  double pir_cells_per_second = 0.0;  // peak rate
  double cbs_cells = 1.0;             // committed burst size
  double pbs_cells = 1.0;             // peak burst size
};

class TrTcm {
 public:
  TrTcm() = default;
  explicit TrTcm(const TrTcmConfig& cfg)
      : cir_per_ps_(cfg.cir_cells_per_second / sim::kSecond),
        pir_per_ps_(cfg.pir_cells_per_second / sim::kSecond),
        cbs_(std::max(cfg.cbs_cells, 1.0)),
        pbs_(std::max(cfg.pbs_cells, 1.0)),
        tc_(cbs_),
        tp_(pbs_) {}

  /// Meters one cell arriving at `now` and commits the verdict (tokens
  /// are consumed). Arrival times must be non-decreasing.
  MeterColor color(sim::Time now) {
    refill(now);
    if (tp_ < 1.0) return MeterColor::kRed;  // peak exhausted: no debit
    if (tc_ < 1.0) {
      tp_ -= 1.0;
      return MeterColor::kYellow;
    }
    tc_ -= 1.0;
    tp_ -= 1.0;
    return MeterColor::kGreen;
  }

  /// Current bucket levels (test/introspection hooks).
  double committed_tokens() const { return tc_; }
  double peak_tokens() const { return tp_; }

 private:
  void refill(sim::Time now) {
    const sim::Time dt = now - last_;
    if (dt <= 0) return;
    last_ = now;
    const double d = static_cast<double>(dt);
    tc_ = std::min(cbs_, tc_ + d * cir_per_ps_);
    tp_ = std::min(pbs_, tp_ + d * pir_per_ps_);
  }

  double cir_per_ps_ = 0.0;  // tokens (cells) per picosecond
  double pir_per_ps_ = 0.0;
  double cbs_ = 1.0;
  double pbs_ = 1.0;
  double tc_ = 1.0;  // committed bucket level, starts full
  double tp_ = 1.0;  // peak bucket level, starts full
  sim::Time last_ = 0;
};

/// Single-rate three-color meter: CIR with committed (CBS) and excess
/// (EBS) burst buckets. Excess tokens accumulate only while the
/// committed bucket is full, per RFC 2697.
struct SrTcmConfig {
  double cir_cells_per_second = 0.0;
  double cbs_cells = 1.0;
  double ebs_cells = 1.0;
};

class SrTcm {
 public:
  SrTcm() = default;
  explicit SrTcm(const SrTcmConfig& cfg)
      : cir_per_ps_(cfg.cir_cells_per_second / sim::kSecond),
        cbs_(std::max(cfg.cbs_cells, 1.0)),
        ebs_(std::max(cfg.ebs_cells, 1.0)),
        tc_(cbs_),
        te_(ebs_) {}

  MeterColor color(sim::Time now) {
    refill(now);
    if (tc_ >= 1.0) {
      tc_ -= 1.0;
      return MeterColor::kGreen;
    }
    if (te_ >= 1.0) {
      te_ -= 1.0;
      return MeterColor::kYellow;
    }
    return MeterColor::kRed;
  }

  double committed_tokens() const { return tc_; }
  double excess_tokens() const { return te_; }

 private:
  void refill(sim::Time now) {
    const sim::Time dt = now - last_;
    if (dt <= 0) return;
    last_ = now;
    double add = static_cast<double>(dt) * cir_per_ps_;
    const double room_c = cbs_ - tc_;
    if (add <= room_c) {
      tc_ += add;
    } else {
      // Committed bucket fills first; the spill feeds the excess bucket.
      tc_ = cbs_;
      te_ = std::min(ebs_, te_ + (add - room_c));
    }
  }

  double cir_per_ps_ = 0.0;
  double cbs_ = 1.0;
  double ebs_ = 1.0;
  double tc_ = 1.0;
  double te_ = 1.0;
  sim::Time last_ = 0;
};

}  // namespace hni::atm
