// Generic Cell Rate Algorithm (ITU-T I.371 / ATM Forum UNI 3.x).
//
// The GCRA(T, tau) is the conformance definition for ATM traffic
// contracts: a cell arriving at time t conforms iff t >= TAT - tau,
// where TAT is the theoretical arrival time maintained by the
// virtual-scheduling algorithm (TAT advances by the increment T = 1/PCR
// per conforming cell and never falls behind real time).
//
// The same object serves both roles it plays in a network:
//   * shaping  (transmit side): eligible_at() tells the scheduler when
//     the next cell may leave so the stream conforms by construction;
//   * policing (UPC at a switch ingress): police() accepts/rejects an
//     arriving cell against the contract.

#pragma once

#include <algorithm>

#include "sim/time.hpp"

namespace hni::atm {

class Gcra {
 public:
  /// `increment` = T = one cell interval at the contracted rate;
  /// `limit` = tau, the cell-delay-variation tolerance.
  Gcra(sim::Time increment, sim::Time limit)
      : increment_(increment), limit_(limit) {}

  /// Builds a GCRA for a peak cell rate in cells/second. The increment
  /// is rounded *up* to the next picosecond: rounding T down would let a
  /// shaper pacing at exactly T slightly exceed the contracted PCR, and
  /// a downstream policer holding the exact contract would then drop
  /// cells the sender believed conforming. Ceil errs on the safe side —
  /// the shaped stream is never faster than the contract.
  static Gcra for_pcr(double cells_per_second, sim::Time cdvt) {
    const double period =
        static_cast<double>(sim::kSecond) / cells_per_second;
    auto t = static_cast<sim::Time>(period);
    if (static_cast<double>(t) < period) ++t;
    return Gcra(t, cdvt);
  }

  /// Would a cell at `arrival` conform? (No state update.)
  bool conforms(sim::Time arrival) const {
    return arrival >= tat_ - limit_;
  }

  /// Earliest instant a cell may pass conformingly.
  sim::Time eligible_at() const { return tat_ - limit_; }

  /// Polices a cell at `arrival`: updates state and returns true iff
  /// conforming. Non-conforming cells leave the state untouched (the
  /// standard UPC behaviour — violators do not earn credit).
  bool police(sim::Time arrival) {
    if (!conforms(arrival)) return false;
    tat_ = std::max(tat_, arrival) + increment_;
    return true;
  }

  /// Records an emission the caller has already scheduled at `departure`
  /// (shaping side; the caller guarantees departure >= eligible_at()).
  void commit(sim::Time departure) {
    tat_ = std::max(tat_, departure) + increment_;
  }

  sim::Time increment() const { return increment_; }
  sim::Time limit() const { return limit_; }
  sim::Time tat() const { return tat_; }
  void reset() { tat_ = 0; }

 private:
  sim::Time increment_;
  sim::Time limit_;
  sim::Time tat_ = 0;
};

}  // namespace hni::atm
