#include "atm/crc.hpp"

#include <array>

namespace hni::atm {
namespace {

// --- CRC-10 ---------------------------------------------------------

constexpr std::uint16_t kCrc10Poly = 0x633;  // x^10+x^9+x^5+x^4+x+1

constexpr std::array<std::uint16_t, 256> make_crc10_table() {
  std::array<std::uint16_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    // Process one input byte with the 10-bit register aligned so that
    // the register's bit 9 is the polynomial's highest remainder bit.
    std::uint16_t crc = static_cast<std::uint16_t>(i << 2);  // byte at top
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x200) ? static_cast<std::uint16_t>(((crc << 1) ^
                                                        kCrc10Poly) &
                                                       0x3FF)
                          : static_cast<std::uint16_t>((crc << 1) & 0x3FF);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

constexpr auto kCrc10Table = make_crc10_table();

// --- CRC-32 (reflected 0x04C11DB7 => 0xEDB88320) ----------------------

constexpr std::uint32_t kCrc32PolyReflected = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kCrc32PolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrc32Table = make_crc32_table();

}  // namespace

std::uint16_t crc10(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0;
  for (std::uint8_t b : data) {
    const auto idx =
        static_cast<std::size_t>(((crc >> 2) ^ b) & 0xFF);
    crc = static_cast<std::uint16_t>(((crc << 8) ^ kCrc10Table[idx]) & 0x3FF);
  }
  return crc;
}

void Crc32::update(std::span<const std::uint8_t> data) {
  std::uint32_t crc = state_;
  for (std::uint8_t b : data) {
    crc = (crc >> 8) ^ kCrc32Table[(crc ^ b) & 0xFFu];
  }
  state_ = crc;
}

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  Crc32 c;
  c.update(data);
  return c.value();
}

}  // namespace hni::atm
