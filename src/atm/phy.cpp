#include "atm/phy.hpp"

#include <stdexcept>
#include <utility>

namespace hni::atm {

LineRate sts3c() { return LineRate{"STS-3c", 155.52e6, 149.760e6}; }

LineRate sts12c() { return LineRate{"STS-12c", 622.08e6, 599.040e6}; }

LineRate raw_rate(double bps, std::string name) {
  return LineRate{std::move(name), bps, bps};
}

TxFramer::TxFramer(sim::Simulator& sim, LineRate rate)
    : sim_(sim), rate_(std::move(rate)) {
  if (rate_.payload_bps <= 0.0) {
    throw std::invalid_argument("TxFramer: payload rate must be positive");
  }
  slot_ = rate_.cell_slot();
}

void TxFramer::set_clock_ppm(double ppm) {
  const double nominal = static_cast<double>(rate_.cell_slot());
  slot_ = static_cast<sim::Time>(nominal * (1.0 + ppm * 1e-6) + 0.5);
}

void TxFramer::start() {
  if (running_) return;
  if (!supplier_ || !sink_) {
    throw std::logic_error("TxFramer: supplier and sink must be set");
  }
  running_ = true;
  sim_.after(0, [this] { on_slot(); });
}

void TxFramer::on_slot() {
  if (!running_) return;
  if (std::optional<Cell> cell = supplier_()) {
    cells_sent_.add();
    // The cell is fully serialized one slot later.
    sim_.after(slot_, [this, c = *std::move(cell)] { sink_(c); });
  } else {
    idle_slots_.add();
  }
  sim_.after(slot_, [this] { on_slot(); });
}

double TxFramer::utilization() const {
  const std::uint64_t total = cells_sent_.value() + idle_slots_.value();
  return total == 0 ? 0.0
                    : static_cast<double>(cells_sent_.value()) /
                          static_cast<double>(total);
}

}  // namespace hni::atm
