// OAM (Operation And Maintenance) cells — simplified I.610.
//
// Fault-management cells travel on the same VC as user data,
// distinguished by the PTI codepoints (segment / end-to-end OAM). This
// library implements the loopback function — the standard "ping" of an
// ATM connection — plus alarm indication (AIS/RDI) codepoints, with the
// I.610 payload CRC-10 protecting the OAM payload.
//
// Simplified payload layout (documented deviation from I.610, which
// packs OAM type/function into one octet plus a 45-octet
// function-specific field):
//
//   [ function(1) | tag(8, LE) | zero pad ... | CRC-10 in last 2 octets ]

#pragma once

#include <cstdint>
#include <optional>

#include "atm/cell.hpp"

namespace hni::atm {

enum class OamFunction : std::uint8_t {
  kLoopbackRequest = 0x01,
  kLoopbackResponse = 0x02,
  kAis = 0x03,  // alarm indication signal (downstream "path dead")
  kRdi = 0x04,  // remote defect indication (upstream echo of AIS)
  kContinuityCheck = 0x05,  // periodic "I am alive" heartbeat (CC)
};

struct OamCell {
  OamFunction function = OamFunction::kLoopbackRequest;
  std::uint64_t tag = 0;  // correlation tag (loopback) / defect location
  bool end_to_end = true;

  /// Builds a full ATM cell carrying this OAM payload (CRC-10 stamped).
  Cell to_cell(VcId vc) const;

  /// Parses an OAM cell; nullopt when the PTI is not an OAM codepoint
  /// or the payload CRC-10 fails.
  static std::optional<OamCell> parse(const Cell& cell);
};

}  // namespace hni::atm
