#include "atm/oam.hpp"

#include "atm/crc.hpp"

namespace hni::atm {

Cell OamCell::to_cell(VcId vc) const {
  Cell cell;
  cell.header.vc = vc;
  cell.header.pti = end_to_end ? Pti::kOamEndToEnd : Pti::kOamSegment;
  cell.payload[0] = static_cast<std::uint8_t>(function);
  for (int i = 0; i < 8; ++i) {
    cell.payload[static_cast<std::size_t>(1 + i)] =
        static_cast<std::uint8_t>(tag >> (8 * i));
  }
  // CRC-10 over the payload with the CRC field zeroed, stored in the
  // low 10 bits of the final two octets (I.610 style).
  cell.payload[46] = 0;
  cell.payload[47] = 0;
  const std::uint16_t crc = crc10(std::span<const std::uint8_t>(
      cell.payload.data(), cell.payload.size()));
  cell.payload[46] = static_cast<std::uint8_t>((crc >> 8) & 0x03);
  cell.payload[47] = static_cast<std::uint8_t>(crc & 0xFF);
  return cell;
}

std::optional<OamCell> OamCell::parse(const Cell& cell) {
  if (cell.header.pti != Pti::kOamSegment &&
      cell.header.pti != Pti::kOamEndToEnd) {
    return std::nullopt;
  }
  auto scratch = cell.payload;
  const std::uint16_t wire_crc =
      static_cast<std::uint16_t>(((scratch[46] & 0x03) << 8) | scratch[47]);
  scratch[46] = 0;
  scratch[47] = 0;
  if (crc10(std::span<const std::uint8_t>(scratch.data(),
                                          scratch.size())) != wire_crc) {
    return std::nullopt;
  }
  OamCell oam;
  oam.function = static_cast<OamFunction>(cell.payload[0]);
  oam.tag = 0;
  for (int i = 0; i < 8; ++i) {
    oam.tag |= static_cast<std::uint64_t>(
                   cell.payload[static_cast<std::size_t>(1 + i)])
               << (8 * i);
  }
  oam.end_to_end = cell.header.pti == Pti::kOamEndToEnd;
  return oam;
}

}  // namespace hni::atm
