// Header Error Control (ITU-T I.432).
//
// The HEC is a CRC-8 over the first four header octets, generator
// x^8 + x^2 + x + 1 (0x07), with the pattern 0x55 added (XORed) to the
// remainder before transmission. The receiver operates a two-mode
// algorithm: in *correction mode* a single-bit error is corrected and
// the receiver drops to *detection mode*; in detection mode any error
// discards the cell. An error-free header returns the receiver to
// correction mode.
//
// Cell delineation (HUNT / PRESYNC / SYNC) per I.432 is also provided:
// ALPHA(7) consecutive invalid HECs in SYNC drop to HUNT; DELTA(6)
// consecutive valid HECs in PRESYNC confirm SYNC.

#pragma once

#include <cstdint>
#include <optional>
#include <span>

namespace hni::atm {

inline constexpr std::uint8_t kHecCosetPattern = 0x55;
inline constexpr int kHecAlpha = 7;  // consecutive bad HECs: SYNC -> HUNT
inline constexpr int kHecDelta = 6;  // consecutive good HECs: PRESYNC -> SYNC

/// CRC-8 (poly 0x07) over `header4`, coset 0x55 applied — the wire HEC.
std::uint8_t hec_compute(std::span<const std::uint8_t, 4> header4);

/// True if `hec` is the correct HEC for `header4`.
bool hec_check(std::span<const std::uint8_t, 4> header4, std::uint8_t hec);

/// Outcome of pushing one header through the receiver.
enum class HecVerdict : std::uint8_t {
  kValid,      // no error
  kCorrected,  // single-bit error corrected (header4 updated in place)
  kDiscard,    // uncorrectable (or in detection mode): discard the cell
};

/// Per-link HEC receiver implementing the I.432 correction/detection
/// two-mode algorithm. Stateless across cells except for the mode bit.
class HecReceiver {
 public:
  /// Verifies `header4`+`hec`; may correct a single-bit error in
  /// `header4` (the 40-bit codeword includes the HEC octet; an error in
  /// the HEC octet itself is also correctable and leaves header4
  /// untouched).
  HecVerdict push(std::span<std::uint8_t, 4> header4, std::uint8_t hec);

  bool in_correction_mode() const { return correction_mode_; }
  void reset() { correction_mode_ = true; }

 private:
  bool correction_mode_ = true;
};

/// I.432 cell delineation state machine, driven by per-candidate-header
/// HEC validity.
class CellDelineation {
 public:
  enum class State : std::uint8_t { kHunt, kPresync, kSync };

  /// Feed the validity of the HEC at the current candidate alignment.
  /// Returns the state after the transition.
  State push(bool hec_valid);

  State state() const { return state_; }
  void reset();

  /// Counts of state entries, for instrumentation.
  std::uint64_t sync_losses() const { return sync_losses_; }

 private:
  State state_ = State::kHunt;
  int run_ = 0;
  std::uint64_t sync_losses_ = 0;
};

}  // namespace hni::atm
