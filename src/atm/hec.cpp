#include "atm/hec.hpp"

#include <array>

namespace hni::atm {
namespace {

// CRC-8, generator x^8 + x^2 + x + 1 (0x07), MSB-first, init 0, no
// reflection — the I.432 HEC polynomial.
constexpr std::uint8_t kPoly = 0x07;

constexpr std::array<std::uint8_t, 256> make_crc8_table() {
  std::array<std::uint8_t, 256> table{};
  for (int i = 0; i < 256; ++i) {
    std::uint8_t crc = static_cast<std::uint8_t>(i);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ kPoly)
                         : static_cast<std::uint8_t>(crc << 1);
    }
    table[static_cast<std::size_t>(i)] = crc;
  }
  return table;
}

constexpr auto kCrc8Table = make_crc8_table();

constexpr std::uint8_t crc8(std::span<const std::uint8_t> data) {
  std::uint8_t crc = 0;
  for (std::uint8_t b : data) {
    crc = kCrc8Table[static_cast<std::size_t>(crc ^ b)];
  }
  return crc;
}

// Maps a nonzero syndrome to the erroneous bit position in the 40-bit
// codeword (bit 0 = MSB of header octet 0, bits 32..39 = HEC octet), or
// -1 for syndromes that do not correspond to a single-bit error.
struct SyndromeTable {
  std::array<std::int8_t, 256> bit_for_syndrome{};

  constexpr SyndromeTable() {
    for (auto& e : bit_for_syndrome) e = -1;
    // Errors within the 32 header bits: syndrome = crc8(error pattern).
    for (int b = 0; b < 32; ++b) {
      std::uint8_t buf[4] = {0, 0, 0, 0};
      buf[b / 8] = static_cast<std::uint8_t>(0x80u >> (b % 8));
      const std::uint8_t s = crc8(std::span<const std::uint8_t>(buf, 4));
      bit_for_syndrome[s] = static_cast<std::int8_t>(b);
    }
    // Errors within the HEC octet itself: syndrome = the flipped bit.
    for (int b = 32; b < 40; ++b) {
      const std::uint8_t s = static_cast<std::uint8_t>(0x80u >> (b - 32));
      bit_for_syndrome[s] = static_cast<std::int8_t>(b);
    }
  }
};

constexpr SyndromeTable kSyndromes{};

}  // namespace

std::uint8_t hec_compute(std::span<const std::uint8_t, 4> header4) {
  return static_cast<std::uint8_t>(crc8(header4) ^ kHecCosetPattern);
}

bool hec_check(std::span<const std::uint8_t, 4> header4, std::uint8_t hec) {
  return hec_compute(header4) == hec;
}

HecVerdict HecReceiver::push(std::span<std::uint8_t, 4> header4,
                             std::uint8_t hec) {
  const std::uint8_t syndrome = static_cast<std::uint8_t>(
      crc8(header4) ^ (hec ^ kHecCosetPattern));
  if (syndrome == 0) {
    correction_mode_ = true;
    return HecVerdict::kValid;
  }
  if (!correction_mode_) {
    // Detection mode: all errored headers are discarded; the next valid
    // header restores correction mode.
    return HecVerdict::kDiscard;
  }
  const std::int8_t bit =
      kSyndromes.bit_for_syndrome[static_cast<std::size_t>(syndrome)];
  correction_mode_ = false;
  if (bit < 0) return HecVerdict::kDiscard;  // multi-bit: uncorrectable
  if (bit < 32) {
    header4[static_cast<std::size_t>(bit / 8)] ^=
        static_cast<std::uint8_t>(0x80u >> (bit % 8));
  }
  // Bits 32..39 are errors in the HEC octet; header4 is already correct.
  return HecVerdict::kCorrected;
}

CellDelineation::State CellDelineation::push(bool hec_valid) {
  switch (state_) {
    case State::kHunt:
      if (hec_valid) {
        state_ = State::kPresync;
        run_ = 1;
      }
      break;
    case State::kPresync:
      if (!hec_valid) {
        state_ = State::kHunt;
        run_ = 0;
      } else if (++run_ >= kHecDelta) {
        state_ = State::kSync;
        run_ = 0;
      }
      break;
    case State::kSync:
      if (hec_valid) {
        run_ = 0;
      } else if (++run_ >= kHecAlpha) {
        state_ = State::kHunt;
        run_ = 0;
        ++sync_losses_;
      }
      break;
  }
  return state_;
}

void CellDelineation::reset() {
  state_ = State::kHunt;
  run_ = 0;
}

}  // namespace hni::atm
