#include "atm/cell.hpp"

#include <stdexcept>

#include "atm/hec.hpp"

namespace hni::atm {

std::string VcId::to_string() const {
  return std::to_string(vpi) + "/" + std::to_string(vci);
}

void encode_header(const CellHeader& header, HeaderFormat fmt,
                   std::span<std::uint8_t, 4> out) {
  const auto pti = static_cast<std::uint8_t>(header.pti);
  if (fmt == HeaderFormat::kUni) {
    if (header.gfc > 0x0F) throw std::out_of_range("GFC exceeds 4 bits");
    if (header.vc.vpi > 0xFF) throw std::out_of_range("UNI VPI exceeds 8 bits");
    out[0] = static_cast<std::uint8_t>((header.gfc << 4) |
                                       (header.vc.vpi >> 4));
  } else {
    if (header.vc.vpi > 0x0FFF) {
      throw std::out_of_range("NNI VPI exceeds 12 bits");
    }
    out[0] = static_cast<std::uint8_t>(header.vc.vpi >> 4);
  }
  out[1] = static_cast<std::uint8_t>(((header.vc.vpi & 0x0F) << 4) |
                                     (header.vc.vci >> 12));
  out[2] = static_cast<std::uint8_t>((header.vc.vci >> 4) & 0xFF);
  out[3] = static_cast<std::uint8_t>(((header.vc.vci & 0x0F) << 4) |
                                     (pti << 1) | (header.clp ? 1 : 0));
}

CellHeader decode_header(std::span<const std::uint8_t, 4> in,
                         HeaderFormat fmt) {
  CellHeader h;
  if (fmt == HeaderFormat::kUni) {
    h.gfc = static_cast<std::uint8_t>(in[0] >> 4);
    h.vc.vpi = static_cast<std::uint16_t>(((in[0] & 0x0F) << 4) |
                                          (in[1] >> 4));
  } else {
    h.gfc = 0;
    h.vc.vpi = static_cast<std::uint16_t>((in[0] << 4) | (in[1] >> 4));
  }
  h.vc.vci = static_cast<std::uint16_t>(((in[1] & 0x0F) << 12) |
                                        (in[2] << 4) | (in[3] >> 4));
  h.pti = static_cast<Pti>((in[3] >> 1) & 0x07);
  h.clp = (in[3] & 0x01) != 0;
  return h;
}

std::array<std::uint8_t, kCellSize> Cell::serialize(HeaderFormat fmt) const {
  std::array<std::uint8_t, kCellSize> wire{};
  encode_header(header, fmt, std::span<std::uint8_t, 4>(wire.data(), 4));
  wire[4] = hec_compute(std::span<const std::uint8_t, 4>(wire.data(), 4));
  std::copy(payload.begin(), payload.end(), wire.begin() + kHeaderSize);
  return wire;
}

Cell Cell::deserialize(std::span<const std::uint8_t, kCellSize> wire,
                       HeaderFormat fmt) {
  Cell cell;
  cell.header =
      decode_header(std::span<const std::uint8_t, 4>(wire.data(), 4), fmt);
  std::copy(wire.begin() + kHeaderSize, wire.end(), cell.payload.begin());
  return cell;
}

}  // namespace hni::atm
