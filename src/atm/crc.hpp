// Payload CRCs used by the ATM adaptation layers.
//
// CRC-10 — AAL3/4 SAR-PDU trailer check, generator
//          x^10 + x^9 + x^5 + x^4 + x + 1 (0x633), MSB-first, init 0.
//          The 10-bit FCS covers the SAR-PDU with the FCS field zeroed.
// CRC-32 — AAL5 CPCS trailer check, the IEEE 802.3 polynomial
//          0x04C11DB7, bit-reflected, init 0xFFFFFFFF, final XOR
//          0xFFFFFFFF (identical to Ethernet/zlib).
//
// In the real interface these run in dedicated hardware alongside the
// datapath; the simulation computes them for correctness of the AAL
// state machines and charges time for them only when a scenario chooses
// firmware (non-offloaded) CRC — see proc/firmware.hpp and bench A3.

#pragma once

#include <cstdint>
#include <span>

namespace hni::atm {

/// One-shot CRC-10 over `data` (FCS field must be zeroed by caller).
std::uint16_t crc10(std::span<const std::uint8_t> data);

/// Incremental CRC-32 (IEEE 802.3 / AAL5).
class Crc32 {
 public:
  /// Absorbs more payload octets.
  void update(std::span<const std::uint8_t> data);

  /// Final CRC value (may be called repeatedly; update() may continue).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

  void reset() { state_ = 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC-32 over `data`.
std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace hni::atm
