// ABR resource-management cell payload layout.
//
// A pared-down ATM Forum TM 4.0 RM cell: the PTI already says
// "resource management" (0b110); the payload carries a protocol id, a
// flag byte, and an explicit rate. Endpoints generate *backward* RM
// cells (BN set) from observed EFCI marks; switches running the ERICA
// loop stamp the max-min fair explicit rate into backward RM cells as
// they pass, each switch taking the min with what is already there, so
// the source sees the tightest bottleneck on the path.
//
//   payload[0]     protocol id (1)
//   payload[1]     flags: bit0 CI (congestion indication),
//                         bit1 BN (backward RM cell)
//   payload[2..5]  explicit rate, cells/second, u32 little-endian;
//                  0xFFFFFFFF means "no limit stamped yet"

#pragma once

#include <cstdint>

namespace hni::atm {

inline constexpr std::uint8_t kRmProtocolId = 1;
inline constexpr std::uint8_t kRmFlagCi = 0x01;
inline constexpr std::uint8_t kRmFlagBackward = 0x02;
inline constexpr std::uint32_t kRmErUnlimited = 0xFFFF'FFFFu;

inline bool rm_is_protocol(const std::uint8_t* payload) {
  return payload[0] == kRmProtocolId;
}
inline std::uint8_t rm_flags(const std::uint8_t* payload) {
  return payload[1];
}
inline void rm_set_flags(std::uint8_t* payload, std::uint8_t flags) {
  payload[1] = flags;
}
inline std::uint32_t rm_explicit_rate(const std::uint8_t* payload) {
  return static_cast<std::uint32_t>(payload[2]) |
         (static_cast<std::uint32_t>(payload[3]) << 8) |
         (static_cast<std::uint32_t>(payload[4]) << 16) |
         (static_cast<std::uint32_t>(payload[5]) << 24);
}
inline void rm_set_explicit_rate(std::uint8_t* payload, std::uint32_t er) {
  payload[2] = static_cast<std::uint8_t>(er);
  payload[3] = static_cast<std::uint8_t>(er >> 8);
  payload[4] = static_cast<std::uint8_t>(er >> 16);
  payload[5] = static_cast<std::uint8_t>(er >> 24);
}

}  // namespace hni::atm
