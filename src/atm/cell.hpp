// ATM cell representation and header codec (ITU-T I.361).
//
// A cell is 53 octets: a 5-octet header followed by a 48-octet payload.
// Two header formats exist; this library implements both:
//
//   UNI:  GFC(4) VPI(8)  VCI(16) PTI(3) CLP(1) HEC(8)
//   NNI:         VPI(12) VCI(16) PTI(3) CLP(1) HEC(8)
//
// The HEC octet is computed over the first four header octets by the
// hec module; encode() writes it, decode() verifies/corrects it there.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "sim/time.hpp"

namespace hni::atm {

inline constexpr std::size_t kCellSize = 53;
inline constexpr std::size_t kHeaderSize = 5;
inline constexpr std::size_t kPayloadSize = 48;
inline constexpr std::int64_t kCellBits = 8 * static_cast<std::int64_t>(kCellSize);

/// Virtual connection identifier: VPI + VCI pair.
struct VcId {
  std::uint16_t vpi = 0;  // 8 bits at UNI, 12 at NNI
  std::uint16_t vci = 0;  // 16 bits

  friend bool operator==(const VcId&, const VcId&) = default;
  friend auto operator<=>(const VcId&, const VcId&) = default;
  std::string to_string() const;
};

/// Widest VPI either header format carries (12 bits at the NNI).
inline constexpr std::uint16_t kMaxUniVpi = 0xFF;
inline constexpr std::uint16_t kMaxNniVpi = 0xFFF;

/// Packs a VC into the canonical 32-bit label every per-VC table keys
/// on: VPI in the high half, VCI in the low. The static_asserts pin the
/// field widths — if VcId is ever widened (a >16-bit VPI, say), packing
/// fails to compile instead of silently truncating the high bits, which
/// is exactly the bug a 12-bit NNI VPI would otherwise hit.
constexpr std::uint32_t vc_label(const VcId& vc) {
  static_assert(sizeof(vc.vpi) * 8 <= 16,
                "VPI no longer fits the label's high half");
  static_assert(sizeof(vc.vci) * 8 <= 16,
                "VCI no longer fits the label's low half");
  static_assert(kMaxNniVpi <= 0xFFFF, "NNI VPI exceeds the packed field");
  return (static_cast<std::uint32_t>(vc.vpi) << 16) |
         static_cast<std::uint32_t>(vc.vci);
}

/// Inverse of vc_label (the packing is bijective).
constexpr VcId vc_from_label(std::uint32_t label) {
  return VcId{static_cast<std::uint16_t>(label >> 16),
              static_cast<std::uint16_t>(label & 0xFFFF)};
}

/// Payload Type Indicator values (I.361). Bit 2 = AUU ("end of AAL5
/// frame" when set on user data), bit 1 = congestion experienced,
/// bit 3 distinguishes OAM from user cells.
enum class Pti : std::uint8_t {
  kUserData0 = 0b000,      // user data, no congestion, AUU=0
  kUserData1 = 0b001,      // user data, no congestion, AUU=1 (AAL5 end)
  kUserDataCong0 = 0b010,  // user data, congestion, AUU=0
  kUserDataCong1 = 0b011,  // user data, congestion, AUU=1
  kOamSegment = 0b100,
  kOamEndToEnd = 0b101,
  kResourceMgmt = 0b110,
  kReserved = 0b111,
};

/// True for the four user-data PTI codepoints.
constexpr bool pti_is_user_data(Pti pti) {
  return (static_cast<std::uint8_t>(pti) & 0b100) == 0;
}

/// True when the AUU bit is set on a user-data cell (marks the final
/// cell of an AAL5 CPCS-PDU).
constexpr bool pti_auu(Pti pti) {
  return pti_is_user_data(pti) && (static_cast<std::uint8_t>(pti) & 0b001);
}

/// True when a user-data cell carries the EFCI congestion-experienced
/// mark (a congested queue on the path set it).
constexpr bool pti_efci(Pti pti) {
  return pti_is_user_data(pti) &&
         (static_cast<std::uint8_t>(pti) & 0b010) != 0;
}

/// The congestion-marked variant of a user-data codepoint; the AUU
/// (end-of-PDU) bit is preserved. Non-user-data codepoints pass through
/// unchanged.
constexpr Pti pti_with_efci(Pti pti) {
  return pti_is_user_data(pti)
             ? static_cast<Pti>(static_cast<std::uint8_t>(pti) | 0b010)
             : pti;
}

/// Header format selector.
enum class HeaderFormat : std::uint8_t { kUni, kNni };

/// Decoded cell header fields.
struct CellHeader {
  std::uint8_t gfc = 0;  // UNI only, 4 bits
  VcId vc;
  Pti pti = Pti::kUserData0;
  bool clp = false;  // cell loss priority (1 = discard-eligible)

  friend bool operator==(const CellHeader&, const CellHeader&) = default;
};

/// Serializes the header fields into the first 4 octets of `out`
/// (HEC, octet 5, is appended by the caller via atm::hec_compute).
/// Throws std::out_of_range if a field exceeds its width for `fmt`.
void encode_header(const CellHeader& header, HeaderFormat fmt,
                   std::span<std::uint8_t, 4> out);

/// Parses the first 4 octets of a received header.
CellHeader decode_header(std::span<const std::uint8_t, 4> in,
                         HeaderFormat fmt);

/// A full ATM cell. `meta` carries simulation-only bookkeeping (never
/// serialized, never counted against wire bits).
struct Cell {
  CellHeader header;
  std::array<std::uint8_t, kPayloadSize> payload{};

  /// Simulation-side metadata.
  struct Meta {
    sim::Time created = 0;     // when the sender emitted the cell
    std::uint64_t seq = 0;     // global emission sequence, for tracing
  } meta;

  /// Serializes to 53 wire octets, computing and appending the HEC.
  std::array<std::uint8_t, kCellSize> serialize(HeaderFormat fmt) const;

  /// Deserializes 53 wire octets. Does not verify the HEC (that is the
  /// receiver PHY's job; see atm::HecReceiver).
  static Cell deserialize(std::span<const std::uint8_t, kCellSize> wire,
                          HeaderFormat fmt);
};

}  // namespace hni::atm

template <>
struct std::hash<hni::atm::VcId> {
  std::size_t operator()(const hni::atm::VcId& vc) const noexcept {
    return std::hash<std::uint32_t>{}(hni::atm::vc_label(vc));
  }
};
