// Physical-layer model: SONET-carried ATM cell pacing.
//
// The paper's interface targets SONET STS-3c (155.52 Mb/s line rate) and
// STS-12c (622.08 Mb/s). SONET section/line/path overhead leaves a
// synchronous payload envelope of 149.760 Mb/s (STS-3c) resp.
// 599.040 Mb/s (STS-12c) for cells; back-to-back cells therefore occupy
// a fixed slot of 53*8 / payload_rate: 2.831 us at STS-3c, 707.7 ns at
// STS-12c. Only the slot time and payload rate enter the paper's
// analysis, so the model is exactly that: a slot clock. Unused slots
// carry idle cells, which receivers drop.
//
// TxFramer pulls cells from a supplier at each slot boundary; RxFramer
// delivers cells after one slot of serialization delay and runs the HEC
// receiver (optionally injecting header bit errors upstream — that is
// the link model's job, see net/link.hpp).

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "atm/cell.hpp"
#include "sim/simulator.hpp"
#include "sim/stats.hpp"

namespace hni::atm {

/// A physical line description.
struct LineRate {
  std::string name;
  double line_bps = 0.0;     // gross line rate (reporting only)
  double payload_bps = 0.0;  // cell payload capacity actually paced on

  /// Duration of one 53-octet cell slot at the payload rate.
  sim::Time cell_slot() const {
    return sim::serialization_time(kCellBits, payload_bps);
  }

  /// Cells per second of payload capacity.
  double cells_per_second() const {
    return payload_bps / static_cast<double>(kCellBits);
  }
};

/// SONET STS-3c: 155.52 Mb/s line, 149.760 Mb/s payload (~353,208 cells/s).
LineRate sts3c();

/// SONET STS-12c: 622.08 Mb/s line, 599.040 Mb/s payload (~1,412,830 cells/s).
LineRate sts12c();

/// A custom rate with negligible framing overhead (for sweeps).
LineRate raw_rate(double bps, std::string name = "raw");

/// Transmit framer: a free-running slot clock. At each slot boundary it
/// asks `supplier` for a cell; if none is ready the slot carries an idle
/// cell (counted, not delivered). Produced cells are handed to `sink`
/// after one slot of serialization.
class TxFramer {
 public:
  using Supplier = std::function<std::optional<Cell>()>;
  using Sink = std::function<void(const Cell&)>;

  TxFramer(sim::Simulator& sim, LineRate rate);

  /// Installs the cell source. Must be set before start().
  void set_supplier(Supplier supplier) { supplier_ = std::move(supplier); }
  /// Installs the downstream consumer (typically a net::Link).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Models oscillator inaccuracy: the slot clock runs `ppm` parts per
  /// million fast (+) or slow (-). Real SONET clocks are +-20..50 ppm;
  /// without this, independent framers stay phase-locked forever and
  /// contention experiments see unrealistically clean drop patterns.
  /// Call before start().
  void set_clock_ppm(double ppm);

  /// Starts the slot clock at the current simulation time.
  void start();
  /// Stops the slot clock after the in-flight slot.
  void stop() { running_ = false; }

  const LineRate& rate() const { return rate_; }
  std::uint64_t cells_sent() const { return cells_sent_.value(); }
  std::uint64_t idle_slots() const { return idle_slots_.value(); }

  /// Fraction of elapsed slots that carried a live cell.
  double utilization() const;

 private:
  void on_slot();

  sim::Simulator& sim_;
  LineRate rate_;
  sim::Time slot_;  // effective slot (nominal +- ppm)
  Supplier supplier_;
  Sink sink_;
  bool running_ = false;
  sim::Counter cells_sent_;
  sim::Counter idle_slots_;
};

}  // namespace hni::atm
