// Network-side signalling: the call agent, topology provisioning, and
// automatic protection switching over a multi-switch fabric.
//
// A SignalingNetwork owns a dedicated agent station on one port of one
// switch of the fabric. Every endpoint's signalling VC (0/5) is
// provisioned as a permanent relay path to the agent — across trunks
// when the endpoint lives on another switch; the agent terminates the
// protocol:
//
//   SETUP   : resolve the called party -> its attachment point, compute
//             a trunk path between the two edge switches, allocate one
//             VCI per endpoint leg and one per trunk hop, forward SETUP
//             (with the callee's VC) to the callee; a *duplicate* SETUP
//             (endpoint retransmission) re-answers from the stored call
//             instead of allocating a second set of VCIs;
//   CONNECT : program the duplex route hop by hop at every switch on
//             the path, install UPC policers/meters at the two ingress
//             switches when the call carries a traffic contract,
//             forward CONNECT (with the caller's VC) to the caller —
//             idempotently on duplicates;
//   RELEASE : tear every hop down, relay to the peer; RELEASE for an
//             unknown call is confirmed directly (the endpoint is
//             retransmitting after completion);
//   RELEASE COMPLETE: free the leg and trunk VCIs, finish the call.
//
// On top of the handshake the agent runs the robustness machinery:
//
//   * a periodic *status audit* that reconciles its call table against
//     endpoint state (STATUS ENQUIRY / STATUS) and against every
//     switch's route table, reclaiming half-open calls, stranded VCIs
//     and stale routes after `audit_strikes` suspect rounds;
//   * RESTART/RESTART-ACK with a T316 retransmit timer: after
//     crash_restart() wipes the agent's volatile state, endpoints are
//     told to clear everything and the whole fabric is swept of orphan
//     routes;
//   * automatic protection switching: the agent watches every trunk's
//     links. When a trunk fails (and after `protection.holdoff`, so a
//     flap does not thrash the fabric), each affected call is rerouted
//     onto an alternate trunk path — CAC-checked on the new path,
//     contracted calls first, old hops torn down, endpoint-facing VCIs
//     untouched so neither endpoint renegotiates. Signalling relay
//     paths are rerouted the same way (before the calls, so control
//     reachability recovers first). When the failed trunk returns, and
//     stays up for `protection.revert_delay`, protected calls revert to
//     their primary path. Endpoints also *report* defects: a NIC-level
//     AIS/loss-of-continuity alarm on a data VC arrives as STATUS with
//     cause 27 (destination out of order) and triggers the same sweep,
//     closing the loop even when the agent's own trunk observer lost.
//
// Everything — agent processing time, signalling transport, route
// programming — happens through the same simulated substrate as user
// data, so call-setup and failure-restoration latency are emergent,
// measurable quantities.
//
// The per-endpoint signalling relay uses well-known VCIs (k = endpoint
// attach index):
//   endpoint k -> agent:   (ep port, 0/5) -> ... -> (agent, 0/64+k)
//   agent -> endpoint k:   (agent, 0/32+k) -> ... -> (ep port, 0/5)
// with 0/128+k on any intermediate trunk hop. All of these sit below
// `first_data_vci`, so the data-route sweeps never touch them.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/testbed.hpp"
#include "sig/call_control.hpp"
#include "sig/messages.hpp"

namespace hni::sig {

struct SignalingConfig {
  std::uint16_t first_data_vci = 1000;  // allocated upward per port/trunk
  std::size_t max_vcs_per_port = 256;
  /// CDVT granted by installed policers, as a multiple of the cell slot.
  double police_cdvt_slots = 10.0;
  /// Burst depths (in cells) of the trTCM meter installed for VBR calls
  /// (SETUPs carrying an SCR alongside the PCR): committed and peak
  /// bucket sizes respectively.
  std::size_t meter_cbs_cells = 10;
  std::size_t meter_pbs_cells = 10;
  /// Timer/retransmission policy handed to every attached endpoint.
  CallControlConfig endpoint{};
  /// Status-audit cadence; 0 disables the audit (no reclamation).
  sim::Time audit_period = sim::milliseconds(5);
  /// Consecutive suspect audit rounds before a call is reclaimed.
  unsigned audit_strikes = 2;
  /// RESTART retransmit interval and retry bound (T316).
  sim::Time t316 = sim::milliseconds(1);
  unsigned t316_retries = 16;
  /// Connection admission control: fraction of each output port's line
  /// rate the agent will commit to contracted (PCR > 0) calls, applied
  /// to *every* output port along the call's path (trunk hops
  /// included). A SETUP whose PCR would push any hop's committed
  /// capacity past `cac_utilization * port_rate` is refused with
  /// Cause::kResourceUnavailable. 0 disables admission control
  /// (every call is admitted, the pre-CAC behaviour).
  double cac_utilization = 0.0;
  /// Automatic protection switching policy.
  struct ProtectionConfig {
    bool enabled = false;
    /// Wait after a trunk-down edge before rerouting (flap damping).
    sim::Time holdoff = sim::microseconds(50);
    /// How long a recovered trunk must stay up before protected calls
    /// revert to their primary path (wait-to-restore).
    sim::Time revert_delay = sim::milliseconds(2);
  } protection{};
  /// Seed stream for the message taps (fault injection).
  std::uint64_t fault_seed = 0x51C;
};

class SignalingNetwork {
 public:
  /// Multi-switch fabric: `switches` are the fabric nodes (indexed by
  /// position), the agent station is created on `agent_port` of
  /// `switches[agent_switch]`. Wire trunks with add_trunk() *before*
  /// attaching endpoints on other switches.
  SignalingNetwork(core::Testbed& bed, std::vector<net::Switch*> switches,
                   std::size_t agent_switch, std::size_t agent_port,
                   SignalingConfig config = {});

  /// Single-switch convenience (the historical topology).
  SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                   std::size_t agent_port, SignalingConfig config = {});

  /// Wires a duplex inter-switch trunk between `switches[sw_a]` port
  /// `port_a` and `switches[sw_b]` port `port_b`, and registers it for
  /// protection monitoring. Returns the trunk id.
  std::size_t add_trunk(std::size_t sw_a, std::size_t port_a,
                        std::size_t sw_b, std::size_t port_b,
                        net::LossModel loss = {},
                        sim::Time propagation = sim::microseconds(5));

  /// Both simplex links of trunk `id` ({a->b, b->a}) — the fault
  /// injection surface for trunk-failure scenarios.
  std::pair<net::Link*, net::Link*> trunk_links(std::size_t id) {
    return {trunks_.at(id).ab, trunks_.at(id).ba};
  }
  bool trunk_down(std::size_t id) const { return trunks_.at(id).down; }
  std::size_t trunk_count() const { return trunks_.size(); }

  /// Wires `station` to port `port` of `switches[sw]` (duplex),
  /// provisions its signalling relay to the agent, and registers it
  /// under address `party`. Returns the endpoint's call control.
  CallControl& attach(core::Station& station, std::size_t sw,
                      std::size_t port, std::uint16_t party);

  /// Single-switch convenience: attaches to switch 0.
  CallControl& attach(core::Station& station, std::size_t port,
                      std::uint16_t party) {
    return attach(station, 0, port, party);
  }

  core::Station& agent() { return *agent_; }

  /// Simulates an agent process crash-and-restart: all volatile call
  /// state (call table, VCI allocators, CAC books) is lost. Recovery
  /// sweeps every switch of orphan routes and sends RESTART to every
  /// endpoint, retransmitting on T316 until each acknowledges.
  void crash_restart();

  /// The agent's outgoing-message fault tap (chaos injection point for
  /// the agent->endpoint direction).
  MessageTap& agent_tap() { return tap_; }

  std::uint64_t calls_routed() const { return calls_routed_.value(); }
  std::uint64_t calls_refused() const { return calls_refused_.value(); }
  /// SETUPs refused by admission control specifically.
  std::uint64_t calls_refused_cac() const {
    return calls_refused_cac_.value();
  }
  /// PCR (cells/s) currently committed to admitted calls on output
  /// `port` of switch `sw`.
  double committed_pcr(std::size_t sw, std::size_t port) const {
    const auto it = committed_pcr_.find(cac_key(sw, port));
    return it != committed_pcr_.end() ? it->second : 0.0;
  }
  /// Single-switch convenience (switch 0).
  double committed_pcr(std::size_t port) const {
    return committed_pcr(0, port);
  }
  std::size_t active_calls() const { return calls_.size(); }
  std::uint64_t duplicate_setups() const { return duplicate_setups_.value(); }
  std::uint64_t audit_ticks() const { return audit_ticks_.value(); }
  std::uint64_t enquiries_sent() const { return enquiries_.value(); }
  /// Calls reclaimed by the status audit (not via the handshake).
  std::uint64_t calls_reclaimed() const { return calls_reclaimed_.value(); }
  std::uint64_t vcis_reclaimed() const { return vcis_reclaimed_.value(); }
  /// Stale switch routes removed by reconciliation.
  std::uint64_t routes_reclaimed() const { return routes_reclaimed_.value(); }
  std::uint64_t restarts_sent() const { return restarts_sent_.value(); }
  std::uint64_t restart_acks() const { return restart_acks_.value(); }
  std::uint64_t malformed_frames() const { return malformed_.value(); }
  /// Protection books: calls moved off a failed trunk path, calls moved
  /// back to their primary path, and reroute attempts that found no
  /// admissible alternate (no path, no VCIs, or CAC refusal).
  std::uint64_t reroutes() const { return reroutes_.value(); }
  std::uint64_t reverts() const { return reverts_.value(); }
  std::uint64_t reroutes_failed() const { return reroutes_failed_.value(); }
  /// Signalling relay paths moved by protection (either direction).
  std::uint64_t sig_reroutes() const { return sig_reroutes_.value(); }
  /// Calls currently riding an alternate (non-primary) path.
  std::size_t calls_on_protection() const;

  /// VCIs currently allocated but owned by no active call — the leak
  /// the audit exists to drive to zero. Counts endpoint-leg and
  /// trunk-hop allocators alike.
  std::size_t stranded_vcis() const;
  /// Data routes anywhere in the fabric owned by no active call.
  std::size_t stranded_routes() const;

  /// Registers the signalling plane's conservation identities:
  /// every allocated VCI (endpoint leg or trunk hop) is owned by
  /// exactly one active call or on its free list; every switch carries
  /// exactly the data routes of the calls routed through it; the CAC
  /// books balance per output port; each endpoint's NIC table matches
  /// its call state.
  void audit_invariants(core::InvariantAuditor& auditor);

 private:
  /// One hop of programmed fabric state: (switch, input port, VC).
  struct RouteKey {
    std::size_t sw = 0;
    std::size_t in_port = 0;
    atm::VcId vc{};
  };
  struct Endpoint {
    std::size_t sw = 0;
    std::size_t port = 0;
    std::uint16_t party = 0;
    // Signalling relay state (provisioned, survives crash_restart).
    std::vector<std::size_t> sig_path;     // trunk ids, endpoint -> agent
    std::vector<std::size_t> sig_primary;  // as provisioned at attach
    std::vector<RouteKey> sig_routes;
    bool sig_on_protection = false;
  };
  struct Trunk {
    std::size_t sw_a = 0;
    std::size_t port_a = 0;
    std::size_t sw_b = 0;
    std::size_t port_b = 0;
    net::Link* ab = nullptr;
    net::Link* ba = nullptr;
    bool down = false;
    std::uint64_t epoch = 0;  // invalidates holdoff/revert timers
  };
  struct AgentCall {
    std::size_t caller_ep = 0;  // endpoint indices, not ports
    std::size_t callee_ep = 0;
    std::uint16_t caller_party = 0;
    std::uint16_t callee_party = 0;
    atm::VcId caller_vc{};
    atm::VcId callee_vc{};
    double pcr = 0.0;
    double scr = 0.0;            // > 0 selects a trTCM meter over GCRA
    std::uint16_t weight = 1;    // DWRR share at the output queues
    bool abr = false;            // ERICA explicit-rate participant
    bool routed = false;
    bool cac_committed = false;  // pcr is counted in the CAC books
    sim::Time created = 0;      // for the audit's grace period
    unsigned strikes = 0;       // consecutive suspect audit rounds
    unsigned enquiries_outstanding = 0;
    // Path state: trunk ids caller -> callee, one allocated VCI per
    // trunk hop (shared by both directions — the two directions enter
    // different switches, so the (in_port, VCI) keys never collide).
    std::vector<std::size_t> path;
    std::vector<std::uint16_t> trunk_vcis;
    std::vector<std::size_t> primary_path;  // as admitted at SETUP
    bool on_protection = false;
    std::vector<RouteKey> routes;        // hops programmed (when routed)
    std::vector<std::size_t> cac_keys;   // output ports committed
    // Reroute attempts are retried only after the fabric changes again:
    // with no trunk transition since the last refusal, the answer
    // cannot have improved, and every extra sweep would double-count.
    std::uint64_t reroute_failed_epoch = ~0ull;
  };
  struct RestartState {
    bool pending = false;
    unsigned attempts = 0;
    sim::EventHandle timer;
  };

  static std::size_t cac_key(std::size_t sw, std::size_t port) {
    return (sw << 8) | port;
  }
  /// VCI-allocator keys: endpoint legs by attach index, trunks by id.
  static std::uint32_t ep_key(std::size_t ep) {
    return (1u << 24) | static_cast<std::uint32_t>(ep);
  }
  static std::uint32_t trunk_key(std::size_t trunk) {
    return (2u << 24) | static_cast<std::uint32_t>(trunk);
  }
  atm::VcId agent_tx_vc(std::size_t ep) const {
    return {0, static_cast<std::uint16_t>(32 + ep)};
  }
  atm::VcId agent_rx_vc(std::size_t ep) const {
    return {0, static_cast<std::uint16_t>(64 + ep)};
  }
  atm::VcId sig_hop_vc(std::size_t ep) const {
    return {0, static_cast<std::uint16_t>(128 + ep)};
  }

  void on_frame(std::size_t ep, aal::Bytes sdu);
  void handle_setup(std::size_t from_ep, const Message& m);
  void handle_connect(const Message& m);
  void handle_release(std::size_t from_ep, const Message& m);
  void handle_release_complete(const Message& m);
  void handle_status(const Message& m);
  void handle_restart_ack(std::size_t from_ep);
  void send_to_endpoint(std::size_t ep, const Message& m);
  void refuse(std::size_t ep, const Message& setup, Cause cause);
  std::optional<std::uint16_t> allocate_vci(std::uint32_t key);
  void free_vci(std::uint32_t key, std::uint16_t vci);
  /// Shortest trunk path between two switches (BFS, lowest trunk id
  /// first — deterministic); empty path when src == dst, nullopt when
  /// unreachable. With `avoid_down`, failed trunks are not edges.
  std::optional<std::vector<std::size_t>> find_path(std::size_t from_sw,
                                                    std::size_t to_sw,
                                                    bool avoid_down) const;
  /// The trunk's exit port on `sw` and the far side it leads to.
  void trunk_exit(std::size_t trunk, std::size_t sw, std::size_t& tx_port,
                  std::size_t& peer_sw, std::size_t& peer_port) const;
  /// Programs one simplex direction hop by hop; appends each programmed
  /// (switch, in_port, vc) to `routes`.
  void program_direction(std::size_t src_sw, std::size_t src_port,
                         atm::VcId src_vc, std::size_t dst_port,
                         atm::VcId dst_vc,
                         const std::vector<std::size_t>& path,
                         const std::vector<atm::VcId>& hop_vcs,
                         std::uint16_t weight, bool abr,
                         std::vector<RouteKey>& routes);
  /// Every output port (as a CAC key) the call occupies on `path`,
  /// both directions.
  std::vector<std::size_t> path_cac_keys(
      const AgentCall& call, const std::vector<std::size_t>& path) const;
  bool cac_admits_keys(const std::vector<std::size_t>& keys,
                       double pcr) const;
  void cac_apply(const std::vector<std::size_t>& keys, double pcr);
  void cac_release(AgentCall& call);
  void program_routes(AgentCall& call);
  void remove_routes(AgentCall& call);
  /// Moves the call onto `to_primary ? primary : freshly-computed`
  /// path: CAC re-checked, trunk VCIs reallocated, hops reprogrammed,
  /// endpoint-facing VCIs untouched. `trigger` is the trunk that
  /// caused the move (trace only).
  bool reroute_call(std::uint32_t call_id, bool to_primary,
                    std::size_t trigger);
  void program_sig_relay(std::size_t ep);
  void remove_sig_relay(std::size_t ep);
  bool reroute_sig(std::size_t ep, bool to_primary);
  bool path_has_down_trunk(const std::vector<std::size_t>& path) const;
  bool path_all_up(const std::vector<std::size_t>& path) const;
  void on_trunk_state(std::size_t trunk);
  /// Reroutes every signalling relay and routed call whose current
  /// path crosses a failed trunk (contracted calls first).
  void protect_sweep();
  /// Reverts protected relays/calls whose primary path is whole again.
  void revert_sweep();
  const Endpoint* endpoint_by_party(std::uint16_t party) const;
  std::size_t endpoint_index(const Endpoint* e) const;
  bool route_owned(std::size_t sw, std::size_t in_port, atm::VcId vc) const;
  void audit_tick();
  void ensure_audit_timer();
  void reclaim_call(std::uint32_t call_id, Cause cause);
  void reconcile_routes();
  void send_restart(std::size_t ep);
  void trace(sim::TraceEventId id, std::uint32_t a, std::uint32_t b,
             std::uint64_t seq);

  core::Testbed& bed_;
  std::vector<net::Switch*> switches_;
  std::size_t agent_sw_;
  std::size_t agent_port_;
  SignalingConfig config_;
  core::Station* agent_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t source_ = 0;
  MessageTap tap_;
  std::vector<Endpoint> endpoints_;
  std::vector<Trunk> trunks_;
  std::vector<std::unique_ptr<CallControl>> controls_;
  std::unordered_map<std::uint32_t, AgentCall> calls_;
  std::unordered_map<std::uint32_t, std::vector<std::uint16_t>> free_vcis_;
  std::unordered_map<std::uint32_t, std::uint16_t> next_vci_;
  // CAC books: PCR committed per (switch, output port) to admitted calls.
  std::unordered_map<std::size_t, double> committed_pcr_;
  std::unordered_map<std::size_t, RestartState> restarts_;
  bool audit_armed_ = false;
  std::uint32_t restart_instance_ = 0;
  std::uint64_t fabric_epoch_ = 0;  // bumped on every trunk transition
  bool defect_sweep_pending_ = false;
  sim::Counter calls_routed_;
  sim::Counter calls_refused_;
  sim::Counter calls_refused_cac_;
  sim::Counter duplicate_setups_;
  sim::Counter audit_ticks_;
  sim::Counter enquiries_;
  sim::Counter calls_reclaimed_;
  sim::Counter vcis_reclaimed_;
  sim::Counter routes_reclaimed_;
  sim::Counter restarts_sent_;
  sim::Counter restart_acks_;
  sim::Counter malformed_;
  sim::Counter reroutes_;
  sim::Counter reverts_;
  sim::Counter reroutes_failed_;
  sim::Counter sig_reroutes_;
};

}  // namespace hni::sig
