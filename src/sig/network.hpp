// Network-side signalling: the call agent and topology provisioning.
//
// A SignalingNetwork owns a dedicated agent station on one port of an
// ATM switch. Every endpoint's signalling VC (0/5) is provisioned as a
// permanent path to the agent; the agent terminates the protocol:
//
//   SETUP   : resolve the called party -> its port, allocate one VCI
//             per leg, forward SETUP (with the callee's VC) to the
//             callee; a *duplicate* SETUP (endpoint retransmission)
//             re-answers from the stored call instead of allocating
//             a second pair of VCIs;
//   CONNECT : program the switch's duplex route between the legs,
//             install UPC policers when the call carries a traffic
//             contract, forward CONNECT (with the caller's VC) to the
//             caller — idempotently on duplicates;
//   RELEASE : tear the routes down, relay to the peer; RELEASE for an
//             unknown call is confirmed directly (the endpoint is
//             retransmitting after completion);
//   RELEASE COMPLETE: free the VCIs, finish the call.
//
// On top of the handshake the agent runs the robustness machinery:
//
//   * a periodic *status audit* that reconciles its call table against
//     endpoint state (STATUS ENQUIRY / STATUS) and against the switch's
//     route table, reclaiming half-open calls, stranded VCIs and stale
//     routes after `audit_strikes` suspect rounds;
//   * RESTART/RESTART-ACK with a T316 retransmit timer: after
//     crash_restart() wipes the agent's volatile state, endpoints are
//     told to clear everything and the fabric is swept of orphan
//     routes.
//
// Everything — agent processing time, signalling transport, route
// programming — happens through the same simulated substrate as user
// data, so call-setup latency is an emergent, measurable quantity.
//
// The per-port signalling relay uses well-known VCIs:
//   endpoint at port p -> agent:   (p, 0/5)        -> (agent, 0/64+p)
//   agent -> endpoint at port p:   (agent, 0/32+p) -> (p, 0/5)

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/testbed.hpp"
#include "sig/call_control.hpp"
#include "sig/messages.hpp"

namespace hni::sig {

struct SignalingConfig {
  std::uint16_t first_data_vci = 1000;  // allocated upward per port
  std::size_t max_vcs_per_port = 256;
  /// CDVT granted by installed policers, as a multiple of the cell slot.
  double police_cdvt_slots = 10.0;
  /// Burst depths (in cells) of the trTCM meter installed for VBR calls
  /// (SETUPs carrying an SCR alongside the PCR): committed and peak
  /// bucket sizes respectively.
  std::size_t meter_cbs_cells = 10;
  std::size_t meter_pbs_cells = 10;
  /// Timer/retransmission policy handed to every attached endpoint.
  CallControlConfig endpoint{};
  /// Status-audit cadence; 0 disables the audit (no reclamation).
  sim::Time audit_period = sim::milliseconds(5);
  /// Consecutive suspect audit rounds before a call is reclaimed.
  unsigned audit_strikes = 2;
  /// RESTART retransmit interval and retry bound (T316).
  sim::Time t316 = sim::milliseconds(1);
  unsigned t316_retries = 16;
  /// Connection admission control: fraction of each output port's line
  /// rate the agent will commit to contracted (PCR > 0) calls. A SETUP
  /// whose PCR would push either leg's committed capacity past
  /// `cac_utilization * port_rate` is refused with
  /// Cause::kResourceUnavailable. 0 disables admission control
  /// (every call is admitted, the pre-CAC behaviour).
  double cac_utilization = 0.0;
  /// Seed stream for the message taps (fault injection).
  std::uint64_t fault_seed = 0x51C;
};

class SignalingNetwork {
 public:
  /// `agent_port` must be a free port on `sw`; the network creates and
  /// wires its agent station there.
  SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                   std::size_t agent_port, SignalingConfig config = {});

  /// Wires `station` to switch port `port` (duplex) and registers it
  /// under address `party`. Returns the endpoint's call control.
  CallControl& attach(core::Station& station, std::size_t port,
                      std::uint16_t party);

  core::Station& agent() { return *agent_; }

  /// Simulates an agent process crash-and-restart: all volatile call
  /// state (call table, VCI allocators) is lost. Recovery sweeps the
  /// switch of orphan routes and sends RESTART to every endpoint,
  /// retransmitting on T316 until each acknowledges.
  void crash_restart();

  /// The agent's outgoing-message fault tap (chaos injection point for
  /// the agent->endpoint direction).
  MessageTap& agent_tap() { return tap_; }

  std::uint64_t calls_routed() const { return calls_routed_.value(); }
  std::uint64_t calls_refused() const { return calls_refused_.value(); }
  /// SETUPs refused by admission control specifically.
  std::uint64_t calls_refused_cac() const {
    return calls_refused_cac_.value();
  }
  /// PCR (cells/s) currently committed to admitted calls on `port`.
  double committed_pcr(std::size_t port) const {
    const auto it = committed_pcr_.find(port);
    return it != committed_pcr_.end() ? it->second : 0.0;
  }
  std::size_t active_calls() const { return calls_.size(); }
  std::uint64_t duplicate_setups() const { return duplicate_setups_.value(); }
  std::uint64_t audit_ticks() const { return audit_ticks_.value(); }
  std::uint64_t enquiries_sent() const { return enquiries_.value(); }
  /// Calls reclaimed by the status audit (not via the handshake).
  std::uint64_t calls_reclaimed() const { return calls_reclaimed_.value(); }
  std::uint64_t vcis_reclaimed() const { return vcis_reclaimed_.value(); }
  /// Stale switch routes removed by reconciliation.
  std::uint64_t routes_reclaimed() const { return routes_reclaimed_.value(); }
  std::uint64_t restarts_sent() const { return restarts_sent_.value(); }
  std::uint64_t restart_acks() const { return restart_acks_.value(); }
  std::uint64_t malformed_frames() const { return malformed_.value(); }

  /// VCIs currently allocated but owned by no active call — the leak
  /// the audit exists to drive to zero.
  std::size_t stranded_vcis() const;
  /// Data routes in the switch owned by no active call.
  std::size_t stranded_routes() const;

  /// Registers the signalling plane's conservation identities:
  /// every allocated VCI is owned by exactly one active call or on the
  /// free list; the switch carries exactly two data routes per routed
  /// call; each endpoint's NIC table matches its call state.
  void audit_invariants(core::InvariantAuditor& auditor);

 private:
  struct Endpoint {
    std::size_t port = 0;
    std::uint16_t party = 0;
  };
  struct AgentCall {
    std::size_t caller_port = 0;
    std::size_t callee_port = 0;
    std::uint16_t caller_party = 0;
    std::uint16_t callee_party = 0;
    atm::VcId caller_vc{};
    atm::VcId callee_vc{};
    double pcr = 0.0;
    double scr = 0.0;            // > 0 selects a trTCM meter over GCRA
    std::uint16_t weight = 1;    // DWRR share at the output queues
    bool abr = false;            // ERICA explicit-rate participant
    bool routed = false;
    bool cac_committed = false;  // pcr is counted in the CAC books
    sim::Time created = 0;      // for the audit's grace period
    unsigned strikes = 0;       // consecutive suspect audit rounds
    unsigned enquiries_outstanding = 0;
  };
  struct RestartState {
    bool pending = false;
    unsigned attempts = 0;
    sim::EventHandle timer;
  };

  atm::VcId agent_tx_vc(std::size_t port) const {
    return {0, static_cast<std::uint16_t>(32 + port)};
  }
  atm::VcId agent_rx_vc(std::size_t port) const {
    return {0, static_cast<std::uint16_t>(64 + port)};
  }

  void on_frame(std::size_t from_port, aal::Bytes sdu);
  void handle_setup(std::size_t from_port, const Message& m);
  void handle_connect(const Message& m);
  void handle_release(std::size_t from_port, const Message& m);
  void handle_release_complete(const Message& m);
  void handle_status(const Message& m);
  void handle_restart_ack(std::size_t from_port);
  void send_to_port(std::size_t port, const Message& m);
  void refuse(std::size_t port, const Message& setup, Cause cause);
  std::optional<std::uint16_t> allocate_vci(std::size_t port);
  void free_vci(std::size_t port, std::uint16_t vci);
  bool cac_admits(std::size_t caller_port, std::size_t callee_port,
                  double pcr) const;
  void cac_commit(AgentCall& call);
  void cac_release(const AgentCall& call);
  void program_routes(const AgentCall& call);
  void remove_routes(const AgentCall& call);
  const Endpoint* endpoint_by_party(std::uint16_t party) const;
  bool owns_route(std::size_t in_port, atm::VcId vc) const;
  void audit_tick();
  void ensure_audit_timer();
  void reclaim_call(std::uint32_t call_id, Cause cause);
  void reconcile_routes();
  void send_restart(std::size_t port);
  void trace(sim::TraceEventId id, std::uint32_t a, std::uint32_t b,
             std::uint64_t seq);

  core::Testbed& bed_;
  net::Switch& sw_;
  std::size_t agent_port_;
  SignalingConfig config_;
  core::Station* agent_ = nullptr;
  sim::Tracer* tracer_ = nullptr;
  std::uint16_t source_ = 0;
  MessageTap tap_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<CallControl>> controls_;
  std::unordered_map<std::uint32_t, AgentCall> calls_;
  std::unordered_map<std::size_t, std::vector<std::uint16_t>> free_vcis_;
  std::unordered_map<std::size_t, std::uint16_t> next_vci_;
  // CAC books: PCR committed per output port to admitted calls.
  std::unordered_map<std::size_t, double> committed_pcr_;
  std::unordered_map<std::size_t, RestartState> restarts_;
  bool audit_armed_ = false;
  std::uint32_t restart_instance_ = 0;
  sim::Counter calls_routed_;
  sim::Counter calls_refused_;
  sim::Counter calls_refused_cac_;
  sim::Counter duplicate_setups_;
  sim::Counter audit_ticks_;
  sim::Counter enquiries_;
  sim::Counter calls_reclaimed_;
  sim::Counter vcis_reclaimed_;
  sim::Counter routes_reclaimed_;
  sim::Counter restarts_sent_;
  sim::Counter restart_acks_;
  sim::Counter malformed_;
};

}  // namespace hni::sig
