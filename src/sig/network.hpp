// Network-side signalling: the call agent and topology provisioning.
//
// A SignalingNetwork owns a dedicated agent station on one port of an
// ATM switch. Every endpoint's signalling VC (0/5) is provisioned as a
// permanent path to the agent; the agent terminates the protocol:
//
//   SETUP   : resolve the called party -> its port, allocate one VCI
//             per leg, forward SETUP (with the callee's VC) to the
//             callee;
//   CONNECT : program the switch's duplex route between the legs,
//             install UPC policers when the call carries a traffic
//             contract, forward CONNECT (with the caller's VC) to the
//             caller;
//   RELEASE : tear the routes down, free the VCIs, relay to the peer.
//
// Everything — agent processing time, signalling transport, route
// programming — happens through the same simulated substrate as user
// data, so call-setup latency is an emergent, measurable quantity.
//
// The per-port signalling relay uses well-known VCIs:
//   endpoint at port p -> agent:   (p, 0/5)        -> (agent, 0/64+p)
//   agent -> endpoint at port p:   (agent, 0/32+p) -> (p, 0/5)

#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/testbed.hpp"
#include "sig/call_control.hpp"
#include "sig/messages.hpp"

namespace hni::sig {

struct SignalingConfig {
  std::uint16_t first_data_vci = 1000;  // allocated upward per port
  std::size_t max_vcs_per_port = 256;
  /// CDVT granted by installed policers, as a multiple of the cell slot.
  double police_cdvt_slots = 10.0;
};

class SignalingNetwork {
 public:
  /// `agent_port` must be a free port on `sw`; the network creates and
  /// wires its agent station there.
  SignalingNetwork(core::Testbed& bed, net::Switch& sw,
                   std::size_t agent_port, SignalingConfig config = {});

  /// Wires `station` to switch port `port` (duplex) and registers it
  /// under address `party`. Returns the endpoint's call control.
  CallControl& attach(core::Station& station, std::size_t port,
                      std::uint16_t party);

  core::Station& agent() { return *agent_; }

  std::uint64_t calls_routed() const { return calls_routed_; }
  std::uint64_t calls_refused() const { return calls_refused_; }
  std::size_t active_calls() const { return calls_.size(); }

 private:
  struct Endpoint {
    std::size_t port = 0;
    std::uint16_t party = 0;
  };
  struct CallState {
    std::size_t caller_port = 0;
    std::size_t callee_port = 0;
    std::uint16_t caller_party = 0;
    std::uint16_t callee_party = 0;
    atm::VcId caller_vc{};
    atm::VcId callee_vc{};
    double pcr = 0.0;
    bool routed = false;
  };

  atm::VcId agent_tx_vc(std::size_t port) const {
    return {0, static_cast<std::uint16_t>(32 + port)};
  }
  atm::VcId agent_rx_vc(std::size_t port) const {
    return {0, static_cast<std::uint16_t>(64 + port)};
  }

  void on_frame(std::size_t from_port, aal::Bytes sdu);
  void handle_setup(std::size_t from_port, const Message& m);
  void handle_connect(const Message& m);
  void handle_release(std::size_t from_port, const Message& m);
  void handle_release_complete(const Message& m);
  void send_to_port(std::size_t port, const Message& m);
  void refuse(std::size_t port, const Message& setup, Cause cause);
  std::optional<std::uint16_t> allocate_vci(std::size_t port);
  void free_vci(std::size_t port, std::uint16_t vci);
  void program_routes(const CallState& call);
  void remove_routes(const CallState& call);
  const Endpoint* endpoint_by_party(std::uint16_t party) const;

  core::Testbed& bed_;
  net::Switch& sw_;
  std::size_t agent_port_;
  SignalingConfig config_;
  core::Station* agent_ = nullptr;
  std::vector<Endpoint> endpoints_;
  std::vector<std::unique_ptr<CallControl>> controls_;
  std::unordered_map<std::uint32_t, CallState> calls_;
  std::unordered_map<std::size_t, std::vector<std::uint16_t>> free_vcis_;
  std::unordered_map<std::size_t, std::uint16_t> next_vci_;
  std::uint64_t calls_routed_ = 0;
  std::uint64_t calls_refused_ = 0;
};

}  // namespace hni::sig
