#include "sig/fleet.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>

#include "atm/phy.hpp"
#include "core/testbed.hpp"
#include "net/traffic.hpp"
#include "sig/network.hpp"

namespace hni::sig {

namespace {

using core::ScenarioResult;
using core::ScenarioSpec;
using core::TrafficSpec;

constexpr std::uint16_t kSinkParty = 200;
constexpr double kPayloadBitsPerCell = 48.0 * 8.0;

double mbps_to_cells(double mbps) {
  return mbps * 1e6 / kPayloadBitsPerCell;
}

net::SduSource::Config source_config(const ScenarioSpec& spec,
                                     const TrafficSpec& t, std::size_t i) {
  net::SduSource::Config cfg;
  cfg.sdu_bytes = t.sdu_bytes;
  cfg.seed = spec.seed * 1009 + i;
  const double bits = static_cast<double>(t.sdu_bytes) * 8.0;
  const sim::Time gap = static_cast<sim::Time>(
      bits / (t.rate_mbps * 1e6) * static_cast<double>(sim::kSecond));
  switch (t.kind) {
    case TrafficSpec::Kind::kCbr:
      cfg.mode = net::SduSource::Mode::kCbr;
      // A tiny per-flow detune keeps synchronized CBR periods from
      // phase-locking against shared thresholds (same trick as R4).
      cfg.interval = static_cast<sim::Time>(
          static_cast<double>(gap) * (1.0 + 0.0137 * static_cast<double>(i)));
      break;
    case TrafficSpec::Kind::kPoisson:
      cfg.mode = net::SduSource::Mode::kPoisson;
      cfg.interval = gap;
      break;
    case TrafficSpec::Kind::kOnOff:
      cfg.mode = net::SduSource::Mode::kOnOff;  // 50% duty at 2x peak
      cfg.interval = gap / 2;
      cfg.mean_on = sim::milliseconds(2);
      cfg.mean_off = sim::milliseconds(2);
      break;
    case TrafficSpec::Kind::kGreedy:
      cfg.mode = net::SduSource::Mode::kGreedy;
      break;
  }
  return cfg;
}

net::SwitchConfig switch_config(const ScenarioSpec& spec, std::size_t ports) {
  net::SwitchConfig swc;
  swc.ports = ports;
  swc.port_rate = spec.sts12 ? atm::sts12c() : atm::sts3c();
  swc.queue_cells = spec.queue_cells;
  swc.clp_threshold =
      spec.wred ? spec.queue_cells * 7 / 8 : spec.queue_cells;
  swc.epd_threshold = spec.epd_threshold;
  switch (spec.scheduler) {
    case ScenarioSpec::Scheduler::kFifo:
      swc.scheduler = net::SwitchScheduler::kFifo;
      break;
    case ScenarioSpec::Scheduler::kRoundRobin:
      swc.scheduler = net::SwitchScheduler::kRoundRobin;
      break;
    case ScenarioSpec::Scheduler::kDwrr:
      swc.scheduler = net::SwitchScheduler::kDwrr;
      break;
  }
  if (spec.per_vc_books) {
    // Per-VC accounting as R4 sized it: gate fresh frames on the VC's
    // own queue, cap residency, keep the shared pool above the sum of
    // caps so only the per-VC books bind.
    swc.vc_epd_cells = spec.queue_cells / 8;
    swc.vc_queue_cells = spec.queue_cells / 4;
    swc.epd_threshold = 0;
    swc.clp_threshold = spec.queue_cells;
  }
  if (spec.wred && !spec.per_vc_books) {
    swc.wred.enabled = true;
    swc.wred.min_cells = spec.queue_cells * 6 / 10;
    swc.wred.max_cells = spec.queue_cells;
    swc.wred.max_p = 0.05;
    swc.wred.clp1_min_cells = spec.queue_cells / 4;
    swc.wred.clp1_max_cells = spec.queue_cells / 2;
    swc.wred.clp1_max_p = 1.0;
  }
  if (spec.efci_rm || spec.abr_loop) {
    swc.efci_threshold = spec.queue_cells / 5;
  }
  swc.abr.enabled = spec.abr_loop;
  return swc;
}

// Everything one measurement window accumulates, shared by both the
// p2p and the signalled topologies.
struct Meas {
  std::vector<std::uint64_t> bytes;       // per flow, cumulative
  bool measuring = false;
  double lat_sum_us = 0, lat_max_us = 0;
  std::uint64_t lat_n = 0;

  explicit Meas(std::size_t flows) : bytes(flows, 0) {}

  void deliver(std::size_t flow, std::size_t size, double latency_us) {
    if (flow >= bytes.size()) return;
    bytes[flow] += size;
    if (!measuring) return;
    lat_sum_us += latency_us;
    lat_max_us = std::max(lat_max_us, latency_us);
    ++lat_n;
  }
};

void finish_result(const ScenarioSpec& spec, ScenarioResult& r,
                   const std::vector<std::uint64_t>& window_bytes,
                   std::uint64_t offered_bytes, const Meas& meas,
                   sim::Time window) {
  const double secs = sim::to_seconds(window);
  std::uint64_t total = 0;
  std::vector<double> normalised;
  for (std::size_t i = 0; i < window_bytes.size(); ++i) {
    total += window_bytes[i];
    const double mbps =
        static_cast<double>(window_bytes[i]) * 8.0 / secs / 1e6;
    r.per_flow_mbps.push_back(mbps);
    normalised.push_back(mbps / spec.traffic[i].weight);
  }
  r.goodput_mbps = static_cast<double>(total) * 8.0 / secs / 1e6;
  r.offered_mbps = static_cast<double>(offered_bytes) * 8.0 / secs / 1e6;
  r.delivery_ratio = offered_bytes > 0
                         ? static_cast<double>(total) /
                               static_cast<double>(offered_bytes)
                         : 0.0;
  r.jain_weighted = core::jain_index(normalised);
  if (meas.lat_n > 0) {
    r.latency_mean_us = meas.lat_sum_us / static_cast<double>(meas.lat_n);
    r.latency_max_us = meas.lat_max_us;
  }
}

void fold_run(core::Digest& d, const std::vector<sim::TraceEvent>& trace,
              core::Testbed& bed,
              const std::vector<std::uint64_t>& window_bytes) {
  d.fold(trace.size());
  for (const sim::TraceEvent& ev : trace) {
    d.fold(static_cast<std::uint64_t>(ev.when));
    d.fold(static_cast<std::uint64_t>(ev.id) << 32 |
           static_cast<std::uint64_t>(ev.source));
    d.fold(static_cast<std::uint64_t>(ev.a) << 32 |
           static_cast<std::uint64_t>(ev.b));
    d.fold(ev.seq);
  }
  d.fold_string(bed.metrics().to_json());
  for (const std::uint64_t b : window_bytes) d.fold(b);
}

/// Square-wave outage on a duplex link pair over the traffic window.
void schedule_flaps(core::Testbed& bed, const ScenarioSpec& spec,
                    net::Link* ab, net::Link* ba, sim::Time window) {
  if (spec.fault.flap_period <= 0 || ab == nullptr) return;
  for (sim::Time cut = 0; cut + spec.fault.flap_down <= window;
       cut += spec.fault.flap_period) {
    bed.sim().after(cut, [ab, ba] {
      ab->set_down(true);
      if (ba != nullptr) ba->set_down(true);
    });
    bed.sim().after(cut + spec.fault.flap_down, [ab, ba] {
      ab->set_down(false);
      if (ba != nullptr) ba->set_down(false);
    });
  }
}

ScenarioResult run_p2p(const ScenarioSpec& spec, bool smoke,
                       bool want_digest) {
  ScenarioResult r;
  const std::size_t n = spec.traffic.size();
  std::size_t greedy = 0;
  for (const TrafficSpec& t : spec.traffic) {
    if (t.kind == TrafficSpec::Kind::kGreedy) ++greedy;
  }
  if (greedy > 1) {
    r.setup_error = "p2p supports at most one greedy source";
    return r;
  }

  core::Testbed bed;
  std::vector<sim::TraceEvent> trace;
  if (want_digest) bed.tracer().collect_into(trace);

  core::StationConfig stc;
  if (spec.sts12) {
    stc.nic.line = atm::sts12c();
    stc.nic.with_clock(50e6);
    stc.host.cpu.clock_hz = 400e6;
    stc.host.cpu.cpi = 1.0;
    stc.host.max_inflight_tx = 64;
  }
  stc.name = "fleet-tx";
  core::Station& a = bed.add_station(stc);
  stc.name = "fleet-rx";
  core::Station& b = bed.add_station(stc);

  net::LossModel loss;
  loss.cell_loss_rate = spec.fault.cell_loss_rate;
  loss.mean_burst_cells = spec.fault.loss_burst_cells;
  const auto [ab, ba] = bed.connect(a, b, loss);

  for (std::size_t i = 0; i < n; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(32 + i)};
    a.nic().open_vc(vc, aal::AalType::kAal5);
    b.nic().open_vc(vc, aal::AalType::kAal5);
    if (spec.traffic[i].pcr_mbps > 0) {
      a.nic().tx().set_shaper(vc, mbps_to_cells(spec.traffic[i].pcr_mbps),
                              sim::microseconds(3));
    }
  }

  Meas meas(n);
  b.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo& info) {
    const std::size_t flow = static_cast<std::size_t>(info.vc.vci) - 32;
    meas.deliver(flow, sdu.size(),
                 sim::to_microseconds(info.handed_up_time -
                                      info.first_cell_time));
  });

  std::vector<std::shared_ptr<net::SduSource>> gens;
  for (std::size_t i = 0; i < n; ++i) {
    const atm::VcId vc{0, static_cast<std::uint16_t>(32 + i)};
    gens.push_back(std::make_shared<net::SduSource>(
        bed.sim(), source_config(spec, spec.traffic[i], i),
        [&a, vc](aal::Bytes sdu) {
          return a.host().send(vc, aal::AalType::kAal5, std::move(sdu));
        }));
  }
  a.host().set_tx_ready([&gens] {
    for (auto& g : gens) g->notify_ready();
  });
  for (auto& g : gens) g->start();

  const sim::Time window = spec.measure_window(smoke);
  schedule_flaps(bed, spec, ab, ba, spec.warmup + window);

  bed.run_for(spec.warmup);
  const std::vector<std::uint64_t> bytes0 = meas.bytes;
  std::uint64_t offered0 = 0;
  for (const auto& g : gens) offered0 += g->bytes_offered();
  meas.measuring = true;

  bed.run_for(window);
  std::vector<std::uint64_t> window_bytes = meas.bytes;
  for (std::size_t i = 0; i < n; ++i) window_bytes[i] -= bytes0[i];
  std::uint64_t offered = 0;
  for (const auto& g : gens) offered += g->bytes_offered();
  offered -= offered0;
  meas.measuring = false;

  for (auto& g : gens) g->stop();
  bed.run_for(sim::milliseconds(10));  // drain in-flight cells

  r.ran = true;
  finish_result(spec, r, window_bytes, offered, meas, window);
  auto auditor = bed.audit(/*include_hops=*/true);
  r.audit_clean = auditor.ok();
  if (!auditor.ok()) std::fputs(auditor.report().c_str(), stderr);
  if (want_digest) {
    core::Digest d;
    fold_run(d, trace, bed, window_bytes);
    r.digest = d.hex();
  }
  return r;
}

ScenarioResult run_switched(const ScenarioSpec& spec, bool smoke,
                            bool want_digest) {
  ScenarioResult r;
  const std::size_t n = spec.traffic.size();
  const std::size_t nsw = spec.topology == ScenarioSpec::Topology::kMux
                              ? 1
                              : spec.topology == ScenarioSpec::Topology::kLine
                                    ? spec.switches
                                    : 3;
  if (spec.topology == ScenarioSpec::Topology::kLine && nsw < 2) {
    r.setup_error = "line topology needs switches >= 2";
    return r;
  }

  core::Testbed bed;
  std::vector<sim::TraceEvent> trace;
  if (want_digest) bed.tracer().collect_into(trace);

  // Port plan: switch 0 carries the sources (0..n-1), the agent (n)
  // and its trunk(s) (n+1, n+2); the sink lives on the far switch.
  std::vector<net::Switch*> sws;
  for (std::size_t s = 0; s < nsw; ++s) {
    std::size_t ports;
    if (s == 0) {
      // sources 0..n-1, agent on n, then the sink (mux) or trunk(s).
      ports = spec.topology == ScenarioSpec::Topology::kTriangle ? n + 3
                                                                 : n + 2;
    } else if (spec.topology == ScenarioSpec::Topology::kTriangle) {
      ports = s == 1 ? 3 : 2;  // sw1: sink + 2 trunks; sw2: 2 trunks
    } else {
      ports = 2;  // line interior/end: trunk(s) + possibly the sink
    }
    sws.push_back(&bed.add_switch(switch_config(spec, ports)));
  }

  SignalingConfig cfg;
  cfg.cac_utilization = spec.cac_utilization;
  cfg.protection.enabled = spec.protection;
  if (!spec.sig_audit) cfg.audit_period = 0;
  if (spec.cac_utilization > 0) cfg.endpoint.setup_retry_limit = 6;
  cfg.fault_seed = spec.seed * 31 + 7;
  // Switch 0's port map: sources on 0..n-1; mux puts the sink on n and
  // the agent on n+1, the trunked topologies put the agent on n and
  // their trunk(s) on n+1 (and n+2).
  const std::size_t agent_port =
      spec.topology == ScenarioSpec::Topology::kMux ? n + 1 : n;
  SignalingNetwork net(bed, sws, /*agent_switch=*/0, agent_port, cfg);

  net::LossModel trunk_loss;
  trunk_loss.cell_loss_rate = spec.fault.cell_loss_rate;
  trunk_loss.mean_burst_cells = spec.fault.loss_burst_cells;
  std::size_t flap_trunk = 0;
  if (spec.topology == ScenarioSpec::Topology::kLine) {
    for (std::size_t s = 0; s + 1 < nsw; ++s) {
      const std::size_t tx_port = s == 0 ? n + 1 : 1;
      const std::size_t t = net.add_trunk(s, tx_port, s + 1, 0, trunk_loss);
      if (s == 0) flap_trunk = t;
    }
  } else if (spec.topology == ScenarioSpec::Topology::kTriangle) {
    flap_trunk = net.add_trunk(0, n + 1, 1, 1, trunk_loss);  // primary
    net.add_trunk(0, n + 2, 2, 0, trunk_loss);               // standby legs
    net.add_trunk(2, 1, 1, 2, trunk_loss);
  }

  core::StationConfig stc;
  stc.nic.congestion.enabled = spec.efci_rm || spec.abr_loop;
  stc.nic.congestion.explicit_rate = spec.abr_loop;
  stc.nic.cc.enabled = spec.protection;

  std::vector<core::Station*> srcs;
  std::vector<CallControl*> cc_src;
  for (std::size_t i = 0; i < n; ++i) {
    stc.name = "fleet-src" + std::to_string(i);
    srcs.push_back(&bed.add_station(stc));
    cc_src.push_back(&net.attach(*srcs[i], /*sw=*/0, /*port=*/i,
                                 static_cast<std::uint16_t>(1 + i)));
  }
  stc.name = "fleet-sink";
  core::Station& sink = bed.add_station(stc);
  std::size_t sink_sw = 0, sink_port = n;  // mux: same switch as sources
  if (spec.topology == ScenarioSpec::Topology::kLine) {
    sink_sw = nsw - 1;
    sink_port = 1;
  } else if (spec.topology == ScenarioSpec::Topology::kTriangle) {
    sink_sw = 1;
    sink_port = 0;
  }
  CallControl& cc_sink = net.attach(sink, sink_sw, sink_port, kSinkParty);

  // The sink accepts everything and maps each accepted call's VC back
  // to the caller's flow index (party 1+i).
  Meas meas(n);
  std::unordered_map<std::uint16_t, std::size_t> vci_flow;
  cc_sink.set_incoming(
      [](const CallControl::CallInfo&) { return true; },
      [&vci_flow](const CallControl::CallInfo& info) {
        vci_flow[info.vc.vci] = static_cast<std::size_t>(info.peer) - 1;
      });

  if (spec.fault.sig_drop_rate > 0) {
    net.agent_tap().set_drop_rate(spec.fault.sig_drop_rate);
    cc_sink.tap().set_drop_rate(spec.fault.sig_drop_rate);
    for (CallControl* cc : cc_src) {
      cc->tap().set_drop_rate(spec.fault.sig_drop_rate);
    }
  }

  // Place one call per flow. A failed attempt (chaos-dropped beyond the
  // protocol timers) is re-placed, and a call the audit reclaims
  // mid-run is re-established the same way — under signalling faults
  // the *session*, not any single call, is the unit under test. Both
  // loops are bounded so a dead network cannot spin forever.
  std::vector<std::optional<atm::VcId>> src_vc(n);
  std::vector<std::uint32_t> call_ids(n, 0);
  std::vector<unsigned> attempts(n, 0);
  bool tearing_down = false;
  auto place = std::make_shared<std::function<void(std::size_t)>>();
  *place = [&, place](std::size_t i) {
    const TrafficSpec& t = spec.traffic[i];
    TrafficDescriptor td;
    td.pcr_cells_per_second = mbps_to_cells(t.pcr_mbps);
    td.scr_cells_per_second = mbps_to_cells(t.scr_mbps);
    td.weight = t.weight;
    td.abr = t.abr;
    call_ids[i] = cc_src[i]->place_call(
        kSinkParty, aal::AalType::kAal5, td,
        [&src_vc, i](const CallControl::CallInfo& info) {
          src_vc[i] = info.vc;
        },
        [&, place, i](std::uint32_t, Cause) {
          if (!tearing_down && ++attempts[i] < 64) (*place)(i);
        });
  };
  for (std::size_t i = 0; i < n; ++i) {
    cc_src[i]->set_released(
        [&, place, i](const CallControl::CallInfo&, Cause) {
          src_vc[i].reset();
          if (!tearing_down && ++attempts[i] < 64) (*place)(i);
        });
    (*place)(i);
  }

  sim::Time grace = sim::milliseconds(10);
  if (spec.fault.sig_drop_rate > 0) grace += sim::milliseconds(40);
  if (spec.cac_utilization > 0) grace += sim::milliseconds(20);
  bed.run_for(grace);
  for (std::size_t i = 0; i < n; ++i) {
    if (!src_vc[i]) {
      r.setup_error = "call " + std::to_string(i) + " failed to connect";
      return r;
    }
  }
  r.calls_connected = n;

  sink.host().set_rx_handler([&](aal::Bytes sdu, const host::RxInfo& info) {
    const auto it = vci_flow.find(info.vc.vci);
    if (it == vci_flow.end()) return;
    meas.deliver(it->second, sdu.size(),
                 sim::to_microseconds(info.handed_up_time -
                                      info.first_cell_time));
  });

  std::vector<std::shared_ptr<net::SduSource>> gens;
  for (std::size_t i = 0; i < n; ++i) {
    core::Station* st = srcs[i];
    // Send to whatever VC the flow's *current* call carries: after a
    // chaos-reclaimed call re-establishes, traffic follows. Refusals
    // while disconnected count as offered-load drops.
    gens.push_back(std::make_shared<net::SduSource>(
        bed.sim(), source_config(spec, spec.traffic[i], i),
        [st, &src_vc, i](aal::Bytes sdu) {
          if (!src_vc[i]) return false;
          return st->host().send(*src_vc[i], aal::AalType::kAal5,
                                 std::move(sdu));
        }));
    st->host().set_tx_ready([g = gens.back()] { g->notify_ready(); });
    gens.back()->start();
  }

  const sim::Time window = spec.measure_window(smoke);
  if (nsw > 1) {
    const auto [ab, ba] = net.trunk_links(flap_trunk);
    schedule_flaps(bed, spec, ab, ba, spec.warmup + window);
  }

  bed.run_for(spec.warmup);
  const std::vector<std::uint64_t> bytes0 = meas.bytes;
  std::uint64_t offered0 = 0;
  for (const auto& g : gens) offered0 += g->bytes_offered();
  meas.measuring = true;

  bed.run_for(window);
  std::vector<std::uint64_t> window_bytes = meas.bytes;
  for (std::size_t i = 0; i < n; ++i) window_bytes[i] -= bytes0[i];
  std::uint64_t offered = 0;
  for (const auto& g : gens) offered += g->bytes_offered();
  offered -= offered0;
  meas.measuring = false;

  for (auto& g : gens) g->stop();
  bed.run_for(sim::milliseconds(10));  // drain switch queues
  tearing_down = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (src_vc[i]) cc_src[i]->release(call_ids[i]);
  }
  bed.run_for(sim::milliseconds(25));  // release handshakes + audit sweep

  r.ran = true;
  finish_result(spec, r, window_bytes, offered, meas, window);
  r.reroutes = net.reroutes();
  r.stranded = net.stranded_vcis() + net.stranded_routes();
  auto auditor = bed.audit(/*include_hops=*/true);
  net.audit_invariants(auditor);
  r.audit_clean = auditor.ok() && net.active_calls() == 0;
  if (!auditor.ok()) std::fputs(auditor.report().c_str(), stderr);
  if (want_digest) {
    core::Digest d;
    fold_run(d, trace, bed, window_bytes);
    r.digest = d.hex();
  }
  return r;
}

ScenarioResult run_once(const ScenarioSpec& spec, bool smoke,
                        bool want_digest) {
  if (spec.traffic.empty()) {
    ScenarioResult r;
    r.setup_error = "no traffic sources";
    return r;
  }
  if (spec.topology == ScenarioSpec::Topology::kP2p) {
    return run_p2p(spec, smoke, want_digest);
  }
  return run_switched(spec, smoke, want_digest);
}

}  // namespace

ScenarioResult run_scenario(const ScenarioSpec& spec, bool smoke) {
  const bool want_digest =
      spec.accept.determinism || !spec.accept.digest.empty();
  ScenarioResult r = run_once(spec, smoke, want_digest);
  if (spec.accept.determinism && r.ran) {
    const ScenarioResult rerun = run_once(spec, smoke, /*want_digest=*/true);
    r.digest_rerun = rerun.digest;
  }
  core::evaluate_acceptance(spec, r);
  return r;
}

namespace {

TrafficSpec source(TrafficSpec::Kind kind, double rate_mbps,
                   std::size_t sdu_bytes, double pcr_mbps = 0,
                   double scr_mbps = 0, std::uint16_t weight = 1,
                   bool abr = false) {
  TrafficSpec t;
  t.kind = kind;
  t.rate_mbps = rate_mbps;
  t.sdu_bytes = sdu_bytes;
  t.pcr_mbps = pcr_mbps;
  t.scr_mbps = scr_mbps;
  t.weight = weight;
  t.abr = abr;
  return t;
}

std::vector<ScenarioSpec> make_builtins() {
  using K = TrafficSpec::Kind;
  std::vector<ScenarioSpec> all;

  {  // Clean CBR point-to-point: the sanity row every plane builds on.
    ScenarioSpec s;
    s.name = "p2p-cbr-clean";
    s.plane = "baseline";
    s.topology = ScenarioSpec::Topology::kP2p;
    s.seed = 11;
    s.measure = sim::milliseconds(20);
    s.smoke_measure = sim::milliseconds(6);
    s.traffic = {source(K::kCbr, 80, 1500)};
    s.accept.min_goodput_mbps = 70;
    s.accept.min_delivery_ratio = 0.95;
    s.accept.max_latency_us = 500;
    all.push_back(s);
  }
  {  // Greedy throughput ceiling at STS-12c.
    ScenarioSpec s;
    s.name = "p2p-greedy-sts12c";
    s.plane = "throughput";
    s.topology = ScenarioSpec::Topology::kP2p;
    s.sts12 = true;
    s.seed = 12;
    s.measure = sim::milliseconds(10);
    s.smoke_measure = sim::milliseconds(4);
    s.traffic = {source(K::kGreedy, 0, 9180)};
    s.accept.min_goodput_mbps = 300;
    all.push_back(s);
  }
  {  // Correlated cell loss: AAL5 PDUs die whole, books still balance.
    ScenarioSpec s;
    s.name = "p2p-loss-burst";
    s.plane = "fault-recovery";
    s.topology = ScenarioSpec::Topology::kP2p;
    s.seed = 13;
    s.measure = sim::milliseconds(40);
    s.smoke_measure = sim::milliseconds(12);
    s.traffic = {source(K::kCbr, 60, 1500)};
    s.fault.cell_loss_rate = 1e-3;
    s.fault.loss_burst_cells = 8;
    s.accept.min_delivery_ratio = 0.90;
    s.accept.min_goodput_mbps = 45;
    all.push_back(s);
  }
  {  // Link flaps: down 1 ms in every 10; AIS/RDI pause + resume.
    ScenarioSpec s;
    s.name = "p2p-linkflap-recovery";
    s.plane = "fault-recovery";
    s.topology = ScenarioSpec::Topology::kP2p;
    s.seed = 14;
    s.measure = sim::milliseconds(40);
    s.smoke_measure = sim::milliseconds(20);
    s.traffic = {source(K::kCbr, 40, 1500)};
    s.fault.flap_period = sim::milliseconds(10);
    s.fault.flap_down = sim::milliseconds(1);
    s.accept.min_delivery_ratio = 0.60;
    s.accept.min_goodput_mbps = 20;
    all.push_back(s);
  }
  {  // Signalled calls under 5% signalling loss: timers carry setup.
    ScenarioSpec s;
    s.name = "mux-sig-loss";
    s.plane = "signalling-fault";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 15;
    s.measure = sim::milliseconds(20);
    s.smoke_measure = sim::milliseconds(8);
    s.traffic = {source(K::kPoisson, 20, 1500), source(K::kPoisson, 20, 1500),
                 source(K::kPoisson, 20, 1500), source(K::kPoisson, 20, 1500)};
    s.fault.sig_drop_rate = 0.05;
    s.accept.min_delivery_ratio = 0.85;
    s.accept.min_goodput_mbps = 50;
    all.push_back(s);
  }
  {  // Heavy signalling chaos: 20% of every signalling message dies.
    ScenarioSpec s;
    s.name = "mux-sig-chaos";
    s.plane = "signalling-fault";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 16;
    s.measure = sim::milliseconds(20);
    s.smoke_measure = sim::milliseconds(8);
    s.traffic = {source(K::kPoisson, 20, 1500), source(K::kPoisson, 20, 1500)};
    s.fault.sig_drop_rate = 0.20;
    s.accept.min_delivery_ratio = 0.80;
    all.push_back(s);
  }
  {  // CAC admission: three contracted CBR calls that all fit.
    ScenarioSpec s;
    s.name = "mux-cac-contracts";
    s.plane = "signalling-fault";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 17;
    s.measure = sim::milliseconds(20);
    s.smoke_measure = sim::milliseconds(8);
    s.cac_utilization = 0.9;
    s.traffic = {source(K::kCbr, 30, 1500, /*pcr=*/36),
                 source(K::kCbr, 30, 1500, /*pcr=*/36),
                 source(K::kCbr, 30, 1500, /*pcr=*/36)};
    s.accept.min_delivery_ratio = 0.90;
    s.accept.min_goodput_mbps = 70;
    all.push_back(s);
  }
  {  // 2x overload with the frame-aware discard plane on.
    ScenarioSpec s;
    s.name = "mux-overload-epd";
    s.plane = "overload";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 18;
    s.measure = sim::milliseconds(60);
    s.smoke_measure = sim::milliseconds(20);
    s.epd_threshold = 512;
    s.wred = true;
    s.scheduler = ScenarioSpec::Scheduler::kRoundRobin;
    s.traffic = {source(K::kPoisson, 65, 9180), source(K::kPoisson, 65, 9180),
                 source(K::kPoisson, 65, 9180), source(K::kPoisson, 65, 9180)};
    s.accept.min_goodput_mbps = 95;
    all.push_back(s);
  }
  {  // 2x overload with the closed EFCI/RM loop throttling sources.
    ScenarioSpec s;
    s.name = "mux-overload-closedloop";
    s.plane = "overload";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 19;
    s.measure = sim::milliseconds(60);
    s.smoke_measure = sim::milliseconds(20);
    s.epd_threshold = 512;
    s.wred = true;
    s.efci_rm = true;
    s.scheduler = ScenarioSpec::Scheduler::kRoundRobin;
    s.traffic = {source(K::kCbr, 45, 9180), source(K::kCbr, 45, 9180),
                 source(K::kCbr, 45, 9180), source(K::kCbr, 45, 9180),
                 source(K::kCbr, 45, 9180), source(K::kCbr, 45, 9180)};
    s.accept.min_goodput_mbps = 95;
    all.push_back(s);
  }
  {  // DWRR weighted shares: grants, not arrival order, set delivery.
    ScenarioSpec s;
    s.name = "mux-fairness-dwrr";
    s.plane = "fairness";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 20;
    s.measure = sim::milliseconds(100);
    s.smoke_measure = sim::milliseconds(40);
    s.queue_cells = 2048;
    s.scheduler = ScenarioSpec::Scheduler::kDwrr;
    s.per_vc_books = true;
    s.traffic = {source(K::kCbr, 90, 9180, 0, 0, /*weight=*/1),
                 source(K::kCbr, 90, 9180, 0, 0, /*weight=*/2),
                 source(K::kCbr, 90, 9180, 0, 0, /*weight=*/4)};
    s.accept.min_jain = 0.95;
    all.push_back(s);
  }
  {  // ERICA explicit-rate ABR: four equal participants at 2x.
    ScenarioSpec s;
    s.name = "mux-fairness-abr";
    s.plane = "fairness";
    s.topology = ScenarioSpec::Topology::kMux;
    s.seed = 21;
    s.measure = sim::milliseconds(100);
    s.smoke_measure = sim::milliseconds(40);
    s.epd_threshold = 512;
    s.wred = true;
    s.abr_loop = true;
    s.scheduler = ScenarioSpec::Scheduler::kDwrr;
    s.traffic = {
        source(K::kPoisson, 67, 9180, 0, 0, 1, /*abr=*/true),
        source(K::kPoisson, 67, 9180, 0, 0, 1, /*abr=*/true),
        source(K::kPoisson, 67, 9180, 0, 0, 1, /*abr=*/true),
        source(K::kPoisson, 67, 9180, 0, 0, 1, /*abr=*/true)};
    s.accept.min_jain = 0.95;
    all.push_back(s);
  }
  {  // Three-switch line: multi-hop signalled routing + trunk loss.
    ScenarioSpec s;
    s.name = "line3-tandem-cbr";
    s.plane = "fabric";
    s.topology = ScenarioSpec::Topology::kLine;
    s.switches = 3;
    s.seed = 22;
    s.measure = sim::milliseconds(20);
    s.smoke_measure = sim::milliseconds(8);
    s.traffic = {source(K::kCbr, 30, 1500), source(K::kCbr, 30, 1500)};
    s.fault.cell_loss_rate = 1e-4;
    s.accept.min_delivery_ratio = 0.90;
    s.accept.max_latency_us = 2000;
    all.push_back(s);
  }
  {  // Protection switching rides out a flapping primary trunk.
    ScenarioSpec s;
    s.name = "triangle-protection-flap";
    s.plane = "protection";
    s.topology = ScenarioSpec::Topology::kTriangle;
    s.seed = 23;
    s.measure = sim::milliseconds(80);
    s.smoke_measure = sim::milliseconds(40);
    s.protection = true;
    s.sig_audit = false;  // a 13 ms outage must not trip the reclaimer
    s.fault.flap_period = sim::milliseconds(20);
    s.fault.flap_down = sim::milliseconds(13);
    // PCR 2.5x the offered rate: a protected contract needs restoration
    // headroom — after an outage the shaper can only drain the paused
    // backlog at PCR, so a tight contract never catches back up.
    s.traffic = {source(K::kCbr, 20, 1500, /*pcr=*/50),
                 source(K::kCbr, 20, 1500, /*pcr=*/50),
                 source(K::kCbr, 20, 1500, /*pcr=*/50)};
    s.accept.min_delivery_ratio = 0.80;
    all.push_back(s);
  }
  {  // Same spec + seed must digest identically, run to run.
    ScenarioSpec s;
    s.name = "determinism-p2p";
    s.plane = "determinism";
    s.topology = ScenarioSpec::Topology::kP2p;
    s.seed = 24;
    s.measure = sim::milliseconds(5);
    s.smoke_measure = sim::milliseconds(5);
    s.traffic = {source(K::kCbr, 30, 1500)};
    s.accept.determinism = true;
    all.push_back(s);
  }
  return all;
}

}  // namespace

const std::vector<ScenarioSpec>& builtin_scenarios() {
  static const std::vector<ScenarioSpec> all = make_builtins();
  return all;
}

bool find_scenario(const std::string& name, const std::string& scenario_dir,
                   ScenarioSpec& out, std::string& error) {
  for (const ScenarioSpec& s : builtin_scenarios()) {
    if (s.name == name) {
      out = s;
      return true;
    }
  }
  if (!scenario_dir.empty()) {
    if (core::load_scenario_file(scenario_dir + "/" + name + ".scn", out,
                                 error)) {
      return true;
    }
  }
  error = "unknown scenario '" + name + "'" +
          (scenario_dir.empty() ? "" : " (also tried " + scenario_dir + "/" +
                                           name + ".scn: " + error + ")");
  return false;
}

}  // namespace hni::sig
