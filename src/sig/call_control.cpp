#include "sig/call_control.hpp"

namespace hni::sig {

CallControl::CallControl(core::Station& station, std::uint16_t my_party)
    : station_(station), party_(my_party) {
  station_.nic().open_vc(kSignalingVc, aal::AalType::kAal5);
  station_.host().set_vc_handler(
      kSignalingVc, [this](aal::Bytes sdu, const host::RxInfo&) {
        on_signaling_frame(std::move(sdu));
      });
}

std::uint32_t CallControl::place_call(std::uint16_t called,
                                      aal::AalType aal,
                                      double pcr_cells_per_second,
                                      ConnectedFn on_connected,
                                      FailedFn on_failed) {
  // Call references must be network-unique (the agent keys on them);
  // derive from the party address.
  const std::uint32_t ref =
      (static_cast<std::uint32_t>(party_) << 16) | (next_ref_++ & 0xFFFF);
  ++placed_;
  Call call;
  call.state = State::kCalling;
  call.info.call_id = ref;
  call.info.peer = called;
  call.info.aal = aal;
  call.info.pcr_cells_per_second = pcr_cells_per_second;
  call.on_connected = std::move(on_connected);
  call.on_failed = std::move(on_failed);
  calls_.emplace(ref, std::move(call));

  Message m;
  m.type = MessageType::kSetup;
  m.call_id = ref;
  m.calling_party = party_;
  m.called_party = called;
  m.aal = aal;
  m.pcr_cells_per_second = pcr_cells_per_second;
  send(m);
  return ref;
}

void CallControl::set_incoming(IncomingFn accept, ConnectedFn on_connected) {
  incoming_ = std::move(accept);
  incoming_connected_ = std::move(on_connected);
}

void CallControl::release(std::uint32_t call_id, Cause cause) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.state != State::kConnected) return;
  it->second.state = State::kReleasing;
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = call_id;
  m.calling_party = party_;
  m.cause = cause;
  send(m);
}

void CallControl::send(const Message& m) {
  station_.host().send(kSignalingVc, aal::AalType::kAal5, m.encode());
}

void CallControl::open_data_vc(const CallInfo& info) {
  station_.nic().open_vc(info.vc, info.aal);
  if (info.pcr_cells_per_second > 0.0) {
    // Honour the traffic contract at the source: UPC polices it in the
    // network, so shape here and the call is loss-free by construction.
    station_.nic().tx().set_shaper(info.vc, info.pcr_cells_per_second,
                                   sim::microseconds(3));
  }
}

void CallControl::close_data_vc(const CallInfo& info) {
  station_.nic().rx().close_vc(info.vc);
  if (info.pcr_cells_per_second > 0.0) {
    station_.nic().tx().clear_shaper(info.vc);
  }
}

void CallControl::on_signaling_frame(aal::Bytes sdu) {
  const auto m = Message::decode(sdu);
  if (!m) return;  // malformed frame: ignore (no SSCOP underneath)
  switch (m->type) {
    case MessageType::kSetup:
      handle_setup(*m);
      break;
    case MessageType::kConnect:
      handle_connect(*m);
      break;
    case MessageType::kRelease:
      handle_release(*m);
      break;
    case MessageType::kReleaseComplete:
      handle_release_complete(*m);
      break;
  }
}

void CallControl::handle_setup(const Message& m) {
  CallInfo info;
  info.call_id = m.call_id;
  info.peer = m.calling_party;
  info.vc = m.assigned_vc;  // the network already allocated our leg
  info.aal = m.aal;
  info.pcr_cells_per_second = m.pcr_cells_per_second;

  const bool accept = incoming_ && incoming_(info);
  if (!accept) {
    Message reply;
    reply.type = MessageType::kRelease;
    reply.call_id = m.call_id;
    reply.calling_party = party_;
    reply.cause = Cause::kCallRejected;
    send(reply);
    return;
  }

  Call call;
  call.state = State::kConnected;
  call.info = info;
  calls_.emplace(m.call_id, std::move(call));
  open_data_vc(info);

  Message reply;
  reply.type = MessageType::kConnect;
  reply.call_id = m.call_id;
  reply.calling_party = party_;
  reply.assigned_vc = info.vc;
  send(reply);
  ++connected_;
  if (incoming_connected_) incoming_connected_(info);
}

void CallControl::handle_connect(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end() || it->second.state != State::kCalling) return;
  Call& call = it->second;
  call.state = State::kConnected;
  call.info.vc = m.assigned_vc;
  open_data_vc(call.info);
  ++connected_;
  if (call.on_connected) call.on_connected(call.info);
}

void CallControl::handle_release(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  Call call = std::move(it->second);
  calls_.erase(it);

  Message reply;
  reply.type = MessageType::kReleaseComplete;
  reply.call_id = m.call_id;
  reply.calling_party = party_;
  reply.cause = m.cause;
  send(reply);

  if (call.state == State::kCalling) {
    // Our SETUP was refused (by the callee or the network).
    ++failed_;
    if (call.on_failed) call.on_failed(m.call_id, m.cause);
    return;
  }
  close_data_vc(call.info);
  if (on_released_) on_released_(call.info, m.cause);
}

void CallControl::handle_release_complete(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  Call call = std::move(it->second);
  calls_.erase(it);
  close_data_vc(call.info);
  if (on_released_) on_released_(call.info, m.cause);
}

}  // namespace hni::sig
