#include "sig/call_control.hpp"

#include <algorithm>
#include <set>
#include <vector>

namespace hni::sig {

CallControl::CallControl(core::Station& station, std::uint16_t my_party,
                         CallControlConfig config, sim::Tracer* tracer,
                         std::optional<sim::MetricScope> metrics,
                         std::uint64_t tap_seed)
    : station_(station),
      party_(my_party),
      config_(config),
      tracer_(tracer),
      metrics_(std::move(metrics)),
      tap_(station.sim(), tap_seed) {
  if (tracer_) {
    source_ = tracer_->intern("sig.ep" + std::to_string(party_));
  }
  if (metrics_) {
    metrics_->expose("calls_placed", placed_);
    metrics_->expose("calls_connected", connected_);
    metrics_->expose("calls_failed", failed_);
    metrics_->expose("retransmits", retransmits_);
    metrics_->expose("setup_backoff_retries", backoffs_);
    metrics_->expose("timer_expiries", timer_expiries_);
    metrics_->expose("calls_reclaimed", reclaimed_);
    metrics_->expose("malformed_frames", malformed_);
    metrics_->expose("defect_reports", defect_reports_);
    metrics_->gauge("active_calls",
                    [this] { return static_cast<double>(calls_.size()); });
    tap_.register_metrics(metrics_->sub("tap"));
  }
  station_.nic().open_vc(kSignalingVc, aal::AalType::kAal5);
  station_.host().set_vc_handler(
      kSignalingVc, [this](aal::Bytes sdu, const host::RxInfo&) {
        on_signaling_frame(std::move(sdu));
      });
  // Close the fault-management loop: a standing AIS or loss-of-
  // continuity alarm on one of our data VCs is reported to the network
  // as STATUS cause 27 (destination out of order), so the agent can run
  // a protection sweep even when its own trunk observer missed the
  // failure. RDI is the far end echoing *our* report — forwarding it
  // too would double every alarm.
  station_.nic().add_defect_observer(
      [this](atm::VcId vc, nic::Nic::Defect defect, bool active) {
        if (!active || defect == nic::Nic::Defect::kRdi) return;
        for (const auto& [id, call] : calls_) {
          if (!call.vc_open || call.info.vc != vc) continue;
          defect_reports_.add();
          trace(sim::TraceEventId::kSigDefectReport,
                static_cast<std::uint32_t>(defect), vc.vci, id);
          Message m;
          m.type = MessageType::kStatus;
          m.call_id = id;
          m.calling_party = party_;
          m.cause = Cause::kDestinationOutOfOrder;
          m.call_state = state_of(id);
          send(m);
          return;
        }
      });
}

void CallControl::trace(sim::TraceEventId id, std::uint32_t a,
                        std::uint32_t b, std::uint64_t seq) {
  if (tracer_) tracer_->emit({station_.sim().now(), id, source_, a, b, seq});
}

void CallControl::count_failure(Cause cause) {
  failed_.add();
  if (metrics_) {
    metrics_
        ->counter("failed.cause_" +
                  std::to_string(static_cast<unsigned>(cause)))
        .add();
  }
}

std::uint32_t CallControl::place_call(std::uint16_t called,
                                      aal::AalType aal,
                                      double pcr_cells_per_second,
                                      ConnectedFn on_connected,
                                      FailedFn on_failed) {
  TrafficDescriptor traffic;
  traffic.pcr_cells_per_second = pcr_cells_per_second;
  return place_call(called, aal, traffic, std::move(on_connected),
                    std::move(on_failed));
}

std::uint32_t CallControl::place_call(std::uint16_t called,
                                      aal::AalType aal,
                                      const TrafficDescriptor& traffic,
                                      ConnectedFn on_connected,
                                      FailedFn on_failed) {
  // Call references must be network-unique (the agent keys on them);
  // derive from the party address.
  const std::uint32_t ref =
      (static_cast<std::uint32_t>(party_) << 16) | (next_ref_++ & 0xFFFF);
  placed_.add();
  Call call;
  call.state = CallState::kCalling;
  call.info.call_id = ref;
  call.info.peer = called;
  call.info.aal = aal;
  call.info.pcr_cells_per_second = traffic.pcr_cells_per_second;
  call.info.scr_cells_per_second = traffic.scr_cells_per_second;
  call.info.weight = traffic.weight;
  call.info.abr = traffic.abr;
  call.on_connected = std::move(on_connected);
  call.on_failed = std::move(on_failed);

  Message m;
  m.type = MessageType::kSetup;
  m.call_id = ref;
  m.calling_party = party_;
  m.called_party = called;
  m.aal = aal;
  m.pcr_cells_per_second = traffic.pcr_cells_per_second;
  m.scr_cells_per_second = traffic.scr_cells_per_second;
  m.weight = traffic.weight;
  m.abr = traffic.abr;
  call.pending = m;
  calls_.emplace(ref, std::move(call));

  send(m);
  if (config_.retransmit) {
    arm_retry(ref, 303);
    calls_.at(ref).deadline_timer =
        station_.sim().after(config_.t310, [this, ref] { on_t310(ref); });
  }
  return ref;
}

void CallControl::set_incoming(IncomingFn accept, ConnectedFn on_connected) {
  incoming_ = std::move(accept);
  incoming_connected_ = std::move(on_connected);
}

void CallControl::release(std::uint32_t call_id, Cause cause) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.state != CallState::kConnected) return;
  Call& call = it->second;
  call.state = CallState::kReleasing;
  call.retries = 0;
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = call_id;
  m.calling_party = party_;
  m.cause = cause;
  call.pending = m;
  send(m);
  if (config_.retransmit) arm_retry(call_id, 308);
}

CallState CallControl::state_of(std::uint32_t call_id) const {
  auto it = calls_.find(call_id);
  return it == calls_.end() ? CallState::kNull : it->second.state;
}

std::size_t CallControl::open_data_vcs() const {
  std::size_t n = 0;
  for (const auto& [id, call] : calls_) {
    if (call.vc_open) ++n;
  }
  return n;
}

void CallControl::send(const Message& m) {
  tap_.apply(m, [this](const Message& mm) {
    station_.host().send(kSignalingVc, aal::AalType::kAal5, mm.encode());
  });
}

void CallControl::open_data_vc(const CallInfo& info) {
  station_.nic().open_vc(info.vc, info.aal);
  // No-op unless the NIC's CC config enables it: the call's data VC
  // gets an OAM heartbeat and a sink-side loss-of-continuity detector.
  station_.nic().start_cc(info.vc);
  if (info.pcr_cells_per_second > 0.0) {
    // Honour the traffic contract at the source: UPC polices it in the
    // network, so shape here and the call is loss-free by construction.
    station_.nic().tx().set_shaper(info.vc, info.pcr_cells_per_second,
                                   sim::microseconds(3));
  }
}

void CallControl::close_data_vc(const CallInfo& info) {
  // A lost RELEASE COMPLETE can leave a call half-closed here while the
  // network has already recycled its VCI to a newer call on this same
  // endpoint. Whichever call clears first must not yank the VC out from
  // under the one still using it.
  for (const auto& [id, call] : calls_) {
    if (call.vc_open && call.info.vc == info.vc) return;
  }
  station_.nic().close_vc(info.vc);
  if (info.pcr_cells_per_second > 0.0) {
    station_.nic().tx().clear_shaper(info.vc);
  }
}

void CallControl::cancel_timers(Call& call) {
  station_.sim().cancel(call.retry_timer);
  station_.sim().cancel(call.deadline_timer);
  station_.sim().cancel(call.backoff_timer);
  call.retry_timer = {};
  call.deadline_timer = {};
  call.backoff_timer = {};
}

CallControl::Call CallControl::clear_call(
    std::unordered_map<std::uint32_t, Call>::iterator it) {
  Call call = std::move(it->second);
  calls_.erase(it);
  cancel_timers(call);
  if (call.vc_open) {
    close_data_vc(call.info);
    call.vc_open = false;
  }
  return call;
}

// --- timers -----------------------------------------------------------

void CallControl::arm_retry(std::uint32_t call_id, unsigned timer_no) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  const sim::Time period = timer_no == 303 ? config_.t303 : config_.t308;
  it->second.retry_timer = station_.sim().after(
      period, [this, call_id, timer_no] { on_retry_timer(call_id, timer_no); });
}

void CallControl::on_retry_timer(std::uint32_t call_id, unsigned timer_no) {
  auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  // A timer that survived a state transition is stale.
  if ((timer_no == 303 && call.state != CallState::kCalling) ||
      (timer_no == 308 && call.state != CallState::kReleasing)) {
    return;
  }
  timer_expiries_.add();
  trace(sim::TraceEventId::kSigTimerExpiry, timer_no, 0, call_id);
  const unsigned max_retries =
      timer_no == 303 ? config_.t303_retries : config_.t308_retries;
  if (call.retries < max_retries) {
    ++call.retries;
    retransmits_.add();
    trace(sim::TraceEventId::kSigRetransmit,
          static_cast<std::uint32_t>(call.pending.type), call.retries,
          call_id);
    send(call.pending);
    arm_retry(call_id, timer_no);
    return;
  }
  if (timer_no == 303) {
    // Out of SETUP retransmissions; the T310 deadline decides the
    // call's fate (it may still connect off an earlier copy).
    return;
  }
  // T308 exhausted: the peer/network is unreachable. Force-clear
  // locally; the network's status audit reclaims its side.
  Call dead = clear_call(it);
  reclaimed_.add();
  if (on_released_) on_released_(dead.info, Cause::kRecoveryOnTimerExpiry);
}

void CallControl::on_t310(std::uint32_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.state != CallState::kCalling) return;
  timer_expiries_.add();
  trace(sim::TraceEventId::kSigTimerExpiry, 310, 0, call_id);
  Call dead = clear_call(it);
  count_failure(Cause::kRecoveryOnTimerExpiry);
  // Best-effort RELEASE so the network clears its half-open record
  // without waiting for the status audit.
  Message m;
  m.type = MessageType::kRelease;
  m.call_id = call_id;
  m.calling_party = party_;
  m.cause = Cause::kRecoveryOnTimerExpiry;
  send(m);
  if (dead.on_failed) dead.on_failed(call_id, Cause::kRecoveryOnTimerExpiry);
}

void CallControl::retry_setup(std::uint32_t call_id) {
  auto it = calls_.find(call_id);
  if (it == calls_.end() || it->second.state != CallState::kCalling) return;
  Call& call = it->second;
  call.backoff_timer = {};
  backoffs_.add();
  trace(sim::TraceEventId::kSigRetransmit,
        static_cast<std::uint32_t>(call.pending.type), call.setup_attempts,
        call_id);
  send(call.pending);
  if (config_.retransmit) {
    arm_retry(call_id, 303);
    call.deadline_timer = station_.sim().after(
        config_.t310, [this, call_id] { on_t310(call_id); });
  }
}

// --- message handling -------------------------------------------------

void CallControl::on_signaling_frame(aal::Bytes sdu) {
  const DecodeResult r = decode_checked(sdu);
  if (!r.message) {
    malformed_.add();
    trace(sim::TraceEventId::kSigMalformed,
          static_cast<std::uint32_t>(r.error), 0, r.call_id_hint);
    if (r.error == Cause::kMessageTypeNonExistent) {
      // The frame guard held, so the reference is usable: report our
      // state so the sender can resynchronize.
      Message st;
      st.type = MessageType::kStatus;
      st.call_id = r.call_id_hint;
      st.calling_party = party_;
      st.cause = r.error;
      st.call_state = state_of(r.call_id_hint);
      send(st);
    }
    return;
  }
  const Message& m = *r.message;
  switch (m.type) {
    case MessageType::kSetup:
      handle_setup(m);
      break;
    case MessageType::kConnect:
      handle_connect(m);
      break;
    case MessageType::kRelease:
      handle_release(m);
      break;
    case MessageType::kReleaseComplete:
      handle_release_complete(m);
      break;
    case MessageType::kStatusEnquiry:
      handle_status_enquiry(m);
      break;
    case MessageType::kStatus:
      handle_status(m);
      break;
    case MessageType::kRestart:
      handle_restart(m);
      break;
    case MessageType::kRestartAck:
      break;  // network-side message; not ours to act on
  }
}

void CallControl::handle_setup(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it != calls_.end()) {
    Call& existing = it->second;
    if (existing.info.vc == m.assigned_vc) {
      // Duplicate SETUP: our CONNECT (or the caller's copy of it) was
      // lost. Re-answer; open nothing twice.
      if (existing.state == CallState::kConnected) {
        Message reply;
        reply.type = MessageType::kConnect;
        reply.call_id = m.call_id;
        reply.calling_party = party_;
        reply.assigned_vc = existing.info.vc;
        send(reply);
      }
      return;
    }
    // Same reference, different VC: the network restarted and re-ran
    // the call with a fresh allocation. Our copy is a stale
    // incarnation — clear it silently and treat the SETUP as new.
    Call stale = clear_call(it);
    reclaimed_.add();
    if (on_released_) on_released_(stale.info, Cause::kTemporaryFailure);
  }

  CallInfo info;
  info.call_id = m.call_id;
  info.peer = m.calling_party;
  info.vc = m.assigned_vc;  // the network already allocated our leg
  info.aal = m.aal;
  info.pcr_cells_per_second = m.pcr_cells_per_second;
  info.scr_cells_per_second = m.scr_cells_per_second;
  info.weight = m.weight;
  info.abr = m.abr;

  const bool accept = incoming_ && incoming_(info);
  if (!accept) {
    Message reply;
    reply.type = MessageType::kRelease;
    reply.call_id = m.call_id;
    reply.calling_party = party_;
    reply.cause = Cause::kCallRejected;
    send(reply);
    return;
  }

  Call call;
  call.state = CallState::kConnected;
  call.info = info;
  call.vc_open = true;
  calls_.emplace(m.call_id, std::move(call));
  open_data_vc(info);

  Message reply;
  reply.type = MessageType::kConnect;
  reply.call_id = m.call_id;
  reply.calling_party = party_;
  reply.assigned_vc = info.vc;
  send(reply);
  connected_.add();
  if (incoming_connected_) incoming_connected_(info);
}

void CallControl::handle_connect(const Message& m) {
  auto it = calls_.find(m.call_id);
  // Ignores duplicates too: a retransmission-induced second CONNECT
  // finds the call already kConnected.
  if (it == calls_.end() || it->second.state != CallState::kCalling) return;
  Call& call = it->second;
  cancel_timers(call);
  call.state = CallState::kConnected;
  call.info.vc = m.assigned_vc;
  call.vc_open = true;
  open_data_vc(call.info);
  connected_.add();
  if (call.on_connected) call.on_connected(call.info);
}

void CallControl::handle_release(const Message& m) {
  // Always confirm — even for a call we no longer know. The peer may be
  // retransmitting RELEASE because our earlier RELEASE COMPLETE was
  // lost; silence would run its T308 to exhaustion.
  Message reply;
  reply.type = MessageType::kReleaseComplete;
  reply.call_id = m.call_id;
  reply.calling_party = party_;
  reply.cause = m.cause;
  send(reply);

  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  const bool was_calling = it->second.state == CallState::kCalling;
  if (was_calling && m.cause == Cause::kResourceUnavailable &&
      it->second.setup_attempts < config_.setup_retry_limit) {
    // CAC refusal: capacity may free as other calls release, so back
    // off and retry instead of failing. The refusal left no state at
    // the network (admission precedes VC allocation), so re-sending
    // the same SETUP under the same reference is clean.
    Call& call = it->second;
    cancel_timers(call);
    call.retries = 0;
    const unsigned attempt = ++call.setup_attempts;
    const sim::Time wait = config_.setup_retry_backoff << (attempt - 1);
    const std::uint32_t id = m.call_id;
    call.backoff_timer =
        station_.sim().after(wait, [this, id] { retry_setup(id); });
    return;
  }
  Call call = clear_call(it);
  if (was_calling) {
    // Our SETUP was refused (by the callee or the network).
    count_failure(m.cause);
    if (call.on_failed) call.on_failed(m.call_id, m.cause);
    return;
  }
  // Covers kConnected (peer-initiated teardown) and kReleasing (both
  // ends released at once: treat the crossing RELEASE as completion).
  if (on_released_) on_released_(call.info, m.cause);
}

void CallControl::handle_release_complete(const Message& m) {
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  Call call = clear_call(it);
  if (on_released_) on_released_(call.info, m.cause);
}

void CallControl::handle_status_enquiry(const Message& m) {
  Message reply;
  reply.type = MessageType::kStatus;
  reply.call_id = m.call_id;
  reply.calling_party = party_;
  reply.call_state = state_of(m.call_id);
  send(reply);
}

void CallControl::handle_status(const Message& m) {
  // Only a recovery-flavoured STATUS is authoritative: the network
  // telling us it no longer knows a call we think is live. A STATUS
  // answering a malformed frame (cause 97) must not clear anything.
  if (m.call_state != CallState::kNull) return;
  if (m.cause != Cause::kTemporaryFailure &&
      m.cause != Cause::kRecoveryOnTimerExpiry) {
    return;
  }
  auto it = calls_.find(m.call_id);
  if (it == calls_.end()) return;
  const bool was_calling = it->second.state == CallState::kCalling;
  Call dead = clear_call(it);
  reclaimed_.add();
  if (was_calling) {
    count_failure(Cause::kTemporaryFailure);
    if (dead.on_failed) dead.on_failed(m.call_id, Cause::kTemporaryFailure);
  } else if (on_released_) {
    on_released_(dead.info, Cause::kTemporaryFailure);
  }
}

void CallControl::handle_restart(const Message& m) {
  // The network lost its call state: everything we hold is stranded.
  // Clear all calls (deterministic order), then acknowledge — always,
  // even with nothing to clear, or the agent's T316 keeps firing.
  std::vector<std::uint32_t> ids;
  ids.reserve(calls_.size());
  for (const auto& [id, call] : calls_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    auto it = calls_.find(id);
    const bool was_calling = it->second.state == CallState::kCalling;
    Call dead = clear_call(it);
    reclaimed_.add();
    if (was_calling) {
      count_failure(Cause::kTemporaryFailure);
      if (dead.on_failed) dead.on_failed(id, Cause::kTemporaryFailure);
    } else if (on_released_) {
      on_released_(dead.info, Cause::kTemporaryFailure);
    }
  }
  Message ack;
  ack.type = MessageType::kRestartAck;
  ack.call_id = m.call_id;  // echoes the restart instance
  ack.calling_party = party_;
  send(ack);
}

void CallControl::audit_invariants(core::InvariantAuditor& auditor) {
  const std::string who = station_.name() + ": ";
  // Count distinct VCIs, not calls: under loss the network can recycle
  // a VCI to this endpoint while an older half-closed call still holds
  // it, so two calls legitimately alias one NIC table entry.
  std::set<atm::VcId> distinct;
  for (const auto& [id, call] : calls_) {
    if (call.vc_open) distinct.insert(call.info.vc);
  }
  auditor.expect_eq(station_.nic().rx().vcs_open(), 1 + distinct.size(),
                    "sig endpoint vc-table",
                    who + "open RX VCs == signalling + distinct data VCs");
  std::vector<std::uint32_t> ids;
  ids.reserve(calls_.size());
  for (const auto& [id, call] : calls_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (const std::uint32_t id : ids) {
    const Call& call = calls_.at(id);
    if (!call.vc_open) continue;
    auditor.expect_eq(station_.nic().rx().vc_open(call.info.vc) ? 1 : 0, 1,
                      "sig endpoint vc open",
                      who + "call " + std::to_string(id) +
                          " data VC missing from NIC table");
  }
}

}  // namespace hni::sig
