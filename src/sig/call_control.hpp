// Endpoint call control: the user side of the signalling protocol.
//
// One CallControl per station. It owns the station's signalling VC
// (VPI 0 / VCI 5): outgoing calls are placed with place_call(), incoming
// SETUPs are offered to the application's incoming-call handler, and on
// CONNECT both ends open the network-assigned VC (and install a GCRA
// shaper when the call carries a traffic contract). Release can be
// initiated from either end.
//
// Call states follow the usual half of Q.2931:
//
//   idle -> calling  (SETUP sent)    -> connected (CONNECT received)
//   idle -> incoming (SETUP received)-> connected (CONNECT sent)
//   connected -> releasing (RELEASE sent) -> idle (RELEASE COMPLETE)
//   connected -> idle (RELEASE received; RELEASE COMPLETE sent)

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/station.hpp"
#include "sig/messages.hpp"

namespace hni::sig {

class CallControl {
 public:
  struct CallInfo {
    std::uint32_t call_id = 0;
    std::uint16_t peer = 0;       // the other party's address
    atm::VcId vc{};               // network-assigned data VC
    aal::AalType aal = aal::AalType::kAal5;
    double pcr_cells_per_second = 0.0;
  };

  using ConnectedFn = std::function<void(const CallInfo&)>;
  using FailedFn = std::function<void(std::uint32_t call_id, Cause cause)>;
  using ReleasedFn = std::function<void(const CallInfo&, Cause cause)>;
  /// Offered an incoming call; return true to accept.
  using IncomingFn = std::function<bool(const CallInfo&)>;

  CallControl(core::Station& station, std::uint16_t my_party);

  std::uint16_t party() const { return party_; }

  /// Places a call; returns the call reference. `on_connected` fires
  /// with the assigned VC; `on_failed` on rejection/failure.
  std::uint32_t place_call(std::uint16_t called, aal::AalType aal,
                           double pcr_cells_per_second,
                           ConnectedFn on_connected,
                           FailedFn on_failed = {});

  /// Application policy + notification hooks for the callee side.
  void set_incoming(IncomingFn accept, ConnectedFn on_connected = {});
  /// Fires whenever an established call ends (either initiator).
  void set_released(ReleasedFn on_released) {
    on_released_ = std::move(on_released);
  }

  /// Initiates teardown of an established call.
  void release(std::uint32_t call_id, Cause cause = Cause::kNormal);

  std::size_t active_calls() const { return calls_.size(); }
  std::uint64_t calls_placed() const { return placed_; }
  std::uint64_t calls_connected() const { return connected_; }
  std::uint64_t calls_failed() const { return failed_; }

 private:
  enum class State : std::uint8_t {
    kCalling,
    kConnected,
    kReleasing,
  };
  struct Call {
    State state = State::kCalling;
    CallInfo info;
    ConnectedFn on_connected;
    FailedFn on_failed;
  };

  void on_signaling_frame(aal::Bytes sdu);
  void handle_setup(const Message& m);
  void handle_connect(const Message& m);
  void handle_release(const Message& m);
  void handle_release_complete(const Message& m);
  void send(const Message& m);
  void open_data_vc(const CallInfo& info);
  void close_data_vc(const CallInfo& info);

  core::Station& station_;
  std::uint16_t party_;
  std::uint32_t next_ref_ = 1;
  std::unordered_map<std::uint32_t, Call> calls_;
  IncomingFn incoming_;
  ConnectedFn incoming_connected_;
  ReleasedFn on_released_;
  std::uint64_t placed_ = 0;
  std::uint64_t connected_ = 0;
  std::uint64_t failed_ = 0;
};

}  // namespace hni::sig
