// Endpoint call control: the user side of the signalling protocol.
//
// One CallControl per station. It owns the station's signalling VC
// (VPI 0 / VCI 5): outgoing calls are placed with place_call(), incoming
// SETUPs are offered to the application's incoming-call handler, and on
// CONNECT both ends open the network-assigned VC (and install a GCRA
// shaper when the call carries a traffic contract). Release can be
// initiated from either end.
//
// Call states follow the usual half of Q.2931:
//
//   idle -> calling  (SETUP sent)    -> connected (CONNECT received)
//   idle -> incoming (SETUP received)-> connected (CONNECT sent)
//   connected -> releasing (RELEASE sent) -> idle (RELEASE COMPLETE)
//   connected -> idle (RELEASE received; RELEASE COMPLETE sent)
//
// There is no SSCOP assured-mode layer underneath, so the signalling
// channel loses messages whenever the substrate does. Survivability
// comes from Q.2931-style protocol timers instead:
//
//   T303  SETUP sent, no answer     -> retransmit SETUP (bounded)
//   T310  awaiting CONNECT overall  -> fail the call, RELEASE upstream
//   T308  RELEASE sent, no complete -> retransmit RELEASE (bounded),
//                                      then force-clear locally
//
// plus idempotent handling of the duplicates retransmission creates: a
// re-received SETUP re-answers CONNECT instead of opening a second VC,
// a RELEASE for an unknown call is still confirmed (the peer may be
// retransmitting after we already cleared), and STATUS/RESTART let the
// network's audit re-synchronize state after losses or agent failure.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>

#include "core/audit.hpp"
#include "core/station.hpp"
#include "sig/messages.hpp"
#include "sim/random.hpp"
#include "sim/telemetry/metrics.hpp"
#include "sim/trace.hpp"

namespace hni::sig {

/// Protocol-timer policy. Defaults are sized for the simulated UNI: a
/// clean setup round-trip is ~150 us, so retry intervals are a few
/// round-trips and the overall deadline covers every bounded retry.
struct CallControlConfig {
  /// Master switch for all timers (the no-recovery ablation point):
  /// false restores fire-and-forget signalling.
  bool retransmit = true;
  sim::Time t303 = sim::microseconds(600);  // SETUP retransmit interval
  unsigned t303_retries = 4;
  sim::Time t310 = sim::milliseconds(8);    // overall await-CONNECT deadline
  sim::Time t308 = sim::microseconds(600);  // RELEASE retransmit interval
  unsigned t308_retries = 4;
  /// Retry-with-backoff for SETUPs the network refuses for lack of
  /// resources (CAC). 0 disables: the refusal fails the call at once.
  /// Each attempt doubles the wait, so capacity freed by a released
  /// call is found without hammering the signalling channel.
  unsigned setup_retry_limit = 0;
  sim::Time setup_retry_backoff = sim::milliseconds(2);
};

/// Fault-injection tap on a signalling sender: every outgoing message
/// passes through apply(), which can drop, duplicate or delay it —
/// deterministic one-shots for targeted tests, a seeded drop rate for
/// chaos/bench runs. The default tap forwards everything untouched.
class MessageTap {
 public:
  using SendFn = std::function<void(const Message&)>;

  MessageTap(sim::Simulator& sim, std::uint64_t seed) : sim_(sim), rng_(seed) {}

  /// Bernoulli loss applied to every message (the chaos/bench knob).
  void set_drop_rate(double p) { drop_rate_ = p; }
  double drop_rate() const { return drop_rate_; }

  /// One-shot faults, consumed in order by subsequent sends.
  void drop_next(unsigned n = 1) { drop_next_ += n; }
  void duplicate_next(unsigned n = 1) { duplicate_next_ += n; }
  void delay_next(unsigned n, sim::Time by) {
    delay_next_ += n;
    delay_by_ = by;
  }

  void apply(const Message& m, const SendFn& forward) {
    if (drop_next_ > 0) {
      --drop_next_;
      dropped_.add();
      return;
    }
    if (drop_rate_ > 0.0 && rng_.chance(drop_rate_)) {
      dropped_.add();
      return;
    }
    if (duplicate_next_ > 0) {
      --duplicate_next_;
      duplicated_.add();
      forwarded_.add();
      forward(m);
      forward(m);
      return;
    }
    if (delay_next_ > 0) {
      --delay_next_;
      delayed_.add();
      sim_.after(delay_by_, [m, forward] { forward(m); });
      return;
    }
    forwarded_.add();
    forward(m);
  }

  std::uint64_t dropped() const { return dropped_.value(); }
  std::uint64_t duplicated() const { return duplicated_.value(); }
  std::uint64_t delayed() const { return delayed_.value(); }
  std::uint64_t forwarded() const { return forwarded_.value(); }

  void register_metrics(const sim::MetricScope& scope) const {
    scope.expose("dropped", dropped_);
    scope.expose("duplicated", duplicated_);
    scope.expose("delayed", delayed_);
    scope.expose("forwarded", forwarded_);
  }

 private:
  sim::Simulator& sim_;
  sim::Rng rng_;
  double drop_rate_ = 0.0;
  unsigned drop_next_ = 0;
  unsigned duplicate_next_ = 0;
  unsigned delay_next_ = 0;
  sim::Time delay_by_ = 0;
  sim::Counter dropped_;
  sim::Counter duplicated_;
  sim::Counter delayed_;
  sim::Counter forwarded_;
};

/// The SETUP traffic descriptor. A PCR alone is a CBR-style contract
/// (GCRA policing and shaping at the peak rate). Adding an SCR makes it
/// a VBR contract — the network installs a two-rate trTCM meter
/// (CIR = SCR, PIR = PCR) instead of the single-rate policer. `weight`
/// sets the VC's DWRR share at switch output queues, and `abr` opts the
/// VC into the ERICA explicit-rate loop.
struct TrafficDescriptor {
  double pcr_cells_per_second = 0.0;  // 0 = best effort
  double scr_cells_per_second = 0.0;  // 0 = single-rate (no meter)
  std::uint16_t weight = 1;
  bool abr = false;
};

class CallControl {
 public:
  struct CallInfo {
    std::uint32_t call_id = 0;
    std::uint16_t peer = 0;       // the other party's address
    atm::VcId vc{};               // network-assigned data VC
    aal::AalType aal = aal::AalType::kAal5;
    double pcr_cells_per_second = 0.0;
    double scr_cells_per_second = 0.0;
    std::uint16_t weight = 1;
    bool abr = false;
  };

  using ConnectedFn = std::function<void(const CallInfo&)>;
  using FailedFn = std::function<void(std::uint32_t call_id, Cause cause)>;
  using ReleasedFn = std::function<void(const CallInfo&, Cause cause)>;
  /// Offered an incoming call; return true to accept.
  using IncomingFn = std::function<bool(const CallInfo&)>;

  CallControl(core::Station& station, std::uint16_t my_party,
              CallControlConfig config = {}, sim::Tracer* tracer = nullptr,
              std::optional<sim::MetricScope> metrics = std::nullopt,
              std::uint64_t tap_seed = 1);

  std::uint16_t party() const { return party_; }

  /// Places a call; returns the call reference. `on_connected` fires
  /// with the assigned VC; `on_failed` on rejection/failure.
  std::uint32_t place_call(std::uint16_t called, aal::AalType aal,
                           double pcr_cells_per_second,
                           ConnectedFn on_connected,
                           FailedFn on_failed = {});

  /// Full-descriptor overload: carries SCR, weight and the ABR flag
  /// through SETUP (the pcr-only signature above delegates here).
  std::uint32_t place_call(std::uint16_t called, aal::AalType aal,
                           const TrafficDescriptor& traffic,
                           ConnectedFn on_connected,
                           FailedFn on_failed = {});

  /// Application policy + notification hooks for the callee side.
  void set_incoming(IncomingFn accept, ConnectedFn on_connected = {});
  /// Fires whenever an established call ends (either initiator).
  void set_released(ReleasedFn on_released) {
    on_released_ = std::move(on_released);
  }

  /// Initiates teardown of an established call.
  void release(std::uint32_t call_id, Cause cause = Cause::kNormal);

  /// This endpoint's view of a call (kNull when unknown) — what a
  /// STATUS reply reports.
  CallState state_of(std::uint32_t call_id) const;

  /// The outgoing-message fault tap (chaos/bench injection point).
  MessageTap& tap() { return tap_; }

  std::size_t active_calls() const { return calls_.size(); }
  /// Calls with an open data VC (connected or releasing).
  std::size_t open_data_vcs() const;
  std::uint64_t calls_placed() const { return placed_.value(); }
  std::uint64_t calls_connected() const { return connected_.value(); }
  std::uint64_t calls_failed() const { return failed_.value(); }
  /// Messages retransmitted by T303/T308.
  std::uint64_t retransmits() const { return retransmits_.value(); }
  /// SETUPs re-sent after a CAC resource-unavailable refusal.
  std::uint64_t setup_backoff_retries() const { return backoffs_.value(); }
  /// Timer expiries observed (every T303/T308/T310 firing that acted).
  std::uint64_t timer_expiries() const { return timer_expiries_.value(); }
  /// Calls cleared by recovery (T308 force-clear, STATUS resync,
  /// RESTART, stale-incarnation replacement) rather than by the normal
  /// release handshake.
  std::uint64_t calls_reclaimed() const { return reclaimed_.value(); }
  /// Signalling frames rejected by the decoder.
  std::uint64_t malformed_frames() const { return malformed_.value(); }
  /// NIC-level defect alarms (AIS / loss of continuity on a data VC)
  /// reported to the network as STATUS cause 27.
  std::uint64_t defect_reports() const { return defect_reports_.value(); }

  /// Cross-checks this endpoint's call state against its NIC's VC
  /// table: the signalling VC plus one open VC per data call, no more.
  void audit_invariants(core::InvariantAuditor& auditor);

 private:
  struct Call {
    CallState state = CallState::kCalling;
    CallInfo info;
    ConnectedFn on_connected;
    FailedFn on_failed;
    bool vc_open = false;
    Message pending;                  // message under timer supervision
    unsigned retries = 0;
    unsigned setup_attempts = 0;      // CAC-refusal backoff rounds used
    sim::EventHandle retry_timer;     // T303 (calling) / T308 (releasing)
    sim::EventHandle deadline_timer;  // T310
    sim::EventHandle backoff_timer;   // CAC-refusal retry wait
  };

  void on_signaling_frame(aal::Bytes sdu);
  void handle_setup(const Message& m);
  void handle_connect(const Message& m);
  void handle_release(const Message& m);
  void handle_release_complete(const Message& m);
  void handle_status_enquiry(const Message& m);
  void handle_status(const Message& m);
  void handle_restart(const Message& m);
  void send(const Message& m);
  void open_data_vc(const CallInfo& info);
  void close_data_vc(const CallInfo& info);
  void arm_retry(std::uint32_t call_id, unsigned timer_no);
  void on_retry_timer(std::uint32_t call_id, unsigned timer_no);
  void retry_setup(std::uint32_t call_id);
  void on_t310(std::uint32_t call_id);
  void cancel_timers(Call& call);
  /// Removes the call and undoes its local state (timers, VC); invoked
  /// by every recovery path. Does not notify — callers do.
  Call clear_call(std::unordered_map<std::uint32_t, Call>::iterator it);
  void count_failure(Cause cause);
  void trace(sim::TraceEventId id, std::uint32_t a, std::uint32_t b,
             std::uint64_t seq);

  core::Station& station_;
  std::uint16_t party_;
  CallControlConfig config_;
  sim::Tracer* tracer_;
  std::uint16_t source_ = 0;
  std::optional<sim::MetricScope> metrics_;
  MessageTap tap_;
  std::uint32_t next_ref_ = 1;
  std::unordered_map<std::uint32_t, Call> calls_;
  IncomingFn incoming_;
  ConnectedFn incoming_connected_;
  ReleasedFn on_released_;
  sim::Counter placed_;
  sim::Counter connected_;
  sim::Counter failed_;
  sim::Counter retransmits_;
  sim::Counter backoffs_;
  sim::Counter timer_expiries_;
  sim::Counter reclaimed_;
  sim::Counter malformed_;
  sim::Counter defect_reports_;
};

}  // namespace hni::sig
