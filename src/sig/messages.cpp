#include "sig/messages.hpp"

#include <cstring>

namespace hni::sig {
namespace {

constexpr std::uint16_t kMagic = 0x5147;  // "QG" — signalling frame guard
constexpr std::size_t kWireSize = 2 +     // magic
                                  1 +     // type
                                  4 +     // call_id
                                  2 + 2 + // calling, called
                                  1 +     // aal
                                  8 +     // pcr (micro-cells/s as u64)
                                  8 +     // scr (micro-cells/s as u64)
                                  2 +     // weight
                                  1 +     // abr flag
                                  2 + 2 + // assigned vpi, vci
                                  1 +     // cause
                                  1;      // call state

void put_u16(aal::Bytes& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(aal::Bytes& b, std::uint32_t v) {
  put_u16(b, static_cast<std::uint16_t>(v));
  put_u16(b, static_cast<std::uint16_t>(v >> 16));
}
void put_u64(aal::Bytes& b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b, static_cast<std::uint32_t>(v >> 32));
}
std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(get_u16(p)) |
         (static_cast<std::uint32_t>(get_u16(p + 2)) << 16);
}
std::uint64_t get_u64(const std::uint8_t* p) {
  return static_cast<std::uint64_t>(get_u32(p)) |
         (static_cast<std::uint64_t>(get_u32(p + 4)) << 32);
}

}  // namespace

aal::Bytes Message::encode() const {
  aal::Bytes b;
  b.reserve(kWireSize);
  put_u16(b, kMagic);
  b.push_back(static_cast<std::uint8_t>(type));
  put_u32(b, call_id);
  put_u16(b, calling_party);
  put_u16(b, called_party);
  b.push_back(static_cast<std::uint8_t>(aal));
  // Rates carried as micro-cells/second so a double survives the wire.
  put_u64(b, static_cast<std::uint64_t>(pcr_cells_per_second * 1e6));
  put_u64(b, static_cast<std::uint64_t>(scr_cells_per_second * 1e6));
  put_u16(b, weight);
  b.push_back(abr ? 1 : 0);
  put_u16(b, assigned_vc.vpi);
  put_u16(b, assigned_vc.vci);
  b.push_back(static_cast<std::uint8_t>(cause));
  b.push_back(static_cast<std::uint8_t>(call_state));
  return b;
}

DecodeResult decode_checked(const aal::Bytes& bytes) {
  DecodeResult r;
  if (bytes.size() != kWireSize) {
    r.error = Cause::kInvalidMessage;
    return r;
  }
  const std::uint8_t* p = bytes.data();
  if (get_u16(p) != kMagic) {
    r.error = Cause::kInvalidMessage;
    return r;
  }
  p += 2;
  const std::uint8_t type = *p++;
  // The frame guard held, so the call reference is trustworthy even if
  // the rest of the body is rejected — receivers answer STATUS with it.
  r.call_id_hint = get_u32(p);
  if (type < 1 || type > 8) {
    r.error = Cause::kMessageTypeNonExistent;
    return r;
  }
  Message m;
  m.type = static_cast<MessageType>(type);
  m.call_id = get_u32(p);
  p += 4;
  m.calling_party = get_u16(p);
  p += 2;
  m.called_party = get_u16(p);
  p += 2;
  const std::uint8_t aal = *p++;
  if (aal > 2) {
    r.error = Cause::kInvalidContents;
    return r;
  }
  m.aal = static_cast<aal::AalType>(aal);
  m.pcr_cells_per_second = static_cast<double>(get_u64(p)) / 1e6;
  p += 8;
  m.scr_cells_per_second = static_cast<double>(get_u64(p)) / 1e6;
  p += 8;
  // An SCR above the PCR is a contradiction in terms — the sustained
  // rate bounds the peak from below, never above.
  if (m.scr_cells_per_second > m.pcr_cells_per_second) {
    r.error = Cause::kInvalidContents;
    return r;
  }
  m.weight = get_u16(p);
  p += 2;
  const std::uint8_t abr = *p++;
  if (abr > 1) {
    r.error = Cause::kInvalidContents;
    return r;
  }
  m.abr = abr != 0;
  m.assigned_vc.vpi = get_u16(p);
  p += 2;
  m.assigned_vc.vci = get_u16(p);
  p += 2;
  m.cause = static_cast<Cause>(*p++);
  const std::uint8_t state = *p;
  if (state > 3) {
    r.error = Cause::kInvalidContents;
    return r;
  }
  m.call_state = static_cast<CallState>(state);
  r.message = m;
  return r;
}

std::optional<Message> Message::decode(const aal::Bytes& bytes) {
  return decode_checked(bytes).message;
}

std::string_view to_string(MessageType type) {
  switch (type) {
    case MessageType::kSetup:
      return "SETUP";
    case MessageType::kConnect:
      return "CONNECT";
    case MessageType::kRelease:
      return "RELEASE";
    case MessageType::kReleaseComplete:
      return "RELEASE-COMPLETE";
    case MessageType::kStatusEnquiry:
      return "STATUS-ENQUIRY";
    case MessageType::kStatus:
      return "STATUS";
    case MessageType::kRestart:
      return "RESTART";
    case MessageType::kRestartAck:
      return "RESTART-ACK";
  }
  return "?";
}

std::string_view to_string(Cause cause) {
  switch (cause) {
    case Cause::kNormal:
      return "normal clearing";
    case Cause::kUserBusy:
      return "user busy";
    case Cause::kNoRouteToDestination:
      return "no route to destination";
    case Cause::kCallRejected:
      return "call rejected";
    case Cause::kDestinationOutOfOrder:
      return "destination out of order";
    case Cause::kNetworkOutOfVcs:
      return "no VC available";
    case Cause::kTemporaryFailure:
      return "temporary failure";
    case Cause::kResourceUnavailable:
      return "resource unavailable, unspecified";
    case Cause::kInvalidMessage:
      return "invalid message";
    case Cause::kMessageTypeNonExistent:
      return "message type non-existent";
    case Cause::kInvalidContents:
      return "invalid information element contents";
    case Cause::kRecoveryOnTimerExpiry:
      return "recovery on timer expiry";
  }
  return "?";
}

std::string_view to_string(CallState state) {
  switch (state) {
    case CallState::kNull:
      return "null";
    case CallState::kCalling:
      return "calling";
    case CallState::kConnected:
      return "connected";
    case CallState::kReleasing:
      return "releasing";
  }
  return "?";
}

}  // namespace hni::sig
